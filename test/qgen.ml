(* QCheck wrapper over the Vc_fuzz generator — the single source of
   random well-typed, provably-terminating DSL programs for the whole
   test suite (the old two-parameter test/gen_programs.ml grew into
   lib/fuzz/gen.ml; see its knobs for the widened shape space). *)

let print_case (p, args) =
  Vc_lang.Pp.program_to_string p
  ^ "\n// args: "
  ^ String.concat " " (List.map string_of_int args)

let arbitrary_program_and_args =
  QCheck.make ~print:print_case Vc_fuzz.Gen.program_and_args
