(* Differential test harness: every execution engine must agree with the
   sequential interpreter on every random program.

   For each generated (program, args) pair the oracle is
   [Vc_lang.Interp.run]; the candidates are the sequential spec executor
   ([Seq_exec]), the measured engine ([Engine]) across block sizes {4, 8,
   16} x {no-reexpansion, re-expansion} plus pure breadth-first, and the
   direct transformed-AST interpreter ([Blocked_interp]).  Reducer values
   AND executed task counts must match exactly (OOM runs are skipped —
   they deliberately report nothing).

   The generator is seeded explicitly so CI can fan out over seeds:
   VC_PROP_SEED=n (default 42) selects the program stream,
   VC_PROP_COUNT=n (default 60) its length. *)

open Vc_core

let e5 = Vc_mem.Machine.xeon_e5

let seed =
  match Sys.getenv_opt "VC_PROP_SEED" with
  | Some s -> (try int_of_string s with _ -> 42)
  | None -> 42

let count =
  match Sys.getenv_opt "VC_PROP_COUNT" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 60)
  | None -> 60

(* One deterministic stream of programs per seed. *)
let cases =
  let st = Random.State.make [| seed |] in
  List.init count (fun i ->
      let p = Gen_programs.gen_program st in
      let args = Gen_programs.gen_args st in
      (i, p, args))

let strategies =
  (Policy.Bfs_only, "bfs")
  :: List.concat_map
       (fun block ->
         [
           ( Policy.Hybrid { max_block = block; reexpand = false },
             Printf.sprintf "noreexp/%d" block );
           ( Policy.Hybrid { max_block = block; reexpand = true },
             Printf.sprintf "reexp/%d" block );
         ])
       [ 4; 8; 16 ]

let describe i p args =
  Printf.sprintf "case %d (seed %d)\n%s\nargs: %s" i seed
    (Vc_lang.Pp.program_to_string p)
    (String.concat ", " (List.map string_of_int args))

let check_agreement () =
  let checked = ref 0 in
  List.iter
    (fun (i, p, args) ->
      let out = Vc_lang.Interp.run ~max_tasks:100_000 p args in
      let expected = out.Vc_lang.Interp.reducers in
      let expected_tasks = Vc_lang.Profile.tasks out.Vc_lang.Interp.profile in
      let spec = Compile.spec_of_program p ~args in
      let agree what reducers tasks =
        if reducers <> expected || tasks <> expected_tasks then
          Alcotest.failf "%s disagrees with the interpreter on %s:\n%s\ngot %s, %d tasks"
            what
            (Printf.sprintf "reducers %s / %d tasks"
               (String.concat ","
                  (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) expected))
               expected_tasks)
            (describe i p args)
            (String.concat ","
               (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) reducers))
            tasks;
        incr checked
      in
      let seq = Seq_exec.run ~spec ~machine:e5 () in
      agree "seq_exec" seq.Report.reducers seq.Report.tasks;
      List.iter
        (fun (strategy, sname) ->
          let r = Engine.run ~spec ~machine:e5 ~strategy () in
          if not r.Report.oom then
            agree (Printf.sprintf "engine[%s]" sname) r.Report.reducers r.Report.tasks)
        strategies;
      let t = Transform.transform p in
      List.iter
        (fun (strategy, sname) ->
          match Blocked_interp.run ~strategy t args with
          | b ->
              agree
                (Printf.sprintf "blocked_interp[%s]" sname)
                b.Blocked_interp.reducers b.Blocked_interp.tasks
          | exception Blocked_interp.Task_limit_exceeded _ -> ())
        strategies)
    cases;
  (* 1 seq + 7 engine strategies + 7 blocked_interp strategies per case,
     minus skipped OOM/limit runs; the floor catches a silently-vacuous
     suite *)
  if !checked < count * 8 then
    Alcotest.failf "only %d agreement checks ran (expected >= %d)" !checked (count * 8)

(* Engine task counts must also agree with each other across compaction
   engines (partition is a pure reordering). *)
let check_compaction_engines () =
  List.iter
    (fun (i, p, args) ->
      let spec = Compile.spec_of_program p ~args in
      let strategy = Policy.Hybrid { max_block = 8; reexpand = true } in
      let reference = Engine.run ~spec ~machine:e5 ~strategy () in
      List.iter
        (fun compact ->
          let r = Engine.run ~compact ~spec ~machine:e5 ~strategy () in
          if
            r.Report.reducers <> reference.Report.reducers
            || r.Report.tasks <> reference.Report.tasks
          then
            Alcotest.failf "compaction engine %s changes results on %s"
              (Vc_simd.Compact.name compact) (describe i p args))
        [
          Vc_simd.Compact.Sequential;
          Vc_simd.Compact.Full_table;
          Vc_simd.Compact.Factorized { sub_width = 4 };
        ])
    (List.filteri (fun i _ -> i < 20) cases)

(* Fault matrix: for every injected fault site and fault seed, a
   supervised run under the fault plan must recover — via block
   quarantine and scalar re-execution — to exactly the fault-free
   engine's reducers and task counts.  The assertion that fallbacks
   actually fired keeps the matrix from passing vacuously with a plan
   that never trips. *)
let check_fault_recovery () =
  let strategy = Policy.Hybrid { max_block = 8; reexpand = true } in
  let fallbacks = ref 0 in
  let faults_seen = ref 0 in
  List.iter
    (fun (i, p, args) ->
      let spec = Compile.spec_of_program p ~args in
      let reference = Engine.run ~spec ~machine:e5 ~strategy () in
      if not reference.Report.oom then
        List.iter
          (fun site ->
            List.iter
              (fun fault_seed ->
                let plan =
                  Fault.make ~rate:0.25 ~seed:fault_seed ~sites:[ site ] ()
                in
                match Supervisor.run ~faults:plan ~spec ~machine:e5 ~strategy () with
                | Error e ->
                    Alcotest.failf "site %s seed %d did not recover (%s) on %s"
                      (Fault.site_name site) fault_seed (Vc_error.to_string e)
                      (describe i p args)
                | Ok o ->
                    fallbacks := !fallbacks + o.Supervisor.fallbacks;
                    faults_seen := !faults_seen + o.Supervisor.faults_seen;
                    let r = o.Supervisor.report in
                    if
                      r.Report.reducers <> reference.Report.reducers
                      || r.Report.tasks <> reference.Report.tasks
                      || r.Report.base_tasks <> reference.Report.base_tasks
                    then
                      Alcotest.failf
                        "scalar fallback diverges under site %s seed %d on %s:\n\
                         got %s / %d tasks, want %s / %d tasks"
                        (Fault.site_name site) fault_seed (describe i p args)
                        (String.concat ","
                           (List.map
                              (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                              r.Report.reducers))
                        r.Report.tasks
                        (String.concat ","
                           (List.map
                              (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                              reference.Report.reducers))
                        reference.Report.tasks)
              [ 1; 2; 3 ])
          [ Fault.Compact; Fault.Alloc ])
    (List.filteri (fun i _ -> i < 10) cases);
  if !faults_seen = 0 then Alcotest.fail "fault matrix injected nothing";
  if !fallbacks = 0 then Alcotest.fail "fault matrix never took the scalar fallback"

let () =
  Alcotest.run "vc_differential"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "all engines = interpreter (%d programs, seed %d)"
               count seed)
            `Slow check_agreement;
          Alcotest.test_case "compaction engines preserve results" `Quick
            check_compaction_engines;
          Alcotest.test_case "fault injection recovers to exact results" `Quick
            check_fault_recovery;
        ] );
    ]
