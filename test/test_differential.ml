(* Differential test harness: every execution engine must agree with the
   sequential interpreter on every random program.

   For each generated (program, args) pair the oracle is
   [Vc_lang.Interp.run]; the candidates are the sequential spec executor
   ([Seq_exec]), the measured engine ([Engine]) across block sizes {4, 8,
   16} x {no-reexpansion, re-expansion} plus pure breadth-first, and the
   direct transformed-AST interpreter ([Blocked_interp]).  Reducer values
   AND executed task counts must match exactly (OOM runs are skipped —
   they deliberately report nothing).

   The generator is seeded explicitly so CI can fan out over seeds:
   VC_PROP_SEED=n (default 42) selects the program stream,
   VC_PROP_COUNT=n (default 60) its length. *)

open Vc_core

let e5 = Vc_mem.Machine.xeon_e5

let seed =
  match Sys.getenv_opt "VC_PROP_SEED" with
  | Some s -> (try int_of_string s with _ -> 42)
  | None -> 42

let count =
  match Sys.getenv_opt "VC_PROP_COUNT" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 60)
  | None -> 60

(* One deterministic stream of programs per seed. *)
let cases =
  let st = Random.State.make [| seed |] in
  List.init count (fun i ->
      let p = Vc_fuzz.Gen.program st in
      let args = Vc_fuzz.Gen.args p st in
      (i, p, args))

let strategies =
  (Policy.Bfs_only, "bfs")
  :: List.concat_map
       (fun block ->
         [
           ( Policy.Hybrid { max_block = block; reexpand = false },
             Printf.sprintf "noreexp/%d" block );
           ( Policy.Hybrid { max_block = block; reexpand = true },
             Printf.sprintf "reexp/%d" block );
         ])
       [ 4; 8; 16 ]

let describe i p args =
  Printf.sprintf "case %d (seed %d)\n%s\nargs: %s" i seed
    (Vc_lang.Pp.program_to_string p)
    (String.concat ", " (List.map string_of_int args))

let check_agreement () =
  let checked = ref 0 in
  List.iter
    (fun (i, p, args) ->
      let out = Vc_lang.Interp.run ~max_tasks:100_000 p args in
      let expected = out.Vc_lang.Interp.reducers in
      let expected_tasks = Vc_lang.Profile.tasks out.Vc_lang.Interp.profile in
      let spec = Compile.spec_of_program p ~args in
      let agree what reducers tasks =
        if reducers <> expected || tasks <> expected_tasks then
          Alcotest.failf "%s disagrees with the interpreter on %s:\n%s\ngot %s, %d tasks"
            what
            (Printf.sprintf "reducers %s / %d tasks"
               (String.concat ","
                  (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) expected))
               expected_tasks)
            (describe i p args)
            (String.concat ","
               (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) reducers))
            tasks;
        incr checked
      in
      let seq = Seq_exec.run ~spec ~machine:e5 () in
      agree "seq_exec" seq.Report.reducers seq.Report.tasks;
      List.iter
        (fun (strategy, sname) ->
          let r = Engine.run ~spec ~machine:e5 ~strategy () in
          if not r.Report.oom then
            agree (Printf.sprintf "engine[%s]" sname) r.Report.reducers r.Report.tasks)
        strategies;
      let t = Transform.transform p in
      List.iter
        (fun (strategy, sname) ->
          match Blocked_interp.run ~strategy t args with
          | b ->
              agree
                (Printf.sprintf "blocked_interp[%s]" sname)
                b.Blocked_interp.reducers b.Blocked_interp.tasks
          | exception Blocked_interp.Task_limit_exceeded _ -> ())
        strategies)
    cases;
  (* 1 seq + 7 engine strategies + 7 blocked_interp strategies per case,
     minus skipped OOM/limit runs; the floor catches a silently-vacuous
     suite *)
  if !checked < count * 8 then
    Alcotest.failf "only %d agreement checks ran (expected >= %d)" !checked (count * 8)

(* Engine task counts must also agree with each other across compaction
   engines (partition is a pure reordering). *)
let check_compaction_engines () =
  List.iter
    (fun (i, p, args) ->
      let spec = Compile.spec_of_program p ~args in
      let strategy = Policy.Hybrid { max_block = 8; reexpand = true } in
      let reference = Engine.run ~spec ~machine:e5 ~strategy () in
      List.iter
        (fun compact ->
          let r = Engine.run ~compact ~spec ~machine:e5 ~strategy () in
          if
            r.Report.reducers <> reference.Report.reducers
            || r.Report.tasks <> reference.Report.tasks
          then
            Alcotest.failf "compaction engine %s changes results on %s"
              (Vc_simd.Compact.name compact) (describe i p args))
        [
          Vc_simd.Compact.Sequential;
          Vc_simd.Compact.Full_table;
          Vc_simd.Compact.Factorized { sub_width = 4 };
        ])
    (List.filteri (fun i _ -> i < 20) cases)

(* Fault matrix: for every injected fault site and fault seed, a
   supervised run under the fault plan must recover — via block
   quarantine and scalar re-execution — to exactly the fault-free
   engine's reducers and task counts.  The assertion that fallbacks
   actually fired keeps the matrix from passing vacuously with a plan
   that never trips. *)
let check_fault_recovery () =
  let strategy = Policy.Hybrid { max_block = 8; reexpand = true } in
  let fallbacks = ref 0 in
  let faults_seen = ref 0 in
  List.iter
    (fun (i, p, args) ->
      let spec = Compile.spec_of_program p ~args in
      let reference = Engine.run ~spec ~machine:e5 ~strategy () in
      if not reference.Report.oom then
        List.iter
          (fun site ->
            List.iter
              (fun fault_seed ->
                let plan =
                  Fault.make ~rate:0.25 ~seed:fault_seed ~sites:[ site ] ()
                in
                match Supervisor.run ~faults:plan ~spec ~machine:e5 ~strategy () with
                | Error e ->
                    Alcotest.failf "site %s seed %d did not recover (%s) on %s"
                      (Fault.site_name site) fault_seed (Vc_error.to_string e)
                      (describe i p args)
                | Ok o ->
                    fallbacks := !fallbacks + o.Supervisor.fallbacks;
                    faults_seen := !faults_seen + o.Supervisor.faults_seen;
                    let r = o.Supervisor.report in
                    if
                      r.Report.reducers <> reference.Report.reducers
                      || r.Report.tasks <> reference.Report.tasks
                      || r.Report.base_tasks <> reference.Report.base_tasks
                    then
                      Alcotest.failf
                        "scalar fallback diverges under site %s seed %d on %s:\n\
                         got %s / %d tasks, want %s / %d tasks"
                        (Fault.site_name site) fault_seed (describe i p args)
                        (String.concat ","
                           (List.map
                              (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                              r.Report.reducers))
                        r.Report.tasks
                        (String.concat ","
                           (List.map
                              (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                              reference.Report.reducers))
                        reference.Report.tasks)
              [ 1; 2; 3 ])
          [ Fault.Compact; Fault.Alloc ])
    (List.filteri (fun i _ -> i < 10) cases);
  if !faults_seen = 0 then Alcotest.fail "fault matrix injected nothing";
  if !fallbacks = 0 then Alcotest.fail "fault matrix never took the scalar fallback"

(* Domains matrix: the hybrid multicore × SIMD scheduler must be
   bit-equal to the single-context engine on reducers and task counts at
   every domain count, and its merged reports must be identical across
   domain counts except for the documented schedule-model fields
   (strategy, cycles, cpi, space_peak, wall_seconds).  Small chunk/block
   parameters exercise dealing, stealing and merge on shallow random
   trees. *)
let domain_counts = [ 1; 2; 4 ]

let scrub (r : Report.t) =
  {
    r with
    Report.strategy = "";
    cycles = 0.0;
    cpi = 0.0;
    space_peak = 0;
    wall_seconds = 0.0;
  }

let check_domains_matrix () =
  let strategy = Policy.Hybrid { max_block = 8; reexpand = true } in
  let checked = ref 0 in
  List.iter
    (fun (i, p, args) ->
      let spec = Compile.spec_of_program p ~args in
      let reference = Engine.run ~spec ~machine:e5 ~strategy () in
      if not reference.Report.oom then begin
        let results =
          List.map
            (fun domains ->
              ( domains,
                Domain_sched.run ~chunks:4 ~spec ~machine:e5 ~strategy ~domains
                  () ))
            domain_counts
        in
        List.iter
          (fun (domains, (d : Domain_sched.result)) ->
            let r = d.Domain_sched.report in
            if
              r.Report.reducers <> reference.Report.reducers
              || r.Report.tasks <> reference.Report.tasks
              || r.Report.base_tasks <> reference.Report.base_tasks
              || r.Report.levels <> reference.Report.levels
            then
              Alcotest.failf
                "domains=%d diverges from the single-context engine on %s:\n\
                 got %s / %d tasks, want %s / %d tasks"
                domains (describe i p args)
                (String.concat ","
                   (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                      r.Report.reducers))
                r.Report.tasks
                (String.concat ","
                   (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                      reference.Report.reducers))
                reference.Report.tasks;
            if r.Report.strategy <> Printf.sprintf "reexp+d%d" domains then
              Alcotest.failf "domains=%d strategy name is %S" domains
                r.Report.strategy;
            incr checked)
          results;
        (* merged reports bit-equal across domain counts, modulo the
           documented schedule-model fields *)
        match results with
        | (_, first) :: rest ->
            let want = scrub first.Domain_sched.report in
            List.iter
              (fun (domains, (d : Domain_sched.result)) ->
                if not (Report.equal want (scrub d.Domain_sched.report)) then
                  Alcotest.failf
                    "domains=%d merged report differs from domains=%d beyond \
                     the schedule-model fields on %s"
                    domains
                    (List.hd domain_counts)
                    (describe i p args);
                (* same chunk set => same modeled steal-free quantities *)
                if d.Domain_sched.chunks <> first.Domain_sched.chunks then
                  Alcotest.failf "domains=%d chunk count drifted on %s" domains
                    (describe i p args))
              rest
        | [] -> ()
      end)
    (List.filteri (fun i _ -> i < 15) cases);
  if !checked < 15 then
    Alcotest.failf "only %d domain checks ran (expected >= 15)" !checked

(* Compiled backend: the per-spawn-site SoA step kernels must reproduce
   the interpreter's reducers and task counts on every random program,
   across the same strategy grid as the other engines — and must match
   the blocked-interpreter backend on every result field (scheduler
   counters included), since both claim to run the identical Fig. 6
   schedule. *)
let scrub_backend (r : Backend.result) = { r with Backend.wall_seconds = 0.0 }

let check_compiled_backend () =
  let checked = ref 0 in
  List.iter
    (fun (i, p, args) ->
      let out = Vc_lang.Interp.run ~max_tasks:100_000 p args in
      let expected = out.Vc_lang.Interp.reducers in
      let expected_tasks = Vc_lang.Profile.tasks out.Vc_lang.Interp.profile in
      let source = Backend.Ir (Transform.transform p) in
      let roots = [ Array.of_list args ] in
      List.iter
        (fun (strategy, sname) ->
          let opts =
            { Backend.default_opts with strategy; max_tasks = 200_000 }
          in
          match Backend.run ~opts Backend.compiled source ~roots with
          | exception Vc_error.Error _ -> () (* task budget: skip, as OOM *)
          | r ->
              if
                r.Backend.reducers <> expected
                || r.Backend.tasks <> expected_tasks
              then
                Alcotest.failf
                  "compiled backend [%s] disagrees with the interpreter on %s:\n\
                   got %s / %d tasks, want %s / %d tasks"
                  sname (describe i p args)
                  (String.concat ","
                     (List.map
                        (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                        r.Backend.reducers))
                  r.Backend.tasks
                  (String.concat ","
                     (List.map
                        (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                        expected))
                  expected_tasks;
              (match Backend.run ~opts Backend.interp source ~roots with
              | exception Vc_error.Error _ -> ()
              | b ->
                  if scrub_backend r <> scrub_backend b then
                    Alcotest.failf
                      "compiled backend [%s] diverges from the blocked \
                       interpreter beyond wall clock on %s:\n\
                       compiled %d/%d tasks depth %d sw %d re %d, interp \
                       %d/%d tasks depth %d sw %d re %d"
                      sname (describe i p args) r.Backend.tasks
                      r.Backend.base_tasks r.Backend.max_depth
                      r.Backend.switches r.Backend.reexpansions
                      b.Backend.tasks b.Backend.base_tasks b.Backend.max_depth
                      b.Backend.switches b.Backend.reexpansions);
              incr checked)
        strategies)
    cases;
  if !checked < count * 4 then
    Alcotest.failf "only %d compiled-backend checks ran (expected >= %d)"
      !checked (count * 4)

(* Fault-armed compiled backend: an [Alloc]-site fault plan under the
   supervisor must recover — level quarantine + scalar re-execution — to
   the fault-free compiled results, bit-equal on reducers and task
   counts. *)
let check_compiled_fault_recovery () =
  let strategy = Policy.Hybrid { max_block = 8; reexpand = true } in
  let fallbacks = ref 0 in
  let faults_seen = ref 0 in
  List.iter
    (fun (i, p, args) ->
      let source = Backend.Ir (Transform.transform p) in
      let roots = [ Array.of_list args ] in
      let opts = { Backend.default_opts with strategy; max_tasks = 200_000 } in
      match Backend.run ~opts Backend.compiled source ~roots with
      | exception Vc_error.Error _ -> ()
      | reference ->
          List.iter
            (fun fault_seed ->
              let plan =
                Fault.make ~rate:0.25 ~seed:fault_seed ~sites:[ Fault.Alloc ] ()
              in
              match
                Supervisor.run_backend ~strategy ~max_tasks:200_000 ~faults:plan
                  Backend.compiled source ~roots
              with
              | Error e ->
                  Alcotest.failf
                    "compiled backend seed %d did not recover (%s) on %s"
                    fault_seed (Vc_error.to_string e) (describe i p args)
              | Ok o ->
                  fallbacks := !fallbacks + o.Supervisor.b_fallbacks;
                  faults_seen := !faults_seen + o.Supervisor.b_faults_seen;
                  let r = o.Supervisor.result in
                  if
                    r.Backend.reducers <> reference.Backend.reducers
                    || r.Backend.tasks <> reference.Backend.tasks
                    || r.Backend.base_tasks <> reference.Backend.base_tasks
                  then
                    Alcotest.failf
                      "compiled scalar fallback diverges under seed %d on %s"
                      fault_seed (describe i p args))
            [ 1; 2; 3 ])
    (List.filteri (fun i _ -> i < 10) cases);
  if !faults_seen = 0 then Alcotest.fail "compiled fault matrix injected nothing";
  if !fallbacks = 0 then
    Alcotest.fail "compiled fault matrix never took the scalar fallback"

(* Fault-armed domains: per-chunk fault plans (Fault.split) must still
   recover to the fault-free single-context results via per-domain scalar
   fallback. *)
let check_domains_fault_recovery () =
  let strategy = Policy.Hybrid { max_block = 8; reexpand = true } in
  let faults_seen = ref 0 in
  List.iter
    (fun (i, p, args) ->
      let spec = Compile.spec_of_program p ~args in
      let reference = Engine.run ~spec ~machine:e5 ~strategy () in
      if not reference.Report.oom then
        List.iter
          (fun fault_seed ->
            let plan =
              Fault.make ~rate:0.25 ~seed:fault_seed
                ~sites:[ Fault.Compact; Fault.Alloc ] ()
            in
            match
              Supervisor.run_domains ~chunks:4 ~faults:plan ~spec ~machine:e5
                ~strategy ~domains:2 ()
            with
            | Error e ->
                Alcotest.failf "domains=2 seed %d did not recover (%s) on %s"
                  fault_seed (Vc_error.to_string e) (describe i p args)
            | Ok d ->
                faults_seen := !faults_seen + d.Domain_sched.faults_seen;
                let r = d.Domain_sched.report in
                if
                  r.Report.reducers <> reference.Report.reducers
                  || r.Report.tasks <> reference.Report.tasks
                  || r.Report.base_tasks <> reference.Report.base_tasks
                then
                  Alcotest.failf
                    "domains=2 scalar fallback diverges under seed %d on %s"
                    fault_seed (describe i p args))
          [ 1; 2; 3 ])
    (List.filteri (fun i _ -> i < 10) cases);
  if !faults_seen = 0 then Alcotest.fail "domains fault matrix injected nothing"

let () =
  Alcotest.run "vc_differential"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "all engines = interpreter (%d programs, seed %d)"
               count seed)
            `Slow check_agreement;
          Alcotest.test_case "compaction engines preserve results" `Quick
            check_compaction_engines;
          Alcotest.test_case "fault injection recovers to exact results" `Quick
            check_fault_recovery;
          Alcotest.test_case "compiled backend = interpreter and blocked interp"
            `Quick check_compiled_backend;
          Alcotest.test_case "fault-armed compiled backend recovers" `Quick
            check_compiled_fault_recovery;
          Alcotest.test_case "domains matrix bit-equal to engine" `Quick
            check_domains_matrix;
          Alcotest.test_case "fault-armed domains recover per chunk" `Quick
            check_domains_fault_recovery;
        ] );
    ]
