(* Tests for the compiler passes: the scalar optimizer (Vc_lang.Optim) and
   loop distribution / if-conversion over the blocked AST
   (Vc_core.Distribute). *)

open Vc_lang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let e = Parser.expr_of_string

(* ------------------------------------------------------------------ *)
(* Optim: constant folding and identities                              *)

let test_fold_constants () =
  check_bool "1+2*3" true (Optim.fold_expr (e "1 + 2 * 3") = Ast.Int 7);
  check_bool "cmp" true (Optim.fold_expr (e "3 < 4") = Ast.Bool true);
  check_bool "shift" true (Optim.fold_expr (e "1 << 4") = Ast.Int 16);
  check_bool "builtin" true (Optim.fold_expr (e "min2(3, 9)") = Ast.Int 3);
  check_bool "nested" true (Optim.fold_expr (e "(2 + 3) * (10 - 6)") = Ast.Int 20)

let test_fold_identities () =
  check_bool "x+0" true (Optim.fold_expr (e "x + 0") = Ast.Var "x");
  check_bool "0+x" true (Optim.fold_expr (e "0 + x") = Ast.Var "x");
  check_bool "x*1" true (Optim.fold_expr (e "x * 1") = Ast.Var "x");
  check_bool "x*0" true (Optim.fold_expr (e "x * 0") = Ast.Int 0);
  check_bool "x/1" true (Optim.fold_expr (e "x / 1") = Ast.Var "x");
  check_bool "double neg" true (Optim.fold_expr (e "--x") = Ast.Var "x");
  check_bool "double not" true
    (Optim.fold_expr (Ast.Unop (Ast.Not, Ast.Unop (Ast.Not, e "x < 1"))) = e "x < 1")

let test_fold_short_circuit () =
  check_bool "true && p" true (Optim.fold_expr (e "true && x < 1") = e "x < 1");
  check_bool "false && p" true (Optim.fold_expr (e "false && x < 1") = Ast.Bool false);
  check_bool "p || false" true (Optim.fold_expr (e "x < 1 || false") = e "x < 1");
  check_bool "true || p" true (Optim.fold_expr (e "true || x < 1") = Ast.Bool true)

let test_fold_preserves_traps () =
  (* division by a constant zero must not be folded away or absorbed *)
  check_bool "1/0 kept" true (Optim.fold_expr (e "1 / 0") = e "1 / 0");
  check_bool "x%0 kept" true (Optim.fold_expr (e "x % 0") = e "x % 0");
  check_bool "(x/0)*0 kept" true
    (match Optim.fold_expr (e "(x / 0) * 0") with
    | Ast.Binop (Ast.Mul, Ast.Binop (Ast.Div, _, _), Ast.Int 0) -> true
    | _ -> false);
  (* p && false keeps a trapping left operand *)
  check_bool "trapping && false kept" true
    (match Optim.fold_expr (e "x / 0 < 1 && false") with
    | Ast.Bool false -> false
    | _ -> true)

let test_fold_stmt () =
  let s src =
    (Parser.parse_string ("def f(x) = if x < 1 then { " ^ src ^ " } else { spawn f(x - 1); }"))
      .Ast.mth.Ast.base
  in
  check_bool "if true" true
    (Optim.fold_stmt (s "if 1 < 2 then { t := 1; } else { t := 2; }") = Ast.Assign ("t", Ast.Int 1));
  check_bool "if false" true
    (Optim.fold_stmt (s "if 1 > 2 then { t := 1; } else { t := 2; }") = Ast.Assign ("t", Ast.Int 2));
  check_bool "while false" true (Optim.fold_stmt (s "while 1 > 2 { t := 1; }") = Ast.Skip);
  check_bool "skip collapse" true (Optim.fold_stmt (s "skip; t := 1; skip;") = Ast.Assign ("t", Ast.Int 1));
  check_bool "code after return dropped" true
    (Optim.fold_stmt (s "return; t := 1;") = Ast.Return);
  check_bool "empty if with pure cond" true
    (Optim.fold_stmt (s "if x < 1 then { skip; } else { skip; }") = Ast.Skip)

let test_dead_locals () =
  let p =
    Parser.parse_string
      "reducer sum r;\n\
       def f(x) =\n\
       if x < 1 then { dead := x * 2; live := x + 1; reduce(r, live); }\n\
       else { spawn f(x - 1); }"
  in
  let m = Optim.dead_locals p.Ast.mth in
  let rec has_assign name = function
    | Ast.Assign (x, _) -> x = name
    | Ast.Seq (a, b) -> has_assign name a || has_assign name b
    | Ast.If (_, a, b) -> has_assign name a || has_assign name b
    | Ast.While (_, s) -> has_assign name s
    | _ -> false
  in
  check_bool "dead removed" false (has_assign "dead" m.Ast.base);
  check_bool "live kept" true (has_assign "live" m.Ast.base)

let test_dead_local_trap_kept () =
  let p =
    Parser.parse_string
      "reducer sum r;\n\
       def f(x) =\n\
       if x < 1 then { dead := 1 / x; reduce(r, 1); } else { spawn f(x - 1); }"
  in
  let m = Optim.dead_locals p.Ast.mth in
  check_bool "trapping assignment kept" true (m.Ast.base = p.Ast.mth.Ast.base)

let optim_preserves_semantics =
  QCheck.Test.make ~name:"optimized program = original semantics" ~count:200
    Qgen.arbitrary_program_and_args (fun (p, args) ->
      let optimized = Optim.program p in
      (match Validate.check optimized with Ok _ -> true | Error _ -> false)
      &&
      let run prog =
        match Interp.run ~max_tasks:100_000 prog args with
        | out -> Ok out.Interp.reducers
        | exception Interp.Runtime_error msg -> Error msg
      in
      match (run p, run optimized) with
      | Ok a, Ok b -> a = b
      | Error _, Error _ -> true
      | _ -> false)

let optim_never_grows =
  QCheck.Test.make ~name:"optimizer never grows the program" ~count:200
    Qgen.arbitrary_program_and_args (fun (p, _) ->
      let size prog =
        Ast.expr_size prog.Ast.mth.Ast.is_base
        + Ast.stmt_size prog.Ast.mth.Ast.base
        + Ast.stmt_size prog.Ast.mth.Ast.inductive
      in
      size (Optim.program p) <= size p)

let optim_idempotent =
  QCheck.Test.make ~name:"optimizer is idempotent" ~count:200
    Qgen.arbitrary_program_and_args (fun (p, _) ->
      let once = Optim.program p in
      Optim.program once = once)

(* ------------------------------------------------------------------ *)
(* Distribute: loop distribution + if-conversion                       *)

let fib_program =
  Parser.parse_string
    "reducer sum result;\n\
     def fib(n) =\n\
     if n < 2 then { reduce(result, n); }\n\
     else { spawn fib(n - 1); spawn fib(n - 2); }"

let test_distribute_fib_structure () =
  let t = Vc_core.Transform.transform fib_program in
  let d = Vc_core.Distribute.distribute t.Vc_core.Blocked_ast.bfs_method in
  (match d.Vc_core.Distribute.steps with
  | [
   Vc_core.Distribute.Pred { mask = []; var; _ };
   Vc_core.Distribute.Reduce { mask = [ (v1, true) ]; reducer = "result"; _ };
   Vc_core.Distribute.Enqueue { mask = [ (v2, false) ]; target = Vc_core.Distribute.Next; _ };
   Vc_core.Distribute.Enqueue { mask = [ (v3, false) ]; target = Vc_core.Distribute.Next; _ };
  ] ->
      check_bool "same predicate" true (var = v1 && v1 = v2 && v2 = v3)
  | steps -> Alcotest.failf "unexpected steps (%d)" (List.length steps));
  check_int "vectorizable" 4 (Vc_core.Distribute.vectorizable_steps d);
  check_int "residual" 0 (Vc_core.Distribute.residual_steps d);
  let blocked = Vc_core.Distribute.distribute t.Vc_core.Blocked_ast.blocked_method in
  match List.rev blocked.Vc_core.Distribute.steps with
  | Vc_core.Distribute.Enqueue { target = Vc_core.Distribute.Nexts 1; _ } :: _ -> ()
  | _ -> Alcotest.fail "blocked flavor targets nexts[id]"

let test_distribute_while_residual () =
  let p =
    Parser.parse_string
      "reducer sum r;\n\
       def f(x) =\n\
       if x < 1 then { i := 3; while i > 0 { reduce(r, i); i := i - 1; } }\n\
       else { spawn f(x - 1); }"
  in
  let t = Vc_core.Transform.transform p in
  let d = Vc_core.Distribute.distribute t.Vc_core.Blocked_ast.bfs_method in
  check_int "one residual loop" 1 (Vc_core.Distribute.residual_steps d);
  let printed = Format.asprintf "%a" Vc_core.Distribute.pp d in
  check_bool "pp mentions residual" true
    (let needle = "residual scalar loop" in
     let nl = String.length needle and hl = String.length printed in
     let rec go i = i + nl <= hl && (String.sub printed i nl = needle || go (i + 1)) in
     go 0)

let test_simplify_drops_dead_preds () =
  let p =
    Parser.parse_string
      "reducer sum r;\n\
       def f(a) =\n\
       if a < 1 then { if a < 0 then { skip; } else { skip; } reduce(r, 1); }\n\
       else { spawn f(a - 1); }"
  in
  let t = Vc_core.Transform.transform p in
  let d = Vc_core.Distribute.distribute t.Vc_core.Blocked_ast.bfs_method in
  let s = Vc_core.Distribute.simplify d in
  check_bool "a step was dropped" true
    (Vc_core.Distribute.vectorizable_steps s < Vc_core.Distribute.vectorizable_steps d);
  (* the isBase predicate and live steps survive *)
  check_bool "still has steps" true (Vc_core.Distribute.vectorizable_steps s >= 3)

let test_simplify_keeps_trapping_preds () =
  let p =
    Parser.parse_string
      "reducer sum r;\n\
       def f(a) =\n\
       if a < 1 then { if 1 / (a + 9) < 1 then { skip; } reduce(r, 1); }\n\
       else { spawn f(a - 1); }"
  in
  let t = Vc_core.Transform.transform p in
  let d = Vc_core.Distribute.distribute t.Vc_core.Blocked_ast.bfs_method in
  let s = Vc_core.Distribute.simplify d in
  check_int "trapping predicate kept"
    (Vc_core.Distribute.vectorizable_steps d)
    (Vc_core.Distribute.vectorizable_steps s)

(* A miniature scheduler running distributed methods step-major, used to
   check the §4.1 reordering-soundness claim end to end. *)
let run_distributed ?(max_block = 8) ?(simplify = false) (t : Vc_core.Blocked_ast.t) args =
  let prep m =
    let d = Vc_core.Distribute.distribute m in
    if simplify then Vc_core.Distribute.simplify d else d
  in
  let dbfs = prep t.Vc_core.Blocked_ast.bfs_method in
  let dblk = prep t.Vc_core.Blocked_ast.blocked_method in
  let program = t.Vc_core.Blocked_ast.source in
  let reducers =
    Reducer.make_set
      (List.map (fun r -> (r.Ast.red_name, r.Ast.red_op)) program.Ast.reducers)
  in
  let reduce name v = Reducer.reduce reducers name v in
  let e = max t.Vc_core.Blocked_ast.num_spawns 1 in
  let rec bfs frames =
    if frames <> [] then begin
      let next = ref [] in
      Vc_core.Distribute.exec_block dbfs ~frames
        {
          Vc_core.Distribute.reduce;
          enqueue = (fun _ args -> next := args :: !next);
        };
      let level = List.rev !next in
      if List.length level < max_block then bfs level else blocked level
    end
  and blocked frames =
    if frames <> [] then begin
      let nexts = Array.make e [] in
      Vc_core.Distribute.exec_block dblk ~frames
        {
          Vc_core.Distribute.reduce;
          enqueue =
            (fun target args ->
              match target with
              | Vc_core.Distribute.Nexts i -> nexts.(i) <- args :: nexts.(i)
              | Vc_core.Distribute.Next -> ());
        };
      Array.iter
        (fun site ->
          let blk = List.rev site in
          if List.length blk > max_block then blocked blk else bfs blk)
        nexts
    end
  in
  bfs [ Array.of_list args ];
  Reducer.values reducers

let test_distributed_fib () =
  let t = Vc_core.Transform.transform fib_program in
  Alcotest.(check (list (pair string int)))
    "fib(15) step-major" [ ("result", 610) ] (run_distributed t [ 15 ])

let distributed_equiv_random =
  QCheck.Test.make
    ~name:"step-major (distributed) execution = sequential semantics" ~count:120
    Qgen.arbitrary_program_and_args (fun (p, args) ->
      let expected = (Interp.run ~max_tasks:100_000 p args).Interp.reducers in
      let t = Vc_core.Transform.transform p in
      run_distributed t args = expected)

let simplified_equiv_random =
  QCheck.Test.make ~name:"simplified distributed form = sequential semantics"
    ~count:120 Qgen.arbitrary_program_and_args (fun (p, args) ->
      let expected = (Interp.run ~max_tasks:100_000 p args).Interp.reducers in
      let t = Vc_core.Transform.transform p in
      run_distributed ~simplify:true t args = expected)

(* ------------------------------------------------------------------ *)
(* Termination certifier                                               *)

let verdict_of src = Termination.check (Parser.parse_string src)

let test_termination_fib () =
  match Termination.check fib_program with
  | Termination.Terminates { param = "n"; decreases_by = 1; lower_bound = 2 } -> ()
  | v -> Alcotest.failf "unexpected verdict: %s" (Format.asprintf "%a" Termination.pp_verdict v)

let test_termination_patterns () =
  (match verdict_of
     "def f(a) = if a <= 0 then { } else { spawn f(a - 2); spawn f(a - 1); }"
   with
  | Termination.Terminates { param = "a"; decreases_by = 1; lower_bound = 1 } -> ()
  | _ -> Alcotest.fail "le pattern");
  (match verdict_of
     "def f(a, b) = if 3 > b then { } else { spawn f(a + 1, b - 1); }"
   with
  | Termination.Terminates { param = "b"; decreases_by = 1; lower_bound = 3 } -> ()
  | _ -> Alcotest.fail "second parameter + reversed comparison");
  (* disjunct suffices *)
  match verdict_of
    "def f(a, b) = if a < 1 || b == 7 then { } else { spawn f(a - 1, b); }"
  with
  | Termination.Terminates { param = "a"; _ } -> ()
  | _ -> Alcotest.fail "disjunct pattern"

let test_termination_unknown () =
  let is_unknown src =
    match verdict_of src with Termination.Unknown _ -> true | _ -> false
  in
  check_bool "increasing argument" true
    (is_unknown "def f(a) = if a < 1 then { } else { spawn f(a + 1); }");
  check_bool "no bound" true
    (is_unknown "def f(a, b) = if b == 0 then { } else { spawn f(a - 1, b); }");
  check_bool "non-constant step" true
    (is_unknown "def f(a) = if a < 1 then { } else { spawn f(a - a); }");
  check_bool "conjunction guard rejected" true
    (is_unknown "def f(a, b) = if a < 1 && b < 1 then { } else { spawn f(a - 1, b - 1); }")

let termination_certifies_generated =
  QCheck.Test.make ~name:"generated programs are certified terminating" ~count:200
    Qgen.arbitrary_program_and_args (fun (p, _) ->
      match Termination.check p with
      | Termination.Terminates { param = "a"; _ } -> true
      | _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vc_passes"
    [
      ( "optim",
        [
          Alcotest.test_case "constant folding" `Quick test_fold_constants;
          Alcotest.test_case "identities" `Quick test_fold_identities;
          Alcotest.test_case "short-circuit" `Quick test_fold_short_circuit;
          Alcotest.test_case "trap preservation" `Quick test_fold_preserves_traps;
          Alcotest.test_case "statement folding" `Quick test_fold_stmt;
          Alcotest.test_case "dead locals" `Quick test_dead_locals;
          Alcotest.test_case "trapping dead local kept" `Quick test_dead_local_trap_kept;
        ]
        @ qsuite [ optim_preserves_semantics; optim_never_grows; optim_idempotent ]
      );
      ( "distribute",
        [
          Alcotest.test_case "fib step structure" `Quick test_distribute_fib_structure;
          Alcotest.test_case "while stays residual" `Quick test_distribute_while_residual;
          Alcotest.test_case "fib step-major run" `Quick test_distributed_fib;
          Alcotest.test_case "simplify drops dead preds" `Quick
            test_simplify_drops_dead_preds;
          Alcotest.test_case "simplify keeps trapping preds" `Quick
            test_simplify_keeps_trapping_preds;
        ]
        @ qsuite [ distributed_equiv_random; simplified_equiv_random ] );
      ( "termination",
        [
          Alcotest.test_case "fib certificate" `Quick test_termination_fib;
          Alcotest.test_case "patterns" `Quick test_termination_patterns;
          Alcotest.test_case "unknowns" `Quick test_termination_unknown;
        ]
        @ qsuite [ termination_certifies_generated ] );
    ]
