(* Tests for the eight paper benchmarks: reference implementations against
   known closed-form values, spec-vs-reference agreement, determinism, and
   registry consistency. *)

open Vc_bench

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let e5 = Vc_mem.Machine.xeon_e5

let engine_reducers spec =
  let r =
    Vc_core.Engine.run ~spec ~machine:e5
      ~strategy:(Vc_core.Policy.Hybrid { max_block = 64; reexpand = true })
      ()
  in
  r.Vc_core.Report.reducers

(* ------------------------------------------------------------------ *)
(* rng                                                                 *)

let test_rng_mix32_deterministic () =
  check_int "deterministic" (Rng.mix32 12345 3) (Rng.mix32 12345 3);
  check_bool "site changes hash" true (Rng.mix32 12345 0 <> Rng.mix32 12345 1);
  check_bool "state changes hash" true (Rng.mix32 1 0 <> Rng.mix32 2 0);
  check_bool "in range" true (Rng.mix32 999 7 >= 0 && Rng.mix32 999 7 < 1 lsl 31)

let rng_mix32_range =
  QCheck.Test.make ~name:"mix32 stays in [0, 2^31)" ~count:500
    QCheck.(pair small_nat small_nat)
    (fun (s, i) ->
      let h = Rng.mix32 s i in
      h >= 0 && h < 1 lsl 31)

let test_rng_stream () =
  let a = Rng.create ~seed:42 in
  let b = Rng.create ~seed:42 in
  let xs = List.init 20 (fun _ -> Rng.int a ~bound:1000) in
  let ys = List.init 20 (fun _ -> Rng.int b ~bound:1000) in
  check_bool "same seed same stream" true (xs = ys);
  check_bool "bounds respected" true (List.for_all (fun x -> x >= 0 && x < 1000) xs);
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int a ~bound:0))

(* ------------------------------------------------------------------ *)
(* fib                                                                 *)

let test_fib_reference () =
  Alcotest.(check (list int)) "fib 0..12"
    [ 0; 1; 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144 ]
    (List.init 13 (fun n -> Fib.reference { Fib.n }))

let test_fib_spec_runs () =
  Alcotest.(check (list (pair string int)))
    "engine agrees"
    [ ("result", 610) ]
    (engine_reducers (Fib.spec { Fib.n = 15 }))

let test_fib_dsl_agrees () =
  let program, args = Fib.dsl { Fib.n = 14 } in
  let out = Vc_lang.Interp.run_validated program args in
  check_int "dsl = native" (Fib.reference { Fib.n = 14 })
    (List.assoc "result" out.Vc_lang.Interp.reducers)

(* ------------------------------------------------------------------ *)
(* binomial                                                            *)

let test_binomial_reference () =
  check_int "C(10,3)" 120 (Binomial.reference { Binomial.n = 10; k = 3 });
  check_int "C(12,6)" 924 (Binomial.reference { Binomial.n = 12; k = 6 });
  check_int "C(7,0)" 1 (Binomial.reference { Binomial.n = 7; k = 0 });
  check_int "C(7,7)" 1 (Binomial.reference { Binomial.n = 7; k = 7 })

let binomial_symmetry =
  QCheck.Test.make ~name:"C(n,k) = C(n,n-k)" ~count:100
    QCheck.(pair (int_range 1 16) (int_range 0 16))
    (fun (n, k) ->
      let k = k mod (n + 1) in
      Binomial.reference { Binomial.n; k } = Binomial.reference { Binomial.n; k = n - k })

let test_binomial_spec_runs () =
  Alcotest.(check (list (pair string int)))
    "engine agrees"
    [ ("result", 924) ]
    (engine_reducers (Binomial.spec { Binomial.n = 12; k = 6 }))

let test_binomial_dsl_agrees () =
  let program, args = Binomial.dsl { Binomial.n = 10; k = 4 } in
  let out = Vc_lang.Interp.run_validated program args in
  check_int "dsl = native" 210 (List.assoc "result" out.Vc_lang.Interp.reducers)

(* ------------------------------------------------------------------ *)
(* parentheses                                                         *)

let test_parentheses_reference () =
  Alcotest.(check (list int)) "catalan 0..9"
    [ 1; 1; 2; 5; 14; 42; 132; 429; 1430; 4862 ]
    (List.init 10 (fun pairs -> Parentheses.reference { Parentheses.pairs }))

let test_parentheses_spec_runs () =
  Alcotest.(check (list (pair string int)))
    "engine agrees"
    [ ("result", 1430) ]
    (engine_reducers (Parentheses.spec { Parentheses.pairs = 8 }))

let test_parentheses_dsl_agrees () =
  let program, args = Parentheses.dsl { Parentheses.pairs = 7 } in
  let out = Vc_lang.Interp.run_validated program args in
  check_int "dsl = native" 429 (List.assoc "result" out.Vc_lang.Interp.reducers)

(* ------------------------------------------------------------------ *)
(* knapsack                                                            *)

let brute_force_knapsack p =
  let weights, values = Knapsack.items p in
  let cap = Knapsack.capacity p in
  let n = Array.length weights in
  let rec go i c v =
    if i = n then if c >= 0 then v else min_int
    else max (go (i + 1) (c - weights.(i)) (v + values.(i))) (go (i + 1) c v)
  in
  go 0 cap 0

let knapsack_dp_matches_brute_force =
  QCheck.Test.make ~name:"knapsack DP = brute force" ~count:30
    QCheck.(pair (int_range 4 12) (int_range 0 1000))
    (fun (n, seed) ->
      let p = { Knapsack.n; capacity_ratio = 0.5; seed } in
      Knapsack.reference p = brute_force_knapsack p)

let test_knapsack_spec_runs () =
  let p = { Knapsack.n = 12; capacity_ratio = 0.5; seed = 9 } in
  Alcotest.(check (list (pair string int)))
    "engine agrees"
    [ ("best", Knapsack.reference p) ]
    (engine_reducers (Knapsack.spec p))

let test_knapsack_tree_is_balanced () =
  let p = { Knapsack.n = 10; capacity_ratio = 0.5; seed = 2 } in
  let r = Vc_core.Seq_exec.run ~spec:(Knapsack.spec p) ~machine:e5 () in
  (* perfect binary tree: 2^(n+1) - 1 tasks, base cases only at depth n *)
  check_int "tasks" ((1 lsl 11) - 1) r.Vc_core.Report.tasks;
  check_int "base tasks" (1 lsl 10) r.Vc_core.Report.base_tasks;
  Array.iteri
    (fun depth (tasks, base) ->
      check_int (Printf.sprintf "width at %d" depth) (1 lsl depth) tasks;
      check_int
        (Printf.sprintf "base at %d" depth)
        (if depth = 10 then 1 lsl 10 else 0)
        base)
    r.Vc_core.Report.levels

(* ------------------------------------------------------------------ *)
(* nqueens                                                             *)

let test_nqueens_reference () =
  for n = 1 to 10 do
    check_int
      (Printf.sprintf "%d-queens" n)
      Nqueens.known_solutions.(n)
      (Nqueens.reference { Nqueens.n })
  done

let test_nqueens_spec_runs () =
  Alcotest.(check (list (pair string int)))
    "engine agrees"
    [ ("solutions", 40) ]
    (engine_reducers (Nqueens.spec { Nqueens.n = 7 }))

(* ------------------------------------------------------------------ *)
(* graphcol                                                            *)

let test_graphcol_chromatic_known () =
  (* triangle: 3*2*1 = 6 proper 3-colorings *)
  let triangle = [| (0, 1); (1, 2); (0, 2) |] in
  Alcotest.(check (list (pair string int)))
    "triangle" [ ("colorings", 6) ]
    (engine_reducers (Graphcol.spec_of_edges ~colors:3 ~vertices:3 triangle));
  (* path P4: k(k-1)^3 = 3*8 = 24 *)
  let path = [| (0, 1); (1, 2); (2, 3) |] in
  Alcotest.(check (list (pair string int)))
    "path" [ ("colorings", 24) ]
    (engine_reducers (Graphcol.spec_of_edges ~colors:3 ~vertices:4 path));
  (* cycle C4: (k-1)^4 + (k-1) = 16 + 2 = 18 *)
  let cycle = [| (0, 1); (1, 2); (2, 3); (0, 3) |] in
  Alcotest.(check (list (pair string int)))
    "cycle" [ ("colorings", 18) ]
    (engine_reducers (Graphcol.spec_of_edges ~colors:3 ~vertices:4 cycle));
  (* K4 with 2 colors: none *)
  let k4 = [| (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) |] in
  Alcotest.(check (list (pair string int)))
    "K4 2-coloring" [ ("colorings", 0) ]
    (engine_reducers (Graphcol.spec_of_edges ~colors:2 ~vertices:4 k4))

let test_graphcol_graph_generator () =
  let p = { Graphcol.vertices = 12; edges = 20; colors = 3; seed = 5 } in
  let g = Graphcol.graph p in
  check_int "edge count" 20 (Array.length g);
  Array.iter
    (fun (u, v) ->
      check_bool "no self loop" true (u <> v);
      check_bool "in range" true (u >= 0 && u < 12 && v >= 0 && v < 12))
    g;
  let sorted = Array.to_list g |> List.sort compare in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | _ -> true
  in
  check_bool "no duplicate edges" true (no_dup sorted);
  check_bool "deterministic" true (g = Graphcol.graph p)

let test_graphcol_spec_matches_reference () =
  let p = { Graphcol.vertices = 12; edges = 20; colors = 3; seed = 5 } in
  Alcotest.(check (list (pair string int)))
    "engine agrees"
    [ ("colorings", Graphcol.reference p) ]
    (engine_reducers (Graphcol.spec p))

(* ------------------------------------------------------------------ *)
(* uts                                                                 *)

let test_uts_determinism () =
  let p = { Uts.b0 = 30; m = 3; q = 0.3; seed = 17 } in
  check_int "same tree twice" (Uts.reference_nodes p) (Uts.reference_nodes p);
  check_bool "different seeds differ" true
    (Uts.reference_nodes p <> Uts.reference_nodes { p with Uts.seed = 18 })

let test_uts_spec_matches_reference () =
  let p = { Uts.b0 = 30; m = 3; q = 0.3; seed = 17 } in
  let spec = Uts.spec p in
  let r = Vc_core.Seq_exec.run ~spec ~machine:e5 () in
  check_int "leaves" (Uts.reference p) (Vc_core.Report.reducer r "leaves");
  (* the root runs in the driver, so the kernel executes nodes - 1 tasks *)
  check_int "tasks" (Uts.reference_nodes p - 1) r.Vc_core.Report.tasks;
  Alcotest.(check (list (pair string int)))
    "engine agrees" r.Vc_core.Report.reducers
    (engine_reducers spec)

let test_uts_default_scale () =
  (* the scaled default mirrors the paper's 136K-node tree *)
  let nodes = Uts.reference_nodes Uts.default in
  check_bool "around 136K nodes" true (nodes > 100_000 && nodes < 200_000)

(* ------------------------------------------------------------------ *)
(* minmax                                                              *)

let test_minmax_known_tallies () =
  (* classic exhaustive tic-tac-toe game-tree outcome counts *)
  let o = Minmax.reference Minmax.default in
  check_int "x wins" 131184 o.Minmax.x_wins;
  check_int "o wins" 77904 o.Minmax.o_wins;
  check_int "draws" 46080 o.Minmax.draws

let test_minmax_value_is_draw () =
  check_int "3x3 is a draw" 0 (Minmax.minimax_value Minmax.default)

let test_minmax_spec_runs () =
  let expected = Minmax.reference { Minmax.size = 3 } in
  let got = engine_reducers (Minmax.spec { Minmax.size = 3 }) in
  check_int "x wins" expected.Minmax.x_wins (List.assoc "x_wins" got);
  check_int "o wins" expected.Minmax.o_wins (List.assoc "o_wins" got);
  check_int "draws" expected.Minmax.draws (List.assoc "draws" got)

(* ------------------------------------------------------------------ *)
(* registry                                                            *)

let test_registry_complete () =
  Alcotest.(check (list string))
    "paper's Table 1 order"
    [ "knapsack"; "fib"; "parentheses"; "nqueens"; "graphcol"; "uts"; "binomial"; "minmax" ]
    Registry.names;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Registry.find "zzz"))

let test_registry_specs_validate () =
  List.iter
    (fun (e : Registry.entry) ->
      match Vc_core.Spec.validate (e.Registry.spec ()) with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s: %s" e.Registry.name (String.concat "; " es))
    Registry.all

let test_registry_dsl_entries () =
  List.iter
    (fun (e : Registry.entry) ->
      match e.Registry.dsl with
      | None -> ()
      | Some dsl ->
          List.iter
            (fun quick ->
              let program, roots = dsl ~quick in
              if roots = [] then
                Alcotest.failf "%s dsl (quick=%b): no roots" e.Registry.name quick;
              match Vc_lang.Validate.check program with
              | Ok _ -> ()
              | Error es ->
                  Alcotest.failf "%s dsl (quick=%b): %s" e.Registry.name quick
                    (String.concat "; " es))
            [ true; false ])
    Registry.all

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vc_bench"
    [
      ( "rng",
        [
          Alcotest.test_case "mix32 deterministic" `Quick test_rng_mix32_deterministic;
          Alcotest.test_case "stream" `Quick test_rng_stream;
        ]
        @ qsuite [ rng_mix32_range ] );
      ( "fib",
        [
          Alcotest.test_case "reference" `Quick test_fib_reference;
          Alcotest.test_case "spec" `Quick test_fib_spec_runs;
          Alcotest.test_case "dsl" `Quick test_fib_dsl_agrees;
        ] );
      ( "binomial",
        [
          Alcotest.test_case "reference" `Quick test_binomial_reference;
          Alcotest.test_case "spec" `Quick test_binomial_spec_runs;
          Alcotest.test_case "dsl" `Quick test_binomial_dsl_agrees;
        ]
        @ qsuite [ binomial_symmetry ] );
      ( "parentheses",
        [
          Alcotest.test_case "catalan" `Quick test_parentheses_reference;
          Alcotest.test_case "spec" `Quick test_parentheses_spec_runs;
          Alcotest.test_case "dsl" `Quick test_parentheses_dsl_agrees;
        ] );
      ( "knapsack",
        [
          Alcotest.test_case "spec" `Quick test_knapsack_spec_runs;
          Alcotest.test_case "balanced tree" `Quick test_knapsack_tree_is_balanced;
        ]
        @ qsuite [ knapsack_dp_matches_brute_force ] );
      ( "nqueens",
        [
          Alcotest.test_case "known solutions" `Quick test_nqueens_reference;
          Alcotest.test_case "spec" `Quick test_nqueens_spec_runs;
        ] );
      ( "graphcol",
        [
          Alcotest.test_case "chromatic known graphs" `Quick test_graphcol_chromatic_known;
          Alcotest.test_case "graph generator" `Quick test_graphcol_graph_generator;
          Alcotest.test_case "spec vs reference" `Quick test_graphcol_spec_matches_reference;
        ] );
      ( "uts",
        [
          Alcotest.test_case "determinism" `Quick test_uts_determinism;
          Alcotest.test_case "spec vs reference" `Quick test_uts_spec_matches_reference;
          Alcotest.test_case "default scale" `Quick test_uts_default_scale;
        ] );
      ( "minmax",
        [
          Alcotest.test_case "known tallies" `Quick test_minmax_known_tallies;
          Alcotest.test_case "minimax value" `Quick test_minmax_value_is_draw;
          Alcotest.test_case "spec" `Quick test_minmax_spec_runs;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "specs validate" `Quick test_registry_specs_validate;
          Alcotest.test_case "dsl entries validate" `Quick test_registry_dsl_entries;
        ] );
    ]
