(* Tests for the experiment harness: sweep caching and CSV export. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fib = Vc_bench.Registry.find "fib"
let e5 = Vc_mem.Machine.xeon_e5

let test_sweep_caching () =
  let ctx = Vc_exp.Sweep.create ~quick:true () in
  let a = Vc_exp.Sweep.seq ctx fib e5 in
  let b = Vc_exp.Sweep.seq ctx fib e5 in
  check_bool "memoized (same report)" true (a == b);
  let h1 = Vc_exp.Sweep.hybrid ctx fib e5 ~reexpand:true ~block:64 in
  let h2 = Vc_exp.Sweep.hybrid ctx fib e5 ~reexpand:true ~block:64 in
  check_bool "hybrid memoized" true (h1 == h2);
  let h3 = Vc_exp.Sweep.hybrid ctx fib e5 ~reexpand:false ~block:64 in
  check_bool "strategy distinguishes" true (not (h1 == h3));
  check_bool "speedup positive" true (Vc_exp.Sweep.speedup ctx fib e5 h1 > 0.0)

let test_sweep_quick_mode () =
  let quick = Vc_exp.Sweep.create ~quick:true () in
  let full = Vc_exp.Sweep.create ~quick:false () in
  let qspec = Vc_exp.Sweep.spec_of quick fib in
  let fspec = Vc_exp.Sweep.spec_of full fib in
  check_bool "quick uses smaller roots" true (qspec.Vc_core.Spec.roots <> fspec.Vc_core.Spec.roots);
  check_bool "quick grid is a subset" true
    (List.for_all
       (fun b -> List.mem b (Vc_exp.Sweep.blocks_of full fib))
       (Vc_exp.Sweep.blocks_of quick fib));
  check_int "widths agree" (Vc_exp.Sweep.width_on quick fib e5)
    (Vc_exp.Sweep.width_on full fib e5)

(* The Fig. 16 / Table 2 dedup: requesting the machine's default
   compaction engine explicitly must resolve to the plain hybrid run's key
   (one simulation, physically the same report). *)
let test_key_normalization () =
  let ctx = Vc_exp.Sweep.create ~quick:true () in
  let h = Vc_exp.Sweep.hybrid ctx fib e5 ~reexpand:true ~block:64 in
  let before = Vc_exp.Sweep.simulations ctx in
  let default =
    Vc_simd.Compact.default_for e5.Vc_mem.Machine.isa
      ~width:(Vc_exp.Sweep.width_on ctx fib e5)
  in
  let sc = Vc_exp.Sweep.with_compaction ctx fib e5 ~compact:default ~block:64 in
  check_bool "default-engine compaction is a cache hit" true (h == sc);
  check_int "no extra simulation" before (Vc_exp.Sweep.simulations ctx);
  let nosc =
    Vc_exp.Sweep.with_compaction ctx fib e5 ~compact:Vc_simd.Compact.Sequential
      ~block:64
  in
  check_bool "sequential compaction is a distinct point" true (not (h == nosc))

let reports_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ka, ra) (kb, rb) -> ka = kb && Vc_core.Report.equal ra rb)
       a b

(* The parallel-sweep determinism contract: a full quick-mode sweep
   produces identical reports (wall-clock excluded) under --jobs 1 and
   --jobs 4, and a warm rerun against the persisted cache simulates
   nothing yet returns equal reports.  One cold sweep also persists to a
   temp cache dir so the cache-hit leg reuses it. *)
let test_parallel_determinism_and_cache () =
  let cache_dir = Filename.temp_file "vc-cache" "" in
  Sys.remove cache_dir;
  let serial = Vc_exp.Sweep.create ~quick:true ~jobs:1 ~cache_dir:(Some cache_dir) () in
  Vc_exp.Sweep.prewarm serial;
  Vc_exp.Sweep.persist serial;
  check_bool "cold sweep simulated something" true (Vc_exp.Sweep.simulations serial > 0);
  check_int "cold sweep saw no cache" 0 (Vc_exp.Sweep.cache_hits serial);
  let parallel = Vc_exp.Sweep.create ~quick:true ~jobs:4 ~cache_dir:None () in
  Vc_exp.Sweep.prewarm parallel;
  check_bool "jobs 1 = jobs 4 (reports modulo wall-clock)" true
    (reports_equal (Vc_exp.Sweep.runs serial) (Vc_exp.Sweep.runs parallel));
  let warm = Vc_exp.Sweep.create ~quick:true ~jobs:4 ~cache_dir:(Some cache_dir) () in
  Vc_exp.Sweep.prewarm warm;
  check_int "warm rerun simulates nothing" 0 (Vc_exp.Sweep.simulations warm);
  check_bool "warm rerun served from disk" true (Vc_exp.Sweep.cache_hits warm > 0);
  check_bool "warm reports = cold reports" true
    (reports_equal (Vc_exp.Sweep.runs serial) (Vc_exp.Sweep.runs warm));
  (* a warm context regenerates byte-identical claims *)
  let pp ctx = Format.asprintf "%a" Vc_exp.Claims.pp (Vc_exp.Claims.all ctx) in
  Alcotest.(check string) "claims identical" (pp serial) (pp warm);
  Sys.remove (Filename.concat cache_dir "runs.json");
  Unix.rmdir cache_dir

(* ------------------------------------------------------------------ *)
(* Run_cache robustness: a damaged runs.json must never take the sweep
   down — it degrades to an empty (or partially salvaged) cache. *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sample_report () =
  let ctx = Vc_exp.Sweep.create ~quick:true () in
  Vc_core.Engine.run
    ~spec:(Vc_exp.Sweep.spec_of ctx fib)
    ~machine:e5
    ~strategy:(Vc_core.Policy.Hybrid { max_block = 64; reexpand = true })
    ()

let test_run_cache_corrupt_files () =
  let dir = temp_dir "vc-cache" in
  let path = Filename.concat dir "runs.json" in
  let load_empty what contents =
    write_file path contents;
    let c = Vc_exp.Run_cache.load ~dir () in
    check_int (what ^ " degrades to an empty cache") 0 (Vc_exp.Run_cache.entries c)
  in
  load_empty "empty file" "";
  load_empty "truncated json"
    (Printf.sprintf {|{"version": %d, "runs": {"k": {"benchma|}
       Vc_exp.Run_cache.version);
  load_empty "garbage bytes" "\x00\xff not json at all";
  load_empty "stale version" {|{"version": -1, "runs": {}}|};
  load_empty "runs not an object"
    (Printf.sprintf {|{"version": %d, "runs": 7}|} Vc_exp.Run_cache.version);
  Sys.remove path;
  Unix.rmdir dir

let test_run_cache_roundtrip () =
  let dir = temp_dir "vc-cache" in
  let r = sample_report () in
  let c = Vc_exp.Run_cache.load ~dir () in
  Vc_exp.Run_cache.add c "fib/e5/hybrid" r;
  Vc_exp.Run_cache.persist c;
  let c' = Vc_exp.Run_cache.load ~dir () in
  check_int "one entry after reload" 1 (Vc_exp.Run_cache.entries c');
  (match Vc_exp.Run_cache.find c' "fib/e5/hybrid" with
  | Some r' ->
      check_bool "report round-trips structurally" true (Vc_core.Report.equal r r');
      (* the telemetry fields ride along explicitly *)
      check_int "reexp_count" r.Vc_core.Report.reexp_count r'.Vc_core.Report.reexp_count;
      check_int "compaction_calls" r.Vc_core.Report.compaction_calls
        r'.Vc_core.Report.compaction_calls;
      check_int "compaction_passes" r.Vc_core.Report.compaction_passes
        r'.Vc_core.Report.compaction_passes;
      check_bool "occupancy_hist" true
        (r.Vc_core.Report.occupancy_hist = r'.Vc_core.Report.occupancy_hist)
  | None -> Alcotest.fail "entry missing after reload");
  Sys.remove (Filename.concat dir "runs.json");
  Unix.rmdir dir

let test_run_cache_skips_corrupt_entries () =
  let dir = temp_dir "vc-cache" in
  let r = sample_report () in
  let c = Vc_exp.Run_cache.load ~dir () in
  Vc_exp.Run_cache.add c "good" r;
  Vc_exp.Run_cache.persist c;
  (* splice a structurally-valid-JSON but non-report entry into the file *)
  let path = Filename.concat dir "runs.json" in
  let doc =
    match Vc_exp.Jsonx.parse (read_file path) with
    | Ok j -> j
    | Error m -> Alcotest.fail ("persisted cache unparseable: " ^ m)
  in
  let doc' =
    match doc with
    | Vc_exp.Jsonx.Obj fields ->
        Vc_exp.Jsonx.Obj
          (List.map
             (function
               | "runs", Vc_exp.Jsonx.Obj runs ->
                   ( "runs",
                     Vc_exp.Jsonx.Obj
                       (("zzz-bad", Vc_exp.Jsonx.Obj [ ("benchmark", Int 3) ])
                       :: runs) )
               | f -> f)
             fields)
    | _ -> Alcotest.fail "unexpected cache file shape"
  in
  write_file path (Vc_exp.Jsonx.to_string doc');
  let c' = Vc_exp.Run_cache.load ~dir () in
  check_int "good entry survives alongside the corrupt one" 1
    (Vc_exp.Run_cache.entries c');
  check_bool "and is intact" true
    (match Vc_exp.Run_cache.find c' "good" with
    | Some r' -> Vc_core.Report.equal r r'
    | None -> false);
  Sys.remove path;
  Unix.rmdir dir

let test_jsonx_depth_limit () =
  let open Vc_exp.Jsonx in
  (* a 600-deep array must come back as a typed error, not a stack
     overflow *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match parse (String.make 600 '[' ^ String.make 600 ']') with
  | Error m -> check_bool "mentions the depth budget" true (contains m "deep")
  | Ok _ -> Alcotest.fail "600-deep nesting should exceed the default budget");
  (match parse ~max_depth:3 {|[[[1]]]|} with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("3-deep under max_depth 3 rejected: " ^ m));
  (match parse ~max_depth:3 {|[[[[1]]]]|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "4-deep under max_depth 3 should be rejected");
  match parse ~max_depth:2 {|{"a": [{"b": 1}]}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "objects must count against the depth budget too"

let test_report_decode_errors () =
  let open Vc_exp.Jsonx in
  let r = sample_report () in
  let j = Vc_exp.Run_cache.json_of_report r in
  let mutate field v =
    match j with
    | Obj fields -> Obj (List.map (fun (f, x) -> (f, if f = field then v else x)) fields)
    | _ -> Alcotest.fail "report json is not an object"
  in
  let rejects what doc =
    match Vc_exp.Run_cache.report_of_json doc with
    | Error msg -> check_bool (what ^ " has a message") true (String.length msg > 0)
    | Ok _ -> Alcotest.failf "%s should fail to decode" what
  in
  (match Vc_exp.Run_cache.report_of_json j with
  | Ok r' -> check_bool "pristine json decodes" true (Vc_core.Report.equal r r')
  | Error m -> Alcotest.fail ("pristine report json rejected: " ^ m));
  (* the former 'Run_cache: bad pair/triple' failwiths, now Error values *)
  rejects "cache triple with arity 2"
    (mutate "cache" (List [ List [ String "L1d"; Int 1 ] ]));
  rejects "levels pair with arity 3"
    (mutate "levels" (List [ List [ Int 1; Int 2; Int 3 ] ]));
  rejects "reducer pair of wrong type" (mutate "reducers" (List [ Int 5 ]));
  rejects "type mismatch" (mutate "benchmark" (Int 9))

let test_run_cache_crash_safe_persist () =
  let dir = temp_dir "vc-cache" in
  let path = Filename.concat dir "runs.json" in
  let r = sample_report () in
  let c = Vc_exp.Run_cache.load ~dir () in
  Vc_exp.Run_cache.add c "keep" r;
  Vc_exp.Run_cache.persist c;
  let before = read_file path in
  (* now every write attempt faults: persist retries 3 times, then the
     typed error propagates — and the good file must be untouched *)
  let plan = Vc_core.Fault.make ~rate:1.0 ~seed:9 ~sites:[ Vc_core.Fault.Cache ] () in
  Vc_exp.Run_cache.add c "lost" r;
  (match Vc_exp.Run_cache.persist ~faults:plan c with
  | () -> Alcotest.fail "persist under a rate-1.0 fault plan should give up"
  | exception Vc_core.Vc_error.Error e ->
      check_bool "cache-io fault" true
        (Vc_core.Vc_error.site_of e = Some Vc_core.Vc_error.Cache_io);
      check_int "three attempts" 3 (Vc_core.Fault.total_fired plan));
  check_bool "failed persist leaves the file byte-identical" true
    (read_file path = before);
  check_bool "no temp files leak" true
    (Array.for_all
       (fun f -> not (String.length f >= 4 && String.sub f 0 4 = "runs" && f <> "runs.json"))
       (Sys.readdir dir));
  let c' = Vc_exp.Run_cache.load ~dir () in
  check_int "previous state still loads" 1 (Vc_exp.Run_cache.entries c');
  Sys.remove path;
  Unix.rmdir dir

let test_pool_retry () =
  (* a task that fails its first two attempts succeeds with retries 2 *)
  let attempts = Atomic.make 0 in
  let flaky () =
    if Atomic.fetch_and_add attempts 1 < 2 then failwith "transient"
  in
  Vc_exp.Pool.run ~retries:2 ~jobs:1 [ flaky ];
  check_int "two failures + one success" 3 (Atomic.get attempts);
  (* with only one retry the failure propagates verbatim *)
  Atomic.set attempts 0;
  (match Vc_exp.Pool.run ~retries:1 ~jobs:1 [ flaky ] with
  | () -> Alcotest.fail "retries 1 should not be enough"
  | exception Failure msg -> Alcotest.(check string) "verbatim" "transient" msg)

let test_pool_run_collect () =
  let ran = Array.make 4 false in
  let tasks =
    [
      (fun () -> ran.(0) <- true);
      (fun () -> failwith "boom");
      (fun () -> ran.(2) <- true);
      (fun () -> ran.(3) <- true);
    ]
  in
  (match Vc_exp.Pool.run_collect ~jobs:1 tasks with
  | [ f ] ->
      check_int "failed index" 1 f.Vc_exp.Pool.index;
      check_int "attempts" 1 f.Vc_exp.Pool.attempts;
      check_bool "classified" true
        (not (Vc_core.Vc_error.is_budget f.Vc_exp.Pool.error))
  | fs -> Alcotest.failf "expected exactly one contained failure, got %d" (List.length fs));
  check_bool "other tasks still ran" true (ran.(0) && ran.(2) && ran.(3));
  (* budget violations are never contained: they abort and re-raise *)
  let budget_task () =
    Vc_core.Vc_error.budget ~phase:Vc_core.Vc_error.Execute
      Vc_core.Vc_error.Deadline_cycles ~limit:1.0 ~actual:2.0 ()
  in
  match Vc_exp.Pool.run_collect ~jobs:1 [ (fun () -> ()); budget_task ] with
  | _ -> Alcotest.fail "budget violation should abort run_collect"
  | exception Vc_core.Vc_error.Error e ->
      check_bool "budget error" true (Vc_core.Vc_error.is_budget e)

let test_pool_contains_exhaustion () =
  (* per-run exhaustion (Memory, Task_budget) is contained by run_collect
     as a recorded per-run failure — never retried, never aborting the
     queue — unlike the deadline budgets checked above *)
  List.iter
    (fun resource ->
      let attempts = Atomic.make 0 in
      let exhaust () =
        Atomic.incr attempts;
        Vc_core.Vc_error.budget ~phase:Vc_core.Vc_error.Execute resource
          ~limit:512.0 ~actual:513.0 ()
      in
      let ran = ref false in
      match
        Vc_exp.Pool.run_collect ~retries:2 ~jobs:1
          [ exhaust; (fun () -> ran := true) ]
      with
      | [ f ] ->
          check_int "failed index" 0 f.Vc_exp.Pool.index;
          check_bool "typed budget" true
            (Vc_core.Vc_error.is_budget f.Vc_exp.Pool.error);
          check_bool "rest of the queue still ran" true !ran;
          check_int "exhaustion is never retried" 1 (Atomic.get attempts)
      | fs ->
          Alcotest.failf "expected one contained failure, got %d"
            (List.length fs))
    [ Vc_core.Vc_error.Memory; Vc_core.Vc_error.Task_budget ]

let test_jsonx_typed_decode () =
  let open Vc_exp.Jsonx in
  (* accessors raise the typed [Decode] exception, not [Failure] *)
  let rejects what f =
    match f () with
    | exception Decode _ -> ()
    | exception e ->
        Alcotest.failf "%s escaped as %s instead of Jsonx.Decode" what
          (Printexc.to_string e)
    | _ -> Alcotest.failf "%s should not decode" what
  in
  rejects "int of string" (fun () -> to_int (String "x"));
  rejects "float of list" (fun () -> to_float (List []));
  rejects "bool of null" (fun () -> to_bool Null);
  rejects "str of int" (fun () -> to_str (Int 1));
  rejects "list of obj" (fun () -> to_list (Obj []));
  rejects "fields of int" (fun () -> obj_fields (Int 1));
  (* member is total by design: Null when absent or not an object *)
  check_bool "member of non-obj is Null" true (member "k" (Int 1) = Null);
  (* and the decoders built on them turn Decode into (Error _) rather
     than letting it escape *)
  match Vc_exp.Baseline.entry_of_json (Obj [ ("label", Int 3) ]) with
  | exception Decode _ -> ()
  | _ -> Alcotest.fail "malformed baseline entry should raise Decode"

let test_jsonx_bad_escapes () =
  let open Vc_exp.Jsonx in
  let rejects what s =
    match parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should be a parse error: %s" what s
  in
  (* these must come back as [Error _], not escape as an exception *)
  rejects "non-hex \\u escape" {|"\u12zz"|};
  rejects "underscore in \\u escape" {|"\u1_23"|};
  rejects "truncated \\u escape" {|"\u12|};
  match parse {|"\u0041"|} with
  | Ok (String "A") -> ()
  | Ok _ -> Alcotest.fail "\\u0041 should decode to \"A\""
  | Error m -> Alcotest.fail ("\\u0041 rejected: " ^ m)

let test_jsonx_roundtrip () =
  let open Vc_exp.Jsonx in
  let doc =
    Obj
      [
        ("s", String "a\"b\\c\nd");
        ("i", Int (-42));
        ("f", Float 0.1);
        ("tiny", Float 1.2345678901234567e-300);
        ("t", Bool true);
        ("n", Null);
        ("l", List [ Int 1; Float 2.5; String "x"; List []; Obj [] ]);
      ]
  in
  match parse (to_string doc) with
  | Ok doc' -> check_bool "round-trips exactly" true (doc = doc')
  | Error m -> Alcotest.fail ("parse failed: " ^ m)

let test_jsonx_pretty_roundtrip () =
  let open Vc_exp.Jsonx in
  let doc =
    Obj
      [
        ("s", String "a\"b\\c\nd");
        ("i", Int (-42));
        ("f", Float 0.1);
        ("t", Bool false);
        ("n", Null);
        ("empty_l", List []);
        ("empty_o", Obj []);
        ("l", List [ Int 1; Float 2.5; Obj [ ("k", List [ Null ]) ] ]);
      ]
  in
  let pretty = to_pretty_string doc in
  check_bool "multi-line" true (String.contains pretty '\n');
  check_bool "trailing newline" true (pretty.[String.length pretty - 1] = '\n');
  match parse pretty with
  | Ok doc' -> check_bool "pretty form round-trips exactly" true (doc = doc')
  | Error m -> Alcotest.fail ("pretty parse failed: " ^ m)

let test_save_atomic () =
  let dir = temp_dir "vc-atomic" in
  let path = Filename.concat dir "out.json" in
  Vc_exp.Run_cache.save_atomic ~path "first";
  Alcotest.(check string) "payload lands" "first" (read_file path);
  (* a rate-1.0 cache fault plan exhausts the 3 retries; the previous
     payload must survive and no temp file may leak *)
  let plan = Vc_core.Fault.make ~rate:1.0 ~seed:5 ~sites:[ Vc_core.Fault.Cache ] () in
  (match Vc_exp.Run_cache.save_atomic ~faults:plan ~path "second" with
  | () -> Alcotest.fail "save_atomic under a rate-1.0 fault plan should give up"
  | exception Vc_core.Vc_error.Error e ->
      check_bool "cache-io fault" true
        (Vc_core.Vc_error.site_of e = Some Vc_core.Vc_error.Cache_io);
      check_int "three attempts" 3 (Vc_core.Fault.total_fired plan));
  Alcotest.(check string) "old payload intact" "first" (read_file path);
  check_int "no temp files leak" 1 (Array.length (Sys.readdir dir));
  (* missing parent directory is created (one level) *)
  let nested = Filename.concat (Filename.concat dir "sub") "out.json" in
  Vc_exp.Run_cache.save_atomic ~path:nested "third";
  Alcotest.(check string) "nested payload lands" "third" (read_file nested);
  Sys.remove nested;
  Unix.rmdir (Filename.concat dir "sub");
  Sys.remove path;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Baseline history + regression gate *)

let sample_metrics () =
  {
    Vc_exp.Baseline.cycles = 131072.0;
    speedup = 3.5;
    domains_speedup = 5.0;
    lane_occupancy = 0.82;
    compaction_passes = 40;
    space_peak = 750;
    occupancy_hist = [| 0; 0; 1; 2; 4; 8; 16; 32; 64; 128 |];
    wall_tasks_per_sec = 2.0e6;
  }

let sample_entry () =
  {
    Vc_exp.Baseline.label = "test";
    quick = true;
    block = 256;
    benchmarks = [ ("fib/e5", sample_metrics ()); ("uts/phi", sample_metrics ()) ];
    serve = None;
  }

let check_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "expected Ok, got Error %S" msg

let test_baseline_history_roundtrip () =
  let dir = temp_dir "vc-baseline" in
  let path = Filename.concat dir "hist.json" in
  check_bool "missing file is an empty history" true
    (Vc_exp.Baseline.load ~path = Ok []);
  let e1 = sample_entry () in
  let e2 = { e1 with Vc_exp.Baseline.label = "later" } in
  Vc_exp.Baseline.append ~path e1;
  Vc_exp.Baseline.append ~path e2;
  (match Vc_exp.Baseline.load ~path with
  | Ok [ a; b ] ->
      check_bool "entries round-trip in order" true (a = e1 && b = e2);
      check_bool "last is the newest" true
        (Vc_exp.Baseline.last [ a; b ] = Some e2)
  | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)
  | Error m -> Alcotest.fail m);
  (* a corrupt history refuses to load — and append never overwrites it *)
  let oc = open_out path in
  output_string oc "{not json";
  close_out oc;
  check_bool "corrupt history is an Error" true
    (match Vc_exp.Baseline.load ~path with Error _ -> true | Ok _ -> false);
  Vc_exp.Baseline.append ~path e1;
  Alcotest.(check string) "append dropped, file untouched" "{not json"
    (read_file path);
  Sys.remove path;
  Unix.rmdir dir

let test_baseline_check_verdicts () =
  let base = sample_entry () in
  let with_fib f =
    {
      base with
      Vc_exp.Baseline.benchmarks =
        [ ("fib/e5", f (sample_metrics ())); ("uts/phi", sample_metrics ()) ];
    }
  in
  let regressed ~baseline ~current =
    Vc_exp.Baseline.regressions
      (check_ok (Vc_exp.Baseline.check ~baseline ~current ()))
  in
  (* identical entries: every check passes, 6 metrics per benchmark *)
  let verdicts = check_ok (Vc_exp.Baseline.check ~baseline:base ~current:base ()) in
  check_int "seven checks per benchmark" 14 (List.length verdicts);
  check_int "identical entries never regress" 0
    (List.length (Vc_exp.Baseline.regressions verdicts));
  (* cycles +5% > 2% threshold: regression on exactly that metric *)
  let slow =
    with_fib (fun m -> { m with Vc_exp.Baseline.cycles = m.Vc_exp.Baseline.cycles *. 1.05 })
  in
  (match regressed ~baseline:base ~current:slow with
  | [ v ] ->
      check_bool "cycles metric" true (v.Vc_exp.Baseline.metric = "cycles");
      check_bool "on fib/e5" true (v.Vc_exp.Baseline.key = "fib/e5")
  | vs -> Alcotest.failf "expected 1 regression, got %d" (List.length vs));
  (* ...and a 10x tolerance absorbs it *)
  check_int "tolerance scales thresholds" 0
    (List.length
       (Vc_exp.Baseline.regressions
          (check_ok (Vc_exp.Baseline.check ~tolerance:10.0 ~baseline:base ~current:slow ()))));
  (* improvements (cycles down, speedup up) never regress *)
  let better =
    with_fib (fun m ->
        {
          m with
          Vc_exp.Baseline.cycles = m.Vc_exp.Baseline.cycles *. 0.5;
          speedup = m.Vc_exp.Baseline.speedup *. 2.0;
        })
  in
  check_int "improvements never regress" 0
    (List.length (regressed ~baseline:base ~current:better));
  (* speedup -5% regresses (downward-bad direction) *)
  let slower =
    with_fib (fun m -> { m with Vc_exp.Baseline.speedup = m.Vc_exp.Baseline.speedup *. 0.95 })
  in
  (match regressed ~baseline:base ~current:slower with
  | [ v ] -> check_bool "speedup metric" true (v.Vc_exp.Baseline.metric = "speedup")
  | vs -> Alcotest.failf "expected 1 regression, got %d" (List.length vs));
  (* occupancy-histogram shape drift: same total, mass moved to low deciles *)
  let shifted =
    with_fib (fun m ->
        { m with Vc_exp.Baseline.occupancy_hist = [| 128; 64; 32; 16; 8; 4; 2; 1; 0; 0 |] })
  in
  (match regressed ~baseline:base ~current:shifted with
  | [ v ] ->
      check_bool "hist metric" true (v.Vc_exp.Baseline.metric = "occupancy_hist")
  | vs -> Alcotest.failf "expected 1 regression, got %d" (List.length vs));
  (* a benchmark missing from current is a single "present" regression *)
  let missing =
    { base with Vc_exp.Baseline.benchmarks = [ ("fib/e5", sample_metrics ()) ] }
  in
  (match regressed ~baseline:base ~current:missing with
  | [ v ] ->
      check_bool "present metric" true (v.Vc_exp.Baseline.metric = "present");
      check_bool "on uts/phi" true (v.Vc_exp.Baseline.key = "uts/phi")
  | vs -> Alcotest.failf "expected 1 regression, got %d" (List.length vs));
  (* incomparable entries are harness errors, not regressions *)
  check_bool "quick/full mismatch is an Error" true
    (match
       Vc_exp.Baseline.check ~baseline:base
         ~current:{ base with Vc_exp.Baseline.quick = false }
         ()
     with
    | Error _ -> true
    | Ok _ -> false);
  check_bool "block mismatch is an Error" true
    (match
       Vc_exp.Baseline.check ~baseline:base
         ~current:{ base with Vc_exp.Baseline.block = 64 }
         ()
     with
    | Error _ -> true
    | Ok _ -> false)

(* End-to-end: collect real quick-mode metrics, write them as a baseline,
   and gate a second collection from the same (memoized) context against
   it — the determinism contract behind [vcilk bench --check-baseline]. *)
let test_baseline_collect_and_gate () =
  let ctx = Vc_exp.Sweep.create ~quick:true ~cache_dir:None () in
  let current = Vc_exp.Baseline.collect ~block:64 ctx in
  check_bool "quick scale recorded" true current.Vc_exp.Baseline.quick;
  check_int "block recorded" 64 current.Vc_exp.Baseline.block;
  check_int "every benchmark x machine present"
    (List.length Vc_bench.Registry.all * List.length Vc_exp.Sweep.machines)
    (List.length current.Vc_exp.Baseline.benchmarks);
  List.iter
    (fun (key, (m : Vc_exp.Baseline.metrics)) ->
      check_bool (key ^ " cycles positive") true (m.Vc_exp.Baseline.cycles > 0.0);
      check_bool (key ^ " speedup positive") true (m.Vc_exp.Baseline.speedup > 0.0);
      (* informational, never gated — but a fresh (uncached) collection
         must measure a real wall clock *)
      check_bool (key ^ " wall throughput positive") true
        (m.Vc_exp.Baseline.wall_tasks_per_sec > 0.0))
    current.Vc_exp.Baseline.benchmarks;
  let dir = temp_dir "vc-baseline" in
  let path = Filename.concat dir "baseline.json" in
  Vc_exp.Baseline.write ~path [ current ];
  let baseline =
    match Vc_exp.Baseline.last (check_ok (Vc_exp.Baseline.load ~path)) with
    | Some e -> e
    | None -> Alcotest.fail "written baseline should load"
  in
  let verdicts =
    check_ok
      (Vc_exp.Baseline.check ~baseline
         ~current:(Vc_exp.Baseline.collect ~block:64 ctx)
         ())
  in
  check_int "self-gate has no regressions" 0
    (List.length (Vc_exp.Baseline.regressions verdicts));
  Sys.remove path;
  Unix.rmdir dir

let lines s = String.split_on_char '\n' (String.trim s)

let test_csv_table1 () =
  let ctx = Vc_exp.Sweep.create ~quick:true () in
  let csv = Vc_exp.Csv.table1 ctx in
  match lines csv with
  | header :: rows ->
      check_bool "header" true
        (String.length header > 0 && String.sub header 0 9 = "benchmark");
      check_int "8 benchmark rows" 8 (List.length rows);
      List.iter
        (fun row ->
          check_int "7 columns" 7 (List.length (String.split_on_char ',' row)))
        rows
  | [] -> Alcotest.fail "empty csv"

let test_csv_levels () =
  let ctx = Vc_exp.Sweep.create ~quick:true () in
  let csv = Vc_exp.Csv.levels ctx ~benchmark:"fib" in
  match lines csv with
  | _header :: rows ->
      (* fib(20): 20 levels, root row is "0,1,0" *)
      check_int "level rows" 20 (List.length rows);
      Alcotest.(check string) "root row" "0,1,0" (List.hd rows)
  | [] -> Alcotest.fail "empty csv"

let test_csv_export_writes_files () =
  let ctx = Vc_exp.Sweep.create ~quick:true () in
  let dir = Filename.temp_file "vcilk" "" in
  Sys.remove dir;
  (* export only the cheap artifacts by calling the text generators *)
  ignore (Vc_exp.Csv.table1 ctx : string);
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir "table1.csv" in
  let oc = open_out path in
  output_string oc (Vc_exp.Csv.table1 ctx);
  close_out oc;
  check_bool "file written" true (Sys.file_exists path);
  Sys.remove path;
  Unix.rmdir dir

let test_ascii_plot () =
  let out =
    Format.asprintf "%t"
      (Vc_exp.Ascii_plot.plot ~width:20 ~height:5
         [
           {
             Vc_exp.Ascii_plot.label = "ramp";
             marker = '*';
             points = [ (0.0, 0.0); (1.0, 0.5); (2.0, 1.0) ];
           };
         ])
  in
  let lines = String.split_on_char '\n' out in
  (* 5 grid rows + axis + x labels + legend *)
  check_bool "has grid rows" true (List.length lines >= 8);
  check_bool "marker present" true (String.contains out '*');
  check_bool "legend present" true
    (List.exists (fun l -> String.length l > 0 && String.contains l '=') lines)

let test_ascii_plot_empty () =
  let out = Format.asprintf "%t" (Vc_exp.Ascii_plot.plot []) in
  check_bool "notice" true (String.length out > 0)

let () =
  Alcotest.run "vc_exp"
    [
      ( "sweep",
        [
          Alcotest.test_case "caching" `Quick test_sweep_caching;
          Alcotest.test_case "quick mode" `Quick test_sweep_quick_mode;
          Alcotest.test_case "key normalization" `Quick test_key_normalization;
          Alcotest.test_case "parallel determinism + run cache" `Slow
            test_parallel_determinism_and_cache;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "pretty roundtrip" `Quick test_jsonx_pretty_roundtrip;
          Alcotest.test_case "bad escapes are errors" `Quick test_jsonx_bad_escapes;
          Alcotest.test_case "accessors raise typed Decode" `Quick
            test_jsonx_typed_decode;
          Alcotest.test_case "nesting depth is bounded" `Quick
            test_jsonx_depth_limit;
        ] );
      ( "run-cache",
        [
          Alcotest.test_case "corrupt files degrade to empty" `Quick
            test_run_cache_corrupt_files;
          Alcotest.test_case "report round-trip (telemetry fields)" `Quick
            test_run_cache_roundtrip;
          Alcotest.test_case "corrupt entries are skipped" `Quick
            test_run_cache_skips_corrupt_entries;
          Alcotest.test_case "malformed payloads decode to Error" `Quick
            test_report_decode_errors;
          Alcotest.test_case "failed persist never corrupts the file" `Quick
            test_run_cache_crash_safe_persist;
          Alcotest.test_case "save_atomic crash safety" `Quick test_save_atomic;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "history roundtrip + corrupt refusal" `Quick
            test_baseline_history_roundtrip;
          Alcotest.test_case "check verdicts" `Quick test_baseline_check_verdicts;
          Alcotest.test_case "collect + self-gate" `Slow
            test_baseline_collect_and_gate;
        ] );
      ( "pool",
        [
          Alcotest.test_case "retry with backoff" `Quick test_pool_retry;
          Alcotest.test_case "run_collect contains failures" `Quick
            test_pool_run_collect;
          Alcotest.test_case "exhaustion budgets are contained, not fatal"
            `Quick test_pool_contains_exhaustion;
        ] );
      ( "csv",
        [
          Alcotest.test_case "table1" `Quick test_csv_table1;
          Alcotest.test_case "levels" `Quick test_csv_levels;
          Alcotest.test_case "export writes files" `Quick test_csv_export_writes_files;
        ] );
      ( "ascii-plot",
        [
          Alcotest.test_case "renders" `Quick test_ascii_plot;
          Alcotest.test_case "empty" `Quick test_ascii_plot_empty;
        ] );
    ]
