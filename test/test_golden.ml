(* Golden snapshot tests for the text artifacts.

   Each table/figure below is fully deterministic in quick mode (modeled
   quantities only — table1 is excluded because it prints host wall-clock
   seconds), so its rendered text is snapshotted under test/golden/ and
   compared byte-for-byte.  This pins the artifact layer: a change to the
   cost model, the sweep grid, or the formatting shows up as a readable
   text diff instead of a silent drift.

   To update the snapshots after an intentional change:

     VC_GOLDEN_PROMOTE=test/golden dune exec test/test_golden.exe

   run from the repository root (the variable points at the source golden
   directory; the test then rewrites the files and passes). *)

let promote_dir = Sys.getenv_opt "VC_GOLDEN_PROMOTE"

let ctx = Vc_exp.Sweep.create ~quick:true ~jobs:1 ~cache_dir:None ()

let render artifact =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  artifact ctx fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* First differing line, for a readable failure message. *)
let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la, y :: lb when x = y -> go (i + 1) la lb
    | x :: _, y :: _ -> Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<end of golden>")
    | [], y :: _ -> Some (i, "<end of output>", y)
  in
  go 1 la lb

let check name artifact () =
  let got = render artifact in
  match promote_dir with
  | Some dir ->
      write_file (Filename.concat dir (name ^ ".txt")) got;
      Printf.printf "promoted %s/%s.txt\n%!" dir name
  | None -> (
      let path = Filename.concat "golden" (name ^ ".txt") in
      if not (Sys.file_exists path) then
        Alcotest.failf "missing golden file %s (run with VC_GOLDEN_PROMOTE)" path;
      let expected = read_file path in
      if got <> expected then
        match first_diff expected got with
        | Some (line, want, have) ->
            Alcotest.failf
              "%s drifted from its golden snapshot at line %d:\n\
               golden: %s\n\
               output: %s\n\
               (if intentional, re-promote with VC_GOLDEN_PROMOTE=test/golden)"
              name line want have
        | None -> Alcotest.failf "%s differs only in trailing bytes" name)

let artifacts =
  [
    ("table2", Vc_exp.Tables.table2);
    ("table3", Vc_exp.Tables.table3);
    ("figure9", Vc_exp.Figures.figure9);
    ("figure10", Vc_exp.Figures.figure10);
    ("figure15", Vc_exp.Figures.figure15);
    ("figure16", Vc_exp.Figures.figure16);
    ("figure17", Vc_exp.Figures.figure17);
  ]

let () =
  Alcotest.run "vc_golden"
    [
      ( "golden",
        List.map
          (fun (name, artifact) ->
            Alcotest.test_case name `Slow (check name artifact))
          artifacts );
    ]
