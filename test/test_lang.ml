(* Tests for the language front-end: lexer, parser, pretty-printer,
   validator, reducers, builtins, and the sequential interpreter. *)

open Vc_lang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fib_src =
  "reducer sum result;\n\
   def fib(n) =\n\
  \  if n < 2 then { reduce(result, n); }\n\
  \  else { spawn fib(n - 1); spawn fib(n - 2); }\n"

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let test_lexer_tokens () =
  let toks = Lexer.tokens_of_string "def f(x) = x := 1; // comment\n /* multi\nline */ <= <<" in
  let kinds = List.map (fun { Token.token; _ } -> token) toks in
  Alcotest.(check (list string))
    "token kinds"
    [ "def"; "f"; "("; "x"; ")"; "="; "x"; ":="; "1"; ";"; "<="; "<<"; "<eof>" ]
    (List.map Token.to_string kinds)

let test_lexer_errors () =
  (try
     ignore (Lexer.tokens_of_string "a $ b");
     Alcotest.fail "expected lexer error"
   with Lexer.Error (msg, _, _) ->
     check_bool "mentions char" true (String.length msg > 0));
  try
    ignore (Lexer.tokens_of_string "/* unterminated");
    Alcotest.fail "expected unterminated comment error"
  with Lexer.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parse_fib () =
  let p = Parser.parse_string fib_src in
  Alcotest.(check (list string)) "params" [ "n" ] p.Ast.mth.Ast.params;
  check_int "spawn sites" 2 (Ast.num_spawns p);
  let sites = Ast.spawn_sites p.Ast.mth.Ast.inductive in
  Alcotest.(check (list int)) "ids in order" [ 0; 1 ]
    (List.map (fun s -> s.Ast.spawn_id) sites);
  match p.Ast.reducers with
  | [ { Ast.red_name = "result"; red_op = Reducer.Sum } ] -> ()
  | _ -> Alcotest.fail "reducer decl"

let test_parse_precedence () =
  let e = Parser.expr_of_string "1 + 2 * 3" in
  check_bool "mul binds tighter"
    true
    (e = Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)));
  let e2 = Parser.expr_of_string "a < 1 && b < 2 || c < 3" in
  (match e2 with Ast.Binop (Ast.Or, _, _) -> () | _ -> Alcotest.fail "|| loosest");
  let e3 = Parser.expr_of_string "-x + 1" in
  (match e3 with
  | Ast.Binop (Ast.Add, Ast.Unop (Ast.Neg, Ast.Var "x"), Ast.Int 1) -> ()
  | _ -> Alcotest.fail "unary tight");
  let e4 = Parser.expr_of_string "(1 + 2) * 3" in
  match e4 with Ast.Binop (Ast.Mul, _, _) -> () | _ -> Alcotest.fail "parens"

let test_parse_optional_else () =
  let p =
    Parser.parse_string
      "def f(a) = if a < 1 then { return; } else { if a > 2 then { spawn f(a - 1); } }"
  in
  match p.Ast.mth.Ast.inductive with
  | Ast.If (_, Ast.Spawn _, Ast.Skip) -> ()
  | _ -> Alcotest.fail "optional else should be Skip"

let test_parse_errors () =
  let expect_error src =
    try
      ignore (Parser.parse_string src);
      Alcotest.failf "expected parse error for %S" src
    with Parser.Error _ -> ()
  in
  expect_error "def f(x) = if x then { } else { spawn g(x); }";
  (* spawn of other method *)
  expect_error "def f(x) = if x < 1 then { return } else { return; }";
  (* missing semicolon *)
  expect_error "reducer prod r; def f(x) = if x < 1 then { } else { }";
  (* unknown reducer op *)
  expect_error "def f(x) = if x < 1 then { } else { } extra"

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trip                                           *)

let test_pp_roundtrip_fixed () =
  List.iter
    (fun src ->
      let p = Parser.parse_string src in
      let printed = Pp.program_to_string p in
      let p2 = Parser.parse_string printed in
      check_bool "roundtrip equal" true (p = p2))
    [ fib_src ]

let pp_roundtrip_random =
  QCheck.Test.make ~name:"pp/parse roundtrip on random programs" ~count:300
    Qgen.arbitrary_program_and_args (fun (p, _) ->
      let printed = Pp.program_to_string p in
      Parser.parse_string printed = p)

(* ------------------------------------------------------------------ *)
(* Validator                                                           *)

let valid src = match Validate.check (Parser.parse_string src) with Ok _ -> true | Error _ -> false

let errors_of src =
  match Validate.check (Parser.parse_string src) with
  | Ok _ -> []
  | Error es -> es

let test_validate_ok () =
  check_bool "fib valid" true (valid fib_src);
  let info = Validate.check_exn (Parser.parse_string fib_src) in
  check_int "num spawns" 2 info.Validate.num_spawns;
  Alcotest.(check (list string)) "no locals" [] info.Validate.locals

let test_validate_locals () =
  let info =
    Validate.check_exn
      (Parser.parse_string
         "reducer sum r;\n\
          def f(a) = if a < 1 then { t := a + 1; u := t * 2; reduce(r, u); } else { spawn f(a - 1); }")
  in
  Alcotest.(check (list string)) "locals in order" [ "t"; "u" ] info.Validate.locals

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let expect_violation src fragment =
  match errors_of src with
  | [] -> Alcotest.failf "expected a violation mentioning %S" fragment
  | es ->
      check_bool
        (Printf.sprintf "mentions %s (got: %s)" fragment (String.concat "; " es))
        true
        (List.exists (contains fragment) es)

let test_validate_violations () =
  expect_violation
    "reducer sum r; def f(a) = if a < 1 then { } else { reduce(r, a); spawn f(a - 1); }"
    "reduce outside the base case";
  expect_violation
    "reducer sum r; def f(a) = if a < 1 then { spawn f(a - 1); } else { spawn f(a - 1); }"
    "spawn outside the inductive case";
  expect_violation
    "def f(a) = if a < 1 then { } else { while a > 0 { spawn f(a - 1); } }"
    "statically bounded";
  expect_violation "def f(a) = if a < 1 then { reduce(r, 1); } else { spawn f(a - 1); }"
    "undeclared reducer";
  expect_violation "def f(a) = if a < 1 then { reduce(r, t); } else { spawn f(a - 1); }"
    "before assignment";
  expect_violation "def f(a) = if a < 1 then { a := 2; } else { spawn f(a - 1); }"
    "assignment to parameter";
  expect_violation "def f(a) = if a < 1 then { } else { spawn f(a - 1, 3); }"
    "parameters";
  expect_violation "def f(a) = if a + 1 then { } else { spawn f(a - 1); }" "must be bool";
  expect_violation "def f(a) = if a < 1 then { t := a < 2; } else { spawn f(a - 1); }"
    "must be int";
  expect_violation "def f(a) = if a < 1 then { t := foo(a); } else { spawn f(a - 1); }"
    "unknown builtin";
  expect_violation "def f(a, a) = if a < 1 then { } else { spawn f(a - 1, a); }"
    "duplicate parameter"

let test_validate_if_assignment_intersection () =
  (* a local assigned in only one branch is not definitely assigned *)
  expect_violation
    "reducer sum r;\n\
     def f(a) = if a < 1 then { if a < 0 then { t := 1; } else { skip; } reduce(r, t); } \
     else { spawn f(a - 1); }"
    "before assignment";
  (* assigned in both branches: fine *)
  check_bool "both branches ok" true
    (valid
       "reducer sum r;\n\
        def f(a) = if a < 1 then { if a < 0 then { t := 1; } else { t := 2; } reduce(r, t); } \
        else { spawn f(a - 1); }")

let random_programs_validate =
  QCheck.Test.make ~name:"generated programs validate" ~count:300
    Qgen.arbitrary_program_and_args (fun (p, _) ->
      match Validate.check p with Ok _ -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Reducers and builtins                                               *)

let test_reducers () =
  check_int "sum identity" 0 (Reducer.identity Reducer.Sum);
  check_int "min identity" max_int (Reducer.identity Reducer.Min);
  check_int "apply max" 7 (Reducer.apply Reducer.Max 3 7);
  let set = Reducer.make_set [ ("a", Reducer.Sum); ("b", Reducer.Min) ] in
  Reducer.reduce set "a" 5;
  Reducer.reduce set "a" 3;
  Reducer.reduce set "b" 42;
  (match Reducer.values set with
  | [ ("a", 8); ("b", 42) ] -> ()
  | _ -> Alcotest.fail "reducer values");
  Reducer.reset_set set;
  check_int "reset" 0 (Reducer.value (Reducer.find set "a"));
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Reducer.make_set: duplicate reducer \"a\"") (fun () ->
      ignore (Reducer.make_set [ ("a", Reducer.Sum); ("a", Reducer.Max) ]))

let test_builtins () =
  List.iter
    (fun name ->
      match Builtins.find name with
      | Some _ -> ()
      | None -> Alcotest.failf "missing builtin %s" name)
    Builtins.names;
  (match Builtins.find "popcount" with
  | Some fn -> check_int "popcount" 3 (fn.Builtins.apply [| 0b10110 |])
  | None -> Alcotest.fail "popcount");
  check_bool "unknown" true (Builtins.find "nope" = None)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let run_fib n =
  let p = Parser.parse_string fib_src in
  let out = Interp.run_validated p [ n ] in
  List.assoc "result" out.Interp.reducers

let test_interp_fib () =
  Alcotest.(check (list int)) "fib 0..10"
    [ 0; 1; 1; 2; 3; 5; 8; 13; 21; 34; 55 ]
    (List.init 11 run_fib)

let test_interp_profile () =
  let p = Parser.parse_string fib_src in
  let out = Interp.run_validated p [ 10 ] in
  let profile = out.Interp.profile in
  (* fib computation tree: 2*fib(n+1)-1 nodes *)
  check_int "tasks" ((2 * 89) - 1) (Profile.tasks profile);
  check_int "base tasks" 89 (Profile.base_tasks profile);
  check_int "depth" 9 (Profile.max_depth profile);
  let levels = Profile.levels profile in
  check_int "level 0" 1 (fst levels.(0));
  check_int "level 1" 2 (fst levels.(1));
  check_int "sum of levels = tasks" (Profile.tasks profile)
    (Array.fold_left (fun acc (t, _) -> acc + t) 0 levels);
  check_bool "kernel ops counted" true (Profile.kernel_op_count profile > 0);
  check_bool "overhead ops counted" true (Profile.overhead_op_count profile > 0);
  let frac = Profile.vectorizable_fraction profile in
  check_bool "fraction in (0,1)" true (frac > 0.0 && frac < 1.0)

let test_interp_statements () =
  (* while loop, locals, builtins, short-circuit *)
  let src =
    "reducer sum r;\n\
     def f(a) =\n\
     if a < 1 then {\n\
     \  t := 0;\n\
     \  i := a + 3;\n\
     \  while i > 0 { t := t + i; i := i - 1; }\n\
     \  if a == 0 && t > 0 then { reduce(r, t + min2(a, 2)); }\n\
     } else { spawn f(a - 2); }"
  in
  let out = Interp.run_validated (Parser.parse_string src) [ 2 ] in
  (* a=2 spawns a=0: t = 3+2+1 = 6, min2(0,2)=0 *)
  check_int "loop result" 6 (List.assoc "r" out.Interp.reducers)

let test_interp_return_semantics () =
  let src =
    "reducer sum r;\n\
     def f(a) =\n\
     if a < 1 then { reduce(r, 1); return; reduce(r, 100); } else { spawn f(a - 1); }"
  in
  let out = Interp.run_validated (Parser.parse_string src) [ 0 ] in
  check_int "return aborts rest" 1 (List.assoc "r" out.Interp.reducers)

let test_interp_runtime_errors () =
  let src = "reducer sum r; def f(a) = if a < 1 then { reduce(r, 1 / a); } else { spawn f(a - 1); }" in
  Alcotest.check_raises "div by zero" (Interp.Runtime_error "division by zero")
    (fun () -> ignore (Interp.run_validated (Parser.parse_string src) [ 0 ]))

let test_interp_task_limit () =
  let p = Parser.parse_string fib_src in
  Alcotest.check_raises "limit" (Interp.Task_limit_exceeded 10) (fun () ->
      ignore (Interp.run ~max_tasks:10 p [ 20 ]))

let test_lexer_positions () =
  (try
     ignore (Lexer.tokens_of_string "a\nb $");
     Alcotest.fail "expected error"
   with Lexer.Error (_, line, col) ->
     check_int "line" 2 line;
     check_int "col" 2 col);
  try
    ignore (Parser.parse_string "def f(x) =\n  if x < 1 then { oops }")
  with Parser.Error (_, line, _) -> check_int "parser line" 2 line

let test_interp_bitops () =
  let src =
    "reducer sum r;\n\
     def f(a) =\n\
     if a < 1 then { reduce(r, (5 & 3) + (5 | 3) + (5 ^ 3) + (1 << 4) + (32 >> 2) + popcount(255)); }\n\
     else { spawn f(a - 1); }"
  in
  let out = Interp.run_validated (Parser.parse_string src) [ 0 ] in
  (* 1 + 7 + 6 + 16 + 8 + 8 = 46 *)
  check_int "bit ops" 46 (List.assoc "r" out.Interp.reducers)

let test_interp_min_max_reducers () =
  let src =
    "reducer min lo;\nreducer max hi;\n\
     def f(a) =\n\
     if a < 1 then { reduce(lo, a * 10); reduce(hi, a * 10); }\n\
     else { spawn f(a - 1); spawn f(a - 2); }"
  in
  let out = Interp.run_validated (Parser.parse_string src) [ 4 ] in
  (* leaves reach a = 0 and a = -1 *)
  check_int "min" (-10) (List.assoc "lo" out.Interp.reducers);
  check_int "max" 0 (List.assoc "hi" out.Interp.reducers)

let test_interp_arity () =
  let p = Parser.parse_string fib_src in
  try
    ignore (Interp.run p [ 1; 2 ]);
    Alcotest.fail "expected arity error"
  with Interp.Runtime_error _ -> ()

let interp_deterministic =
  QCheck.Test.make ~name:"interpreter deterministic on random programs" ~count:150
    Qgen.arbitrary_program_and_args (fun (p, args) ->
      let a = Interp.run ~max_tasks:100_000 p args in
      let b = Interp.run ~max_tasks:100_000 p args in
      a.Interp.reducers = b.Interp.reducers
      && Profile.tasks a.Interp.profile = Profile.tasks b.Interp.profile)

(* ------------------------------------------------------------------ *)
(* AST helpers                                                         *)

let test_ast_sizes () =
  check_int "expr size" 5 (Ast.expr_size (Parser.expr_of_string "1 + 2 * x"));
  check_int "skip size" 0 (Ast.stmt_size Ast.Skip);
  let p = Parser.parse_string fib_src in
  check_bool "stmt size positive" true (Ast.stmt_size p.Ast.mth.Ast.inductive > 0)

let test_ast_seq () =
  check_bool "seq empty" true (Ast.seq [] = Ast.Skip);
  check_bool "seq single" true (Ast.seq [ Ast.Return ] = Ast.Return)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vc_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "fib structure" `Quick test_parse_fib;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "optional else" `Quick test_parse_optional_else;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "pp",
        [ Alcotest.test_case "fixed roundtrip" `Quick test_pp_roundtrip_fixed ]
        @ qsuite [ pp_roundtrip_random ] );
      ( "validate",
        [
          Alcotest.test_case "accepts fib" `Quick test_validate_ok;
          Alcotest.test_case "collects locals" `Quick test_validate_locals;
          Alcotest.test_case "violations" `Quick test_validate_violations;
          Alcotest.test_case "branch assignment" `Quick test_validate_if_assignment_intersection;
        ]
        @ qsuite [ random_programs_validate ] );
      ( "reducer+builtins",
        [
          Alcotest.test_case "reducers" `Quick test_reducers;
          Alcotest.test_case "builtins" `Quick test_builtins;
        ] );
      ( "interp",
        [
          Alcotest.test_case "fib values" `Quick test_interp_fib;
          Alcotest.test_case "profile" `Quick test_interp_profile;
          Alcotest.test_case "statements" `Quick test_interp_statements;
          Alcotest.test_case "return semantics" `Quick test_interp_return_semantics;
          Alcotest.test_case "runtime errors" `Quick test_interp_runtime_errors;
          Alcotest.test_case "task limit" `Quick test_interp_task_limit;
          Alcotest.test_case "arity" `Quick test_interp_arity;
          Alcotest.test_case "error positions" `Quick test_lexer_positions;
          Alcotest.test_case "bit operations" `Quick test_interp_bitops;
          Alcotest.test_case "min/max reducers" `Quick test_interp_min_max_reducers;
        ]
        @ qsuite [ interp_deterministic ] );
      ( "ast",
        [
          Alcotest.test_case "sizes" `Quick test_ast_sizes;
          Alcotest.test_case "seq" `Quick test_ast_seq;
        ] );
    ]
