(* Serve-daemon tests: the wire protocol's typed edge cases (malformed,
   oversized, unknown, dropped, overloaded, deadline-exceeded — each of
   which must leave the daemon serving), graceful-drain semantics, the
   persistent worker pool's containment contract, budget clamping, the
   /stats reservoir, and the exit-code taxonomy constants the CLI and CI
   assert against. *)

module Protocol = Vc_serve.Protocol
module Server = Vc_serve.Server
module Stats = Vc_serve.Stats
module Loadgen = Vc_serve.Loadgen
module E = Vc_core.Vc_error
module Supervisor = Vc_core.Supervisor
module Pool = Vc_exp.Pool

let status = Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Protocol.status_name s))
    ( = )

(* ------------------------------------------------------------ protocol *)

let check_parse_errors () =
  let is_protocol_error = function
    | Error { E.kind = E.Fault { site = E.Protocol; _ }; _ } -> true
    | _ -> false
  in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "%S is a typed protocol error" line)
        true
        (is_protocol_error (Protocol.parse_request line)))
    [
      "not json at all";
      "[1,2,3]";
      "{\"op\":\"run\"}" (* missing bench *);
      "{\"bench\":\"fib\",\"engine\":\"gpu\"}";
      "{\"bench\":\"fib\",\"strategy\":\"dfs\"}";
      "{\"bench\":\"fib\",\"block\":0}";
      "{\"bench\":\"fib\",\"delay_ms\":-1}";
      "{\"bench\":42}";
      "{\"op\":\"explode\"}";
    ]

let check_request_roundtrip () =
  let req =
    {
      (Protocol.run_request ~bench:"uts") with
      id = "r-1";
      engine = "compiled";
      strategy = "noreexp";
      block = 512;
      deadline = Some 1e6;
      max_tasks = Some 1000;
      delay_ms = 5;
    }
  in
  match Protocol.parse_request (Protocol.request_line req) with
  | Error e -> Alcotest.fail (E.to_string e)
  | Ok req' ->
      Alcotest.(check bool) "request round-trips" true (req = req')

let check_status_mapping () =
  let budget resource =
    {
      E.kind = E.Budget_exceeded { resource; limit = 1.0; actual = 2.0 };
      phase = E.Execute;
      detail = "";
    }
  in
  let fault site =
    { E.kind = E.Fault { site; hint = E.Abort }; phase = E.Execute; detail = "" }
  in
  Alcotest.check status "queue-depth budget is overloaded" Protocol.Overloaded
    (Protocol.status_of_error (budget E.Queue_depth));
  Alcotest.check status "deadline budget is budget_exceeded"
    Protocol.Budget_limit
    (Protocol.status_of_error (budget E.Deadline_cycles));
  Alcotest.check status "protocol fault is bad_request" Protocol.Bad_request
    (Protocol.status_of_error (fault E.Protocol));
  Alcotest.check status "other faults stay faults" Protocol.Fault_
    (Protocol.status_of_error (fault E.Compaction));
  (* every status round-trips through its wire name *)
  List.iter
    (fun s ->
      Alcotest.(check (option status))
        (Protocol.status_name s) (Some s)
        (Protocol.status_of_string (Protocol.status_name s)))
    [
      Protocol.Ok_; Protocol.Overloaded; Protocol.Budget_limit;
      Protocol.Fault_; Protocol.Bad_request; Protocol.Unknown_bench;
      Protocol.Shutting_down; Protocol.Timeout_; Protocol.Internal;
    ]

(* The process-level exit taxonomy is defined once in Vc_error; the CLI
   man page, CI and this test all read the same constants. *)
let check_exit_taxonomy () =
  Alcotest.(check int) "ok" 0 E.exit_ok;
  Alcotest.(check int) "detected failure" 1 E.exit_failure;
  Alcotest.(check int) "budget exceeded" 2 E.exit_budget;
  Alcotest.(check int) "perf regression" 3 E.exit_regression;
  let budget =
    {
      E.kind =
        E.Budget_exceeded
          { resource = E.Deadline_wall; limit = 1.0; actual = 2.0 };
      phase = E.Execute;
      detail = "";
    }
  in
  let fault =
    {
      E.kind = E.Fault { site = E.Scheduler; hint = E.Abort };
      phase = E.Execute;
      detail = "";
    }
  in
  Alcotest.(check int) "budget errors exit 2" E.exit_budget (E.exit_code budget);
  Alcotest.(check int) "faults exit 1" E.exit_failure (E.exit_code fault)

(* ------------------------------------------------- supporting modules *)

let check_clamp_budgets () =
  let ceiling =
    Supervisor.budgets ~deadline:100.0 ~max_live_frames:50 ()
  in
  let req = Supervisor.budgets ~deadline:500.0 ~wall_deadline:2.0 () in
  let clamped = Supervisor.clamp_budgets ~ceiling req in
  Alcotest.(check (option (float 0.0))) "request cannot relax the ceiling"
    (Some 100.0) clamped.Supervisor.deadline;
  Alcotest.(check (option (float 0.0))) "request adds its own budget"
    (Some 2.0) clamped.Supervisor.wall_deadline;
  Alcotest.(check (option int)) "ceiling applies when request is silent"
    (Some 50) clamped.Supervisor.max_live_frames;
  let tighter = Supervisor.budgets ~deadline:10.0 () in
  Alcotest.(check (option (float 0.0))) "request can tighten"
    (Some 10.0)
    (Supervisor.clamp_budgets ~ceiling tighter).Supervisor.deadline

let check_reservoir () =
  let r = Vc_core.Metrics.Reservoir.create ~capacity:4 in
  Alcotest.(check (float 0.0)) "empty quantile is 0" 0.0
    (Vc_core.Metrics.Reservoir.quantile r 0.5);
  List.iter (Vc_core.Metrics.Reservoir.add r) [ 10.0; 20.0; 30.0; 40.0 ];
  Alcotest.(check (float 0.0)) "p50 nearest-rank" 20.0
    (Vc_core.Metrics.Reservoir.quantile r 0.5);
  Alcotest.(check (float 0.0)) "p99 nearest-rank" 40.0
    (Vc_core.Metrics.Reservoir.quantile r 0.99);
  (* the window slides: 10 is evicted, lifetime max survives *)
  Vc_core.Metrics.Reservoir.add r 5.0;
  Alcotest.(check (float 0.0)) "window slid" 5.0
    (Vc_core.Metrics.Reservoir.quantile r 0.0);
  Alcotest.(check (float 0.0)) "lifetime max" 40.0
    (Vc_core.Metrics.Reservoir.max_value r);
  Alcotest.(check int) "count is lifetime" 5
    (Vc_core.Metrics.Reservoir.count r)

let check_worker_pool () =
  let pool = Pool.start_pool ~workers:2 () in
  let counter = Atomic.make 0 in
  for _ = 1 to 16 do
    match Pool.submit pool (fun () -> Atomic.incr counter) with
    | `Queued -> ()
    | `Draining -> Alcotest.fail "pool refused work before drain"
  done;
  Pool.pool_quiesce pool;
  Alcotest.(check int) "every job ran" 16 (Atomic.get counter);
  (* containment: a raising job must not kill its worker domain *)
  ignore (Pool.submit pool (fun () -> failwith "job dies"));
  ignore (Pool.submit pool (fun () -> Atomic.incr counter));
  Pool.pool_quiesce pool;
  Alcotest.(check int) "worker survived a raising job" 17 (Atomic.get counter);
  Pool.drain_pool pool;
  (match Pool.submit pool (fun () -> Atomic.incr counter) with
  | `Draining -> ()
  | `Queued -> Alcotest.fail "drained pool accepted work");
  Alcotest.(check int) "post-drain job never ran" 17 (Atomic.get counter);
  Pool.drain_pool pool (* idempotent *)

let check_jitter_retries () =
  (* a task that fails twice then succeeds is healed by seeded
     decorrelated-jitter retries, deterministically *)
  let attempts = ref 0 in
  Pool.run ~retries:3 ~backoff:0.001 ~jitter_seed:42 ~jobs:1
    [
      (fun () ->
        incr attempts;
        if !attempts < 3 then failwith "transient");
    ];
  Alcotest.(check int) "healed on the third attempt" 3 !attempts;
  (* exhausted retries still raise the original error *)
  match
    Pool.run ~retries:1 ~backoff:0.001 ~jitter_seed:42 ~jobs:1
      [ (fun () -> failwith "permanent") ]
  with
  | () -> Alcotest.fail "exhausted retries must raise"
  | exception Failure _ -> ()

let check_trace_tagging () =
  let st =
    { Vc_core.Telemetry.seq = 0; ts = 0.0; dur = 0.0;
      ev = Vc_core.Telemetry.Mark "x" }
  in
  let line = Vc_core.Telemetry.jsonl_of_event ~trace:"t-000007" st in
  let nl = String.length {|"trace":"t-000007"|} in
  let has =
    let needle = {|"trace":"t-000007"|} in
    let ll = String.length line in
    let rec go i =
      if i + nl > ll then false
      else if String.sub line i nl = needle then true
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "jsonl line carries the trace id" true has

(* ------------------------------------------------------ daemon fixture *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vcserve-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(workers = 2) ?(max_queue = 8) ?(max_frame = 65536)
    ?(read_timeout = 30.0) ?telemetry f =
  let path = fresh_socket () in
  let cfg =
    {
      Server.default_config with
      socket_path = Some path;
      workers;
      max_queue;
      max_frame;
      read_timeout;
      quick = true;
      cache_dir = None;
      workload_dirs = [];
      telemetry;
    }
  in
  match Server.start cfg with
  | Error e -> Alcotest.fail (E.to_string e)
  | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () -> f path srv)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let read_reply reader =
  match Protocol.read_frame ~timeout:30.0 ~max_frame:(1 lsl 20) reader with
  | Protocol.Frame l -> (
      match Protocol.parse_reply l with
      | Ok r -> r
      | Error m -> Alcotest.fail ("unparseable reply: " ^ m))
  | Protocol.Eof -> Alcotest.fail "connection closed before reply"
  | Protocol.Timeout_frame -> Alcotest.fail "timed out waiting for reply"
  | Protocol.Oversized -> Alcotest.fail "oversized reply"

let run_fib ?(id = "q") ?deadline ?delay_ms fd reader =
  let req =
    {
      (Protocol.run_request ~bench:"fib") with
      id;
      deadline;
      delay_ms = Option.value delay_ms ~default:0;
    }
  in
  Protocol.write_line fd (Protocol.request_line req);
  read_reply reader

(* wait until an asynchronous counter lands in the stats line *)
let eventually ?(tries = 50) pred =
  let rec go n =
    if pred () then true
    else if n <= 0 then false
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go tries

let contains line needle =
  let nl = String.length needle and ll = String.length line in
  let rec go i =
    if i + nl > ll then false
    else if String.sub line i nl = needle then true
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------- daemon tests *)

let check_serves_and_answers () =
  with_server @@ fun path _srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  let r = run_fib ~id:"a" fd reader in
  Alcotest.check status "fib runs" Protocol.Ok_ r.Protocol.r_status;
  Alcotest.(check string) "id echoes" "a" r.Protocol.r_id;
  Alcotest.(check bool) "trace assigned" true (r.Protocol.r_trace <> "");
  let r2 = run_fib ~id:"b" fd reader in
  Alcotest.(check bool) "traces are distinct" true
    (r.Protocol.r_trace <> r2.Protocol.r_trace);
  Alcotest.(check bool) "reducers arrive" true (r.Protocol.r_reducers <> []);
  Alcotest.(check bool) "tasks counted" true (r.Protocol.r_tasks > 0);
  Unix.close fd

let check_malformed_keeps_serving () =
  with_server @@ fun path _srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  Protocol.write_line fd "this is not json";
  let r = read_reply reader in
  Alcotest.check status "malformed frame is bad_request" Protocol.Bad_request
    r.Protocol.r_status;
  (* same connection keeps working *)
  let r2 = run_fib fd reader in
  Alcotest.check status "daemon keeps serving" Protocol.Ok_
    r2.Protocol.r_status;
  Unix.close fd

let check_oversized_closes_connection () =
  with_server ~max_frame:256 @@ fun path _srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  Protocol.write_line fd (String.make 1000 'x');
  let r = read_reply reader in
  Alcotest.check status "oversized frame is bad_request" Protocol.Bad_request
    r.Protocol.r_status;
  Alcotest.(check bool) "oversized reply mentions the limit" true
    (contains r.Protocol.r_detail "max_frame");
  (match Protocol.read_frame ~timeout:5.0 ~max_frame:1024 reader with
  | Protocol.Eof -> ()
  | _ -> Alcotest.fail "oversized frame must close the connection");
  Unix.close fd;
  (* a fresh connection still works: only the offender was dropped *)
  let fd2 = connect path in
  let reader2 = Protocol.reader fd2 in
  let r2 = run_fib fd2 reader2 in
  Alcotest.check status "daemon keeps serving" Protocol.Ok_
    r2.Protocol.r_status;
  Unix.close fd2

let check_unknown_bench () =
  with_server @@ fun path _srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  Protocol.write_line fd
    (Protocol.request_line (Protocol.run_request ~bench:"no-such-bench"));
  let r = read_reply reader in
  Alcotest.check status "unknown benchmark is typed" Protocol.Unknown_bench
    r.Protocol.r_status;
  let r2 = run_fib fd reader in
  Alcotest.check status "daemon keeps serving" Protocol.Ok_
    r2.Protocol.r_status;
  Unix.close fd

let check_deadline_exceeded () =
  with_server @@ fun path _srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  let r = run_fib ~id:"tight" ~deadline:10.0 fd reader in
  Alcotest.check status "tiny deadline is budget_exceeded"
    Protocol.Budget_limit r.Protocol.r_status;
  Alcotest.(check bool) "detail names the resource" true
    (contains r.Protocol.r_detail "deadline-cycles");
  let r2 = run_fib fd reader in
  Alcotest.check status "daemon keeps serving" Protocol.Ok_
    r2.Protocol.r_status;
  Unix.close fd

let check_queue_full_rejection () =
  with_server ~workers:1 ~max_queue:1 @@ fun path srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  let n = 6 in
  for i = 1 to n do
    Protocol.write_line fd
      (Protocol.request_line
         {
           (Protocol.run_request ~bench:"fib") with
           id = Printf.sprintf "q%d" i;
           delay_ms = 200;
         })
  done;
  let replies = List.init n (fun _ -> read_reply reader) in
  let count s =
    List.length (List.filter (fun r -> r.Protocol.r_status = s) replies)
  in
  Alcotest.(check int) "every request got a reply" n (List.length replies);
  Alcotest.(check bool) "admitted requests completed" true (count Protocol.Ok_ >= 1);
  Alcotest.(check bool) "overflow was rejected with overloaded" true
    (count Protocol.Overloaded >= 1);
  Alcotest.(check int) "nothing fell through to other statuses" n
    (count Protocol.Ok_ + count Protocol.Overloaded);
  Alcotest.(check bool) "stats counted the rejects" true
    (eventually (fun () ->
         contains (Server.stats_line srv) "rejected_overload="
         && not (contains (Server.stats_line srv) "rejected_overload=0 ")));
  let r2 = run_fib fd reader in
  Alcotest.check status "daemon keeps serving after overload" Protocol.Ok_
    r2.Protocol.r_status;
  Unix.close fd

let check_connection_drop () =
  with_server @@ fun path srv ->
  (* drop a connection mid-frame: bytes written, no newline, then close *)
  let fd = connect path in
  ignore (Unix.write_substring fd "{\"id\":\"dropped" 0 14);
  Unix.close fd;
  Alcotest.(check bool) "mid-frame drop is a counted protocol event" true
    (eventually (fun () ->
         contains (Server.stats_line srv) "rejected_protocol=1"));
  (* the daemon is unharmed *)
  let fd2 = connect path in
  let reader2 = Protocol.reader fd2 in
  let r = run_fib fd2 reader2 in
  Alcotest.check status "daemon keeps serving" Protocol.Ok_ r.Protocol.r_status;
  Unix.close fd2

let check_read_timeout () =
  with_server ~read_timeout:0.3 @@ fun path _srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  (* send nothing: the daemon must close the idle connection with a typed
     timeout response rather than hold the slot forever *)
  let r = read_reply reader in
  Alcotest.check status "idle connection gets a typed timeout"
    Protocol.Timeout_ r.Protocol.r_status;
  (match Protocol.read_frame ~timeout:5.0 ~max_frame:1024 reader with
  | Protocol.Eof -> ()
  | _ -> Alcotest.fail "timed-out connection must be closed");
  Unix.close fd

let check_stats_and_ping () =
  with_server @@ fun path _srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  ignore (run_fib fd reader);
  Protocol.write_line fd "/stats";
  (match Protocol.read_frame ~timeout:10.0 ~max_frame:(1 lsl 20) reader with
  | Protocol.Frame line ->
      Alcotest.(check bool) "stats line shape" true
        (String.length line > 6 && String.sub line 0 6 = "stats ");
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true (contains line key))
        [
          "queue_depth="; "in_flight="; "accepted="; "rejected_overload=";
          "p50_wall_ms="; "p99_wall_ms="; "p999_wall_ms="; "rps_10s=";
        ]
  | _ -> Alcotest.fail "no /stats line");
  Protocol.write_line fd "{\"id\":\"s\",\"op\":\"stats\"}";
  let r = read_reply reader in
  Alcotest.check status "JSON stats op" Protocol.Ok_ r.Protocol.r_status;
  Protocol.write_line fd "{\"id\":\"p\",\"op\":\"ping\"}";
  let r = read_reply reader in
  Alcotest.check status "ping" Protocol.Ok_ r.Protocol.r_status;
  Unix.close fd

let check_graceful_drain () =
  let telemetry_path =
    Filename.temp_file "vcserve-telemetry" ".jsonl"
  in
  let oc = open_out telemetry_path in
  let path, reply =
    with_server ~workers:1 ~telemetry:oc @@ fun path srv ->
    let fd = connect path in
    let reader = Protocol.reader fd in
    (* put one slow job in flight, then drain while it runs *)
    Protocol.write_line fd
      (Protocol.request_line
         {
           (Protocol.run_request ~bench:"fib") with
           id = "inflight";
           delay_ms = 300;
         });
    Unix.sleepf 0.1;
    Server.stop srv;
    (* the in-flight job completed and its response was written before
       the daemon finished draining *)
    let r = read_reply reader in
    Unix.close fd;
    (path, r)
  in
  close_out oc;
  Alcotest.(check string) "in-flight request answered during drain"
    "inflight" reply.Protocol.r_id;
  Alcotest.check status "and it completed ok" Protocol.Ok_
    reply.Protocol.r_status;
  Alcotest.(check bool) "socket file removed on drain" false
    (Sys.file_exists path);
  (* trace-tagged per-request telemetry was flushed on drain *)
  let ic = open_in telemetry_path in
  let contents =
    let b = Buffer.create 1024 in
    (try
       while true do
         Buffer.add_channel b ic 1
       done
     with End_of_file -> ());
    Buffer.contents b
  in
  close_in ic;
  Sys.remove telemetry_path;
  Alcotest.(check bool) "telemetry stream carries the trace id" true
    (contains contents "\"trace\":\"t-000000\"");
  (* every completed request leaves its three phase spans in the stream *)
  List.iter
    (fun frame ->
      Alcotest.(check bool) (frame ^ " span present") true
        (contains contents ("\"name\":\"span:" ^ frame ^ "\"")))
    [ "queue_wait"; "exec"; "serialize" ]

(* ------------------------------------------------- observability tests *)

(* the stats breakdown table: one exact counter per bench × engine ×
   status cell, rows sorted by key *)
let check_stats_breakdown () =
  let st = Stats.create () in
  Stats.bump st ~bench:"uts" ~engine:"compiled" ~status:"overloaded";
  Stats.bump st ~bench:"fib" ~engine:"engine" ~status:"ok";
  Stats.bump st ~bench:"fib" ~engine:"engine" ~status:"ok";
  match Stats.breakdown st with
  | [ (("fib", "engine", "ok"), 2); (("uts", "compiled", "overloaded"), 1) ] ->
      ()
  | rows ->
      Alcotest.failf "unexpected breakdown (%d rows)" (List.length rows)

(* phase accounting: every ok reply carries queue_wait/exec/serialize
   and they account for the reported wall time (the acceptance bound is
   5%; the server defines wall as the telescoped phase sum, so this is
   exact up to float noise) *)
let check_phase_accounting () =
  with_server @@ fun path _srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  let r = run_fib ~id:"ph" ~delay_ms:20 fd reader in
  Alcotest.check status "request ok" Protocol.Ok_ r.Protocol.r_status;
  let f name = Vc_exp.Jsonx.(to_float (member name r.Protocol.r_raw)) in
  let qw = f "queue_wait_ms" and ex = f "exec_ms" and se = f "serialize_ms" in
  let wall = f "wall_ms" in
  Alcotest.(check bool) "phases are non-negative" true
    (qw >= 0.0 && ex >= 0.0 && se >= 0.0);
  Alcotest.(check bool) "exec phase covers the synthetic delay" true
    (ex >= 15.0);
  Alcotest.(check bool) "phases account for wall within 5%" true
    (abs_float ((qw +. ex +. se) -. wall) <= (0.05 *. wall) +. 1e-6);
  Unix.close fd

(* /metrics: Prometheus text shape — typed families, cumulative [le]
   buckets that are monotone and end at +Inf = _count, "# EOF" framing *)
let check_metrics_endpoint () =
  with_server @@ fun path _srv ->
  let fd = connect path in
  let reader = Protocol.reader fd in
  ignore (run_fib ~id:"m1" fd reader);
  ignore (run_fib ~id:"m2" fd reader);
  Unix.close fd;
  let body =
    match Loadgen.fetch_metrics ~connect:(fun () -> connect path) with
    | Some b -> b
    | None -> Alcotest.fail "no /metrics body"
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains body needle))
    [
      "# TYPE vcilk_request_wall_ms histogram";
      "# TYPE vcilk_requests_total counter";
      "vcilk_completed_total{status=\"ok\"} 2";
      "vcilk_requests_total{bench=\"fib\",engine=\"engine\",status=\"ok\"} 2";
      "vcilk_request_phase_ms_bucket{phase=\"exec\",le=\"+Inf\"}";
      "# EOF";
    ];
  let lines = String.split_on_char '\n' body in
  (match List.rev lines with
  | last :: _ -> Alcotest.(check string) "EOF-terminated" "# EOF" last
  | [] -> Alcotest.fail "empty body");
  let value_of line =
    let i = String.rindex line ' ' in
    float_of_string (String.sub line (i + 1) (String.length line - i - 1))
  in
  let buckets =
    List.filter
      (fun l -> contains l "vcilk_request_wall_ms_bucket{")
      lines
    |> List.map value_of
  in
  Alcotest.(check bool) "wall histogram has buckets" true (buckets <> []);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets are monotone" true
    (monotone buckets);
  let count =
    List.find (fun l -> contains l "vcilk_request_wall_ms_count")
      lines
    |> value_of
  in
  Alcotest.(check (float 0.0)) "+Inf bucket equals _count"
    count
    (List.nth buckets (List.length buckets - 1));
  Alcotest.(check (float 0.0)) "two requests recorded" 2.0 count

let check_loadgen_mix_parse () =
  (match Loadgen.parse_mix "fib:4,uts:1" with
  | Ok [ ("fib", 4); ("uts", 1) ] -> ()
  | Ok _ -> Alcotest.fail "wrong mix"
  | Error m -> Alcotest.fail m);
  (match Loadgen.parse_mix "fib,uts" with
  | Ok [ ("fib", 1); ("uts", 1) ] -> ()
  | _ -> Alcotest.fail "default weight should be 1");
  (match Loadgen.parse_mix "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty mix must be rejected");
  match Loadgen.parse_mix "fib:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero weight must be rejected"

let check_loadgen_bit_equality () =
  with_server ~workers:2 ~max_queue:16 @@ fun path _srv ->
  let connect () = connect path in
  match
    Loadgen.run ~connect ~rps:40.0 ~duration:0.5 ~mix:[ ("fib", 1) ]
      ~connections:2 ~seed:7 ~grace:30.0 ~workload_dirs:[] ~quick:true ()
  with
  | Error e -> Alcotest.fail (E.to_string e)
  | Ok s ->
      Alcotest.(check bool) "requests were sent" true (s.Loadgen.sent > 0);
      Alcotest.(check int) "nothing lost" 0 s.Loadgen.lost;
      Alcotest.(check int) "no divergence vs batch" 0
        (List.length s.Loadgen.divergences);
      Alcotest.(check bool) "loadgen passes" true (Loadgen.passed s);
      Alcotest.(check bool) "stats captured" true
        (s.Loadgen.stats_line <> None);
      (* the client-side histogram saw every ok reply, and the artifact
         body renders with profile + percentiles + histogram *)
      Alcotest.(check int) "histogram count = ok count" s.Loadgen.ok
        (Vc_core.Metrics.Histogram.count s.Loadgen.latency);
      (* p50/p99 are exact (reservoir); p999 is a histogram bucket upper
         bound, so it may sit up to one bucket above the exact max *)
      Alcotest.(check bool) "percentiles are ordered" true
        (s.Loadgen.p50_ms <= s.Loadgen.p99_ms
        && s.Loadgen.p99_ms <= s.Loadgen.p999_ms);
      let profile =
        {
          Loadgen.pr_rps = 40.0; pr_duration = 0.5; pr_mix = "fib:1";
          pr_engine = "engine"; pr_connections = 2; pr_quick = true;
        }
      in
      let j = Loadgen.latency_json ~profile s in
      let open Vc_exp.Jsonx in
      Alcotest.(check int) "artifact version" 1 (to_int (member "version" j));
      Alcotest.(check string) "artifact profile mix" "fib:1"
        (to_str (member "mix" (member "profile" j)));
      Alcotest.(check int) "artifact histogram count" s.Loadgen.ok
        (to_int (member "count" (member "histogram" j)))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "framing violations are typed" `Quick
            check_parse_errors;
          Alcotest.test_case "request render/parse round-trip" `Quick
            check_request_roundtrip;
          Alcotest.test_case "error -> status mapping" `Quick
            check_status_mapping;
          Alcotest.test_case "exit-code taxonomy constants" `Quick
            check_exit_taxonomy;
        ] );
      ( "support",
        [
          Alcotest.test_case "budget clamping is tightest-wins" `Quick
            check_clamp_budgets;
          Alcotest.test_case "latency reservoir quantiles" `Quick
            check_reservoir;
          Alcotest.test_case "worker pool containment and drain" `Quick
            check_worker_pool;
          Alcotest.test_case "seeded jitter retries heal transients" `Quick
            check_jitter_retries;
          Alcotest.test_case "telemetry lines carry trace ids" `Quick
            check_trace_tagging;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "serves requests with trace ids" `Quick
            check_serves_and_answers;
          Alcotest.test_case "malformed frame keeps serving" `Quick
            check_malformed_keeps_serving;
          Alcotest.test_case "oversized frame closes only the offender"
            `Quick check_oversized_closes_connection;
          Alcotest.test_case "unknown benchmark is typed" `Quick
            check_unknown_bench;
          Alcotest.test_case "deadline exceeded is typed" `Quick
            check_deadline_exceeded;
          Alcotest.test_case "queue-full requests get overloaded" `Quick
            check_queue_full_rejection;
          Alcotest.test_case "mid-frame drop is contained" `Quick
            check_connection_drop;
          Alcotest.test_case "idle read timeout is typed" `Quick
            check_read_timeout;
          Alcotest.test_case "/stats, stats op, ping" `Quick
            check_stats_and_ping;
          Alcotest.test_case "graceful drain finishes in-flight work"
            `Quick check_graceful_drain;
        ] );
      ( "observability",
        [
          Alcotest.test_case "bench x engine x status breakdown" `Quick
            check_stats_breakdown;
          Alcotest.test_case "phase spans account for wall time" `Quick
            check_phase_accounting;
          Alcotest.test_case "/metrics Prometheus exposition" `Quick
            check_metrics_endpoint;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "mix parsing" `Quick check_loadgen_mix_parse;
          Alcotest.test_case "serving is bit-equal to batch" `Quick
            check_loadgen_bit_equality;
        ] );
    ]
