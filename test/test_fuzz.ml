(* The fuzz harness tested on itself: generator contracts, shrinker
   determinism and minimality, and the planted-bug (mutation smoke)
   guarantees that back the CI fuzz job. *)

open Vc_lang

let seed =
  match Sys.getenv_opt "VC_PROP_SEED" with
  | Some s -> (try int_of_string s with _ -> 42)
  | None -> 42

let count =
  match Sys.getenv_opt "VC_PROP_COUNT" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 60)
  | None -> 60

let describe i p args =
  Printf.sprintf "case %d (seed %d)\n%s\nargs: %s" i seed
    (Pp.program_to_string p)
    (String.concat ", " (List.map string_of_int args))

(* Every generated program is valid, terminating, spawning — the
   generator's whole contract, checked via the shrinker's own notion of
   validity so the two stay in sync. *)
let check_generator_validity () =
  for i = 0 to (2 * count) - 1 do
    let p, args = Vc_fuzz.Gen.case ~seed ~index:i () in
    if not (Vc_fuzz.Shrink.valid p) then
      Alcotest.failf "generated program invalid: %s" (describe i p args);
    let arity = List.length p.Ast.mth.Ast.params in
    if List.length args <> arity then
      Alcotest.failf "argument arity mismatch: %s" (describe i p args)
  done

(* (seed, index) fully determines a case: the reproducer contract. *)
let check_generator_determinism () =
  for i = 0 to count - 1 do
    let a = Vc_fuzz.Gen.case ~seed ~index:i () in
    let b = Vc_fuzz.Gen.case ~seed ~index:i () in
    if a <> b then Alcotest.failf "case %d not deterministic for seed %d" i seed
  done;
  let a = Vc_fuzz.Gen.case ~seed:1 ~index:0 () in
  let b = Vc_fuzz.Gen.case ~seed:2 ~index:0 () in
  if a = b then Alcotest.fail "different seeds produced identical case 0"

(* Generated programs survive the print/parse round trip exactly —
   that is what makes a committed .rtp reproducer faithful. *)
let check_round_trip () =
  for i = 0 to count - 1 do
    let p, args = Vc_fuzz.Gen.case ~seed ~index:i () in
    let p' = Parser.parse_string (Pp.program_to_string p) in
    if p' <> p then Alcotest.failf "round trip changed: %s" (describe i p args)
  done

(* The unplanted differential driver never diverges: the live-fuzzing
   invariant at test scale. *)
let check_no_divergence () =
  let agreed = ref 0 in
  for i = 0 to (count / 2) - 1 do
    let p, args = Vc_fuzz.Gen.case ~seed ~index:i () in
    match Vc_fuzz.Diff.check ~domains:[ 2 ] p args with
    | Vc_fuzz.Diff.Agree { checks } ->
        if checks = 0 then
          Alcotest.failf "no comparisons ran: %s" (describe i p args);
        incr agreed
    | Vc_fuzz.Diff.Skip _ -> ()
    | Vc_fuzz.Diff.Diverge { stage; detail } ->
        Alcotest.failf "divergence at %s (%s): %s" stage detail
          (describe i p args)
  done;
  if !agreed = 0 then Alcotest.fail "every differential case was skipped"

(* A canonical tree program both plants bite on: shifts in the base case,
   a two-deep spawn tree. *)
let planted_program =
  Parser.parse_string
    "reducer sum acc;\n\
     def m(a, b) =\n\
     \  if a < 1 then {\n\
     \    reduce(acc, (b << 1) + (1 << 63));\n\
     \  } else {\n\
     \    spawn m(a - 1, b + 1);\n\
     \    spawn m(a - 2, b);\n\
     \  }"

let planted_args = [ 3; 1 ]

let check_plants_detected () =
  List.iter
    (fun plant ->
      if not (Vc_fuzz.Diff.failing ~plant planted_program planted_args) then
        Alcotest.failf "plant %s not detected on the canonical program"
          (Vc_fuzz.Diff.plant_name plant);
      (* the planted mutation stays a valid, terminating program — it is
         a semantic bug, not a crash *)
      if not (Vc_fuzz.Shrink.valid (Vc_fuzz.Diff.mutate plant planted_program))
      then
        Alcotest.failf "plant %s broke program validity"
          (Vc_fuzz.Diff.plant_name plant))
    [ Vc_fuzz.Diff.Shl_trunc; Vc_fuzz.Diff.Spawn_skew ];
  if Vc_fuzz.Diff.failing planted_program planted_args then
    Alcotest.fail "unplanted canonical program diverged"

(* Shrinking is pure: same input, same predicate, same minimum. *)
let check_shrinker_determinism () =
  let keep = Vc_fuzz.Diff.failing ~plant:Vc_fuzz.Diff.Spawn_skew in
  let a = Vc_fuzz.Shrink.minimize ~keep planted_program planted_args in
  let b = Vc_fuzz.Shrink.minimize ~keep planted_program planted_args in
  if a <> b then Alcotest.fail "shrinker not deterministic"

(* The shrunk case is still valid, still failing, and spawn-skew reaches
   its <= 10 node minimal reproducer. *)
let check_shrinker_minimizes () =
  let keep = Vc_fuzz.Diff.failing ~plant:Vc_fuzz.Diff.Spawn_skew in
  let p', args' = Vc_fuzz.Shrink.minimize ~keep planted_program planted_args in
  if not (Vc_fuzz.Shrink.valid p') then
    Alcotest.failf "shrunk program invalid:\n%s" (Pp.program_to_string p');
  if not (keep p' args') then
    Alcotest.failf "shrunk program no longer fails:\n%s"
      (Pp.program_to_string p');
  let nodes = Vc_fuzz.Gen.size p' in
  if nodes > 10 then
    Alcotest.failf "spawn-skew reproducer has %d AST nodes (> 10):\n%s" nodes
      (Pp.program_to_string p');
  (* shl-trunc shrinks too (its floor is above 10 nodes: the shift and
     the odd count must survive) *)
  let keep = Vc_fuzz.Diff.failing ~plant:Vc_fuzz.Diff.Shl_trunc in
  let p'', _ = Vc_fuzz.Shrink.minimize ~keep planted_program planted_args in
  if Vc_fuzz.Gen.size p'' > Vc_fuzz.Gen.size planted_program then
    Alcotest.fail "shl-trunc shrink grew the program"

(* A written reproducer is a loadable workload that replays clean. *)
let check_reproducer_round_trip () =
  let dir = Filename.temp_file "vc-corpus" "" in
  Sys.remove dir;
  let keep = Vc_fuzz.Diff.failing ~plant:Vc_fuzz.Diff.Spawn_skew in
  let p', args' = Vc_fuzz.Shrink.minimize ~keep planted_program planted_args in
  match
    Vc_fuzz.Corpus.write ~dir ~name:"fuzz-test-0"
      ~provenance:[ "unit-test reproducer" ] p' args'
  with
  | Error e -> Alcotest.failf "write failed: %s" (Vc_core.Vc_error.to_string e)
  | Ok path -> (
      match Vc_bench.Registry.load_file path with
      | Error e ->
          Alcotest.failf "reproducer does not load: %s"
            (Vc_core.Vc_error.to_string e)
      | Ok loaded -> (
          match Vc_fuzz.Corpus.replay ~quick:true loaded with
          | Ok _ -> Sys.remove path
          | Error msg -> Alcotest.failf "reproducer replay failed: %s" msg))

let () =
  Alcotest.run "vc_fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "generated programs are valid and terminating"
            `Quick check_generator_validity;
          Alcotest.test_case "(seed, index) determines the case" `Quick
            check_generator_determinism;
          Alcotest.test_case "print/parse round trip is exact" `Quick
            check_round_trip;
          Alcotest.test_case "differential driver finds no divergence" `Slow
            check_no_divergence;
          Alcotest.test_case "planted bugs are detected, unplanted is clean"
            `Quick check_plants_detected;
          Alcotest.test_case "shrinker is deterministic" `Quick
            check_shrinker_determinism;
          Alcotest.test_case "spawn-skew shrinks to <= 10 AST nodes" `Quick
            check_shrinker_minimizes;
          Alcotest.test_case "reproducer writes, loads, and replays" `Quick
            check_reproducer_round_trip;
        ] );
    ]
