(* Capstone property suite: random DSL programs through the full measured
   pipeline under randomized execution configurations.  The invariants here
   are the ones every table and figure in the reproduction rests on. *)

open Vc_core

let e5 = Vc_mem.Machine.xeon_e5
let phi = Vc_mem.Machine.xeon_phi

(* Random execution configuration. *)
let gen_config st =
  let open QCheck.Gen in
  let machine = if bool st then e5 else phi in
  let strategy =
    match int_range 0 2 st with
    | 0 -> Policy.Bfs_only
    | 1 -> Policy.Hybrid { max_block = 1 lsl int_range 0 10 st; reexpand = false }
    | _ -> Policy.Hybrid { max_block = 1 lsl int_range 0 10 st; reexpand = true }
  in
  let compact =
    if machine == phi then Vc_simd.Compact.Prefix_scatter { sub_width = 8 }
    else
      match int_range 0 2 st with
      | 0 -> Vc_simd.Compact.Sequential
      | 1 -> Vc_simd.Compact.Full_table
      | _ -> Vc_simd.Compact.Factorized { sub_width = 4 }
  in
  let cutoff = if bool st then 0 else 1 lsl int_range 0 4 st in
  (machine, strategy, compact, cutoff)

let arbitrary_case =
  QCheck.make
    ~print:(fun ((p, args), (machine, strategy, compact, cutoff)) ->
      Printf.sprintf "%s\nargs: %s\nconfig: %s, %s, %s, cutoff %d"
        (Vc_lang.Pp.program_to_string p)
        (String.concat ", " (List.map string_of_int args))
        machine.Vc_mem.Machine.name (Policy.describe strategy)
        (Vc_simd.Compact.name compact) cutoff)
    QCheck.Gen.(pair (QCheck.gen Qgen.arbitrary_program_and_args) gen_config)

let engine_agrees_with_interpreter =
  QCheck.Test.make
    ~name:
      "engine = interpreter on random programs under random machine / \
       strategy / compaction / cut-off"
    ~count:150 arbitrary_case
    (fun ((p, args), (machine, strategy, compact, cutoff)) ->
      let expected = (Vc_lang.Interp.run ~max_tasks:100_000 p args).Vc_lang.Interp.reducers in
      let spec = Compile.spec_of_program p ~args in
      let r = Engine.run ~compact ~cutoff ~spec ~machine ~strategy () in
      if r.Report.oom then true (* OOM runs report nothing *)
      else
        r.Report.reducers = expected
        && r.Report.tasks
           = Vc_lang.Profile.tasks
               (Vc_lang.Interp.run ~max_tasks:100_000 p args).Vc_lang.Interp.profile)

let report_invariants =
  QCheck.Test.make ~name:"report invariants on random configurations" ~count:100
    arbitrary_case
    (fun ((p, args), (machine, strategy, compact, cutoff)) ->
      let spec = Compile.spec_of_program p ~args in
      let r = Engine.run ~compact ~cutoff ~spec ~machine ~strategy () in
      let level_tasks = Array.fold_left (fun acc (t, _) -> acc + t) 0 r.Report.levels in
      let level_base = Array.fold_left (fun acc (_, b) -> acc + b) 0 r.Report.levels in
      r.Report.oom
      || (r.Report.utilization >= 0.0
          && r.Report.utilization <= 1.0 +. 1e-9
          && r.Report.lane_occupancy >= 0.0
          && r.Report.lane_occupancy <= 1.0 +. 1e-9
          && r.Report.cycles > 0.0
          && r.Report.space_peak <= machine.Vc_mem.Machine.max_live_threads
          && r.Report.base_tasks <= r.Report.tasks
          && level_tasks = r.Report.tasks
          && level_base = r.Report.base_tasks))

let trace_conserves_tasks =
  QCheck.Test.make ~name:"trace events partition the executed tasks" ~count:80
    Qgen.arbitrary_program_and_args (fun (p, args) ->
      let spec = Compile.spec_of_program p ~args in
      let trace = Trace.create () in
      let r =
        Engine.run ~trace ~spec ~machine:e5
          ~strategy:(Policy.Hybrid { max_block = 8; reexpand = true })
          ()
      in
      let evs = Trace.events trace in
      Array.fold_left (fun acc e -> acc + e.Trace.size) 0 evs = r.Report.tasks
      && Array.fold_left (fun acc e -> acc + e.Trace.base) 0 evs
         = r.Report.base_tasks)

let multicore_agrees =
  QCheck.Test.make ~name:"multicore hybrid = interpreter on random programs"
    ~count:60
    QCheck.(pair Qgen.arbitrary_program_and_args (int_range 1 6))
    (fun ((p, args), workers) ->
      let expected = (Vc_lang.Interp.run ~max_tasks:100_000 p args).Vc_lang.Interp.reducers in
      let spec = Compile.spec_of_program p ~args in
      let r = Multicore.run ~max_block:16 ~spec ~machine:e5 ~workers () in
      r.Multicore.reducers = expected)

let optimized_specs_agree =
  QCheck.Test.make
    ~name:"optimizer + compile + engine = interpreter on random programs"
    ~count:80 Qgen.arbitrary_program_and_args (fun (p, args) ->
      match Vc_lang.Interp.run ~max_tasks:100_000 p args with
      | exception Vc_lang.Interp.Runtime_error _ -> true
      | out ->
          let spec = Compile.spec_of_program (Vc_lang.Optim.program p) ~args in
          let r =
            Engine.run ~spec ~machine:e5
              ~strategy:(Policy.Hybrid { max_block = 32; reexpand = true })
              ()
          in
          r.Report.reducers = out.Vc_lang.Interp.reducers)

let () =
  Alcotest.run "vc_props"
    [
      ( "pipeline",
        List.map QCheck_alcotest.to_alcotest
          [
            engine_agrees_with_interpreter;
            report_invariants;
            trace_conserves_tasks;
            multicore_agrees;
            optimized_specs_agree;
          ] );
    ]
