(* Wall-clock backend tests: the blocked-interpreter and compiled-SoA
   backends against the engine's reference results on the real benchmark
   registry, plus the supervised-execution contract (budgets, faults,
   domains) that `vcilk run --engine blocked|compiled` relies on.

   The differential suite covers random programs; this file pins the
   8-benchmark registry and the option-surface corners (multi-root
   sources, budget errors, the IR x domains rejection). *)

open Vc_core

let quick_ctx = lazy (Vc_exp.Sweep.create ~quick:true ~cache_dir:None ())

let source_of name =
  let entry = Vc_bench.Registry.find name in
  Vc_exp.Sweep.backend_source (Lazy.force quick_ctx) entry

let dsl_names = [ "fib"; "parentheses"; "binomial"; "nqueens"; "uts" ]

let all_names =
  List.map (fun (e : Vc_bench.Registry.entry) -> e.Vc_bench.Registry.name)
    Vc_bench.Registry.all

let reducer_str rs =
  String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) rs)

let sorted rs = List.sort compare rs

(* Every backend, on every registry benchmark, must reproduce the engine's
   reducers, task counts and base-task counts for the same hybrid
   strategy.  (Reducers compare as sorted assoc lists: the engine reports
   spec declaration order, the IR path reducer-declaration order.) *)
let check_backends_vs_engine () =
  let ctx = Lazy.force quick_ctx in
  let block = 256 in
  List.iter
    (fun name ->
      let entry = Vc_bench.Registry.find name in
      let reference =
        Vc_exp.Sweep.hybrid ctx entry Vc_mem.Machine.xeon_e5 ~reexpand:true
          ~block
      in
      if not reference.Report.oom then
        List.iter
          (fun backend ->
            let r =
              Vc_exp.Sweep.backend_run ctx entry
                ~engine:backend.Backend.name ~block
            in
            if
              sorted r.Backend.reducers <> sorted reference.Report.reducers
              || r.Backend.tasks <> reference.Report.tasks
              || r.Backend.base_tasks <> reference.Report.base_tasks
            then
              Alcotest.failf
                "%s backend diverges from the engine on %s: got %s / %d \
                 tasks (%d base), want %s / %d tasks (%d base)"
                backend.Backend.name name
                (reducer_str r.Backend.reducers)
                r.Backend.tasks r.Backend.base_tasks
                (reducer_str reference.Report.reducers)
                reference.Report.tasks reference.Report.base_tasks)
          Backend.all)
    all_names

(* On DSL sources — where interpreted and compiled dispatch actually
   differ — the two backends must agree on every result field except
   wall clock, across the full strategy grid. *)
let strategies =
  (Policy.Bfs_only, "bfs")
  :: List.concat_map
       (fun block ->
         [
           ( Policy.Hybrid { max_block = block; reexpand = false },
             Printf.sprintf "noreexp/%d" block );
           ( Policy.Hybrid { max_block = block; reexpand = true },
             Printf.sprintf "reexp/%d" block );
         ])
       [ 16; 256; 4096 ]

let scrub (r : Backend.result) = { r with Backend.wall_seconds = 0.0 }

let check_compiled_vs_interp () =
  List.iter
    (fun name ->
      let source, roots = source_of name in
      List.iter
        (fun (strategy, sname) ->
          let opts = { Backend.default_opts with strategy } in
          let bi = Backend.run ~opts Backend.interp source ~roots in
          let bc = Backend.run ~opts Backend.compiled source ~roots in
          if scrub bi <> scrub bc then
            Alcotest.failf
              "compiled differs from blocked on %s [%s]: %s / %d tasks (%d \
               base) depth %d sw %d re %d vs %s / %d tasks (%d base) depth \
               %d sw %d re %d"
              name sname
              (reducer_str bc.Backend.reducers)
              bc.Backend.tasks bc.Backend.base_tasks bc.Backend.max_depth
              bc.Backend.switches bc.Backend.reexpansions
              (reducer_str bi.Backend.reducers)
              bi.Backend.tasks bi.Backend.base_tasks bi.Backend.max_depth
              bi.Backend.switches bi.Backend.reexpansions)
        strategies)
    dsl_names

(* Fault-armed supervised runs must recover to the fault-free results on
   both backends; the fired-fallback assertion keeps it non-vacuous. *)
let check_fault_recovery () =
  let fallbacks = ref 0 in
  List.iter
    (fun name ->
      let source, roots = source_of name in
      List.iter
        (fun backend ->
          let reference = Backend.run backend source ~roots in
          List.iter
            (fun seed ->
              let plan =
                Fault.make ~rate:0.25 ~seed ~sites:[ Fault.Alloc ] ()
              in
              match
                Supervisor.run_backend ~faults:plan backend source ~roots
              with
              | Error e ->
                  Alcotest.failf "%s on %s seed %d did not recover (%s)"
                    backend.Backend.name name seed (Vc_error.to_string e)
              | Ok o ->
                  fallbacks := !fallbacks + o.Supervisor.b_fallbacks;
                  let r = o.Supervisor.result in
                  if
                    r.Backend.reducers <> reference.Backend.reducers
                    || r.Backend.tasks <> reference.Backend.tasks
                    || r.Backend.base_tasks <> reference.Backend.base_tasks
                  then
                    Alcotest.failf
                      "%s on %s seed %d recovers to wrong results: %s / %d, \
                       want %s / %d"
                      backend.Backend.name name seed
                      (reducer_str r.Backend.reducers)
                      r.Backend.tasks
                      (reducer_str reference.Backend.reducers)
                      reference.Backend.tasks)
            [ 1; 2; 3 ])
        Backend.all)
    [ "fib"; "nqueens" ];
  if !fallbacks = 0 then Alcotest.fail "fault matrix never fired a fallback"

(* The chunked-domains path must be bit-equal to the single-context run
   at every domain count, on both backends (the interp backend only for
   native sources — the blocked interpreter has no domains mode). *)
let check_domains () =
  List.iter
    (fun name ->
      let source, roots = source_of name in
      List.iter
        (fun backend ->
          let skip =
            match (source, backend.Backend.name) with
            | Backend.Ir _, "blocked" -> true
            | _ -> false
          in
          if not skip then begin
            let single = Backend.run backend source ~roots in
            let chunked =
              List.map
                (fun domains ->
                  let opts =
                    { Backend.default_opts with domains = Some domains }
                  in
                  (domains, Backend.run ~opts backend source ~roots))
                [ 1; 2; 4 ]
            in
            (* chunking may legitimately change switch/re-expansion
               counters (smaller frontiers); the execution results may
               not *)
            List.iter
              (fun (domains, (r : Backend.result)) ->
                if
                  r.Backend.reducers <> single.Backend.reducers
                  || r.Backend.tasks <> single.Backend.tasks
                  || r.Backend.base_tasks <> single.Backend.base_tasks
                then
                  Alcotest.failf "%s on %s domains=%d diverges: %s / %d tasks"
                    backend.Backend.name name domains
                    (reducer_str r.Backend.reducers)
                    r.Backend.tasks)
              chunked;
            (* and the whole report must be independent of the domain
               count *)
            match chunked with
            | (_, first) :: rest ->
                List.iter
                  (fun (domains, r) ->
                    if scrub r <> scrub first then
                      Alcotest.failf
                        "%s on %s: domains=%d report differs from domains=1"
                        backend.Backend.name name domains)
                  rest
            | [] -> ()
          end)
        Backend.all)
    [ "fib"; "uts"; "knapsack" ]

(* An IR source under the interp backend with domains is a contract
   violation, not a silent fallback. *)
let check_ir_domains_rejected () =
  let source, roots = source_of "fib" in
  let opts = { Backend.default_opts with domains = Some 2 } in
  match Backend.run ~opts Backend.interp source ~roots with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interp backend accepted an IR source with domains"

(* Budget violations surface as typed errors through the supervisor. *)
let check_budgets () =
  let source, roots = source_of "fib" in
  List.iter
    (fun backend ->
      (match
         Supervisor.run_backend ~max_tasks:100 backend source ~roots
       with
      | Error e -> (
          match e.Vc_error.kind with
          | Vc_error.Budget_exceeded _ -> ()
          | _ ->
              Alcotest.failf "%s task budget raised %s" backend.Backend.name
                (Vc_error.to_string e))
      | Ok _ -> Alcotest.failf "%s ignored the task budget" backend.Backend.name);
      match
        Supervisor.run_backend
          ~budgets:(Supervisor.budgets ~max_live_frames:4 ())
          backend source ~roots
      with
      | Error e -> (
          match e.Vc_error.kind with
          | Vc_error.Budget_exceeded _ -> ()
          | _ ->
              Alcotest.failf "%s frame budget raised %s" backend.Backend.name
                (Vc_error.to_string e))
      | Ok _ ->
          Alcotest.failf "%s ignored the live-frame budget" backend.Backend.name)
    Backend.all

(* Multi-root sources: several root frames build one shared frontier —
   reducers must equal the sum of the per-root runs (all registry
   reducers are monoid sums on these benchmarks). *)
let check_multi_root () =
  let source, _ = source_of "fib" in
  let run roots backend = Backend.run backend source ~roots in
  List.iter
    (fun backend ->
      let both = run [ [| 12 |]; [| 10 |] ] backend in
      let a = run [ [| 12 |] ] backend in
      let b = run [ [| 10 |] ] backend in
      let sum =
        List.map2
          (fun (n, x) (n', y) ->
            if n <> n' then Alcotest.fail "reducer order drifted";
            (n, x + y))
          a.Backend.reducers b.Backend.reducers
      in
      if
        both.Backend.reducers <> sum
        || both.Backend.tasks <> a.Backend.tasks + b.Backend.tasks
      then
        Alcotest.failf "%s multi-root run is not the sum of its parts: %s, %d \
                        tasks"
          backend.Backend.name
          (reducer_str both.Backend.reducers)
          both.Backend.tasks)
    Backend.all

let () =
  Alcotest.run "vc_backend"
    [
      ( "backend",
        [
          Alcotest.test_case "all backends match the engine on the registry"
            `Quick check_backends_vs_engine;
          Alcotest.test_case "compiled = blocked on every field (DSL grid)"
            `Quick check_compiled_vs_interp;
          Alcotest.test_case "fault-armed backends recover bit-equal" `Quick
            check_fault_recovery;
          Alcotest.test_case "domains matrix bit-equal to single context"
            `Quick check_domains;
          Alcotest.test_case "IR x interp x domains is rejected" `Quick
            check_ir_domains_rejected;
          Alcotest.test_case "budget violations are typed errors" `Quick
            check_budgets;
          Alcotest.test_case "multi-root frontier sums per-root results"
            `Quick check_multi_root;
        ] );
    ]
