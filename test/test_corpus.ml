(* The committed corpus and the runtime registry loader: every seeded
   regression .rtp replays bit-equal across the three backends, and
   every malformed workload is a typed Vc_error (exit code 1), never a
   failwith. *)

let corpus_dir = "corpus"
let examples_dir = Filename.concat ".." (Filename.concat "examples" "dsl")

let load_dir_ok dir =
  match Vc_bench.Registry.load_dir dir with
  | Ok ls -> ls
  | Error e -> Alcotest.failf "load_dir %s: %s" dir (Vc_core.Vc_error.to_string e)

let check_corpus_loads () =
  let loaded = load_dir_ok corpus_dir in
  if List.length loaded < 5 then
    Alcotest.failf "corpus has %d workloads, expected >= 5"
      (List.length loaded);
  List.iter
    (fun (l : Vc_bench.Registry.loaded) ->
      let e = l.Vc_bench.Registry.entry in
      if e.Vc_bench.Registry.dsl = None then
        Alcotest.failf "%s has no DSL program" e.Vc_bench.Registry.name)
    loaded

(* The seeded regressions: interpreter oracle, cost-model engine, blocked
   and compiled wall-clock backends, all bit-equal, spec pins honored. *)
let check_corpus_replays () =
  List.iter
    (fun (l : Vc_bench.Registry.loaded) ->
      match Vc_fuzz.Corpus.replay ~quick:true l with
      | Ok checks ->
          if checks < 3 then
            Alcotest.failf "%s: only %d comparisons ran"
              l.Vc_bench.Registry.entry.Vc_bench.Registry.name checks
      | Error msg -> Alcotest.fail msg)
    (load_dir_ok corpus_dir)

let check_examples_load_and_replay () =
  let loaded = load_dir_ok examples_dir in
  if List.length loaded < 4 then
    Alcotest.failf "examples/dsl has %d workloads, expected >= 4"
      (List.length loaded);
  List.iter
    (fun (l : Vc_bench.Registry.loaded) ->
      match Vc_fuzz.Corpus.replay ~quick:true l with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg)
    loaded

(* ---- typed load errors ---- *)

let write_tmp name content =
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc content);
  path

let valid_body =
  "reducer sum acc;\n\
   def m(a) =\n\
   \  if a < 1 then {\n\
   \    reduce(acc, 1);\n\
   \  } else {\n\
   \    spawn m(a - 1);\n\
   \  }\n"

let expect_load_error what result =
  match result with
  | Ok _ -> Alcotest.failf "%s: load unexpectedly succeeded" what
  | Error (e : Vc_core.Vc_error.t) ->
      if e.Vc_core.Vc_error.phase <> Vc_core.Vc_error.Load then
        Alcotest.failf "%s: error not in Load phase: %s" what
          (Vc_core.Vc_error.to_string e);
      (* load failures are plain failures (exit 1), never budget (2) *)
      if Vc_core.Vc_error.exit_code e <> 1 then
        Alcotest.failf "%s: exit code %d, want 1" what
          (Vc_core.Vc_error.exit_code e)

let check_malformed_spec_block () =
  let path =
    write_tmp "vc-malformed.rtp"
      ("//! input one two\n//! expect\n//! blocks 4..x\n" ^ valid_body)
  in
  expect_load_error "malformed spec block" (Vc_bench.Registry.load_file path);
  Sys.remove path

let check_missing_file () =
  expect_load_error "missing file"
    (Vc_bench.Registry.load_file "no-such-workload.rtp")

let check_missing_inputs () =
  let path = write_tmp "vc-noinput.rtp" ("//! expect acc 1\n" ^ valid_body) in
  expect_load_error "no input directive" (Vc_bench.Registry.load_file path);
  Sys.remove path

let check_reducer_mismatch () =
  let path =
    write_tmp "vc-mismatch.rtp"
      ("//! input 3\n//! expect nosuch 1\n" ^ valid_body)
  in
  expect_load_error "expect names undeclared reducer"
    (Vc_bench.Registry.load_file path);
  Sys.remove path

let check_builtin_collision () =
  let path =
    write_tmp "vc-collide.rtp"
      ("//! name fib\n//! input 3\n//! expect acc 1\n" ^ valid_body)
  in
  expect_load_error "name collides with built-in"
    (Vc_bench.Registry.load_file path);
  Sys.remove path

let check_duplicate_names () =
  let dir = Filename.temp_file "vc-dup" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name =
    let oc = open_out (Filename.concat dir name) in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc ("//! name same\n//! input 3\n//! expect acc 1\n" ^ valid_body))
  in
  write "one.rtp";
  write "two.rtp";
  expect_load_error "duplicate workload name" (Vc_bench.Registry.load_dir dir);
  Sys.remove (Filename.concat dir "one.rtp");
  Sys.remove (Filename.concat dir "two.rtp");
  Sys.rmdir dir

let check_arity_mismatch () =
  let path =
    write_tmp "vc-arity.rtp" ("//! input 3 4\n//! expect acc 1\n" ^ valid_body)
  in
  expect_load_error "root arity mismatch" (Vc_bench.Registry.load_file path);
  Sys.remove path

(* resolve: built-ins win, then workload files; unknown names are typed *)
let check_resolve () =
  (match Vc_bench.Registry.resolve ~dirs:[ corpus_dir ] "fib" with
  | Ok e ->
      Alcotest.(check string) "builtin" "fib" e.Vc_bench.Registry.name
  | Error e -> Alcotest.failf "fib: %s" (Vc_core.Vc_error.to_string e));
  (match Vc_bench.Registry.resolve ~dirs:[ corpus_dir ] "multi-root" with
  | Ok e ->
      Alcotest.(check string) "loaded" "multi-root" e.Vc_bench.Registry.name
  | Error e -> Alcotest.failf "multi-root: %s" (Vc_core.Vc_error.to_string e));
  expect_load_error "unknown name"
    (Vc_bench.Registry.resolve ~dirs:[ corpus_dir ] "no-such-bench")

let () =
  Alcotest.run "vc_corpus"
    [
      ( "corpus",
        [
          Alcotest.test_case "corpus loads (>= 5 workloads)" `Quick
            check_corpus_loads;
          Alcotest.test_case "corpus replays across all three backends" `Quick
            check_corpus_replays;
          Alcotest.test_case "examples/dsl load and replay" `Quick
            check_examples_load_and_replay;
        ] );
      ( "typed-errors",
        [
          Alcotest.test_case "malformed spec block" `Quick
            check_malformed_spec_block;
          Alcotest.test_case "missing file" `Quick check_missing_file;
          Alcotest.test_case "no input directive" `Quick check_missing_inputs;
          Alcotest.test_case "expect names undeclared reducer" `Quick
            check_reducer_mismatch;
          Alcotest.test_case "builtin name collision" `Quick
            check_builtin_collision;
          Alcotest.test_case "duplicate names in a directory" `Quick
            check_duplicate_names;
          Alcotest.test_case "root arity mismatch" `Quick check_arity_mismatch;
          Alcotest.test_case "resolve order and typed unknown" `Quick
            check_resolve;
        ] );
    ]
