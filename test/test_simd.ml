(* Tests for the simulated vector ISA: lanes, masks, tables, compaction
   engines, and the accounting VM. *)

open Vc_simd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lane                                                                *)

let test_lane_bits () =
  check_int "i8 bits" 8 (Lane.bits Lane.I8);
  check_int "i16 bytes" 2 (Lane.bytes Lane.I16);
  check_int "i32 bits" 32 (Lane.bits Lane.I32);
  check_int "i64 bytes" 8 (Lane.bytes Lane.I64)

let test_lane_fitting () =
  Alcotest.(check string) "small" "i8" (Lane.to_string (Lane.fitting 100));
  Alcotest.(check string) "boundary 127" "i8" (Lane.to_string (Lane.fitting 127));
  Alcotest.(check string) "boundary 128" "i16" (Lane.to_string (Lane.fitting 128));
  Alcotest.(check string) "negative" "i8" (Lane.to_string (Lane.fitting (-128)));
  Alcotest.(check string) "word" "i32" (Lane.to_string (Lane.fitting 1_000_000));
  Alcotest.(check string) "big" "i64" (Lane.to_string (Lane.fitting (1 lsl 40)))

(* ------------------------------------------------------------------ *)
(* Mask                                                                *)

let test_mask_basics () =
  let m = Mask.create ~width:4 0b0101 in
  check_int "width" 4 (Mask.width m);
  check_bool "lane 0" true (Mask.test m 0);
  check_bool "lane 1" false (Mask.test m 1);
  check_bool "lane 2" true (Mask.test m 2);
  check_int "popcount" 2 (Mask.popcount m);
  check_bool "not empty" false (Mask.is_empty m);
  check_bool "not full" false (Mask.is_full m);
  check_int "lognot bits" 0b1010 (Mask.bits (Mask.lognot m));
  check_bool "full is full" true (Mask.is_full (Mask.full ~width:4));
  check_bool "zero is empty" true (Mask.is_empty (Mask.zero ~width:7))

let test_mask_truncates () =
  (* bits beyond the width are dropped *)
  let m = Mask.create ~width:3 0b11111 in
  check_int "bits" 0b111 (Mask.bits m);
  check_int "popcount" 3 (Mask.popcount m)

let test_mask_errors () =
  Alcotest.check_raises "width 0" (Invalid_argument "Mask.create: width 0 not in 1..62")
    (fun () -> ignore (Mask.create ~width:0 0));
  Alcotest.check_raises "lane range" (Invalid_argument "Mask: lane 4 out of range 0..3")
    (fun () -> ignore (Mask.test (Mask.zero ~width:4) 4))

let test_mask_logic () =
  let a = Mask.create ~width:6 0b110101 in
  let b = Mask.create ~width:6 0b011100 in
  check_int "and" 0b010100 (Mask.bits (Mask.logand a b));
  check_int "or" 0b111101 (Mask.bits (Mask.logor a b));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Mask.logand: widths 6 and 3 differ") (fun () ->
      ignore (Mask.logand a (Mask.zero ~width:3)))

let test_mask_active_lanes () =
  let m = Mask.create ~width:8 0b10010010 in
  Alcotest.(check (list int)) "active" [ 1; 4; 7 ] (Mask.active_lanes m)

let mask_roundtrip =
  QCheck.Test.make ~name:"mask bools roundtrip" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 30) bool)
    (fun bools ->
      let m = Mask.of_bools bools in
      Mask.to_bools m = bools
      && Mask.popcount m = Array.fold_left (fun a b -> if b then a + 1 else a) 0 bools)

let mask_lognot_involution =
  QCheck.Test.make ~name:"mask lognot involution" ~count:200
    QCheck.(pair (int_range 1 30) small_nat)
    (fun (width, bits) ->
      let m = Mask.create ~width bits in
      Mask.equal m (Mask.lognot (Mask.lognot m)))

(* ------------------------------------------------------------------ *)
(* Isa                                                                 *)

let test_isa_lanes () =
  check_int "sse i8" 16 (Isa.lanes Isa.sse42 Lane.I8);
  check_int "sse i16" 8 (Isa.lanes Isa.sse42 Lane.I16);
  check_int "sse i32" 4 (Isa.lanes Isa.sse42 Lane.I32);
  (* IMCI widens narrow types to 32-bit *)
  check_int "phi i8" 16 (Isa.lanes Isa.avx512 Lane.I8);
  check_int "phi i16" 16 (Isa.lanes Isa.avx512 Lane.I16);
  check_int "phi i32" 16 (Isa.lanes Isa.avx512 Lane.I32);
  check_int "phi i64" 8 (Isa.lanes Isa.avx512 Lane.I64)

let test_isa_avx512bw () =
  check_int "char lanes" 64 (Isa.lanes Isa.avx512bw Lane.I8);
  check_int "int lanes" 16 (Isa.lanes Isa.avx512bw Lane.I32);
  check_bool "has both" true
    (Isa.avx512bw.Isa.has_shuffle && Isa.avx512bw.Isa.has_masked_scatter)

let test_isa_features () =
  check_bool "sse shuffle" true Isa.sse42.Isa.has_shuffle;
  check_bool "sse no scatter" false Isa.sse42.Isa.has_masked_scatter;
  check_bool "phi no shuffle" false Isa.avx512.Isa.has_shuffle;
  check_bool "phi scatter" true Isa.avx512.Isa.has_masked_scatter

(* ------------------------------------------------------------------ *)
(* Shuffle / prefix tables                                             *)

let test_shuffle_table () =
  let t = Shuffle_table.make ~width:4 in
  check_int "entries" 16 (Shuffle_table.entry_count t);
  let control = Shuffle_table.shuffle_control t 0b0101 in
  Alcotest.(check (array int)) "control" [| 0; 2; -1; -1 |] control;
  check_int "advance" 2 (Shuffle_table.advance t 0b0101);
  check_int "advance full" 4 (Shuffle_table.advance t 0b1111);
  check_int "advance empty" 0 (Shuffle_table.advance t 0)

let test_shuffle_apply () =
  let t = Shuffle_table.make ~width:4 in
  let dst = Array.make 8 0 in
  let pos = Shuffle_table.apply t 0b1010 ~src:[| 10; 20; 30; 40 |] ~dst ~pos:1 in
  check_int "pos" 3 pos;
  check_int "dst1" 20 dst.(1);
  check_int "dst2" 40 dst.(2)

let shuffle_advance_is_popcount =
  QCheck.Test.make ~name:"shuffle advance = popcount" ~count:300
    QCheck.(pair (int_range 1 10) small_nat)
    (fun (width, m) ->
      let m = m land ((1 lsl width) - 1) in
      let t = Shuffle_table.make ~width in
      let rec pop acc b = if b = 0 then acc else pop (acc + (b land 1)) (b lsr 1) in
      Shuffle_table.advance t m = pop 0 m)

let test_prefix_table () =
  let t = Prefix_table.make ~width:4 in
  check_int "entries" 16 (Prefix_table.entry_count t);
  Alcotest.(check (array int)) "offsets" [| 0; 1; 2; 2 |] (Prefix_table.offsets t 0b1011);
  check_int "advance" 3 (Prefix_table.advance t 0b1011)

let test_prefix_apply () =
  let t = Prefix_table.make ~width:4 in
  let dst = Array.make 8 0 in
  let pos = Prefix_table.apply t 0b1001 ~src:[| 5; 6; 7; 8 |] ~dst ~pos:2 in
  check_int "pos" 4 pos;
  check_int "dst2" 5 dst.(2);
  check_int "dst3" 8 dst.(3)

let test_table_memory () =
  let full16 = Shuffle_table.memory_bytes (Shuffle_table.make ~width:16) in
  let sub8 = Shuffle_table.memory_bytes (Shuffle_table.make ~width:8) in
  (* the paper's factor-256 table shrink for 16-wide from 8-wide tables *)
  check_bool "factorized tables are much smaller" true (full16 / sub8 >= 128)

(* ------------------------------------------------------------------ *)
(* Compact engines                                                     *)

let vm_for engine =
  match engine with
  | Compact.Prefix_scatter _ -> Vm.create Isa.avx512
  | _ -> Vm.create Isa.sse42

let engines_for width =
  Compact.Sequential
  :: (if width <= 16 then [ Compact.Full_table ] else [])
  @ List.filter_map
      (fun s -> if width mod s = 0 && s <= width then Some (Compact.Factorized { sub_width = s }) else None)
      [ 2; 4; 8 ]
  @ [ Compact.Prefix_scatter { sub_width = min width 8 } ]

let reference_partition n pred =
  let sel = ref [] and rest = ref [] in
  for i = n - 1 downto 0 do
    if pred i then sel := i :: !sel else rest := i :: !rest
  done;
  (Array.of_list !sel, Array.of_list !rest)

let compact_engines_agree =
  QCheck.Test.make ~name:"all compaction engines implement stable partition"
    ~count:300
    QCheck.(pair (int_range 0 100) (array_of_size (Gen.int_range 0 100) bool))
    (fun (_, keeps) ->
      let n = Array.length keeps in
      let pred i = keeps.(i) in
      let expected = reference_partition n pred in
      List.for_all
        (fun width ->
          List.for_all
            (fun engine ->
              let vm = vm_for engine in
              Compact.partition ~vm ~engine ~width ~n ~pred = expected)
            (engines_for width))
        [ 4; 8; 16 ])

let compact_wide_registers =
  (* registers wider than the native int's bits (AVX512BW char lanes) *)
  QCheck.Test.make ~name:"compaction at width 32/64 (avx512bw)" ~count:100
    QCheck.(array_of_size (Gen.int_range 0 200) bool)
    (fun keeps ->
      let n = Array.length keeps in
      let pred i = keeps.(i) in
      let expected = reference_partition n pred in
      List.for_all
        (fun width ->
          List.for_all
            (fun engine ->
              let vm = Vm.create Isa.avx512bw in
              Compact.partition ~vm ~engine ~width ~n ~pred = expected)
            [ Compact.Factorized { sub_width = 8 };
              Compact.Prefix_scatter { sub_width = 8 } ])
        [ 32; 64 ])

(* Exhaustive seeded fuzz over the full engine matrix: every supported
   width, every sub-width k dividing it (k <= 8), every engine legal on a
   both-capable ISA, against the naive stable partition — on random masks
   plus the all-zero and all-one boundary masks, which the table-driven
   paths treat specially (empty groups, no epilog). *)
let fuzz_isa =
  (* both compaction primitives available, so one VM runs every engine *)
  {
    Isa.name = "fuzz";
    vector_bits = 512;
    has_shuffle = true;
    has_masked_scatter = true;
    min_lane_bits = 8;
    scalar_issue = 1.0;
    vector_issue = 1.0;
    gather_cost = 2.0;
    scatter_cost = 2.0;
  }

let fuzz_engines width =
  Compact.Sequential
  :: (if width <= 16 then [ Compact.Full_table ] else [])
  @ List.concat_map
      (fun k ->
        if k <= width && width mod k = 0 then
          [ Compact.Factorized { sub_width = k };
            Compact.Prefix_scatter { sub_width = k } ]
        else [])
      [ 1; 2; 4; 8 ]

let test_compact_engine_matrix () =
  let seed =
    match Sys.getenv_opt "VC_PROP_SEED" with
    | Some s -> (try int_of_string s with _ -> 42)
    | None -> 42
  in
  let st = Random.State.make [| seed |] in
  let widths = [ 2; 4; 8; 16; 32; 64 ] in
  let masks n =
    Array.make n false :: Array.make n true
    :: List.init 6 (fun _ -> Array.init n (fun _ -> Random.State.bool st))
  in
  let checked = ref 0 in
  List.iter
    (fun width ->
      List.iter
        (fun n ->
          List.iter
            (fun keeps ->
              let pred i = keeps.(i) in
              let expected = reference_partition n pred in
              List.iter
                (fun engine ->
                  let vm = Vm.create fuzz_isa in
                  let got = Compact.partition ~vm ~engine ~width ~n ~pred in
                  if got <> expected then
                    Alcotest.failf
                      "engine %s disagrees at width %d, n %d, seed %d"
                      (Compact.name engine) width n seed;
                  (* call/pass tallies behave as documented *)
                  let s = Vm.stats vm in
                  if n = 0 then
                    check_int "no call on empty stream" 0 s.Stats.compaction_calls
                  else begin
                    check_int "one call per partition" 1 s.Stats.compaction_calls;
                    if engine = Compact.Sequential then
                      check_int "sequential has no passes" 0 s.Stats.compaction_passes
                    else
                      check_bool "table engines count passes" true
                        (s.Stats.compaction_passes > 0)
                  end;
                  incr checked)
                (fuzz_engines width))
            (masks n))
        [ 0; 1; width - 1; width; width + 1; (3 * width) + 2 ])
    widths;
  check_bool "matrix was non-trivial" true (!checked > 1000)

(* Regression: the shuffle/prefix memo tables are global; before they were
   mutex-guarded, concurrent first-use from several domains raced on
   [Hashtbl.add].  Hammer [partition] from 4 domains using widths no other
   test touches, so every domain hits cold tables simultaneously. *)
let test_compact_parallel_domains () =
  let domains = 4 in
  let n = 4096 in
  let keeps = Array.init n (fun i -> i * 2654435761 land 0b100 = 0) in
  let pred i = keeps.(i) in
  let expected = reference_partition n pred in
  let cases =
    [
      (Compact.Full_table, Isa.sse42, 13);
      (Compact.Full_table, Isa.sse42, 11);
      (Compact.Factorized { sub_width = 7 }, Isa.sse42, 14);
      (Compact.Factorized { sub_width = 5 }, Isa.sse42, 10);
      (Compact.Prefix_scatter { sub_width = 6 }, Isa.avx512, 12);
      (Compact.Prefix_scatter { sub_width = 9 }, Isa.avx512, 9);
    ]
  in
  let worker () =
    List.for_all
      (fun (engine, isa, width) ->
        let vm = Vm.create isa in
        Compact.partition ~vm ~engine ~width ~n ~pred = expected)
      cases
  in
  let spawned = List.init domains (fun _ -> Domain.spawn worker) in
  let ok = List.map Domain.join spawned in
  check_bool "all domains computed the reference partition" true
    (List.for_all Fun.id ok)

let test_compact_default_engines () =
  (match Compact.default_for Isa.sse42 ~width:16 with
  | Compact.Factorized { sub_width } -> check_int "sse 16-wide sub" 8 sub_width
  | _ -> Alcotest.fail "expected factorized on sse");
  (match Compact.default_for Isa.sse42 ~width:8 with
  | Compact.Full_table -> ()
  | _ -> Alcotest.fail "expected full table for narrow width");
  match Compact.default_for Isa.avx512 ~width:16 with
  | Compact.Prefix_scatter _ -> ()
  | _ -> Alcotest.fail "expected prefix-scatter on avx512"

let test_compact_legality () =
  check_bool "shuffle illegal on phi" false (Compact.legal Isa.avx512 Compact.Full_table);
  check_bool "scatter illegal on sse" false
    (Compact.legal Isa.sse42 (Compact.Prefix_scatter { sub_width = 8 }));
  check_bool "sequential always legal" true (Compact.legal Isa.avx512 Compact.Sequential);
  let vm = Vm.create Isa.avx512 in
  match
    Compact.partition ~vm ~engine:Compact.Full_table ~width:16 ~n:4
      ~pred:(fun _ -> true)
  with
  | _ -> Alcotest.fail "partition accepted an illegal engine"
  | exception Compact.Unsupported { engine; isa; reason } ->
      Alcotest.(check string) "unsupported engine" "full-table" engine;
      Alcotest.(check string) "unsupported isa" "avx512" isa;
      check_bool "reason non-empty" true (String.length reason > 0)

let test_compact_costs () =
  (* factorized-8 on a 16-wide stream: 2 sub-groups per register per side,
     2 lookups per sub-group -> 8 lookups per 16 elements *)
  let vm = Vm.create Isa.sse42 in
  ignore
    (Compact.partition ~vm ~engine:(Compact.Factorized { sub_width = 8 }) ~width:16
       ~n:16 ~pred:(fun i -> i mod 2 = 0));
  check_int "factorized lookups" 8 (Vm.stats vm).Stats.table_lookups;
  check_int "factorized shuffles" 4 (Vm.stats vm).Stats.shuffles;
  let vm2 = Vm.create Isa.sse42 in
  ignore
    (Compact.partition ~vm:vm2 ~engine:Compact.Full_table ~width:16 ~n:16
       ~pred:(fun i -> i mod 2 = 0));
  check_int "full-table lookups" 4 (Vm.stats vm2).Stats.table_lookups;
  check_int "full-table shuffles" 2 (Vm.stats vm2).Stats.shuffles;
  (* sequential charges scalar ops only *)
  let vm3 = Vm.create Isa.sse42 in
  ignore
    (Compact.partition ~vm:vm3 ~engine:Compact.Sequential ~width:16 ~n:10
       ~pred:(fun _ -> true));
  check_int "sequential scalar" 20 (Vm.stats vm3).Stats.scalar_ops;
  check_int "sequential no vector" 0 (Vm.stats vm3).Stats.vector_ops

let test_compact_table_memory () =
  let full = Compact.table_memory_bytes Compact.Full_table ~width:16 in
  let fact = Compact.table_memory_bytes (Compact.Factorized { sub_width = 8 }) ~width:16 in
  check_bool "space trade-off" true (fact * 100 < full);
  check_int "sequential no table" 0 (Compact.table_memory_bytes Compact.Sequential ~width:16)

(* ------------------------------------------------------------------ *)
(* Vm                                                                  *)

let test_vm_batch () =
  let vm = Vm.create Isa.sse42 in
  Vm.batch vm ~classify:true ~width:16 ~n:35 ~insns_per_task:3 ();
  let s = Vm.stats vm in
  check_int "vector ops" 9 s.Stats.vector_ops;
  (* 3 groups * 3 insns *)
  check_int "lane slots" (9 * 16) s.Stats.lane_slots;
  check_int "active" (35 * 3) s.Stats.active_lanes;
  check_int "full tasks" 32 s.Stats.full_tasks;
  check_int "epilog" 3 s.Stats.epilog_tasks;
  Alcotest.(check (float 1e-9)) "utilization" (32.0 /. 35.0) (Stats.simd_utilization s)

let test_vm_batch_unclassified () =
  let vm = Vm.create Isa.sse42 in
  Vm.batch vm ~width:8 ~n:10 ~insns_per_task:1 ();
  let s = Vm.stats vm in
  check_int "no task classes" 0 (s.Stats.full_tasks + s.Stats.epilog_tasks)

let test_vm_cycles () =
  let vm = Vm.create Isa.avx512 in
  Vm.scalar_ops vm 10;
  Vm.vector_op vm ~width:16 ~active:16;
  (* phi scalar issue = 2.0 *)
  Alcotest.(check (float 1e-9)) "cycles" 21.0 (Vm.issue_cycles vm)

let test_vm_illegal_ops () =
  let vm = Vm.create Isa.avx512 in
  Alcotest.check_raises "no shuffle on phi"
    (Invalid_argument "Vm.shuffle: ISA avx512 has no shuffle instruction") (fun () ->
      Vm.shuffle vm ~width:16);
  let vm2 = Vm.create Isa.sse42 in
  Alcotest.check_raises "no masked scatter on sse"
    (Invalid_argument "Vm.masked_scatter: ISA sse4.2 has no masked scatter") (fun () ->
      Vm.masked_scatter vm2 ~width:16 ~active:4 ~lane_bytes:4 ~addr:0)

let test_vm_memory_hook () =
  let log = ref [] in
  let vm = Vm.create ~on_access:(fun a -> log := a :: !log) Isa.sse42 in
  Vm.vector_load vm ~addr:128 ~lanes:16 ~lane_bytes:1;
  Vm.scalar_store vm ~addr:4096 ~bytes:4;
  (match !log with
  | [ { Vm.addr = 4096; bytes = 4; write = true }; { Vm.addr = 128; bytes = 16; write = false } ] -> ()
  | _ -> Alcotest.fail "unexpected access log");
  check_int "loads" 1 (Vm.stats vm).Stats.vector_loads;
  check_int "stores" 1 (Vm.stats vm).Stats.scalar_stores

let test_vm_gather_scatter_costs () =
  let vm = Vm.create Isa.sse42 in
  Vm.gather vm ~addrs:[| 0; 64; 128; 192 |] ~lane_bytes:4;
  Vm.scatter vm ~addrs:[| 0; 64 |] ~lane_bytes:4;
  let s = Vm.stats vm in
  check_int "gathers" 1 s.Stats.gathers;
  check_int "scatters" 1 s.Stats.scatters;
  (* 2 vector ops + gather_cost 4 + scatter_cost 4 *)
  Alcotest.(check (float 1e-9)) "cycles" 10.0 (Vm.issue_cycles vm)

let test_vm_access_hook_swap () =
  let vm = Vm.create Isa.sse42 in
  let hits = ref 0 in
  Vm.set_on_access vm (Some (fun _ -> incr hits));
  Vm.scalar_load vm ~addr:0 ~bytes:4;
  Vm.set_on_access vm None;
  Vm.scalar_load vm ~addr:0 ~bytes:4;
  check_int "hook swapped" 1 !hits

let test_stats_add_diff () =
  let a = Stats.create () in
  a.Stats.scalar_ops <- 5;
  let b = Stats.copy a in
  b.Stats.scalar_ops <- 9;
  let d = Stats.diff b a in
  check_int "diff" 4 d.Stats.scalar_ops;
  Stats.add a d;
  check_int "add" 9 a.Stats.scalar_ops

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vc_simd"
    [
      ( "lane",
        [
          Alcotest.test_case "bits/bytes" `Quick test_lane_bits;
          Alcotest.test_case "fitting" `Quick test_lane_fitting;
        ] );
      ( "mask",
        [
          Alcotest.test_case "basics" `Quick test_mask_basics;
          Alcotest.test_case "truncation" `Quick test_mask_truncates;
          Alcotest.test_case "errors" `Quick test_mask_errors;
          Alcotest.test_case "logic" `Quick test_mask_logic;
          Alcotest.test_case "active lanes" `Quick test_mask_active_lanes;
        ]
        @ qsuite [ mask_roundtrip; mask_lognot_involution ] );
      ( "isa",
        [
          Alcotest.test_case "lanes" `Quick test_isa_lanes;
          Alcotest.test_case "features" `Quick test_isa_features;
          Alcotest.test_case "avx512bw" `Quick test_isa_avx512bw;
        ] );
      ( "tables",
        [
          Alcotest.test_case "shuffle table" `Quick test_shuffle_table;
          Alcotest.test_case "shuffle apply" `Quick test_shuffle_apply;
          Alcotest.test_case "prefix table" `Quick test_prefix_table;
          Alcotest.test_case "prefix apply" `Quick test_prefix_apply;
          Alcotest.test_case "memory factor" `Quick test_table_memory;
        ]
        @ qsuite [ shuffle_advance_is_popcount ] );
      ( "compact",
        [
          Alcotest.test_case "default engines" `Quick test_compact_default_engines;
          Alcotest.test_case "legality" `Quick test_compact_legality;
          Alcotest.test_case "costs" `Quick test_compact_costs;
          Alcotest.test_case "table memory" `Quick test_compact_table_memory;
          Alcotest.test_case "parallel domains" `Quick test_compact_parallel_domains;
          Alcotest.test_case "seeded engine matrix" `Quick test_compact_engine_matrix;
        ]
        @ qsuite [ compact_engines_agree; compact_wide_registers ] );
      ( "vm",
        [
          Alcotest.test_case "batch accounting" `Quick test_vm_batch;
          Alcotest.test_case "batch unclassified" `Quick test_vm_batch_unclassified;
          Alcotest.test_case "issue cycles" `Quick test_vm_cycles;
          Alcotest.test_case "illegal ops" `Quick test_vm_illegal_ops;
          Alcotest.test_case "memory hook" `Quick test_vm_memory_hook;
          Alcotest.test_case "stats add/diff" `Quick test_stats_add_diff;
          Alcotest.test_case "gather/scatter costs" `Quick test_vm_gather_scatter_costs;
          Alcotest.test_case "access hook swap" `Quick test_vm_access_hook_swap;
        ] );
    ]
