(* Tests for the core library: blocks and schemas, the Fig. 7 rewrite, the
   blocked interpreter, the DSL->Spec compiler, the measured executors
   (sequential, strawman, breadth-first, blocked, re-expansion), and the
   analyses built on them. *)

open Vc_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let e5 = Vc_mem.Machine.xeon_e5
let phi = Vc_mem.Machine.xeon_phi

let fib_src =
  "reducer sum result;\n\
   def fib(n) =\n\
  \  if n < 2 then { reduce(result, n); }\n\
  \  else { spawn fib(n - 1); spawn fib(n - 2); }\n"

let fib_program = Vc_lang.Parser.parse_string fib_src

(* ------------------------------------------------------------------ *)
(* Schema / Addr / Block                                               *)

let test_schema () =
  let s = Schema.create ~lane_kind:Vc_simd.Lane.I8 [ "a"; "b"; "c" ] in
  check_int "fields" 3 (Schema.num_fields s);
  check_int "index" 1 (Schema.field_index s "b");
  Alcotest.check_raises "unknown field" Not_found (fun () ->
      ignore (Schema.field_index s "z"));
  check_int "elem bytes e5" 1 (Schema.elem_bytes s ~isa:Vc_simd.Isa.sse42);
  (* the Phi widens chars to ints *)
  check_int "elem bytes phi" 4 (Schema.elem_bytes s ~isa:Vc_simd.Isa.avx512);
  check_int "frame bytes" 12 (Schema.frame_bytes s ~isa:Vc_simd.Isa.avx512);
  Alcotest.check_raises "duplicate field"
    (Invalid_argument "Schema.create: duplicate field \"a\"") (fun () ->
      ignore (Schema.create ~lane_kind:Vc_simd.Lane.I8 [ "a"; "a" ]))

let test_addr () =
  let a = Addr.create () in
  let r1 = Addr.alloc a ~bytes:100 in
  let r2 = Addr.alloc a ~bytes:100 in
  check_bool "disjoint" true (r2 >= r1 + 100);
  check_int "aligned" 0 (r1 mod 64);
  check_int "aligned 2" 0 (r2 mod 64);
  check_int "total" 200 (Addr.allocated_bytes a)

let test_block () =
  let addr = Addr.create () in
  let s = Schema.create ~lane_kind:Vc_simd.Lane.I32 [ "x"; "y" ] in
  let b = Block.create addr ~schema:s ~isa:Vc_simd.Isa.sse42 ~capacity:4 in
  check_int "empty" 0 (Block.size b);
  Block.push b [| 1; 2 |];
  Block.push b [| 3; 4 |];
  check_int "size" 2 (Block.size b);
  check_int "get" 3 (Block.get b ~field:0 ~row:1);
  Block.set b ~field:1 ~row:0 9;
  check_int "set" 9 (Block.get b ~field:1 ~row:0);
  (* SoA addressing: field columns are contiguous *)
  let a00 = Block.field_addr b ~field:0 ~row:0 in
  let a01 = Block.field_addr b ~field:0 ~row:1 in
  let a10 = Block.field_addr b ~field:1 ~row:0 in
  check_int "row stride = elem" 4 (a01 - a00);
  check_int "field stride = capacity*elem" 16 (a10 - a00);
  Block.clear b;
  check_int "cleared" 0 (Block.size b)

let test_block_growth () =
  let addr = Addr.create () in
  let s = Schema.create ~lane_kind:Vc_simd.Lane.I32 [ "x" ] in
  let b = Block.create addr ~schema:s ~isa:Vc_simd.Isa.sse42 ~capacity:2 in
  Block.push b [| 1 |];
  Block.push b [| 2 |];
  Alcotest.check_raises "push full"
    (Invalid_argument "Block.push: block full (capacity 2)") (fun () ->
      Block.push b [| 3 |]);
  let b2 = Block.ensure_room b addr ~extra:3 in
  check_int "contents preserved" 2 (Block.get b2 ~field:0 ~row:1);
  check_bool "capacity grew" true (Block.capacity b2 >= 5);
  check_bool "same block when it fits" true (Block.ensure_room b2 addr ~extra:1 == b2)

let test_block_copy_row () =
  let addr = Addr.create () in
  let s = Schema.create ~lane_kind:Vc_simd.Lane.I32 [ "x"; "y" ] in
  let a = Block.create addr ~schema:s ~isa:Vc_simd.Isa.sse42 ~capacity:2 in
  let b = Block.create addr ~schema:s ~isa:Vc_simd.Isa.sse42 ~capacity:2 in
  Block.push a [| 7; 8 |];
  Block.copy_row ~src:a ~src_row:0 ~dst:b;
  check_int "copied" 8 (Block.get b ~field:1 ~row:0)

let test_soa_roundtrip () =
  let vm = Vc_simd.Vm.create Vc_simd.Isa.sse42 in
  let addr = Addr.create () in
  let s = Schema.create ~lane_kind:Vc_simd.Lane.I32 [ "x"; "y" ] in
  let frames = Array.init 10 (fun i -> [| i; i * i |]) in
  let blk =
    Soa.aos_to_soa ~vm ~addr ~schema:s ~isa:Vc_simd.Isa.sse42 ~aos_base:0x100000 ~frames ()
  in
  check_int "size" 10 (Block.size blk);
  check_int "field value" 49 (Block.get blk ~field:1 ~row:7);
  check_bool "gathers charged" true ((Vc_simd.Vm.stats vm).Vc_simd.Stats.gathers > 0);
  let back = Soa.soa_to_aos ~vm ~aos_base:0x100000 blk in
  check_bool "roundtrip" true (back = frames);
  check_bool "scatters charged" true ((Vc_simd.Vm.stats vm).Vc_simd.Stats.scatters > 0)

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)

let test_policy () =
  (match Policy.hybrid_for ~target_space:1024 ~num_spawns:2 ~reexpand:true with
  | Policy.Hybrid { max_block = 512; reexpand = true } -> ()
  | _ -> Alcotest.fail "threshold rule");
  Alcotest.(check string) "names" "bfs" (Policy.name Policy.Bfs_only);
  Alcotest.(check string) "noreexp" "noreexp"
    (Policy.name (Policy.Hybrid { max_block = 4; reexpand = false }));
  Alcotest.(check string) "reexp" "reexp"
    (Policy.name (Policy.Hybrid { max_block = 4; reexpand = true }));
  Alcotest.check_raises "bad target" (Invalid_argument "Policy.hybrid_for: target_space < 1")
    (fun () -> ignore (Policy.hybrid_for ~target_space:0 ~num_spawns:2 ~reexpand:false))

(* ------------------------------------------------------------------ *)
(* Transform (Fig. 7)                                                  *)

let test_rewrite_rules () =
  let open Vc_lang.Ast in
  check_bool "return -> continue" true
    (Transform.rewrite_stmt ~flavor:Blocked_ast.Bfs Return = Blocked_ast.Continue);
  let spawn = Spawn { spawn_id = 1; spawn_args = [ Int 5 ] } in
  (match Transform.rewrite_stmt ~flavor:Blocked_ast.Bfs spawn with
  | Blocked_ast.NextAdd [ Int 5 ] -> ()
  | _ -> Alcotest.fail "bfs spawn -> next.add");
  (match Transform.rewrite_stmt ~flavor:Blocked_ast.Blocked spawn with
  | Blocked_ast.NextsAdd (1, [ Int 5 ]) -> ()
  | _ -> Alcotest.fail "blocked spawn -> nexts[id].add");
  (* structural rewriting threads through composite statements *)
  match
    Transform.rewrite_stmt ~flavor:Blocked_ast.Blocked
      (Seq (If (Bool true, spawn, Return), While (Bool false, Skip)))
  with
  | Blocked_ast.BSeq
      ( Blocked_ast.BIf (_, Blocked_ast.NextsAdd (1, _), Blocked_ast.Continue),
        Blocked_ast.BWhile (_, Blocked_ast.BSkip) ) ->
      ()
  | _ -> Alcotest.fail "structural rewrite"

let test_transform_fib () =
  let t = Transform.transform fib_program in
  Alcotest.(check (list string)) "thread struct" [ "n" ] t.Blocked_ast.thread_fields;
  check_int "spawn count" 2 t.Blocked_ast.num_spawns;
  Alcotest.(check string) "bfs name" "fib_bfs" t.Blocked_ast.bfs_method.Blocked_ast.bname;
  Alcotest.(check string) "blocked name" "fib_blocked"
    t.Blocked_ast.blocked_method.Blocked_ast.bname;
  let printed = Blocked_ast.to_string t in
  List.iter
    (fun fragment ->
      check_bool (Printf.sprintf "printed code contains %S" fragment) true
        (let nl = String.length fragment and hl = String.length printed in
         let rec go i = i + nl <= hl && (String.sub printed i nl = fragment || go (i + 1)) in
         go 0))
    [
      "struct Thread { int n };";
      "next.add(new Thread(n - 1));";
      "nexts[1].add(new Thread(n - 2));";
      "if (next.size() < max_block_size) fib_bfs(next);";
      "if (next.size() > reexpansion_threshold) fib_blocked(next);";
      "fib_bfs(init);";
    ]

let test_transform_rejects_invalid () =
  let bad = Vc_lang.Parser.parse_string "def f(a) = if a < 1 then { reduce(r, 1); } else { spawn f(a - 1); }" in
  try
    ignore (Transform.transform bad);
    Alcotest.fail "expected Invalid"
  with Vc_lang.Validate.Invalid _ -> ()

(* ------------------------------------------------------------------ *)
(* Blocked interpreter: executes the transformed code                  *)

let interp_reducers p args =
  (Vc_lang.Interp.run_validated p args).Vc_lang.Interp.reducers

let strategies =
  [
    Policy.Bfs_only;
    Policy.Hybrid { max_block = 1; reexpand = false };
    Policy.Hybrid { max_block = 1; reexpand = true };
    Policy.Hybrid { max_block = 8; reexpand = false };
    Policy.Hybrid { max_block = 8; reexpand = true };
    Policy.Hybrid { max_block = 1024; reexpand = true };
  ]

let test_blocked_interp_fib () =
  let t = Transform.transform fib_program in
  let expected = interp_reducers fib_program [ 15 ] in
  List.iter
    (fun strategy ->
      let r = Blocked_interp.run ~strategy t [ 15 ] in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "reducers under %s" (Policy.name strategy))
        expected r.Blocked_interp.reducers;
      check_int "tasks" ((2 * 987) - 1) r.Blocked_interp.tasks)
    strategies

let test_blocked_interp_switches () =
  let t = Transform.transform fib_program in
  let r = Blocked_interp.run ~strategy:(Policy.Hybrid { max_block = 8; reexpand = true }) t [ 12 ] in
  check_bool "switched to blocked" true (r.Blocked_interp.switches > 0);
  check_bool "re-expanded" true (r.Blocked_interp.reexpansions > 0);
  let r2 = Blocked_interp.run ~strategy:Policy.Bfs_only t [ 12 ] in
  check_int "bfs never switches" 0 r2.Blocked_interp.switches

let test_blocked_interp_task_limit () =
  let t = Transform.transform fib_program in
  Alcotest.check_raises "limit" (Blocked_interp.Task_limit_exceeded 100) (fun () ->
      ignore (Blocked_interp.run ~max_tasks:100 t [ 20 ]))

let blocked_interp_equiv_random =
  QCheck.Test.make ~name:"transformed program = sequential semantics (random)"
    ~count:120 Qgen.arbitrary_program_and_args (fun (p, args) ->
      let expected = interp_reducers p args in
      let t = Transform.transform p in
      List.for_all
        (fun strategy ->
          (Blocked_interp.run ~strategy t args).Blocked_interp.reducers = expected)
        strategies)

(* ------------------------------------------------------------------ *)
(* Compile: DSL -> Spec -> Engine                                      *)

let test_compile_fib_spec () =
  let spec = Compile.spec_of_program ~lane_kind:Vc_simd.Lane.I8 fib_program ~args:[ 16 ] in
  (match Spec.validate spec with Ok () -> () | Error es -> Alcotest.failf "%s" (String.concat "; " es));
  let expected = interp_reducers fib_program [ 16 ] in
  List.iter
    (fun machine ->
      let seq = Seq_exec.run ~spec ~machine () in
      Alcotest.(check (list (pair string int))) "seq reducers" expected seq.Report.reducers;
      List.iter
        (fun strategy ->
          let r = Engine.run ~spec ~machine ~strategy () in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "engine reducers (%s/%s)" machine.Vc_mem.Machine.name
               (Policy.name strategy))
            expected r.Report.reducers;
          check_int "same task count" seq.Report.tasks r.Report.tasks;
          check_int "same depth" seq.Report.max_depth r.Report.max_depth)
        strategies)
    [ e5; phi ]

let compile_equiv_random =
  QCheck.Test.make ~name:"compiled spec = sequential semantics (random)" ~count:60
    Qgen.arbitrary_program_and_args (fun (p, args) ->
      let expected = interp_reducers p args in
      let spec = Compile.spec_of_program p ~args in
      let seq = Seq_exec.run ~spec ~machine:e5 () in
      let eng =
        Engine.run ~spec ~machine:e5
          ~strategy:(Policy.Hybrid { max_block = 4; reexpand = true })
          ()
      in
      seq.Report.reducers = expected && eng.Report.reducers = expected
      && seq.Report.tasks = eng.Report.tasks)

(* ------------------------------------------------------------------ *)
(* Executors on native specs                                           *)

let small_specs () =
  [
    Vc_bench.Fib.spec { Vc_bench.Fib.n = 14 };
    Vc_bench.Binomial.spec { Vc_bench.Binomial.n = 12; k = 5 };
    Vc_bench.Parentheses.spec { Vc_bench.Parentheses.pairs = 6 };
    Vc_bench.Knapsack.spec { Vc_bench.Knapsack.n = 10; capacity_ratio = 0.5; seed = 3 };
    Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 7 };
    Vc_bench.Graphcol.spec
      { Vc_bench.Graphcol.vertices = 10; edges = 14; colors = 3; seed = 5 };
    Vc_bench.Uts.spec { Vc_bench.Uts.b0 = 20; m = 3; q = 0.3; seed = 11 };
    Vc_bench.Minmax.spec { Vc_bench.Minmax.size = 3 };
  ]

let test_engine_matches_seq_all_benchmarks () =
  List.iter
    (fun spec ->
      let seq = Seq_exec.run ~spec ~machine:e5 () in
      List.iter
        (fun machine ->
          List.iter
            (fun strategy ->
              let r = Engine.run ~spec ~machine ~strategy () in
              let label what =
                Printf.sprintf "%s %s/%s/%s" what spec.Spec.name
                  machine.Vc_mem.Machine.name (Policy.name strategy)
              in
              Alcotest.(check (list (pair string int)))
                (label "reducers") seq.Report.reducers r.Report.reducers;
              check_int (label "tasks") seq.Report.tasks r.Report.tasks;
              check_int (label "base tasks") seq.Report.base_tasks r.Report.base_tasks;
              Alcotest.(check (array (pair int int)))
                (label "per-level distribution") seq.Report.levels r.Report.levels)
            strategies)
        [ e5; phi ])
    (small_specs ())

let test_engine_compaction_engines_agree () =
  let spec = Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 7 } in
  let strategy = Policy.Hybrid { max_block = 64; reexpand = true } in
  let base = Engine.run ~spec ~machine:e5 ~strategy () in
  List.iter
    (fun compact ->
      let r = Engine.run ~compact ~spec ~machine:e5 ~strategy () in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "reducers with %s" (Vc_simd.Compact.name compact))
        base.Report.reducers r.Report.reducers)
    [
      Vc_simd.Compact.Sequential;
      Vc_simd.Compact.Full_table;
      Vc_simd.Compact.Factorized { sub_width = 4 };
    ]

let test_engine_oom () =
  (* fib(18)'s widest level exceeds 512 threads, so pure breadth-first
     expansion overruns this limit; the hybrid keeps O(max_block * depth *
     e) live threads and survives it. *)
  let tiny = { e5 with Vc_mem.Machine.name = "tiny"; max_live_threads = 512 } in
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 18 } in
  let r = Engine.run ~spec ~machine:tiny ~strategy:Policy.Bfs_only () in
  check_bool "bfs-only OOMs" true r.Report.oom;
  let r2 =
    Engine.run ~spec ~machine:tiny
      ~strategy:(Policy.Hybrid { max_block = 8; reexpand = true })
      ()
  in
  check_bool "hybrid survives" false r2.Report.oom;
  check_bool "space bounded" true (r2.Report.space_peak <= 512)

let test_engine_utilization_grows_with_block () =
  let spec = Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 8 } in
  let util max_block =
    let r =
      Engine.run ~spec ~machine:e5
        ~strategy:(Policy.Hybrid { max_block; reexpand = false })
        ()
    in
    r.Report.utilization
  in
  let u4 = util 4 and u64 = util 64 and u1024 = util 1024 in
  check_bool "monotone 4 -> 64" true (u4 <= u64 +. 1e-9);
  check_bool "monotone 64 -> 1024" true (u64 <= u1024 +. 1e-9)

let test_engine_reexpansion_raises_utilization () =
  let spec = Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 8 } in
  let run reexpand =
    Engine.run ~spec ~machine:e5 ~strategy:(Policy.Hybrid { max_block = 64; reexpand }) ()
  in
  let off = run false and on = run true in
  check_bool "reexpansion helps utilization" true
    (on.Report.utilization > off.Report.utilization);
  check_bool "events recorded" true (Array.length on.Report.reexpansions > 0);
  check_int "no events when off" 0 (Array.length off.Report.reexpansions)

let test_seq_exec_task_limit () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 20 } in
  Alcotest.check_raises "limit" (Seq_exec.Task_limit_exceeded 50) (fun () ->
      ignore (Seq_exec.run ~max_tasks:50 ~spec ~machine:e5 ()))

let test_strawman () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 14 } in
  let seq = Seq_exec.run ~spec ~machine:e5 () in
  let straw = Strawman.run ~spec ~machine:e5 () in
  Alcotest.(check (list (pair string int))) "reducers" seq.Report.reducers straw.Report.reducers;
  check_int "tasks" seq.Report.tasks straw.Report.tasks;
  let good =
    Engine.run ~spec ~machine:e5
      ~strategy:(Policy.Hybrid { max_block = 256; reexpand = true })
      ()
  in
  (* the paper's §2 argument: divergent lane-per-thread execution loses to
     the blocked transformation *)
  check_bool "strawman slower than blocked" true (straw.Report.cycles > good.Report.cycles)

let test_engine_trace () =
  let spec = Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 7 } in
  let trace = Trace.create () in
  let r =
    Engine.run ~trace ~spec ~machine:e5
      ~strategy:(Policy.Hybrid { max_block = 32; reexpand = true })
      ()
  in
  let evs = Trace.events trace in
  check_bool "events recorded" true (Array.length evs > 0);
  check_bool "starts with the root bfs level" true
    (evs.(0).Trace.phase = Trace.Bfs && evs.(0).Trace.depth = 0 && evs.(0).Trace.size = 1);
  (* every engine task appears in exactly one traced level *)
  check_int "sizes sum to tasks" r.Report.tasks
    (Array.fold_left (fun acc e -> acc + e.Trace.size) 0 evs);
  check_int "bases sum to base tasks" r.Report.base_tasks
    (Array.fold_left (fun acc e -> acc + e.Trace.base) 0 evs);
  (* re-expansion means both phases appear *)
  let phases = Trace.phase_counts trace in
  check_bool "both phases present" true
    (List.mem_assoc Trace.Bfs phases && List.mem_assoc Trace.Blocked phases);
  let printed = Format.asprintf "%a" (Trace.pp ~limit:5) trace in
  check_bool "pp summarizes" true (String.length printed > 0)

let test_engine_warm_cache () =
  let spec = Vc_bench.Minmax.spec { Vc_bench.Minmax.size = 3 } in
  let strategy = Policy.Hybrid { max_block = 256; reexpand = true } in
  let seq = Seq_exec.run ~spec ~machine:phi () in
  let cold = Engine.run ~spec ~machine:phi ~strategy () in
  let warm = Engine.run ~warm:true ~spec ~machine:phi ~strategy () in
  Alcotest.(check (list (pair string int))) "warm results exact"
    seq.Report.reducers warm.Report.reducers;
  check_int "warm counts tasks once" cold.Report.tasks warm.Report.tasks;
  check_bool "warm is faster" true (warm.Report.cycles < cold.Report.cycles);
  Alcotest.(check string) "strategy tagged" "reexp+warm" warm.Report.strategy

let test_engine_cutoff () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 20 } in
  let seq = Seq_exec.run ~spec ~machine:e5 () in
  let strategy = Policy.Hybrid { max_block = 256; reexpand = true } in
  let vec = Engine.run ~spec ~machine:e5 ~strategy () in
  let cut = Engine.run ~cutoff:64 ~spec ~machine:e5 ~strategy () in
  Alcotest.(check (list (pair string int))) "results unchanged"
    seq.Report.reducers cut.Report.reducers;
  check_int "all tasks executed" seq.Report.tasks cut.Report.tasks;
  check_bool "cut-off starves lanes" true
    (cut.Report.utilization < vec.Report.utilization);
  check_bool "cut-off costs cycles" true (cut.Report.cycles > vec.Report.cycles)

(* ------------------------------------------------------------------ *)
(* Multicore hybrid (paper Sec. 8 future work)                         *)

let test_multicore_exact_results () =
  List.iter
    (fun spec ->
      let seq = Seq_exec.run ~spec ~machine:e5 () in
      List.iter
        (fun workers ->
          let r = Multicore.run ~max_block:64 ~spec ~machine:e5 ~workers () in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s reducers @ %d workers" spec.Spec.name workers)
            seq.Report.reducers r.Multicore.reducers)
        [ 1; 3; 8 ])
    [
      Vc_bench.Fib.spec { Vc_bench.Fib.n = 15 };
      Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 7 };
      Vc_bench.Knapsack.spec { Vc_bench.Knapsack.n = 10; capacity_ratio = 0.5; seed = 3 };
    ]

let test_multicore_scales () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 18 } in
  let seq = Seq_exec.run ~spec ~machine:e5 () in
  let speedup workers =
    Multicore.speedup ~baseline:seq (Multicore.run ~spec ~machine:e5 ~workers ())
  in
  let s1 = speedup 1 and s4 = speedup 4 in
  check_bool "more workers help" true (s4 > s1 *. 1.5);
  let r = Multicore.run ~spec ~machine:e5 ~workers:4 () in
  check_bool "balance sane" true (r.Multicore.balance >= 0.99);
  check_bool "serial fraction positive" true (r.Multicore.expansion_cycles > 0.0);
  check_int "all jobs placed" r.Multicore.jobs
    (min (4 * 4) r.Multicore.frontier)

let test_ws_sim_single_worker () =
  let jobs = List.init 5 (fun id -> { Ws_sim.id; cost = float_of_int (id + 1) }) in
  let s = Ws_sim.simulate ~workers:1 jobs in
  Alcotest.(check (float 1e-9)) "makespan = total" 15.0 s.Ws_sim.makespan;
  check_int "no steals" 0 s.Ws_sim.steals;
  check_int "all jobs on worker 0" 5 s.Ws_sim.jobs_run.(0)

let test_ws_sim_balances () =
  let jobs = List.init 64 (fun id -> { Ws_sim.id; cost = 1000.0 }) in
  let s = Ws_sim.simulate ~steal_cost:10.0 ~seed:7 ~workers:4 jobs in
  check_bool "steals happened" true (s.Ws_sim.steals > 0);
  check_bool "parallel speedup" true (s.Ws_sim.makespan < 0.5 *. s.Ws_sim.total_work);
  check_bool "lower bound" true
    (s.Ws_sim.makespan >= s.Ws_sim.total_work /. 4.0 -. 1e-9);
  Alcotest.(check (float 1e-9)) "work conserved" s.Ws_sim.total_work
    (Array.fold_left ( +. ) 0.0 s.Ws_sim.busy);
  check_int "jobs conserved" 64 (Array.fold_left ( + ) 0 s.Ws_sim.jobs_run);
  check_bool "utilization in (0,1]" true
    (Ws_sim.utilization s > 0.0 && Ws_sim.utilization s <= 1.0 +. 1e-9)

let test_ws_sim_deterministic () =
  let jobs = List.init 20 (fun id -> { Ws_sim.id; cost = float_of_int (100 + (id * 37 mod 53)) }) in
  let a = Ws_sim.simulate ~seed:5 ~workers:3 jobs in
  let b = Ws_sim.simulate ~seed:5 ~workers:3 jobs in
  check_bool "same seed same result" true (a = b);
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Ws_sim.simulate: workers must be positive") (fun () ->
      ignore (Ws_sim.simulate ~workers:0 jobs))

let ws_sim_bounds =
  QCheck.Test.make ~name:"work-stealing makespan respects scheduling bounds"
    ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 0 40) (int_range 1 1000)))
    (fun (workers, costs) ->
      let jobs = List.mapi (fun id c -> { Ws_sim.id; cost = float_of_int c }) costs in
      let s = Ws_sim.simulate ~seed:3 ~workers jobs in
      let total = s.Ws_sim.total_work in
      let longest = List.fold_left (fun acc j -> max acc j.Ws_sim.cost) 0.0 jobs in
      s.Ws_sim.makespan >= total /. float_of_int workers -. 1e-6
      && s.Ws_sim.makespan >= longest -. 1e-6
      && Array.fold_left ( +. ) 0.0 s.Ws_sim.busy = total)

let test_multicore_work_stealing_schedule () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 16 } in
  let seq = Seq_exec.run ~spec ~machine:e5 () in
  let r =
    Multicore.run
      ~schedule:(Multicore.Work_stealing { steal_cost = 200.0; seed = 11 })
      ~spec ~machine:e5 ~workers:4 ()
  in
  Alcotest.(check (list (pair string int))) "exact results" seq.Report.reducers
    r.Multicore.reducers;
  check_bool "steals counted" true (r.Multicore.steals > 0);
  check_bool "still parallel" true
    (Multicore.speedup ~baseline:seq r > 1.0)

let test_multicore_errors () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 10 } in
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Multicore.run: workers must be positive") (fun () ->
      ignore (Multicore.run ~spec ~machine:e5 ~workers:0 ()))

let test_multicore_oom_budget () =
  (* a per-job engine OOM surfaces as a typed [Memory] budget error (exit
     code 2) so pools contain it as a per-run failure, not as a bare
     [Failure] that kills the whole sweep *)
  let tiny = { e5 with Vc_mem.Machine.name = "tiny"; max_live_threads = 512 } in
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 18 } in
  match Multicore.run ~spec ~machine:tiny ~workers:2 () with
  | _ -> Alcotest.fail "tiny machine should run out of modeled memory"
  | exception Vc_error.Error e ->
      (match e.Vc_error.kind with
      | Vc_error.Budget_exceeded { resource = Vc_error.Memory; _ } -> ()
      | _ -> Alcotest.failf "wrong error kind: %s" (Vc_error.to_string e));
      check_int "exit code 2" 2 (Vc_error.exit_code e)

let test_strawman_task_budget () =
  (* exceeding the task limit is a typed [Task_budget] error carrying the
     limit and the count reached, not a [Failure] *)
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 14 } in
  match Strawman.run ~max_tasks:100 ~spec ~machine:e5 () with
  | _ -> Alcotest.fail "task budget should trip"
  | exception Vc_error.Error e -> (
      check_int "exit code 2" 2 (Vc_error.exit_code e);
      match e.Vc_error.kind with
      | Vc_error.Budget_exceeded { resource = Vc_error.Task_budget; limit; actual }
        ->
          check_bool "limit recorded" true (limit = 100.0);
          check_bool "count reached the limit" true (actual >= limit)
      | _ -> Alcotest.failf "wrong error kind: %s" (Vc_error.to_string e))

(* ------------------------------------------------------------------ *)
(* Opportunity analysis                                                *)

let test_opportunity () =
  let spec = Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 8 } in
  let seq = Seq_exec.run ~spec ~machine:e5 () in
  let vec =
    Engine.run ~spec ~machine:e5 ~strategy:(Policy.Hybrid { max_block = 256; reexpand = true }) ()
  in
  let row = Opportunity.analyze ~seq ~vec ~width:16 in
  check_bool "fractions sum to 1" true
    (abs_float (row.Opportunity.seq_vect +. row.Opportunity.seq_nonvect -. 1.0) < 1e-9);
  check_bool "kernel dominates nqueens" true (row.Opportunity.seq_vect > 0.5);
  (* can slightly exceed the vector width: the transformation also trims
     non-kernel instructions (paper, Table 3 discussion) *)
  check_bool "max speedup sensible" true
    (row.Opportunity.max_speedup > 1.0 && row.Opportunity.max_speedup <= 32.0)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let mark m = Telemetry.Mark m

let sample_events =
  [
    Telemetry.Level { phase = Trace.Bfs; depth = 0; size = 1; base = 0 };
    Telemetry.Switch { depth = 3; size = 9 };
    Telemetry.Reexpand { depth = 4; size = 2; shrink = 0.5 };
    Telemetry.Compaction { engine = "shuffle"; width = 8; n = 13; passes = 2 };
    Telemetry.Convert { to_soa = true; n = 64; fields = 3 };
    Telemetry.Cache { level = "L1"; depth = 2; accesses = 10; misses = 3 };
    Telemetry.Span_open { frame = "expand" };
    Telemetry.Span_close { frame = "expand" };
    Telemetry.Mark "checkpoint";
  ]

let test_telemetry_ring () =
  let ring = Telemetry.ring ~capacity:4 in
  let tel = Telemetry.with_sinks [ ring ] in
  check_bool "ring enables the hub" true (Telemetry.enabled tel);
  for i = 0 to 5 do
    Telemetry.emit tel (mark (string_of_int i))
  done;
  let evs = Telemetry.ring_events ring in
  check_int "keeps the most recent [capacity]" 4 (List.length evs);
  Alcotest.(check (list int)) "oldest first" [ 2; 3; 4; 5 ]
    (List.map (fun s -> s.Telemetry.seq) evs);
  (match evs with
  | { Telemetry.ev = Telemetry.Mark "2"; _ } :: _ -> ()
  | _ -> Alcotest.fail "window should start at mark 2");
  Telemetry.clear tel;
  check_int "clear empties the ring" 0 (List.length (Telemetry.ring_events ring));
  Telemetry.emit tel (mark "again");
  (match Telemetry.ring_events ring with
  | [ { Telemetry.seq = 0; _ } ] -> ()
  | _ -> Alcotest.fail "clear should reset the sequence counter");
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Telemetry.ring: capacity must be positive") (fun () ->
      ignore (Telemetry.ring ~capacity:0))

let test_telemetry_disabled () =
  let tel = Telemetry.create () in
  check_bool "no sinks = disabled" false (Telemetry.enabled tel);
  Telemetry.emit tel (mark "dropped");
  Telemetry.attach tel Telemetry.null;
  check_bool "null sink keeps it disabled" false (Telemetry.enabled tel);
  check_bool "with_sinks drops null" false
    (Telemetry.enabled (Telemetry.with_sinks [ Telemetry.null ]));
  let ring = Telemetry.ring ~capacity:8 in
  Telemetry.attach tel ring;
  check_bool "real sink enables" true (Telemetry.enabled tel);
  Telemetry.emit tel (mark "kept");
  (* the event emitted while disabled was never stamped: seq starts at 0 *)
  match Telemetry.ring_events ring with
  | [ { Telemetry.seq = 0; ev = Telemetry.Mark "kept"; _ } ] -> ()
  | _ -> Alcotest.fail "disabled emit should be a complete no-op"

let test_telemetry_clock () =
  let ring = Telemetry.ring ~capacity:8 in
  let tel = Telemetry.with_sinks [ ring ] in
  Alcotest.(check (float 0.0)) "default clock is the sequence number" 0.0
    (Telemetry.now tel);
  Telemetry.emit tel (mark "a");
  Alcotest.(check (float 0.0)) "sequence clock advances" 1.0 (Telemetry.now tel);
  let t = ref 100.0 in
  Telemetry.set_clock tel (fun () -> !t);
  t := 250.0;
  Telemetry.emit tel (mark "b");
  Telemetry.emit tel ~ts:42.0 ~dur:8.0 (mark "c");
  match Telemetry.ring_events ring with
  | [ _; b; c ] ->
      Alcotest.(check (float 0.0)) "clock stamps" 250.0 b.Telemetry.ts;
      Alcotest.(check (float 0.0)) "explicit ts wins" 42.0 c.Telemetry.ts;
      Alcotest.(check (float 0.0)) "duration recorded" 8.0 c.Telemetry.dur
  | _ -> Alcotest.fail "expected three events"

(* Every rendered event — JSONL line and Chrome trace object — must be
   valid JSON with the schema documented in EXPERIMENTS.md.  The
   experiment layer's parser is the independent check. *)
let test_telemetry_json () =
  List.iteri
    (fun i ev ->
      let st = { Telemetry.seq = i; ts = float_of_int i; dur = 1.0; ev } in
      let has fields k = List.mem_assoc k fields in
      (match Vc_exp.Jsonx.parse (Telemetry.jsonl_of_event st) with
      | Ok (Vc_exp.Jsonx.Obj fields) ->
          check_bool "jsonl has seq/ts/dur/name/args" true
            (List.for_all (has fields) [ "seq"; "ts"; "dur"; "name"; "args" ])
      | Ok _ -> Alcotest.fail "jsonl line is not an object"
      | Error m ->
          Alcotest.failf "jsonl unparseable (%s): %s" m
            (Telemetry.jsonl_of_event st));
      match Vc_exp.Jsonx.parse (Telemetry.chrome_of_event st) with
      | Ok (Vc_exp.Jsonx.Obj fields) ->
          check_bool "chrome event has ph/ts/name" true
            (List.for_all (has fields) [ "ph"; "ts"; "name" ])
      | Ok _ -> Alcotest.fail "chrome event is not an object"
      | Error m ->
          Alcotest.failf "chrome event unparseable (%s): %s" m
            (Telemetry.chrome_of_event st))
    sample_events

let test_telemetry_chrome_sink () =
  let path = Filename.temp_file "vc-trace" ".json" in
  let oc = open_out path in
  let tel = Telemetry.with_sinks [ Telemetry.chrome_sink oc ] in
  List.iter (Telemetry.emit tel) sample_events;
  Telemetry.flush tel;
  Telemetry.flush tel (* idempotent: the array is finalized exactly once *);
  close_out oc;
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Vc_exp.Jsonx.parse contents with
  | Ok (Vc_exp.Jsonx.List evs) ->
      check_int "one trace event per emitted event" (List.length sample_events)
        (List.length evs);
      List.iter
        (function
          | Vc_exp.Jsonx.Obj fields ->
              check_bool "ph present" true (List.mem_assoc "ph" fields)
          | _ -> Alcotest.fail "trace event is not an object")
        evs
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON array"
  | Error m -> Alcotest.failf "chrome trace unparseable: %s" m

let test_telemetry_trace_sink () =
  let tr = Trace.create () in
  let tel = Telemetry.with_sinks [ Telemetry.trace_sink tr ] in
  List.iter (Telemetry.emit tel) sample_events;
  check_int "only Level events land in the trace" 1 (Array.length (Trace.events tr));
  let e = (Trace.events tr).(0) in
  check_bool "payload preserved" true
    (e.Trace.phase = Trace.Bfs && e.Trace.depth = 0 && e.Trace.size = 1
   && e.Trace.base = 0);
  Telemetry.clear tel;
  check_int "clear clears the adapted trace" 0 (Array.length (Trace.events tr))

let test_telemetry_occupancy () =
  Alcotest.(check (float 1e-12)) "full width" 1.0
    (Telemetry.occupancy ~width:8 ~size:8);
  Alcotest.(check (float 1e-12)) "9 tasks pad to 2 vectors" (9.0 /. 16.0)
    (Telemetry.occupancy ~width:8 ~size:9);
  Alcotest.(check (float 1e-12)) "empty level" 0.0
    (Telemetry.occupancy ~width:8 ~size:0);
  Alcotest.(check (float 1e-12)) "degenerate width" 0.0
    (Telemetry.occupancy ~width:0 ~size:5)

(* End-to-end: the engine's event stream is consistent with its report,
   and attaching telemetry does not perturb the model. *)
let test_engine_telemetry () =
  let spec = Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 7 } in
  let strategy = Policy.Hybrid { max_block = 32; reexpand = true } in
  let plain = Engine.run ~spec ~machine:e5 ~strategy () in
  let ring = Telemetry.ring ~capacity:65536 in
  let tel = Telemetry.with_sinks [ ring ] in
  let r = Engine.run ~telemetry:tel ~spec ~machine:e5 ~strategy () in
  check_bool "telemetry does not perturb the model" true (Report.equal plain r);
  let evs = Telemetry.ring_events ring in
  check_bool "events captured" true (evs <> []);
  let by p = List.filter (fun s -> p s.Telemetry.ev) evs in
  (* Level slices partition the executed tasks, like the legacy trace *)
  check_int "level sizes sum to tasks" r.Report.tasks
    (List.fold_left
       (fun acc s ->
         match s.Telemetry.ev with
         | Telemetry.Level { size; _ } -> acc + size
         | _ -> acc)
       0
       (Telemetry.levels evs));
  check_bool "a bfs->blocked switch was recorded" true
    (by (function Telemetry.Switch _ -> true | _ -> false) <> []);
  check_int "one Reexpand event per reported re-expansion" r.Report.reexp_count
    (List.length (by (function Telemetry.Reexpand _ -> true | _ -> false)));
  (* compaction pass totals agree with the report counter *)
  check_int "compaction passes match the report" r.Report.compaction_passes
    (List.fold_left
       (fun acc s ->
         match s.Telemetry.ev with
         | Telemetry.Compaction { passes; _ } -> acc + passes
         | _ -> acc)
       0 evs);
  check_bool "cache deltas recorded" true
    (by (function Telemetry.Cache _ -> true | _ -> false) <> []);
  (* timestamps are modeled cycles: monotone per emission order, bounded
     by the report's total *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Telemetry.ts <= b.Telemetry.ts +. 1e-9 && monotone rest
    | _ -> true
  in
  check_bool "timestamps ride the modeled clock" true
    (monotone (Telemetry.levels evs));
  List.iter
    (fun s ->
      check_bool "event times within the modeled run" true
        (s.Telemetry.ts >= 0.0 && s.Telemetry.ts <= r.Report.cycles +. 1.0))
    evs

(* A stream sink whose channel breaks surfaces one typed telemetry error,
   is dropped, and never starves the other sinks. *)
let test_telemetry_sink_failure () =
  let path = Filename.temp_file "vc-dead-sink" ".jsonl" in
  let oc = open_out path in
  let ring = Telemetry.ring ~capacity:8 in
  (* ring first: it must receive every event even when the jsonl sink
     dies mid-fanout *)
  let tel = Telemetry.with_sinks [ ring; Telemetry.jsonl_sink oc ] in
  Telemetry.emit tel (mark "ok");
  close_out oc;
  (match Telemetry.emit tel (mark "boom") with
  | () -> Alcotest.fail "write to a closed channel should raise a typed error"
  | exception Vc_error.Error e ->
      check_bool "site is telemetry" true
        (Vc_error.site_of e = Some Vc_error.Telemetry);
      check_bool "hinted discard" true
        (Vc_error.hint_of e = Some Vc_error.Discard_entry);
      check_int "exit code 1" 1 (Vc_error.exit_code e));
  (* the sink is dead now: emits and flushes are clean no-ops for it *)
  Telemetry.emit tel (mark "after");
  Telemetry.flush tel;
  Sys.remove path;
  Alcotest.(check (list string)) "ring saw every event despite the dead sink"
    [ "ok"; "boom"; "after" ]
    (List.filter_map
       (fun s ->
         match s.Telemetry.ev with Telemetry.Mark m -> Some m | _ -> None)
       (Telemetry.ring_events ring))

(* ------------------------------------------------------------------ *)
(* Profile: cycle attribution over spans                               *)

let run_profiled ?cutoff ?faults ?(warm = false) ~spec strategy =
  let tel = Telemetry.create () in
  let prof = Profile.create () in
  Profile.attach prof tel;
  let r =
    Engine.run ?cutoff ?faults ~warm ~telemetry:tel ~spec ~machine:e5 ~strategy ()
  in
  (prof, r)

let profile_paths prof = List.map (fun f -> f.Profile.stack) (Profile.frames prof)

(* The acceptance criterion: attributed cycles reconcile EXACTLY — float
   equality, no epsilon — with the report's modeled cycles.  All ISA
   costs and miss penalties are multiples of 0.5, so clock readings,
   span deltas and their sums are exact doubles and must telescope to
   the total. *)
let test_profile_reconciles_exactly () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 16 } in
  let prof, r =
    run_profiled ~spec (Policy.Hybrid { max_block = 64; reexpand = true })
  in
  Alcotest.(check (float 0.0)) "attributed total == Report.cycles (bit-exact)"
    r.Report.cycles (Profile.total_cycles prof);
  check_int "all spans balanced" 0 (Profile.unbalanced prof);
  let paths = profile_paths prof in
  check_bool "root frame" true (List.mem [ "fib" ] paths);
  check_bool "expand phase" true (List.mem [ "fib"; "expand" ] paths);
  check_bool "blocked phase" true (List.mem [ "fib"; "blocked" ] paths);
  check_bool "compaction attributed under a phase" true
    (List.mem [ "fib"; "expand"; "compact" ] paths
    || List.mem [ "fib"; "blocked"; "compact" ] paths);
  check_bool "spawn sites attributed" true
    (List.mem [ "fib"; "expand"; "spawn:site0" ] paths
    || List.mem [ "fib"; "blocked"; "spawn:site0" ] paths);
  check_bool "no untracked time" true
    (List.for_all
       (fun f -> f.Profile.stack <> [ "(untracked)" ] || f.Profile.cycles = 0.0)
       (Profile.frames prof))

(* Folded-stack output is the export consumers sum: parsing it back and
   summing the count column must reconcile exactly too (cycle counts are
   printed losslessly; float addition of exact half-integers is exact in
   any order). *)
let test_profile_folded_reconciles () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 16 } in
  let prof, r =
    run_profiled ~spec (Policy.Hybrid { max_block = 64; reexpand = true })
  in
  let lines =
    String.split_on_char '\n' (Profile.folded prof)
    |> List.filter (fun l -> l <> "")
  in
  check_bool "folded output is non-empty" true (lines <> []);
  let sum =
    List.fold_left
      (fun acc line ->
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "malformed folded line: %s" line
        | Some i ->
            let stack = String.sub line 0 i in
            check_bool "path rooted at the benchmark" true
              (String.length stack >= 3 && String.sub stack 0 3 = "fib");
            acc
            +. float_of_string
                 (String.sub line (i + 1) (String.length line - i - 1)))
      0.0 lines
  in
  Alcotest.(check (float 0.0)) "folded column sums to Report.cycles"
    r.Report.cycles sum

(* The engine's warm pass clears the hub between passes; the profiler
   must reset with it or measured totals would double-count. *)
let test_profile_warm_run_resets () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 14 } in
  let prof, r =
    run_profiled ~warm:true ~spec (Policy.Hybrid { max_block = 32; reexpand = true })
  in
  Alcotest.(check (float 0.0)) "only the measured pass is attributed"
    r.Report.cycles (Profile.total_cycles prof);
  check_int "balanced after reset" 0 (Profile.unbalanced prof)

(* Cutoff and fault-recovery work lands in dedicated frames, and the
   reconciliation invariant survives both. *)
let test_profile_cutoff_and_fallback_frames () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 14 } in
  let prof, r =
    run_profiled ~cutoff:64 ~spec (Policy.Hybrid { max_block = 16; reexpand = true })
  in
  Alcotest.(check (float 0.0)) "cutoff run reconciles" r.Report.cycles
    (Profile.total_cycles prof);
  check_bool "cutoff frame present" true
    (List.exists (List.mem "cutoff") (profile_paths prof));
  let plan = Fault.make ~rate:1.0 ~seed:7 ~sites:[ Fault.Compact ] () in
  let prof, r =
    run_profiled ~faults:plan ~spec
      (Policy.Hybrid { max_block = 16; reexpand = true })
  in
  Alcotest.(check (float 0.0)) "faulted run reconciles" r.Report.cycles
    (Profile.total_cycles prof);
  check_bool "fallback frame present" true
    (List.exists (List.mem "fallback") (profile_paths prof));
  check_bool "faults counted on their frame" true
    (List.exists (fun f -> f.Profile.faults > 0) (Profile.frames prof))

(* Hand-fed streams: unbalanced closes are tolerated and counted, and
   compaction/convert counters land on the innermost open frame. *)
let test_profile_unbalanced_and_counters () =
  let prof = Profile.create () in
  let feed i ev = Profile.observe prof { Telemetry.seq = i; ts = float_of_int i; dur = 0.0; ev } in
  feed 0 (Telemetry.Span_open { frame = "a" });
  feed 1 (Telemetry.Span_open { frame = "b" });
  feed 2 (Telemetry.Compaction { engine = "shuffle"; width = 8; n = 32; passes = 3 });
  feed 3 (Telemetry.Convert { to_soa = true; n = 8; fields = 2 });
  (* closes "a" through the still-open "b" *)
  feed 4 (Telemetry.Span_close { frame = "a" });
  (* stray close with nothing open *)
  feed 5 (Telemetry.Span_close { frame = "zzz" });
  check_int "two unbalanced boundaries" 2 (Profile.unbalanced prof);
  let frames = Profile.frames prof in
  let node path = List.find (fun f -> f.Profile.stack = path) frames in
  check_int "compaction calls on a;b" 1 (node [ "a"; "b" ]).Profile.compaction_calls;
  check_int "compaction passes on a;b" 3
    (node [ "a"; "b" ]).Profile.compaction_passes;
  check_int "converts on a;b" 1 (node [ "a"; "b" ]).Profile.converts;
  Alcotest.(check (float 0.0)) "a holds [0,1)" 1.0 (node [ "a" ]).Profile.cycles;
  Alcotest.(check (float 0.0)) "a;b holds [1,4)" 3.0 (node [ "a"; "b" ]).Profile.cycles;
  Alcotest.(check (float 0.0)) "stray tail is untracked" 1.0
    (node [ "(untracked)" ]).Profile.cycles;
  Alcotest.(check (float 0.0)) "total telescopes" 5.0 (Profile.total_cycles prof);
  (* hotspot table and JSON render without error and carry the total *)
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Profile.pp_hotspots ~top:2 fmt prof;
  Format.pp_print_flush fmt ();
  check_bool "hotspot table mentions total" true
    (let s = Buffer.contents buf in
     let re = "total:" in
     let rec find i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || find (i + 1))
     in
     find 0);
  match Vc_exp.Jsonx.parse (Profile.json_string prof) with
  | Ok (Vc_exp.Jsonx.Obj fields) ->
      check_bool "json has total_cycles + frames" true
        (List.mem_assoc "total_cycles" fields && List.mem_assoc "frames" fields)
  | Ok _ -> Alcotest.fail "profile json is not an object"
  | Error m -> Alcotest.failf "profile json unparseable: %s" m

(* The blocked interpreter emits the same span vocabulary (seq-number
   clock): open/close pairs balance over a full run. *)
let test_profile_blocked_interp_spans () =
  let t = Transform.transform fib_program in
  let tel = Telemetry.create () in
  let prof = Profile.create () in
  Profile.attach prof tel;
  let b = Blocked_interp.run ~telemetry:tel t [ 12 ] in
  check_int "fib 12" 144 (List.assoc "result" b.Blocked_interp.reducers);
  check_int "spans balance" 0 (Profile.unbalanced prof);
  let paths = profile_paths prof in
  check_bool "root method frame" true (List.mem [ "fib" ] paths);
  check_bool "expand frame" true (List.mem [ "fib"; "expand" ] paths)

(* ------------------------------------------------------------------ *)
(* Metrics / Measure / Report                                          *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.tasks_at_level m ~depth:0 ~n:1;
  Metrics.tasks_at_level m ~depth:5 ~n:10;
  Metrics.base_at_level m ~depth:5 ~n:4;
  Metrics.live_threads m 7;
  Metrics.live_threads m 3;
  Metrics.reexpansion m ~depth:5 ~before:2;
  Metrics.reexpansion_growth m ~depth:5 ~factor:3.0;
  Metrics.reexpansion_growth m ~depth:5 ~factor:5.0;
  check_int "total" 11 (Metrics.total_tasks m);
  check_int "base" 4 (Metrics.total_base m);
  check_int "depth" 5 (Metrics.max_depth m);
  check_int "space peak" 7 (Metrics.space_peak m);
  (match Metrics.reexpansions m with
  | [| (5, 1, f) |] -> Alcotest.(check (float 1e-9)) "mean factor" 4.0 f
  | _ -> Alcotest.fail "reexpansions");
  let levels = Metrics.levels m in
  check_int "levels len" 6 (Array.length levels);
  check_bool "level 5" true (levels.(5) = (10, 4))

(* Read APIs on a freshly created (empty) collector: everything is
   well-defined, and returned arrays are copies/fresh. *)
let test_metrics_read_empty () =
  let m = Metrics.create () in
  check_int "no tasks" 0 (Metrics.total_tasks m);
  check_int "space peak" 0 (Metrics.space_peak m);
  check_int "no reexpansions" 0 (Array.length (Metrics.reexpansions m));
  check_int "reexpansion total" 0 (Metrics.reexpansion_total m);
  (match Metrics.levels m with
  | [| (0, 0) |] -> ()
  | l -> Alcotest.failf "empty levels should be [|(0,0)|], got %d rows" (Array.length l));
  let hist = Metrics.occupancy_hist m in
  check_int "10 occupancy buckets" 10 (Array.length hist);
  check_bool "all buckets empty" true (Array.for_all (( = ) 0) hist);
  hist.(0) <- 42;
  check_bool "occupancy_hist returns a copy" true
    (Array.for_all (( = ) 0) (Metrics.occupancy_hist m))

(* Read APIs after a single level, plus occupancy_sample's non-positive
   input guard. *)
let test_metrics_read_single_level () =
  let m = Metrics.create () in
  Metrics.tasks_at_level m ~depth:0 ~n:5;
  Metrics.base_at_level m ~depth:0 ~n:2;
  Metrics.live_threads m 5;
  Metrics.occupancy_sample m ~n:5 ~width:8;
  (match Metrics.levels m with
  | [| (5, 2) |] -> ()
  | _ -> Alcotest.fail "single-level levels");
  check_int "space peak tracks the level" 5 (Metrics.space_peak m);
  check_int "no reexpansions recorded" 0 (Array.length (Metrics.reexpansions m));
  check_int "reexpansion total" 0 (Metrics.reexpansion_total m);
  (* occupancy 5/8 = 0.625 lands in bucket 6 *)
  let hist = Metrics.occupancy_hist m in
  check_int "bucket 6" 1 hist.(6);
  check_int "one sample total" 1 (Array.fold_left ( + ) 0 hist);
  (* non-positive inputs are guarded: no bucket moves, nothing raises *)
  Metrics.occupancy_sample m ~n:0 ~width:8;
  Metrics.occupancy_sample m ~n:(-3) ~width:8;
  Metrics.occupancy_sample m ~n:5 ~width:0;
  Metrics.occupancy_sample m ~n:5 ~width:(-1);
  check_int "guarded samples ignored" 1
    (Array.fold_left ( + ) 0 (Metrics.occupancy_hist m));
  (* full occupancy lands in the top bucket *)
  Metrics.occupancy_sample m ~n:8 ~width:8;
  check_int "bucket 9" 1 (Metrics.occupancy_hist m).(9)

let test_report_speedup () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 10 } in
  let seq = Seq_exec.run ~spec ~machine:e5 () in
  Alcotest.(check (float 1e-9)) "self speedup" 1.0 (Report.speedup ~baseline:seq seq);
  let oom = Report.oom_placeholder ~benchmark:"x" ~machine:"e5" ~strategy:"bfs" in
  Alcotest.(check (float 1e-9)) "oom speedup" 0.0 (Report.speedup ~baseline:seq oom);
  check_int "reducer lookup" (Vc_bench.Fib.reference { Vc_bench.Fib.n = 10 })
    (Report.reducer seq "result")

(* ------------------------------------------------------------------ *)
(* Supervised execution                                                *)

let hybrid8 = Policy.Hybrid { max_block = 8; reexpand = true }

let test_supervisor_recovers () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 12 } in
  let reference = Engine.run ~spec ~machine:e5 ~strategy:hybrid8 () in
  let plan = Fault.make ~rate:1.0 ~seed:7 ~sites:[ Fault.Compact; Fault.Alloc ] () in
  match Supervisor.run ~faults:plan ~spec ~machine:e5 ~strategy:hybrid8 () with
  | Error e -> Alcotest.failf "no recovery: %s" (Vc_error.to_string e)
  | Ok o ->
      check_bool "reducers equal" true
        (o.Supervisor.report.Report.reducers = reference.Report.reducers);
      check_int "tasks equal" reference.Report.tasks o.Supervisor.report.Report.tasks;
      check_int "base tasks equal" reference.Report.base_tasks
        o.Supervisor.report.Report.base_tasks;
      check_bool "faults were injected" true (o.Supervisor.faults_seen > 0);
      check_bool "scalar fallback fired" true (o.Supervisor.fallbacks > 0)

let test_supervisor_no_recover () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 12 } in
  let plan = Fault.make ~rate:1.0 ~seed:7 ~sites:[ Fault.Alloc ] () in
  match
    Supervisor.run ~faults:plan ~recover:false ~spec ~machine:e5 ~strategy:hybrid8 ()
  with
  | Ok _ -> Alcotest.fail "recover:false still recovered"
  | Error e ->
      check_bool "typed fault" true
        (match e.Vc_error.kind with Vc_error.Fault _ -> true | _ -> false);
      check_int "exit code 1" 1 (Vc_error.exit_code e)

let test_supervisor_deadline () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 18 } in
  match
    Supervisor.run
      ~budgets:(Supervisor.budgets ~deadline:100.0 ())
      ~spec ~machine:e5 ~strategy:hybrid8 ()
  with
  | Ok _ -> Alcotest.fail "deadline did not fire"
  | Error e ->
      check_bool "budget error" true (Vc_error.is_budget e);
      check_int "exit code 2" 2 (Vc_error.exit_code e)

let test_supervisor_live_frames () =
  let spec = Vc_bench.Fib.spec { Vc_bench.Fib.n = 18 } in
  match
    Supervisor.run
      ~budgets:(Supervisor.budgets ~max_live_frames:4 ())
      ~spec ~machine:e5 ~strategy:hybrid8 ()
  with
  | Ok _ -> Alcotest.fail "live-frame budget did not fire"
  | Error e ->
      check_bool "budget error" true (Vc_error.is_budget e);
      check_int "exit code 2" 2 (Vc_error.exit_code e)

let test_soa_fault_fallback () =
  let vm = Vc_simd.Vm.create Vc_simd.Isa.sse42 in
  let addr = Addr.create () in
  let s = Schema.create ~lane_kind:Vc_simd.Lane.I32 [ "x"; "y" ] in
  let frames = Array.init 33 (fun i -> [| i; i * 7 |]) in
  let plan = Fault.make ~rate:1.0 ~seed:5 ~sites:[ Fault.Convert ] () in
  let tel = Telemetry.create () in
  let events = ref [] in
  Telemetry.attach tel (Telemetry.callback_sink (fun st -> events := st :: !events));
  let blk =
    Soa.aos_to_soa ~telemetry:tel ~faults:plan ~vm ~addr ~schema:s
      ~isa:Vc_simd.Isa.sse42 ~aos_base:0x100000 ~frames ()
  in
  let back = Soa.soa_to_aos ~telemetry:tel ~faults:plan ~vm ~aos_base:0x100000 blk in
  check_bool "scalar fallback is the identity" true (back = frames);
  check_int "both conversions faulted" 2 (Fault.total_fired plan);
  let count p = List.length (List.filter p !events) in
  check_int "fault events" 2
    (count (fun st ->
         match st.Telemetry.ev with Telemetry.Fault _ -> true | _ -> false));
  check_int "fallback events" 2
    (count (fun st ->
         match st.Telemetry.ev with Telemetry.Fallback _ -> true | _ -> false))

let test_blocked_interp_budget () =
  let t = Transform.transform fib_program in
  (match
     Supervisor.run_blocked
       ~budgets:(Supervisor.budgets ~max_live_frames:2 ())
       t [ 12 ]
   with
  | Ok _ -> Alcotest.fail "live-frame budget did not fire"
  | Error e ->
      check_bool "budget error" true (Vc_error.is_budget e);
      check_int "exit code 2" 2 (Vc_error.exit_code e));
  match Supervisor.run_blocked t [ 10 ] with
  | Ok b -> check_int "fib 10" 55 (List.assoc "result" b.Blocked_interp.reducers)
  | Error e -> Alcotest.failf "unbudgeted run failed: %s" (Vc_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Latency histogram                                                   *)

module H = Metrics.Histogram

let test_histogram_buckets () =
  let h = H.create ~shards:1 ~buckets:4 ~lo:1.0 ~hi:1000.0 () in
  check_int "below lo lands in bucket 0" 0 (H.bucket_index h 0.5);
  check_int "lo lands in bucket 0" 0 (H.bucket_index h 1.0);
  check_int "hi lands in the last finite bucket" 3 (H.bucket_index h 1000.0);
  check_int "above hi overflows" 4 (H.bucket_index h 1000.1);
  Alcotest.(check (float 1e-9)) "last finite bound is exactly hi" 1000.0
    (H.bounds h).(3);
  Alcotest.(check (float 0.0)) "empty quantile is 0" 0.0 (H.quantile h 0.5);
  List.iter (H.add h) [ 0.2; 2.0; 30.0; 400.0; 5000.0 ];
  check_int "exact count" 5 (H.count h);
  Alcotest.(check (float 1e-9)) "exact sum" 5432.2 (H.sum h);
  Alcotest.(check (float 0.0)) "exact max" 5000.0 (H.max_value h);
  check_int "overflow counted" 1 (H.counts h).(4);
  let le, cum = (H.cumulative h).(4) in
  Alcotest.(check bool) "cumulative ends at +inf" true (le = infinity);
  check_int "cumulative ends at total" 5 cum;
  Alcotest.(check (float 0.0)) "overflow quantile is the exact max" 5000.0
    (H.quantile h 1.0);
  (* layout mismatches refuse to merge *)
  let other = H.create ~shards:1 ~buckets:8 ~lo:1.0 ~hi:1000.0 () in
  (match H.merge h other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "layout mismatch must not merge");
  (* the JSON rendering carries the exact counts *)
  let js = H.to_json_string h in
  check_bool "json has count" true
    (let needle = "\"count\":5" in
     let nl = String.length needle and ll = String.length js in
     let rec go i =
       i + nl <= ll && (String.sub js i nl = needle || go (i + 1))
     in
     go 0)

(* every sample list used by the properties: positive, spanning below lo
   through past hi so the overflow path is exercised *)
let arb_samples =
  QCheck.(list_of_size Gen.(int_range 1 300) (float_range 0.01 90000.0))

let hist_layout () = H.create ~shards:1 ~buckets:16 ~lo:0.05 ~hi:60000.0 ()

let hist_of samples =
  let h = hist_layout () in
  List.iter (H.add h) samples;
  h

let quantile_oracle_agree_random =
  QCheck.Test.make ~name:"histogram quantile = sorted oracle's bucket"
    ~count:200 arb_samples (fun samples ->
      let h = hist_of samples in
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
          let exact = List.nth sorted (rank - 1) in
          H.bucket_index h (H.quantile h q) = H.bucket_index h exact)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ])

let quantile_monotone_random =
  QCheck.Test.make ~name:"histogram quantiles are monotone in q" ~count:200
    arb_samples (fun samples ->
      let h = hist_of samples in
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999; 1.0 ] in
      let vs = List.map (H.quantile h) qs in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a <= b && ascending rest
        | _ -> true
      in
      ascending vs)

let merge_commutes_random =
  QCheck.Test.make ~name:"histogram merge commutes" ~count:200
    QCheck.(pair arb_samples arb_samples)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      let ab = H.merge a b and ba = H.merge b a in
      H.counts ab = H.counts ba
      && H.count ab = H.count ba
      && abs_float (H.sum ab -. H.sum ba) < 1e-9
      && H.max_value ab = H.max_value ba)

let merge_associates_random =
  QCheck.Test.make ~name:"histogram merge associates" ~count:200
    QCheck.(triple arb_samples arb_samples arb_samples)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      let l = H.merge (H.merge a b) c and r = H.merge a (H.merge b c) in
      H.counts l = H.counts r
      && H.count l = H.count r
      && abs_float (H.sum l -. H.sum r) < 1e-6
      && H.max_value l = H.max_value r)

(* concurrent adds from several domains must lose nothing: the whole
   point of the per-domain shards (and the Reservoir's lock) *)
let test_histogram_concurrent_adds () =
  let h = H.create () in
  let domains = 4 and per_domain = 5_000 in
  let spawn i =
    Domain.spawn (fun () ->
        for k = 1 to per_domain do
          H.add h (float_of_int ((i * per_domain) + k) /. 100.0)
        done)
  in
  List.init domains spawn |> List.iter Domain.join;
  check_int "no sample lost across domains" (domains * per_domain)
    (H.count h);
  let expected_sum =
    let s = ref 0.0 in
    for v = 1 to domains * per_domain do
      s := !s +. (float_of_int v /. 100.0)
    done;
    !s
  in
  Alcotest.(check (float 1e-3)) "sum is exact across domains" expected_sum
    (H.sum h);
  check_int "counts table agrees with count" (domains * per_domain)
    (Array.fold_left ( + ) 0 (H.counts h))

let test_reservoir_concurrent_adds () =
  let r = Metrics.Reservoir.create ~capacity:1024 in
  let domains = 4 and per_domain = 2_000 in
  List.init domains (fun _ ->
      Domain.spawn (fun () ->
          for k = 1 to per_domain do
            Metrics.Reservoir.add r (float_of_int k)
          done))
  |> List.iter Domain.join;
  check_int "lifetime count survives concurrent adds" (domains * per_domain)
    (Metrics.Reservoir.count r);
  Alcotest.(check (float 0.0)) "lifetime max survives concurrent adds"
    (float_of_int per_domain)
    (Metrics.Reservoir.max_value r)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vc_core"
    [
      ( "data",
        [
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "addr" `Quick test_addr;
          Alcotest.test_case "block" `Quick test_block;
          Alcotest.test_case "block growth" `Quick test_block_growth;
          Alcotest.test_case "copy row" `Quick test_block_copy_row;
          Alcotest.test_case "soa roundtrip" `Quick test_soa_roundtrip;
        ] );
      ("policy", [ Alcotest.test_case "thresholds" `Quick test_policy ]);
      ( "transform",
        [
          Alcotest.test_case "rewrite rules" `Quick test_rewrite_rules;
          Alcotest.test_case "fib transform" `Quick test_transform_fib;
          Alcotest.test_case "rejects invalid" `Quick test_transform_rejects_invalid;
        ] );
      ( "blocked-interp",
        [
          Alcotest.test_case "fib equivalence" `Quick test_blocked_interp_fib;
          Alcotest.test_case "strategy switches" `Quick test_blocked_interp_switches;
          Alcotest.test_case "task limit" `Quick test_blocked_interp_task_limit;
        ]
        @ qsuite [ blocked_interp_equiv_random ] );
      ( "compile",
        [ Alcotest.test_case "fib spec equivalence" `Quick test_compile_fib_spec ]
        @ qsuite [ compile_equiv_random ] );
      ( "engine",
        [
          Alcotest.test_case "matches sequential on all benchmarks" `Quick
            test_engine_matches_seq_all_benchmarks;
          Alcotest.test_case "compaction engines agree" `Quick
            test_engine_compaction_engines_agree;
          Alcotest.test_case "OOM on bfs-only" `Quick test_engine_oom;
          Alcotest.test_case "utilization grows with block" `Quick
            test_engine_utilization_grows_with_block;
          Alcotest.test_case "re-expansion raises utilization" `Quick
            test_engine_reexpansion_raises_utilization;
          Alcotest.test_case "seq task limit" `Quick test_seq_exec_task_limit;
          Alcotest.test_case "task cut-off" `Quick test_engine_cutoff;
          Alcotest.test_case "warm cache" `Quick test_engine_warm_cache;
          Alcotest.test_case "trace timeline" `Quick test_engine_trace;
          Alcotest.test_case "strawman" `Quick test_strawman;
          Alcotest.test_case "strawman task limit is a typed budget" `Quick
            test_strawman_task_budget;
        ] );
      ( "multicore",
        [
          Alcotest.test_case "exact results" `Quick test_multicore_exact_results;
          Alcotest.test_case "scaling" `Quick test_multicore_scales;
          Alcotest.test_case "errors" `Quick test_multicore_errors;
          Alcotest.test_case "job OOM is a typed memory budget" `Quick
            test_multicore_oom_budget;
          Alcotest.test_case "ws-sim single worker" `Quick test_ws_sim_single_worker;
          Alcotest.test_case "ws-sim balances" `Quick test_ws_sim_balances;
          Alcotest.test_case "ws-sim deterministic" `Quick test_ws_sim_deterministic;
          Alcotest.test_case "multicore + work stealing" `Quick
            test_multicore_work_stealing_schedule;
        ]
        @ qsuite [ ws_sim_bounds ] );
      ("opportunity", [ Alcotest.test_case "table 3 row" `Quick test_opportunity ]);
      ( "telemetry",
        [
          Alcotest.test_case "ring buffer window" `Quick test_telemetry_ring;
          Alcotest.test_case "disabled hub is a no-op" `Quick
            test_telemetry_disabled;
          Alcotest.test_case "clock and explicit stamps" `Quick
            test_telemetry_clock;
          Alcotest.test_case "jsonl + chrome rendering is valid JSON" `Quick
            test_telemetry_json;
          Alcotest.test_case "chrome sink finalizes one array" `Quick
            test_telemetry_chrome_sink;
          Alcotest.test_case "trace sink adapter" `Quick test_telemetry_trace_sink;
          Alcotest.test_case "occupancy" `Quick test_telemetry_occupancy;
          Alcotest.test_case "engine event stream matches report" `Quick
            test_engine_telemetry;
          Alcotest.test_case "dead sink is dropped with a typed error" `Quick
            test_telemetry_sink_failure;
        ] );
      ( "profile",
        [
          Alcotest.test_case "attribution reconciles exactly with the report"
            `Quick test_profile_reconciles_exactly;
          Alcotest.test_case "folded stacks sum back to the report" `Quick
            test_profile_folded_reconciles;
          Alcotest.test_case "warm pass resets attribution" `Quick
            test_profile_warm_run_resets;
          Alcotest.test_case "cutoff and fallback frames" `Quick
            test_profile_cutoff_and_fallback_frames;
          Alcotest.test_case "unbalanced spans and counters" `Quick
            test_profile_unbalanced_and_counters;
          Alcotest.test_case "blocked interpreter spans balance" `Quick
            test_profile_blocked_interp_spans;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "collection" `Quick test_metrics;
          Alcotest.test_case "read APIs on an empty run" `Quick
            test_metrics_read_empty;
          Alcotest.test_case "read APIs on a single level" `Quick
            test_metrics_read_single_level;
          Alcotest.test_case "report speedup" `Quick test_report_speedup;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket layout, counts, quantiles" `Quick
            test_histogram_buckets;
          Alcotest.test_case "concurrent adds lose nothing" `Quick
            test_histogram_concurrent_adds;
          Alcotest.test_case "reservoir concurrent adds lose nothing" `Quick
            test_reservoir_concurrent_adds;
        ]
        @ qsuite
            [
              quantile_oracle_agree_random; quantile_monotone_random;
              merge_commutes_random; merge_associates_random;
            ] );
      ( "supervisor",
        [
          Alcotest.test_case "fault recovery is exact" `Quick
            test_supervisor_recovers;
          Alcotest.test_case "recover:false propagates the fault" `Quick
            test_supervisor_no_recover;
          Alcotest.test_case "cycle deadline exits 2" `Quick
            test_supervisor_deadline;
          Alcotest.test_case "live-frame budget exits 2" `Quick
            test_supervisor_live_frames;
          Alcotest.test_case "soa fault falls back to scalar copy" `Quick
            test_soa_fault_fallback;
          Alcotest.test_case "blocked interp budgets" `Quick
            test_blocked_interp_budget;
        ] );
    ]
