(** Committed reproducers: shrunk divergent cases as [.rtp] workloads.

    A reproducer file is ordinary registry input — provenance comments, a
    {!Vc_lang.Spec_block} pinning the inputs and the oracle's reducer
    values, then the program source — so replaying the corpus is just
    {!Vc_bench.Registry.load_dir} plus the differential driver.  The same
    format seeds [test/corpus/] with hand-picked regression programs. *)

val oracle :
  Vc_lang.Ast.program ->
  int list list ->
  ((string * int) list * int, string) result
(** Reference result over a root set: per-reducer combination (by each
    reducer's own operator) of the per-root interpreter runs, plus the
    summed task count.  [Error] carries the interpreter failure. *)

val reproducer_source :
  name:string ->
  provenance:string list ->
  Vc_lang.Ast.program ->
  int list ->
  (string * int) list ->
  string
(** Render a complete [.rtp] file: [provenance] lines as comments, the
    spec block ([input] + [expect] at both scales, since a shrunk case is
    already minimal), and the pretty-printed program. *)

val write :
  dir:string ->
  name:string ->
  provenance:string list ->
  Vc_lang.Ast.program ->
  int list ->
  (string, Vc_core.Vc_error.t) result
(** Compute the oracle expectation, render, and write [dir/name.rtp]
    (creating [dir] if needed).  Returns the path.  The written file must
    itself load — {!Vc_bench.Registry.load_file} is re-run on it as a
    self-check before reporting success. *)

val replay :
  quick:bool -> Vc_bench.Registry.loaded -> (int, string) result
(** Replay one loaded workload at the given scale: oracle vs the spec
    block's pinned values, then cost-model engine, blocked backend, and
    compiled backend against the oracle (six-field equality between the
    two wall-clock backends).  Returns the number of comparisons made. *)
