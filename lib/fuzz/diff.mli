(** The differential driver: one generated program through every engine.

    The oracle is the sequential {!Vc_lang.Interp}; the candidates are
    the cost-model {!Vc_core.Engine} (three strategies), the blocked and
    compiled wall-clock {!Vc_core.Backend}s (six-field report equality
    between them), the hybrid {!Vc_core.Domain_sched} at domains {1, 4},
    and fault-armed {!Vc_core.Supervisor} recovery on both the engine and
    the compiled backend.  Any mismatch is a {!outcome.Diverge}; runs the
    oracle itself cannot complete (runtime error, task budget) are
    {!outcome.Skip}ped, as are OOM/budget candidates.

    [plant] arms a deliberate mutation of the program fed to the {e
    compiled} backend only — the mutation smoke test that proves the
    harness can catch and shrink a codegen bug:
    - {!Shl_trunc} re-creates the historical shift-count truncation
      peephole ([count land 62]): every shift count is masked even, so
      odd and saturating counts diverge;
    - {!Spawn_skew} deepens every spawn's ranking decrement by one, so
      task counts diverge on trees of depth >= 2 — its minimal
      reproducer is a 7-node program, which the shrinker must reach. *)

type plant = Shl_trunc | Spawn_skew

val plant_name : plant -> string
val plant_of_string : string -> plant option

val mutate : plant -> Vc_lang.Ast.program -> Vc_lang.Ast.program
(** The planted bug as a source-to-source mutation (still valid and
    terminating). *)

type outcome =
  | Agree of { checks : int }  (** comparisons performed *)
  | Diverge of { stage : string; detail : string }
  | Skip of string  (** oracle could not run this case *)

val check :
  ?plant:plant ->
  ?domains:int list ->
  ?fault_seeds:int list ->
  ?max_tasks:int ->
  Vc_lang.Ast.program ->
  int list ->
  outcome
(** Defaults: no plant, domains [[1; 4]], fault seeds [[1]], oracle task
    budget 100k (candidates get 2x). *)

val failing : ?plant:plant -> Vc_lang.Ast.program -> int list -> bool
(** [check] returned [Diverge] — the shrinker's keep-predicate. *)
