open Vc_lang

let valid (p : Ast.program) =
  match Validate.check p with
  | Error _ -> false
  | Ok _ -> (
      Ast.num_spawns p >= 1
      &&
      match Termination.check p with
      | Termination.Terminates _ -> true
      | Termination.Unknown _ -> false)

(* The shrink measure: AST size plus declaration count (so dropping a
   reducer or parameter is progress), then literal magnitude (so Int
   halving is progress at equal size).  Every accepted edit strictly
   decreases it, which bounds the greedy loop. *)

let rec expr_weight = function
  | Ast.Int n -> min (abs n) 1_000_000
  | Ast.Bool _ | Ast.Var _ -> 0
  | Ast.Unop (_, e) -> expr_weight e
  | Ast.Binop (_, a, b) -> expr_weight a + expr_weight b
  | Ast.Call (_, args) -> List.fold_left (fun acc a -> acc + expr_weight a) 0 args

let rec stmt_weight = function
  | Ast.Skip | Ast.Return -> 0
  | Ast.Seq (a, b) -> stmt_weight a + stmt_weight b
  | Ast.Assign (_, e) | Ast.Reduce (_, e) -> expr_weight e
  | Ast.If (c, a, b) -> expr_weight c + stmt_weight a + stmt_weight b
  | Ast.While (c, s) -> expr_weight c + stmt_weight s
  | Ast.Spawn { Ast.spawn_args; _ } ->
      List.fold_left (fun acc a -> acc + expr_weight a) 0 spawn_args

let measure (p : Ast.program) args =
  let m = p.Ast.mth in
  ( Gen.size p + List.length p.Ast.reducers + List.length m.Ast.params,
    expr_weight m.Ast.is_base + stmt_weight m.Ast.base
    + stmt_weight m.Ast.inductive
    + List.fold_left (fun acc v -> acc + min (abs v) 1_000_000) 0 args )

(* ---- candidate edits ---- *)

let rec expr_shrinks (e : Ast.expr) : Ast.expr list =
  let at_root =
    match e with
    | Ast.Int 0 | Ast.Bool _ | Ast.Var _ -> []
    | Ast.Int n ->
        Ast.Int 0 :: (if abs n >= 2 then [ Ast.Int (n / 2) ] else [])
    | Ast.Unop (_, a) -> [ a ]
    | Ast.Binop (_, a, b) -> [ a; b ]
    | Ast.Call (_, args) -> args
  in
  let inner =
    match e with
    | Ast.Int _ | Ast.Bool _ | Ast.Var _ -> []
    | Ast.Unop (op, a) -> List.map (fun a' -> Ast.Unop (op, a')) (expr_shrinks a)
    | Ast.Binop (op, a, b) ->
        List.map (fun a' -> Ast.Binop (op, a', b)) (expr_shrinks a)
        @ List.map (fun b' -> Ast.Binop (op, a, b')) (expr_shrinks b)
    | Ast.Call (f, args) ->
        List.concat
          (List.mapi
             (fun i a ->
               List.map
                 (fun a' ->
                   Ast.Call (f, List.mapi (fun j b -> if i = j then a' else b) args))
                 (expr_shrinks a))
             args)
  in
  at_root @ inner

let rec stmt_shrinks (s : Ast.stmt) : Ast.stmt list =
  let at_root =
    match s with
    | Ast.Skip -> []
    | Ast.Return | Ast.Assign _ | Ast.Reduce _ | Ast.Spawn _ -> [ Ast.Skip ]
    | Ast.Seq (a, b) -> [ a; b ]
    | Ast.If (_, a, b) -> [ a; b ]
    | Ast.While (_, body) -> [ body; Ast.Skip ]
  in
  let inner =
    match s with
    | Ast.Skip | Ast.Return -> []
    | Ast.Seq (a, b) ->
        List.map (fun a' -> Ast.Seq (a', b)) (stmt_shrinks a)
        @ List.map (fun b' -> Ast.Seq (a, b')) (stmt_shrinks b)
    | Ast.If (c, a, b) ->
        List.map (fun c' -> Ast.If (c', a, b)) (expr_shrinks c)
        @ List.map (fun a' -> Ast.If (c, a', b)) (stmt_shrinks a)
        @ List.map (fun b' -> Ast.If (c, a, b')) (stmt_shrinks b)
    | Ast.While (c, body) ->
        List.map (fun c' -> Ast.While (c', body)) (expr_shrinks c)
        @ List.map (fun b' -> Ast.While (c, b')) (stmt_shrinks body)
    | Ast.Assign (x, e) -> List.map (fun e' -> Ast.Assign (x, e')) (expr_shrinks e)
    | Ast.Reduce (x, e) -> List.map (fun e' -> Ast.Reduce (x, e')) (expr_shrinks e)
    | Ast.Spawn sp ->
        List.concat
          (List.mapi
             (fun i a ->
               List.map
                 (fun a' ->
                   Ast.Spawn
                     {
                       sp with
                       Ast.spawn_args =
                         List.mapi
                           (fun j b -> if i = j then a' else b)
                           sp.Ast.spawn_args;
                     })
                 (expr_shrinks a))
             sp.Ast.spawn_args)
  in
  at_root @ inner

(* variable-usage scan; [skip_arg] ignores one spawn-argument position
   (the one a parameter drop would delete) *)
let rec expr_uses name = function
  | Ast.Var v -> v = name
  | Ast.Int _ | Ast.Bool _ -> false
  | Ast.Unop (_, e) -> expr_uses name e
  | Ast.Binop (_, a, b) -> expr_uses name a || expr_uses name b
  | Ast.Call (_, args) -> List.exists (expr_uses name) args

let rec stmt_uses ?skip_arg name = function
  | Ast.Skip | Ast.Return -> false
  | Ast.Seq (a, b) -> stmt_uses ?skip_arg name a || stmt_uses ?skip_arg name b
  | Ast.Assign (_, e) | Ast.Reduce (_, e) -> expr_uses name e
  | Ast.If (c, a, b) ->
      expr_uses name c || stmt_uses ?skip_arg name a || stmt_uses ?skip_arg name b
  | Ast.While (c, s) -> expr_uses name c || stmt_uses ?skip_arg name s
  | Ast.Spawn { Ast.spawn_args; _ } ->
      List.exists
        (fun (i, a) ->
          (match skip_arg with Some j -> i <> j | None -> true)
          && expr_uses name a)
        (List.mapi (fun i a -> (i, a)) spawn_args)

let rec drop_spawn_arg j = function
  | (Ast.Skip | Ast.Return | Ast.Assign _ | Ast.Reduce _) as s -> s
  | Ast.Seq (a, b) -> Ast.Seq (drop_spawn_arg j a, drop_spawn_arg j b)
  | Ast.If (c, a, b) -> Ast.If (c, drop_spawn_arg j a, drop_spawn_arg j b)
  | Ast.While (c, s) -> Ast.While (c, drop_spawn_arg j s)
  | Ast.Spawn sp ->
      Ast.Spawn
        {
          sp with
          Ast.spawn_args = List.filteri (fun i _ -> i <> j) sp.Ast.spawn_args;
        }

let rec reduces_to name = function
  | Ast.Skip | Ast.Return | Ast.Assign _ | Ast.Spawn _ -> false
  | Ast.Seq (a, b) | Ast.If (_, a, b) -> reduces_to name a || reduces_to name b
  | Ast.While (_, s) -> reduces_to name s
  | Ast.Reduce (r, _) -> r = name

let rebuild (p : Ast.program) ?is_base ?base ?inductive () =
  let m = p.Ast.mth in
  let is_base = Option.value is_base ~default:m.Ast.is_base in
  let base = Gen.normalize (Option.value base ~default:m.Ast.base) in
  let inductive =
    Gen.renumber (Gen.normalize (Option.value inductive ~default:m.Ast.inductive))
  in
  { p with Ast.mth = { m with Ast.is_base; base; inductive } }

let candidates (p : Ast.program) (args : int list) :
    (Ast.program * int list) list =
  let m = p.Ast.mth in
  (* big cuts first: empty base, a single bare spawn site *)
  let base_to_skip =
    if m.Ast.base = Ast.Skip then []
    else [ (rebuild p ~base:Ast.Skip (), args) ]
  in
  let single_site =
    match Ast.spawn_sites m.Ast.inductive with
    | [ _ ] -> []
    | sites ->
        List.map (fun sp -> (rebuild p ~inductive:(Ast.Spawn sp) (), args)) sites
  in
  let arg_shrinks =
    List.concat
      (List.mapi
         (fun i v ->
           let replace v' =
             (p, List.mapi (fun j w -> if i = j then v' else w) args)
           in
           if v = 0 then []
           else
             replace 0
             :: ((if abs v >= 2 then [ replace (v / 2) ] else [])
                @ [ replace (if v > 0 then v - 1 else v + 1) ]))
         args)
  in
  let param_drops =
    List.concat
      (List.mapi
         (fun j name ->
           let used =
             expr_uses name m.Ast.is_base
             || stmt_uses name m.Ast.base
             || stmt_uses ~skip_arg:j name m.Ast.inductive
           in
           if used || List.length m.Ast.params <= 1 then []
           else
             let p' =
               rebuild
                 {
                   p with
                   Ast.mth =
                     {
                       m with
                       Ast.params = List.filteri (fun i _ -> i <> j) m.Ast.params;
                     };
                 }
                 ~inductive:(drop_spawn_arg j m.Ast.inductive)
                 ()
             in
             [ (p', List.filteri (fun i _ -> i <> j) args) ])
         m.Ast.params)
  in
  let reducer_drops =
    if List.length p.Ast.reducers <= 1 then []
    else
      List.filter_map
        (fun (r : Ast.reducer_decl) ->
          if reduces_to r.Ast.red_name m.Ast.base then None
          else
            Some
              ( {
                  p with
                  Ast.reducers =
                    List.filter
                      (fun (r' : Ast.reducer_decl) ->
                        r'.Ast.red_name <> r.Ast.red_name)
                      p.Ast.reducers;
                },
                args ))
        p.Ast.reducers
  in
  let inductive_edits =
    List.map
      (fun s -> (rebuild p ~inductive:s (), args))
      (stmt_shrinks m.Ast.inductive)
  in
  let base_edits =
    List.map (fun s -> (rebuild p ~base:s (), args)) (stmt_shrinks m.Ast.base)
  in
  let is_base_edits =
    List.map
      (fun e -> (rebuild p ~is_base:e (), args))
      (expr_shrinks m.Ast.is_base)
  in
  base_to_skip @ single_site @ arg_shrinks @ param_drops @ reducer_drops
  @ inductive_edits @ base_edits @ is_base_edits

let minimize ?(max_steps = 10_000) ~keep p args =
  let rec loop steps p args m =
    if steps >= max_steps then (p, args)
    else
      let next =
        List.find_opt
          (fun (p', a') -> measure p' a' < m && valid p' && keep p' a')
          (candidates p args)
      in
      match next with
      | Some (p', a') -> loop (steps + 1) p' a' (measure p' a')
      | None -> (p, args)
  in
  loop 0 p args (measure p args)
