open Vc_lang

type knobs = {
  max_arity : int;
  max_fanout : int;
  reducer_ops : Reducer.op list;
  max_reducers : int;
  max_guard_depth : int;
  max_base_depth : int;
  edge_operands : bool;
  max_cutoff : int;
  max_root : int;
}

let default =
  {
    max_arity = 3;
    max_fanout = 3;
    reducer_ops = [ Reducer.Sum; Reducer.Sum; Reducer.Min; Reducer.Max ];
    max_reducers = 2;
    max_guard_depth = 2;
    max_base_depth = 3;
    edge_operands = true;
    max_cutoff = 2;
    max_root = 6;
  }

(* ---- plain Random.State combinators (QCheck.Gen.t compatible) ---- *)

let int_range st lo hi = lo + Random.State.int st (hi - lo + 1)
let choose st = function
  | [] -> invalid_arg "Gen.choose: empty"
  | l -> List.nth l (Random.State.int st (List.length l))

(* weighted choice over thunks, so unchosen branches draw nothing *)
let freq st choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  let n = Random.State.int st total in
  let rec pick n = function
    | [] -> assert false
    | (w, f) :: rest -> if n < w then f () else pick (n - w) rest
  in
  pick n choices

let param_names = [ "a"; "b"; "c" ]
let reducer_names = [ "acc"; "aux" ]

(* Shift counts crossing every Builtins.shl/shr regime: in-range, the
   land-63 wrap boundary, and the >62 saturation plateau. *)
let edge_shift_counts = [ 0; 1; 2; 3; 31; 62; 63; 64; 100 ]

let rec gen_int_expr knobs vars depth st =
  let leaf () =
    if Random.State.bool st then Ast.Int (int_range st 0 9)
    else Ast.Var (choose st vars)
  in
  if depth <= 0 then leaf ()
  else
    let sub () = gen_int_expr knobs vars (depth - 1) st in
    let arith () =
      Ast.Binop (choose st [ Ast.Add; Ast.Sub; Ast.Mul ], sub (), sub ())
    in
    let bits () =
      Ast.Binop (choose st [ Ast.Band; Ast.Bor; Ast.Bxor ], sub (), sub ())
    in
    let shift () =
      let count =
        if Random.State.int st 4 = 0 then Ast.Var (choose st vars)
        else Ast.Int (choose st edge_shift_counts)
      in
      Ast.Binop (choose st [ Ast.Shl; Ast.Shr ], sub (), count)
    in
    let safe_div () =
      (* nonzero constant divisor: totally defined in every engine *)
      Ast.Binop (choose st [ Ast.Div; Ast.Mod ], sub (), Ast.Int (int_range st 1 7))
    in
    let call () =
      match int_range st 0 3 with
      | 0 -> Ast.Call ("min2", [ sub (); sub () ])
      | 1 -> Ast.Call ("max2", [ sub (); sub () ])
      | 2 -> Ast.Call ("abs", [ sub () ])
      | _ -> Ast.Call ("bit", [ sub (); Ast.Int (int_range st 0 6) ])
    in
    freq st
      ([
         (4, leaf);
         (3, arith);
         (1, fun () -> Ast.Unop (Ast.Neg, sub ()));
         (1, call);
       ]
      @
      if knobs.edge_operands then
        [ (2, shift); (1, bits); (1, safe_div) ]
      else [ (1, bits) ])

let gen_cmp knobs vars depth st =
  Ast.Binop
    ( choose st [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ],
      gen_int_expr knobs vars depth st,
      gen_int_expr knobs vars depth st )

let rec gen_bool_expr knobs vars depth st =
  if depth <= 0 then gen_cmp knobs vars 1 st
  else
    let sub () = gen_bool_expr knobs vars (depth - 1) st in
    let guarded_div () =
      (* division by a variable that may be zero, protected by the
         short-circuit operators every engine must honor *)
      let v = choose st vars in
      let q =
        Ast.Binop
          ( choose st [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ],
            Ast.Binop
              ( choose st [ Ast.Div; Ast.Mod ],
                gen_int_expr knobs vars 1 st,
                Ast.Var v ),
            gen_int_expr knobs vars 1 st )
      in
      if Random.State.bool st then
        Ast.Binop (Ast.Or, Ast.Binop (Ast.Eq, Ast.Var v, Ast.Int 0), q)
      else Ast.Binop (Ast.And, Ast.Binop (Ast.Ne, Ast.Var v, Ast.Int 0), q)
    in
    freq st
      ([
         (4, fun () -> gen_cmp knobs vars 2 st);
         (2, fun () -> Ast.Binop (choose st [ Ast.And; Ast.Or ], sub (), sub ()));
         (1, fun () -> Ast.Unop (Ast.Not, sub ()));
       ]
      @ if knobs.edge_operands then [ (2, guarded_div) ] else [])

(* ---- base case ---- *)

let rec gen_base_stmt knobs ~fresh vars reducers depth st =
  let reduce depth () =
    Ast.Reduce (choose st reducers, gen_int_expr knobs vars depth st)
  in
  if depth <= 0 then reduce 1 ()
  else
    let recur vars () = gen_base_stmt knobs ~fresh vars reducers (depth - 1) st in
    freq st
      [
        (3, reduce 2);
        ( 2,
          fun () ->
            (* assign a fresh local, then a continuation that can read it *)
            let t = Printf.sprintf "t%d" (fresh ()) in
            Ast.Seq
              ( Ast.Assign (t, gen_int_expr knobs vars 2 st),
                recur (t :: vars) () ) );
        ( 2,
          fun () ->
            Ast.If (gen_bool_expr knobs vars 1 st, recur vars (), recur vars ()) );
        ( 1,
          fun () ->
            Ast.If (gen_bool_expr knobs vars 1 st, recur vars (), Ast.Skip) );
        ( 1,
          fun () ->
            (* canonical bounded loop: i := 0; while i < c { body; i := i + 1; } *)
            let i = Printf.sprintf "i%d" (fresh ()) in
            let bound = int_range st 1 4 in
            Ast.Seq
              ( Ast.Assign (i, Ast.Int 0),
                Ast.While
                  ( Ast.Binop (Ast.Lt, Ast.Var i, Ast.Int bound),
                    Ast.Seq
                      ( recur (i :: vars) (),
                        Ast.Assign
                          (i, Ast.Binop (Ast.Add, Ast.Var i, Ast.Int 1)) ) ) )
        );
        (1, fun () -> Ast.Skip);
        (1, fun () -> Ast.Seq (recur vars (), recur vars ()));
      ]

(* ---- inductive case ---- *)

let gen_spawn knobs vars params st =
  (* ranking position gets a - c syntactically so Termination certifies;
     ids are placeholders until the final renumber pass *)
  let rank = List.hd params in
  let decrement = int_range st 1 2 in
  let rest =
    List.map (fun _ -> gen_int_expr knobs vars 2 st) (List.tl params)
  in
  Ast.Spawn
    {
      Ast.spawn_id = 0;
      spawn_args = Ast.Binop (Ast.Sub, Ast.Var rank, Ast.Int decrement) :: rest;
    }

let rec guard knobs vars depth site st =
  if depth <= 0 then site
  else
    let c = gen_bool_expr knobs vars 1 st in
    let wrapped =
      if Random.State.bool st then Ast.If (c, site, Ast.Skip)
      else Ast.If (c, Ast.Skip, site)
    in
    guard knobs vars (depth - 1) wrapped st

let gen_inductive knobs ~fresh vars params st =
  let n = int_range st 1 knobs.max_fanout in
  (* optional straight-line locals the spawn arguments may read *)
  let prefix, vars =
    if Random.State.int st 3 = 0 then
      let t = Printf.sprintf "t%d" (fresh ()) in
      ([ Ast.Assign (t, gen_int_expr knobs vars 2 st) ], t :: vars)
    else ([], vars)
  in
  let sites = List.init n (fun _ -> gen_spawn knobs vars params st) in
  let rec wrap = function
    | [] -> []
    | s1 :: s2 :: rest when Random.State.int st 4 = 0 ->
        (* both-branch conditional: one site per branch, ids stay
           consecutive because renumbering is syntactic *)
        Ast.If (gen_bool_expr knobs vars 1 st, s1, s2) :: wrap rest
    | s :: rest ->
        guard knobs vars (int_range st 0 knobs.max_guard_depth) s st :: wrap rest
  in
  Ast.seq (prefix @ wrap sites)

(* ---- canonical form ---- *)

(* The parser produces right-nested [Seq] chains with no [Skip] operands,
   so normalize generated statements to the same canonical form to make
   the print/parse round trip exact. *)
let rec normalize (s : Ast.stmt) : Ast.stmt =
  let rec flatten s acc =
    match s with
    | Ast.Seq (a, b) -> flatten a (flatten b acc)
    | Ast.Skip -> acc
    | s -> normalize_leaf s :: acc
  and normalize_leaf = function
    | Ast.If (c, a, b) -> Ast.If (c, normalize a, normalize b)
    | Ast.While (c, body) -> Ast.While (c, normalize body)
    | (Ast.Skip | Ast.Return | Ast.Assign _ | Ast.Reduce _ | Ast.Spawn _
      | Ast.Seq _) as s ->
        s
  in
  Ast.seq (flatten s [])

let renumber stmt =
  let next = ref 0 in
  let rec go = function
    | (Ast.Skip | Ast.Return | Ast.Assign _ | Ast.Reduce _) as s -> s
    | Ast.Seq (a, b) ->
        let a = go a in
        let b = go b in
        Ast.Seq (a, b)
    | Ast.If (c, a, b) ->
        let a = go a in
        let b = go b in
        Ast.If (c, a, b)
    | Ast.While (c, s) -> Ast.While (c, go s)
    | Ast.Spawn sp ->
        let id = !next in
        incr next;
        Ast.Spawn { sp with Ast.spawn_id = id }
  in
  go stmt

let size (p : Ast.program) =
  Ast.expr_size p.Ast.mth.Ast.is_base
  + Ast.stmt_size p.Ast.mth.Ast.base
  + Ast.stmt_size p.Ast.mth.Ast.inductive

(* ---- whole programs ---- *)

let program ?(knobs = default) st =
  let arity = int_range st 1 knobs.max_arity in
  let params = List.filteri (fun i _ -> i < arity) param_names in
  let n_reducers = int_range st 1 knobs.max_reducers in
  let reducers =
    List.filteri (fun i _ -> i < n_reducers) reducer_names
    |> List.map (fun name ->
           { Ast.red_name = name; red_op = choose st knobs.reducer_ops })
  in
  let reducer_names = List.map (fun r -> r.Ast.red_name) reducers in
  let counter = ref 0 in
  let fresh () =
    let v = !counter in
    incr counter;
    v
  in
  let cutoff = int_range st 1 knobs.max_cutoff in
  let rank = List.hd params in
  let main_disjunct = Ast.Binop (Ast.Lt, Ast.Var rank, Ast.Int cutoff) in
  let is_base =
    (* an extra disjunct keeps the ranking certificate and diversifies the
       base/inductive split *)
    if Random.State.int st 4 = 0 then
      Ast.Binop (Ast.Or, main_disjunct, gen_cmp knobs params 1 st)
    else main_disjunct
  in
  let base =
    normalize
      (gen_base_stmt knobs ~fresh params reducer_names
         (int_range st 0 knobs.max_base_depth)
         st)
  in
  let inductive = renumber (normalize (gen_inductive knobs ~fresh params params st)) in
  { Ast.reducers; mth = { Ast.name = "m"; params; is_base; base; inductive } }

let args ?(knobs = default) (p : Ast.program) st =
  List.mapi
    (fun i _ -> if i = 0 then int_range st 0 knobs.max_root else int_range st (-3) 5)
    p.Ast.mth.Ast.params

let program_and_args ?knobs st =
  let p = program ?knobs st in
  (p, args ?knobs p st)

let case ?knobs ~seed ~index () =
  let st = Random.State.make [| 0x5eed; seed; index |] in
  program_and_args ?knobs st
