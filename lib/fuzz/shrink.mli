(** Delta-debugging shrinker over DSL programs.

    {!minimize} greedily applies the first structural edit (in a fixed,
    deterministic order) that keeps the candidate {e valid} — passes
    {!Vc_lang.Validate.check}, holds a {!Vc_lang.Termination.Terminates}
    certificate, and still spawns — {e and} keeps the caller's failure
    predicate true, restarting until no edit is accepted.  Every accepted
    edit strictly decreases the (AST size, literal magnitude) measure, so
    the loop terminates; the result is a local minimum, canonicalized
    with {!Gen.normalize}/{!Gen.renumber} so it prints and reparses
    exactly.

    Shrinking is pure: a fixed (program, args, predicate) always yields
    the same minimum. *)

val valid : Vc_lang.Ast.program -> bool
(** [Validate.check] ok, [Termination.check] = [Terminates], and at least
    one spawn site remains (the generator's contract). *)

val minimize :
  ?max_steps:int ->
  keep:(Vc_lang.Ast.program -> int list -> bool) ->
  Vc_lang.Ast.program ->
  int list ->
  Vc_lang.Ast.program * int list
(** [minimize ~keep p args] assumes [keep p args = true] (the original
    case fails) and returns the smallest reachable failing case.
    [max_steps] (default 10_000) caps accepted edits as a safety net. *)
