(** Seeded generator of well-typed, provably-terminating DSL programs.

    Every generated program passes {!Vc_lang.Validate.check} and gets a
    {!Vc_lang.Termination.Terminates} certificate by construction: the
    first parameter is the ranking parameter — the base condition always
    carries an [a < cutoff] disjunct, and every spawn site passes
    [a - c] (c >= 1) in its position — so all execution strategies
    terminate with tree depth bounded by the root argument.

    The generator is a plain [Random.State.t -> 'a] function (the same
    shape as [QCheck.Gen.t]), so property tests wrap it directly and the
    CLI fuzzer seeds one state per case for reproducibility.

    Shape knobs widen the space beyond the old two-parameter generator:
    method arity, spawn fan-out, reducer kinds, guard nesting around
    spawn sites, and shift/division edge operands (counts at and past
    the 63-bit saturation point, guarded divisions by in-scope
    variables that may be zero). *)

type knobs = {
  max_arity : int;  (** method parameters, 1..3; the first is ranking *)
  max_fanout : int;  (** spawn sites per inductive case, 1..3 *)
  reducer_ops : Vc_lang.Reducer.op list;  (** drawn per reducer decl *)
  max_reducers : int;  (** declared reducers, 1..2 *)
  max_guard_depth : int;  (** nested conditionals around spawn sites *)
  max_base_depth : int;  (** statement nesting in the base case *)
  edge_operands : bool;
      (** emit shift counts {0,1,2,3,31,62,63,64,100}, variable shift
          counts, and short-circuit-guarded divisions by variables *)
  max_cutoff : int;  (** base threshold in [a < cutoff], >= 1 *)
  max_root : int;  (** ranking root argument range 0..max_root *)
}

val default : knobs
(** arity/fan-out up to 3, two reducers over sum/min/max, guard depth 2,
    base depth 3, edge operands on, cutoff up to 2, roots up to 6. *)

val program : ?knobs:knobs -> Random.State.t -> Vc_lang.Ast.program
val args : ?knobs:knobs -> Vc_lang.Ast.program -> Random.State.t -> int list

val program_and_args :
  ?knobs:knobs -> Random.State.t -> Vc_lang.Ast.program * int list

val case :
  ?knobs:knobs -> seed:int -> index:int -> unit -> Vc_lang.Ast.program * int list
(** The [index]-th case of stream [seed]: each case owns an independent
    [Random.State], so a reproducer needs only (seed, index). *)

val normalize : Vc_lang.Ast.stmt -> Vc_lang.Ast.stmt
(** Canonicalize to the parser's right-nested, [Skip]-free [Seq] form so
    the print/parse round trip is exact. *)

val renumber : Vc_lang.Ast.stmt -> Vc_lang.Ast.stmt
(** Reassign spawn ids consecutively in syntactic order (the validator's
    invariant) — required after any structural edit. *)

val size : Vc_lang.Ast.program -> int
(** AST node count of the method (base condition + both cases): the
    shrinker's primary measure. *)
