open Vc_core

type plant = Shl_trunc | Spawn_skew

let plant_name = function Shl_trunc -> "shl-trunc" | Spawn_skew -> "spawn-skew"

let plant_of_string = function
  | "shl-trunc" -> Some Shl_trunc
  | "spawn-skew" -> Some Spawn_skew
  | _ -> None

(* ---- planted mutations (compiled backend only) ---- *)

let rec mask_shifts_expr = function
  | (Vc_lang.Ast.Int _ | Vc_lang.Ast.Bool _ | Vc_lang.Ast.Var _) as e -> e
  | Vc_lang.Ast.Unop (op, e) -> Vc_lang.Ast.Unop (op, mask_shifts_expr e)
  | Vc_lang.Ast.Binop (((Vc_lang.Ast.Shl | Vc_lang.Ast.Shr) as op), a, b) ->
      (* the historical peephole bug: the count masked with 62 instead of
         63 drops the low bit of every shift count *)
      Vc_lang.Ast.Binop
        ( op,
          mask_shifts_expr a,
          Vc_lang.Ast.Binop
            (Vc_lang.Ast.Band, mask_shifts_expr b, Vc_lang.Ast.Int 62) )
  | Vc_lang.Ast.Binop (op, a, b) ->
      Vc_lang.Ast.Binop (op, mask_shifts_expr a, mask_shifts_expr b)
  | Vc_lang.Ast.Call (f, args) ->
      Vc_lang.Ast.Call (f, List.map mask_shifts_expr args)

let rec map_stmt_exprs f = function
  | (Vc_lang.Ast.Skip | Vc_lang.Ast.Return) as s -> s
  | Vc_lang.Ast.Seq (a, b) ->
      Vc_lang.Ast.Seq (map_stmt_exprs f a, map_stmt_exprs f b)
  | Vc_lang.Ast.Assign (x, e) -> Vc_lang.Ast.Assign (x, f e)
  | Vc_lang.Ast.If (c, a, b) ->
      Vc_lang.Ast.If (f c, map_stmt_exprs f a, map_stmt_exprs f b)
  | Vc_lang.Ast.While (c, s) -> Vc_lang.Ast.While (f c, map_stmt_exprs f s)
  | Vc_lang.Ast.Reduce (x, e) -> Vc_lang.Ast.Reduce (x, f e)
  | Vc_lang.Ast.Spawn sp ->
      Vc_lang.Ast.Spawn { sp with Vc_lang.Ast.spawn_args = List.map f sp.Vc_lang.Ast.spawn_args }

let rec skew_spawns = function
  | (Vc_lang.Ast.Skip | Vc_lang.Ast.Return | Vc_lang.Ast.Assign _
    | Vc_lang.Ast.Reduce _) as s ->
      s
  | Vc_lang.Ast.Seq (a, b) -> Vc_lang.Ast.Seq (skew_spawns a, skew_spawns b)
  | Vc_lang.Ast.If (c, a, b) -> Vc_lang.Ast.If (c, skew_spawns a, skew_spawns b)
  | Vc_lang.Ast.While (c, s) -> Vc_lang.Ast.While (c, skew_spawns s)
  | Vc_lang.Ast.Spawn sp ->
      let args =
        match sp.Vc_lang.Ast.spawn_args with
        | Vc_lang.Ast.Binop (Vc_lang.Ast.Sub, x, Vc_lang.Ast.Int c) :: rest ->
            Vc_lang.Ast.Binop (Vc_lang.Ast.Sub, x, Vc_lang.Ast.Int (c + 1)) :: rest
        | args -> args
      in
      Vc_lang.Ast.Spawn { sp with Vc_lang.Ast.spawn_args = args }

let mutate plant (p : Vc_lang.Ast.program) =
  let m = p.Vc_lang.Ast.mth in
  match plant with
  | Shl_trunc ->
      {
        p with
        Vc_lang.Ast.mth =
          {
            m with
            Vc_lang.Ast.is_base = mask_shifts_expr m.Vc_lang.Ast.is_base;
            base = map_stmt_exprs mask_shifts_expr m.Vc_lang.Ast.base;
            inductive = map_stmt_exprs mask_shifts_expr m.Vc_lang.Ast.inductive;
          };
      }
  | Spawn_skew ->
      {
        p with
        Vc_lang.Ast.mth =
          { m with Vc_lang.Ast.inductive = skew_spawns m.Vc_lang.Ast.inductive };
      }

(* ---- the driver ---- *)

type outcome =
  | Agree of { checks : int }
  | Diverge of { stage : string; detail : string }
  | Skip of string

exception Found of string * string

let e5 = Vc_mem.Machine.xeon_e5
let hybrid = Policy.Hybrid { max_block = 8; reexpand = true }

let strategies =
  [
    (Policy.Bfs_only, "bfs");
    (hybrid, "reexp/8");
    (Policy.Hybrid { max_block = 16; reexpand = false }, "noreexp/16");
  ]

let show_reducers rs =
  String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) rs)

let check ?plant ?(domains = [ 1; 4 ]) ?(fault_seeds = [ 1 ])
    ?(max_tasks = 100_000) (p : Vc_lang.Ast.program) args =
  match Vc_lang.Interp.run ~max_tasks p args with
  | exception Vc_lang.Interp.Runtime_error msg ->
      Skip (Printf.sprintf "oracle runtime error: %s" msg)
  | exception Vc_lang.Interp.Task_limit_exceeded n ->
      Skip (Printf.sprintf "oracle exceeded %d tasks" n)
  | out -> (
      let expected = out.Vc_lang.Interp.reducers in
      let expected_tasks = Vc_lang.Profile.tasks out.Vc_lang.Interp.profile in
      let checks = ref 0 in
      let fail stage fmt =
        Printf.ksprintf (fun detail -> raise (Found (stage, detail))) fmt
      in
      let agree stage reducers tasks =
        if reducers <> expected || tasks <> expected_tasks then
          fail stage "got %s / %d tasks, want %s / %d tasks"
            (show_reducers reducers) tasks (show_reducers expected)
            expected_tasks;
        incr checks
      in
      try
        let spec = Compile.spec_of_program p ~args in
        let budget = 2 * max_tasks in
        (* cost-model engine over the strategy grid *)
        let engine strategy =
          match Engine.run ~max_tasks:budget ~spec ~machine:e5 ~strategy () with
          | exception Engine.Task_limit _ -> None
          | r -> if r.Report.oom then None else Some r
        in
        List.iter
          (fun (strategy, sname) ->
            match engine strategy with
            | None -> ()
            | Some r ->
                agree
                  (Printf.sprintf "engine[%s]" sname)
                  r.Report.reducers r.Report.tasks)
          strategies;
        (* wall-clock backends over the blocked IR; the compiled side runs
           the (optionally planted) program *)
        let ir = Backend.Ir (Transform.transform p) in
        let planted_ir =
          match plant with
          | None -> ir
          | Some pl -> Backend.Ir (Transform.transform (mutate pl p))
        in
        let roots = [ Array.of_list args ] in
        let compiled_ref = ref None in
        List.iter
          (fun (strategy, sname) ->
            let opts =
              { Backend.default_opts with strategy; max_tasks = budget }
            in
            match Backend.run ~opts Backend.interp ir ~roots with
            | exception Vc_error.Error _ -> () (* budget: skip, as OOM *)
            | b -> (
                agree
                  (Printf.sprintf "blocked[%s]" sname)
                  b.Backend.reducers b.Backend.tasks;
                match Backend.run ~opts Backend.compiled planted_ir ~roots with
                | exception Vc_error.Error e ->
                    (* the blocked run fit the same budget, so a compiled
                       failure is a real divergence, not a skip *)
                    fail
                      (Printf.sprintf "compiled[%s]" sname)
                      "compiled backend failed where blocked succeeded: %s"
                      (Vc_error.to_string e)
                | c ->
                    agree
                      (Printf.sprintf "compiled[%s]" sname)
                      c.Backend.reducers c.Backend.tasks;
                    let scrub (r : Backend.result) =
                      { r with Backend.wall_seconds = 0.0 }
                    in
                    if scrub c <> scrub b then
                      fail
                        (Printf.sprintf "compiled[%s]" sname)
                        "six-field report differs from blocked: compiled \
                         %d/%d tasks depth %d sw %d re %d, blocked %d/%d \
                         tasks depth %d sw %d re %d"
                        c.Backend.tasks c.Backend.base_tasks c.Backend.max_depth
                        c.Backend.switches c.Backend.reexpansions
                        b.Backend.tasks b.Backend.base_tasks b.Backend.max_depth
                        b.Backend.switches b.Backend.reexpansions;
                    incr checks;
                    if strategy = hybrid then compiled_ref := Some c))
          strategies;
        (* hybrid multicore x SIMD scheduler *)
        (match engine hybrid with
        | None -> ()
        | Some reference ->
            List.iter
              (fun d ->
                match
                  Domain_sched.run ~chunks:4 ~spec ~machine:e5 ~strategy:hybrid
                    ~domains:d ()
                with
                | exception Vc_error.Error _ -> ()
                | exception Engine.Task_limit _ -> ()
                | res ->
                    let r = res.Domain_sched.report in
                    if
                      r.Report.reducers <> reference.Report.reducers
                      || r.Report.tasks <> reference.Report.tasks
                      || r.Report.base_tasks <> reference.Report.base_tasks
                    then
                      fail
                        (Printf.sprintf "domains[%d]" d)
                        "got %s / %d tasks, engine has %s / %d tasks"
                        (show_reducers r.Report.reducers)
                        r.Report.tasks
                        (show_reducers reference.Report.reducers)
                        reference.Report.tasks;
                    incr checks)
              domains;
            (* fault-armed engine recovery *)
            List.iter
              (fun seed ->
                let plan =
                  Fault.make ~rate:0.25 ~seed
                    ~sites:[ Fault.Compact; Fault.Alloc ] ()
                in
                match
                  Supervisor.run ~max_tasks:budget ~faults:plan ~spec
                    ~machine:e5 ~strategy:hybrid ()
                with
                | Error e when Vc_error.is_budget e -> ()
                | Error e ->
                    fail
                      (Printf.sprintf "fault-engine[seed %d]" seed)
                      "did not recover: %s" (Vc_error.to_string e)
                | Ok o ->
                    let r = o.Supervisor.report in
                    if
                      r.Report.reducers <> reference.Report.reducers
                      || r.Report.tasks <> reference.Report.tasks
                      || r.Report.base_tasks <> reference.Report.base_tasks
                    then
                      fail
                        (Printf.sprintf "fault-engine[seed %d]" seed)
                        "recovered run diverges: got %s / %d tasks"
                        (show_reducers r.Report.reducers)
                        r.Report.tasks;
                    incr checks)
              fault_seeds);
        (* fault-armed compiled backend recovery *)
        (match !compiled_ref with
        | None -> ()
        | Some reference ->
            List.iter
              (fun seed ->
                let plan =
                  Fault.make ~rate:0.25 ~seed ~sites:[ Fault.Alloc ] ()
                in
                match
                  Supervisor.run_backend ~strategy:hybrid ~max_tasks:budget
                    ~faults:plan Backend.compiled planted_ir ~roots
                with
                | Error e when Vc_error.is_budget e -> ()
                | Error e ->
                    fail
                      (Printf.sprintf "fault-compiled[seed %d]" seed)
                      "did not recover: %s" (Vc_error.to_string e)
                | Ok o ->
                    let r = o.Supervisor.result in
                    if
                      r.Backend.reducers <> reference.Backend.reducers
                      || r.Backend.tasks <> reference.Backend.tasks
                      || r.Backend.base_tasks <> reference.Backend.base_tasks
                    then
                      fail
                        (Printf.sprintf "fault-compiled[seed %d]" seed)
                        "recovered run diverges: got %s / %d tasks"
                        (show_reducers r.Backend.reducers)
                        r.Backend.tasks;
                    incr checks)
              fault_seeds);
        Agree { checks = !checks }
      with Found (stage, detail) -> Diverge { stage; detail })

let failing ?plant p args =
  match check ?plant ~domains:[] ~fault_seeds:[] p args with
  | Diverge _ -> true
  | Agree _ | Skip _ -> false
