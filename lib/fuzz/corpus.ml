open Vc_core

let oracle (p : Vc_lang.Ast.program) (roots : int list list) =
  let ops =
    List.map
      (fun (r : Vc_lang.Ast.reducer_decl) ->
        (r.Vc_lang.Ast.red_name, r.Vc_lang.Ast.red_op))
      p.Vc_lang.Ast.reducers
  in
  let acc = List.map (fun (n, op) -> (n, op, Vc_lang.Reducer.identity op)) ops in
  let combine acc reducers =
    List.map
      (fun (n, op, v) ->
        match List.assoc_opt n reducers with
        | Some v' -> (n, op, Vc_lang.Reducer.apply op v v')
        | None -> (n, op, v))
      acc
  in
  let rec loop acc tasks = function
    | [] -> Ok (List.map (fun (n, _, v) -> (n, v)) acc, tasks)
    | root :: rest -> (
        match Vc_lang.Interp.run p root with
        | exception Vc_lang.Interp.Runtime_error msg ->
            Error (Printf.sprintf "interpreter: %s" msg)
        | exception Vc_lang.Interp.Task_limit_exceeded n ->
            Error (Printf.sprintf "interpreter exceeded %d tasks" n)
        | out ->
            loop
              (combine acc out.Vc_lang.Interp.reducers)
              (tasks + Vc_lang.Profile.tasks out.Vc_lang.Interp.profile)
              rest)
  in
  loop acc 0 roots

let reproducer_source ~name ~provenance p args expected =
  let sb =
    {
      Vc_lang.Spec_block.empty with
      Vc_lang.Spec_block.name = Some name;
      inputs = [ args ];
      expect = expected;
      quick_expect = expected;
    }
  in
  String.concat "\n"
    (List.map (fun l -> "// " ^ l) provenance
    @ Vc_lang.Spec_block.to_lines sb
    @ [ ""; Vc_lang.Pp.program_to_string p ])
  ^ "\n"

let write_error fmt =
  Printf.ksprintf
    (fun detail ->
      Error
        {
          Vc_error.kind =
            Vc_error.Fault { site = Vc_error.Cache_io; hint = Vc_error.Abort };
          phase = Vc_error.Load;
          detail;
        })
    fmt

let write ~dir ~name ~provenance p args =
  match oracle p [ args ] with
  | Error msg -> write_error "reproducer %s: oracle failed: %s" name msg
  | Ok (expected, _) -> (
      let path = Filename.concat dir (name ^ ".rtp") in
      match
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (reproducer_source ~name ~provenance p args expected))
      with
      | exception Sys_error msg -> write_error "reproducer %s: %s" name msg
      | () -> (
          (* the reproducer is only useful if the registry can load it back *)
          match Vc_bench.Registry.load_file path with
          | Ok _ -> Ok path
          | Error e ->
              write_error "reproducer %s does not load back: %s" path
                (Vc_error.to_string e)))

let replay ~quick (l : Vc_bench.Registry.loaded) =
  let entry = l.Vc_bench.Registry.entry in
  let name = entry.Vc_bench.Registry.name in
  let fail fmt = Printf.ksprintf (fun m -> Error (name ^ ": " ^ m)) fmt in
  match entry.Vc_bench.Registry.dsl with
  | None -> fail "no DSL program attached"
  | Some dsl -> (
      let p, roots = dsl ~quick in
      let root_lists = List.map Array.to_list roots in
      match oracle p root_lists with
      | Error msg -> fail "%s" msg
      | Ok (reducers, tasks) -> (
          let pinned =
            if quick then l.Vc_bench.Registry.quick_expected
            else entry.Vc_bench.Registry.expected ()
          in
          let bad_pin =
            List.find_opt
              (fun (n, v) -> List.assoc_opt n reducers <> Some v)
              pinned
          in
          match bad_pin with
          | Some (n, v) ->
              fail "spec pins %s=%d but the oracle computes %s" n v
                (String.concat ","
                   (List.map
                      (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                      reducers))
          | None -> (
              let checks = ref 1 in
              let args =
                match root_lists with r :: _ -> r | [] -> []
              in
              let spec =
                let s = Compile.spec_of_program ~name p ~args in
                { s with Spec.roots }
              in
              match
                Engine.run ~spec ~machine:Vc_mem.Machine.xeon_e5
                  ~strategy:(Policy.Hybrid { max_block = 8; reexpand = true })
                  ()
              with
              | exception Engine.Task_limit n ->
                  fail "engine exceeded %d tasks" n
              | r when r.Report.oom -> fail "engine reported OOM"
              | r -> (
                  if r.Report.reducers <> reducers || r.Report.tasks <> tasks
                  then
                    fail "engine computes %s / %d tasks, oracle %s / %d"
                      (String.concat ","
                         (List.map
                            (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                            r.Report.reducers))
                      r.Report.tasks
                      (String.concat ","
                         (List.map
                            (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                            reducers))
                      tasks
                  else begin
                    incr checks;
                    let ir = Backend.Ir (Transform.transform p) in
                    let run backend =
                      Backend.run backend ir ~roots
                    in
                    match run Backend.interp with
                    | exception Vc_error.Error e ->
                        fail "blocked backend: %s" (Vc_error.to_string e)
                    | b -> (
                        if b.Backend.reducers <> reducers then
                          fail "blocked backend computes %s"
                            (String.concat ","
                               (List.map
                                  (fun (n, v) -> Printf.sprintf "%s=%d" n v)
                                  b.Backend.reducers))
                        else begin
                          incr checks;
                          match run Backend.compiled with
                          | exception Vc_error.Error e ->
                              fail "compiled backend: %s"
                                (Vc_error.to_string e)
                          | c ->
                              let scrub (r : Backend.result) =
                                { r with Backend.wall_seconds = 0.0 }
                              in
                              if scrub c <> scrub b then
                                fail
                                  "compiled six-field report differs from \
                                   blocked (%d vs %d tasks)"
                                  c.Backend.tasks b.Backend.tasks
                              else begin
                                incr checks;
                                Ok !checks
                              end
                        end)
                  end))))
