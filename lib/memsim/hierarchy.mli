(** Multi-level memory hierarchy with the paper's two platform presets.

    An access walks the levels nearest-first; a hit at level [i] stops the
    walk.  A miss at the last level goes to memory.  Each level has a miss
    penalty in cycles, consumed by {!Cost}. *)

type level = {
  label : string;  (** e.g. "L1d", "LLC" *)
  cache : Cache.t;
  miss_penalty : float;  (** extra cycles when this level misses *)
}

type t

val create : level list -> t
(** Nearest level first.  Raises [Invalid_argument] on an empty list. *)

val levels : t -> level list

val access : t -> addr:int -> bytes:int -> unit
(** Route one access (of any byte span) through the hierarchy.  Every line
    touched is looked up in L1; only L1-missing lines proceed outward. *)

val penalty_cycles : t -> float
(** Total accumulated miss-penalty cycles. *)

val miss_rate : t -> string -> float
(** Miss rate of the level with the given label.  Raises [Not_found] for an
    unknown label. *)

val level_stats : t -> (string * int * int) list
(** [(label, accesses, misses)] per level, nearest first. *)

val delta :
  since:(string * int * int) list ->
  (string * int * int) list ->
  (string * int * int) list
(** [delta ~since now] subtracts two {!level_stats} snapshots of the same
    hierarchy, giving the per-level accesses/misses accumulated in between
    (the telemetry layer attributes these to one block level).  Raises
    [Invalid_argument] if the snapshots' labels disagree. *)

val reset_counters : t -> unit
val clear : t -> unit

(** {1 Presets (paper §6.1)} *)

val xeon_e5 : unit -> t
(** 32 KB 8-way L1d + 20 MB 20-way LLC, 64-byte lines. *)

val xeon_phi : unit -> t
(** 32 KB 8-way L1d + 512 KB 8-way L2, 64-byte lines; larger relative miss
    penalties (in-order core, no L3). *)
