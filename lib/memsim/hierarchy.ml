type level = { label : string; cache : Cache.t; miss_penalty : float }

type t = { levels : level list; mutable penalty : float }

let create levels =
  if levels = [] then invalid_arg "Hierarchy.create: no levels";
  { levels; penalty = 0.0 }

let levels t = t.levels

let access t ~addr ~bytes =
  let bytes = max bytes 1 in
  let line_bytes =
    match t.levels with l :: _ -> (Cache.config l.cache).Cache.line_bytes | [] -> 64
  in
  let first = addr / line_bytes in
  let last = (addr + bytes - 1) / line_bytes in
  for line = first to last do
    let line_addr = line * line_bytes in
    let rec walk = function
      | [] -> ()
      | level :: outer ->
          if not (Cache.access level.cache ~addr:line_addr) then begin
            t.penalty <- t.penalty +. level.miss_penalty;
            walk outer
          end
    in
    walk t.levels
  done

let penalty_cycles t = t.penalty

let find_level t label =
  match List.find_opt (fun l -> l.label = label) t.levels with
  | Some l -> l
  | None -> raise Not_found

let miss_rate t label = Cache.miss_rate (find_level t label).cache

let level_stats t =
  List.map (fun l -> (l.label, Cache.accesses l.cache, Cache.misses l.cache)) t.levels

let delta ~since now =
  List.map2
    (fun (l0, a0, m0) (l1, a1, m1) ->
      if l0 <> l1 then invalid_arg "Hierarchy.delta: mismatched snapshots";
      (l1, a1 - a0, m1 - m0))
    since now

let reset_counters t =
  t.penalty <- 0.0;
  List.iter (fun l -> Cache.reset_counters l.cache) t.levels

let clear t =
  t.penalty <- 0.0;
  List.iter (fun l -> Cache.clear l.cache) t.levels

let kib n = n * 1024
let mib n = n * 1024 * 1024

let xeon_e5 () =
  create
    [
      {
        label = "L1d";
        cache = Cache.create { Cache.size_bytes = kib 32; ways = 8; line_bytes = 64 };
        miss_penalty = 10.0;
      };
      {
        label = "LLC";
        cache = Cache.create { Cache.size_bytes = mib 20; ways = 20; line_bytes = 64 };
        miss_penalty = 150.0;
      };
    ]

let xeon_phi () =
  create
    [
      {
        label = "L1d";
        cache = Cache.create { Cache.size_bytes = kib 32; ways = 8; line_bytes = 64 };
        miss_penalty = 15.0;
      };
      {
        label = "L2";
        cache = Cache.create { Cache.size_bytes = kib 512; ways = 8; line_bytes = 64 };
        miss_penalty = 300.0;
      };
    ]
