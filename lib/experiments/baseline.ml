(* 1: initial schema (per-benchmark summary metrics keyed bench/machine).
   2: adds [domains_speedup] — the hybrid multicore × SIMD scheduler's
      modeled speedup over sequential at 2 domains — so multicore scaling
      is gated alongside the single-core metrics.
   3: adds [wall_tasks_per_sec] — host wall-clock throughput of the
      hybrid run, informational only (host-dependent, so deliberately
      absent from [checks]; 0.0 when the run came from the disk cache).
   4: adds the optional entry-level [serve] block — serving-path latency
      columns (p50/p99 wall under a fixed loadgen profile, from the
      BENCH_serve.json artifact) gated with coarse thresholds when both
      entries carry them under the same profile. *)
let version = 4

let log_src = Logs.Src.create "vc.baseline" ~doc:"Bench baseline history"

module Log = (val Logs.src_log log_src : Logs.LOG)

type metrics = {
  cycles : float;
  speedup : float;
  domains_speedup : float;
  lane_occupancy : float;
  compaction_passes : int;
  space_peak : int;
  occupancy_hist : int array;
  wall_tasks_per_sec : float;
}

type serve_latency = {
  profile : string;
  serve_p50_ms : float;
  serve_p99_ms : float;
}

type entry = {
  label : string;
  quick : bool;
  block : int;
  benchmarks : (string * metrics) list;
  serve : serve_latency option;
}

(* ------------------------------------------------------------------ *)
(* Collection *)

let default_block = 256

let collect ?(block = default_block) ctx =
  let benchmarks =
    List.concat_map
      (fun (e : Vc_bench.Registry.entry) ->
        List.map
          (fun (m : Vc_mem.Machine.t) ->
            let r = Sweep.hybrid ctx e m ~reexpand:true ~block in
            let rd = Sweep.hybrid_domains ctx e m ~block ~domains:2 in
            let metrics =
              {
                cycles = r.Vc_core.Report.cycles;
                speedup = Sweep.speedup ctx e m r;
                domains_speedup = Sweep.speedup ctx e m rd;
                lane_occupancy = r.Vc_core.Report.lane_occupancy;
                compaction_passes = r.Vc_core.Report.compaction_passes;
                space_peak = r.Vc_core.Report.space_peak;
                occupancy_hist = Array.copy r.Vc_core.Report.occupancy_hist;
                wall_tasks_per_sec =
                  (* disk-cache hits carry no wall clock (0.0 marks them) *)
                  (if r.Vc_core.Report.wall_seconds > 0.0 then
                     float_of_int r.Vc_core.Report.tasks
                     /. r.Vc_core.Report.wall_seconds
                   else 0.0);
              }
            in
            (e.Vc_bench.Registry.name ^ "/" ^ m.Vc_mem.Machine.name, metrics))
          Sweep.machines)
      Vc_bench.Registry.all
  in
  {
    label = Vc_core.Version.describe ();
    quick = Sweep.quick ctx;
    block;
    benchmarks = List.sort (fun (a, _) (b, _) -> compare a b) benchmarks;
    serve = None;
  }

(* The serving-latency columns come from a loadgen artifact
   (BENCH_serve.json), not from [collect]'s deterministic sweep — the
   caller merges them in after the fact. *)
let with_serve e ~serve = { e with serve = Some serve }

(* Read the columns out of a BENCH_serve.json body.  The profile knobs
   are folded into one comparison string: latency is only comparable
   under the same load, so [check] refuses mismatched profiles the same
   way it refuses quick-vs-full. *)
let serve_of_artifact j =
  let open Jsonx in
  let p = member "profile" j in
  if p = Null then decode_error "serve artifact: no \"profile\" object";
  let profile =
    Printf.sprintf "rps=%g dur=%g mix=%s engine=%s conns=%d quick=%b"
      (to_float (member "rps" p))
      (to_float (member "duration_s" p))
      (to_str (member "mix" p))
      (to_str (member "engine" p))
      (to_int (member "connections" p))
      (to_bool (member "quick" p))
  in
  {
    profile;
    serve_p50_ms = to_float (member "p50_ms" j);
    serve_p99_ms = to_float (member "p99_ms" j);
  }

(* ------------------------------------------------------------------ *)
(* Entry <-> Jsonx *)

let json_of_metrics (m : metrics) : Jsonx.t =
  Jsonx.Obj
    [
      ("cycles", Float m.cycles);
      ("speedup", Float m.speedup);
      ("domains_speedup", Float m.domains_speedup);
      ("lane_occupancy", Float m.lane_occupancy);
      ("compaction_passes", Int m.compaction_passes);
      ("space_peak", Int m.space_peak);
      ("occupancy_hist", List (Array.to_list m.occupancy_hist |> List.map (fun n -> Jsonx.Int n)));
      ("wall_tasks_per_sec", Float m.wall_tasks_per_sec);
    ]

let json_of_entry (e : entry) : Jsonx.t =
  Jsonx.Obj
    ([
       ("label", Jsonx.String e.label);
       ("quick", Bool e.quick);
       ("block", Int e.block);
       ( "benchmarks",
         Obj (List.map (fun (k, m) -> (k, json_of_metrics m)) e.benchmarks) );
     ]
    @
    match e.serve with
    | None -> []
    | Some s ->
        [
          ( "serve",
            Jsonx.Obj
              [
                ("profile", String s.profile);
                ("p50_ms", Float s.serve_p50_ms);
                ("p99_ms", Float s.serve_p99_ms);
              ] );
        ])

let metrics_of_json j : metrics =
  let open Jsonx in
  let m name = member name j in
  {
    cycles = to_float (m "cycles");
    speedup = to_float (m "speedup");
    domains_speedup = to_float (m "domains_speedup");
    lane_occupancy = to_float (m "lane_occupancy");
    compaction_passes = to_int (m "compaction_passes");
    space_peak = to_int (m "space_peak");
    occupancy_hist = Array.of_list (List.map to_int (to_list (m "occupancy_hist")));
    wall_tasks_per_sec = to_float (m "wall_tasks_per_sec");
  }

let entry_of_json j : entry =
  let open Jsonx in
  match member "benchmarks" j with
  | Obj fields ->
      {
        label = to_str (member "label" j);
        quick = to_bool (member "quick" j);
        block = to_int (member "block" j);
        benchmarks = List.map (fun (k, v) -> (k, metrics_of_json v)) fields;
        serve =
          (match member "serve" j with
          | Null -> None
          | s ->
              Some
                {
                  profile = to_str (member "profile" s);
                  serve_p50_ms = to_float (member "p50_ms" s);
                  serve_p99_ms = to_float (member "p99_ms" s);
                });
      }
  | v -> decode_error "benchmarks: expected an object, got %s" (Jsonx.to_string v)

(* ------------------------------------------------------------------ *)
(* History file *)

let json_of_history entries =
  Jsonx.Obj
    [ ("version", Int version); ("entries", List (List.map json_of_entry entries)) ]

let load ~path =
  if not (Sys.file_exists path) then Ok []
  else
    let read () =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Jsonx.parse (read ()) with
    | exception Sys_error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Error msg -> Error (Printf.sprintf "%s: unparseable history (%s)" path msg)
    | Ok j -> (
        if Jsonx.(member "version" j <> Int version) then
          Error
            (Printf.sprintf "%s: history version mismatch (want %d)" path version)
        else
          match Jsonx.member "entries" j with
          | Jsonx.List entries -> (
              try Ok (List.map entry_of_json entries)
              with Jsonx.Decode msg -> Error (Printf.sprintf "%s: %s" path msg))
          | _ -> Error (Printf.sprintf "%s: no \"entries\" list" path))

let last entries = match List.rev entries with [] -> None | e :: _ -> Some e

let write ?faults ~path entries =
  Run_cache.save_atomic ?faults ~path (Jsonx.to_pretty_string (json_of_history entries))

let append ?faults ~path entry =
  match load ~path with
  | Ok entries -> write ?faults ~path (entries @ [ entry ])
  | Error msg ->
      (* A corrupt history must not silently eat its past: keep the file
         and drop the new entry rather than overwrite. *)
      Log.warn (fun m -> m "%s; not appending" msg)

(* ------------------------------------------------------------------ *)
(* Regression check *)

type verdict = {
  key : string;
  metric : string;
  baseline_v : float;
  current_v : float;
  delta : float;
  threshold : float;
  regressed : bool;
}

(* Direction-aware relative thresholds.  The engine is deterministic, so
   any drift is a real code change — the slack absorbs intentional minor
   cost-model adjustments, not measurement noise.  Counters with small
   magnitudes (compaction passes) get a coarser threshold and a floored
   denominator so 3 -> 4 passes is not a 33% "regression" panic but
   3 -> 7 still trips.  [wall_tasks_per_sec] is deliberately NOT listed:
   wall-clock throughput depends on the host, so it is recorded for
   transparency but never gated. *)
let checks =
  [
    (* name, worse-when-higher, threshold *)
    ("cycles", true, 0.02);
    ("speedup", false, 0.02);
    ("domains_speedup", false, 0.05);
    ("lane_occupancy", false, 0.02);
    ("compaction_passes", true, 0.10);
    ("space_peak", true, 0.10);
  ]

let value_of name (m : metrics) =
  match name with
  | "cycles" -> m.cycles
  | "speedup" -> m.speedup
  | "domains_speedup" -> m.domains_speedup
  | "lane_occupancy" -> m.lane_occupancy
  | "compaction_passes" -> float_of_int m.compaction_passes
  | "space_peak" -> float_of_int m.space_peak
  | _ -> invalid_arg ("Baseline.value_of: " ^ name)

(* Floors on the relative denominator, per metric: ratios over tiny bases
   explode (0 -> 1 compaction passes is not infinite regress). *)
let denom_floor = function
  | "compaction_passes" -> 1.0
  | "space_peak" -> 1.0
  | _ -> 1e-9

let hist_l1 a b =
  let sum h = Array.fold_left ( + ) 0 h in
  let ta = float_of_int (max 1 (sum a)) and tb = float_of_int (max 1 (sum b)) in
  let n = max (Array.length a) (Array.length b) in
  let get h i = if i < Array.length h then float_of_int h.(i) else 0.0 in
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    d := !d +. Float.abs ((get a i /. ta) -. (get b i /. tb))
  done;
  !d

let hist_threshold = 0.05

(* Serving latency is host wall clock, so unlike the modeled metrics it
   carries real measurement noise; the coarse thresholds (and the
   1 ms denominator floor, for quick-scale runs whose p50 sits well
   under a millisecond) catch structural regressions — a 2× tail blowup
   — not jitter. *)
let serve_checks = [ ("serve_p50_ms", 0.75); ("serve_p99_ms", 1.0) ]

let serve_value_of name (s : serve_latency) =
  match name with
  | "serve_p50_ms" -> s.serve_p50_ms
  | "serve_p99_ms" -> s.serve_p99_ms
  | _ -> invalid_arg ("Baseline.serve_value_of: " ^ name)

let serve_denom_floor = 1.0

(* Latency columns gate only when both entries carry them (old histories
   and serve-less collections stay comparable); mismatched loadgen
   profiles are a harness misuse, reported via [Error] by [check]. *)
let serve_verdicts ~tolerance ~(baseline : entry) ~(current : entry) =
  match (baseline.serve, current.serve) with
  | Some b, Some c ->
      List.map
        (fun (name, threshold) ->
          let bv = serve_value_of name b and cv = serve_value_of name c in
          let threshold = threshold *. tolerance in
          let denom = Float.max (Float.abs bv) serve_denom_floor in
          let delta = (cv -. bv) /. denom in
          {
            key = "serve";
            metric = name;
            baseline_v = bv;
            current_v = cv;
            delta;
            threshold;
            regressed = delta > threshold;
          })
        serve_checks
  | _ -> []

let check ?(tolerance = 1.0) ~baseline ~current () =
  if baseline.quick <> current.quick then
    Error
      (Printf.sprintf "scale mismatch: baseline is %s, current is %s"
         (if baseline.quick then "quick" else "full")
         (if current.quick then "quick" else "full"))
  else if baseline.block <> current.block then
    Error
      (Printf.sprintf "block mismatch: baseline uses %d, current uses %d"
         baseline.block current.block)
  else if
    match (baseline.serve, current.serve) with
    | Some b, Some c -> b.profile <> c.profile
    | _ -> false
  then
    Error
      (Printf.sprintf
         "serve profile mismatch: baseline under %S, current under %S"
         (match baseline.serve with Some b -> b.profile | None -> "")
         (match current.serve with Some c -> c.profile | None -> ""))
  else
    Ok
      (serve_verdicts ~tolerance ~baseline ~current
      @ List.concat_map
         (fun (key, (b : metrics)) ->
           match List.assoc_opt key current.benchmarks with
           | None ->
               (* A benchmark that vanished is the worst regression of all. *)
               [
                 {
                   key;
                   metric = "present";
                   baseline_v = 1.0;
                   current_v = 0.0;
                   delta = 1.0;
                   threshold = 0.0;
                   regressed = true;
                 };
               ]
           | Some c ->
               let scalar (name, worse_high, threshold) =
                 let bv = value_of name b and cv = value_of name c in
                 let threshold = threshold *. tolerance in
                 let denom = Float.max (Float.abs bv) (denom_floor name) in
                 let delta =
                   (if worse_high then cv -. bv else bv -. cv) /. denom
                 in
                 {
                   key;
                   metric = name;
                   baseline_v = bv;
                   current_v = cv;
                   delta;
                   threshold;
                   regressed = delta > threshold;
                 }
               in
               let hist =
                 let d = hist_l1 b.occupancy_hist c.occupancy_hist in
                 let threshold = hist_threshold *. tolerance in
                 {
                   key;
                   metric = "occupancy_hist";
                   baseline_v = 0.0;
                   current_v = 0.0;
                   delta = d;
                   threshold;
                   regressed = d > threshold;
                 }
               in
               List.map scalar checks @ [ hist ])
         baseline.benchmarks)

let regressions verdicts = List.filter (fun v -> v.regressed) verdicts

let pp_verdicts ppf verdicts =
  let bad = regressions verdicts in
  Format.fprintf ppf "%-24s %-18s %12s %12s %8s@." "BENCH/MACHINE" "METRIC"
    "BASELINE" "CURRENT" "DELTA";
  List.iter
    (fun v ->
      if v.regressed || v.metric = "present" then
        Format.fprintf ppf "%-24s %-18s %12.4g %12.4g %+7.1f%%  REGRESSED (>%g%%)@."
          v.key v.metric v.baseline_v v.current_v (100.0 *. v.delta)
          (100.0 *. v.threshold))
    verdicts;
  if bad = [] then
    Format.fprintf ppf "ok: %d checks within thresholds@." (List.length verdicts)
  else
    Format.fprintf ppf "%d of %d checks regressed@." (List.length bad)
      (List.length verdicts)
