type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* 17 significant digits round-trip any IEEE double exactly; force a
     marker so the parser can tell floats from ints *)
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf v;
  Buffer.contents buf

(* Pretty writer: 2-space indent, scalars rendered exactly as [to_string]
   so [parse (to_pretty_string v) = Ok v] holds whenever it does for the
   compact form. *)
let rec write_pretty buf ~indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          write_pretty buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape_string buf k;
          Buffer.add_string buf ": ";
          write_pretty buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_pretty_string v =
  let buf = Buffer.create 4096 in
  write_pretty buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a string cursor. *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" c.pos m))) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c "expected %C, found %C" ch x
  | None -> error c "expected %C, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c "bad literal (expected %s)" word

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char buf (Option.get (peek c));
            advance c;
            go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
            (* validate by hand: [int_of_string "0x.."] would both raise
               (escaping the result-returning [parse]) and accept OCaml
               underscore separators *)
            let hex ch =
              match ch with
              | '0' .. '9' -> Char.code ch - Char.code '0'
              | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
              | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
              | _ -> error c "bad \\u escape"
            in
            let code =
              let d i = hex c.src.[c.pos + i] in
              (d 0 lsl 12) lor (d 1 lsl 8) lor (d 2 lsl 4) lor d 3
            in
            c.pos <- c.pos + 4;
            (* cache keys/reports are ASCII; keep the low byte *)
            Buffer.add_char buf (Char.chr (code land 0xff));
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' | 'i' | 'n' | 'f' | 'a' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c "bad number %S" s)

(* Containers count toward a nesting budget so adversarial or corrupt
   input produces a typed parse error instead of a stack overflow (which
   OCaml cannot recover reliably across platforms). *)
let default_max_depth = 512

let rec parse_value c ~depth =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' ->
      (* [nan] is a float literal, [null] the JSON null *)
      if c.pos + 3 <= String.length c.src && String.sub c.src c.pos 3 = "nan" then
        parse_number c
      else literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
      if depth <= 0 then error c "nesting too deep";
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let items = ref [ parse_value c ~depth:(depth - 1) ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value c ~depth:(depth - 1) :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      if depth <= 0 then error c "nesting too deep";
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c ~depth:(depth - 1) in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some ch -> (
      match ch with
      | '0' .. '9' | '-' | 'i' -> parse_number c
      | _ -> error c "unexpected character %C" ch)

let parse ?(max_depth = default_max_depth) s =
  let c = { src = s; pos = 0 } in
  match parse_value c ~depth:max_depth with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error (Printf.sprintf "trailing garbage at %d" c.pos)
      else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member name = function
  | Obj fields -> ( match List.assoc_opt name fields with Some v -> v | None -> Null)
  | _ -> Null

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

(* Type mismatches raise a dedicated exception rather than [Failure]: a
   malformed persisted file is an expected input condition, and decoders
   must be able to catch it precisely — catching [Failure] would also
   swallow genuine programming errors (and a raw [Failure] escaping a
   decoder has killed whole sweeps). *)
exception Decode of string

let decode_error fmt = Printf.ksprintf (fun m -> raise (Decode m)) fmt

let fail_on what v = decode_error "Jsonx: expected %s, got %s" what (type_name v)

let to_int = function Int i -> i | v -> fail_on "int" v
let to_float = function Float f -> f | Int i -> float_of_int i | v -> fail_on "float" v
let to_bool = function Bool b -> b | v -> fail_on "bool" v
let to_str = function String s -> s | v -> fail_on "string" v
let to_list = function List l -> l | v -> fail_on "list" v
let obj_fields = function Obj f -> f | v -> fail_on "object" v
