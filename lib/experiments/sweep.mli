(** Memoized execution of benchmark × machine × strategy × block-size
    points.

    Every table and figure of the evaluation reads from the same sweep
    space, so one context computes each point once and the harness reuses
    it across Tables 1–3 and Figures 9–16.  [quick] mode substitutes
    small workloads (for smoke runs and the bechamel timing harness).

    The context is domain-safe: the memo tables are mutex-guarded, and
    {!prewarm} fans the independent simulations out over a
    {!Pool}-managed set of OCaml domains, after which the (serial)
    artifact generators run entirely against warm entries.  With a
    [cache_dir], points additionally persist across processes via
    {!Run_cache} — call {!persist} before exiting. *)

type key = {
  bench : string;
  machine : string;
  strategy : string;
  block : int;
  compact : string;
      (** the {e resolved} compaction engine name for engine runs (bfs /
          noreexp / reexp), so an explicit request for the machine's
          default engine shares the plain hybrid run's key; [""] for
          seq / strawman runs, which do not compact *)
  engine : string;
      (** execution-engine family — ["engine"] for every cost-model point
          (the cost simulator is the only family the disk cache stores);
          the field keeps the key space partitioned from any future
          persisted backend family *)
}

type ctx

val create :
  ?quick:bool ->
  ?jobs:int ->
  ?cache_dir:string option ->
  ?budgets:Vc_core.Supervisor.budgets ->
  ?faults:Vc_core.Fault.plan ->
  ?retries:int ->
  unit ->
  ctx
(** [quick] defaults to the [VC_BENCH_QUICK] environment variable.
    [jobs] (default 1) is the domain count used by {!prewarm}.
    [cache_dir] (default [None] = no persistence; the CLI passes
    [Some ".vc-cache"]) roots the on-disk run cache.

    [budgets] (default {!Vc_core.Supervisor.no_budgets}) applies the
    deadline / wall-clock / live-frame budgets to every engine point;
    a violation is fatal and propagates (exit-code 2 convention).
    [faults] arms fault injection in every engine point and the disk
    cache; fault-armed contexts never write the persistent cache (their
    recovered runs carry degraded cost numbers).  [retries] (default 0)
    is the per-task retry count {!prewarm} hands to the pool. *)

val quick : ctx -> bool
val jobs : ctx -> int

val simulations : ctx -> int
(** Fresh engine/sequential/strawman simulations executed by this context
    (excludes memo and disk-cache hits) — a warm rerun reports 0. *)

val cache_hits : ctx -> int
(** Points served from the persistent disk cache. *)

val failures : ctx -> Pool.failure list
(** Sweep points contained by {!prewarm} after exhausting their retries
    (chronological).  Empty on a healthy sweep.  A contained point is
    re-attempted on demand if a generator later reads it. *)

val key_string : ctx -> key -> string
(** The disk-cache encoding of [key]: the workload scale (quick/full)
    followed by the key fields. *)

val persist : ctx -> unit
(** Flush newly simulated points to the disk cache (no-op without one). *)

val runs : ctx -> (key * Vc_core.Report.t) list
(** Every memoized point, sorted by key — deterministic regardless of the
    schedule that produced it. *)

val machines : Vc_mem.Machine.t list
(** E5 and Phi, in that order. *)

val spec_of : ctx -> Vc_bench.Registry.entry -> Vc_core.Spec.t
(** The entry's spec at this context's scale (cached). *)

val width_on : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> int
(** SIMD lanes the benchmark's lane kind yields on the machine (Table 1's
    vector widths). *)

val blocks_of : ctx -> Vc_bench.Registry.entry -> int list
(** The block-size grid swept for this benchmark. *)

val seq : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> Vc_core.Report.t

val bfs_only : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> Vc_core.Report.t

val hybrid :
  ctx ->
  Vc_bench.Registry.entry ->
  Vc_mem.Machine.t ->
  reexpand:bool ->
  block:int ->
  Vc_core.Report.t

val hybrid_domains :
  ctx ->
  Vc_bench.Registry.entry ->
  Vc_mem.Machine.t ->
  block:int ->
  domains:int ->
  Vc_core.Report.t
(** The {!Vc_core.Domain_sched} hybrid multicore × SIMD point
    (re-expansion strategy, strategy key ["reexp+dN"]).  [domains = 1]
    executes the same fixed chunk set in one domain — deliberately NOT a
    {!hybrid} cache hit — so a d1/d2/d4 column reads as pure scaling of
    an identical workload.  Raises on a budget violation like the other
    engine points (pools contain it). *)

val with_compaction :
  ctx ->
  Vc_bench.Registry.entry ->
  Vc_mem.Machine.t ->
  compact:Vc_simd.Compact.engine ->
  block:int ->
  Vc_core.Report.t
(** Re-expansion strategy with an explicit compaction engine (Fig. 16).
    Requesting the machine's default engine is a cache hit on the plain
    {!hybrid} run at the same block. *)

val strawman : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> Vc_core.Report.t

val speedup : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> Vc_core.Report.t -> float
(** Modeled speedup over the same benchmark's sequential run on the same
    machine. *)

val backend_source :
  ctx -> Vc_bench.Registry.entry -> Vc_core.Backend.source * int array list
(** The entry as a wall-clock backend source at this context's scale:
    blocked IR plus root frames when the entry has a DSL form (where
    interpreted vs compiled dispatch actually differs), its native spec
    otherwise. *)

val backend_run :
  ?domains:int ->
  ctx ->
  Vc_bench.Registry.entry ->
  engine:string ->
  block:int ->
  Vc_core.Backend.result
(** One wall-clock backend point ([engine] = "blocked" | "compiled",
    re-expansion strategy at [block]), under the context's faults and
    wall/live budgets.  Memoized {e in-memory only} — wall-clock numbers
    are host-local and never touch the disk cache.  Raises
    [Invalid_argument] on an unknown engine name and {!Vc_core.Vc_error}
    errors like the engine points. *)

val best :
  ctx ->
  Vc_bench.Registry.entry ->
  Vc_mem.Machine.t ->
  reexpand:bool ->
  int * Vc_core.Report.t
(** (block size, report) maximizing modeled speedup over the grid. *)

type scope = [ `Seq_only | `Full ]

val prewarm : ?scope:scope -> ctx -> unit
(** Simulate every point the artifact generators will demand, in parallel
    over [jobs ctx] domains (serially, spawning nothing, when [jobs = 1]).
    [`Seq_only] covers Table 1 / Figure 9 (sequential baselines only);
    [`Full] (default) covers Tables 1–3, Figures 9–16, Ablation A1, and
    the claims checker.  Points already memoized or in the disk cache are
    skipped.  The resulting reports are identical to what a serial
    demand-driven run computes ({!runs} compares equal under
    {!Vc_core.Report.equal}). *)
