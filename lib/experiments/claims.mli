(** The paper's qualitative claims as executable checks.

    EXPERIMENTS.md argues the reproduction preserves the paper's *shape*
    claims; this module turns each claim into an assertion over a sweep
    context so `vcilk verify` (and CI) can re-check them mechanically.
    Each check returns a human-readable verdict; a claim that fails does
    not stop the others. *)

type verdict = { claim : string; holds : bool; evidence : string }

val all : Sweep.ctx -> verdict list
(** Runs every check (quick context recommended: a few minutes).  Claims
    covered: breadth-first-only is never the best strategy; re-expansion
    never loses to no-re-expansion at the respective best blocks and wins
    clearly on nqueens and graphcol; re-expansion reaches peak speedup at
    a block no larger than no-re-expansion's; knapsack triggers no
    re-expansions (balanced tree) and uts none either; utilization grows
    monotonically with block size (no re-expansion); vectorized stream
    compaction beats the sequential fallback, by more on fib than on
    nqueens; the strawman never beats the blocked transformation; every
    strategy returns the sequential run's exact reducer values. *)

val backend : Sweep.ctx -> engine:string -> verdict list
(** Wall-clock backend equivalence checks ([vcilk verify --engine ...]):
    the named backend ("blocked" | "compiled") reproduces the cost-model
    engine's reducer values and task counts on every benchmark at the
    default block, and — for ["compiled"] — matches the blocked
    interpreter on {e every} result field (scheduler counters included)
    on the DSL benchmarks, where compiled dispatch actually differs. *)

val pp : Format.formatter -> verdict list -> unit

val failures : verdict list -> int
