(** Versioned per-benchmark baseline metrics and the perf-regression gate.

    Each bench run can append a summary {!entry} — modeled cycles, speedup
    over sequential, lane occupancy, compaction passes, and the occupancy
    histogram for every benchmark × machine point — to a history file
    ([BENCH_history.json]), written crash-safely via
    {!Run_cache.save_atomic}.  [vcilk bench --check-baseline FILE] then
    compares a fresh collection against the last recorded entry with
    direction-aware relative thresholds and exits 3 on regression.

    The engine is a deterministic simulator, so baseline deltas are real
    code-behavior changes, not measurement noise; the thresholds exist to
    absorb intentional minor cost-model adjustments. *)

val version : int
(** Schema version of the history file; mismatches refuse to load. *)

type metrics = {
  cycles : float;  (** modeled cycles (hybrid re-expansion run) *)
  speedup : float;  (** over the same machine's sequential run *)
  domains_speedup : float;
      (** the {!Vc_core.Domain_sched} hybrid multicore × SIMD point at
          2 domains, over the same sequential run — gates multicore
          scaling alongside the single-core metrics (schema version 2) *)
  lane_occupancy : float;
  compaction_passes : int;
  space_peak : int;  (** peak live frames *)
  occupancy_hist : int array;  (** 10 deciles of per-op lane occupancy *)
  wall_tasks_per_sec : float;
      (** host wall-clock throughput of the hybrid run (tasks /
          {!Vc_core.Report.wall_seconds}); informational only — it is
          host-dependent, so {!check} never gates on it (schema
          version 3).  [0.0] when the run was served from the disk
          cache, which stores no wall clock. *)
}

type serve_latency = {
  profile : string;
      (** the loadgen profile the latencies were captured under
          (rps/duration/mix/engine/connections/quick folded into one
          comparison string) *)
  serve_p50_ms : float;
  serve_p99_ms : float;
}
(** Serving-path latency columns (schema version 4), captured by
    [vcilk loadgen --latency-json] and merged into an entry with
    {!with_serve}. *)

type entry = {
  label : string;  (** build provenance ({!Vc_core.Version.describe}) *)
  quick : bool;  (** workload scale the metrics were collected at *)
  block : int;  (** hybrid block size used for every point *)
  benchmarks : (string * metrics) list;
      (** keyed ["bench/machine"], sorted by key *)
  serve : serve_latency option;
      (** serving latency under a fixed loadgen profile; [None] when the
          entry was collected without a loadgen artifact *)
}

val default_block : int
(** Block size used by {!collect} unless overridden (256). *)

val collect : ?block:int -> Sweep.ctx -> entry
(** Run (or reuse from cache) the hybrid re-expansion point at [block]
    plus the sequential baseline for every registry benchmark on every
    machine, and summarize them as one history entry ([serve = None]). *)

val with_serve : entry -> serve:serve_latency -> entry

val serve_of_artifact : Jsonx.t -> serve_latency
(** Extract the latency columns from a parsed [BENCH_serve.json] body
    ({!Vc_serve.Loadgen.latency_json} shape).  Raises {!Jsonx.Decode} on
    a malformed artifact. *)

(** {2 History file} *)

val load : path:string -> (entry list, string) result
(** Read a history file.  A missing file is [Ok []]; an unreadable,
    unparseable, or version-mismatched file is [Error msg]. *)

val last : entry list -> entry option
(** The most recently appended entry. *)

val write : ?faults:Vc_core.Fault.plan -> path:string -> entry list -> unit
(** Replace the history crash-safely ({!Run_cache.save_atomic}). *)

val append : ?faults:Vc_core.Fault.plan -> path:string -> entry -> unit
(** [load] then [write] with [entry] at the end.  If the existing file is
    corrupt the append is dropped with a warning — history is never
    silently overwritten. *)

val json_of_entry : entry -> Jsonx.t

val entry_of_json : Jsonx.t -> entry
(** Raises {!Jsonx.Decode} on malformed input (callers go through {!load},
    which converts to [Error]). *)

(** {2 Regression check} *)

type verdict = {
  key : string;  (** ["bench/machine"] *)
  metric : string;
      (** one of cycles / speedup / lane_occupancy / compaction_passes /
          space_peak / occupancy_hist / present, or (key ["serve"])
          serve_p50_ms / serve_p99_ms *)
  baseline_v : float;
  current_v : float;
  delta : float;
      (** relative drift in the metric's {e bad} direction (positive =
          worse); for [occupancy_hist], the L1 distance between the
          normalized histograms *)
  threshold : float;  (** effective threshold after [tolerance] scaling *)
  regressed : bool;
}

val check :
  ?tolerance:float -> baseline:entry -> current:entry -> unit -> (verdict list, string) result
(** One verdict per baseline benchmark per metric.  Directions: cycles,
    compaction passes, and space peak regress {e upward}; speedup and
    lane occupancy regress {e downward}; the occupancy histogram regresses
    when the normalized L1 distance exceeds its threshold.  Improvements
    never regress.  A benchmark present in [baseline] but missing from
    [current] yields a single regressed ["present"] verdict.
    [tolerance] (default 1.0) scales every threshold.
    When {e both} entries carry {!serve_latency} columns under the same
    profile, serve_p50_ms/serve_p99_ms regress upward with coarse
    thresholds (75%/100% — host wall clock is noisy; the gate catches
    structural blowups, not jitter); a serve block on only one side is
    skipped.  [Error] when the entries are not comparable (quick/full,
    block-size, or loadgen-profile mismatch) — that is a harness misuse,
    not a perf regression. *)

val regressions : verdict list -> verdict list

val pp_verdicts : Format.formatter -> verdict list -> unit
(** Table of regressed checks plus a one-line summary. *)
