(** The persistent on-disk run cache ([.vc-cache/runs.json]).

    Every sweep point is a deterministic simulation, so its report can be
    reused across process invocations: [vcilk table 2] after [vcilk all]
    does zero engine simulations.  Entries are keyed by the string
    encoding of {!Sweep.key} plus the workload scale (see
    [Sweep.key_string]); the file carries a schema version and is
    discarded wholesale on mismatch (the invalidation rule — bump
    {!version} whenever the report layout or key schema changes).

    Wall-clock fields are excluded from the cached payload: a report
    loaded from the cache has [wall_seconds = 0.0], so cached and fresh
    reports compare equal under {!Vc_core.Report.equal}.

    A handle is domain-safe: [find]/[add] may be called concurrently from
    pool workers. *)

type t

val version : int
(** Current schema version of the cache file. *)

val json_of_report : Vc_core.Report.t -> Jsonx.t

val report_of_json : Jsonx.t -> (Vc_core.Report.t, string) result
(** Decode one cached report.  Malformed payloads (wrong arity pairs or
    triples, type mismatches) yield [Error msg] — never an exception —
    so {!load} can skip corrupt entries individually. *)

val load : ?faults:Vc_core.Fault.plan -> dir:string -> unit -> t
(** Open (or initialize) the cache rooted at [dir].  A missing, unreadable,
    corrupt, or version-mismatched [runs.json] yields an empty cache; the
    directory is created lazily by {!persist}.  [faults] arms the
    [Cache] injection site on the file read; an injected load fault is
    contained as "unreadable" (empty cache). *)

val find : t -> string -> Vc_core.Report.t option

val add : t -> string -> Vc_core.Report.t -> unit
(** Record a freshly simulated report under [key] and mark the handle
    dirty.  Last write wins on duplicate keys. *)

val entries : t -> int

val save_atomic : ?faults:Vc_core.Fault.plan -> path:string -> string -> unit
(** [save_atomic ~path payload] writes [payload] to [path] crash-safely:
    the bytes go to a pid-unique temp file in the same directory, are
    flushed and fsynced, then renamed over the target — readers never
    observe a partial file, and a failed write removes its temp file.
    The parent directory is created if missing (one level).  Shared by
    the run cache and the baseline bench history ({!Baseline}).
    [faults] arms the [Cache] injection site; injected persist faults
    with a [Retry] hint are retried up to 3 attempts before the typed
    error propagates. *)

val persist : ?faults:Vc_core.Fault.plan -> t -> unit
(** Write [dir/runs.json] crash-safely if any entry was added since
    [load]: the payload goes to a pid-unique temp file in the same
    directory, is flushed and fsynced, then renamed over the target —
    readers never observe a partial file, and a failed write removes its
    temp file.  No-op on a clean handle.  [faults] arms the [Cache]
    injection site; injected persist faults (hint [Retry]) are retried
    up to 3 attempts before the typed error propagates. *)
