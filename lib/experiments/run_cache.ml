(* 2: telemetry fields (reexp_count, compaction_calls/passes,
   occupancy_hist) added to the report payload. *)
let version = 2

let log_src = Logs.Src.create "vc.runcache" ~doc:"Persistent run cache"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  dir : string;
  lock : Mutex.t;
  table : (string, Vc_core.Report.t) Hashtbl.t;
  mutable dirty : bool;
}

let file t = Filename.concat t.dir "runs.json"

(* ------------------------------------------------------------------ *)
(* Report <-> Jsonx.  Field order and assoc-list order are preserved so a
   round-tripped report is structurally equal to the original (modulo
   [wall_seconds], deliberately dropped). *)

open Vc_core.Report

let json_of_report (r : Vc_core.Report.t) : Jsonx.t =
  Jsonx.Obj
    [
      ("benchmark", String r.benchmark);
      ("machine", String r.machine);
      ("strategy", String r.strategy);
      ("oom", Bool r.oom);
      ("reducers", List (List.map (fun (n, v) -> Jsonx.List [ String n; Int v ]) r.reducers));
      ("tasks", Int r.tasks);
      ("base_tasks", Int r.base_tasks);
      ("max_depth", Int r.max_depth);
      ("issue_cycles", Float r.issue_cycles);
      ("penalty_cycles", Float r.penalty_cycles);
      ("cycles", Float r.cycles);
      ("cpi", Float r.cpi);
      ("utilization", Float r.utilization);
      ("lane_occupancy", Float r.lane_occupancy);
      ("scalar_ops", Int r.scalar_ops);
      ("vector_ops", Int r.vector_ops);
      ("kernel_ops", Int r.kernel_ops);
      ( "cache",
        List
          (List.map
             (fun (l, a, m) -> Jsonx.List [ String l; Int a; Int m ])
             r.cache) );
      ( "miss_rates",
        List (List.map (fun (l, f) -> Jsonx.List [ String l; Float f ]) r.miss_rates) );
      ("space_peak", Int r.space_peak);
      ( "levels",
        List
          (Array.to_list r.levels
          |> List.map (fun (t, b) -> Jsonx.List [ Int t; Int b ])) );
      ( "reexpansions",
        List
          (Array.to_list r.reexpansions
          |> List.map (fun (d, c, f) -> Jsonx.List [ Int d; Int c; Float f ])) );
      ("reexp_count", Int r.reexp_count);
      ("compaction_calls", Int r.compaction_calls);
      ("compaction_passes", Int r.compaction_passes);
      ("occupancy_hist", List (Array.to_list r.occupancy_hist |> List.map (fun n -> Jsonx.Int n)));
    ]

(* Decoding failures travel on a result channel via {!Jsonx.Decode}: a
   corrupt entry must never look like a programming error to the caller,
   and load's salvage loop needs the message to report what it skipped. *)

let report_of_json (j : Jsonx.t) : (Vc_core.Report.t, string) result =
  let open Jsonx in
  let m name = member name j in
  let pair2 conv_a conv_b v =
    match to_list v with
    | [ a; b ] -> (conv_a a, conv_b b)
    | _ -> decode_error "bad pair (expected a 2-element list)"
  in
  let triple conv_a conv_b conv_c v =
    match to_list v with
    | [ a; b; c ] -> (conv_a a, conv_b b, conv_c c)
    | _ -> decode_error "bad triple (expected a 3-element list)"
  in
  try
    Ok
      {
    benchmark = to_str (m "benchmark");
    machine = to_str (m "machine");
    strategy = to_str (m "strategy");
    oom = to_bool (m "oom");
    reducers = List.map (pair2 to_str to_int) (to_list (m "reducers"));
    tasks = to_int (m "tasks");
    base_tasks = to_int (m "base_tasks");
    max_depth = to_int (m "max_depth");
    issue_cycles = to_float (m "issue_cycles");
    penalty_cycles = to_float (m "penalty_cycles");
    cycles = to_float (m "cycles");
    cpi = to_float (m "cpi");
    utilization = to_float (m "utilization");
    lane_occupancy = to_float (m "lane_occupancy");
    scalar_ops = to_int (m "scalar_ops");
    vector_ops = to_int (m "vector_ops");
    kernel_ops = to_int (m "kernel_ops");
    cache = List.map (triple to_str to_int to_int) (to_list (m "cache"));
    miss_rates = List.map (pair2 to_str to_float) (to_list (m "miss_rates"));
    space_peak = to_int (m "space_peak");
    levels = Array.of_list (List.map (pair2 to_int to_int) (to_list (m "levels")));
    reexpansions =
      Array.of_list (List.map (triple to_int to_int to_float) (to_list (m "reexpansions")));
    reexp_count = to_int (m "reexp_count");
    compaction_calls = to_int (m "compaction_calls");
    compaction_passes = to_int (m "compaction_passes");
        occupancy_hist = Array.of_list (List.map to_int (to_list (m "occupancy_hist")));
        wall_seconds = 0.0;
      }
  with Jsonx.Decode msg -> Error msg

(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ?(faults = Vc_core.Fault.none) ~dir () =
  let t = { dir; lock = Mutex.create (); table = Hashtbl.create 256; dirty = false } in
  let path = file t in
  (if Sys.file_exists path then
     match
       Vc_core.Fault.trip faults Vc_core.Fault.Cache ~phase:Vc_core.Vc_error.Load
         ~hint:Vc_core.Vc_error.Discard_entry ~detail:path;
       Jsonx.parse (read_file path)
     with
     | Ok j when Jsonx.(member "version" j = Int version) -> (
         match Jsonx.member "runs" j with
         | Jsonx.Obj runs ->
             let skipped = ref 0 in
             List.iter
               (fun (key, rj) ->
                 match report_of_json rj with
                 | Ok r -> Hashtbl.replace t.table key r
                 | Error msg ->
                     (* skip corrupt entries, keep the rest *)
                     incr skipped;
                     Log.debug (fun m -> m "%s: entry %s: %s" path key msg))
               runs;
             if !skipped > 0 then
               Log.warn (fun m ->
                   m "%s: skipped %d corrupt cache entr%s (kept %d)" path !skipped
                     (if !skipped = 1 then "y" else "ies")
                     (Hashtbl.length t.table))
         | _ ->
             Log.warn (fun m -> m "%s: no \"runs\" object; starting empty" path))
     | Ok _ ->
         (* stale or missing version: discard wholesale (the invalidation
            rule), silently — this is the normal upgrade path *)
         Log.debug (fun m -> m "%s: version mismatch; starting empty" path)
     | Error msg ->
         Log.warn (fun m -> m "%s: unparseable run cache (%s); starting empty" path msg)
     | exception exn ->
         Log.warn (fun m ->
             m "%s: failed to read run cache (%s); starting empty" path
               (Printexc.to_string exn)));
  t

let find t key = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key)

let add t key report =
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.table key report;
      t.dirty <- true)

let entries t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let max_persist_attempts = 3

(* Crash-safe write, shared by the run cache and the baseline history: a
   pid-unique temp file in the destination's directory (rename is only
   atomic within a filesystem), flushed and fsynced before the rename,
   and removed if anything goes wrong — a reader never observes a
   partial file.  Injected cache-I/O faults with a Retry hint are
   retried up to {!max_persist_attempts} times. *)
let save_atomic ?(faults = Vc_core.Fault.none) ~path payload =
  let dir = Filename.dirname path in
  (if dir <> "" && dir <> "." && not (Sys.file_exists dir) then
     try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write_once () =
    Vc_core.Fault.trip faults Vc_core.Fault.Cache ~phase:Vc_core.Vc_error.Persist
      ~hint:Vc_core.Vc_error.Retry ~detail:path;
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    (try
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           output_string oc payload;
           flush oc;
           Unix.fsync (Unix.descr_of_out_channel oc))
     with exn ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise exn);
    Sys.rename tmp path
  in
  let rec attempt n =
    try write_once ()
    with
    | Vc_core.Vc_error.Error
        {
          Vc_core.Vc_error.kind =
            Vc_core.Vc_error.Fault { hint = Vc_core.Vc_error.Retry; _ };
          _;
        } as exn
    ->
      if n >= max_persist_attempts then raise exn
      else begin
        Log.warn (fun m ->
            m "%s: persist fault, retrying (attempt %d/%d)" path (n + 1)
              max_persist_attempts);
        attempt (n + 1)
      end
  in
  attempt 1

let persist ?(faults = Vc_core.Fault.none) t =
  Mutex.protect t.lock @@ fun () ->
  if t.dirty then begin
    let runs =
      Hashtbl.fold (fun k r acc -> (k, json_of_report r) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let doc = Jsonx.Obj [ ("version", Int version); ("runs", Obj runs) ] in
    save_atomic ~faults ~path:(file t) (Jsonx.to_string doc);
    t.dirty <- false
  end
