let default_jobs () = Domain.recommended_domain_count ()

let run_serial tasks = List.iter (fun f -> f ()) tasks

let run ~jobs tasks =
  let n = List.length tasks in
  if jobs <= 1 || n < 2 then run_serial tasks
  else begin
    let tasks = Array.of_list tasks in
    let next = Atomic.make 0 in
    let failure : exn option Atomic.t = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          try tasks.(i) ()
          with e ->
            (* keep the first failure; losing later ones is fine — the
               sweep aborts on any *)
            ignore (Atomic.compare_and_set failure None (Some e))
      done
    in
    let domains =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end
