let log_src = Logs.Src.create "vc.pool" ~doc:"Domain work-queue pool"

module Log = (val Logs.src_log log_src : Logs.LOG)

let default_jobs () = Domain.recommended_domain_count ()

type failure = { index : int; attempts : int; error : Vc_core.Vc_error.t }

let is_budget_exn = function
  | Vc_core.Vc_error.Error e -> Vc_core.Vc_error.is_budget e
  | _ -> false

(* Which budget violations abort a whole queue?  Time-like budgets
   (modeled or wall deadlines, the live-frame cap): they exist to stop a
   sweep from burning capped time, and every remaining task shares them.
   Per-run resource exhaustion (task budget, modeled memory) only says
   this POINT is too big — the rest of the sweep is unaffected, so
   [run_collect] contains it like any other per-task failure. *)
let is_fatal_budget_exn = function
  | Vc_core.Vc_error.Error
      {
        kind =
          Vc_core.Vc_error.Budget_exceeded
            {
              resource =
                ( Vc_core.Vc_error.Deadline_cycles | Vc_core.Vc_error.Deadline_wall
                | Vc_core.Vc_error.Live_frames );
              _;
            };
        _;
      } ->
      true
  | _ -> false

(* Run one task, retrying transient failures with exponential backoff.
   Budget violations are deterministic — the same deadline fires again on
   every retry — so they are never retried; they re-raise immediately.
   Injected faults, by contrast, CAN succeed on retry: the fault plan's
   call counters have advanced, so the replay sees a different pattern. *)
let try_task ~retries ~backoff index f : (unit, exn * int) result =
  let rec go attempt =
    match f () with
    | () -> Ok ()
    | exception exn when is_budget_exn exn -> raise exn
    | exception exn ->
        if attempt <= retries then begin
          Log.info (fun m ->
              m "task %d failed (%s); retry %d/%d" index (Printexc.to_string exn)
                attempt retries);
          if backoff > 0.0 then
            Unix.sleepf (backoff *. (2.0 ** float_of_int (attempt - 1)));
          go (attempt + 1)
        end
        else Error (exn, attempt)
  in
  go 1

let run ?(retries = 0) ?(backoff = 0.0) ~jobs tasks =
  let n = List.length tasks in
  if jobs <= 1 || n < 2 then
    List.iteri
      (fun i f ->
        match try_task ~retries ~backoff i f with
        | Ok () -> ()
        | Error (exn, _) -> raise exn)
      tasks
  else begin
    let tasks = Array.of_list tasks in
    let next = Atomic.make 0 in
    let failure : exn option Atomic.t = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match try_task ~retries ~backoff i tasks.(i) with
          | Ok () -> ()
          | Error (exn, _) ->
              (* keep the first failure; losing later ones is fine — the
                 sweep aborts on any *)
              ignore (Atomic.compare_and_set failure None (Some exn))
          | exception exn ->
              (* budget violation: deterministic, abort the whole queue *)
              ignore (Atomic.compare_and_set failure None (Some exn))
      done
    in
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end

let run_collect ?(retries = 0) ?(backoff = 0.0) ~jobs tasks =
  let n = List.length tasks in
  let lock = Mutex.create () in
  let failures = ref [] in
  let fatal : exn option Atomic.t = Atomic.make None in
  let contain i exn attempts =
    if is_fatal_budget_exn exn then
      (* deadline-like budgets abort the queue — containing them would let
         a sweep keep burning time the user explicitly capped *)
      ignore (Atomic.compare_and_set fatal None (Some exn))
    else begin
      let error = Vc_core.Vc_error.of_exn ~phase:Vc_core.Vc_error.Execute exn in
      Log.warn (fun m ->
          m "task %d failed permanently after %d attempt%s: %s" i attempts
            (if attempts = 1 then "" else "s")
            (Vc_core.Vc_error.to_string error));
      Mutex.protect lock (fun () ->
          failures := { index = i; attempts; error } :: !failures)
    end
  in
  let exec i f =
    match try_task ~retries ~backoff i f with
    | Ok () -> ()
    | Error (exn, attempts) -> contain i exn attempts
    | exception exn -> contain i exn 1
  in
  if jobs <= 1 || n < 2 then
    List.iteri (fun i f -> if Atomic.get fatal = None then exec i f) tasks
  else begin
    let tasks = Array.of_list tasks in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get fatal <> None then continue := false
        else exec i tasks.(i)
      done
    in
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  match Atomic.get fatal with
  | Some e -> raise e
  | None -> List.sort (fun a b -> compare a.index b.index) !failures
