let log_src = Logs.Src.create "vc.pool" ~doc:"Domain work-queue pool"

module Log = (val Logs.src_log log_src : Logs.LOG)

let default_jobs () = Domain.recommended_domain_count ()

type failure = { index : int; attempts : int; error : Vc_core.Vc_error.t }

let is_budget_exn = function
  | Vc_core.Vc_error.Error e -> Vc_core.Vc_error.is_budget e
  | _ -> false

(* Which budget violations abort a whole queue?  Time-like budgets
   (modeled or wall deadlines, the live-frame cap): they exist to stop a
   sweep from burning capped time, and every remaining task shares them.
   Per-run resource exhaustion (task budget, modeled memory) only says
   this POINT is too big — the rest of the sweep is unaffected, so
   [run_collect] contains it like any other per-task failure. *)
let is_fatal_budget_exn = function
  | Vc_core.Vc_error.Error
      {
        kind =
          Vc_core.Vc_error.Budget_exceeded
            {
              resource =
                ( Vc_core.Vc_error.Deadline_cycles | Vc_core.Vc_error.Deadline_wall
                | Vc_core.Vc_error.Live_frames );
              _;
            };
        _;
      } ->
      true
  | _ -> false

(* Deterministic per-task uniform stream for the retry jitter: xorshift64*
   seeded from (jitter_seed, task index), so reruns of the same queue
   replay the same sleep pattern while different tasks stay decorrelated. *)
let jitter_stream ~seed ~index =
  let state =
    ref
      (Int64.logor
         (Int64.of_int (((seed * 0x9e3779b9) lxor (index * 0x85ebca6b)) land max_int))
         1L)
  in
  fun () ->
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_float (Int64.shift_right_logical x 11) /. 9007199254740992.0

(* Decorrelated-jitter retry sleeps: attempt n sleeps uniform(base,
   min(cap, 3 * previous sleep)) instead of the old deterministic
   base * 2^(n-1).  Deterministic backoff synchronized retries across
   pool workers under chaos — every worker that faulted on the same
   injected pattern woke at the same instant and collided again; jitter
   spreads the herd while the seed keeps tests reproducible. *)
let backoff_cap_factor = 16.0

let try_task ?(jitter_seed = 0) ~retries ~backoff index f :
    (unit, exn * int) result =
  let next_u = jitter_stream ~seed:jitter_seed ~index in
  let cap = backoff *. backoff_cap_factor in
  let prev_sleep = ref backoff in
  let rec go attempt =
    match f () with
    | () -> Ok ()
    | exception exn when is_budget_exn exn -> raise exn
    | exception exn ->
        if attempt <= retries then begin
          Log.info (fun m ->
              m "task %d failed (%s); retry %d/%d" index (Printexc.to_string exn)
                attempt retries);
          if backoff > 0.0 then begin
            let hi = Float.min cap (Float.max backoff (!prev_sleep *. 3.0)) in
            let sleep = backoff +. ((hi -. backoff) *. next_u ()) in
            prev_sleep := sleep;
            Unix.sleepf sleep
          end;
          go (attempt + 1)
        end
        else Error (exn, attempt)
  in
  go 1

let run ?(retries = 0) ?(backoff = 0.0) ?jitter_seed ~jobs tasks =
  let n = List.length tasks in
  if jobs <= 1 || n < 2 then
    List.iteri
      (fun i f ->
        match try_task ?jitter_seed ~retries ~backoff i f with
        | Ok () -> ()
        | Error (exn, _) -> raise exn)
      tasks
  else begin
    let tasks = Array.of_list tasks in
    let next = Atomic.make 0 in
    let failure : exn option Atomic.t = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match try_task ?jitter_seed ~retries ~backoff i tasks.(i) with
          | Ok () -> ()
          | Error (exn, _) ->
              (* keep the first failure; losing later ones is fine — the
                 sweep aborts on any *)
              ignore (Atomic.compare_and_set failure None (Some exn))
          | exception exn ->
              (* budget violation: deterministic, abort the whole queue *)
              ignore (Atomic.compare_and_set failure None (Some exn))
      done
    in
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end

let run_collect ?(retries = 0) ?(backoff = 0.0) ?jitter_seed ~jobs tasks =
  let n = List.length tasks in
  let lock = Mutex.create () in
  let failures = ref [] in
  let fatal : exn option Atomic.t = Atomic.make None in
  let contain i exn attempts =
    if is_fatal_budget_exn exn then
      (* deadline-like budgets abort the queue — containing them would let
         a sweep keep burning time the user explicitly capped *)
      ignore (Atomic.compare_and_set fatal None (Some exn))
    else begin
      let error = Vc_core.Vc_error.of_exn ~phase:Vc_core.Vc_error.Execute exn in
      Log.warn (fun m ->
          m "task %d failed permanently after %d attempt%s: %s" i attempts
            (if attempts = 1 then "" else "s")
            (Vc_core.Vc_error.to_string error));
      Mutex.protect lock (fun () ->
          failures := { index = i; attempts; error } :: !failures)
    end
  in
  let exec i f =
    match try_task ?jitter_seed ~retries ~backoff i f with
    | Ok () -> ()
    | Error (exn, attempts) -> contain i exn attempts
    | exception exn -> contain i exn 1
  in
  if jobs <= 1 || n < 2 then
    List.iteri (fun i f -> if Atomic.get fatal = None then exec i f) tasks
  else begin
    let tasks = Array.of_list tasks in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get fatal <> None then continue := false
        else exec i tasks.(i)
      done
    in
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  match Atomic.get fatal with
  | Some e -> raise e
  | None -> List.sort (fun a b -> compare a.index b.index) !failures

(* ------------------------------------------------------------------ *)
(* Persistent worker pool (the serve daemon's execution substrate).

   Unlike [run]/[run_collect] — which spawn domains per call and join
   them before returning — a [worker_pool] keeps its domains alive across
   an unbounded stream of independently submitted jobs, so per-request
   state that is expensive to warm (shuffle/prefix tables, the sweep
   memo, the run cache) stays hot between requests.

   Containment contract: a job that raises NEVER kills its worker domain;
   the exception is logged and the domain moves on to the next job.
   Callers that need the error (the daemon does) must catch inside the
   job closure — by the time a job runs there is no submitter to
   re-raise into. *)

type worker_pool = {
  wp_lock : Mutex.t;
  wp_nonempty : Condition.t;  (* signaled on submit and on drain *)
  wp_idle : Condition.t;  (* signaled when the pool goes quiescent *)
  wp_queue : (unit -> unit) Queue.t;
  mutable wp_pending : int;  (* submitted, not yet started *)
  mutable wp_active : int;  (* currently executing *)
  mutable wp_draining : bool;
  mutable wp_domains : unit Domain.t list;
}

let pool_worker wp () =
  let running = ref true in
  while !running do
    Mutex.lock wp.wp_lock;
    while Queue.is_empty wp.wp_queue && not wp.wp_draining do
      Condition.wait wp.wp_nonempty wp.wp_lock
    done;
    if Queue.is_empty wp.wp_queue then begin
      (* draining and nothing left: exit the domain *)
      running := false;
      Mutex.unlock wp.wp_lock
    end
    else begin
      let job = Queue.pop wp.wp_queue in
      wp.wp_pending <- wp.wp_pending - 1;
      wp.wp_active <- wp.wp_active + 1;
      Mutex.unlock wp.wp_lock;
      (try job ()
       with exn ->
         (* worker-death containment: the job dies, the domain survives *)
         Log.warn (fun m ->
             m "pool job died (contained): %s" (Printexc.to_string exn)));
      Mutex.lock wp.wp_lock;
      wp.wp_active <- wp.wp_active - 1;
      if wp.wp_active = 0 && Queue.is_empty wp.wp_queue then
        Condition.broadcast wp.wp_idle;
      Mutex.unlock wp.wp_lock
    end
  done

let start_pool ~workers () =
  let wp =
    {
      wp_lock = Mutex.create ();
      wp_nonempty = Condition.create ();
      wp_idle = Condition.create ();
      wp_queue = Queue.create ();
      wp_pending = 0;
      wp_active = 0;
      wp_draining = false;
      wp_domains = [];
    }
  in
  wp.wp_domains <-
    List.init (max 1 workers) (fun _ -> Domain.spawn (pool_worker wp));
  wp

let submit wp job =
  Mutex.protect wp.wp_lock (fun () ->
      if wp.wp_draining then `Draining
      else begin
        Queue.push job wp.wp_queue;
        wp.wp_pending <- wp.wp_pending + 1;
        Condition.signal wp.wp_nonempty;
        `Queued
      end)

let pool_pending wp = Mutex.protect wp.wp_lock (fun () -> wp.wp_pending)
let pool_active wp = Mutex.protect wp.wp_lock (fun () -> wp.wp_active)

let pool_quiesce wp =
  Mutex.lock wp.wp_lock;
  while wp.wp_pending > 0 || wp.wp_active > 0 do
    Condition.wait wp.wp_idle wp.wp_lock
  done;
  Mutex.unlock wp.wp_lock

let drain_pool wp =
  Mutex.protect wp.wp_lock (fun () ->
      wp.wp_draining <- true;
      Condition.broadcast wp.wp_nonempty);
  List.iter Domain.join wp.wp_domains;
  wp.wp_domains <- []
