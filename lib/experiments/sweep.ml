open Vc_bench

type key = {
  bench : string;
  machine : string;
  strategy : string;
  block : int;
  compact : string;
  engine : string;
}

type ctx = {
  quick : bool;
  jobs : int;
  budgets : Vc_core.Supervisor.budgets;
  faults : Vc_core.Fault.plan;
  retries : int;
  specs : (string, Vc_core.Spec.t) Hashtbl.t;
  runs : (key, Vc_core.Report.t) Hashtbl.t;
  backend_runs : (string * string * int, Vc_core.Backend.result) Hashtbl.t;
  lock : Mutex.t;
  disk : Run_cache.t option;
  mutable simulated : int;
  mutable disk_hits : int;
  mutable failed : Pool.failure list;
}

let create ?quick ?(jobs = 1) ?(cache_dir = None)
    ?(budgets = Vc_core.Supervisor.no_budgets) ?(faults = Vc_core.Fault.none)
    ?(retries = 0) () =
  let quick =
    match quick with
    | Some q -> q
    | None -> (
        match Sys.getenv_opt "VC_BENCH_QUICK" with
        | Some ("1" | "true" | "yes") -> true
        | _ -> false)
  in
  {
    quick;
    jobs = max 1 jobs;
    budgets;
    faults;
    retries;
    specs = Hashtbl.create 16;
    runs = Hashtbl.create 256;
    backend_runs = Hashtbl.create 32;
    lock = Mutex.create ();
    disk = Option.map (fun dir -> Run_cache.load ~faults ~dir ()) cache_dir;
    simulated = 0;
    disk_hits = 0;
    failed = [];
  }

let quick ctx = ctx.quick
let jobs ctx = ctx.jobs
let simulations ctx = Mutex.protect ctx.lock (fun () -> ctx.simulated)
let cache_hits ctx = Mutex.protect ctx.lock (fun () -> ctx.disk_hits)
let failures ctx = Mutex.protect ctx.lock (fun () -> List.rev ctx.failed)

let key_string ctx key =
  Printf.sprintf "%s|%s|%s|%s|%d|%s|%s"
    (if ctx.quick then "quick" else "full")
    key.bench key.machine key.strategy key.block key.compact key.engine

let persist ctx = Option.iter (Run_cache.persist ~faults:ctx.faults) ctx.disk

(* The supervised-engine knobs every engine point shares.  Fault-armed
   runs recover to correct reducer values but with degraded (partly
   scalar) cost numbers, so they must never be persisted — a later
   fault-free process would read them as genuine measurements. *)
let engine_args ctx =
  ( ctx.faults,
    ctx.budgets.Vc_core.Supervisor.deadline,
    ctx.budgets.Vc_core.Supervisor.wall_deadline,
    ctx.budgets.Vc_core.Supervisor.max_live_frames )

let runs ctx =
  Mutex.protect ctx.lock (fun () ->
      Hashtbl.fold (fun k r acc -> (k, r) :: acc) ctx.runs [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let machines = [ Vc_mem.Machine.xeon_e5; Vc_mem.Machine.xeon_phi ]

(* Small workloads for smoke runs and the bechamel harness. *)
let quick_spec name =
  match name with
  | "knapsack" -> Knapsack.spec { Knapsack.n = 13; capacity_ratio = 0.5; seed = 1 }
  | "fib" -> Fib.spec { Fib.n = 20 }
  | "parentheses" -> Parentheses.spec { Parentheses.pairs = 9 }
  | "nqueens" -> Nqueens.spec { Nqueens.n = 9 }
  | "graphcol" ->
      Graphcol.spec { Graphcol.vertices = 16; edges = 28; colors = 3; seed = 7 }
  | "uts" -> Uts.spec { Uts.b0 = 64; m = 4; q = 0.24; seed = 5 }
  | "binomial" -> Binomial.spec { Binomial.n = 16; k = 7 }
  | "minmax" -> Minmax.spec { Minmax.size = 3 }
  | _ -> invalid_arg ("Sweep.quick_spec: unknown benchmark " ^ name)

let spec_of ctx (entry : Registry.entry) =
  let name = entry.Registry.name in
  match Mutex.protect ctx.lock (fun () -> Hashtbl.find_opt ctx.specs name) with
  | Some spec -> spec
  | None ->
      (* built outside the lock (construction may be expensive); a racing
         domain at worst builds the same deterministic spec twice and the
         first insertion wins *)
      let spec =
        if ctx.quick then
          match quick_spec name with
          | spec -> spec
          | exception Invalid_argument _ -> (
              (* runtime-loaded workload: its reduced scale comes from the
                 spec block's quick inputs, via the attached DSL *)
              match entry.Registry.dsl with
              | Some dsl ->
                  let p, roots = dsl ~quick:true in
                  let args =
                    match roots with r :: _ -> Array.to_list r | [] -> []
                  in
                  let s = Vc_core.Compile.spec_of_program ~name p ~args in
                  { s with Vc_core.Spec.roots = roots }
              | None -> entry.Registry.spec ())
        else entry.Registry.spec ()
      in
      Mutex.protect ctx.lock (fun () ->
          match Hashtbl.find_opt ctx.specs name with
          | Some spec -> spec
          | None ->
              Hashtbl.add ctx.specs name spec;
              spec)

let width_on ctx entry (machine : Vc_mem.Machine.t) =
  let spec = spec_of ctx entry in
  Vc_simd.Isa.lanes machine.Vc_mem.Machine.isa
    (Vc_core.Schema.lane_kind spec.Vc_core.Spec.schema)

let blocks_of ctx (entry : Registry.entry) =
  if ctx.quick then
    List.filter (fun b -> b <= 4096) entry.Registry.sweep_blocks
  else entry.Registry.sweep_blocks

(* The compaction engine {!Vc_core.Engine.run} actually selects when none
   is given.  Recorded in every engine-run key so that an explicit
   [with_compaction] request for the machine's default engine resolves to
   the same key as the plain hybrid run — previously those were two keys
   ({strategy="reexp"; compact=<name>} vs compact="") and the identical
   simulation ran twice (e.g. Fig. 16 vs Table 2 points). *)
let resolved_compact ctx entry (machine : Vc_mem.Machine.t) =
  Vc_simd.Compact.name
    (Vc_simd.Compact.default_for machine.Vc_mem.Machine.isa
       ~width:(width_on ctx entry machine))

let cached ctx key f =
  match Mutex.protect ctx.lock (fun () -> Hashtbl.find_opt ctx.runs key) with
  | Some r -> r
  | None -> (
      let from_disk =
        match ctx.disk with
        | Some d -> Run_cache.find d (key_string ctx key)
        | None -> None
      in
      (* simulate outside the lock; concurrent prewarm tasks never share a
         key, so duplicated work is possible only on racing demand paths
         and is resolved by first-insertion-wins *)
      let fresh, r = match from_disk with Some r -> (false, r) | None -> (true, f ()) in
      Mutex.protect ctx.lock @@ fun () ->
      match Hashtbl.find_opt ctx.runs key with
      | Some r -> r
      | None ->
          Hashtbl.add ctx.runs key r;
          if fresh then begin
            ctx.simulated <- ctx.simulated + 1;
            if not (Vc_core.Fault.armed ctx.faults) then
              Option.iter (fun d -> Run_cache.add d (key_string ctx key) r) ctx.disk
          end
          else ctx.disk_hits <- ctx.disk_hits + 1;
          r)

let seq ctx entry (machine : Vc_mem.Machine.t) =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = "seq";
      block = 0;
      compact = "";
      engine = "engine";
    }
  in
  cached ctx key (fun () -> Vc_core.Seq_exec.run ~spec:(spec_of ctx entry) ~machine ())

let bfs_only ctx entry (machine : Vc_mem.Machine.t) =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = "bfs";
      block = 0;
      compact = resolved_compact ctx entry machine;
      engine = "engine";
    }
  in
  cached ctx key (fun () ->
      let faults, deadline, wall_deadline, max_live_frames = engine_args ctx in
      Vc_core.Engine.run ~faults ?deadline ?wall_deadline ?max_live_frames
        ~spec:(spec_of ctx entry) ~machine ~strategy:Vc_core.Policy.Bfs_only ())

let hybrid ctx entry (machine : Vc_mem.Machine.t) ~reexpand ~block =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = (if reexpand then "reexp" else "noreexp");
      block;
      compact = resolved_compact ctx entry machine;
      engine = "engine";
    }
  in
  cached ctx key (fun () ->
      let faults, deadline, wall_deadline, max_live_frames = engine_args ctx in
      Vc_core.Engine.run ~faults ?deadline ?wall_deadline ?max_live_frames
        ~spec:(spec_of ctx entry) ~machine
        ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand })
        ())

(* The hybrid multicore × SIMD scheduler point.  Note [domains = 1] is
   NOT the plain {!hybrid} run: it executes the same fixed chunk set in
   one domain, so the d1/d2/d4 family shares everything but the schedule
   model and the speedup column reads as pure scaling.  The strategy key
   carries the domain count — modeled cycles depend on it. *)
let hybrid_domains ctx entry (machine : Vc_mem.Machine.t) ~block ~domains =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = Printf.sprintf "reexp+d%d" domains;
      block;
      compact = resolved_compact ctx entry machine;
      engine = "engine";
    }
  in
  cached ctx key (fun () ->
      let faults, deadline, wall_deadline, max_live_frames = engine_args ctx in
      let result =
        Vc_core.Domain_sched.run ~faults ?deadline ?wall_deadline
          ?max_live_frames ~spec:(spec_of ctx entry) ~machine
          ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand = true })
          ~domains ()
      in
      result.Vc_core.Domain_sched.report)

let with_compaction ctx entry (machine : Vc_mem.Machine.t) ~compact ~block =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = "reexp";
      block;
      compact = Vc_simd.Compact.name compact;
      engine = "engine";
    }
  in
  cached ctx key (fun () ->
      let faults, deadline, wall_deadline, max_live_frames = engine_args ctx in
      Vc_core.Engine.run ~compact ~faults ?deadline ?wall_deadline ?max_live_frames
        ~spec:(spec_of ctx entry) ~machine
        ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand = true })
        ())

let strawman ctx entry (machine : Vc_mem.Machine.t) =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = "strawman";
      block = 0;
      compact = "";
      engine = "engine";
    }
  in
  cached ctx key (fun () -> Vc_core.Strawman.run ~spec:(spec_of ctx entry) ~machine ())

let speedup ctx entry machine report =
  Vc_core.Report.speedup ~baseline:(seq ctx entry machine) report

(* ------------------------------------------------------------------ *)
(* Wall-clock backend points ({!Vc_core.Backend}).  These are memoized
   in-memory only: their [wall_seconds] is a property of the host the
   process runs on, so persisting them through the disk cache would
   serve one machine's timings as another's measurements. *)

let backend_source ctx (entry : Registry.entry) =
  match entry.Registry.dsl with
  | Some dsl ->
      (* DSL benchmarks run as blocked IR — the pair where interpreted
         vs compiled dispatch actually differs *)
      let program, roots = dsl ~quick:ctx.quick in
      (Vc_core.Backend.Ir (Vc_core.Transform.transform program), roots)
  | None ->
      let spec = spec_of ctx entry in
      (Vc_core.Backend.Native spec, spec.Vc_core.Spec.roots)

let backend_of_name engine =
  match Vc_core.Backend.find engine with
  | Some b -> b
  | None -> invalid_arg ("Sweep.backend_run: unknown engine " ^ engine)

let backend_run ?domains ctx (entry : Registry.entry) ~engine ~block =
  let memo_key = (entry.Registry.name, engine, block) in
  match
    Mutex.protect ctx.lock (fun () -> Hashtbl.find_opt ctx.backend_runs memo_key)
  with
  | Some r -> r
  | None ->
      let backend = backend_of_name engine in
      let source, roots = backend_source ctx entry in
      let opts =
        {
          Vc_core.Backend.default_opts with
          strategy = Vc_core.Policy.Hybrid { max_block = block; reexpand = true };
          faults = ctx.faults;
          wall_deadline = ctx.budgets.Vc_core.Supervisor.wall_deadline;
          max_live_frames = ctx.budgets.Vc_core.Supervisor.max_live_frames;
          domains;
        }
      in
      let r = Vc_core.Backend.timed_run ~opts backend source ~roots in
      Mutex.protect ctx.lock (fun () ->
          match Hashtbl.find_opt ctx.backend_runs memo_key with
          | Some r -> r
          | None ->
              Hashtbl.add ctx.backend_runs memo_key r;
              r)

let best ctx entry machine ~reexpand =
  let candidates =
    List.map
      (fun block ->
        let r = hybrid ctx entry machine ~reexpand ~block in
        (block, r, speedup ctx entry machine r))
      (blocks_of ctx entry)
  in
  match candidates with
  | [] -> invalid_arg "Sweep.best: empty block grid"
  | first :: rest ->
      let block, report, _ =
        List.fold_left
          (fun (bb, br, bs) (block, r, s) ->
            if s > bs then (block, r, s) else (bb, br, bs))
          first rest
      in
      (block, report)

(* ------------------------------------------------------------------ *)
(* Parallel prewarm: enumerate the sweep space the artifact generators
   demand, fan the missing points out over the domain pool, and let the
   (serial) generators run against a fully warm memo table.

   Benchmarks whose strawman / compaction points the artifacts actually
   read (Ablation A1, Fig. 16, the claims checker). *)
let strawman_benchmarks = [ "fib"; "nqueens" ]
let compaction_benchmarks = [ "fib"; "nqueens" ]

type scope = [ `Seq_only | `Full ]

let seq_points ctx =
  List.concat_map
    (fun entry ->
      List.map (fun m () -> ignore (seq ctx entry m : Vc_core.Report.t)) machines)
    Registry.all

let engine_points ctx =
  List.concat_map
    (fun entry ->
      List.concat_map
        (fun m ->
          (fun () -> ignore (bfs_only ctx entry m : Vc_core.Report.t))
          :: List.concat_map
               (fun block ->
                 [
                   (fun () ->
                     ignore (hybrid ctx entry m ~reexpand:false ~block : Vc_core.Report.t));
                   (fun () ->
                     ignore (hybrid ctx entry m ~reexpand:true ~block : Vc_core.Report.t));
                 ])
               (blocks_of ctx entry))
        machines)
    Registry.all

let strawman_points ctx =
  List.concat_map
    (fun name ->
      let entry = Registry.find name in
      List.map (fun m () -> ignore (strawman ctx entry m : Vc_core.Report.t)) machines)
    strawman_benchmarks

(* Fig. 16 / claims compare the default engine (already a plain-hybrid
   cache hit thanks to the normalized key) against sequential compaction
   at the best re-expansion block — which is only known once the hybrid
   grid is in, hence the second wave. *)
let compaction_points ctx =
  List.concat_map
    (fun name ->
      let entry = Registry.find name in
      List.map
        (fun m () ->
          let block, _ = best ctx entry m ~reexpand:true in
          ignore
            (with_compaction ctx entry m ~compact:Vc_simd.Compact.Sequential ~block
              : Vc_core.Report.t))
        machines)
    compaction_benchmarks

let prewarm ?(scope = `Full) ctx =
  (* build every spec in the calling domain so pool workers (and their
     closures) only read the spec table *)
  List.iter (fun e -> ignore (spec_of ctx e : Vc_core.Spec.t)) Registry.all;
  (* Containment boundary: a point that still fails after [retries] is
     recorded and the rest of the sweep proceeds; budget violations stay
     fatal and propagate out of Pool.run_collect immediately. *)
  let submit tasks =
    let fs = Pool.run_collect ~retries:ctx.retries ~jobs:ctx.jobs tasks in
    if fs <> [] then
      Mutex.protect ctx.lock (fun () -> ctx.failed <- List.rev_append fs ctx.failed)
  in
  match scope with
  | `Seq_only -> submit (seq_points ctx)
  | `Full ->
      submit (seq_points ctx @ engine_points ctx @ strawman_points ctx);
      submit (compaction_points ctx)
