(** A minimal JSON reader/writer for the run cache and the bench harness's
    machine-readable output.

    Deliberately tiny: only what [Run_cache] and [BENCH_sweep.json] need.
    Floats are printed with 17 significant digits so IEEE doubles
    round-trip exactly (cached reports must compare equal to fresh ones),
    which also means non-finite floats are emitted as bare [inf]/[nan]
    tokens — valid for this parser, not for strict JSON consumers. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_pretty_string : t -> string
(** Human-readable rendering (2-space indent, trailing newline) for
    committed artifacts like the baseline bench history.  Scalars render
    exactly as in {!to_string}, so values round-trip through {!parse}
    identically in both forms. *)

val default_max_depth : int
(** Default container-nesting budget (512). *)

val parse : ?max_depth:int -> string -> (t, string) result
(** Parse one JSON value (trailing whitespace allowed).  Containers
    nested deeper than [max_depth] (default {!default_max_depth}) yield
    [Error "... nesting too deep"] instead of a stack overflow. *)

exception Decode of string
(** Raised by the typed accessors below on a type mismatch, and by
    decoders built on them ({!Run_cache}, {!Baseline}) for structural
    problems.  Distinct from [Failure] so callers can contain malformed
    persisted data — warn and skip the entry — without masking genuine
    programming errors. *)

val decode_error : ('a, unit, string, 'b) format4 -> 'a
(** [decode_error fmt ...] raises {!Decode} with the formatted message. *)

val member : string -> t -> t
(** Field lookup on an [Obj]; [Null] when absent or not an object. *)

val to_int : t -> int
val to_float : t -> float
(** [to_float] accepts [Int] too (a float that prints without a dot). *)

val to_bool : t -> bool
val to_str : t -> string
val to_list : t -> t list
val obj_fields : t -> (string * t) list
(** All raise {!Decode} on a type mismatch. *)
