(** Regeneration of the paper's figures (§6) as data series.

    Each function prints the numbers behind one figure — one row per
    x-axis point, one column per plotted series — so the curves can be
    eyeballed or re-plotted.  Shared {!Sweep} context as for the tables. *)

val figure9 : Sweep.ctx -> Format.formatter -> unit
(** Task distribution per tree level: all tasks and base-case tasks. *)

val figure10 : Sweep.ctx -> Format.formatter -> unit
(** SIMD utilization vs. block size, with and without re-expansion, on
    both machines. *)

val figure11 : Sweep.ctx -> Format.formatter -> unit
(** Xeon E5 cache miss rates (L1d, LLC) vs. block size. *)

val figure12 : Sweep.ctx -> Format.formatter -> unit
(** Xeon E5 modeled speedup vs. block size. *)

val figure13 : Sweep.ctx -> Format.formatter -> unit
(** Xeon Phi L1 miss rate and CPI vs. block size. *)

val figure14 : Sweep.ctx -> Format.formatter -> unit
(** Xeon Phi modeled speedup vs. block size. *)

val figure15 : Sweep.ctx -> Format.formatter -> unit
(** Re-expansions per tree level and mean block-growth factor, at the best
    re-expansion block size. *)

val figure16 : Sweep.ctx -> Format.formatter -> unit
(** Speedup with vectorized vs. sequential stream compaction (fib and
    nqueens, both machines). *)

val figure17 : Sweep.ctx -> Format.formatter -> unit
(** Lanes × domains combined speedup: the {!Vc_core.Domain_sched} hybrid
    multicore × SIMD scheduler over sequential, at 1/2/4 domains and a
    fixed block size, with the d4/d1 scaling ratio.  Not a figure of the
    paper — it quantifies the §8 "integrate multicore parallelism"
    direction on real OCaml domains with a deterministic schedule
    model. *)
