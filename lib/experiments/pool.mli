(** A work-queue executor over OCaml 5 domains.

    The experiment sweep is embarrassingly parallel — every
    (benchmark × machine × strategy × block × compaction) point is an
    independent simulation — so the pool is deliberately simple: one
    shared atomic cursor over the task array, [jobs] domains racing to
    claim the next index.  Tasks must do their own synchronization around
    shared state (the sweep memo table is mutex-guarded). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val run : jobs:int -> (unit -> unit) list -> unit
(** Execute every task.  With [jobs <= 1] (or fewer than two tasks) the
    tasks run in the calling domain, in order, spawning nothing — the
    [--jobs 1] reference schedule.  Otherwise [min jobs (length tasks)]
    domains drain the queue.  The first exception raised by any task is
    re-raised in the caller after all domains have joined. *)
