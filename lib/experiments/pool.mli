(** A work-queue executor over OCaml 5 domains.

    The experiment sweep is embarrassingly parallel — every
    (benchmark × machine × strategy × block × compaction) point is an
    independent simulation — so the pool is deliberately simple: one
    shared atomic cursor over the task array, [jobs] domains racing to
    claim the next index.  Tasks must do their own synchronization around
    shared state (the sweep memo table is mutex-guarded).

    Both entry points support supervised execution: failed tasks retry
    with decorrelated-jitter backoff.  Budget violations (typed
    [Budget_exceeded] {!Vc_core.Vc_error.Error}s) are deterministic, so
    they are never retried; whether one aborts the queue depends on its
    resource — see {!run_collect}.

    For a long-lived stream of independently submitted jobs (the serve
    daemon), use the persistent {!worker_pool} instead: its domains stay
    alive across jobs, and a raising job is contained rather than
    propagated. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

type failure = {
  index : int;  (** position of the task in the submitted list *)
  attempts : int;  (** attempts made, including the first *)
  error : Vc_core.Vc_error.t;  (** classified final error *)
}

val run :
  ?retries:int ->
  ?backoff:float ->
  ?jitter_seed:int ->
  jobs:int ->
  (unit -> unit) list ->
  unit
(** Execute every task.  With [jobs <= 1] (or fewer than two tasks) the
    tasks run in the calling domain, in order, spawning nothing — the
    [--jobs 1] reference schedule.  Otherwise [min jobs (length tasks)]
    domains drain the queue.  Each failing task is retried up to
    [retries] times (default 0); between attempts it sleeps a
    decorrelated-jitter interval — uniform in [[backoff,
    min(16 * backoff, 3 * previous sleep)]] seconds (no sleep when
    [backoff] is 0) — so workers that hit the same fault pattern do not
    wake in lock-step and collide again.  The jitter stream is a pure
    function of [(jitter_seed, task index, attempt)] (seed default 0),
    keeping retry schedules reproducible.  The first exhausted failure
    aborts the queue and is re-raised verbatim in the caller after all
    domains have joined. *)

val run_collect :
  ?retries:int ->
  ?backoff:float ->
  ?jitter_seed:int ->
  jobs:int ->
  (unit -> unit) list ->
  failure list
(** Like {!run}, but contains per-task failures instead of aborting: a
    task that still fails after its retries is recorded (worker-death
    containment — the rest of the queue keeps draining) and the failures
    are returned sorted by task index, [[]] when everything succeeded.
    Deadline-like budget violations ([Deadline_cycles], [Deadline_wall],
    [Live_frames]) are still fatal and re-raise in the caller: every
    remaining task shares those caps.  Per-run resource exhaustion
    ([Task_budget], [Memory]) is contained like any other failure — one
    oversized point must not kill the sweep — though, being
    deterministic, it is never retried. *)

(** {1 Persistent worker pool}

    The serve daemon's execution substrate: [workers] long-lived domains
    draining an unbounded FIFO of submitted jobs, so state that is
    expensive to warm (shuffle/prefix tables, the sweep memo, the run
    cache) stays hot across requests.  Admission control (bounding the
    queue) is the {e caller's} job — check {!pool_pending} before
    {!submit} and reject with a typed [Queue_depth] error when over
    budget; the pool itself never blocks a submitter. *)

type worker_pool

val start_pool : workers:int -> unit -> worker_pool
(** Spawn [max 1 workers] domains, idle until jobs arrive. *)

val submit : worker_pool -> (unit -> unit) -> [ `Queued | `Draining ]
(** Enqueue one job ([`Draining] after {!drain_pool} started: the job was
    NOT queued).  A job that raises is contained — logged, worker domain
    survives — so jobs that need their error must catch it themselves. *)

val pool_pending : worker_pool -> int
(** Jobs submitted but not yet started. *)

val pool_active : worker_pool -> int
(** Jobs currently executing. *)

val pool_quiesce : worker_pool -> unit
(** Block until the pool is momentarily idle (no pending, no active).
    The pool stays usable — this is the drain barrier without the
    shutdown. *)

val drain_pool : worker_pool -> unit
(** Graceful shutdown: stop accepting, finish every queued and active
    job, join the domains.  Idempotent-ish: a second call returns
    immediately (no domains left to join). *)
