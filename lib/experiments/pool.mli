(** A work-queue executor over OCaml 5 domains.

    The experiment sweep is embarrassingly parallel — every
    (benchmark × machine × strategy × block × compaction) point is an
    independent simulation — so the pool is deliberately simple: one
    shared atomic cursor over the task array, [jobs] domains racing to
    claim the next index.  Tasks must do their own synchronization around
    shared state (the sweep memo table is mutex-guarded).

    Both entry points support supervised execution: failed tasks retry
    with exponential backoff.  Budget violations (typed [Budget_exceeded]
    {!Vc_core.Vc_error.Error}s) are deterministic, so they are never
    retried; whether one aborts the queue depends on its resource — see
    {!run_collect}. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

type failure = {
  index : int;  (** position of the task in the submitted list *)
  attempts : int;  (** attempts made, including the first *)
  error : Vc_core.Vc_error.t;  (** classified final error *)
}

val run : ?retries:int -> ?backoff:float -> jobs:int -> (unit -> unit) list -> unit
(** Execute every task.  With [jobs <= 1] (or fewer than two tasks) the
    tasks run in the calling domain, in order, spawning nothing — the
    [--jobs 1] reference schedule.  Otherwise [min jobs (length tasks)]
    domains drain the queue.  Each failing task is retried up to
    [retries] times (default 0) with [backoff * 2^(attempt-1)] seconds of
    sleep between attempts (default no sleep); the first exhausted
    failure aborts the queue and is re-raised verbatim in the caller
    after all domains have joined. *)

val run_collect :
  ?retries:int -> ?backoff:float -> jobs:int -> (unit -> unit) list -> failure list
(** Like {!run}, but contains per-task failures instead of aborting: a
    task that still fails after its retries is recorded (worker-death
    containment — the rest of the queue keeps draining) and the failures
    are returned sorted by task index, [[]] when everything succeeded.
    Deadline-like budget violations ([Deadline_cycles], [Deadline_wall],
    [Live_frames]) are still fatal and re-raise in the caller: every
    remaining task shares those caps.  Per-run resource exhaustion
    ([Task_budget], [Memory]) is contained like any other failure — one
    oversized point must not kill the sweep — though, being
    deterministic, it is never retried. *)
