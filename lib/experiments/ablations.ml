open Vc_bench

let strawman ctx fmt =
  Format.fprintf fmt
    "@[<v>Ablation A1: the strawman (one divergent thread per SIMD lane, §2) \
     vs the blocked transformation@,@,";
  Format.fprintf fmt "%-12s %-8s %12s %12s@," "benchmark" "machine" "strawman"
    "reexp(best)";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      List.iter
        (fun machine ->
          let straw = Sweep.strawman ctx entry machine in
          let _, best = Sweep.best ctx entry machine ~reexpand:true in
          Format.fprintf fmt "%-12s %-8s %12.2f %12.2f@," name
            machine.Vc_mem.Machine.name
            (Sweep.speedup ctx entry machine straw)
            (Sweep.speedup ctx entry machine best))
        Sweep.machines)
    [ "fib"; "nqueens" ];
  Format.fprintf fmt "@]@."

let compaction_cost _ctx fmt =
  Format.fprintf fmt
    "@[<v>Ablation A2: stream-compaction engine cost for one 2^16-element \
     partition at width 16@,@,";
  Format.fprintf fmt "%-18s %10s %10s %10s %10s %12s@," "engine" "scalar"
    "vector" "lookups" "shuffles" "table bytes";
  let n = 1 lsl 16 in
  List.iter
    (fun (engine, isa) ->
      let vm = Vc_simd.Vm.create isa in
      ignore
        (Vc_simd.Compact.partition ~vm ~engine ~width:16 ~n ~pred:(fun i ->
             Vc_bench.Rng.mix32 i 0 land 1 = 0));
      let s = Vc_simd.Vm.stats vm in
      Format.fprintf fmt "%-18s %10d %10d %10d %10d %12d@,"
        (Vc_simd.Compact.name engine)
        s.Vc_simd.Stats.scalar_ops s.Vc_simd.Stats.vector_ops
        s.Vc_simd.Stats.table_lookups s.Vc_simd.Stats.shuffles
        (Vc_simd.Compact.table_memory_bytes engine ~width:16))
    [
      (Vc_simd.Compact.Sequential, Vc_simd.Isa.sse42);
      (Vc_simd.Compact.Full_table, Vc_simd.Isa.sse42);
      (Vc_simd.Compact.Factorized { sub_width = 8 }, Vc_simd.Isa.sse42);
      (Vc_simd.Compact.Factorized { sub_width = 4 }, Vc_simd.Isa.sse42);
      (Vc_simd.Compact.Prefix_scatter { sub_width = 8 }, Vc_simd.Isa.avx512);
    ];
  Format.fprintf fmt "@]@."

let dsl_vs_native ctx fmt =
  Format.fprintf fmt
    "@[<v>Ablation A3: DSL-compiled spec (Fig. 7 pipeline) vs hand-written \
     native spec, fib(20), Xeon E5, re-expansion at 2^8@,@,";
  let machine = Vc_mem.Machine.xeon_e5 in
  let strategy = Vc_core.Policy.Hybrid { max_block = 256; reexpand = true } in
  let native = Fib.spec { Fib.n = 20 } in
  let program, args = Fib.dsl { Fib.n = 20 } in
  let compiled = Vc_core.Compile.spec_of_program ~lane_kind:Vc_simd.Lane.I8 program ~args in
  Format.fprintf fmt "%-10s %12s %12s %12s %10s@," "spec" "result" "tasks"
    "cycles" "util";
  List.iter
    (fun (label, spec) ->
      let r = Vc_core.Engine.run ~spec ~machine ~strategy () in
      Format.fprintf fmt "%-10s %12d %12d %12.3e %10.3f@," label
        (Vc_core.Report.reducer r "result")
        r.Vc_core.Report.tasks r.Vc_core.Report.cycles r.Vc_core.Report.utilization)
    [ ("native", native); ("compiled", compiled) ];
  ignore ctx;
  Format.fprintf fmt "@]@."

let multicore ctx fmt =
  Format.fprintf fmt
    "@[<v>Ablation A5: multicore work stealing x SIMD blocks (paper Sec. 8 future work), Xeon E5@,@,";
  Format.fprintf fmt "%-12s %8s %8s %10s %10s %10s@," "benchmark" "workers"
    "jobs" "speedup" "balance" "serial%";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let machine = Vc_mem.Machine.xeon_e5 in
      let spec = Sweep.spec_of ctx entry in
      let seq = Sweep.seq ctx entry machine in
      List.iter
        (fun workers ->
          let r = Vc_core.Multicore.run ~spec ~machine ~workers () in
          Format.fprintf fmt "%-12s %8d %8d %10.2f %10.2f %9.1f%%@," name workers
            r.Vc_core.Multicore.jobs
            (Vc_core.Multicore.speedup ~baseline:seq r)
            r.Vc_core.Multicore.balance
            (100.0 *. r.Vc_core.Multicore.expansion_cycles
            /. r.Vc_core.Multicore.cycles))
        [ 1; 2; 4; 8; 16 ])
    [ "fib"; "nqueens"; "graphcol" ];
  Format.fprintf fmt "@]@."

let width_scaling ctx fmt =
  Format.fprintf fmt
    "@[<v>Ablation A6: vector-width scaling on future hardware (Sec. 8: char-level 512-bit vectors)@,@,";
  Format.fprintf fmt "%-12s %-10s %6s %10s@," "benchmark" "machine" "width"
    "speedup";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let spec = Sweep.spec_of ctx entry in
      List.iter
        (fun (machine : Vc_mem.Machine.t) ->
          let width =
            Vc_simd.Isa.lanes machine.Vc_mem.Machine.isa
              (Vc_core.Schema.lane_kind spec.Vc_core.Spec.schema)
          in
          let seq = Vc_core.Seq_exec.run ~spec ~machine () in
          let r =
            Vc_core.Engine.run ~spec ~machine
              ~strategy:(Vc_core.Policy.Hybrid { max_block = 1 lsl 9; reexpand = true })
              ()
          in
          Format.fprintf fmt "%-12s %-10s %6d %10.2f@," name
            machine.Vc_mem.Machine.name width
            (Vc_core.Report.speedup ~baseline:seq r))
        [ Vc_mem.Machine.xeon_e5; Vc_mem.Machine.xeon_phi; Vc_mem.Machine.knl ])
    [ "fib"; "knapsack"; "nqueens" ];
  Format.fprintf fmt "@]@."

let task_cutoff ctx fmt =
  Format.fprintf fmt
    "@[<v>Ablation A7: task cut-off (Sec. 6.1: the paper runs without one to maximize vectorization)@,@,";
  Format.fprintf fmt "%-12s %8s %12s %12s@," "benchmark" "cutoff" "speedup" "util";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let machine = Vc_mem.Machine.xeon_e5 in
      let spec = Sweep.spec_of ctx entry in
      let seq = Sweep.seq ctx entry machine in
      List.iter
        (fun cutoff ->
          let r =
            Vc_core.Engine.run ~cutoff ~spec ~machine
              ~strategy:(Vc_core.Policy.Hybrid { max_block = 256; reexpand = true })
              ()
          in
          Format.fprintf fmt "%-12s %8s %12.2f %11.1f%%@," name
            (if cutoff = 0 then "none" else string_of_int cutoff)
            (Vc_core.Report.speedup ~baseline:seq r)
            (100.0 *. r.Vc_core.Report.utilization))
        [ 0; 4; 16; 64; 256 ])
    [ "fib"; "nqueens" ];
  Format.fprintf fmt "@]@."

let warm_cache ctx fmt =
  Format.fprintf fmt
    "@[<v>Ablation A8: warm-cache speedup (Table 2's minmax footnote)@,@,";
  Format.fprintf fmt "%-12s %-8s %10s %10s@," "benchmark" "machine" "cold" "warm";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let spec = Sweep.spec_of ctx entry in
      List.iter
        (fun (machine : Vc_mem.Machine.t) ->
          let seq = Sweep.seq ctx entry machine in
          let block, _ = Sweep.best ctx entry machine ~reexpand:true in
          let strategy = Vc_core.Policy.Hybrid { max_block = block; reexpand = true } in
          let cold = Vc_core.Engine.run ~spec ~machine ~strategy () in
          let warm = Vc_core.Engine.run ~warm:true ~spec ~machine ~strategy () in
          Format.fprintf fmt "%-12s %-8s %10.2f %10.2f@," name
            machine.Vc_mem.Machine.name
            (Vc_core.Report.speedup ~baseline:seq cold)
            (Vc_core.Report.speedup ~baseline:seq warm))
        Sweep.machines)
    [ "minmax"; "graphcol" ];
  Format.fprintf fmt "@]@."

let aos_soa_overhead _ctx fmt =
  Format.fprintf fmt
    "@[<v>Ablation A4: dynamic AoS->SoA conversion cost (§5, kernel-only \
     benchmarks) for a 2^14-frame uts block@,@,";
  let isa = Vc_simd.Isa.sse42 in
  let vm = Vc_simd.Vm.create isa in
  let addr = Vc_core.Addr.create () in
  let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I32 [ "state" ] in
  let n = 1 lsl 14 in
  let frames = Array.init n (fun i -> [| Vc_bench.Rng.mix32 i 0 |]) in
  let blk = Vc_core.Soa.aos_to_soa ~vm ~addr ~schema ~isa ~aos_base:0x900000 ~frames () in
  let convert_cycles = Vc_simd.Vm.issue_cycles vm in
  let vm2 = Vc_simd.Vm.create isa in
  (* one level of kernel work over the same block for scale *)
  Vc_simd.Vm.batch vm2 ~width:4 ~n:(Vc_core.Block.size blk) ~insns_per_task:16 ();
  Format.fprintf fmt "conversion issue cycles: %.3e@," convert_cycles;
  Format.fprintf fmt "one kernel level:        %.3e@," (Vc_simd.Vm.issue_cycles vm2);
  Format.fprintf fmt "ratio:                   %.3f@,"
    (convert_cycles /. Vc_simd.Vm.issue_cycles vm2);
  Format.fprintf fmt "@]@."
