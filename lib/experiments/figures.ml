open Vc_bench

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let fig9_benchmarks =
  [ "knapsack"; "fib"; "parentheses"; "nqueens"; "graphcol"; "uts" ]

(* The paper omits binomial and minmax from the per-benchmark studies as
   structurally similar to fib and nqueens. *)
let study_benchmarks = fig9_benchmarks

let figure9 ctx fmt =
  Format.fprintf fmt
    "@[<v>Figure 9: task distribution per level (all tasks / base-case tasks)@,";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let r = Sweep.seq ctx entry Vc_mem.Machine.xeon_e5 in
      Format.fprintf fmt "@,[%s]@,%6s %12s %12s@," name "level" "tasks" "base";
      Array.iteri
        (fun depth (tasks, base) ->
          Format.fprintf fmt "%6d %12d %12d@," depth tasks base)
        r.Vc_core.Report.levels)
    fig9_benchmarks;
  Format.fprintf fmt "@]@."

let sweep_figure ctx fmt ~title ~header ~cell =
  Format.fprintf fmt "@[<v>%s@," title;
  List.iter
    (fun name ->
      let entry = Registry.find name in
      Format.fprintf fmt "@,[%s]@,%8s %s@," name "block" header;
      List.iter
        (fun block -> Format.fprintf fmt "%8s %s@," (Printf.sprintf "2^%d" (log2i block)) (cell entry block))
        (Sweep.blocks_of ctx entry))
    study_benchmarks;
  Format.fprintf fmt "@]@."

let figure10 ctx fmt =
  sweep_figure ctx fmt
    ~title:
      "Figure 10: SIMD utilization vs block size (fraction of tasks executed \
       in full-width groups)"
    ~header:(Printf.sprintf "%10s %10s %10s %10s" "e5:noreexp" "e5:reexp" "phi:norex" "phi:reexp")
    ~cell:(fun entry block ->
      let cell machine reexpand =
        let r = Sweep.hybrid ctx entry machine ~reexpand ~block in
        if r.Vc_core.Report.oom then "     OOM" else Printf.sprintf "%10.3f" r.Vc_core.Report.utilization
      in
      Printf.sprintf "%s %s %s %s"
        (cell Vc_mem.Machine.xeon_e5 false)
        (cell Vc_mem.Machine.xeon_e5 true)
        (cell Vc_mem.Machine.xeon_phi false)
        (cell Vc_mem.Machine.xeon_phi true))

let miss_rate (r : Vc_core.Report.t) label =
  match List.assoc_opt label r.Vc_core.Report.miss_rates with
  | Some rate -> rate
  | None -> 0.0

let figure11 ctx fmt =
  sweep_figure ctx fmt
    ~title:"Figure 11: Xeon E5 cache miss rates vs block size"
    ~header:
      (Printf.sprintf "%10s %10s %10s %10s" "norex:L1d" "norex:LLC" "reexp:L1d" "reexp:LLC")
    ~cell:(fun entry block ->
      let cell reexpand label =
        let r = Sweep.hybrid ctx entry Vc_mem.Machine.xeon_e5 ~reexpand ~block in
        Printf.sprintf "%10.4f" (miss_rate r label)
      in
      Printf.sprintf "%s %s %s %s" (cell false "L1d") (cell false "LLC")
        (cell true "L1d") (cell true "LLC"))

let speedup_figure ctx fmt ~title machine =
  sweep_figure ctx fmt ~title
    ~header:(Printf.sprintf "%10s %10s" "noreexp" "reexp")
    ~cell:(fun entry block ->
      let cell reexpand =
        let r = Sweep.hybrid ctx entry machine ~reexpand ~block in
        if r.Vc_core.Report.oom then "       OOM"
        else Printf.sprintf "%10.2f" (Sweep.speedup ctx entry machine r)
      in
      Printf.sprintf "%s %s" (cell false) (cell true))

let figure12 ctx fmt =
  speedup_figure ctx fmt
    ~title:"Figure 12: Xeon E5 modeled speedup vs block size"
    Vc_mem.Machine.xeon_e5

let figure13 ctx fmt =
  sweep_figure ctx fmt
    ~title:"Figure 13: Xeon Phi L1 miss rate and CPI vs block size"
    ~header:
      (Printf.sprintf "%10s %10s %10s %10s" "norex:L1" "norex:CPI" "reexp:L1" "reexp:CPI")
    ~cell:(fun entry block ->
      let cell reexpand =
        let r = Sweep.hybrid ctx entry Vc_mem.Machine.xeon_phi ~reexpand ~block in
        Printf.sprintf "%10.4f %10.2f" (miss_rate r "L1d") r.Vc_core.Report.cpi
      in
      Printf.sprintf "%s %s" (cell false) (cell true))

let figure14 ctx fmt =
  speedup_figure ctx fmt
    ~title:"Figure 14: Xeon Phi modeled speedup vs block size"
    Vc_mem.Machine.xeon_phi

let figure15 ctx fmt =
  Format.fprintf fmt
    "@[<v>Figure 15: re-expansions per level and mean growth factor (at the \
     best re-expansion block size, Xeon E5)@,";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let machine = Vc_mem.Machine.xeon_e5 in
      let block, r = Sweep.best ctx entry machine ~reexpand:true in
      Format.fprintf fmt "@,[%s] best block 2^%d@," name (log2i block);
      if Array.length r.Vc_core.Report.reexpansions = 0 then
        Format.fprintf fmt "  (no re-expansions triggered)@,"
      else begin
        Format.fprintf fmt "%6s %12s %10s@," "level" "reexpansions" "factor";
        Array.iter
          (fun (depth, count, factor) ->
            Format.fprintf fmt "%6d %12d %10.2f@," depth count factor)
          r.Vc_core.Report.reexpansions
      end)
    [ "fib"; "parentheses"; "nqueens"; "graphcol"; "knapsack"; "uts" ];
  Format.fprintf fmt "@]@."

let figure16 ctx fmt =
  Format.fprintf fmt
    "@[<v>Figure 16: speedup with vectorized (sc) vs sequential (no sc) \
     stream compaction@,@,";
  Format.fprintf fmt "%-10s %-8s %10s %10s@," "benchmark" "machine" "sc" "no sc";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      List.iter
        (fun (machine : Vc_mem.Machine.t) ->
          let block, _ = Sweep.best ctx entry machine ~reexpand:true in
          let default =
            Vc_simd.Compact.default_for machine.Vc_mem.Machine.isa
              ~width:(Sweep.width_on ctx entry machine)
          in
          let sc = Sweep.with_compaction ctx entry machine ~compact:default ~block in
          let nosc =
            Sweep.with_compaction ctx entry machine ~compact:Vc_simd.Compact.Sequential
              ~block
          in
          Format.fprintf fmt "%-10s %-8s %10.2f %10.2f@," name
            machine.Vc_mem.Machine.name
            (Sweep.speedup ctx entry machine sc)
            (Sweep.speedup ctx entry machine nosc))
        Sweep.machines)
    [ "fib"; "nqueens" ];
  Format.fprintf fmt "@]@."

(* Fixed block size rather than [Sweep.best]: the d1/d2/d4 points must
   share one chunk set, and [best] would pick a per-benchmark block from
   the single-context sweep that need not be optimal for the chunked
   family anyway. *)
let figure17_domains = [ 1; 2; 4 ]
let figure17_block = 256

let figure17 ctx fmt =
  Format.fprintf fmt
    "@[<v>Figure 17: lanes x domains hybrid speedup over sequential (block \
     2^%d, %d chunks)@,@,"
    (log2i figure17_block) Vc_core.Domain_sched.default_chunks;
  Format.fprintf fmt "%-10s %-8s" "benchmark" "machine";
  List.iter (fun d -> Format.fprintf fmt " %9s" (Printf.sprintf "d=%d" d)) figure17_domains;
  Format.fprintf fmt " %9s@," "d4/d1";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      List.iter
        (fun (machine : Vc_mem.Machine.t) ->
          Format.fprintf fmt "%-10s %-8s" name machine.Vc_mem.Machine.name;
          let speedups =
            List.map
              (fun domains ->
                let r =
                  Sweep.hybrid_domains ctx entry machine ~block:figure17_block
                    ~domains
                in
                if r.Vc_core.Report.oom then None
                else Some (Sweep.speedup ctx entry machine r))
              figure17_domains
          in
          List.iter
            (fun s ->
              match s with
              | None -> Format.fprintf fmt " %9s" "OOM"
              | Some s -> Format.fprintf fmt " %9.2f" s)
            speedups;
          (match (List.hd speedups, List.rev speedups |> List.hd) with
          | Some s1, Some sn when s1 > 0.0 ->
              Format.fprintf fmt " %9.2f@," (sn /. s1)
          | _ -> Format.fprintf fmt " %9s@," "-"))
        Sweep.machines)
    study_benchmarks;
  Format.fprintf fmt "@]@."
