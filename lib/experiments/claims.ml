open Vc_bench

type verdict = { claim : string; holds : bool; evidence : string }

let e5 = Vc_mem.Machine.xeon_e5

let check claim holds evidence = { claim; holds; evidence }

(* Best speedups per strategy for one benchmark/machine. *)
let bests ctx entry machine =
  let blk_n, no = Sweep.best ctx entry machine ~reexpand:false in
  let blk_r, re = Sweep.best ctx entry machine ~reexpand:true in
  ( (blk_n, Sweep.speedup ctx entry machine no),
    (blk_r, Sweep.speedup ctx entry machine re) )

let bfs_never_best ctx =
  let offenders =
    List.concat_map
      (fun (entry : Registry.entry) ->
        List.filter_map
          (fun machine ->
            let bfs = Sweep.bfs_only ctx entry machine in
            if bfs.Vc_core.Report.oom then None
            else
              let s_bfs = Sweep.speedup ctx entry machine bfs in
              let _, (_, s_re) = bests ctx entry machine in
              if s_bfs > s_re +. 1e-9 then
                Some
                  (Printf.sprintf "%s/%s (bfs %.2f > reexp %.2f)"
                     entry.Registry.name machine.Vc_mem.Machine.name s_bfs s_re)
              else None)
          Sweep.machines)
      Registry.all
  in
  check "breadth-first-only never beats the hybrid with re-expansion"
    (offenders = [])
    (if offenders = [] then "holds on all benchmarks x machines"
     else String.concat "; " offenders)

let reexpansion_never_loses ctx =
  let margin = 0.95 (* the paper itself has near-ties, e.g. parentheses *) in
  let offenders =
    List.concat_map
      (fun (entry : Registry.entry) ->
        List.filter_map
          (fun machine ->
            let (_, s_no), (_, s_re) = bests ctx entry machine in
            if s_re < s_no *. margin then
              Some
                (Printf.sprintf "%s/%s (reexp %.2f < noreexp %.2f)"
                   entry.Registry.name machine.Vc_mem.Machine.name s_re s_no)
            else None)
          Sweep.machines)
      Registry.all
  in
  check "re-expansion never loses to no-re-expansion (best blocks)"
    (offenders = [])
    (if offenders = [] then "holds on all benchmarks x machines"
     else String.concat "; " offenders)

let reexpansion_wins_on_irregular ctx =
  let gains =
    List.map
      (fun name ->
        let entry = Registry.find name in
        let (_, s_no), (_, s_re) = bests ctx entry e5 in
        (name, s_re /. s_no))
      [ "nqueens"; "graphcol" ]
  in
  check "re-expansion clearly wins on nqueens and graphcol (E5)"
    (List.for_all (fun (_, g) -> g > 1.1) gains)
    (String.concat ", "
       (List.map (fun (n, g) -> Printf.sprintf "%s gain %.2fx" n g) gains))

let reexpansion_smaller_blocks ctx =
  (* the paper says "typically employs less space"; require it on a clear
     majority of benchmark x machine pairs *)
  let pairs =
    List.concat_map
      (fun (entry : Registry.entry) ->
        List.map
          (fun machine ->
            let (blk_no, _), (blk_re, _) = bests ctx entry machine in
            blk_re <= blk_no)
          Sweep.machines)
      Registry.all
  in
  let ok = List.length (List.filter Fun.id pairs) in
  check "re-expansion typically peaks at block sizes no larger than no-re-expansion"
    (4 * ok >= 3 * List.length pairs)
    (Printf.sprintf "%d/%d benchmark x machine pairs" ok (List.length pairs))

let balanced_trees_never_reexpand ctx =
  let events name =
    let entry = Registry.find name in
    let _, r = Sweep.best ctx entry e5 ~reexpand:true in
    Array.length r.Vc_core.Report.reexpansions
  in
  let k = events "knapsack" in
  check "knapsack (perfectly balanced) triggers no re-expansions" (k = 0)
    (Printf.sprintf "knapsack levels with events: %d" k)

let utilization_monotone ctx =
  let entry = Registry.find "nqueens" in
  let utils =
    List.map
      (fun block ->
        (Sweep.hybrid ctx entry e5 ~reexpand:false ~block).Vc_core.Report.utilization)
      (Sweep.blocks_of ctx entry)
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  check "SIMD utilization grows monotonically with block size (nqueens, no re-exp.)"
    (monotone utils)
    (String.concat " " (List.map (Printf.sprintf "%.2f") utils))

let compaction_helps ctx =
  let gain name machine =
    let entry = Registry.find name in
    let block, _ = Sweep.best ctx entry machine ~reexpand:true in
    let width = Sweep.width_on ctx entry machine in
    let sc =
      Sweep.with_compaction ctx entry machine
        ~compact:(Vc_simd.Compact.default_for machine.Vc_mem.Machine.isa ~width)
        ~block
    in
    let nosc =
      Sweep.with_compaction ctx entry machine ~compact:Vc_simd.Compact.Sequential
        ~block
    in
    Sweep.speedup ctx entry machine sc /. Sweep.speedup ctx entry machine nosc
  in
  let fib_gain = gain "fib" e5 and nq_gain = gain "nqueens" e5 in
  check
    "vectorized stream compaction helps, and helps small kernels (fib) more \
     than large ones (nqueens)"
    (fib_gain > 1.0 && nq_gain > 1.0 && fib_gain > nq_gain)
    (Printf.sprintf "fib gain %.2fx, nqueens gain %.2fx" fib_gain nq_gain)

let strawman_loses ctx =
  let offenders =
    List.filter_map
      (fun name ->
        let entry = Registry.find name in
        let straw = Sweep.speedup ctx entry e5 (Sweep.strawman ctx entry e5) in
        let _, (_, s_re) = bests ctx entry e5 in
        if straw >= s_re then Some (Printf.sprintf "%s (strawman %.2f)" name straw)
        else None)
      [ "fib"; "nqueens" ]
  in
  check "the lane-per-thread strawman never beats the blocked transformation"
    (offenders = [])
    (if offenders = [] then "strawman loses on fib and nqueens"
     else String.concat "; " offenders)

let results_exact ctx =
  let offenders =
    List.concat_map
      (fun (entry : Registry.entry) ->
        (* reference = the sequential executor at this context's scale
           (itself validated against closed forms in the test suite) *)
        let expected = (Sweep.seq ctx entry e5).Vc_core.Report.reducers in
        List.concat_map
          (fun machine ->
            List.filter_map
              (fun (label, r) ->
                if (r : Vc_core.Report.t).Vc_core.Report.oom then None
                else if
                  List.for_all
                    (fun (name, v) -> Vc_core.Report.reducer r name = v)
                    expected
                then None
                else
                  Some
                    (Printf.sprintf "%s/%s/%s" entry.Registry.name
                       machine.Vc_mem.Machine.name label))
              [
                ("bfs", Sweep.bfs_only ctx entry machine);
                ("noreexp", snd (Sweep.best ctx entry machine ~reexpand:false));
                ("reexp", snd (Sweep.best ctx entry machine ~reexpand:true));
              ])
          Sweep.machines)
      Registry.all
  in
  check "every strategy computes the exact reference reducer values"
    (offenders = [])
    (if offenders = [] then "all reducer values exact" else String.concat "; " offenders)

(* ------------------------------------------------------------------ *)
(* Wall-clock backend equivalence (vcilk verify --engine blocked|compiled).

   The backends have no cost model, so the claim is purely about results:
   whatever the cost-model engine computes, the backend must compute too. *)

let backend_block = 256

let sorted_reducers rs = List.sort compare rs

let backend_matches_engine ctx ~engine =
  let offenders =
    List.filter_map
      (fun (entry : Registry.entry) ->
        let eng = Sweep.hybrid ctx entry e5 ~reexpand:true ~block:backend_block in
        if eng.Vc_core.Report.oom then None
        else
          let b = Sweep.backend_run ctx entry ~engine ~block:backend_block in
          if
            sorted_reducers b.Vc_core.Backend.reducers
            = sorted_reducers eng.Vc_core.Report.reducers
            && b.Vc_core.Backend.tasks = eng.Vc_core.Report.tasks
            && b.Vc_core.Backend.base_tasks = eng.Vc_core.Report.base_tasks
          then None
          else
            Some
              (Printf.sprintf "%s (backend %d/%d tasks vs engine %d/%d)"
                 entry.Registry.name b.Vc_core.Backend.tasks
                 b.Vc_core.Backend.base_tasks eng.Vc_core.Report.tasks
                 eng.Vc_core.Report.base_tasks))
      Registry.all
  in
  check
    (Printf.sprintf
       "the %s backend reproduces the engine's reducers and task counts" engine)
    (offenders = [])
    (if offenders = [] then "bit-equal on all benchmarks"
     else String.concat "; " offenders)

let compiled_matches_interpreter ctx =
  (* On DSL sources — the only ones where compiled dispatch differs from
     the blocked interpreter — every field of the result must agree,
     scheduler counters included. *)
  let offenders =
    List.filter_map
      (fun (entry : Registry.entry) ->
        match entry.Registry.dsl with
        | None -> None
        | Some _ ->
            let c =
              Sweep.backend_run ctx entry ~engine:"compiled" ~block:backend_block
            in
            let i =
              Sweep.backend_run ctx entry ~engine:"blocked" ~block:backend_block
            in
            if
              c.Vc_core.Backend.reducers = i.Vc_core.Backend.reducers
              && c.Vc_core.Backend.tasks = i.Vc_core.Backend.tasks
              && c.Vc_core.Backend.base_tasks = i.Vc_core.Backend.base_tasks
              && c.Vc_core.Backend.max_depth = i.Vc_core.Backend.max_depth
              && c.Vc_core.Backend.switches = i.Vc_core.Backend.switches
              && c.Vc_core.Backend.reexpansions = i.Vc_core.Backend.reexpansions
            then None
            else
              Some
                (Printf.sprintf "%s (compiled %d tasks sw %d re %d vs %d/%d/%d)"
                   entry.Registry.name c.Vc_core.Backend.tasks
                   c.Vc_core.Backend.switches c.Vc_core.Backend.reexpansions
                   i.Vc_core.Backend.tasks i.Vc_core.Backend.switches
                   i.Vc_core.Backend.reexpansions))
      Registry.all
  in
  check
    "the compiled backend matches the blocked interpreter on every result \
     field (DSL benchmarks)"
    (offenders = [])
    (if offenders = [] then "all six fields equal on every DSL benchmark"
     else String.concat "; " offenders)

let backend ctx ~engine =
  backend_matches_engine ctx ~engine
  :: (if engine = "compiled" then [ compiled_matches_interpreter ctx ] else [])

let all ctx =
  [
    results_exact ctx;
    bfs_never_best ctx;
    reexpansion_never_loses ctx;
    reexpansion_wins_on_irregular ctx;
    reexpansion_smaller_blocks ctx;
    balanced_trees_never_reexpand ctx;
    utilization_monotone ctx;
    compaction_helps ctx;
    strawman_loses ctx;
  ]

let pp fmt verdicts =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun v ->
      Format.fprintf fmt "[%s] %s@,       %s@," (if v.holds then "PASS" else "FAIL")
        v.claim v.evidence)
    verdicts;
  let failed = List.length (List.filter (fun v -> not v.holds) verdicts) in
  Format.fprintf fmt "%d/%d claims hold@]@."
    (List.length verdicts - failed)
    (List.length verdicts)

let failures verdicts = List.length (List.filter (fun v -> not v.holds) verdicts)
