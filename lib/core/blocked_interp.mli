(** Direct interpreter for the {e transformed} program.

    Executes a {!Blocked_ast.t} — the output of the Fig. 7 rewrite — with
    the Fig. 6 scheduling: the bfs flavor runs level by level and switches
    to the blocked flavor at [max_block]; the blocked flavor keeps one
    ThreadBlock per spawn site and hands shrunken blocks back to bfs when
    re-expansion is on.

    This interpreter is the semantic half of the reproduction: the test
    suite checks that for every program and strategy it produces exactly
    the reducer values of the sequential {!Vc_lang.Interp}.  (Cost modeling
    lives in {!Engine}, which runs compiled {!Spec.t}s instead.) *)

exception Task_limit_exceeded of int

type result = {
  reducers : (string * int) list;
  tasks : int;
  base_tasks : int;
  max_depth : int;
  switches : int;  (** bfs→blocked transitions taken *)
  reexpansions : int;  (** blocked→bfs transitions taken *)
}

val run :
  ?strategy:Policy.strategy ->
  ?max_tasks:int ->
  ?telemetry:Telemetry.t ->
  ?wall_deadline:float ->
  ?max_live_frames:int ->
  ?roots:int array list ->
  Blocked_ast.t ->
  int list ->
  result
(** Default strategy: [Hybrid { max_block = 256; reexpand = true }].
    Default [max_tasks]: 20M.  [telemetry] receives [Level], [Switch] and
    [Reexpand] events (timestamps are sequence numbers — this interpreter
    has no cost model).

    [roots] overrides the initial thread block with multiple root frames
    (copied; each must have one slot per program parameter) — benchmarks
    like uts seed the computation with many host-computed roots.  When
    given, [args] is ignored.

    [wall_deadline] (seconds) and [max_live_frames] are cooperative
    budgets checked at every level boundary; exceeding one raises a
    [Budget_exceeded] {!Vc_error.Error}.  (There is no modeled-cycle
    deadline here — this interpreter has no cost model.) *)
