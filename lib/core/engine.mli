(** The blocked execution engine: breadth-first expansion, blocked
    depth-first execution, and re-expansion (paper §4), with the §5 SIMD
    implementation — SoA blocks, block reuse, stream compaction — charged
    to the cost model.

    The engine executes the real benchmark semantics (reducer values are
    exact and equal to {!Seq_exec}'s) while accounting every modeled
    instruction and memory access. *)

exception Oom of { live : int; limit : int }
(** Raised internally when breadth-first expansion exceeds the machine's
    live-thread limit; {!run} converts it to an OOM report (Table 2's OOM
    entries). *)

exception Task_limit of int
(** Raised when a run exceeds its [max_tasks] guard; {!Supervisor.run}
    converts it to a typed [Task_budget] error. *)

val run :
  ?compact:Vc_simd.Compact.engine ->
  ?max_tasks:int ->
  ?cutoff:int ->
  ?warm:bool ->
  ?trace:Trace.t ->
  ?telemetry:Telemetry.t ->
  ?faults:Fault.plan ->
  ?recover:bool ->
  ?deadline:float ->
  ?wall_deadline:float ->
  ?max_live_frames:int ->
  spec:Spec.t ->
  machine:Vc_mem.Machine.t ->
  strategy:Policy.strategy ->
  unit ->
  Report.t
(** Execute [spec] under [strategy].  [compact] defaults to
    [Compact.default_for] the machine's ISA (Fig. 16 ablates this).
    [max_tasks] (default 200M) guards runaway specs.  On OOM the returned
    report has [oom = true].

    [cutoff] enables the {e task cut-off} conventional task-parallel
    runtimes use: blocks of at most [cutoff] threads execute their subtrees
    sequentially (scalar) instead of continuing blocked execution.  The
    paper deliberately runs without a cut-off "to maximize vectorization
    opportunities" (§6.1); the ablation harness quantifies that choice.

    [trace] records one {!Trace} event per processed block level
    (implemented as a {!Telemetry.trace_sink} on the run's telemetry
    hub).  [telemetry] attaches a full {!Telemetry} hub: the engine sets
    its clock to modeled cycles and emits [Level], [Switch], [Reexpand],
    [Compaction] and [Cache] events; the hub is flushed before the report
    is returned.  With neither argument the instrumentation reduces to an
    enabled-flag test per level.

    [warm:true] measures a {e warm-cache} run: the whole execution runs
    once to populate the caches (its costs are discarded), then runs again
    over the same reused blocks and reports only the second pass — the
    paper's Table 2 footnote for minmax ("if the cache is warmed up for
    the kernel computation...").  Reducer values are from the measured
    pass only.

    {2 Supervised execution}

    [faults] (default {!Fault.none}) arms deterministic fault injection at
    the engine's compaction and block-allocation sites.  With
    [recover:true] (the default) an injected — or organic, e.g.
    {!Vc_simd.Compact.Unsupported} — fault on the vectorized path
    quarantines the affected block and re-executes its outstanding frames
    on the scalar path, yielding reducer values and task counts exactly
    equal to a fault-free run (a [Fallback] telemetry event records each
    quarantine).  With [recover:false] the typed {!Vc_error.Error}
    propagates to the caller.

    [deadline] (modeled cycles), [wall_deadline] (seconds) and
    [max_live_frames] are cooperative budgets checked at every level
    boundary; exceeding one raises a [Budget_exceeded] {!Vc_error.Error}
    (exit-code convention 2).  [max_live_frames] is a user budget distinct
    from the machine's live-thread limit, which still produces an OOM
    report. *)
