(** The blocked execution engine: breadth-first expansion, blocked
    depth-first execution, and re-expansion (paper §4), with the §5 SIMD
    implementation — SoA blocks, block reuse, stream compaction — charged
    to the cost model.

    The engine executes the real benchmark semantics (reducer values are
    exact and equal to {!Seq_exec}'s) while accounting every modeled
    instruction and memory access. *)

exception Oom of { live : int; limit : int }
(** Raised internally when breadth-first expansion exceeds the machine's
    live-thread limit; {!run} converts it to an OOM report (Table 2's OOM
    entries). *)

exception Task_limit of int
(** Raised when a run exceeds its [max_tasks] guard; {!Supervisor.run}
    converts it to a typed [Task_budget] error. *)

type ctx
(** A per-worker execution context: all block, frame, telemetry,
    reducer and budget state for one engine instance.  Contexts share
    nothing — each owns its {!Measure} (VM + cache hierarchy + address
    space), block pool and reducer set — so independent contexts may run
    concurrently on separate domains.  A context's telemetry hub is
    single-domain, though: never share one hub across contexts that run
    in parallel. *)

val make_ctx :
  ?compact:Vc_simd.Compact.engine ->
  ?max_tasks:int ->
  ?cutoff:int ->
  ?telemetry:Telemetry.t ->
  ?faults:Fault.plan ->
  ?recover:bool ->
  ?deadline:float ->
  ?wall_deadline:float ->
  ?max_live_frames:int ->
  spec:Spec.t ->
  machine:Vc_mem.Machine.t ->
  strategy:Policy.strategy ->
  unit ->
  ctx
(** Build a fresh context with the same knobs (and defaults) as {!run}.
    The telemetry hub's clock is set to the context's modeled cycles. *)

val execute_frames : ctx -> roots:int array list -> depth:int -> unit
(** Execute [roots] as sibling frames at tree depth [depth] to
    completion under the context's strategy (breadth-first expansion,
    blocked switch, re-expansion, task cut-off — exactly {!run}'s
    scheduling).  Raises {!Oom}, {!Task_limit} or a typed budget
    {!Vc_error.Error} like {!run}'s internals; with [recover:true]
    vectorized-path faults degrade to the scalar path as usual. *)

val expand_frontier : ctx -> roots:int array list -> target:int -> int array list * int
(** Breadth-first frontier expansion for a parallel scheduler: expand
    [roots] level by measured level until a level holds at least
    [target] frames, returning those frames and their depth.  Base cases
    met on the way execute in this context (their reducer contributions
    are in the context's report).  Returns [([], depth)] when the whole
    tree completed before reaching [target]. *)

val modeled_cycles : ctx -> float
(** VM issue cycles plus memory-hierarchy penalty cycles so far. *)

val report_of : ctx -> strategy:string -> wall_seconds:float -> Report.t
(** Flush the context's telemetry and package its measurements as a
    report (the [strategy] string is recorded verbatim). *)

val run :
  ?compact:Vc_simd.Compact.engine ->
  ?max_tasks:int ->
  ?cutoff:int ->
  ?warm:bool ->
  ?trace:Trace.t ->
  ?telemetry:Telemetry.t ->
  ?faults:Fault.plan ->
  ?recover:bool ->
  ?deadline:float ->
  ?wall_deadline:float ->
  ?max_live_frames:int ->
  spec:Spec.t ->
  machine:Vc_mem.Machine.t ->
  strategy:Policy.strategy ->
  unit ->
  Report.t
(** Execute [spec] under [strategy].  [compact] defaults to
    [Compact.default_for] the machine's ISA (Fig. 16 ablates this).
    [max_tasks] (default 200M) guards runaway specs.  On OOM the returned
    report has [oom = true].

    [cutoff] enables the {e task cut-off} conventional task-parallel
    runtimes use: blocks of at most [cutoff] threads execute their subtrees
    sequentially (scalar) instead of continuing blocked execution.  The
    paper deliberately runs without a cut-off "to maximize vectorization
    opportunities" (§6.1); the ablation harness quantifies that choice.

    [trace] records one {!Trace} event per processed block level
    (implemented as a {!Telemetry.trace_sink} on the run's telemetry
    hub).  [telemetry] attaches a full {!Telemetry} hub: the engine sets
    its clock to modeled cycles and emits [Level], [Switch], [Reexpand],
    [Compaction] and [Cache] events; the hub is flushed before the report
    is returned.  With neither argument the instrumentation reduces to an
    enabled-flag test per level.

    [warm:true] measures a {e warm-cache} run: the whole execution runs
    once to populate the caches (its costs are discarded), then runs again
    over the same reused blocks and reports only the second pass — the
    paper's Table 2 footnote for minmax ("if the cache is warmed up for
    the kernel computation...").  Reducer values are from the measured
    pass only.

    {2 Supervised execution}

    [faults] (default {!Fault.none}) arms deterministic fault injection at
    the engine's compaction and block-allocation sites.  With
    [recover:true] (the default) an injected — or organic, e.g.
    {!Vc_simd.Compact.Unsupported} — fault on the vectorized path
    quarantines the affected block and re-executes its outstanding frames
    on the scalar path, yielding reducer values and task counts exactly
    equal to a fault-free run (a [Fallback] telemetry event records each
    quarantine).  With [recover:false] the typed {!Vc_error.Error}
    propagates to the caller.

    [deadline] (modeled cycles), [wall_deadline] (seconds) and
    [max_live_frames] are cooperative budgets checked at every level
    boundary; exceeding one raises a [Budget_exceeded] {!Vc_error.Error}
    (exit-code convention 2).  [max_live_frames] is a user budget distinct
    from the machine's live-thread limit, which still produces an OOM
    report. *)
