(** A task specification: the executor-facing form of a recursive,
    task-parallel method.

    A [Spec.t] is what the paper's transformed code computes over: the
    Thread frame layout, the base-case predicate, the base-case body
    (reductions only — the language's sole global effect), and one child
    generator per spawn site.  Benchmarks provide specs directly ("kernel
    conforms to the language", §5 AoS/SoA discussion); DSL programs are
    compiled to specs by {!Compile}.

    The [insns] weights are the per-task kernel instruction counts used by
    the cost model; the executors charge them as scalar instructions in
    sequential runs and as [ceil(n/width)]-vector batches in blocked
    runs.

    Domain-safety: {!Domain_sched} calls [is_base] / [exec_base] / [spawn]
    of one spec concurrently from several domains (each on its own blocks
    and reducer set).  Callbacks that need scratch state must keep it
    domain-local (see {!Compile}) rather than in cells shared across the
    spec. *)

type insns = {
  check_insns : int;  (** evaluating the [isBase] conditional *)
  base_insns : int;  (** executing one base case *)
  inductive_insns : int;  (** inductive work shared by all spawn sites *)
  spawn_insns : int;  (** computing + enqueuing one child *)
  scalar_insns : int;
      (** per-task instructions that stay scalar even in the blocked
          execution (data-dependent branching the compiler cannot
          vectorize) — the paper's Table 3 "non-vectorizable" residue *)
}

type t = {
  name : string;
  description : string;
  schema : Schema.t;
  num_spawns : int;  (** expansion factor e — spawn sites per task *)
  roots : int array list;  (** initial frames (normally one) *)
  reducers : (string * Vc_lang.Reducer.op) list;
  is_base : Block.t -> int -> bool;
      (** [is_base blk row]: does thread [row] take the base case? Must be
          pure. *)
  exec_base : Vc_lang.Reducer.set -> Block.t -> int -> unit;
      (** Execute the base case of thread [row]; may only update
          reducers. *)
  spawn : Block.t -> int -> site:int -> dst:Block.t -> bool;
      (** [spawn blk row ~site ~dst]: if spawn site [site] fires for thread
          [row], push the child frame onto [dst] and return [true].  Must
          be pure per (row, site); called site-major by the executors so
          that same-site children are grouped (§4.2). *)
  insns : insns;
}

val validate : t -> (unit, string list) result
(** Sanity checks: positive spawn count, root arity matches the schema,
    insns non-negative, reducer names unique. *)

val make_reducers : t -> Vc_lang.Reducer.set
