let version = "1.0.0"

(* Best-effort git provenance: present when running inside a checkout
   with git on PATH, [None] otherwise (installed binaries, tarballs).
   Never raises. *)
let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty --tags 2>/dev/null"
    in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some s when s <> "" -> Some s
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let describe () =
  match git_describe () with Some g -> version ^ "+" ^ g | None -> version
