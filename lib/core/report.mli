(** The result of one measured run: reducer values plus every model
    quantity the evaluation section reports. *)

type t = {
  benchmark : string;
  machine : string;
  strategy : string;
  oom : bool;  (** breadth-first expansion exceeded the space limit *)
  reducers : (string * int) list;
  tasks : int;
  base_tasks : int;
  max_depth : int;
  issue_cycles : float;
  penalty_cycles : float;
  cycles : float;
  cpi : float;
  utilization : float;  (** Fig. 10's metric *)
  lane_occupancy : float;
  scalar_ops : int;
  vector_ops : int;
  kernel_ops : int;  (** Table 3 vectorizable side (sequential runs) *)
  cache : (string * int * int) list;  (** label, accesses, misses *)
  miss_rates : (string * float) list;
  space_peak : int;  (** live-thread high-water *)
  levels : (int * int) array;  (** Fig. 9: (tasks, base) per depth *)
  reexpansions : (int * int * float) array;  (** Fig. 15 *)
  reexp_count : int;  (** total re-expansion events *)
  compaction_calls : int;  (** non-empty compaction partitions *)
  compaction_passes : int;  (** sub-group passes across all partitions *)
  occupancy_hist : int array;  (** 10-bucket per-level lane-occupancy histogram *)
  wall_seconds : float;  (** host wall-clock, for transparency *)
}

val oom_placeholder : benchmark:string -> machine:string -> strategy:string -> t

val merge :
  reducers:(string * Vc_lang.Reducer.op) list ->
  strategy:string ->
  cycles:float ->
  space_peak:int ->
  wall_seconds:float ->
  t list ->
  t
(** Merge the parts of one logical run executed across several engine
    contexts (expansion phase first, then chunks in chunk-index order —
    the part order is the canonical merge order, so the result is
    independent of execution interleaving).  Counters sum, reducer values
    combine under their ops, rates are weighted means or recomputed;
    [cycles] and [space_peak] come from the caller's schedule model and
    are — with the derived [cpi] — the only fields a different worker
    count may change.  If any part is an OOM report the merge is the OOM
    placeholder.  Raises [Invalid_argument] on an empty list. *)

val equal : ?ignore_wall:bool -> t -> t -> bool
(** Structural equality of two reports.  [ignore_wall] (default [true])
    excludes the host wall-clock field, which is the only nondeterministic
    field of a report — model quantities are bit-identical across reruns,
    parallel schedules, and run-cache round-trips. *)

val speedup : baseline:t -> t -> float
(** Modeled speedup of [t] over [baseline] (0 when [t] is an OOM run). *)

val reducer : t -> string -> int
(** Raises [Not_found]. *)

val pp_summary : Format.formatter -> t -> unit
