(** The §2 strawman: one "thread" per SIMD lane, each walking its own
    subtree depth-first with its own divergent stack.

    Implemented as a baseline to quantify the paper's argument for why it
    fails: because the lanes' stacks grow and shrink independently, every
    frame access is a gather or scatter, both branch paths execute under
    masks, and utilization decays as lanes finish.  The benchmark harness
    exposes it as an ablation. *)

val run :
  ?max_tasks:int ->
  spec:Spec.t ->
  machine:Vc_mem.Machine.t ->
  unit ->
  Report.t
(** Strategy name in the report: ["strawman"].  Exceeding [max_tasks]
    (default 200M) raises a typed [Task_budget] {!Vc_error.Error} carrying
    the executed count, so sweeps record it as a per-run failure instead
    of dying on a raw [Failure]. *)
