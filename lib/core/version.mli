(** Package version and build provenance, stamped into bench artifacts
    (baseline history entries) and printed by [vcilk version]. *)

val version : string
(** The package version ("1.0.0"). *)

val git_describe : unit -> string option
(** [git describe --always --dirty --tags] of the enclosing checkout;
    [None] when git or the repository is unavailable.  Never raises. *)

val describe : unit -> string
(** [version], suffixed with ["+<git describe>"] when available. *)
