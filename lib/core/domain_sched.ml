(* Intra-run multicore × SIMD hybrid scheduler (the paper's §8 hybrid,
   executed for real).

   One run splits into a serial breadth-first expansion phase plus a set
   of independent chunks — frontier slices whose subtrees the language
   guarantees are disjoint — executed on real OCaml 5 domains with chunk
   stealing between their deques.  Every chunk runs in its own
   {!Engine.ctx} (own VM, cache hierarchy, address space, reducers,
   telemetry hub and fault sub-plan), so all modeled quantities are a
   function of the chunk set alone, never of which domain ran a chunk or
   in what order.

   Determinism contract: the chunk count is fixed (independent of the
   domain count), chunks are dealt round-robin in frontier order, and the
   modeled schedule — makespan, steals, steal costs — comes from the
   {!Ws_sim} discrete-event simulation over the measured per-chunk cycle
   costs, not from the real execution's timing.  Real domains provide
   wall-clock parallelism; their observed steal count is reported
   separately and feeds nothing that is cached, gated or compared.  The
   merged report is therefore bit-identical across domain counts except
   for the documented schedule-model fields: [strategy], [cycles], [cpi]
   and [space_peak] (see {!Report.merge}). *)

let log_src = Logs.Src.create "vc.domains" ~doc:"Hybrid domain scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

let default_chunks = 32

(* The frontier target: a few frames per chunk so round-robin dealing has
   slack to balance uneven subtrees. *)
let frontier_target ~chunks = chunks * 4

let default_steal_cost = 200.0

type result = {
  report : Report.t;
  domains : int;
  chunks : int;
  frontier : int;
  frontier_depth : int;
  expansion_cycles : float;
  work_cycles : float;
  makespan_cycles : float;
  modeled_steals : int;
  modeled_failed_steals : int;
  observed_steals : int;
  fallbacks : int;
  faults_seen : int;
}

let strategy_name ~strategy ~domains =
  Printf.sprintf "%s+d%d" (Policy.name strategy) domains

(* Deal frames round-robin into [n] chunks, preserving frontier order
   inside each chunk.  Adjacent frontier frames have correlated subtree
   sizes, so spreading them evens the chunk costs (like {!Multicore}'s
   dealing). *)
let deal frames n =
  let chunks = Array.make n [] in
  List.iteri (fun i f -> chunks.(i mod n) <- f :: chunks.(i mod n)) frames;
  Array.map List.rev chunks

(* Count Fault / Fallback telemetry events into plain refs — the
   per-chunk equivalent of Supervisor's counting sink, summed by the
   scheduler in chunk order. *)
let counting_hub () =
  let faults = ref 0 and fallbacks = ref 0 in
  let tel = Telemetry.create () in
  Telemetry.attach tel
    (Telemetry.callback_sink (fun { Telemetry.ev; _ } ->
         match ev with
         | Telemetry.Fault _ -> incr faults
         | Telemetry.Fallback _ -> incr fallbacks
         | _ -> ()));
  (tel, faults, fallbacks)

let run ?compact ?max_tasks ?cutoff ?(chunks = default_chunks)
    ?(steal_cost = default_steal_cost) ?(seed = 1) ?telemetry
    ?(faults = Fault.none) ?recover ?deadline ?wall_deadline ?max_live_frames
    ~(spec : Spec.t) ~(machine : Vc_mem.Machine.t)
    ~(strategy : Policy.strategy) ~domains () =
  if domains < 1 then invalid_arg "Domain_sched.run: domains must be positive";
  if chunks < 1 then invalid_arg "Domain_sched.run: chunks must be positive";
  let wall_start = Unix.gettimeofday () in
  let sname = strategy_name ~strategy ~domains in
  let tel = match telemetry with Some t -> t | None -> Telemetry.create () in
  let exp_faults = ref 0 and exp_fallbacks = ref 0 in
  Telemetry.attach tel
    (Telemetry.callback_sink (fun { Telemetry.ev; _ } ->
         match ev with
         | Telemetry.Fault _ -> incr exp_faults
         | Telemetry.Fallback _ -> incr exp_fallbacks
         | _ -> ()));
  let make_engine_ctx ?telemetry:chunk_tel ~faults () =
    Engine.make_ctx ?compact ?max_tasks ?cutoff ?telemetry:chunk_tel ~faults
      ?recover ?deadline ?wall_deadline ?max_live_frames ~spec ~machine
      ~strategy ()
  in
  (* ---- Phase 1: serial measured frontier expansion ---- *)
  let ectx = make_engine_ctx ~telemetry:tel ~faults () in
  let oom_result ~frontier ~frontier_depth ~nchunks =
    {
      report =
        Report.oom_placeholder ~benchmark:spec.Spec.name
          ~machine:machine.Vc_mem.Machine.name ~strategy:sname;
      domains;
      chunks = nchunks;
      frontier;
      frontier_depth;
      expansion_cycles = 0.0;
      work_cycles = 0.0;
      makespan_cycles = 0.0;
      modeled_steals = 0;
      modeled_failed_steals = 0;
      observed_steals = 0;
      fallbacks = 0;
      faults_seen = 0;
    }
  in
  match
    Engine.expand_frontier ectx ~roots:spec.Spec.roots
      ~target:(frontier_target ~chunks)
  with
  | exception Engine.Oom _ -> oom_result ~frontier:0 ~frontier_depth:0 ~nchunks:0
  | frontier_frames, frontier_depth ->
      let expansion_report =
        Engine.report_of ectx ~strategy:(sname ^ ":expand") ~wall_seconds:0.0
      in
      let nfrontier = List.length frontier_frames in
      let nchunks = max 1 (min chunks nfrontier) in
      if nfrontier = 0 then
        (* the whole tree fit in the expansion phase *)
        let report =
          Report.merge ~reducers:spec.Spec.reducers ~strategy:sname
            ~cycles:expansion_report.Report.cycles
            ~space_peak:expansion_report.Report.space_peak
            ~wall_seconds:(Unix.gettimeofday () -. wall_start)
            [ expansion_report ]
        in
        {
          report;
          domains;
          chunks = 0;
          frontier = 0;
          frontier_depth;
          expansion_cycles = expansion_report.Report.cycles;
          work_cycles = 0.0;
          makespan_cycles = 0.0;
          modeled_steals = 0;
          modeled_failed_steals = 0;
          observed_steals = 0;
          fallbacks = !exp_fallbacks;
          faults_seen = !exp_faults;
        }
      else begin
        (* ---- Phase 2: chunk execution on real domains ---- *)
        let chunk_roots = deal frontier_frames nchunks in
        let reports : Report.t option array = Array.make nchunks None in
        let chunk_fallbacks = Array.make nchunks 0 in
        let chunk_faults_seen = Array.make nchunks 0 in
        let errors : exn option array = Array.make nchunks None in
        let run_chunk idx =
          let ctel, cfaults, cfallbacks = counting_hub () in
          let cctx =
            make_engine_ctx ~telemetry:ctel ~faults:(Fault.split faults ~salt:idx) ()
          in
          (match
             Engine.execute_frames cctx ~roots:chunk_roots.(idx)
               ~depth:frontier_depth
           with
          | () ->
              reports.(idx) <-
                Some (Engine.report_of cctx ~strategy:"chunk" ~wall_seconds:0.0)
          | exception Engine.Oom _ ->
              reports.(idx) <-
                Some
                  (Report.oom_placeholder ~benchmark:spec.Spec.name
                     ~machine:machine.Vc_mem.Machine.name ~strategy:"chunk")
          | exception exn -> errors.(idx) <- Some exn);
          chunk_fallbacks.(idx) <- !cfallbacks;
          chunk_faults_seen.(idx) <- !cfaults
        in
        let observed_steals = Atomic.make 0 in
        let workers = min domains nchunks in
        if workers <= 1 then
          for idx = 0 to nchunks - 1 do
            run_chunk idx
          done
        else begin
          (* Per-domain deques under one lock: each worker pops its own
             deque bottom-first; an empty worker scans the other deques in
             a fixed order and steals one chunk from a victim's top.
             Chunks are dealt round-robin in index order, mirroring the
             Ws_sim Round_robin placement that models this schedule. *)
          let queues = Array.make workers [] in
          Array.iteri
            (fun idx _ -> queues.(idx mod workers) <- idx :: queues.(idx mod workers))
            chunk_roots;
          Array.iteri (fun w q -> queues.(w) <- List.rev q) queues;
          let lock = Mutex.create () in
          let pop_own w =
            Mutex.protect lock (fun () ->
                match queues.(w) with
                | [] -> None
                | idx :: rest ->
                    queues.(w) <- rest;
                    Some idx)
          in
          let steal w =
            Mutex.protect lock (fun () ->
                let rec scan k =
                  if k >= workers then None
                  else
                    let victim = (w + k) mod workers in
                    match List.rev queues.(victim) with
                    | [] -> scan (k + 1)
                    | idx :: rest_rev ->
                        queues.(victim) <- List.rev rest_rev;
                        Some idx
                in
                scan 1)
          in
          let rec worker_loop w =
            match pop_own w with
            | Some idx ->
                run_chunk idx;
                worker_loop w
            | None -> (
                match steal w with
                | Some idx ->
                    Atomic.incr observed_steals;
                    run_chunk idx;
                    worker_loop w
                | None -> ())
          in
          let spawned =
            List.init (workers - 1) (fun i -> Domain.spawn (fun () -> worker_loop (i + 1)))
          in
          worker_loop 0;
          List.iter Domain.join spawned
        end;
        (* Deterministic error propagation: the lowest-index chunk error
           wins, whichever domain hit it. *)
        Array.iteri
          (fun idx err ->
            match (err, Array.exists Option.is_some (Array.sub errors 0 idx)) with
            | Some exn, false -> raise exn
            | _ -> ())
          errors;
        let chunk_reports =
          Array.to_list (Array.map (fun r -> Option.get r) reports)
        in
        (* ---- Phase 3: deterministic schedule model + merge ---- *)
        let jobs =
          List.mapi (fun id (r : Report.t) -> { Ws_sim.id; cost = r.Report.cycles })
            chunk_reports
        in
        let stats =
          Ws_sim.simulate ~steal_cost ~seed ~placement:Ws_sim.Round_robin
            ~workers:domains jobs
        in
        List.iter
          (fun (thief, victim, chunk) ->
            Telemetry.emit tel (Telemetry.Steal { thief; victim; chunk }))
          stats.Ws_sim.steal_log;
        let cycles = expansion_report.Report.cycles +. stats.Ws_sim.makespan in
        (* Space model: the frontier is materialized when chunk execution
           starts, and up to [min domains nchunks] chunks are live at
           once — charge the largest ones (an upper bound that depends
           only on the chunk set and the domain count). *)
        let space_peak =
          let peaks =
            List.map (fun (r : Report.t) -> r.Report.space_peak) chunk_reports
            |> List.sort (fun a b -> compare b a)
          in
          let rec take n = function
            | x :: rest when n > 0 -> x + take (n - 1) rest
            | _ -> 0
          in
          max expansion_report.Report.space_peak
            (nfrontier + take (min domains nchunks) peaks)
        in
        let wall = Unix.gettimeofday () -. wall_start in
        let report =
          Report.merge ~reducers:spec.Spec.reducers ~strategy:sname ~cycles
            ~space_peak ~wall_seconds:wall
            (expansion_report :: chunk_reports)
        in
        Telemetry.flush tel;
        Log.debug (fun m ->
            m "%s/%s: %d chunks over %d domains, frontier %d@d%d, %d modeled steals"
              spec.Spec.name machine.Vc_mem.Machine.name nchunks domains nfrontier
              frontier_depth stats.Ws_sim.steals);
        {
          report;
          domains;
          chunks = nchunks;
          frontier = nfrontier;
          frontier_depth;
          expansion_cycles = expansion_report.Report.cycles;
          work_cycles = stats.Ws_sim.total_work;
          makespan_cycles = stats.Ws_sim.makespan;
          modeled_steals = stats.Ws_sim.steals;
          modeled_failed_steals = stats.Ws_sim.failed_steals;
          observed_steals = Atomic.get observed_steals;
          fallbacks =
            !exp_fallbacks + Array.fold_left ( + ) 0 chunk_fallbacks;
          faults_seen =
            !exp_faults + Array.fold_left ( + ) 0 chunk_faults_seen;
        }
      end

let speedup ~(baseline : Report.t) result =
  if result.report.Report.oom || result.report.Report.cycles <= 0.0 then 0.0
  else baseline.Report.cycles /. result.report.Report.cycles
