(* Cycle-attribution profiler.

   Consumes span-open/close events from a Telemetry hub and charges the
   modeled-cycle clock deltas between span boundaries to the innermost
   open frame path (benchmark -> phase -> spawn site ...).  Only span
   boundaries move the attribution cursor: other events (Level, Cache)
   may carry backdated interval timestamps and are used solely for their
   counters.

   Exactness: every clock reading is VM issue cycles + hierarchy penalty
   cycles, and all ISA costs / miss penalties are multiples of 0.5, so
   timestamps, deltas and their sums are exact IEEE doubles (half-integer
   values far below 2^52).  Charged segments telescope: the sum over all
   frames equals last-boundary minus first-boundary with no rounding, so
   a completed run's total reconciles bit-for-bit with Report.cycles. *)

type node = {
  mutable cycles : float;
  mutable opens : int;
  mutable compaction_calls : int;
  mutable compaction_passes : int;
  mutable converts : int;
  mutable faults : int;
}

type t = {
  (* innermost frame first; [] = no span open (untracked time) *)
  mutable stack : string list;
  mutable cursor : float;
  mutable events : int;
  mutable unbalanced : int;
  tbl : (string list, node) Hashtbl.t;
}

let create () =
  { stack = []; cursor = 0.0; events = 0; unbalanced = 0; tbl = Hashtbl.create 64 }

let reset t =
  t.stack <- [];
  t.cursor <- 0.0;
  t.events <- 0;
  t.unbalanced <- 0;
  Hashtbl.reset t.tbl

let untracked = "(untracked)"

let node_of t path =
  match Hashtbl.find_opt t.tbl path with
  | Some n -> n
  | None ->
      let n =
        {
          cycles = 0.0;
          opens = 0;
          compaction_calls = 0;
          compaction_passes = 0;
          converts = 0;
          faults = 0;
        }
      in
      Hashtbl.add t.tbl path n;
      n

let current_node t =
  node_of t (match t.stack with [] -> [ untracked ] | stack -> stack)

(* Charge the clock segment [cursor, ts) to the innermost open frame and
   advance the cursor.  Called only at span boundaries, whose timestamps
   are monotone current-clock readings. *)
let charge t ts =
  let dt = ts -. t.cursor in
  if dt <> 0.0 then (current_node t).cycles <- (current_node t).cycles +. dt;
  t.cursor <- ts

let observe t ({ ts; ev; _ } : Telemetry.stamped) =
  t.events <- t.events + 1;
  match ev with
  | Telemetry.Span_open { frame } ->
      charge t ts;
      t.stack <- frame :: t.stack;
      (current_node t).opens <- (current_node t).opens + 1
  | Telemetry.Span_close { frame } -> (
      charge t ts;
      match t.stack with
      | top :: rest when String.equal top frame -> t.stack <- rest
      | stack when List.exists (String.equal frame) stack ->
          (* close of an outer frame: inner spans were abandoned without a
             close (should not happen; tolerated, counted) *)
          let rec pop = function
            | top :: rest ->
                if String.equal top frame then rest
                else begin
                  t.unbalanced <- t.unbalanced + 1;
                  pop rest
                end
            | [] -> []
          in
          t.stack <- pop stack
      | _ -> t.unbalanced <- t.unbalanced + 1)
  | Telemetry.Compaction { passes; _ } ->
      let n = current_node t in
      n.compaction_calls <- n.compaction_calls + 1;
      n.compaction_passes <- n.compaction_passes + passes
  | Telemetry.Convert _ -> (current_node t).converts <- (current_node t).converts + 1
  | Telemetry.Fault _ -> (current_node t).faults <- (current_node t).faults + 1
  | Telemetry.Level _ | Telemetry.Switch _ | Telemetry.Reexpand _
  | Telemetry.Cache _ | Telemetry.Fallback _ | Telemetry.Retry _
  | Telemetry.Deadline _ | Telemetry.Steal _ | Telemetry.Mark _ -> ()

(* Clearing the hub (the engine does between its warm and measured
   passes) must also discard warm-pass attributions, or the measured
   totals would double-count. *)
let sink t = Telemetry.callback_sink ~on_clear:(fun () -> reset t) (observe t)

let attach t tel = Telemetry.attach tel (sink t)

(* ------------------------------------------------------------------ *)
(* Views *)

type frame = {
  stack : string list;  (** outermost first *)
  cycles : float;
  opens : int;
  compaction_calls : int;
  compaction_passes : int;
  converts : int;
  faults : int;
}

let frames t =
  Hashtbl.fold
    (fun path (n : node) acc ->
      {
        stack = List.rev path;
        cycles = n.cycles;
        opens = n.opens;
        compaction_calls = n.compaction_calls;
        compaction_passes = n.compaction_passes;
        converts = n.converts;
        faults = n.faults;
      }
      :: acc)
    t.tbl []
  |> List.sort (fun a b ->
         match compare b.cycles a.cycles with
         | 0 -> compare a.stack b.stack
         | c -> c)

let total_cycles t =
  Hashtbl.fold (fun _ (n : node) acc -> acc +. n.cycles) t.tbl 0.0

let events_seen t = t.events

let unbalanced t = t.unbalanced

let path_string stack = String.concat ";" stack

(* Cycle values are exact half-integers; print them without loss so
   folded-stack consumers summing the column reconcile exactly. *)
let cycles_string c =
  if Float.is_integer c then Printf.sprintf "%.0f" c else Printf.sprintf "%.17g" c

let folded t =
  let buf = Buffer.create 256 in
  frames t
  |> List.filter (fun f -> f.cycles <> 0.0)
  |> List.sort (fun a b -> compare a.stack b.stack)
  |> List.iter (fun f ->
         Buffer.add_string buf (path_string f.stack);
         Buffer.add_char buf ' ';
         Buffer.add_string buf (cycles_string f.cycles);
         Buffer.add_char buf '\n');
  Buffer.contents buf

let pp_hotspots ?(top = 10) fmt t =
  let total = total_cycles t in
  let all = frames t in
  let shown = List.filteri (fun i _ -> i < top) all in
  Format.fprintf fmt "%12s %6s %7s %7s %5s  %s@." "CYCLES" "%" "OPENS" "CPASS"
    "CONV" "FRAME";
  List.iter
    (fun f ->
      Format.fprintf fmt "%12s %6.2f %7d %7d %5d  %s@." (cycles_string f.cycles)
        (if total > 0.0 then 100.0 *. f.cycles /. total else 0.0)
        f.opens f.compaction_passes f.converts (path_string f.stack))
    shown;
  let rest = List.length all - List.length shown in
  if rest > 0 then Format.fprintf fmt "  ... %d more frame(s)@." rest;
  Format.fprintf fmt "total: %s modeled cycles over %d events" (cycles_string total)
    t.events;
  if t.unbalanced > 0 then Format.fprintf fmt " (%d unbalanced spans)" t.unbalanced;
  Format.fprintf fmt "@."

(* Self-contained JSON (the experiment-layer JSON library sits above this
   one in the dependency order).  Frame paths are ASCII metadata from
   this codebase; escaped defensively anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "{\"total_cycles\":%s,\"events\":%d,\"unbalanced\":%d,\"frames\":["
       (cycles_string (total_cycles t))
       t.events t.unbalanced);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"stack\":[%s],\"cycles\":%s,\"opens\":%d,\"compaction_calls\":%d,\"compaction_passes\":%d,\"converts\":%d,\"faults\":%d}"
           (String.concat ","
              (List.map (fun s -> "\"" ^ json_escape s ^ "\"") f.stack))
           (cycles_string f.cycles) f.opens f.compaction_calls f.compaction_passes
           f.converts f.faults))
    (frames t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
