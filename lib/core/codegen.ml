open Vc_lang

exception Runtime_error of string

type layout = { params : string array; locals : string array }

let layout_of (program : Ast.program) =
  let info = Validate.check_exn program in
  {
    params = Array.of_list program.Ast.mth.Ast.params;
    locals = Array.of_list info.Validate.locals;
  }

let params l = l.params
let locals l = l.locals

type rt = { mutable frame : int array; locals : int array }

let make_rt l =
  { frame = Array.make (Array.length l.params) 0; locals = Array.make (max 1 (Array.length l.locals)) 0 }

let reset_locals rt = Array.fill rt.locals 0 (Array.length rt.locals) 0

type slot = Param of int | Local of int

let find_slot l name =
  let rec scan arr i mk =
    if i >= Array.length arr then None
    else if arr.(i) = name then Some (mk i)
    else scan arr (i + 1) mk
  in
  match scan l.params 0 (fun i -> Param i) with
  | Some s -> Some s
  | None -> scan l.locals 0 (fun i -> Local i)

let slot_exn l name =
  match find_slot l name with
  | Some s -> s
  | None -> raise (Runtime_error (Printf.sprintf "unbound variable %s" name))

let bool_of i = i <> 0
let of_bool b = if b then 1 else 0

let rec compile_expr l (e : Ast.expr) : rt -> int =
  match e with
  | Ast.Int n -> fun _ -> n
  | Ast.Bool b ->
      let v = of_bool b in
      fun _ -> v
  | Ast.Var name -> (
      match slot_exn l name with
      | Param i -> fun rt -> rt.frame.(i)
      | Local i -> fun rt -> rt.locals.(i))
  | Ast.Unop (Ast.Neg, e) ->
      let f = compile_expr l e in
      fun rt -> -f rt
  | Ast.Unop (Ast.Not, e) ->
      let f = compile_expr l e in
      fun rt -> of_bool (not (bool_of (f rt)))
  | Ast.Binop (op, a, b) -> compile_binop l op a b
  | Ast.Call (name, args) -> (
      match Builtins.find name with
      | None -> raise (Runtime_error (Printf.sprintf "unknown builtin %s" name))
      | Some fn ->
          let compiled = Array.of_list (List.map (compile_expr l) args) in
          if Array.length compiled <> fn.Builtins.arity then
            raise (Runtime_error (Printf.sprintf "bad arity for builtin %s" name));
          let buf = Array.make (Array.length compiled) 0 in
          fun rt ->
            Array.iteri (fun i f -> buf.(i) <- f rt) compiled;
            fn.Builtins.apply buf)

and compile_binop l op a b =
  let fa = compile_expr l a in
  let fb = compile_expr l b in
  match (op : Ast.binop) with
  | Ast.Add -> fun rt -> fa rt + fb rt
  | Ast.Sub -> fun rt -> fa rt - fb rt
  | Ast.Mul -> fun rt -> fa rt * fb rt
  | Ast.Div ->
      fun rt ->
        let d = fb rt in
        if d = 0 then raise (Runtime_error "division by zero");
        fa rt / d
  | Ast.Mod ->
      fun rt ->
        let d = fb rt in
        if d = 0 then raise (Runtime_error "modulo by zero");
        fa rt mod d
  | Ast.Lt -> fun rt -> of_bool (fa rt < fb rt)
  | Ast.Le -> fun rt -> of_bool (fa rt <= fb rt)
  | Ast.Gt -> fun rt -> of_bool (fa rt > fb rt)
  | Ast.Ge -> fun rt -> of_bool (fa rt >= fb rt)
  | Ast.Eq -> fun rt -> of_bool (fa rt = fb rt)
  | Ast.Ne -> fun rt -> of_bool (fa rt <> fb rt)
  | Ast.And -> fun rt -> if bool_of (fa rt) then fb rt else 0
  | Ast.Or -> fun rt -> if bool_of (fa rt) then 1 else fb rt
  | Ast.Band -> fun rt -> fa rt land fb rt
  | Ast.Bor -> fun rt -> fa rt lor fb rt
  | Ast.Bxor -> fun rt -> fa rt lxor fb rt
  | Ast.Shl -> fun rt -> Vc_lang.Builtins.shl (fa rt) (fb rt)
  | Ast.Shr -> fun rt -> Vc_lang.Builtins.shr (fa rt) (fb rt)

exception Returned

let set_frame rt frame = rt.frame <- frame

let compile_stmt l ~reduce ~spawn stmt =
  let rec compile (stmt : Ast.stmt) : rt -> unit =
    match stmt with
    | Ast.Skip -> fun _ -> ()
    | Ast.Return -> fun _ -> raise Returned
    | Ast.Seq (a, b) ->
        let fa = compile a in
        let fb = compile b in
        fun rt ->
          fa rt;
          fb rt
    | Ast.Assign (name, e) -> (
        let f = compile_expr l e in
        match slot_exn l name with
        | Local i -> fun rt -> rt.locals.(i) <- f rt
        | Param i -> fun rt -> rt.frame.(i) <- f rt)
    | Ast.If (cond, a, b) ->
        let fc = compile_expr l cond in
        let fa = compile a in
        let fb = compile b in
        fun rt -> if bool_of (fc rt) then fa rt else fb rt
    | Ast.While (cond, body) ->
        let fc = compile_expr l cond in
        let fbody = compile body in
        fun rt ->
          while bool_of (fc rt) do
            fbody rt
          done
    | Ast.Reduce (name, e) ->
        let f = compile_expr l e in
        fun rt -> reduce name (f rt)
    | Ast.Spawn { spawn_id; spawn_args } ->
        let compiled = Array.of_list (List.map (compile_expr l) spawn_args) in
        fun rt -> spawn ~site:spawn_id (Array.map (fun f -> f rt) compiled)
  in
  let f = compile stmt in
  fun rt -> try f rt with Returned -> ()

(* ------------------------------------------------------------------ *)
(* SoA compiled backend (ROADMAP item 1).

   [Soa.instantiate] specializes a blocked program once into step kernels
   that execute a whole level over unboxed structure-of-arrays frames:
   expressions compile to [unit -> int] closures reading columns through a
   single mutable cursor, spawn sites write evaluated arguments column-wise
   into destination buffers, and the only per-row work is a locals reset
   plus the compiled body — no per-thread [rt] allocation, no frame
   blitting, no list churn.  The instance also carries a classic scalar
   executor over the same reducer set for fault-quarantine fallback.

   An instance owns mutable scratch (cursor, sink cells, scalar rt), so it
   is single-domain: parallel schedulers instantiate once per domain. *)

module Soa = struct
  type buf = {
    nfields : int;
    mutable cols : int array array;
    mutable n : int;
    mutable cap : int;
  }

  let make_buf ~nfields cap =
    let cap = max cap 1 in
    {
      nfields;
      cols = Array.init (max 1 nfields) (fun _ -> Array.make cap 0);
      n = 0;
      cap;
    }

  let size b = b.n
  let clear b = b.n <- 0

  let reserve b extra =
    let need = b.n + extra in
    if need > b.cap then begin
      let cap = max need (2 * b.cap) in
      b.cols <-
        Array.map
          (fun col ->
            let c = Array.make cap 0 in
            Array.blit col 0 c 0 b.n;
            c)
          b.cols;
      b.cap <- cap
    end

  let push b frame =
    reserve b 1;
    let n = b.n in
    for f = 0 to b.nfields - 1 do
      b.cols.(f).(n) <- frame.(f)
    done;
    b.n <- n + 1

  let frame b row = Array.init b.nfields (fun f -> b.cols.(f).(row))
  let frames b = List.init b.n (frame b)

  let of_frames ~nfields fs =
    let b = make_buf ~nfields (max 1 (List.length fs)) in
    List.iter (push b) fs;
    b

  type cursor = {
    mutable cur : int array array;
    mutable row : int;
    locals : int array;
  }

  (* Shape of a compiled subexpression: known constant, direct column or
     local read, or residual closure.  Operators specialize on these so a
     hot expression like [n - 1] or [free & 8] is one closure, not a tree
     of them. *)
  type varg =
    | VConst of int
    | VCol of int
    | VLoc of int
    | VFun of (unit -> int)

  type inst = {
    nparams : int;
    num_spawns : int;
    new_buf : int -> buf;
    step : src:buf -> blocked:bool -> next:buf -> sites:buf array -> int;
    scalar :
      on_task:(depth:int -> base:bool -> unit) -> depth:int -> int array -> unit;
  }

  exception Continue_row

  let rec has_continue (bs : Blocked_ast.bstmt) =
    match bs with
    | Blocked_ast.Continue -> true
    | Blocked_ast.BSeq (a, b) | Blocked_ast.BIf (_, a, b) ->
        has_continue a || has_continue b
    | Blocked_ast.BWhile (_, body) -> has_continue body
    | Blocked_ast.BSkip | Blocked_ast.BAssign _ | Blocked_ast.BReduce _
    | Blocked_ast.NextAdd _ | Blocked_ast.NextsAdd _ ->
        false

  let instantiate (t : Blocked_ast.t) ~(reducers : Reducer.set) : inst =
    let program = t.Blocked_ast.source in
    let layout = layout_of program in
    let nparams = Array.length layout.params in
    let nlocals = Array.length layout.locals in
    let cur = { cur = [||]; row = 0; locals = Array.make (max 1 nlocals) 0 } in
    (* Sink cells: kernels are compiled once per instance, [step] points
       them at the per-call destination buffers before the row loop. *)
    let dummy = make_buf ~nfields:nparams 1 in
    let sink_next = ref dummy in
    let sink_sites = ref ([||] : buf array) in
    (* Value-shaped compilation: every subexpression classifies as a
       constant, a direct column/local load, or a residual closure, and
       each operator specializes on its operands' shapes.  Without this
       (no flambda here), every AST leaf costs an indirect call per row —
       exactly the dispatch this backend exists to remove.  Comparisons
       and commutative operators normalize the constant to the right so
       one specialization row per operator covers both argument orders. *)
    let rec cv (e : Ast.expr) : varg =
      match e with
      | Ast.Int n -> VConst n
      | Ast.Bool b -> VConst (of_bool b)
      | Ast.Var name -> (
          match slot_exn layout name with
          | Param i -> VCol i
          | Local i -> VLoc i)
      | Ast.Unop (Ast.Neg, e) -> (
          match cv e with
          | VConst n -> VConst (-n)
          | VCol i ->
              VFun
                (fun () ->
                  -Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row)
          | v ->
              let f = force v in
              VFun (fun () -> -f ()))
      | Ast.Unop (Ast.Not, e) -> (
          match cv e with
          | VConst n -> VConst (of_bool (n = 0))
          | v ->
              let f = force v in
              VFun (fun () -> of_bool (f () = 0)))
      | Ast.Binop (op, a, b) -> cbin op (cv a) (cv b)
      | Ast.Call (name, args) -> (
          match Builtins.find name with
          | None ->
              raise (Runtime_error (Printf.sprintf "unknown builtin %s" name))
          | Some fn ->
              let compiled = Array.of_list (List.map (fun a -> force (cv a)) args) in
              if Array.length compiled <> fn.Builtins.arity then
                raise
                  (Runtime_error (Printf.sprintf "bad arity for builtin %s" name));
              let buf = Array.make (Array.length compiled) 0 in
              VFun
                (fun () ->
                  Array.iteri (fun i f -> buf.(i) <- f ()) compiled;
                  fn.Builtins.apply buf))
    and force (v : varg) : unit -> int =
      match v with
      | VConst n -> fun () -> n
      | VCol i ->
          fun () -> Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row
      | VLoc i -> fun () -> Array.unsafe_get cur.locals i
      | VFun f -> f
    and cbin op a b =
      match ((op : Ast.binop), a, b) with
      (* ---- constant normalization (commutative / mirrored ops) ---- *)
      | (Ast.Add | Ast.Mul | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Eq | Ast.Ne),
        VConst _, (VCol _ | VLoc _ | VFun _) ->
          cbin op b a
      | Ast.Lt, VConst _, (VCol _ | VLoc _ | VFun _) -> cbin Ast.Gt b a
      | Ast.Le, VConst _, (VCol _ | VLoc _ | VFun _) -> cbin Ast.Ge b a
      | Ast.Gt, VConst _, (VCol _ | VLoc _ | VFun _) -> cbin Ast.Lt b a
      | Ast.Ge, VConst _, (VCol _ | VLoc _ | VFun _) -> cbin Ast.Le b a
      (* ---- add / sub ---- *)
      | Ast.Add, VConst x, VConst y -> VConst (x + y)
      | Ast.Add, VCol i, VConst k ->
          VFun
            (fun () -> Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row + k)
      | Ast.Add, VLoc i, VConst k ->
          VFun (fun () -> Array.unsafe_get cur.locals i + k)
      | Ast.Add, VCol i, VCol j ->
          VFun
            (fun () ->
              Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row
              + Array.unsafe_get (Array.unsafe_get cur.cur j) cur.row)
      | Ast.Add, VFun f, VConst k -> VFun (fun () -> f () + k)
      | Ast.Add, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> fa () + fb ())
      | Ast.Sub, VConst x, VConst y -> VConst (x - y)
      | Ast.Sub, VCol i, VConst k ->
          VFun
            (fun () -> Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row - k)
      | Ast.Sub, VLoc i, VConst k ->
          VFun (fun () -> Array.unsafe_get cur.locals i - k)
      | Ast.Sub, VCol i, VCol j ->
          VFun
            (fun () ->
              Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row
              - Array.unsafe_get (Array.unsafe_get cur.cur j) cur.row)
      | Ast.Sub, VFun f, VConst k -> VFun (fun () -> f () - k)
      | Ast.Sub, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> fa () - fb ())
      (* ---- mul ---- *)
      | Ast.Mul, VConst x, VConst y -> VConst (x * y)
      | Ast.Mul, VCol i, VConst k ->
          VFun
            (fun () -> Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row * k)
      | Ast.Mul, VCol i, VCol j ->
          VFun
            (fun () ->
              Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row
              * Array.unsafe_get (Array.unsafe_get cur.cur j) cur.row)
      | Ast.Mul, VFun f, VConst k -> VFun (fun () -> f () * k)
      | Ast.Mul, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> fa () * fb ())
      (* ---- div / mod (checked; a constant divisor checks at compile) ---- *)
      | Ast.Div, VConst x, VConst y when y <> 0 -> VConst (x / y)
      | Ast.Div, a, VConst k when k <> 0 ->
          let fa = force a in
          VFun (fun () -> fa () / k)
      | Ast.Div, a, b ->
          let fa = force a and fb = force b in
          VFun
            (fun () ->
              let d = fb () in
              if d = 0 then raise (Runtime_error "division by zero");
              fa () / d)
      | Ast.Mod, VConst x, VConst y when y <> 0 -> VConst (x mod y)
      | Ast.Mod, a, VConst k when k <> 0 ->
          let fa = force a in
          VFun (fun () -> fa () mod k)
      | Ast.Mod, a, b ->
          let fa = force a and fb = force b in
          VFun
            (fun () ->
              let d = fb () in
              if d = 0 then raise (Runtime_error "modulo by zero");
              fa () mod d)
      (* ---- comparisons (constants normalized right above) ---- *)
      | Ast.Lt, VConst x, VConst y -> VConst (of_bool (x < y))
      | Ast.Lt, VCol i, VConst k ->
          VFun
            (fun () ->
              of_bool (Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row < k))
      | Ast.Lt, VLoc i, VConst k ->
          VFun (fun () -> of_bool (Array.unsafe_get cur.locals i < k))
      | Ast.Lt, VCol i, VCol j ->
          VFun
            (fun () ->
              of_bool
                (Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row
                < Array.unsafe_get (Array.unsafe_get cur.cur j) cur.row))
      | Ast.Lt, VFun f, VConst k -> VFun (fun () -> of_bool (f () < k))
      | Ast.Lt, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> of_bool (fa () < fb ()))
      | Ast.Le, VConst x, VConst y -> VConst (of_bool (x <= y))
      | Ast.Le, VCol i, VConst k ->
          VFun
            (fun () ->
              of_bool
                (Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row <= k))
      | Ast.Le, VLoc i, VConst k ->
          VFun (fun () -> of_bool (Array.unsafe_get cur.locals i <= k))
      | Ast.Le, VFun f, VConst k -> VFun (fun () -> of_bool (f () <= k))
      | Ast.Le, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> of_bool (fa () <= fb ()))
      | Ast.Gt, VConst x, VConst y -> VConst (of_bool (x > y))
      | Ast.Gt, VCol i, VConst k ->
          VFun
            (fun () ->
              of_bool (Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row > k))
      | Ast.Gt, VLoc i, VConst k ->
          VFun (fun () -> of_bool (Array.unsafe_get cur.locals i > k))
      | Ast.Gt, VFun f, VConst k -> VFun (fun () -> of_bool (f () > k))
      | Ast.Gt, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> of_bool (fa () > fb ()))
      | Ast.Ge, VConst x, VConst y -> VConst (of_bool (x >= y))
      | Ast.Ge, VCol i, VConst k ->
          VFun
            (fun () ->
              of_bool
                (Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row >= k))
      | Ast.Ge, VLoc i, VConst k ->
          VFun (fun () -> of_bool (Array.unsafe_get cur.locals i >= k))
      | Ast.Ge, VFun f, VConst k -> VFun (fun () -> of_bool (f () >= k))
      | Ast.Ge, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> of_bool (fa () >= fb ()))
      | Ast.Eq, VConst x, VConst y -> VConst (of_bool (x = y))
      | Ast.Eq, VCol i, VConst k ->
          VFun
            (fun () ->
              of_bool (Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row = k))
      | Ast.Eq, VLoc i, VConst k ->
          VFun (fun () -> of_bool (Array.unsafe_get cur.locals i = k))
      | Ast.Eq, VCol i, VCol j ->
          VFun
            (fun () ->
              of_bool
                (Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row
                = Array.unsafe_get (Array.unsafe_get cur.cur j) cur.row))
      | Ast.Eq, VFun f, VConst k -> VFun (fun () -> of_bool (f () = k))
      | Ast.Eq, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> of_bool (fa () = fb ()))
      | Ast.Ne, VConst x, VConst y -> VConst (of_bool (x <> y))
      | Ast.Ne, VCol i, VConst k ->
          VFun
            (fun () ->
              of_bool
                (Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row <> k))
      | Ast.Ne, VLoc i, VConst k ->
          VFun (fun () -> of_bool (Array.unsafe_get cur.locals i <> k))
      | Ast.Ne, VFun f, VConst k -> VFun (fun () -> of_bool (f () <> k))
      | Ast.Ne, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> of_bool (fa () <> fb ()))
      (* ---- short-circuit and/or (same semantics as the interpreter) ---- *)
      | Ast.And, VConst 0, _ -> VConst 0
      | Ast.And, VConst _, b -> b
      | Ast.And, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> if fa () <> 0 then fb () else 0)
      | Ast.Or, VConst 0, b -> b
      | Ast.Or, VConst _, _ -> VConst 1
      | Ast.Or, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> if fa () <> 0 then 1 else fb ())
      (* ---- bitwise ---- *)
      | Ast.Band, VConst x, VConst y -> VConst (x land y)
      | Ast.Band, VCol i, VConst k ->
          VFun
            (fun () ->
              Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row land k)
      | Ast.Band, VLoc i, VConst k ->
          VFun (fun () -> Array.unsafe_get cur.locals i land k)
      | Ast.Band, VCol i, VCol j ->
          VFun
            (fun () ->
              Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row
              land Array.unsafe_get (Array.unsafe_get cur.cur j) cur.row)
      | Ast.Band, VFun f, VConst k -> VFun (fun () -> f () land k)
      | Ast.Band, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> fa () land fb ())
      | Ast.Bor, VConst x, VConst y -> VConst (x lor y)
      | Ast.Bor, VCol i, VConst k ->
          VFun
            (fun () ->
              Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row lor k)
      | Ast.Bor, VLoc i, VConst k ->
          VFun (fun () -> Array.unsafe_get cur.locals i lor k)
      | Ast.Bor, VCol i, VCol j ->
          VFun
            (fun () ->
              Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row
              lor Array.unsafe_get (Array.unsafe_get cur.cur j) cur.row)
      | Ast.Bor, VFun f, VConst k -> VFun (fun () -> f () lor k)
      | Ast.Bor, VFun f, VCol j ->
          VFun
            (fun () ->
              f () lor Array.unsafe_get (Array.unsafe_get cur.cur j) cur.row)
      | Ast.Bor, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> fa () lor fb ())
      | Ast.Bxor, VConst x, VConst y -> VConst (x lxor y)
      | Ast.Bxor, VCol i, VConst k ->
          VFun
            (fun () ->
              Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row lxor k)
      | Ast.Bxor, VFun f, VConst k -> VFun (fun () -> f () lxor k)
      | Ast.Bxor, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> fa () lxor fb ())
      (* ---- shifts: a constant count compiles to a bare lsl/asr ---- *)
      | Ast.Shl, VConst x, VConst y -> VConst (Vc_lang.Builtins.shl x y)
      | Ast.Shl, a, VConst k ->
          let s = k land 63 in
          if s > 62 then VConst 0
          else
            let fa = force a in
            VFun (fun () -> fa () lsl s)
      | Ast.Shl, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> Vc_lang.Builtins.shl (fa ()) (fb ()))
      | Ast.Shr, VConst x, VConst y -> VConst (Vc_lang.Builtins.shr x y)
      | Ast.Shr, a, VConst k ->
          let s = k land 63 in
          let s = if s > 62 then 62 else s in
          let fa = force a in
          VFun (fun () -> fa () asr s)
      | Ast.Shr, a, b ->
          let fa = force a and fb = force b in
          VFun (fun () -> Vc_lang.Builtins.shr (fa ()) (fb ()))
    in
    let ce e = force (cv e) in
    (* Spawn pushes specialize on arity: the capacity check inlines, and
       1–3-field frames (every benchmark here) skip the field loop. *)
    let make_push exprs =
      let fs = Array.of_list (List.map ce exprs) in
      match fs with
      | [| f0 |] ->
          fun (b : buf) ->
            if b.n = b.cap then reserve b 1;
            let n = b.n in
            Array.unsafe_set (Array.unsafe_get b.cols 0) n (f0 ());
            b.n <- n + 1
      | [| f0; f1 |] ->
          fun (b : buf) ->
            if b.n = b.cap then reserve b 1;
            let n = b.n in
            Array.unsafe_set (Array.unsafe_get b.cols 0) n (f0 ());
            Array.unsafe_set (Array.unsafe_get b.cols 1) n (f1 ());
            b.n <- n + 1
      | [| f0; f1; f2 |] ->
          fun (b : buf) ->
            if b.n = b.cap then reserve b 1;
            let n = b.n in
            Array.unsafe_set (Array.unsafe_get b.cols 0) n (f0 ());
            Array.unsafe_set (Array.unsafe_get b.cols 1) n (f1 ());
            Array.unsafe_set (Array.unsafe_get b.cols 2) n (f2 ());
            b.n <- n + 1
      | fs ->
          let nf = Array.length fs in
          fun (b : buf) ->
            if b.n = b.cap then reserve b 1;
            let n = b.n in
            let cols = b.cols in
            for f = 0 to nf - 1 do
              Array.unsafe_set (Array.unsafe_get cols f) n
                ((Array.unsafe_get fs f) ())
            done;
            b.n <- n + 1
    in
    let rec cb (bs : Blocked_ast.bstmt) : unit -> unit =
      match bs with
      | Blocked_ast.BSkip -> fun () -> ()
      | Blocked_ast.Continue -> fun () -> raise Continue_row
      | Blocked_ast.BSeq (a, b) ->
          let fa = cb a and fb = cb b in
          fun () ->
            fa ();
            fb ()
      | Blocked_ast.BAssign (name, e) -> (
          match (slot_exn layout name, cv e) with
          | Local i, VConst k -> fun () -> Array.unsafe_set cur.locals i k
          | Local i, v ->
              let f = force v in
              fun () -> Array.unsafe_set cur.locals i (f ())
          | Param i, v ->
              (* a param assignment writes the thread's own row in place;
                 each row is visited exactly once per level, so this is the
                 SoA image of mutating a private frame *)
              let f = force v in
              fun () ->
                Array.unsafe_set (Array.unsafe_get cur.cur i) cur.row (f ()))
      | Blocked_ast.BIf (c, a, b) -> (
          match cv c with
          | VConst 0 -> cb b
          | VConst _ -> cb a
          | v ->
              let fc = force v in
              let fa = cb a and fb = cb b in
              fun () -> if fc () <> 0 then fa () else fb ())
      | Blocked_ast.BWhile (c, body) ->
          let fc = ce c in
          let fbody = cb body in
          fun () ->
            while fc () <> 0 do
              fbody ()
            done
      | Blocked_ast.BReduce (name, e) -> (
          (* the cell is resolved here, once, instead of per call, and the
             argument stays shaped so a column/local feeds the reducer
             without an intermediate closure *)
          let cell = Reducer.find reducers name in
          match cv e with
          | VConst k -> fun () -> Reducer.update cell k
          | VCol i ->
              fun () ->
                Reducer.update cell
                  (Array.unsafe_get (Array.unsafe_get cur.cur i) cur.row)
          | VLoc i ->
              fun () -> Reducer.update cell (Array.unsafe_get cur.locals i)
          | VFun f -> fun () -> Reducer.update cell (f ()))
      | Blocked_ast.NextAdd exprs -> (
          (* the push body is inlined into the statement closure: a spawn
             is one indirect call per field, not an extra hop through a
             shared push closure *)
          match Array.of_list (List.map ce exprs) with
          | [| f0 |] ->
              fun () ->
                let b = !sink_next in
                if b.n = b.cap then reserve b 1;
                let n = b.n in
                Array.unsafe_set (Array.unsafe_get b.cols 0) n (f0 ());
                b.n <- n + 1
          | [| f0; f1 |] ->
              fun () ->
                let b = !sink_next in
                if b.n = b.cap then reserve b 1;
                let n = b.n in
                Array.unsafe_set (Array.unsafe_get b.cols 0) n (f0 ());
                Array.unsafe_set (Array.unsafe_get b.cols 1) n (f1 ());
                b.n <- n + 1
          | [| f0; f1; f2 |] ->
              fun () ->
                let b = !sink_next in
                if b.n = b.cap then reserve b 1;
                let n = b.n in
                Array.unsafe_set (Array.unsafe_get b.cols 0) n (f0 ());
                Array.unsafe_set (Array.unsafe_get b.cols 1) n (f1 ());
                Array.unsafe_set (Array.unsafe_get b.cols 2) n (f2 ());
                b.n <- n + 1
          | _ ->
              let push = make_push exprs in
              fun () -> push !sink_next)
      | Blocked_ast.NextsAdd (site, exprs) -> (
          match Array.of_list (List.map ce exprs) with
          | [| f0 |] ->
              fun () ->
                let b = Array.unsafe_get !sink_sites site in
                if b.n = b.cap then reserve b 1;
                let n = b.n in
                Array.unsafe_set (Array.unsafe_get b.cols 0) n (f0 ());
                b.n <- n + 1
          | [| f0; f1 |] ->
              fun () ->
                let b = Array.unsafe_get !sink_sites site in
                if b.n = b.cap then reserve b 1;
                let n = b.n in
                Array.unsafe_set (Array.unsafe_get b.cols 0) n (f0 ());
                Array.unsafe_set (Array.unsafe_get b.cols 1) n (f1 ());
                b.n <- n + 1
          | [| f0; f1; f2 |] ->
              fun () ->
                let b = Array.unsafe_get !sink_sites site in
                if b.n = b.cap then reserve b 1;
                let n = b.n in
                Array.unsafe_set (Array.unsafe_get b.cols 0) n (f0 ());
                Array.unsafe_set (Array.unsafe_get b.cols 1) n (f1 ());
                Array.unsafe_set (Array.unsafe_get b.cols 2) n (f2 ());
                b.n <- n + 1
          | _ ->
              let push = make_push exprs in
              fun () -> push (Array.unsafe_get !sink_sites site))
    in
    let kernel bs =
      let k = cb bs in
      if has_continue bs then fun () -> (try k () with Continue_row -> ())
      else k
    in
    let bfsm = t.Blocked_ast.bfs_method in
    let blkm = t.Blocked_ast.blocked_method in
    let is_base_k = ce bfsm.Blocked_ast.is_base in
    let bfs_base = kernel bfsm.Blocked_ast.base in
    let bfs_ind = kernel bfsm.Blocked_ast.inductive in
    let blk_base = kernel blkm.Blocked_ast.base in
    let blk_ind = kernel blkm.Blocked_ast.inductive in
    let step ~src ~blocked ~next ~sites =
      sink_next := next;
      sink_sites := sites;
      cur.cur <- src.cols;
      let base_k = if blocked then blk_base else bfs_base in
      let ind_k = if blocked then blk_ind else bfs_ind in
      let n = src.n in
      let nbase = ref 0 in
      if nlocals = 0 then
        for r = 0 to n - 1 do
          cur.row <- r;
          if is_base_k () <> 0 then begin
            incr nbase;
            base_k ()
          end
          else ind_k ()
        done
      else
        for r = 0 to n - 1 do
          cur.row <- r;
          Array.fill cur.locals 0 nlocals 0;
          if is_base_k () <> 0 then begin
            incr nbase;
            base_k ()
          end
          else ind_k ()
        done;
      sink_next := dummy;
      sink_sites := [||];
      !nbase
    in
    (* Scalar fallback: classic per-thread codegen over the source program,
       driven by an explicit stack — used to re-execute quarantined levels
       after a fault with exact reducer values and task counts. *)
    let m = program.Ast.mth in
    let rt = make_rt layout in
    let sc_children : int array list ref = ref [] in
    let sc_is_base = compile_expr layout m.Ast.is_base in
    let sc_reduce name v = Reducer.reduce reducers name v in
    let sc_base =
      compile_stmt layout ~reduce:sc_reduce ~spawn:(fun ~site:_ _ -> ()) m.Ast.base
    in
    let sc_ind =
      compile_stmt layout ~reduce:sc_reduce
        ~spawn:(fun ~site:_ args -> sc_children := args :: !sc_children)
        m.Ast.inductive
    in
    let scalar ~on_task ~depth frame =
      let stack = ref [ (frame, depth) ] in
      let running = ref true in
      while !running do
        match !stack with
        | [] -> running := false
        | (fr, d) :: rest ->
            stack := rest;
            (* frames on the stack are single-owner, so aliasing instead of
               blitting is safe (same contract as Blocked_interp) *)
            set_frame rt fr;
            reset_locals rt;
            if sc_is_base rt <> 0 then begin
              on_task ~depth:d ~base:true;
              sc_base rt
            end
            else begin
              on_task ~depth:d ~base:false;
              sc_children := [];
              sc_ind rt;
              List.iter (fun ch -> stack := (ch, d + 1) :: !stack) !sc_children
            end
      done
    in
    {
      nparams;
      num_spawns = t.Blocked_ast.num_spawns;
      new_buf = (fun cap -> make_buf ~nfields:nparams cap);
      step;
      scalar;
    }
end
