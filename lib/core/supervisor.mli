(** Supervised execution: budgets, fault containment, recovery accounting.

    The supervisor wraps {!Engine.run} / {!Blocked_interp.run} so that a
    run either completes — possibly degraded, with quarantined blocks
    re-executed on the scalar path — or terminates promptly with a typed
    {!Vc_error.t} instead of an arbitrary exception.  Budgets (modeled
    cycles, wall-clock seconds, live frames) are enforced cooperatively by
    the executors at level boundaries; task limits surface as
    [Budget_exceeded] errors too, so the caller can apply the exit-code
    convention uniformly: 0 ok, 1 fault/verification failure, 2 budget
    exceeded ({!Vc_error.exit_code}).

    Recovery accounting rides the telemetry bus (a counting sink observes
    [Fault], [Fallback] and [Deadline] events) rather than widening
    {!Report.t}, which would invalidate persisted run caches. *)

type budgets = {
  deadline : float option;  (** modeled-cycle ceiling (engine only) *)
  wall_deadline : float option;  (** wall-clock ceiling, seconds *)
  max_live_frames : int option;  (** live-frame ceiling *)
}

val no_budgets : budgets

val budgets :
  ?deadline:float -> ?wall_deadline:float -> ?max_live_frames:int -> unit -> budgets

val clamp_budgets : ceiling:budgets -> budgets -> budgets
(** Tightest-wins merge of per-request budgets against an operator
    ceiling: each field is the minimum of the two when both are set, the
    set one otherwise.  The serve daemon applies its [--wall-deadline]
    etc. ceilings this way, so a request can tighten but never relax
    them. *)

type outcome = {
  report : Report.t;
  fallbacks : int;  (** quarantined blocks re-run on the scalar path *)
  faults_seen : int;  (** faults surfaced (injected or organic) *)
  deadline_events : int;  (** budget-violation telemetry events *)
}

val run :
  ?compact:Vc_simd.Compact.engine ->
  ?max_tasks:int ->
  ?cutoff:int ->
  ?warm:bool ->
  ?trace:Trace.t ->
  ?telemetry:Telemetry.t ->
  ?faults:Fault.plan ->
  ?recover:bool ->
  ?budgets:budgets ->
  spec:Spec.t ->
  machine:Vc_mem.Machine.t ->
  strategy:Policy.strategy ->
  unit ->
  (outcome, Vc_error.t) result
(** Supervised {!Engine.run}.  With [recover:true] (default) injected and
    organic vectorized-path faults degrade to scalar re-execution — the
    outcome's [report] then has reducer values and task counts exactly
    equal to a fault-free run, and [fallbacks] counts the quarantines.
    [Error e] carries the typed failure: budget violations when a budget
    in [budgets] was exceeded, the fault itself when [recover:false]. *)

val run_domains :
  ?compact:Vc_simd.Compact.engine ->
  ?max_tasks:int ->
  ?cutoff:int ->
  ?chunks:int ->
  ?steal_cost:float ->
  ?seed:int ->
  ?telemetry:Telemetry.t ->
  ?faults:Fault.plan ->
  ?recover:bool ->
  ?budgets:budgets ->
  spec:Spec.t ->
  machine:Vc_mem.Machine.t ->
  strategy:Policy.strategy ->
  domains:int ->
  unit ->
  (Domain_sched.result, Vc_error.t) result
(** Supervised {!Domain_sched.run}: the hybrid multicore × SIMD scheduler
    under the same typed-error contract as {!run}.  Budgets apply per
    engine context (expansion phase and each chunk independently); the
    returned {!Domain_sched.result} carries its own cross-context
    fault/fallback totals, so no counting sink is attached here. *)

type backend_outcome = {
  result : Backend.result;
  b_fallbacks : int;  (** quarantined levels re-run on the scalar path *)
  b_faults_seen : int;
  b_deadline_events : int;
}

val run_backend :
  ?strategy:Policy.strategy ->
  ?max_tasks:int ->
  ?telemetry:Telemetry.t ->
  ?faults:Fault.plan ->
  ?recover:bool ->
  ?budgets:budgets ->
  ?domains:int ->
  Backend.t ->
  Backend.source ->
  roots:int array list ->
  (backend_outcome, Vc_error.t) result
(** Supervised {!Backend.timed_run}: wall-clock backends ({!Backend.interp},
    {!Backend.compiled}) under the same typed-error and recovery contract
    as {!run}.  Backends have no cost model, so [budgets.deadline] is
    ignored; with [recover:true] (default) injected level faults degrade
    to scalar re-execution with bit-equal reducers and task counts. *)

val run_blocked :
  ?strategy:Policy.strategy ->
  ?max_tasks:int ->
  ?telemetry:Telemetry.t ->
  ?budgets:budgets ->
  Blocked_ast.t ->
  int list ->
  (Blocked_interp.result, Vc_error.t) result
(** Supervised {!Blocked_interp.run}.  The interpreter has no cost model,
    so [budgets.deadline] is ignored; wall-clock and live-frame budgets
    apply. *)
