(** Compile a validated DSL program into an executable {!Spec.t}.

    This is the bridge from the language front-end to the measured engine:
    the method's parameters become the Thread schema, the compiled
    [isBase] / base / inductive closures become the spec callbacks, and the
    static AST sizes become the kernel instruction weights.  The engine
    then runs the DSL program under any strategy with full cost modeling —
    the fully-automatic path the paper applies to benchmarks whose whole
    program fits the language (fib, knapsack, ..., §5 "AoS to SoA"). *)

val spec_of_program :
  ?lane_kind:Vc_simd.Lane.kind ->
  ?name:string ->
  Vc_lang.Ast.program ->
  args:int list ->
  Spec.t
(** [lane_kind] defaults to [I32]; pass [I8] etc. to model the paper's
    narrow-data-type benchmarks (Table 1).  [name] defaults to the method
    name.  Raises [Vc_lang.Validate.Invalid] on an invalid program and
    [Invalid_argument] on an arity mismatch.

    The returned spec is domain-safe: the compiled callbacks keep their
    scratch runtime state (frame registers, spawn routing cells) in
    domain-local storage, so {!Domain_sched} may execute chunks of the
    same spec concurrently on several domains. *)
