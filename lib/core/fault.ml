type site = Compact | Convert | Alloc | Cache

let all_sites = [ Compact; Convert; Alloc; Cache ]

let num_sites = List.length all_sites

let site_name = function
  | Compact -> "compact"
  | Convert -> "convert"
  | Alloc -> "alloc"
  | Cache -> "cache"

let site_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "compact" | "compaction" -> Some Compact
  | "convert" | "conversion" -> Some Convert
  | "alloc" | "block" | "block-alloc" -> Some Alloc
  | "cache" | "cache-io" -> Some Cache
  | _ -> None

let index = function Compact -> 0 | Convert -> 1 | Alloc -> 2 | Cache -> 3

let err_site = function
  | Compact -> Vc_error.Compaction
  | Convert -> Vc_error.Conversion
  | Alloc -> Vc_error.Block_alloc
  | Cache -> Vc_error.Cache_io

type plan = {
  seed : int;
  period : int;  (** 0 = disabled; otherwise a site faults ~1/period calls *)
  sites : bool array;
  calls : int Atomic.t array;
  fired : int Atomic.t array;
}

let none =
  {
    seed = 0;
    period = 0;
    sites = Array.make num_sites false;
    calls = Array.init num_sites (fun _ -> Atomic.make 0);
    fired = Array.init num_sites (fun _ -> Atomic.make 0);
  }

let make ?(rate = 0.25) ~seed ~sites () =
  if not (Float.is_finite rate) || rate <= 0.0 || rate > 1.0 then
    invalid_arg "Fault.make: rate must be in (0, 1]";
  let enabled = Array.make num_sites false in
  List.iter (fun s -> enabled.(index s) <- true) sites;
  {
    seed;
    period = (if sites = [] then 0 else max 1 (int_of_float (Float.round (1.0 /. rate))));
    sites = enabled;
    calls = Array.init num_sites (fun _ -> Atomic.make 0);
    fired = Array.init num_sites (fun _ -> Atomic.make 0);
  }

let armed plan = plan.period > 0

let armed_at plan site = plan.period > 0 && plan.sites.(index site)

let sites plan = List.filter (armed_at plan) all_sites

let seed plan = plan.seed

(* splitmix-style avalanche over (seed, site, call#): the fault pattern is
   a deterministic function of the plan and the call sequence, so a chaos
   run replays exactly and a retried task (whose calls resume at a later
   count) sees a different — usually fault-free — pattern. *)
let mix seed site k =
  let h = ref (seed lxor (site * 0x9E3779B9) lxor (k * 0x85EBCA6B) land max_int) in
  h := (!h lxor (!h lsr 15)) * 0x2C1B3C6D land max_int;
  h := (!h lxor (!h lsr 12)) * 0x297A2D39 land max_int;
  !h lxor (!h lsr 15)

let trip plan site ~phase ~hint ~detail =
  if armed_at plan site then begin
    let i = index site in
    let k = Atomic.fetch_and_add plan.calls.(i) 1 in
    if mix plan.seed i k mod plan.period = 0 then begin
      Atomic.incr plan.fired.(i);
      Vc_error.fail ~phase (err_site site) hint "injected fault #%d at %s: %s" k
        (site_name site) detail
    end
  end

(* Derive an independent sub-plan: same sites and rate, fresh counters,
   and a seed avalanched from (seed, salt) — channel [num_sites] so a
   sub-plan seed never collides with a site's own fault pattern.  Each
   parallel chunk runs under its own sub-plan, so the fault pattern is a
   function of the chunk index alone, not of which domain (or in what
   order) the chunk happened to execute. *)
let split plan ~salt =
  if plan.period = 0 then none
  else
    {
      plan with
      seed = mix plan.seed num_sites salt;
      calls = Array.init num_sites (fun _ -> Atomic.make 0);
      fired = Array.init num_sites (fun _ -> Atomic.make 0);
    }

let counts a = List.map (fun s -> (s, Atomic.get a.(index s))) all_sites

let fired plan = List.filter (fun (_, n) -> n > 0) (counts plan.fired)

let calls plan = List.filter (fun (_, n) -> n > 0) (counts plan.calls)

let total_fired plan =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 plan.fired

let reset plan =
  Array.iter (fun c -> Atomic.set c 0) plan.calls;
  Array.iter (fun c -> Atomic.set c 0) plan.fired

let describe plan =
  if not (armed plan) then "no faults"
  else
    Printf.sprintf "seed %d, ~1/%d calls at {%s}" plan.seed plan.period
      (String.concat "," (List.map site_name (sites plan)))

let parse_sites spec =
  if String.trim spec = "" || String.lowercase_ascii (String.trim spec) = "all" then
    Ok all_sites
  else
    let names = String.split_on_char ',' spec in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | "" :: rest -> go acc rest
      | name :: rest -> (
          match site_of_string name with
          | Some s -> go (if List.mem s acc then acc else s :: acc) rest
          | None ->
              Error
                (Printf.sprintf "unknown fault site %S (expected %s)" name
                   (String.concat "|" (List.map site_name all_sites))))
    in
    go [] names

(* VC_FAULT_SEED arms a plan for the whole process; VC_FAULT_SITES (comma
   list, default all) and VC_FAULT_RATE refine it. *)
let of_env () =
  match Sys.getenv_opt "VC_FAULT_SEED" with
  | None -> none
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | None -> none
      | Some seed ->
          let sites =
            match Sys.getenv_opt "VC_FAULT_SITES" with
            | None -> all_sites
            | Some spec -> (
                match parse_sites spec with Ok sites -> sites | Error _ -> all_sites)
          in
          let rate =
            match Option.bind (Sys.getenv_opt "VC_FAULT_RATE") float_of_string_opt with
            | Some r when Float.is_finite r && r > 0.0 && r <= 1.0 -> r
            | _ -> 0.25
          in
          make ~rate ~seed ~sites ())
