type schedule = Lpt | Work_stealing of { steal_cost : float; seed : int }

type result = {
  workers : int;
  jobs : int;
  frontier : int;
  expansion_cycles : float;
  makespan_cycles : float;
  total_work_cycles : float;
  cycles : float;
  balance : float;
  steals : int;
  reducers : (string * int) list;
}

(* The measured serial expansion phase: the same per-level work the engine
   charges (packed reads, vectorized isBase, compaction, vectorized base
   cases, site-major spawning), run until the frontier can feed the
   workers. *)
let expand ~(spec : Spec.t) ~(machine : Vc_mem.Machine.t) ~target =
  let m = Measure.create machine in
  let vm = m.Measure.vm in
  let isa = machine.Vc_mem.Machine.isa in
  let width = Vc_simd.Isa.lanes isa (Schema.lane_kind spec.Spec.schema) in
  let elem = Schema.elem_bytes spec.Spec.schema ~isa in
  let nfields = Schema.num_fields spec.Spec.schema in
  let compact = Vc_simd.Compact.default_for isa ~width in
  let insns = spec.Spec.insns in
  let reducers = Spec.make_reducers spec in
  let make_block capacity =
    Block.create m.Measure.addr ~schema:spec.Spec.schema ~isa ~capacity
  in
  let charge_chunks ~n ~f =
    let chunk = ref 0 in
    while !chunk < n do
      let lanes = min width (n - !chunk) in
      f ~row:!chunk ~lanes;
      chunk := !chunk + width
    done
  in
  let charge_read blk =
    for fld = 0 to nfields - 1 do
      charge_chunks ~n:(Block.size blk) ~f:(fun ~row ~lanes ->
          Vc_simd.Vm.vector_load vm
            ~addr:(Block.field_addr blk ~field:fld ~row)
            ~lanes ~lane_bytes:elem)
    done
  in
  let charge_append blk ~from ~count =
    for fld = 0 to nfields - 1 do
      charge_chunks ~n:count ~f:(fun ~row ~lanes ->
          Vc_simd.Vm.vector_store vm
            ~addr:(Block.field_addr blk ~field:fld ~row:(from + row))
            ~lanes ~lane_bytes:elem)
    done
  in
  let cur = ref (make_block (max 16 (List.length spec.Spec.roots))) in
  List.iter (fun frame -> Block.push !cur frame) spec.Spec.roots;
  charge_append !cur ~from:0 ~count:(Block.size !cur);
  let next = ref (make_block 16) in
  let expanded_tasks = ref 0 in
  while Block.size !cur > 0 && Block.size !cur < target do
    let blk = !cur in
    let n = Block.size blk in
    expanded_tasks := !expanded_tasks + n;
    charge_read blk;
    Vc_simd.Vm.batch vm ~width ~n ~insns_per_task:insns.Spec.check_insns ();
    Vc_simd.Vm.scalar_ops vm (n * insns.Spec.scalar_insns);
    let base_rows, rec_rows =
      Vc_simd.Compact.partition ~vm ~engine:compact ~width ~n
        ~pred:(fun row -> spec.Spec.is_base blk row)
    in
    Vc_simd.Vm.batch vm ~classify:true ~width ~n:(Array.length base_rows)
      ~insns_per_task:insns.Spec.base_insns ();
    Array.iter (fun row -> spec.Spec.exec_base reducers blk row) base_rows;
    Vc_simd.Vm.batch vm ~classify:true ~width ~n:(Array.length rec_rows)
      ~insns_per_task:insns.Spec.inductive_insns ();
    let dst = !next in
    Block.clear dst;
    let dst = Block.ensure_room dst m.Measure.addr ~extra:(Array.length rec_rows * spec.Spec.num_spawns) in
    for site = 0 to spec.Spec.num_spawns - 1 do
      Vc_simd.Vm.batch vm ~width ~n:(Array.length rec_rows)
        ~insns_per_task:insns.Spec.spawn_insns ();
      let before = Block.size dst in
      Array.iter (fun row -> ignore (spec.Spec.spawn blk row ~site ~dst : bool)) rec_rows;
      charge_append dst ~from:before ~count:(Block.size dst - before)
    done;
    next := !cur;
    cur := dst
  done;
  let frontier =
    List.init (Block.size !cur) (fun row ->
        Array.init nfields (fun fld -> Block.get !cur ~field:fld ~row))
  in
  (frontier, Vc_mem.Cost.cycles vm m.Measure.hier, reducers, !expanded_tasks)

(* Round-robin dealing spreads adjacent (correlated-size) subtrees across
   jobs, like random stealing would. *)
let deal frames njobs =
  let jobs = Array.make njobs [] in
  List.iteri (fun i frame -> jobs.(i mod njobs) <- frame :: jobs.(i mod njobs)) frames;
  Array.to_list (Array.map List.rev jobs) |> List.filter (fun j -> j <> [])

(* Longest-processing-time list scheduling: the work-stealing makespan
   model. *)
let makespan ~workers costs =
  let loads = Array.make workers 0.0 in
  List.iter
    (fun cost ->
      let least = ref 0 in
      Array.iteri (fun i load -> if load < loads.(!least) then least := i) loads;
      loads.(!least) <- loads.(!least) +. cost)
    (List.sort (fun a b -> compare b a) costs);
  Array.fold_left max 0.0 loads

let run ?(jobs_per_worker = 4) ?(max_block = 4096) ?(schedule = Lpt)
    ~(spec : Spec.t) ~(machine : Vc_mem.Machine.t) ~workers () =
  if workers < 1 then invalid_arg "Multicore.run: workers must be positive";
  let target_jobs = workers * jobs_per_worker in
  let frontier, expansion_cycles, expansion_reducers, _expanded =
    expand ~spec ~machine ~target:(target_jobs * 4)
  in
  let jobs = deal frontier (max 1 (min target_jobs (List.length frontier))) in
  let reports =
    List.map
      (fun roots ->
        let r =
          Engine.run
            ~spec:{ spec with Spec.roots }
            ~machine
            ~strategy:(Policy.Hybrid { max_block; reexpand = true })
            ()
        in
        if r.Report.oom then
          (* typed, so pools contain it as a per-run failure instead of a
             sweep-killing [Failure] (exit-code convention 2) *)
          Vc_error.budget ~detail:"Multicore.run: job ran out of memory"
            ~phase:Vc_error.Execute Vc_error.Memory
            ~limit:(float_of_int machine.Vc_mem.Machine.max_live_threads)
            ~actual:(float_of_int machine.Vc_mem.Machine.max_live_threads) ();
        r)
      jobs
  in
  let costs = List.map (fun (r : Report.t) -> r.Report.cycles) reports in
  let total_work = List.fold_left ( +. ) 0.0 costs in
  let makespan_cycles, steals =
    match schedule with
    | Lpt -> (makespan ~workers costs, 0)
    | Work_stealing { steal_cost; seed } ->
        let jobs = List.mapi (fun id cost -> { Ws_sim.id; cost }) costs in
        let stats = Ws_sim.simulate ~steal_cost ~seed ~workers jobs in
        (stats.Ws_sim.makespan, stats.Ws_sim.steals)
  in
  (* merge the expansion phase's and every job's reductions *)
  let ops = spec.Spec.reducers in
  let merged =
    List.map
      (fun (name, op) ->
        let from_jobs =
          List.fold_left
            (fun acc (r : Report.t) ->
              Vc_lang.Reducer.apply op acc (Report.reducer r name))
            (Vc_lang.Reducer.identity op) reports
        in
        (name, Vc_lang.Reducer.apply op from_jobs
                 (List.assoc name (Vc_lang.Reducer.values expansion_reducers))))
      ops
  in
  let cycles = expansion_cycles +. makespan_cycles in
  {
    workers;
    jobs = List.length jobs;
    frontier = List.length frontier;
    expansion_cycles;
    makespan_cycles;
    total_work_cycles = total_work;
    cycles;
    balance =
      (if total_work <= 0.0 then 1.0
       else makespan_cycles /. (total_work /. float_of_int workers));
    steals;
    reducers = merged;
  }

let speedup ~(baseline : Report.t) result =
  if result.cycles <= 0.0 then 0.0 else baseline.Report.cycles /. result.cycles
