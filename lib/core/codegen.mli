(** Closure compiler for the DSL: resolves variables to slots once, then
    evaluates with no name lookups.

    Both the blocked interpreter and the DSL→Spec compiler need to run
    method bodies once per thread per level; compiling to closures keeps
    that cheap.  Booleans are represented as 0/1 ints at run time (the
    validator has already type-checked the program). *)

exception Runtime_error of string

type layout
(** Slot assignment: parameters map to frame slots, locals to a scratch
    array. *)

val layout_of : Vc_lang.Ast.program -> layout
(** Validates the program ({!Vc_lang.Validate.check_exn}) and assigns
    slots. *)

val params : layout -> string array
val locals : layout -> string array

type rt = { mutable frame : int array; locals : int array }
(** Runtime state of one thread: [frame] holds the parameters (length =
    number of params), [locals] is scratch (length = number of locals).
    [frame] is mutable so executors can alias a single-owner frame array
    ({!set_frame}) instead of blitting it — the blocked interpreter's
    per-thread hot path. *)

val make_rt : layout -> rt
(** Fresh runtime state with zeroed slots (reusable across threads by
    overwriting [frame] contents and calling {!reset_locals}). *)

val reset_locals : rt -> unit

val set_frame : rt -> int array -> unit
(** Alias [rt.frame] to the given array (no copy).  Only safe when the
    executor owns the array exclusively: compiled code may write params
    through it ([Assign] to a parameter). *)

val compile_expr : layout -> Vc_lang.Ast.expr -> rt -> int
(** Booleans evaluate to 0/1.  Short-circuits [&&] and [||]. *)

val compile_stmt :
  layout ->
  reduce:(string -> int -> unit) ->
  spawn:(site:int -> int array -> unit) ->
  Vc_lang.Ast.stmt ->
  rt ->
  unit
(** [spawn] receives the site id and the evaluated child arguments.
    [return] statements abort the rest of the compiled statement. *)

(** SoA compiled backend: a blocked program specialized once into step
    kernels that execute a whole level over unboxed structure-of-arrays
    frames — no per-instruction dispatch, no per-thread {!rt} allocation,
    no frame blitting.  {!Backend.compiled} drives these kernels with the
    Fig. 6 scheduling; see that module for the engine-level contract. *)
module Soa : sig
  type buf
  (** A growable SoA level: one int-array column per frame field. *)

  val make_buf : nfields:int -> int -> buf
  (** [make_buf ~nfields cap]: an empty buffer with initial capacity
      [cap] (clamped to ≥ 1). *)

  val size : buf -> int
  val clear : buf -> unit

  val push : buf -> int array -> unit
  (** Append one frame (length ≥ [nfields]); grows geometrically. *)

  val frame : buf -> int -> int array
  (** Copy row [i] out as a fresh frame array. *)

  val frames : buf -> int array list
  (** All rows, in order, as fresh frame arrays (quarantine extraction). *)

  val of_frames : nfields:int -> int array list -> buf

  type inst = {
    nparams : int;
    num_spawns : int;
    new_buf : int -> buf;  (** fresh buffer with the program's fields *)
    step : src:buf -> blocked:bool -> next:buf -> sites:buf array -> int;
        (** Execute one whole level: base rows run their base kernel,
            inductive rows push children into [next] (bfs flavor) or
            [sites] (blocked flavor, one buffer per spawn site).  Returns
            the number of base rows.  [sites] must have [num_spawns]
            entries when [blocked]. *)
    scalar :
      on_task:(depth:int -> base:bool -> unit) -> depth:int -> int array -> unit;
        (** Execute one frame's whole subtree on the classic per-thread
            scalar path (fault-quarantine fallback), calling [on_task]
            once per node. *)
  }

  val instantiate : Blocked_ast.t -> reducers:Vc_lang.Reducer.set -> inst
  (** Compile the blocked program against a concrete reducer set (cells
      are resolved at compile time).  The instance owns mutable scratch —
      use it from one domain at a time; parallel schedulers instantiate
      once per domain. *)
end
