type t = {
  vm : Vc_simd.Vm.t;
  hier : Vc_mem.Hierarchy.t;
  addr : Addr.t;
  metrics : Metrics.t;
  machine : Vc_mem.Machine.t;
}

let create (machine : Vc_mem.Machine.t) =
  let hier = machine.Vc_mem.Machine.hierarchy () in
  let vm =
    Vc_simd.Vm.create
      ~on_access:(fun { Vc_simd.Vm.addr; bytes; write = _ } ->
        Vc_mem.Hierarchy.access hier ~addr ~bytes)
      machine.Vc_mem.Machine.isa
  in
  { vm; hier; addr = Addr.create (); metrics = Metrics.create (); machine }

let report t ~benchmark ~strategy ~reducers ~wall_seconds =
  let stats = Vc_simd.Vm.stats t.vm in
  let issue = Vc_simd.Vm.issue_cycles t.vm in
  let penalty = Vc_mem.Hierarchy.penalty_cycles t.hier in
  let cycles = issue +. penalty in
  let cache = Vc_mem.Hierarchy.level_stats t.hier in
  {
    Report.benchmark;
    machine = t.machine.Vc_mem.Machine.name;
    strategy;
    oom = false;
    reducers;
    tasks = Metrics.total_tasks t.metrics;
    base_tasks = Metrics.total_base t.metrics;
    max_depth = Metrics.max_depth t.metrics;
    issue_cycles = issue;
    penalty_cycles = penalty;
    cycles;
    cpi = Vc_mem.Cost.cpi t.vm t.hier;
    utilization = Vc_simd.Stats.simd_utilization stats;
    lane_occupancy = Vc_simd.Stats.lane_occupancy stats;
    scalar_ops = stats.Vc_simd.Stats.scalar_ops;
    vector_ops = stats.Vc_simd.Stats.vector_ops;
    kernel_ops = Metrics.kernel_op_count t.metrics;
    cache;
    miss_rates =
      List.map (fun (label, _, _) -> (label, Vc_mem.Hierarchy.miss_rate t.hier label)) cache;
    space_peak = Metrics.space_peak t.metrics;
    levels = Metrics.levels t.metrics;
    reexpansions = Metrics.reexpansions t.metrics;
    reexp_count = Metrics.reexpansion_total t.metrics;
    compaction_calls = stats.Vc_simd.Stats.compaction_calls;
    compaction_passes = stats.Vc_simd.Stats.compaction_passes;
    occupancy_hist = Metrics.occupancy_hist t.metrics;
    wall_seconds;
  }
