type t = {
  benchmark : string;
  machine : string;
  strategy : string;
  oom : bool;
  reducers : (string * int) list;
  tasks : int;
  base_tasks : int;
  max_depth : int;
  issue_cycles : float;
  penalty_cycles : float;
  cycles : float;
  cpi : float;
  utilization : float;
  lane_occupancy : float;
  scalar_ops : int;
  vector_ops : int;
  kernel_ops : int;
  cache : (string * int * int) list;
  miss_rates : (string * float) list;
  space_peak : int;
  levels : (int * int) array;
  reexpansions : (int * int * float) array;
  reexp_count : int;
  compaction_calls : int;
  compaction_passes : int;
  occupancy_hist : int array;
  wall_seconds : float;
}

let oom_placeholder ~benchmark ~machine ~strategy =
  {
    benchmark;
    machine;
    strategy;
    oom = true;
    reducers = [];
    tasks = 0;
    base_tasks = 0;
    max_depth = 0;
    issue_cycles = 0.0;
    penalty_cycles = 0.0;
    cycles = 0.0;
    cpi = 0.0;
    utilization = 0.0;
    lane_occupancy = 0.0;
    scalar_ops = 0;
    vector_ops = 0;
    kernel_ops = 0;
    cache = [];
    miss_rates = [];
    space_peak = 0;
    levels = [||];
    reexpansions = [||];
    reexp_count = 0;
    compaction_calls = 0;
    compaction_passes = 0;
    occupancy_hist = Array.make 10 0;
    wall_seconds = 0.0;
  }

let equal ?(ignore_wall = true) a b =
  if ignore_wall then
    { a with wall_seconds = 0.0 } = { b with wall_seconds = 0.0 }
  else a = b

let speedup ~baseline t =
  if t.oom || t.cycles <= 0.0 then 0.0 else baseline.cycles /. t.cycles

let reducer t name = List.assoc name t.reducers

let pp_summary fmt t =
  if t.oom then
    Format.fprintf fmt "%s/%s/%s: OOM" t.benchmark t.machine t.strategy
  else
    Format.fprintf fmt
      "@[<v>%s/%s/%s: %d tasks (%d base), depth %d@,\
       cycles %.3e (issue %.3e + mem %.3e), CPI %.2f@,\
       utilization %.1f%%, space peak %d threads@,\
       telemetry: %d reexpansions, %d compactions (%d passes)@,\
       reducers: %s@]"
      t.benchmark t.machine t.strategy t.tasks t.base_tasks t.max_depth t.cycles
      t.issue_cycles t.penalty_cycles t.cpi (100.0 *. t.utilization) t.space_peak
      t.reexp_count t.compaction_calls t.compaction_passes
      (String.concat ", "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) t.reducers))
