type t = {
  benchmark : string;
  machine : string;
  strategy : string;
  oom : bool;
  reducers : (string * int) list;
  tasks : int;
  base_tasks : int;
  max_depth : int;
  issue_cycles : float;
  penalty_cycles : float;
  cycles : float;
  cpi : float;
  utilization : float;
  lane_occupancy : float;
  scalar_ops : int;
  vector_ops : int;
  kernel_ops : int;
  cache : (string * int * int) list;
  miss_rates : (string * float) list;
  space_peak : int;
  levels : (int * int) array;
  reexpansions : (int * int * float) array;
  reexp_count : int;
  compaction_calls : int;
  compaction_passes : int;
  occupancy_hist : int array;
  wall_seconds : float;
}

let oom_placeholder ~benchmark ~machine ~strategy =
  {
    benchmark;
    machine;
    strategy;
    oom = true;
    reducers = [];
    tasks = 0;
    base_tasks = 0;
    max_depth = 0;
    issue_cycles = 0.0;
    penalty_cycles = 0.0;
    cycles = 0.0;
    cpi = 0.0;
    utilization = 0.0;
    lane_occupancy = 0.0;
    scalar_ops = 0;
    vector_ops = 0;
    kernel_ops = 0;
    cache = [];
    miss_rates = [];
    space_peak = 0;
    levels = [||];
    reexpansions = [||];
    reexp_count = 0;
    compaction_calls = 0;
    compaction_passes = 0;
    occupancy_hist = Array.make 10 0;
    wall_seconds = 0.0;
  }

(* Merge the parts of one logical run executed across several contexts
   (the hybrid domain scheduler's expansion phase plus its chunks).  The
   part list order is the canonical merge order — callers pass chunks in
   chunk-index order, so the merged report is independent of which domain
   executed what.  Counters sum; reducer values combine under their
   declared ops; utilization and lane occupancy are weighted means (by
   tasks and vector ops respectively — the per-part totals those rates
   were computed over); miss rates are recomputed from the summed cache
   counters.  [cycles] and [space_peak] are the caller's schedule model
   (e.g. expansion + work-stealing makespan, and a peak over concurrently
   live contexts) — they are the only fields a different worker count may
   legitimately change, along with the derived [cpi]. *)
let merge ~reducers ~strategy ~cycles ~space_peak ~wall_seconds parts =
  match parts with
  | [] -> invalid_arg "Report.merge: no parts"
  | head :: _ ->
      if List.exists (fun p -> p.oom) parts then
        oom_placeholder ~benchmark:head.benchmark ~machine:head.machine ~strategy
      else
        let sum f = List.fold_left (fun acc p -> acc + f p) 0 parts in
        let sumf f = List.fold_left (fun acc p -> acc +. f p) 0.0 parts in
        let merged_reducers =
          List.map
            (fun (name, op) ->
              ( name,
                List.fold_left
                  (fun acc p -> Vc_lang.Reducer.apply op acc (List.assoc name p.reducers))
                  (Vc_lang.Reducer.identity op) parts ))
            reducers
        in
        let tasks = sum (fun p -> p.tasks) in
        let scalar_ops = sum (fun p -> p.scalar_ops) in
        let vector_ops = sum (fun p -> p.vector_ops) in
        let cache =
          List.map
            (fun (label, _, _) ->
              let pick p =
                List.fold_left
                  (fun (a, m) (l, acc, mis) ->
                    if l = label then (a + acc, m + mis) else (a, m))
                  (0, 0) p.cache
              in
              let accesses, misses =
                List.fold_left
                  (fun (a, m) p ->
                    let pa, pm = pick p in
                    (a + pa, m + pm))
                  (0, 0) parts
              in
              (label, accesses, misses))
            head.cache
        in
        let levels =
          let n = List.fold_left (fun acc p -> max acc (Array.length p.levels)) 0 parts in
          Array.init n (fun i ->
              List.fold_left
                (fun (t, b) p ->
                  if i < Array.length p.levels then
                    let pt, pb = p.levels.(i) in
                    (t + pt, b + pb)
                  else (t, b))
                (0, 0) parts)
        in
        let reexpansions =
          let by_depth = Hashtbl.create 8 in
          List.iter
            (fun p ->
              Array.iter
                (fun (depth, count, factor) ->
                  let c0, f0 =
                    Option.value (Hashtbl.find_opt by_depth depth) ~default:(0, 0.0)
                  in
                  Hashtbl.replace by_depth depth
                    (c0 + count, f0 +. (factor *. float_of_int count)))
                p.reexpansions)
            parts;
          Hashtbl.fold (fun depth (count, fsum) acc -> (depth, count, fsum) :: acc)
            by_depth []
          |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
          |> List.map (fun (depth, count, fsum) ->
                 (depth, count, if count = 0 then 0.0 else fsum /. float_of_int count))
          |> Array.of_list
        in
        let occupancy_hist =
          let n =
            List.fold_left (fun acc p -> max acc (Array.length p.occupancy_hist)) 0 parts
          in
          Array.init n (fun i ->
              sum (fun p ->
                  if i < Array.length p.occupancy_hist then p.occupancy_hist.(i) else 0))
        in
        let weighted value weight =
          let total = sumf (fun p -> float_of_int (weight p)) in
          if total <= 0.0 then 1.0
          else sumf (fun p -> value p *. float_of_int (weight p)) /. total
        in
        let ops = scalar_ops + vector_ops in
        {
          benchmark = head.benchmark;
          machine = head.machine;
          strategy;
          oom = false;
          reducers = merged_reducers;
          tasks;
          base_tasks = sum (fun p -> p.base_tasks);
          max_depth = List.fold_left (fun acc p -> max acc p.max_depth) 0 parts;
          issue_cycles = sumf (fun p -> p.issue_cycles);
          penalty_cycles = sumf (fun p -> p.penalty_cycles);
          cycles;
          cpi = (if ops = 0 then 0.0 else cycles /. float_of_int ops);
          utilization = weighted (fun p -> p.utilization) (fun p -> p.tasks);
          lane_occupancy =
            weighted (fun p -> p.lane_occupancy) (fun p -> p.vector_ops);
          scalar_ops;
          vector_ops;
          kernel_ops = sum (fun p -> p.kernel_ops);
          cache;
          miss_rates =
            List.map
              (fun (label, accesses, misses) ->
                ( label,
                  if accesses = 0 then 0.0
                  else float_of_int misses /. float_of_int accesses ))
              cache;
          space_peak;
          levels;
          reexpansions;
          reexp_count = sum (fun p -> p.reexp_count);
          compaction_calls = sum (fun p -> p.compaction_calls);
          compaction_passes = sum (fun p -> p.compaction_passes);
          occupancy_hist;
          wall_seconds;
        }

let equal ?(ignore_wall = true) a b =
  if ignore_wall then
    { a with wall_seconds = 0.0 } = { b with wall_seconds = 0.0 }
  else a = b

let speedup ~baseline t =
  if t.oom || t.cycles <= 0.0 then 0.0 else baseline.cycles /. t.cycles

let reducer t name = List.assoc name t.reducers

let pp_summary fmt t =
  if t.oom then
    Format.fprintf fmt "%s/%s/%s: OOM" t.benchmark t.machine t.strategy
  else
    Format.fprintf fmt
      "@[<v>%s/%s/%s: %d tasks (%d base), depth %d@,\
       cycles %.3e (issue %.3e + mem %.3e), CPI %.2f@,\
       utilization %.1f%%, space peak %d threads@,\
       telemetry: %d reexpansions, %d compactions (%d passes)@,\
       reducers: %s@]"
      t.benchmark t.machine t.strategy t.tasks t.base_tasks t.max_depth t.cycles
      t.issue_cycles t.penalty_cycles t.cpi (100.0 *. t.utilization) t.space_peak
      t.reexp_count t.compaction_calls t.compaction_passes
      (String.concat ", "
         (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) t.reducers))
