type event =
  | Level of { phase : Trace.phase; depth : int; size : int; base : int }
  | Switch of { depth : int; size : int }
  | Reexpand of { depth : int; size : int; shrink : float }
  | Compaction of { engine : string; width : int; n : int; passes : int }
  | Convert of { to_soa : bool; n : int; fields : int }
  | Cache of { level : string; depth : int; accesses : int; misses : int }
  | Fault of { site : string; detail : string }
  | Fallback of { depth : int; size : int }
  | Retry of { what : string; attempt : int }
  | Deadline of { resource : string; limit : float; actual : float }
  | Steal of { thief : int; victim : int; chunk : int }
  | Span_open of { frame : string }
  | Span_close of { frame : string }
  | Mark of string

type stamped = { seq : int; ts : float; dur : float; ev : event }

(* ------------------------------------------------------------------ *)
(* Sinks *)

type ring = {
  cap : int;
  buf : stamped array;
  mutable filled : int;  (** total events ever pushed *)
}

type stream = {
  write : stamped -> unit;
  stream_flush : unit -> unit;
  stream_clear : unit -> unit;
  mutable dead : bool;
      (** Set after the first I/O failure; the sink is skipped from then
          on so one broken channel cannot re-fault every later event. *)
}

type sink = Null | Ring of ring | Stream of stream

let dummy = { seq = 0; ts = 0.0; dur = 0.0; ev = Mark "" }

let null = Null

let ring ~capacity =
  if capacity < 1 then invalid_arg "Telemetry.ring: capacity must be positive";
  Ring { cap = capacity; buf = Array.make capacity dummy; filled = 0 }

let ring_events = function
  | Ring r ->
      let n = min r.filled r.cap in
      (* oldest first: the buffer is a circular window over the tail *)
      List.init n (fun i -> r.buf.((r.filled - n + i) mod r.cap))
  | Null | Stream _ -> []

let trace_sink trace =
  Stream
    {
      write =
        (fun { ev; _ } ->
          match ev with
          | Level { phase; depth; size; base } ->
              Trace.record trace ~phase ~depth ~size ~base
          | Switch _ | Reexpand _ | Compaction _ | Convert _ | Cache _ | Fault _
          | Fallback _ | Retry _ | Deadline _ | Steal _ | Span_open _
          | Span_close _ | Mark _ -> ());
      stream_flush = (fun () -> ());
      stream_clear = (fun () -> Trace.clear trace);
      dead = false;
    }

let nop () = ()

let callback_sink ?(on_flush = nop) ?(on_clear = nop) f =
  Stream { write = f; stream_flush = on_flush; stream_clear = on_clear; dead = false }

(* ------------------------------------------------------------------ *)
(* JSON rendering.  Self-contained (the JSON library of the experiment
   layer sits above this one in the dependency order): every emitted
   string is ASCII metadata from this codebase, escaped defensively
   anyway. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num f =
  (* JSON has no inf/nan; clamp defensively *)
  if Float.is_finite f then Printf.sprintf "%.3f" f else "0.0"

let event_name = function
  | Level { phase; _ } -> "level:" ^ Trace.phase_name phase
  | Switch _ -> "switch:bfs->blocked"
  | Reexpand _ -> "reexpand"
  | Compaction { engine; _ } -> "compact:" ^ engine
  | Convert { to_soa; _ } -> if to_soa then "convert:aos->soa" else "convert:soa->aos"
  | Cache { level; _ } -> "cache:" ^ level
  | Fault { site; _ } -> "fault:" ^ site
  | Fallback _ -> "fallback:scalar"
  | Retry { what; _ } -> "retry:" ^ what
  | Deadline { resource; _ } -> "deadline:" ^ resource
  | Steal _ -> "steal"
  (* open and close share the name so Chrome "B"/"E" pairs match up *)
  | Span_open { frame } | Span_close { frame } -> "span:" ^ frame
  | Mark m -> "mark:" ^ m

let args_fields = function
  | Level { depth; size; base; _ } ->
      [ ("depth", string_of_int depth); ("size", string_of_int size);
        ("base", string_of_int base) ]
  | Switch { depth; size } ->
      [ ("depth", string_of_int depth); ("size", string_of_int size) ]
  | Reexpand { depth; size; shrink } ->
      [ ("depth", string_of_int depth); ("size", string_of_int size);
        ("shrink", num shrink) ]
  | Compaction { engine; width; n; passes } ->
      [ ("engine", Printf.sprintf "%S" (escape engine)); ("width", string_of_int width);
        ("n", string_of_int n); ("passes", string_of_int passes) ]
  | Convert { to_soa; n; fields } ->
      [ ("to_soa", string_of_bool to_soa); ("n", string_of_int n);
        ("fields", string_of_int fields) ]
  | Cache { level; depth; accesses; misses } ->
      [ ("cache", Printf.sprintf "%S" (escape level)); ("depth", string_of_int depth);
        ("accesses", string_of_int accesses); ("misses", string_of_int misses) ]
  | Fault { site; detail } ->
      [ ("site", Printf.sprintf "%S" (escape site));
        ("detail", Printf.sprintf "%S" (escape detail)) ]
  | Fallback { depth; size } ->
      [ ("depth", string_of_int depth); ("size", string_of_int size) ]
  | Retry { what; attempt } ->
      [ ("what", Printf.sprintf "%S" (escape what)); ("attempt", string_of_int attempt) ]
  | Deadline { resource; limit; actual } ->
      [ ("resource", Printf.sprintf "%S" (escape resource)); ("limit", num limit);
        ("actual", num actual) ]
  | Steal { thief; victim; chunk } ->
      [ ("thief", string_of_int thief); ("victim", string_of_int victim);
        ("chunk", string_of_int chunk) ]
  | Span_open { frame } ->
      [ ("frame", Printf.sprintf "%S" (escape frame)); ("open", "true") ]
  | Span_close { frame } ->
      [ ("frame", Printf.sprintf "%S" (escape frame)); ("open", "false") ]
  | Mark m -> [ ("mark", Printf.sprintf "%S" (escape m)) ]

let args_json ev =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) (args_fields ev))
  ^ "}"

(* [trace] tags the line with a request/trace id — the serve daemon
   threads one per request, so a shared JSONL stream can be filtered back
   into per-request event sequences. *)
let jsonl_of_event ?trace { seq; ts; dur; ev } =
  let trace_field =
    match trace with
    | None -> ""
    | Some id -> Printf.sprintf "\"trace\":\"%s\"," (escape id)
  in
  Printf.sprintf "{%s\"seq\":%d,\"ts\":%s,\"dur\":%s,\"name\":\"%s\",\"args\":%s}"
    trace_field seq (num ts) (num dur)
    (escape (event_name ev))
    (args_json ev)

(* Chrome trace-event format (chrome://tracing, Perfetto): Level events
   become complete ("X") slices with their modeled-cycle duration,
   attribution spans become nestable begin/end ("B"/"E") pairs, cache
   deltas become counter ("C") tracks, everything else an instant ("i"). *)
let chrome_of_event { ts; dur; ev; _ } =
  let name = escape (event_name ev) in
  match ev with
  | Level _ ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
        name (num ts) (num dur) (args_json ev)
  | Span_open _ ->
      Printf.sprintf "{\"name\":\"%s\",\"ph\":\"B\",\"ts\":%s,\"pid\":1,\"tid\":1}"
        name (num ts)
  | Span_close _ ->
      Printf.sprintf "{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%s,\"pid\":1,\"tid\":1}"
        name (num ts)
  | Cache { level; accesses; misses; _ } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"args\":{\"accesses\":%d,\"misses\":%d}}"
        (escape ("cache:" ^ level)) (num ts) accesses misses
  | Switch _ | Reexpand _ | Compaction _ | Convert _ | Fault _ | Fallback _
  | Retry _ | Deadline _ | Steal _ | Mark _ ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%s,\"s\":\"t\",\"pid\":1,\"tid\":1,\"args\":%s}"
        name (num ts) (args_json ev)

let jsonl_sink ?trace oc =
  Stream
    {
      write =
        (fun st ->
          output_string oc (jsonl_of_event ?trace st);
          output_char oc '\n');
      stream_flush = (fun () -> flush oc);
      stream_clear = (fun () -> ());
      dead = false;
    }

let chrome_sink oc =
  (* buffered: the enclosing JSON array is only well-formed once flushed *)
  let events = ref [] in
  let flushed = ref false in
  Stream
    {
      write = (fun st -> events := chrome_of_event st :: !events);
      stream_flush =
        (fun () ->
          if not !flushed then begin
            flushed := true;
            output_string oc "[";
            List.iteri
              (fun i line ->
                if i > 0 then output_string oc ",\n" else output_string oc "\n";
                output_string oc line)
              (List.rev !events);
            output_string oc "\n]\n";
            flush oc
          end);
      stream_clear = (fun () -> events := []);
      dead = false;
    }

(* ------------------------------------------------------------------ *)
(* Hub *)

type t = {
  mutable sinks : sink list;
  mutable seq : int;
  mutable clock : (unit -> float) option;
  mutable enabled : bool;
}

let create () = { sinks = []; seq = 0; clock = None; enabled = false }

let with_sinks sinks =
  let t = create () in
  t.sinks <- List.filter (function Null -> false | _ -> true) sinks;
  t.enabled <- t.sinks <> [];
  t

let attach t sink =
  match sink with
  | Null -> ()
  | _ ->
      t.sinks <- t.sinks @ [ sink ];
      t.enabled <- true

let enabled t = t.enabled

let set_clock t clock = t.clock <- Some clock

let now t =
  match t.clock with Some f -> f () | None -> float_of_int t.seq

(* A stream sink whose channel breaks (closed fd, full disk) would leak a
   bare [Sys_error] out of whatever instrumented executor happened to emit
   the next event.  Instead: mark the sink dead — it is skipped from then
   on, other sinks keep receiving events — and surface one typed
   telemetry fault so supervised callers can classify it. *)
let sink_failed ~phase (s : stream) msg =
  s.dead <- true;
  Vc_error.fail ~phase Vc_error.Telemetry Vc_error.Discard_entry
    "sink write failed, sink dropped: %s" msg

let push_sink st = function
  | Null -> ()
  | Ring r ->
      r.buf.(r.filled mod r.cap) <- st;
      r.filled <- r.filled + 1
  | Stream s when s.dead -> ()
  | Stream s -> (
      try s.write st with Sys_error msg -> sink_failed ~phase:Vc_error.Execute s msg)

let emit ?ts ?(dur = 0.0) t ev =
  if t.enabled then begin
    let ts = match ts with Some ts -> ts | None -> now t in
    let st = { seq = t.seq; ts; dur; ev } in
    t.seq <- t.seq + 1;
    List.iter (push_sink st) t.sinks
  end

let clear t =
  t.seq <- 0;
  List.iter
    (function
      | Null -> ()
      | Ring r -> r.filled <- 0
      | Stream s -> if not s.dead then s.stream_clear ())
    t.sinks

let flush t =
  List.iter
    (function
      | Null | Ring _ -> ()
      | Stream s when s.dead -> ()
      | Stream s -> (
          try s.stream_flush ()
          with Sys_error msg -> sink_failed ~phase:Vc_error.Persist s msg))
    t.sinks

(* ------------------------------------------------------------------ *)
(* Derived views *)

let occupancy ~width ~size =
  if size <= 0 || width <= 0 then 0.0
  else
    let slots = (size + width - 1) / width * width in
    float_of_int size /. float_of_int slots

let levels events =
  List.filter_map
    (fun st -> match st.ev with Level _ -> Some st | _ -> None)
    events
