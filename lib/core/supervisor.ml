type budgets = {
  deadline : float option;
  wall_deadline : float option;
  max_live_frames : int option;
}

let no_budgets = { deadline = None; wall_deadline = None; max_live_frames = None }

let budgets ?deadline ?wall_deadline ?max_live_frames () =
  { deadline; wall_deadline; max_live_frames }

(* Tightest-wins merge: a serving process carries operator-set ceilings,
   each request carries its own budgets, and a request must never be able
   to RELAX a ceiling — only tighten it. *)
let clamp_budgets ~ceiling b =
  let min_opt a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (min x y)
  in
  {
    deadline = min_opt ceiling.deadline b.deadline;
    wall_deadline = min_opt ceiling.wall_deadline b.wall_deadline;
    max_live_frames = min_opt ceiling.max_live_frames b.max_live_frames;
  }

type outcome = {
  report : Report.t;
  fallbacks : int;
  faults_seen : int;
  deadline_events : int;
}

(* Recovery accounting rides the telemetry bus: the engine already emits
   one [Fault] event per surfaced fault and one [Fallback] per quarantine,
   so a counting sink observes supervision without widening [Report.t]
   (which would invalidate every persisted run cache). *)
let counting_sink () =
  let faults = ref 0 and fallbacks = ref 0 and deadlines = ref 0 in
  let sink =
    Telemetry.callback_sink (fun { Telemetry.ev; _ } ->
        match ev with
        | Telemetry.Fault _ -> incr faults
        | Telemetry.Fallback _ -> incr fallbacks
        | Telemetry.Deadline _ -> incr deadlines
        | _ -> ())
  in
  (sink, faults, fallbacks, deadlines)

let supervise ~phase f =
  match f () with
  | v -> Ok v
  | exception Vc_error.Error e -> Error e
  | exception Engine.Task_limit n ->
      Error
        {
          Vc_error.kind =
            Vc_error.Budget_exceeded
              {
                resource = Vc_error.Task_budget;
                limit = float_of_int n;
                actual = float_of_int n;
              };
          phase;
          detail = "engine task limit";
        }
  | exception Blocked_interp.Task_limit_exceeded n ->
      Error
        {
          Vc_error.kind =
            Vc_error.Budget_exceeded
              {
                resource = Vc_error.Task_budget;
                limit = float_of_int n;
                actual = float_of_int n;
              };
          phase;
          detail = "interpreter task limit";
        }
  | exception exn -> Error (Vc_error.of_exn ~phase exn)

let run ?compact ?max_tasks ?cutoff ?warm ?trace ?telemetry
    ?(faults = Fault.none) ?(recover = true) ?(budgets = no_budgets) ~spec
    ~machine ~strategy () =
  let tel = match telemetry with Some t -> t | None -> Telemetry.create () in
  let sink, faults_seen, fallbacks, deadlines = counting_sink () in
  Telemetry.attach tel sink;
  supervise ~phase:Vc_error.Execute (fun () ->
      let report =
        Engine.run ?compact ?max_tasks ?cutoff ?warm ?trace ~telemetry:tel
          ~faults ~recover ?deadline:budgets.deadline
          ?wall_deadline:budgets.wall_deadline
          ?max_live_frames:budgets.max_live_frames ~spec ~machine ~strategy ()
      in
      {
        report;
        fallbacks = !fallbacks;
        faults_seen = !faults_seen;
        deadline_events = !deadlines;
      })

let run_domains ?compact ?max_tasks ?cutoff ?chunks ?steal_cost ?seed
    ?telemetry ?(faults = Fault.none) ?(recover = true) ?(budgets = no_budgets)
    ~spec ~machine ~strategy ~domains () =
  (* No counting sink here: [Domain_sched.result] already carries its own
     cross-context fault/fallback totals (per-chunk hubs are private to
     their domains, so a shared sink could not observe them anyway). *)
  supervise ~phase:Vc_error.Execute (fun () ->
      Domain_sched.run ?compact ?max_tasks ?cutoff ?chunks ?steal_cost ?seed
        ?telemetry ~faults ~recover ?deadline:budgets.deadline
        ?wall_deadline:budgets.wall_deadline
        ?max_live_frames:budgets.max_live_frames ~spec ~machine ~strategy
        ~domains ())

type backend_outcome = {
  result : Backend.result;
  b_fallbacks : int;
  b_faults_seen : int;
  b_deadline_events : int;
}

let run_backend ?strategy ?max_tasks ?telemetry ?(faults = Fault.none)
    ?(recover = true) ?(budgets = no_budgets) ?domains backend source ~roots =
  let tel = match telemetry with Some t -> t | None -> Telemetry.create () in
  let sink, faults_seen, fallbacks, deadlines = counting_sink () in
  Telemetry.attach tel sink;
  let opts =
    {
      Backend.default_opts with
      telemetry = Some tel;
      faults;
      recover;
      wall_deadline = budgets.wall_deadline;
      max_live_frames = budgets.max_live_frames;
      domains;
    }
  in
  let opts =
    match strategy with Some s -> { opts with Backend.strategy = s } | None -> opts
  in
  let opts =
    match max_tasks with
    | Some n -> { opts with Backend.max_tasks = n }
    | None -> opts
  in
  supervise ~phase:Vc_error.Execute (fun () ->
      let result = Backend.timed_run ~opts backend source ~roots in
      {
        result;
        b_fallbacks = !fallbacks;
        b_faults_seen = !faults_seen;
        b_deadline_events = !deadlines;
      })

let run_blocked ?strategy ?max_tasks ?telemetry ?(budgets = no_budgets) t args =
  let tel = match telemetry with Some t -> t | None -> Telemetry.create () in
  let sink, _faults, _fallbacks, _deadlines = counting_sink () in
  Telemetry.attach tel sink;
  supervise ~phase:Vc_error.Execute (fun () ->
      Blocked_interp.run ?strategy ?max_tasks ~telemetry:tel
        ?wall_deadline:budgets.wall_deadline
        ?max_live_frames:budgets.max_live_frames t args)
