open Vc_lang

exception Task_limit_exceeded of int

type result = {
  reducers : (string * int) list;
  tasks : int;
  base_tasks : int;
  max_depth : int;
  switches : int;
  reexpansions : int;
}

exception Continue_thread

let run ?(strategy = Policy.Hybrid { max_block = 256; reexpand = true })
    ?(max_tasks = 20_000_000) ?telemetry ?wall_deadline ?max_live_frames ?roots
    (t : Blocked_ast.t) args =
  let tel = match telemetry with Some tel -> tel | None -> Telemetry.create () in
  let wall_start = Unix.gettimeofday () in
  (* Live-frame accounting mirrors the engine's rule: whoever enqueues a
     level adds its size, the consumer subtracts its own input once its
     children are enqueued.  Budgets are checked cooperatively at level
     boundaries. *)
  let live = ref 0 in
  let budget_check () =
    (match max_live_frames with
    | Some limit when !live > limit ->
        let limit_f = float_of_int limit and actual = float_of_int !live in
        Telemetry.emit tel
          (Telemetry.Deadline { resource = "live-frames"; limit = limit_f; actual });
        Vc_error.budget ~phase:Vc_error.Execute Vc_error.Live_frames ~limit:limit_f
          ~actual ()
    | _ -> ());
    match wall_deadline with
    | Some limit ->
        let actual = Unix.gettimeofday () -. wall_start in
        if actual > limit then begin
          Telemetry.emit tel
            (Telemetry.Deadline { resource = "deadline-wall"; limit; actual });
          Vc_error.budget ~phase:Vc_error.Execute Vc_error.Deadline_wall ~limit
            ~actual ()
        end
    | None -> ()
  in
  let program = t.Blocked_ast.source in
  let layout = Codegen.layout_of program in
  let nparams = Array.length (Codegen.params layout) in
  let root_frames =
    match roots with
    | Some fs ->
        if fs = [] then invalid_arg "Blocked_interp.run: empty roots";
        List.map
          (fun f ->
            if Array.length f <> nparams then
              invalid_arg
                (Printf.sprintf "Blocked_interp.run: root frame has %d fields, %d expected"
                   (Array.length f) nparams);
            (* copy: the interpreter assumes exclusive ownership of every
               enqueued frame (it aliases them into the codegen rt) *)
            Array.copy f)
          fs
    | None ->
        if List.length args <> nparams then
          invalid_arg
            (Printf.sprintf "Blocked_interp.run: %d arguments expected" nparams);
        [ Array.of_list args ]
  in
  let reducer_set =
    Reducer.make_set
      (List.map (fun r -> (r.Ast.red_name, r.Ast.red_op)) program.Ast.reducers)
  in
  let e = t.Blocked_ast.num_spawns in
  let max_block, reexpand =
    match strategy with
    | Policy.Bfs_only -> (max_int, false)
    | Policy.Hybrid { max_block; reexpand } -> (max_block, reexpand)
  in
  (* Enqueue sinks write through these cells, set per level.  Sizes are
     tracked alongside the lists so the scheduler never walks a level
     just to count it (List.length is O(n) per decision otherwise). *)
  let next : int array list ref = ref [] in
  let next_n = ref 0 in
  let nexts : int array list array = Array.make (max e 1) [] in
  let nexts_n = Array.make (max e 1) 0 in
  let reduce name v = Reducer.reduce reducer_set name v in
  let compile_b (flavor : Blocked_ast.flavor) (bs : Blocked_ast.bstmt) :
      Codegen.rt -> unit =
    let rec go (bs : Blocked_ast.bstmt) : Codegen.rt -> unit =
      match bs with
      | Blocked_ast.BSkip -> fun _ -> ()
      | Blocked_ast.Continue -> fun _ -> raise Continue_thread
      | Blocked_ast.BSeq (a, b) ->
          let fa = go a and fb = go b in
          fun rt ->
            fa rt;
            fb rt
      | Blocked_ast.BAssign (name, expr) ->
          (* reuse the statement compiler for the assignment slot logic *)
          Codegen.compile_stmt layout
            ~reduce:(fun _ _ -> ())
            ~spawn:(fun ~site:_ _ -> ())
            (Ast.Assign (name, expr))
      | Blocked_ast.BIf (c, a, b) ->
          let fc = Codegen.compile_expr layout c in
          let fa = go a and fb = go b in
          fun rt -> if fc rt <> 0 then fa rt else fb rt
      | Blocked_ast.BWhile (c, body) ->
          let fc = Codegen.compile_expr layout c in
          let fbody = go body in
          fun rt ->
            while fc rt <> 0 do
              fbody rt
            done
      | Blocked_ast.BReduce (name, expr) ->
          let f = Codegen.compile_expr layout expr in
          fun rt -> reduce name (f rt)
      | Blocked_ast.NextAdd exprs ->
          let fs = Array.of_list (List.map (Codegen.compile_expr layout) exprs) in
          fun rt ->
            next := Array.map (fun f -> f rt) fs :: !next;
            incr next_n
      | Blocked_ast.NextsAdd (site, exprs) ->
          let fs = Array.of_list (List.map (Codegen.compile_expr layout) exprs) in
          fun rt ->
            nexts.(site) <- Array.map (fun f -> f rt) fs :: nexts.(site);
            nexts_n.(site) <- nexts_n.(site) + 1
    in
    ignore flavor;
    let f = go bs in
    fun rt -> try f rt with Continue_thread -> ()
  in
  let is_base = Codegen.compile_expr layout t.Blocked_ast.bfs_method.Blocked_ast.is_base in
  let bfs_base = compile_b Blocked_ast.Bfs t.Blocked_ast.bfs_method.Blocked_ast.base in
  let bfs_ind = compile_b Blocked_ast.Bfs t.Blocked_ast.bfs_method.Blocked_ast.inductive in
  let blk_base = compile_b Blocked_ast.Blocked t.Blocked_ast.blocked_method.Blocked_ast.base in
  let blk_ind = compile_b Blocked_ast.Blocked t.Blocked_ast.blocked_method.Blocked_ast.inductive in
  let rt = Codegen.make_rt layout in
  let tasks = ref 0 in
  let base_tasks = ref 0 in
  let max_depth = ref 0 in
  let switches = ref 0 in
  let reexpansions = ref 0 in
  let run_thread ~fbase ~find frame =
    incr tasks;
    if !tasks > max_tasks then raise (Task_limit_exceeded max_tasks);
    (* Frames are enqueued once and consumed once, so the rt can alias the
       frame array directly instead of blitting it into a scratch copy —
       this removes the dominant per-thread churn (one blit per task).
       Param assignments write through the alias, which is fine: nothing
       reads a frame after its thread ran. *)
    Codegen.set_frame rt frame;
    Codegen.reset_locals rt;
    if is_base rt <> 0 then begin
      incr base_tasks;
      fbase rt
    end
    else find rt
  in
  let emit_level ~phase ~depth ~size ~base0 =
    Telemetry.emit tel
      (Telemetry.Level { phase; depth; size; base = !base_tasks - base0 })
  in
  (* Attribution spans mirror the engine's: one per level, closed before
     recursing so profile paths stay flat.  This hub's default clock is
     the event sequence number, so attributed "cycles" are event counts
     unless the caller wired a real clock. *)
  let with_span frame f =
    if Telemetry.enabled tel then begin
      Telemetry.emit tel (Telemetry.Span_open { frame });
      Fun.protect
        ~finally:(fun () -> Telemetry.emit tel (Telemetry.Span_close { frame }))
        f
    end
    else f ()
  in
  (* f_bfs of Fig. 7.  [tb_n] is [List.length tb], threaded through so the
     scheduler's switch/reexpand decisions are O(1). *)
  let rec bfs tb tb_n depth =
    budget_check ();
    if depth > !max_depth then max_depth := depth;
    let level, level_n =
      with_span "expand" @@ fun () ->
      next := [];
      next_n := 0;
      let base0 = !base_tasks in
      List.iter (run_thread ~fbase:bfs_base ~find:bfs_ind) tb;
      emit_level ~phase:Trace.Bfs ~depth ~size:tb_n ~base0;
      (List.rev !next, !next_n)
    in
    live := !live + level_n - tb_n;
    if level <> [] then
      if level_n < max_block then bfs level level_n (depth + 1)
      else begin
        incr switches;
        Telemetry.emit tel (Telemetry.Switch { depth = depth + 1; size = level_n });
        blocked level level_n (depth + 1)
      end
  (* f_blocked of Fig. 7. *)
  and blocked tb tb_n depth =
    budget_check ();
    if depth > !max_depth then max_depth := depth;
    let site_blocks, site_ns =
      with_span "blocked" @@ fun () ->
      Array.fill nexts 0 (Array.length nexts) [];
      Array.fill nexts_n 0 (Array.length nexts_n) 0;
      let base0 = !base_tasks in
      List.iter (run_thread ~fbase:blk_base ~find:blk_ind) tb;
      emit_level ~phase:Trace.Blocked ~depth ~size:tb_n ~base0;
      (Array.map List.rev nexts, Array.copy nexts_n)
    in
    live := !live + Array.fold_left ( + ) 0 site_ns - tb_n;
    (* [nexts] is reused by deeper recursion; copy out first. *)
    Array.iteri
      (fun i blk ->
        let blk_n = site_ns.(i) in
        if blk <> [] then
          if blk_n >= max_block || not reexpand then blocked blk blk_n (depth + 1)
          else begin
            incr reexpansions;
            Telemetry.emit tel
              (Telemetry.Reexpand
                 {
                   depth = depth + 1;
                   size = blk_n;
                   shrink = float_of_int blk_n /. float_of_int (max 1 max_block);
                 });
            bfs blk blk_n (depth + 1)
          end)
      site_blocks
  in
  let nroots = List.length root_frames in
  live := nroots;
  let root_frame = program.Ast.mth.Ast.name in
  Telemetry.emit tel (Telemetry.Span_open { frame = root_frame });
  bfs root_frames nroots 0;
  Telemetry.emit tel (Telemetry.Span_close { frame = root_frame });
  {
    reducers = Reducer.values reducer_set;
    tasks = !tasks;
    base_tasks = !base_tasks;
    max_depth = !max_depth;
    switches = !switches;
    reexpansions = !reexpansions;
  }
