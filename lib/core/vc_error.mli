(** Typed error taxonomy for supervised execution.

    Every runtime failure carries a {e site} (which subsystem broke), a
    {e phase} (where in the run lifecycle it happened) and a {e recovery
    hint} (what a supervisor may do about it), replacing the ad-hoc
    [failwith]/[invalid_arg] escapes that previously killed whole sweeps.
    Budget violations (deadlines, live-frame and task limits) are a
    separate kind so callers can map them to the exit-code convention:
    0 ok, 1 verification/fault failure, 2 budget/deadline exceeded. *)

type site =
  | Compaction  (** stream-compaction partition *)
  | Conversion  (** AoS↔SoA layout conversion *)
  | Block_alloc  (** ThreadBlock allocation / growth *)
  | Cache_io  (** persistent run-cache I/O *)
  | Scheduler  (** engine / interpreter scheduling *)
  | Decode  (** JSON / report decoding *)
  | Telemetry  (** telemetry sink I/O (closed or full channel) *)
  | Protocol  (** serve wire protocol: framing, parse, read timeouts *)

type phase = Setup | Expand | Execute | Recover | Persist | Load

type hint =
  | Retry  (** transient: retry the operation *)
  | Fallback_scalar  (** quarantine the block, re-run its tasks scalar *)
  | Discard_entry  (** drop the corrupt datum, keep the rest *)
  | Abort  (** no recovery: surface to the caller *)

type resource =
  | Deadline_cycles
  | Deadline_wall
  | Live_frames
  | Task_budget
  | Memory
      (** a run exceeded the machine's live-thread capacity inside a
          scheduler that treats it as a per-job failure (the plain engine
          reports OOM via {!Report.t} instead) *)
  | Queue_depth
      (** admission control: the serve daemon's bounded job queue was
          full, so the request was rejected instead of queued (the
          [overloaded] response status) *)

type kind =
  | Fault of { site : site; hint : hint }
  | Budget_exceeded of { resource : resource; limit : float; actual : float }

type t = { kind : kind; phase : phase; detail : string }

exception Error of t

val site_name : site -> string
val phase_name : phase -> string
val hint_name : hint -> string
val resource_name : resource -> string

val site_of : t -> site option
(** The fault site; [None] for budget violations. *)

val hint_of : t -> hint option
(** The recovery hint; [None] for budget violations. *)

val is_budget : t -> bool

(** {1 Exit-code taxonomy}

    The process-level convention shared by every [vcilk] subcommand —
    defined once here so the CLI, the serve daemon, tests, and CI assert
    against the same constants:

    - {!exit_ok} [= 0]: success (chaos/fuzz: every check recovered /
      no divergence);
    - {!exit_failure} [= 1]: detected failure — verification or chaos
      check failed, fuzz divergence (reproducer written), unrecovered
      fault, load error;
    - {!exit_budget} [= 2]: a budget or deadline was exceeded
      ([Budget_exceeded]);
    - {!exit_regression} [= 3]: the perf gate tripped
      ([bench --check-baseline]).

    A {e crash} (uncaught exception) is distinct from all of these:
    cmdliner maps it to 125 (and CLI usage errors to 124), so a nonzero
    exit from chaos/fuzz always means "the tool detected something", never
    "the tool fell over". *)

val exit_ok : int
val exit_failure : int
val exit_budget : int
val exit_regression : int

val exit_code : t -> int
(** {!exit_budget} for budget violations, {!exit_failure} otherwise. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val fail : phase:phase -> site -> hint -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Error} with a formatted detail message. *)

val budget :
  ?detail:string ->
  phase:phase ->
  resource ->
  limit:float ->
  actual:float ->
  unit ->
  'a
(** Raise a [Budget_exceeded] {!Error}. *)

val of_exn : phase:phase -> exn -> t
(** Classify an arbitrary exception: {!Error} payloads pass through,
    anything else becomes an unrecoverable [Scheduler] fault carrying the
    original message. *)
