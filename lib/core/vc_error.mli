(** Typed error taxonomy for supervised execution.

    Every runtime failure carries a {e site} (which subsystem broke), a
    {e phase} (where in the run lifecycle it happened) and a {e recovery
    hint} (what a supervisor may do about it), replacing the ad-hoc
    [failwith]/[invalid_arg] escapes that previously killed whole sweeps.
    Budget violations (deadlines, live-frame and task limits) are a
    separate kind so callers can map them to the exit-code convention:
    0 ok, 1 verification/fault failure, 2 budget/deadline exceeded. *)

type site =
  | Compaction  (** stream-compaction partition *)
  | Conversion  (** AoS↔SoA layout conversion *)
  | Block_alloc  (** ThreadBlock allocation / growth *)
  | Cache_io  (** persistent run-cache I/O *)
  | Scheduler  (** engine / interpreter scheduling *)
  | Decode  (** JSON / report decoding *)
  | Telemetry  (** telemetry sink I/O (closed or full channel) *)

type phase = Setup | Expand | Execute | Recover | Persist | Load

type hint =
  | Retry  (** transient: retry the operation *)
  | Fallback_scalar  (** quarantine the block, re-run its tasks scalar *)
  | Discard_entry  (** drop the corrupt datum, keep the rest *)
  | Abort  (** no recovery: surface to the caller *)

type resource =
  | Deadline_cycles
  | Deadline_wall
  | Live_frames
  | Task_budget
  | Memory
      (** a run exceeded the machine's live-thread capacity inside a
          scheduler that treats it as a per-job failure (the plain engine
          reports OOM via {!Report.t} instead) *)

type kind =
  | Fault of { site : site; hint : hint }
  | Budget_exceeded of { resource : resource; limit : float; actual : float }

type t = { kind : kind; phase : phase; detail : string }

exception Error of t

val site_name : site -> string
val phase_name : phase -> string
val hint_name : hint -> string
val resource_name : resource -> string

val site_of : t -> site option
(** The fault site; [None] for budget violations. *)

val hint_of : t -> hint option
(** The recovery hint; [None] for budget violations. *)

val is_budget : t -> bool

val exit_code : t -> int
(** [2] for budget violations, [1] otherwise. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val fail : phase:phase -> site -> hint -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Error} with a formatted detail message. *)

val budget :
  ?detail:string ->
  phase:phase ->
  resource ->
  limit:float ->
  actual:float ->
  unit ->
  'a
(** Raise a [Budget_exceeded] {!Error}. *)

val of_exn : phase:phase -> exn -> t
(** Classify an arbitrary exception: {!Error} payloads pass through,
    anything else becomes an unrecoverable [Scheduler] fault carrying the
    original message. *)
