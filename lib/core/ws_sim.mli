(** Discrete-event simulation of a work-stealing scheduler.

    {!Multicore} models work stealing as LPT list scheduling — a good
    upper bound on balance, but silent about stealing itself.  This module
    simulates the runtime the paper's §2 describes (a Cilk-style
    work-stealing pool) at job granularity: every worker owns a deque,
    executes jobs from its bottom, and when empty picks a random victim,
    steals one job from the top, and executes it immediately, paying
    [steal_cost] cycles per attempt (successful or not).

    Jobs are atomic with precomputed costs (the engine measures them);
    the simulation is deterministic given [seed]. *)

type job = { id : int; cost : float }

type placement =
  | Worker0  (** all jobs start on worker 0's deque (expansion feeds the pool) *)
  | Round_robin
      (** jobs dealt across deques in index order, bottom-up — the hybrid
          domain scheduler's initial chunk assignment *)

type stats = {
  makespan : float;  (** completion time of the last job *)
  total_work : float;  (** sum of job costs *)
  busy : float array;  (** per-worker executing time *)
  steals : int;  (** successful steals *)
  failed_steals : int;  (** attempts on empty or busy-less victims *)
  jobs_run : int array;  (** per-worker job counts *)
  steal_log : (int * int * int) list;
      (** successful steals in simulated-time order: (thief, victim, job
          id) — the modeled schedule the domain scheduler replays into
          telemetry *)
}

val simulate :
  ?steal_cost:float -> ?seed:int -> ?placement:placement -> workers:int ->
  job list -> stats
(** [placement] defaults to {!Worker0} (the paper's single-core expansion
    phase feeds the pool).  [steal_cost] defaults to 200 cycles — a
    cache-line ping-pong plus deque CAS.  Raises [Invalid_argument] when
    [workers < 1].  An empty job list yields a zero makespan. *)

val utilization : stats -> float
(** Mean busy fraction over the makespan (1.0 = perfectly balanced, no
    idling). *)
