(** Per-run measurement collection.

    Gathers everything the evaluation section plots that is not already in
    [Vc_simd.Stats] or the cache counters: the per-level task distribution
    (Fig. 9), re-expansion events and their block-growth factors (Fig. 15),
    live-thread space high-water, and the kernel/overhead instruction split
    behind Table 3. *)

type t

val create : unit -> t

val reset : t -> unit
(** Zero all counters (used between a warm-up pass and the measured
    pass). *)

(** {1 Recording} *)

val tasks_at_level : t -> depth:int -> n:int -> unit
val base_at_level : t -> depth:int -> n:int -> unit

val reexpansion : t -> depth:int -> before:int -> unit
(** A block of size [before] at [depth] was handed back to breadth-first
    expansion. *)

val reexpansion_growth : t -> depth:int -> factor:float -> unit
(** Block-size growth factor observed for the first expanded level after a
    re-expansion at [depth]. *)

val live_threads : t -> int -> unit
(** Report the current live-thread count; the high-water mark is kept. *)

val kernel_ops : t -> int -> unit
val overhead_ops : t -> int -> unit

val occupancy_sample : t -> n:int -> width:int -> unit
(** Record the lane occupancy of one vectorized level of [n] tasks run at
    vector [width] — [n / (ceil(n/width) * width)] — into a 10-bucket
    histogram.  Ignored when [n] or [width] is non-positive. *)

(** {1 Reading} *)

val total_tasks : t -> int
val total_base : t -> int
val max_depth : t -> int

val levels : t -> (int * int) array
(** Index = depth; (all tasks, base tasks). *)

val reexpansions : t -> (int * int * float) array
(** (depth, #re-expansions, mean growth factor) for depths with events. *)

val space_peak : t -> int
val kernel_op_count : t -> int
val overhead_op_count : t -> int

val reexpansion_total : t -> int
(** Total re-expansion events across all depths. *)

val occupancy_hist : t -> int array
(** The 10-bucket occupancy histogram: bucket [i] counts levels whose
    occupancy fell in [[i/10, (i+1)/10)] (occupancy 1.0 lands in the last
    bucket). *)

(** Bounded sliding-window sample reservoir with quantile reads.

    Backs the serve daemon's latency statistics (p50/p99 request wall
    time): writers {!Reservoir.add} from worker domains (mutex-guarded),
    readers take a snapshot and sort it, so a [/stats] request never
    blocks the hot path for long.  The window is the most recent
    [capacity] samples — a long-running daemon reports {e current}
    latency, not lifetime latency. *)
module Reservoir : sig
  type t

  val create : capacity:int -> t
  (** Raises [Invalid_argument] when [capacity < 1]. *)

  val add : t -> float -> unit
  (** Record one sample (domain-safe). *)

  val count : t -> int
  (** Samples ever added (not just retained). *)

  val quantile : t -> float -> float
  (** Nearest-rank quantile over the retained window, [q] clamped to
      [0,1]; [0.0] when no samples have been added. *)

  val max_value : t -> float
  (** Largest sample ever added; [0.0] when empty. *)
end

(** Fixed-layout, log-scaled latency histogram with per-domain shards.

    The serve daemon's lifetime latency store (the {!Reservoir} keeps the
    complementary windowed view): [buckets] geometrically spaced upper
    bounds from [lo] to [hi] plus one overflow bucket, exact counts, and a
    shard per writer domain merged at read time so worker adds never share
    a lock.  Two histograms with the same layout {!Histogram.merge} by
    bucket-wise addition, which is what lets loadgen connection threads
    and multi-process roll-ups combine without losing tail resolution. *)
module Histogram : sig
  type t

  val default_buckets : int
  (** 64 finite buckets. *)

  val default_lo : float
  (** 0.05 ms — upper bound of the first bucket. *)

  val default_hi : float
  (** 60000 ms — upper bound of the last finite bucket. *)

  val create :
    ?shards:int -> ?buckets:int -> ?lo:float -> ?hi:float -> unit -> t
  (** [create ()] uses 8 shards and the default layout.  Bucket [i]'s
      upper bound is [lo * (hi/lo)^(i/(buckets-1))]; values above [hi]
      land in the overflow bucket.  Raises [Invalid_argument] unless
      [shards >= 1], [buckets >= 2] and [0 < lo < hi]. *)

  val add : t -> float -> unit
  (** Record one sample into the calling domain's shard (domain-safe). *)

  val count : t -> int
  (** Exact number of samples ever added. *)

  val sum : t -> float
  (** Exact sum of all samples (for mean / Prometheus [_sum]). *)

  val max_value : t -> float
  (** Largest sample ever added; [0.0] when empty. *)

  val bucket_index : t -> float -> int
  (** Index of the bucket a value lands in ([buckets] = overflow). *)

  val bounds : t -> float array
  (** The finite bucket upper bounds, ascending (length [buckets]). *)

  val counts : t -> int array
  (** Merged per-bucket counts (length [buckets + 1]; last = overflow). *)

  val cumulative : t -> (float * int) array
  (** [(le, cumulative_count)] pairs, ascending — the Prometheus
      histogram series shape; the final entry is [(infinity, count t)]. *)

  val quantile : t -> float -> float
  (** Nearest-rank quantile over the cumulative buckets: the upper bound
      of the first bucket reaching rank [ceil (q * count)], so at most
      one bucket width above the exact value.  Hits in the overflow
      bucket report the exact maximum.  [q] clamped to [0,1]; [0.0] when
      empty. *)

  val merge : t -> t -> t
  (** Bucket-wise sum into a fresh histogram.  Raises [Invalid_argument]
      on a layout mismatch ([lo], [hi] or [buckets] differ). *)

  val to_json_string : t -> string
  (** Compact JSON object: layout ([lo], [hi], [buckets]), [count],
      [sum], [max_ms], [bounds_ms] array, [counts] array. *)
end
