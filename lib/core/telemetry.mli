(** Structured execution telemetry.

    Executors emit typed events — one per expanded tree level, plus
    scheduler transitions (BFS→blocked switch, re-expansion), compaction
    invocations, SoA↔AoS conversions and per-level cache deltas — into a
    hub that fans them out to pluggable sinks: an in-memory ring buffer,
    a JSONL stream, a Chrome trace-event JSON file (loadable in
    chrome://tracing / Perfetto), or the legacy {!Trace} log.

    A hub with no sinks attached is disabled: {!emit} is a single mutable
    field test, so instrumented code paths can call it unconditionally.

    Timestamps come from a pluggable clock.  The engine wires it to the
    modeled-cycle counter (VM issue cycles + memory-hierarchy penalty
    cycles), so event times are deterministic simulated time, not wall
    clock. *)

type event =
  | Level of { phase : Trace.phase; depth : int; size : int; base : int }
      (** One expanded tree level: [size] tasks entered, [base] of them
          were base cases. *)
  | Switch of { depth : int; size : int }
      (** Scheduler switched from breadth-first expansion to blocked
          depth-first execution at [depth] with [size] live tasks. *)
  | Reexpand of { depth : int; size : int; shrink : float }
      (** A shrunken block re-entered breadth-first expansion; [shrink]
          is [size / reexpansion-threshold]. *)
  | Compaction of { engine : string; width : int; n : int; passes : int }
      (** One stream-compaction partition of [n] elements. *)
  | Convert of { to_soa : bool; n : int; fields : int }
      (** An AoS→SoA ([to_soa = true]) or SoA→AoS layout conversion. *)
  | Cache of { level : string; depth : int; accesses : int; misses : int }
      (** Memory-simulator accesses/misses at one cache level,
          accumulated over one tree level. *)
  | Fault of { site : string; detail : string }
      (** A fault (injected or organic) surfaced at a runtime site. *)
  | Fallback of { depth : int; size : int }
      (** A quarantined block of [size] frames at [depth] was re-executed
          on the scalar path. *)
  | Retry of { what : string; attempt : int }
      (** A failed operation was retried ([attempt] starts at 1). *)
  | Deadline of { resource : string; limit : float; actual : float }
      (** A budget or deadline was exceeded. *)
  | Steal of { thief : int; victim : int; chunk : int }
      (** Domain [thief] stole [chunk] from [victim]'s deque (emitted
          from the deterministic {!Ws_sim} schedule by the hybrid
          domain scheduler). *)
  | Span_open of { frame : string }
      (** An attribution span opened: clock time from here until the next
          span boundary belongs to [frame] (nested under any open spans).
          Rendered as a Chrome "B" event; consumed by [Profile]. *)
  | Span_close of { frame : string }
      (** The matching close of {!Span_open}.  Rendered as a Chrome "E"
          event. *)
  | Mark of string  (** Free-form annotation. *)

type stamped = { seq : int; ts : float; dur : float; ev : event }
(** An event with its emission order, timestamp and (for [Level]) modeled
    duration, both in clock units. *)

(** {1 Sinks} *)

type sink

val null : sink
(** Discards everything.  Attaching it is a no-op, so a hub stays
    disabled (near-zero overhead on instrumented paths). *)

val ring : capacity:int -> sink
(** Keeps the most recent [capacity] events in memory.  Raises
    [Invalid_argument] if [capacity < 1]. *)

val ring_events : sink -> stamped list
(** Buffered events of a {!ring} sink, oldest first ([[]] for other
    sinks). *)

val jsonl_sink : ?trace:string -> out_channel -> sink
(** Streams one JSON object per line as events arrive.  [trace] tags
    every line with a [{"trace":id}] field — the serve daemon attaches
    one sink per request so a shared stream demultiplexes by request. *)

val chrome_sink : out_channel -> sink
(** Buffers events and writes a Chrome trace-event JSON array on
    {!flush}: [Level] events as complete ("X") slices, spans as
    nestable begin/end ("B"/"E") pairs, cache deltas as counter ("C")
    samples, everything else as instants ("i"). *)

val trace_sink : Trace.t -> sink
(** Adapter feeding [Level] events into the legacy {!Trace} log
    (other events are dropped); {!clear} clears the underlying trace. *)

val callback_sink :
  ?on_flush:(unit -> unit) -> ?on_clear:(unit -> unit) -> (stamped -> unit) -> sink
(** Invokes the callback on every event; [on_flush] / [on_clear] (both
    no-ops by default) run on hub {!flush} / {!clear}.  Used by the
    supervisor to count faults and fallbacks, and by [Profile] to build
    cycle attributions, without threading extra state through the
    engine. *)

(** {1 Hub} *)

type t

val create : unit -> t
(** A disabled hub with no sinks. *)

val with_sinks : sink list -> t
(** A hub with the given sinks attached ({!null} entries are dropped). *)

val attach : t -> sink -> unit
(** Add a sink; enables the hub unless the sink is {!null}. *)

val enabled : t -> bool

val set_clock : t -> (unit -> float) -> unit
(** Replace the timestamp source.  Default: the event sequence number. *)

val now : t -> float
(** Current clock reading (sequence number if no clock was set). *)

val emit : ?ts:float -> ?dur:float -> t -> event -> unit
(** Stamp and fan an event out to all sinks.  No-op when disabled.
    [ts] overrides the clock (used for events spanning an interval:
    pass the interval start as [ts] and its length as [dur]). *)

val clear : t -> unit
(** Reset the sequence counter and all sinks (ring emptied, buffered
    chrome events dropped, adapted trace cleared). *)

val flush : t -> unit
(** Flush stream sinks; finalizes a {!chrome_sink}'s JSON array. *)

(** {2 Sink failure}

    A stream sink whose write or flush raises [Sys_error] (channel
    closed, disk full) is {e dropped}: the sink is marked dead and
    skipped for the rest of the run, remaining sinks keep receiving
    events, and the failure surfaces once as a typed {!Vc_error.Error}
    with site [Telemetry] (recovery hint [Discard_entry]) instead of a
    bare [Sys_error] escaping mid-run. *)

(** {1 Rendering & derived views} *)

val jsonl_of_event : ?trace:string -> stamped -> string
(** One-line JSON rendering (as written by {!jsonl_sink}); [trace] adds
    the leading [{"trace":id}] field. *)

val chrome_of_event : stamped -> string
(** One Chrome trace-event object (as buffered by {!chrome_sink}). *)

val event_name : event -> string
(** Short label, e.g. ["level:bfs"], ["compact:shuffle"]. *)

val occupancy : width:int -> size:int -> float
(** Lane occupancy of a level of [size] tasks run at vector [width]:
    [size / (ceil(size/width) * width)]; 0 when either is non-positive. *)

val levels : stamped list -> stamped list
(** Just the [Level] events, in order. *)
