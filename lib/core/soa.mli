(** Dynamic AoS ↔ SoA conversion (paper §5).

    When only the kernel of an application conforms to the language (uts,
    minmax), the paper inserts two conversion functions around the kernel
    instead of transforming the whole program: array-of-structures to
    structure-of-arrays on entry, and back on exit.  The conversions are
    strided, so they cost gathers/scatters rather than packed accesses —
    that cost is charged here and ablated in the benchmark harness.

    Both directions are supervision-aware: [faults] arms the [Convert]
    injection site, and with [recover] (default [true]) a fault on the
    gather/scatter path degrades to an element-wise scalar copy with an
    identical result (charged as scalar ops, recorded as [Fault] and
    [Fallback] telemetry events).  With [recover:false] the typed
    {!Vc_error.Error} propagates. *)

val aos_to_soa :
  ?telemetry:Telemetry.t ->
  ?faults:Fault.plan ->
  ?recover:bool ->
  vm:Vc_simd.Vm.t ->
  addr:Addr.t ->
  schema:Schema.t ->
  isa:Vc_simd.Isa.t ->
  aos_base:int ->
  frames:int array array ->
  unit ->
  Block.t
(** Build a block from frames laid out AoS at modeled address [aos_base].
    Charges one gather per field per width-chunk (reading strided AoS) and
    packed stores into the new block.  [telemetry] receives one [Convert]
    event per conversion. *)

val soa_to_aos :
  ?telemetry:Telemetry.t ->
  ?faults:Fault.plan ->
  ?recover:bool ->
  vm:Vc_simd.Vm.t ->
  aos_base:int ->
  Block.t ->
  int array array
(** The inverse: packed loads from the block, scattered stores to AoS. *)
