open Vc_lang

type mask = (string * bool) list

type target = Next | Nexts of int

type step =
  | Pred of { mask : mask; var : string; cond : Ast.expr }
  | Kill of { mask : mask }
  | Assign of { mask : mask; var : string; rhs : Ast.expr }
  | Reduce of { mask : mask; reducer : string; value : Ast.expr }
  | Enqueue of { mask : mask; target : target; args : Ast.expr list }
  | Residual of { mask : mask; stmt : Blocked_ast.bstmt }

type t = {
  source : Blocked_ast.bmethod;
  fields : string list;
  steps : step list;
  base_pred : string;
}

let distribute (m : Blocked_ast.bmethod) =
  let counter = ref 0 in
  let fresh () =
    let name = Printf.sprintf "$p%d" !counter in
    incr counter;
    name
  in
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  let rec convert mask (s : Blocked_ast.bstmt) =
    match s with
    | Blocked_ast.BSkip -> ()
    | Blocked_ast.Continue -> emit (Kill { mask })
    | Blocked_ast.BSeq (a, b) ->
        convert mask a;
        convert mask b
    | Blocked_ast.BAssign (var, rhs) -> emit (Assign { mask; var; rhs })
    | Blocked_ast.BIf (cond, a, b) ->
        let var = fresh () in
        emit (Pred { mask; var; cond });
        convert ((var, true) :: mask) a;
        convert ((var, false) :: mask) b
    | Blocked_ast.BWhile (_, _) -> emit (Residual { mask; stmt = s })
    | Blocked_ast.BReduce (reducer, value) -> emit (Reduce { mask; reducer; value })
    | Blocked_ast.NextAdd args -> emit (Enqueue { mask; target = Next; args })
    | Blocked_ast.NextsAdd (id, args) ->
        emit (Enqueue { mask; target = Nexts id; args })
  in
  let base_pred = fresh () in
  emit (Pred { mask = []; var = base_pred; cond = m.Blocked_ast.is_base });
  convert [ (base_pred, true) ] m.Blocked_ast.base;
  convert [ (base_pred, false) ] m.Blocked_ast.inductive;
  {
    source = m;
    fields = m.Blocked_ast.fields;
    steps = List.rev !steps;
    base_pred;
  }

module StringSet = Set.Make (String)

let mask_vars mask acc =
  List.fold_left (fun acc (v, _) -> StringSet.add v acc) acc mask

let simplify t =
  (* one backward pass collecting the predicate variables later masks read *)
  let rec prune steps =
    match steps with
    | [] -> ([], StringSet.empty)
    | step :: rest ->
        let rest', used = prune rest in
        let keep_with mask =
          (step :: rest', mask_vars mask used)
        in
        (match step with
        | Pred { mask; var; cond } ->
            if StringSet.mem var used || Vc_lang.Optim.can_trap cond then
              keep_with mask
            else (rest', used)
        | Kill { mask } -> keep_with mask
        | Assign { mask; _ } -> keep_with mask
        | Reduce { mask; _ } -> keep_with mask
        | Enqueue { mask; _ } -> keep_with mask
        | Residual { mask; _ } -> keep_with mask)
  in
  let steps, _ = prune t.steps in
  { t with steps }

let is_residual = function Residual _ -> true | _ -> false

let vectorizable_steps t =
  List.length (List.filter (fun s -> not (is_residual s)) t.steps)

let residual_steps t = List.length (List.filter is_residual t.steps)

(* ------------------------------------------------------------------ *)
(* Pretty-printing as dense vector pseudo-code.                        *)

let pp_mask fmt mask =
  match mask with
  | [] -> ()
  | conds ->
      Format.fprintf fmt " where %s"
        (String.concat " && "
           (List.rev_map (fun (v, pos) -> if pos then v else "!" ^ v) conds))

let pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    Pp.pp_expr fmt args

let pp_step fmt = function
  | Pred { mask; var; cond } ->
      Format.fprintf fmt "%s[:] <- %a%a" var Pp.pp_expr cond pp_mask mask
  | Kill { mask } -> Format.fprintf fmt "live[:] <- 0%a" pp_mask mask
  | Assign { mask; var; rhs } ->
      Format.fprintf fmt "%s[:] <- %a%a" var Pp.pp_expr rhs pp_mask mask
  | Reduce { mask; reducer; value } ->
      Format.fprintf fmt "reduce(%s, %a[:])%a" reducer Pp.pp_expr value pp_mask mask
  | Enqueue { mask; target; args } ->
      let tgt = match target with Next -> "next" | Nexts i -> Printf.sprintf "nexts[%d]" i in
      Format.fprintf fmt "%s.add(Thread(%a))[:]%a" tgt pp_args args pp_mask mask
  | Residual { mask; stmt } ->
      Format.fprintf fmt "@[<v 2>residual scalar loop%a: {@,%a@]@,}" pp_mask mask
        Blocked_ast.pp_bstmt stmt

let pp fmt t =
  Format.fprintf fmt "@[<v>// distributed form of %s: %d dense steps, %d residual@,"
    t.source.Blocked_ast.bname (vectorizable_steps t) (residual_steps t);
  List.iter (fun s -> Format.fprintf fmt "%a@," pp_step s) t.steps;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Step-major execution.                                               *)

type sinks = {
  reduce : string -> int -> unit;
  enqueue : target -> int array -> unit;
}

(* Per-thread environment: parameters from the frame, plus locals and
   predicate temps stored SoA (one column per variable). *)
type env = {
  nthreads : int;
  fields : string array;
  frames : int array array;  (* [thread].(field) *)
  columns : (string, int array) Hashtbl.t;  (* locals + predicates *)
  alive : bool array;
}

let column env name =
  match Hashtbl.find_opt env.columns name with
  | Some col -> col
  | None ->
      let col = Array.make env.nthreads 0 in
      Hashtbl.add env.columns name col;
      col

(* Columns materialize on first touch with all-zero contents.  Reading an
   unwritten slot happens only for predicate temps in masks of threads the
   guarding conjunct already excludes (the temp is written exactly under
   that conjunct), so zero-defaulting is sound; for locals, the validator's
   definite-assignment analysis guarantees a masked write precedes any
   masked read on every thread. *)
let lookup env thread name =
  let rec field_index i =
    if i >= Array.length env.fields then None
    else if env.fields.(i) = name then Some i
    else field_index (i + 1)
  in
  match field_index 0 with
  | Some i -> env.frames.(thread).(i)
  | None -> (column env name).(thread)

let store env thread name v =
  let rec field_index i =
    if i >= Array.length env.fields then None
    else if env.fields.(i) = name then Some i
    else field_index (i + 1)
  in
  match field_index 0 with
  | Some i -> env.frames.(thread).(i) <- v
  | None -> (column env name).(thread) <- v

let rec eval env thread (e : Ast.expr) =
  match e with
  | Ast.Int n -> n
  | Ast.Bool b -> if b then 1 else 0
  | Ast.Var name -> lookup env thread name
  | Ast.Unop (Ast.Neg, e) -> -eval env thread e
  | Ast.Unop (Ast.Not, e) -> if eval env thread e = 0 then 1 else 0
  | Ast.Binop (op, a, b) -> eval_binop env thread op a b
  | Ast.Call (name, args) -> (
      match Builtins.find name with
      | None -> raise (Codegen.Runtime_error (Printf.sprintf "unknown builtin %s" name))
      | Some fn ->
          fn.Builtins.apply (Array.of_list (List.map (eval env thread) args)))

and eval_binop env thread op a b =
  let int op = op (eval env thread a) (eval env thread b) in
  let cmp op = if op (eval env thread a) (eval env thread b) then 1 else 0 in
  match op with
  | Ast.Add -> int ( + )
  | Ast.Sub -> int ( - )
  | Ast.Mul -> int ( * )
  | Ast.Div ->
      let d = eval env thread b in
      if d = 0 then raise (Codegen.Runtime_error "division by zero");
      eval env thread a / d
  | Ast.Mod ->
      let d = eval env thread b in
      if d = 0 then raise (Codegen.Runtime_error "modulo by zero");
      eval env thread a mod d
  | Ast.Lt -> cmp ( < )
  | Ast.Le -> cmp ( <= )
  | Ast.Gt -> cmp ( > )
  | Ast.Ge -> cmp ( >= )
  | Ast.Eq -> cmp ( = )
  | Ast.Ne -> cmp ( <> )
  | Ast.And -> if eval env thread a = 0 then 0 else eval env thread b
  | Ast.Or -> if eval env thread a <> 0 then 1 else eval env thread b
  | Ast.Band -> int ( land )
  | Ast.Bor -> int ( lor )
  | Ast.Bxor -> int ( lxor )
  | Ast.Shl -> int Vc_lang.Builtins.shl
  | Ast.Shr -> int Vc_lang.Builtins.shr

let mask_holds env thread mask =
  env.alive.(thread)
  && List.for_all
       (fun (var, positive) ->
         let v = lookup env thread var in
         if positive then v <> 0 else v = 0)
       mask

(* Residual loops are ordinary statements executed per masked thread. *)
let rec exec_residual env thread sinks (s : Blocked_ast.bstmt) =
  match s with
  | Blocked_ast.BSkip -> ()
  | Blocked_ast.Continue -> env.alive.(thread) <- false
  | Blocked_ast.BSeq (a, b) ->
      exec_residual env thread sinks a;
      if env.alive.(thread) then exec_residual env thread sinks b
  | Blocked_ast.BAssign (var, rhs) -> store env thread var (eval env thread rhs)
  | Blocked_ast.BIf (c, a, b) ->
      if eval env thread c <> 0 then exec_residual env thread sinks a
      else exec_residual env thread sinks b
  | Blocked_ast.BWhile (c, body) ->
      while env.alive.(thread) && eval env thread c <> 0 do
        exec_residual env thread sinks body
      done
  | Blocked_ast.BReduce (r, v) -> sinks.reduce r (eval env thread v)
  | Blocked_ast.NextAdd args ->
      sinks.enqueue Next (Array.of_list (List.map (eval env thread) args))
  | Blocked_ast.NextsAdd (id, args) ->
      sinks.enqueue (Nexts id) (Array.of_list (List.map (eval env thread) args))

let exec_step env sinks = function
  | Pred { mask; var; cond } ->
      for thread = 0 to env.nthreads - 1 do
        if mask_holds env thread mask then
          store env thread var (eval env thread cond)
      done
  | Kill { mask } ->
      for thread = 0 to env.nthreads - 1 do
        if mask_holds env thread mask then env.alive.(thread) <- false
      done
  | Assign { mask; var; rhs } ->
      for thread = 0 to env.nthreads - 1 do
        if mask_holds env thread mask then store env thread var (eval env thread rhs)
      done
  | Reduce { mask; reducer; value } ->
      for thread = 0 to env.nthreads - 1 do
        if mask_holds env thread mask then sinks.reduce reducer (eval env thread value)
      done
  | Enqueue { mask; target; args } ->
      for thread = 0 to env.nthreads - 1 do
        if mask_holds env thread mask then
          sinks.enqueue target (Array.of_list (List.map (eval env thread) args))
      done
  | Residual { mask; stmt } ->
      for thread = 0 to env.nthreads - 1 do
        if mask_holds env thread mask then exec_residual env thread sinks stmt
      done

let exec_block (t : t) ~frames sinks =
  let frames = Array.of_list frames in
  let env =
    {
      nthreads = Array.length frames;
      fields = Array.of_list t.fields;
      frames;
      columns = Hashtbl.create 8;
      alive = Array.make (Array.length frames) true;
    }
  in
  List.iter (exec_step env sinks) t.steps
