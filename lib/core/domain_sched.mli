(** Intra-run multicore × SIMD hybrid scheduler: one logical run split
    into a serial measured breadth-first expansion phase plus independent
    frontier chunks executed on real OCaml 5 domains with chunk stealing,
    each chunk in its own {!Engine.ctx}.

    {2 Determinism contract}

    All modeled quantities are a function of the chunk set, which is
    fixed by [chunks] (not by [domains]): the frontier expands to
    [4 × chunks] frames and is dealt round-robin, so every domain count
    sees the same chunks.  The modeled schedule — makespan, steal count,
    steal costs — comes from the deterministic {!Ws_sim} discrete-event
    simulation over measured per-chunk cycle costs ([Round_robin]
    placement, mirroring the real dealing).  Real domains only provide
    wall-clock parallelism; [observed_steals] from the live deques is
    reported for transparency and feeds nothing modeled.

    Consequently the merged report is bit-identical across domain counts
    except [strategy] (carries ["+dN"]), [cycles] (expansion + modeled
    makespan), the derived [cpi], [space_peak] (up to [domains] chunks
    live at once) and [wall_seconds].

    Budgets ([deadline], [max_live_frames], [max_tasks]) apply per
    context: the expansion phase and each chunk check them independently.
    Fault plans are {!Fault.split} per chunk index, so injected fault
    patterns are schedule-independent too.  Errors are propagated
    deterministically: every chunk runs to completion and the
    lowest-index chunk's error (if any) is re-raised after the join. *)

type result = {
  report : Report.t;  (** merged cross-context report (see above) *)
  domains : int;
  chunks : int;  (** chunks actually executed (0 if the tree fit in expansion) *)
  frontier : int;  (** frontier frames split across chunks *)
  frontier_depth : int;
  expansion_cycles : float;  (** serial expansion-phase modeled cycles *)
  work_cycles : float;  (** sum of per-chunk modeled cycles *)
  makespan_cycles : float;  (** modeled parallel makespan over the chunks *)
  modeled_steals : int;
  modeled_failed_steals : int;
  observed_steals : int;  (** real-deque steals (informational only) *)
  fallbacks : int;  (** scalar-path quarantines across all contexts *)
  faults_seen : int;  (** faults surfaced across all contexts *)
}

val default_chunks : int
(** 32 — enough slack for load balancing at the domain counts commodity
    hardware offers, few enough that chunk overhead stays negligible. *)

val run :
  ?compact:Vc_simd.Compact.engine ->
  ?max_tasks:int ->
  ?cutoff:int ->
  ?chunks:int ->
  ?steal_cost:float ->
  ?seed:int ->
  ?telemetry:Telemetry.t ->
  ?faults:Fault.plan ->
  ?recover:bool ->
  ?deadline:float ->
  ?wall_deadline:float ->
  ?max_live_frames:int ->
  spec:Spec.t ->
  machine:Vc_mem.Machine.t ->
  strategy:Policy.strategy ->
  domains:int ->
  unit ->
  result
(** Execute [spec] under [strategy] across [domains] OCaml domains (the
    calling domain is worker 0; [domains = 1] runs the chunks in order
    without spawning).  Engine knobs are per context, as {!Engine.run}.
    [chunks] (default {!default_chunks}) fixes the chunk count;
    [steal_cost] and [seed] parameterize the {!Ws_sim} schedule model.
    [telemetry] receives the expansion phase's events plus one
    [Telemetry.Steal] per modeled steal after the join.  Raises
    [Invalid_argument] if [domains] or [chunks] is not positive; budget
    {!Vc_error.Error}s and {!Engine.Task_limit} propagate (OOM yields an
    [oom] report like {!Engine.run}). *)

val speedup : baseline:Report.t -> result -> float
(** Modeled speedup of the hybrid run over [baseline] (0 on OOM). *)
