(** Multicore × SIMD hybrid execution (the paper's §8 future work).

    "It is feasible to integrate multicore parallelism with traditional
    work stealing and our SIMDization technology.  We plan to investigate
    this hybrid further in future work."  This module implements that
    hybrid as a scheduling simulation on top of the single-core engine:

    1. a serial breadth-first {e expansion phase} grows the frontier until
       there is enough parallelism to feed every core (as a help-first
       work-stealing runtime would);
    2. the frontier splits into [jobs_per_worker × workers] jobs — each a
       sub-block of frames whose subtrees are independent (the language
       guarantees spawned tasks are independent);
    3. each job runs to completion under the single-core blocked
       re-expansion engine with its own cache hierarchy (one per core);
    4. work stealing is modeled as longest-processing-time list
       scheduling of the measured job costs onto the workers; the hybrid's
       cycles are the expansion cost plus the makespan.

    Reducer values remain exact: the expansion phase's base cases and all
    job reductions combine into the same totals as a sequential run
    (checked by the test suite). *)

type schedule =
  | Lpt  (** longest-processing-time list scheduling (balance upper bound) *)
  | Work_stealing of { steal_cost : float; seed : int }
      (** the {!Ws_sim} discrete-event simulation *)

type result = {
  workers : int;
  jobs : int;
  frontier : int;  (** frames after the expansion phase *)
  expansion_cycles : float;  (** serial fraction (Amdahl) *)
  makespan_cycles : float;
  total_work_cycles : float;  (** sum over jobs *)
  cycles : float;  (** expansion + makespan *)
  balance : float;  (** makespan / (total work / workers); 1.0 = perfect *)
  steals : int;  (** successful steals (0 under {!Lpt}) *)
  reducers : (string * int) list;
}

val run :
  ?jobs_per_worker:int ->
  ?max_block:int ->
  ?schedule:schedule ->
  spec:Spec.t ->
  machine:Vc_mem.Machine.t ->
  workers:int ->
  unit ->
  result
(** [jobs_per_worker] defaults to 4; [max_block] is the per-core engine's
    re-expansion threshold (default 4096); [schedule] defaults to {!Lpt}.
    [workers = 1] degenerates to the single-core engine plus expansion
    bookkeeping.  Raises [Invalid_argument] if [workers < 1]; a job that
    runs out of modeled memory raises a typed [Memory] budget
    {!Vc_error.Error} (exit-code convention 2), which pools contain as a
    per-run failure. *)

val speedup : baseline:Report.t -> result -> float
