(** Deterministic fault injection for chaos testing.

    A {!plan} decides, purely as a function of its seed and each site's
    call count, which calls to instrumented runtime operations fail with a
    typed {!Vc_error.Error}.  Instrumented sites call {!trip} at their
    entry point — {e before} any semantic side effect — so a supervisor
    can quarantine the affected block and re-run its tasks on the scalar
    path with exact results.

    Plans are domain-safe (per-site atomic counters) and replayable: the
    same plan over the same call sequence fires the same faults. *)

type site =
  | Compact  (** stream-compaction partition calls *)
  | Convert  (** AoS↔SoA conversions *)
  | Alloc  (** ThreadBlock allocation / growth *)
  | Cache  (** run-cache file I/O *)

val all_sites : site list
val site_name : site -> string
val site_of_string : string -> site option

val err_site : site -> Vc_error.site
(** The taxonomy site an injected fault reports. *)

type plan

val none : plan
(** The disabled plan: {!trip} is a single array read. *)

val make : ?rate:float -> seed:int -> sites:site list -> unit -> plan
(** A plan firing on roughly [rate] (default 0.25) of the calls to each
    listed site, deterministically derived from [seed].  Raises
    [Invalid_argument] unless [0 < rate <= 1]. *)

val of_env : unit -> plan
(** Build a plan from [VC_FAULT_SEED] (required; {!none} when unset or
    unparseable), [VC_FAULT_SITES] (comma-separated site names, default
    all) and [VC_FAULT_RATE] (default 0.25). *)

val parse_sites : string -> (site list, string) result
(** Parse a comma-separated site list (["all"] or [""] = every site). *)

val split : plan -> salt:int -> plan
(** An independent sub-plan with the same sites and rate, fresh counters,
    and a seed deterministically derived from [salt] — one per parallel
    chunk, so fault patterns do not depend on execution interleaving.
    Splitting a disarmed plan yields {!none}. *)

val armed : plan -> bool
val armed_at : plan -> site -> bool
val sites : plan -> site list
val seed : plan -> int

val trip :
  plan ->
  site ->
  phase:Vc_error.phase ->
  hint:Vc_error.hint ->
  detail:string ->
  unit
(** Count one call at [site]; raise a typed fault on the calls the plan
    selects.  No-op when the plan is disarmed (for [site]). *)

val fired : plan -> (site * int) list
(** Faults actually injected so far, per armed site that fired. *)

val calls : plan -> (site * int) list
(** Instrumented calls observed so far, per site with any. *)

val total_fired : plan -> int

val reset : plan -> unit
(** Zero the call/fired counters (a fresh replay of the same pattern). *)

val describe : plan -> string
