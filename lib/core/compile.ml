open Vc_lang

let spec_of_program ?(lane_kind = Vc_simd.Lane.I32) ?name (program : Ast.program)
    ~args =
  let layout = Codegen.layout_of program in
  let m = program.Ast.mth in
  let params = Codegen.params layout in
  let nparams = Array.length params in
  if List.length args <> nparams then
    invalid_arg
      (Printf.sprintf "Compile.spec_of_program: %s expects %d arguments" m.Ast.name
         nparams);
  let schema = Schema.create ~lane_kind (Array.to_list params) in
  let is_base_fn = Codegen.compile_expr layout m.Ast.is_base in
  (* Sinks are routed through cells because the spec callbacks receive the
     reducer set / destination block per call.  The cells and the codegen
     scratch state are domain-local: Domain_sched executes frontier chunks
     of the same spec concurrently on several domains, and a single shared
     [rt] / sink-cell set would race (flaky reducer and task-count
     divergence).  Chunks within one domain run sequentially, so
     per-domain state is exactly the isolation needed. *)
  let state_key =
    Domain.DLS.new_key (fun () ->
        ( Codegen.make_rt layout,
          ref (Reducer.make_set []),
          ref 0,
          ref (None : Block.t option),
          ref false ))
  in
  let local () = Domain.DLS.get state_key in
  let base_fn =
    Codegen.compile_stmt layout
      ~reduce:(fun name v ->
        let _, current_reducers, _, _, _ = local () in
        Reducer.reduce !current_reducers name v)
      ~spawn:(fun ~site:_ _ -> ())
      m.Ast.base
  in
  let inductive_fn =
    Codegen.compile_stmt layout
      ~reduce:(fun _ _ -> ())
      ~spawn:(fun ~site child_args ->
        let _, _, want_site, spawn_dst, spawned = local () in
        if site = !want_site then begin
          match !spawn_dst with
          | Some dst ->
              Block.push dst child_args;
              spawned := true
          | None -> ()
        end)
      m.Ast.inductive
  in
  let load_frame rt blk row =
    for f = 0 to nparams - 1 do
      rt.Codegen.frame.(f) <- Block.get blk ~field:f ~row
    done;
    Codegen.reset_locals rt
  in
  let sites = Ast.spawn_sites m.Ast.inductive in
  let num_spawns = max 1 (List.length sites) in
  let spawn_site_size =
    if sites = [] then 1
    else
      let total =
        List.fold_left
          (fun acc sp ->
            acc
            + 1
            + List.fold_left (fun a e -> a + Ast.expr_size e) 0 sp.Ast.spawn_args)
          0 sites
      in
      (total + num_spawns - 1) / num_spawns
  in
  let spawn_sizes_total =
    List.fold_left (fun acc sp -> acc + Ast.stmt_size (Ast.Spawn sp)) 0 sites
  in
  {
    Spec.name = (match name with Some n -> n | None -> m.Ast.name);
    description = Printf.sprintf "DSL program %s compiled to a spec" m.Ast.name;
    schema;
    num_spawns;
    roots = [ Array.of_list args ];
    reducers = List.map (fun r -> (r.Ast.red_name, r.Ast.red_op)) program.Ast.reducers;
    is_base =
      (fun blk row ->
        let rt, _, _, _, _ = local () in
        load_frame rt blk row;
        is_base_fn rt <> 0);
    exec_base =
      (fun reducers blk row ->
        let rt, current_reducers, _, _, _ = local () in
        current_reducers := reducers;
        load_frame rt blk row;
        base_fn rt);
    spawn =
      (fun blk row ~site ~dst ->
        let rt, _, want_site, spawn_dst, spawned = local () in
        load_frame rt blk row;
        want_site := site;
        spawn_dst := Some dst;
        spawned := false;
        inductive_fn rt;
        spawn_dst := None;
        !spawned);
    insns =
      {
        Spec.check_insns = Ast.expr_size m.Ast.is_base;
        base_insns = Ast.stmt_size m.Ast.base;
        inductive_insns = max 1 (Ast.stmt_size m.Ast.inductive - spawn_sizes_total);
        spawn_insns = spawn_site_size;
        scalar_insns = 1;
      };
  }
