(* Each lane owns a private stack of frames.  One "step" executes the top
   task of every non-empty lane in lockstep: a masked vector instruction
   sequence where both the base and the inductive path are charged (masked
   execution, no compaction), and every frame access is a gather/scatter
   because the lanes' stack tops sit at unrelated addresses. *)

let run ?(max_tasks = 200_000_000) ~(spec : Spec.t) ~(machine : Vc_mem.Machine.t) () =
  let m = Measure.create machine in
  let vm = m.Measure.vm in
  let isa = machine.Vc_mem.Machine.isa in
  let width = Vc_simd.Isa.lanes isa (Schema.lane_kind spec.Spec.schema) in
  let nfields = Schema.num_fields spec.Spec.schema in
  let elem = Schema.elem_bytes spec.Spec.schema ~isa in
  let insns = spec.Spec.insns in
  let reducers = Spec.make_reducers spec in
  let wall_start = Unix.gettimeofday () in
  let executed = ref 0 in
  (* Semantic execution of one task: runs the real base case or collects
     the real children.  Charging happens separately, per lockstep step. *)
  let parent_blk =
    Block.create ~label:"straw-parent" m.Measure.addr ~schema:spec.Spec.schema ~isa
      ~capacity:1
  in
  let child_blk =
    Block.create ~label:"straw-child" m.Measure.addr ~schema:spec.Spec.schema ~isa
      ~capacity:(max 1 spec.Spec.num_spawns)
  in
  let frame_of blk row = Array.init nfields (fun f -> Block.get blk ~field:f ~row) in
  let expand (frame, depth) =
    incr executed;
    if !executed > max_tasks then
      Vc_error.budget ~detail:"Strawman: task limit exceeded"
        ~phase:Vc_error.Execute Vc_error.Task_budget
        ~limit:(float_of_int max_tasks) ~actual:(float_of_int !executed) ();
    Metrics.tasks_at_level m.Measure.metrics ~depth ~n:1;
    Block.clear parent_blk;
    Block.push parent_blk frame;
    if spec.Spec.is_base parent_blk 0 then begin
      Metrics.base_at_level m.Measure.metrics ~depth ~n:1;
      spec.Spec.exec_base reducers parent_blk 0;
      []
    end
    else begin
      Block.clear child_blk;
      for site = 0 to spec.Spec.num_spawns - 1 do
        ignore (spec.Spec.spawn parent_blk 0 ~site ~dst:child_blk : bool)
      done;
      List.init (Block.size child_blk) (fun row -> (frame_of child_blk row, depth + 1))
    end
  in
  (* Seed: expand tasks breadth-first (semantically only) until there is
     one per lane, then deal them out. *)
  let rec seed_expand queue =
    if List.length queue >= width then queue
    else
      match queue with
      | [] -> []
      | task :: rest -> seed_expand (rest @ expand task)
  in
  let seed = seed_expand (List.map (fun f -> (f, 0)) spec.Spec.roots) in
  let stacks = Array.make width [] in
  List.iteri (fun i task -> stacks.(i mod width) <- task :: stacks.(i mod width)) seed;
  let lane_base = Array.init width (fun _ -> Addr.alloc m.Measure.addr ~bytes:(1 lsl 16)) in
  let top_addr lane depth_in_stack = lane_base.(lane) + (depth_in_stack * nfields * elem) in
  let stats = Vc_simd.Vm.stats vm in
  let step_insns =
    insns.Spec.check_insns + insns.Spec.base_insns + insns.Spec.inductive_insns
    + (spec.Spec.num_spawns * insns.Spec.spawn_insns)
  in
  let continue = ref true in
  while !continue do
    let live = ref [] in
    Array.iteri (fun lane s -> if s <> [] then live := lane :: !live) stacks;
    match !live with
    | [] -> continue := false
    | lanes ->
        let k = List.length lanes in
        (* gather the top frames: one divergent-address gather per field *)
        let addrs =
          Array.of_list (List.map (fun lane -> top_addr lane (List.length stacks.(lane))) lanes)
        in
        for _f = 1 to nfields do
          Vc_simd.Vm.gather vm ~addrs ~lane_bytes:elem
        done;
        (* masked execution: both branch paths issue for every step *)
        for _i = 1 to step_insns do
          Vc_simd.Vm.vector_op vm ~width ~active:k
        done;
        if k = width then stats.Vc_simd.Stats.full_tasks <- stats.Vc_simd.Stats.full_tasks + k
        else stats.Vc_simd.Stats.epilog_tasks <- stats.Vc_simd.Stats.epilog_tasks + k;
        List.iter
          (fun lane ->
            match stacks.(lane) with
            | [] -> ()
            | task :: rest ->
                let children = expand task in
                (if children <> [] then
                   let push_addrs =
                     Array.of_list
                       (List.mapi
                          (fun i _ -> top_addr lane (List.length rest + i + 1))
                          children)
                   in
                   for _f = 1 to nfields do
                     Vc_simd.Vm.scatter vm ~addrs:push_addrs ~lane_bytes:elem
                   done);
                stacks.(lane) <- children @ rest)
          lanes
  done;
  let wall = Unix.gettimeofday () -. wall_start in
  Measure.report m ~benchmark:spec.Spec.name ~strategy:"strawman"
    ~reducers:(Vc_lang.Reducer.values reducers) ~wall_seconds:wall
