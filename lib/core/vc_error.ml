type site =
  | Compaction
  | Conversion
  | Block_alloc
  | Cache_io
  | Scheduler
  | Decode
  | Telemetry
  | Protocol

type phase = Setup | Expand | Execute | Recover | Persist | Load

type hint = Retry | Fallback_scalar | Discard_entry | Abort

type resource =
  | Deadline_cycles
  | Deadline_wall
  | Live_frames
  | Task_budget
  | Memory
  | Queue_depth

type kind =
  | Fault of { site : site; hint : hint }
  | Budget_exceeded of { resource : resource; limit : float; actual : float }

type t = { kind : kind; phase : phase; detail : string }

exception Error of t

let site_name = function
  | Compaction -> "compaction"
  | Conversion -> "conversion"
  | Block_alloc -> "block-alloc"
  | Cache_io -> "cache-io"
  | Scheduler -> "scheduler"
  | Decode -> "decode"
  | Telemetry -> "telemetry"
  | Protocol -> "protocol"

let phase_name = function
  | Setup -> "setup"
  | Expand -> "expand"
  | Execute -> "execute"
  | Recover -> "recover"
  | Persist -> "persist"
  | Load -> "load"

let hint_name = function
  | Retry -> "retry"
  | Fallback_scalar -> "fallback-scalar"
  | Discard_entry -> "discard-entry"
  | Abort -> "abort"

let resource_name = function
  | Deadline_cycles -> "deadline-cycles"
  | Deadline_wall -> "deadline-wall"
  | Live_frames -> "live-frames"
  | Task_budget -> "task-budget"
  | Memory -> "memory"
  | Queue_depth -> "queue-depth"

let site_of t = match t.kind with Fault { site; _ } -> Some site | _ -> None

let hint_of t = match t.kind with Fault { hint; _ } -> Some hint | _ -> None

let is_budget t = match t.kind with Budget_exceeded _ -> true | Fault _ -> false

(* The process-level exit-code taxonomy shared by every vcilk subcommand:
   0 ok, 1 detected failure, 2 budget/deadline exceeded, 3 perf
   regression.  Crashes are distinct: cmdliner maps uncaught exceptions
   to 125 and usage errors to 124. *)
let exit_ok = 0
let exit_failure = 1
let exit_budget = 2
let exit_regression = 3

let exit_code t = if is_budget t then exit_budget else exit_failure

let to_string t =
  match t.kind with
  | Fault { site; hint } ->
      Printf.sprintf "[%s/%s] %s (recovery: %s)" (site_name site) (phase_name t.phase)
        t.detail (hint_name hint)
  | Budget_exceeded { resource; limit; actual } ->
      Printf.sprintf "[budget/%s] %s exceeded: %g > limit %g%s" (phase_name t.phase)
        (resource_name resource) actual limit
        (if t.detail = "" then "" else " (" ^ t.detail ^ ")")

let pp fmt t = Format.pp_print_string fmt (to_string t)

let fail ~phase site hint fmt =
  Printf.ksprintf
    (fun detail -> raise (Error { kind = Fault { site; hint }; phase; detail }))
    fmt

let budget ?(detail = "") ~phase resource ~limit ~actual () =
  raise
    (Error { kind = Budget_exceeded { resource; limit; actual }; phase; detail })

(* Classify an arbitrary exception escaping a supervised region.  Typed
   errors pass through; everything else becomes an unrecoverable scheduler
   fault carrying the original message. *)
let of_exn ~phase = function
  | Error t -> t
  | exn ->
      {
        kind = Fault { site = Scheduler; hint = Abort };
        phase;
        detail = Printexc.to_string exn;
      }
