(** Execution backends over the blocked IR.

    A backend executes a program source — a DSL program's blocked IR, or a
    native {!Spec.t} — with the Fig. 6 schedule (bfs levels, switch to
    per-site blocked execution at [max_block], re-expansion of shrunken
    blocks) at raw OCaml speed, with no cost model.  Two instances:

    - {!interp} ("blocked"): {!Blocked_interp} for IR sources (per-thread
      closure dispatch over list levels), spec callbacks over ThreadBlocks
      for native sources;
    - {!compiled}: per-spawn-site specialized {!Codegen.Soa} step kernels
      over unboxed SoA frames for IR sources (native sources use the same
      callback path — a native spec is already compiled OCaml).

    Both produce bit-equal reducers, task counts and scheduler counters
    for the same source and strategy; the differential suite enforces
    this.  Compare with {!Engine}, which runs the {e cost model} over
    native specs and reports modeled cycles: backends report wall-clock
    throughput instead and exist so compiled-vs-interpreted is a pure
    dispatch/layout measurement.

    The scheduler is shared and generic over a level-stepper, so a future
    C-stub or FPGA-style backend is a third {!t} value, not a rewrite. *)

type result = {
  reducers : (string * int) list;  (** declaration order *)
  tasks : int;
  base_tasks : int;
  max_depth : int;
  switches : int;
  reexpansions : int;
  wall_seconds : float;
      (** wall-clock of the execution proper; [0.0] only on the interp-IR
          path when not wrapped by {!timed_run} *)
}

type source = Ir of Blocked_ast.t | Native of Spec.t

type opts = {
  strategy : Policy.strategy;
  max_tasks : int;
  telemetry : Telemetry.t option;
  faults : Fault.plan;
  recover : bool;
      (** re-run faulted levels on the scalar path (bit-equal reducers and
          task counts; switch/re-expansion counters legitimately differ) *)
  wall_deadline : float option;  (** seconds, checked at level boundaries *)
  max_live_frames : int option;
  domains : int option;
      (** [None]: plain single-context run.  [Some n]: chunked run — the
          frontier is expanded serially to [chunks] chunks and dealt
          round-robin to [n] domains; results are independent of [n]. *)
  chunks : int;  (** chunk count for the domains path (default 32) *)
}

val default_opts : opts
(** [Hybrid { max_block = 256; reexpand = true }], 20M tasks, no
    telemetry, no faults, [recover = true], no budgets, [domains = None],
    [chunks = 32]. *)

type t = {
  name : string;  (** CLI name: ["blocked"] or ["compiled"] *)
  description : string;
  exec : opts -> source -> int array list -> result;
}

val interp : t
val compiled : t
val all : t list
val find : string -> t option

val run : ?opts:opts -> t -> source -> roots:int array list -> result
(** Execute from the given root frames (each one frame per program
    parameter / spec field).  Raises {!Vc_error.Error} on budget
    violations and on unrecovered faults, [Invalid_argument] on malformed
    roots or an IR-interp run with [domains = Some _] (the blocked
    interpreter has no domains mode). *)

val timed_run : ?opts:opts -> t -> source -> roots:int array list -> result
(** {!run}, with [wall_seconds] filled in on the interp-IR path too. *)

val roots_of : source -> int array list
(** The root frames a native spec carries.  Raises [Invalid_argument] for
    IR sources (DSL programs take arguments, not baked-in roots). *)
