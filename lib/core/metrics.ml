type t = {
  mutable level_tasks : int array;
  mutable level_base : int array;
  mutable reexp_count : int array;
  mutable reexp_factor_sum : float array;
  mutable reexp_factor_n : int array;
  mutable max_depth : int;
  mutable total_tasks : int;
  mutable total_base : int;
  mutable space_peak : int;
  mutable kernel : int;
  mutable overhead : int;
  occupancy : int array;  (* 10 buckets: [0,0.1) .. [0.9,1.0] *)
}

let create () =
  {
    level_tasks = Array.make 16 0;
    level_base = Array.make 16 0;
    reexp_count = Array.make 16 0;
    reexp_factor_sum = Array.make 16 0.0;
    reexp_factor_n = Array.make 16 0;
    max_depth = 0;
    total_tasks = 0;
    total_base = 0;
    space_peak = 0;
    kernel = 0;
    overhead = 0;
    occupancy = Array.make 10 0;
  }

let reset t =
  t.level_tasks <- Array.make 16 0;
  t.level_base <- Array.make 16 0;
  t.reexp_count <- Array.make 16 0;
  t.reexp_factor_sum <- Array.make 16 0.0;
  t.reexp_factor_n <- Array.make 16 0;
  t.max_depth <- 0;
  t.total_tasks <- 0;
  t.total_base <- 0;
  t.space_peak <- 0;
  t.kernel <- 0;
  t.overhead <- 0;
  Array.fill t.occupancy 0 (Array.length t.occupancy) 0

let ensure t depth =
  let n = Array.length t.level_tasks in
  if depth >= n then begin
    let n' = max (depth + 1) (2 * n) in
    let grow a =
      let b = Array.make n' 0 in
      Array.blit a 0 b 0 n;
      b
    in
    let growf a =
      let b = Array.make n' 0.0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.level_tasks <- grow t.level_tasks;
    t.level_base <- grow t.level_base;
    t.reexp_count <- grow t.reexp_count;
    t.reexp_factor_n <- grow t.reexp_factor_n;
    t.reexp_factor_sum <- growf t.reexp_factor_sum
  end;
  if depth > t.max_depth then t.max_depth <- depth

let tasks_at_level t ~depth ~n =
  ensure t depth;
  t.level_tasks.(depth) <- t.level_tasks.(depth) + n;
  t.total_tasks <- t.total_tasks + n

let base_at_level t ~depth ~n =
  ensure t depth;
  t.level_base.(depth) <- t.level_base.(depth) + n;
  t.total_base <- t.total_base + n

let reexpansion t ~depth ~before:_ =
  ensure t depth;
  t.reexp_count.(depth) <- t.reexp_count.(depth) + 1

let reexpansion_growth t ~depth ~factor =
  ensure t depth;
  t.reexp_factor_sum.(depth) <- t.reexp_factor_sum.(depth) +. factor;
  t.reexp_factor_n.(depth) <- t.reexp_factor_n.(depth) + 1

let live_threads t n = if n > t.space_peak then t.space_peak <- n

let kernel_ops t n = t.kernel <- t.kernel + n
let overhead_ops t n = t.overhead <- t.overhead + n

let total_tasks t = t.total_tasks
let total_base t = t.total_base
let max_depth t = t.max_depth

let levels t = Array.init (t.max_depth + 1) (fun d -> (t.level_tasks.(d), t.level_base.(d)))

let reexpansions t =
  let out = ref [] in
  for d = t.max_depth downto 0 do
    if t.reexp_count.(d) > 0 then begin
      let mean =
        if t.reexp_factor_n.(d) = 0 then 1.0
        else t.reexp_factor_sum.(d) /. float_of_int t.reexp_factor_n.(d)
      in
      out := (d, t.reexp_count.(d), mean) :: !out
    end
  done;
  Array.of_list !out

let space_peak t = t.space_peak
let kernel_op_count t = t.kernel
let overhead_op_count t = t.overhead

let reexpansion_total t = Array.fold_left ( + ) 0 t.reexp_count

let occupancy_sample t ~n ~width =
  if n > 0 && width > 0 then begin
    let slots = (n + width - 1) / width * width in
    let occ = float_of_int n /. float_of_int slots in
    let bucket = min 9 (int_of_float (occ *. 10.0)) in
    t.occupancy.(bucket) <- t.occupancy.(bucket) + 1
  end

let occupancy_hist t = Array.copy t.occupancy

(* Bounded sliding-window sample reservoir with quantile reads — the
   serve daemon's latency statistics (p50/p99 wall).  Keeps the most
   recent [capacity] samples in a ring; quantiles sort a snapshot copy,
   so reads are O(capacity log capacity) and never block writers long. *)
module Reservoir = struct
  type r = {
    lock : Mutex.t;
    ring : float array;
    mutable next : int;  (* ring write cursor *)
    mutable filled : int;  (* live samples, <= capacity *)
    mutable total : int;  (* samples ever added *)
    mutable max_seen : float;
  }

  type t = r

  let create ~capacity =
    if capacity < 1 then invalid_arg "Metrics.Reservoir.create: capacity < 1";
    {
      lock = Mutex.create ();
      ring = Array.make capacity 0.0;
      next = 0;
      filled = 0;
      total = 0;
      max_seen = neg_infinity;
    }

  let add t x =
    Mutex.protect t.lock (fun () ->
        let cap = Array.length t.ring in
        t.ring.(t.next) <- x;
        t.next <- (t.next + 1) mod cap;
        if t.filled < cap then t.filled <- t.filled + 1;
        t.total <- t.total + 1;
        if x > t.max_seen then t.max_seen <- x)

  let count t = Mutex.protect t.lock (fun () -> t.total)

  let sorted t =
    Mutex.protect t.lock (fun () -> Array.sub t.ring 0 t.filled)
    |> fun a ->
    Array.sort compare a;
    a

  (* Nearest-rank quantile over the retained window; 0 when empty. *)
  let quantile t q =
    let a = sorted t in
    let n = Array.length a in
    if n = 0 then 0.0
    else
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

  let max_value t =
    Mutex.protect t.lock (fun () -> if t.filled = 0 then 0.0 else t.max_seen)
end
