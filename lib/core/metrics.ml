type t = {
  mutable level_tasks : int array;
  mutable level_base : int array;
  mutable reexp_count : int array;
  mutable reexp_factor_sum : float array;
  mutable reexp_factor_n : int array;
  mutable max_depth : int;
  mutable total_tasks : int;
  mutable total_base : int;
  mutable space_peak : int;
  mutable kernel : int;
  mutable overhead : int;
  occupancy : int array;  (* 10 buckets: [0,0.1) .. [0.9,1.0] *)
}

let create () =
  {
    level_tasks = Array.make 16 0;
    level_base = Array.make 16 0;
    reexp_count = Array.make 16 0;
    reexp_factor_sum = Array.make 16 0.0;
    reexp_factor_n = Array.make 16 0;
    max_depth = 0;
    total_tasks = 0;
    total_base = 0;
    space_peak = 0;
    kernel = 0;
    overhead = 0;
    occupancy = Array.make 10 0;
  }

let reset t =
  t.level_tasks <- Array.make 16 0;
  t.level_base <- Array.make 16 0;
  t.reexp_count <- Array.make 16 0;
  t.reexp_factor_sum <- Array.make 16 0.0;
  t.reexp_factor_n <- Array.make 16 0;
  t.max_depth <- 0;
  t.total_tasks <- 0;
  t.total_base <- 0;
  t.space_peak <- 0;
  t.kernel <- 0;
  t.overhead <- 0;
  Array.fill t.occupancy 0 (Array.length t.occupancy) 0

let ensure t depth =
  let n = Array.length t.level_tasks in
  if depth >= n then begin
    let n' = max (depth + 1) (2 * n) in
    let grow a =
      let b = Array.make n' 0 in
      Array.blit a 0 b 0 n;
      b
    in
    let growf a =
      let b = Array.make n' 0.0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.level_tasks <- grow t.level_tasks;
    t.level_base <- grow t.level_base;
    t.reexp_count <- grow t.reexp_count;
    t.reexp_factor_n <- grow t.reexp_factor_n;
    t.reexp_factor_sum <- growf t.reexp_factor_sum
  end;
  if depth > t.max_depth then t.max_depth <- depth

let tasks_at_level t ~depth ~n =
  ensure t depth;
  t.level_tasks.(depth) <- t.level_tasks.(depth) + n;
  t.total_tasks <- t.total_tasks + n

let base_at_level t ~depth ~n =
  ensure t depth;
  t.level_base.(depth) <- t.level_base.(depth) + n;
  t.total_base <- t.total_base + n

let reexpansion t ~depth ~before:_ =
  ensure t depth;
  t.reexp_count.(depth) <- t.reexp_count.(depth) + 1

let reexpansion_growth t ~depth ~factor =
  ensure t depth;
  t.reexp_factor_sum.(depth) <- t.reexp_factor_sum.(depth) +. factor;
  t.reexp_factor_n.(depth) <- t.reexp_factor_n.(depth) + 1

let live_threads t n = if n > t.space_peak then t.space_peak <- n

let kernel_ops t n = t.kernel <- t.kernel + n
let overhead_ops t n = t.overhead <- t.overhead + n

let total_tasks t = t.total_tasks
let total_base t = t.total_base
let max_depth t = t.max_depth

let levels t = Array.init (t.max_depth + 1) (fun d -> (t.level_tasks.(d), t.level_base.(d)))

let reexpansions t =
  let out = ref [] in
  for d = t.max_depth downto 0 do
    if t.reexp_count.(d) > 0 then begin
      let mean =
        if t.reexp_factor_n.(d) = 0 then 1.0
        else t.reexp_factor_sum.(d) /. float_of_int t.reexp_factor_n.(d)
      in
      out := (d, t.reexp_count.(d), mean) :: !out
    end
  done;
  Array.of_list !out

let space_peak t = t.space_peak
let kernel_op_count t = t.kernel
let overhead_op_count t = t.overhead

let reexpansion_total t = Array.fold_left ( + ) 0 t.reexp_count

let occupancy_sample t ~n ~width =
  if n > 0 && width > 0 then begin
    let slots = (n + width - 1) / width * width in
    let occ = float_of_int n /. float_of_int slots in
    let bucket = min 9 (int_of_float (occ *. 10.0)) in
    t.occupancy.(bucket) <- t.occupancy.(bucket) + 1
  end

let occupancy_hist t = Array.copy t.occupancy

(* Bounded sliding-window sample reservoir with quantile reads — the
   serve daemon's latency statistics (p50/p99 wall).  Keeps the most
   recent [capacity] samples in a ring; quantiles sort a snapshot copy,
   so reads are O(capacity log capacity) and never block writers long. *)
module Reservoir = struct
  type r = {
    lock : Mutex.t;
    ring : float array;
    mutable next : int;  (* ring write cursor *)
    mutable filled : int;  (* live samples, <= capacity *)
    mutable total : int;  (* samples ever added *)
    mutable max_seen : float;
  }

  type t = r

  let create ~capacity =
    if capacity < 1 then invalid_arg "Metrics.Reservoir.create: capacity < 1";
    {
      lock = Mutex.create ();
      ring = Array.make capacity 0.0;
      next = 0;
      filled = 0;
      total = 0;
      max_seen = neg_infinity;
    }

  let add t x =
    Mutex.protect t.lock (fun () ->
        let cap = Array.length t.ring in
        t.ring.(t.next) <- x;
        t.next <- (t.next + 1) mod cap;
        if t.filled < cap then t.filled <- t.filled + 1;
        t.total <- t.total + 1;
        if x > t.max_seen then t.max_seen <- x)

  let count t = Mutex.protect t.lock (fun () -> t.total)

  let sorted t =
    Mutex.protect t.lock (fun () -> Array.sub t.ring 0 t.filled)
    |> fun a ->
    Array.sort compare a;
    a

  (* Nearest-rank quantile over the retained window; 0 when empty. *)
  let quantile t q =
    let a = sorted t in
    let n = Array.length a in
    if n = 0 then 0.0
    else
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

  let max_value t =
    Mutex.protect t.lock (fun () -> if t.filled = 0 then 0.0 else t.max_seen)
end

(* Fixed-layout log-scaled latency histogram, sharded per domain so
   worker-domain adds never contend on one lock.  Unlike the reservoir it
   keeps exact lifetime counts: quantiles over hours of traffic cost one
   O(shards * buckets) merge, and two histograms with the same layout merge
   by bucket-wise addition (loadgen connection threads, multi-process
   roll-ups). *)
module Histogram = struct
  type shard = {
    lock : Mutex.t;
    counts : int array;  (* length = buckets + 1; last = overflow (> hi) *)
    mutable sum : float;
    mutable max_seen : float;
  }

  type h = {
    lo : float;  (* upper bound of bucket 0 *)
    hi : float;  (* upper bound of the last finite bucket *)
    buckets : int;  (* finite buckets; counts arrays are buckets + 1 *)
    bounds : float array;  (* length buckets; bounds.(i) = lo * r^i *)
    shards : shard array;
  }

  type t = h

  let default_buckets = 64
  let default_lo = 0.05 (* ms: 50 us *)
  let default_hi = 60_000.0 (* ms: one minute *)

  let create ?(shards = 8) ?(buckets = default_buckets) ?(lo = default_lo)
      ?(hi = default_hi) () =
    if shards < 1 then invalid_arg "Metrics.Histogram.create: shards < 1";
    if buckets < 2 then invalid_arg "Metrics.Histogram.create: buckets < 2";
    if not (lo > 0.0 && hi > lo) then
      invalid_arg "Metrics.Histogram.create: need 0 < lo < hi";
    let r = (hi /. lo) ** (1.0 /. float_of_int (buckets - 1)) in
    let bounds = Array.init buckets (fun i -> lo *. (r ** float_of_int i)) in
    bounds.(buckets - 1) <- hi;
    (* exact, not lo * r^(n-1) rounded *)
    let shard () =
      {
        lock = Mutex.create ();
        counts = Array.make (buckets + 1) 0;
        sum = 0.0;
        max_seen = neg_infinity;
      }
    in
    { lo; hi; buckets; bounds; shards = Array.init shards (fun _ -> shard ()) }

  let same_layout a b = a.lo = b.lo && a.hi = b.hi && a.buckets = b.buckets

  (* Smallest i with x <= bounds.(i); [buckets] (overflow) when x > hi. *)
  let bucket_index t x =
    if x > t.hi then t.buckets
    else begin
      let lo = ref 0 and hi = ref (t.buckets - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if x <= t.bounds.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
    end

  let add t x =
    let s =
      t.shards.((Domain.self () :> int) mod Array.length t.shards)
    in
    let i = bucket_index t x in
    Mutex.protect s.lock (fun () ->
        s.counts.(i) <- s.counts.(i) + 1;
        s.sum <- s.sum +. x;
        if x > s.max_seen then s.max_seen <- x)

  (* One coherent pass over the shards.  Each shard is internally
     consistent (read under its lock); cross-shard skew of a few
     in-flight adds is acceptable for monitoring reads. *)
  let merged t =
    let counts = Array.make (t.buckets + 1) 0 in
    let sum = ref 0.0 and max_seen = ref neg_infinity in
    Array.iter
      (fun s ->
        Mutex.protect s.lock (fun () ->
            Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.counts;
            sum := !sum +. s.sum;
            if s.max_seen > !max_seen then max_seen := s.max_seen))
      t.shards;
    (counts, !sum, !max_seen)

  let counts t =
    let c, _, _ = merged t in
    c

  let count t = Array.fold_left ( + ) 0 (counts t)

  let sum t =
    let _, s, _ = merged t in
    s

  let max_value t =
    let c, _, m = merged t in
    if Array.fold_left ( + ) 0 c = 0 then 0.0 else m

  let bounds t = Array.copy t.bounds

  let cumulative t =
    let c = counts t in
    let acc = ref 0 in
    Array.init (t.buckets + 1) (fun i ->
        acc := !acc + c.(i);
        let le = if i < t.buckets then t.bounds.(i) else infinity in
        (le, !acc))

  (* Nearest-rank quantile over cumulative buckets: the upper bound of
     the first bucket whose cumulative count reaches ceil(q * total) —
     an overestimate by at most one bucket's width (~12% at the default
     layout).  Overflow-bucket hits return the exact maximum instead of
     +inf. *)
  let quantile t q =
    let c, _, max_seen = merged t in
    let total = Array.fold_left ( + ) 0 c in
    if total = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
      let acc = ref 0 and i = ref 0 in
      while !acc + c.(!i) < rank do
        acc := !acc + c.(!i);
        incr i
      done;
      if !i >= t.buckets then max_seen else t.bounds.(!i)
    end

  let merge a b =
    if not (same_layout a b) then
      invalid_arg "Metrics.Histogram.merge: layout mismatch";
    let ca, sa, ma = merged a in
    let cb, sb, mb = merged b in
    let out = create ~shards:1 ~buckets:a.buckets ~lo:a.lo ~hi:a.hi () in
    let s = out.shards.(0) in
    Array.iteri (fun i c -> s.counts.(i) <- c + cb.(i)) ca;
    s.sum <- sa +. sb;
    s.max_seen <- Float.max ma mb;
    out

  (* Self-contained JSON rendering (vc_core sits below the Jsonx
     library).  Floats print with 17 significant digits so they
     round-trip; layout fields let a reader rebuild the histogram. *)
  let to_json_string t =
    let c, sum, max_seen = merged t in
    let total = Array.fold_left ( + ) 0 c in
    let fl x =
      let s = Printf.sprintf "%.17g" x in
      if
        String.contains s '.' || String.contains s 'e'
        || String.contains s 'n' || String.contains s 'i'
      then s
      else s ^ ".0"
    in
    let ints a =
      "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"
    in
    let floats a =
      "[" ^ String.concat "," (Array.to_list (Array.map fl a)) ^ "]"
    in
    Printf.sprintf
      "{\"lo\":%s,\"hi\":%s,\"buckets\":%d,\"count\":%d,\"sum\":%s,\"max_ms\":%s,\"bounds_ms\":%s,\"counts\":%s}"
      (fl t.lo) (fl t.hi) t.buckets total (fl sum)
      (fl (if total = 0 then 0.0 else max_seen))
      (floats t.bounds) (ints c)
end
