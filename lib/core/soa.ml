let width_of vm schema =
  Vc_simd.Isa.lanes (Vc_simd.Vm.isa vm) (Schema.lane_kind schema)

let emit_opt telemetry ev =
  match telemetry with Some tel -> Telemetry.emit tel ev | None -> ()

(* Conversion cost attributes to a "convert" span (profiled alongside the
   engine's expand/blocked/compact frames). *)
let with_span_opt telemetry f =
  match telemetry with
  | Some tel when Telemetry.enabled tel ->
      Telemetry.emit tel (Telemetry.Span_open { frame = "convert" });
      Fun.protect
        ~finally:(fun () ->
          Telemetry.emit tel (Telemetry.Span_close { frame = "convert" }))
        f
  | Some _ | None -> f ()

let note_fault telemetry (err : Vc_error.t) =
  emit_opt telemetry
    (Telemetry.Fault
       {
         site =
           (match Vc_error.site_of err with
           | Some s -> Vc_error.site_name s
           | None -> "unknown");
         detail = err.Vc_error.detail;
       });
  emit_opt telemetry (Telemetry.Fallback { depth = 0; size = 0 })

let aos_to_soa ?telemetry ?(faults = Fault.none) ?(recover = true) ~vm ~addr
    ~schema ~isa ~aos_base ~frames () =
  let n = Array.length frames in
  let nfields = Schema.num_fields schema in
  with_span_opt telemetry @@ fun () ->
  emit_opt telemetry (Telemetry.Convert { to_soa = true; n; fields = nfields });
  let elem = Schema.elem_bytes schema ~isa in
  let blk = Block.create ~label:"soa" addr ~schema ~isa ~capacity:(max n 1) in
  Array.iter (fun frame -> Block.push blk frame) frames;
  let width = width_of vm schema in
  let frame_bytes = nfields * elem in
  (* The conversion trip fires before any access is charged; the frames
     are already in the block (pure data movement), so a faulted gather
     path degrades to an element-wise scalar copy with identical result. *)
  (match
     Fault.trip faults Fault.Convert ~phase:Vc_error.Setup
       ~hint:Vc_error.Fallback_scalar
       ~detail:(Printf.sprintf "aos->soa of %d frames x %d fields" n nfields)
   with
  | () ->
      for f = 0 to nfields - 1 do
        let chunk = ref 0 in
        while !chunk < n do
          let lanes = min width (n - !chunk) in
          (* strided read of field [f] from AoS *)
          let addrs =
            Array.init lanes (fun i ->
                aos_base + ((!chunk + i) * frame_bytes) + (f * elem))
          in
          Vc_simd.Vm.gather vm ~addrs ~lane_bytes:elem;
          (* packed store into the SoA column *)
          Vc_simd.Vm.vector_store vm
            ~addr:(Block.field_addr blk ~field:f ~row:!chunk)
            ~lanes ~lane_bytes:elem;
          chunk := !chunk + width
        done
      done
  | exception Vc_error.Error err when recover ->
      note_fault telemetry err;
      Vc_simd.Vm.scalar_ops vm (2 * n * nfields));
  blk

let soa_to_aos ?telemetry ?(faults = Fault.none) ?(recover = true) ~vm ~aos_base
    blk =
  let n = Block.size blk in
  let nfields = Schema.num_fields (Block.schema blk) in
  with_span_opt telemetry @@ fun () ->
  emit_opt telemetry (Telemetry.Convert { to_soa = false; n; fields = nfields });
  let elem = Block.elem_bytes blk in
  let width = width_of vm (Block.schema blk) in
  let frame_bytes = nfields * elem in
  let out =
    Array.init n (fun row ->
        Array.init nfields (fun f -> Block.get blk ~field:f ~row))
  in
  (match
     Fault.trip faults Fault.Convert ~phase:Vc_error.Execute
       ~hint:Vc_error.Fallback_scalar
       ~detail:(Printf.sprintf "soa->aos of %d frames x %d fields" n nfields)
   with
  | () ->
      for f = 0 to nfields - 1 do
        let chunk = ref 0 in
        while !chunk < n do
          let lanes = min width (n - !chunk) in
          Vc_simd.Vm.vector_load vm
            ~addr:(Block.field_addr blk ~field:f ~row:!chunk)
            ~lanes ~lane_bytes:elem;
          let addrs =
            Array.init lanes (fun i ->
                aos_base + ((!chunk + i) * frame_bytes) + (f * elem))
          in
          Vc_simd.Vm.scatter vm ~addrs ~lane_bytes:elem;
          chunk := !chunk + width
        done
      done
  | exception Vc_error.Error err when recover ->
      note_fault telemetry err;
      Vc_simd.Vm.scalar_ops vm (2 * n * nfields));
  out
