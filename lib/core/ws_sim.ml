type job = { id : int; cost : float }

type placement = Worker0 | Round_robin

type stats = {
  makespan : float;
  total_work : float;
  busy : float array;
  steals : int;
  failed_steals : int;
  jobs_run : int array;
  steal_log : (int * int * int) list;
}

(* Simple deterministic xorshift for victim selection. *)
let next_rand state =
  let x = !state in
  let x = x lxor (x lsl 13) land 0x3FFFFFFFFFFFFFFF in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) land 0x3FFFFFFFFFFFFFFF in
  state := x;
  x

let simulate ?(steal_cost = 200.0) ?(seed = 1) ?(placement = Worker0) ~workers jobs =
  if workers < 1 then invalid_arg "Ws_sim.simulate: workers must be positive";
  let rng = ref (max 1 (seed land 0x3FFFFFFFFFFFFFFF)) in
  (* Deques: bottom = list head for the owner; thieves take from the top
     (list tail), so we keep each deque as a (front, back) pair of
     lists. *)
  let front = Array.make workers [] in
  let back = Array.make workers [] in
  (match placement with
  | Worker0 ->
      (* worker 0 starts with everything (expansion feeds the pool) *)
      front.(0) <- jobs
  | Round_robin ->
      (* jobs are dealt bottom-up in index order, matching the domain
         scheduler's initial chunk assignment *)
      List.iteri (fun i j -> front.(i mod workers) <- j :: front.(i mod workers)) jobs;
      Array.iteri (fun w l -> front.(w) <- List.rev l) front);
  let clock = Array.make workers 0.0 in
  let busy = Array.make workers 0.0 in
  let jobs_run = Array.make workers 0 in
  let steals = ref 0 in
  let steal_log = ref [] in
  let failed = ref 0 in
  let remaining = ref (List.length jobs) in
  let pop_bottom w =
    match front.(w) with
    | j :: rest ->
        front.(w) <- rest;
        Some j
    | [] -> (
        match List.rev back.(w) with
        | j :: rest ->
            back.(w) <- [];
            front.(w) <- rest;
            Some j
        | [] -> None)
  in
  let steal_top victim =
    match back.(victim) with
    | j :: rest ->
        back.(victim) <- rest;
        Some j
    | [] -> (
        match front.(victim) with
        | [] -> None
        | js -> (
            match List.rev js with
            | j :: rest ->
                front.(victim) <- List.rev rest;
                ignore j;
                Some j
            | [] -> None))
  in
  let makespan = ref 0.0 in
  (* Event loop: repeatedly advance the worker with the smallest clock.
     A worker with local work runs it; otherwise it pays a steal attempt
     on a random victim. *)
  while !remaining > 0 do
    let w = ref 0 in
    for i = 1 to workers - 1 do
      if clock.(i) < clock.(!w) then w := i
    done;
    let w = !w in
    match pop_bottom w with
    | Some job ->
        clock.(w) <- clock.(w) +. job.cost;
        busy.(w) <- busy.(w) +. job.cost;
        jobs_run.(w) <- jobs_run.(w) + 1;
        decr remaining;
        if clock.(w) > !makespan then makespan := clock.(w)
    | None ->
        if workers = 1 then remaining := 0 (* defensive: cannot happen *)
        else begin
          let victim = next_rand rng mod workers in
          let victim = if victim = w then (victim + 1) mod workers else victim in
          clock.(w) <- clock.(w) +. steal_cost;
          match steal_top victim with
          | Some job ->
              incr steals;
              steal_log := (w, victim, job.id) :: !steal_log;
              (* the thief starts executing the stolen job immediately
                 (Cilk-style); leaving it stealable on the thief's deque
                 would let idle workers leapfrog-steal it forever *)
              clock.(w) <- clock.(w) +. job.cost;
              busy.(w) <- busy.(w) +. job.cost;
              jobs_run.(w) <- jobs_run.(w) + 1;
              decr remaining;
              if clock.(w) > !makespan then makespan := clock.(w)
          | None -> incr failed
        end
  done;
  {
    makespan = !makespan;
    total_work = List.fold_left (fun acc j -> acc +. j.cost) 0.0 jobs;
    busy;
    steals = !steals;
    failed_steals = !failed;
    jobs_run;
    steal_log = List.rev !steal_log;
  }

let utilization stats =
  if stats.makespan <= 0.0 then 1.0
  else
    Array.fold_left ( +. ) 0.0 stats.busy
    /. (stats.makespan *. float_of_int (Array.length stats.busy))
