exception Oom of { live : int; limit : int }

exception Task_limit of int

let log_src = Logs.Src.create "vc.engine" ~doc:"Blocked execution engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type ctx = {
  m : Measure.t;
  spec : Spec.t;
  reducers : Vc_lang.Reducer.set;
  width : int;
  elem : int;
  nfields : int;
  compact : Vc_simd.Compact.engine;
  max_block : int;  (** breadth-first switches to blocked at this size *)
  reexp_threshold : int;  (** blocked hands blocks <= this back to bfs *)
  reexpand : bool;
  max_live : int;
  max_tasks : int;
  cutoff : int;  (** blocks at most this size run their subtrees scalar *)
  tel : Telemetry.t;
  site_frames : string array;  (** preformatted "spawn:siteN" span names *)
  faults : Fault.plan;
  recover : bool;  (** quarantine faulted blocks and re-run them scalar *)
  deadline : float option;  (** modeled-cycle budget, checked per level *)
  wall_deadline : float option;  (** wall-clock budget in seconds *)
  frame_budget : int option;  (** user live-frame budget (typed error) *)
  wall_start : float;
  mutable live : int;  (** current live threads, for space accounting *)
  mutable executed : int;
  (* Reusable blocks: ping-pong pair per breadth-first run depth parity is
     not enough because re-expansion nests; instead one reusable block per
     (tree depth, slot).  Slot [0..e-1] holds blocked execution's per-site
     children; breadth-first "next" blocks use slot [e]. *)
  pool : (int * int, Block.t ref) Hashtbl.t;
}

let isa ctx = ctx.m.Measure.machine.Vc_mem.Machine.isa

let modeled_cycles ctx =
  Vc_simd.Vm.issue_cycles ctx.m.Measure.vm
  +. Vc_mem.Hierarchy.penalty_cycles ctx.m.Measure.hier

(* Cooperative cancellation: budgets are checked at every level boundary,
   so an exceeded deadline surfaces within one block level rather than
   tearing down the run mid-operation.  Budget violations are typed (exit
   code 2) and deliberately never handled by fault recovery. *)
let budget_check ctx =
  (match ctx.frame_budget with
  | Some limit when ctx.live > limit ->
      let limit_f = float_of_int limit and actual = float_of_int ctx.live in
      Telemetry.emit ctx.tel
        (Telemetry.Deadline { resource = "live-frames"; limit = limit_f; actual });
      Vc_error.budget ~phase:Vc_error.Execute Vc_error.Live_frames ~limit:limit_f
        ~actual ()
  | _ -> ());
  (match ctx.deadline with
  | Some limit ->
      let actual = modeled_cycles ctx in
      if actual > limit then begin
        Telemetry.emit ctx.tel
          (Telemetry.Deadline { resource = "deadline-cycles"; limit; actual });
        Vc_error.budget ~phase:Vc_error.Execute Vc_error.Deadline_cycles ~limit
          ~actual ()
      end
  | None -> ());
  match ctx.wall_deadline with
  | Some limit ->
      let actual = Unix.gettimeofday () -. ctx.wall_start in
      if actual > limit then begin
        Telemetry.emit ctx.tel
          (Telemetry.Deadline { resource = "deadline-wall"; limit; actual });
        Vc_error.budget ~phase:Vc_error.Execute Vc_error.Deadline_wall ~limit ~actual
          ()
      end
  | None -> ()

(* Attribution frames (consumed by Profile): execution phases nested
   under the benchmark's root span.  Spans always close before the
   scheduler recurses into the next level, so profile paths stay flat —
   benchmark -> phase -> spawn site — instead of growing with tree
   depth. *)
let frame_expand = "expand"
let frame_blocked = "blocked"
let frame_compact = "compact"
let frame_cutoff = "cutoff"
let frame_fallback = "fallback"

let with_span ctx frame f =
  (* disabled hub: no closure setup on the hot path *)
  if Telemetry.enabled ctx.tel then begin
    Telemetry.emit ctx.tel (Telemetry.Span_open { frame });
    Fun.protect
      ~finally:(fun () -> Telemetry.emit ctx.tel (Telemetry.Span_close { frame }))
      f
  end
  else f ()

let note_fault ctx (e : Vc_error.t) =
  Log.info (fun m -> m "fault: %s" (Vc_error.to_string e));
  Telemetry.emit ctx.tel
    (Telemetry.Fault
       {
         site =
           (match Vc_error.site_of e with
           | Some s -> Vc_error.site_name s
           | None -> "unknown");
         detail = e.Vc_error.detail;
       })

let pool_block ctx ~depth ~slot ~room =
  Fault.trip ctx.faults Fault.Alloc ~phase:Vc_error.Expand
    ~hint:Vc_error.Fallback_scalar
    ~detail:(Printf.sprintf "block d%d-s%d (room %d)" depth slot room);
  let key = (depth, slot) in
  let cell =
    match Hashtbl.find_opt ctx.pool key with
    | Some cell -> cell
    | None ->
        let blk =
          Block.create
            ~label:(Printf.sprintf "blk-d%d-s%d" depth slot)
            ctx.m.Measure.addr ~schema:ctx.spec.Spec.schema ~isa:(isa ctx)
            ~capacity:(max room 16)
        in
        let cell = ref blk in
        Hashtbl.add ctx.pool key cell;
        cell
  in
  !cell |> Block.clear;
  cell := Block.ensure_room !cell ctx.m.Measure.addr ~extra:room;
  !cell

(* Charge the packed vector loads that bring a block's frames into
   registers: per field, one vector load per width-chunk. *)
let charge_block_read ctx blk =
  let n = Block.size blk in
  let vm = ctx.m.Measure.vm in
  for f = 0 to ctx.nfields - 1 do
    let chunk = ref 0 in
    while !chunk < n do
      let lanes = min ctx.width (n - !chunk) in
      Vc_simd.Vm.vector_load vm
        ~addr:(Block.field_addr blk ~field:f ~row:!chunk)
        ~lanes ~lane_bytes:ctx.elem;
      chunk := !chunk + ctx.width
    done
  done

(* Charge the packed stores of [count] frames appended to [blk] starting at
   row [from]. *)
let charge_block_append ctx blk ~from ~count =
  let vm = ctx.m.Measure.vm in
  if count > 0 then
    for f = 0 to ctx.nfields - 1 do
      let chunk = ref 0 in
      while !chunk < count do
        let lanes = min ctx.width (count - !chunk) in
        Vc_simd.Vm.vector_store vm
          ~addr:(Block.field_addr blk ~field:f ~row:(from + !chunk))
          ~lanes ~lane_bytes:ctx.elem;
        chunk := !chunk + ctx.width
      done
    done

let count_tasks ctx n =
  ctx.executed <- ctx.executed + n;
  if ctx.executed > ctx.max_tasks then raise (Task_limit ctx.max_tasks)

let frame_of ctx b row = Array.init ctx.nfields (fun f -> Block.get b ~field:f ~row)

(* Build the recursive scalar executor over a pair of scratch blocks:
   [go ~count frame d] runs [frame]'s whole subtree sequentially with
   scalar instructions, as a conventional runtime does below the task
   cut-off.  Tasks count as epilog (never vectorized).  [count:false]
   skips the root's task accounting for quarantine recovery, where the
   faulted vectorized level already ran [count_tasks]/[tasks_at_level]
   for the frame; descendants are always counted. *)
let scalar_executor ctx =
  let vm = ctx.m.Measure.vm in
  let insns = ctx.spec.Spec.insns in
  let stats = Vc_simd.Vm.stats vm in
  let scratch_parent =
    Block.create ~label:"scalar-parent" ctx.m.Measure.addr
      ~schema:ctx.spec.Spec.schema ~isa:(isa ctx) ~capacity:1
  in
  let scratch_child =
    Block.create ~label:"scalar-child" ctx.m.Measure.addr
      ~schema:ctx.spec.Spec.schema ~isa:(isa ctx)
      ~capacity:(max 1 ctx.spec.Spec.num_spawns)
  in
  let rec go ~count frame d =
    if count then begin
      count_tasks ctx 1;
      Metrics.tasks_at_level ctx.m.Measure.metrics ~depth:d ~n:1
    end;
    stats.Vc_simd.Stats.epilog_tasks <- stats.Vc_simd.Stats.epilog_tasks + 1;
    Vc_simd.Vm.scalar_ops vm
      (insns.Spec.check_insns + insns.Spec.scalar_insns + (2 * ctx.nfields) + 2);
    Block.clear scratch_parent;
    Block.push scratch_parent frame;
    if ctx.spec.Spec.is_base scratch_parent 0 then begin
      Metrics.base_at_level ctx.m.Measure.metrics ~depth:d ~n:1;
      Vc_simd.Vm.scalar_ops vm insns.Spec.base_insns;
      ctx.spec.Spec.exec_base ctx.reducers scratch_parent 0
    end
    else begin
      Vc_simd.Vm.scalar_ops vm insns.Spec.inductive_insns;
      Block.clear scratch_child;
      for site = 0 to ctx.spec.Spec.num_spawns - 1 do
        Vc_simd.Vm.scalar_ops vm insns.Spec.spawn_insns;
        ignore (ctx.spec.Spec.spawn scratch_parent 0 ~site ~dst:scratch_child : bool)
      done;
      let children =
        List.init (Block.size scratch_child) (fun row ->
            frame_of ctx scratch_child row)
      in
      List.iter (fun child -> go ~count:true child (d + 1)) children
    end
  in
  go

(* Task cut-off path: every thread of [blk] executes its whole subtree
   sequentially. *)
let sequential_subtree ctx blk ~depth =
  with_span ctx frame_cutoff @@ fun () ->
  Telemetry.emit ctx.tel
    (Telemetry.Level { phase = Trace.Cutoff; depth; size = Block.size blk; base = 0 });
  let go = scalar_executor ctx in
  for row = 0 to Block.size blk - 1 do
    go ~count:true (frame_of ctx blk row) depth
  done;
  ctx.live <- ctx.live - Block.size blk

(* Quarantine recovery: re-run each listed frame's whole subtree on the
   scalar path after a fault on the vectorized one.  [count_roots:false]
   when the faulted level already accounted the roots' task counts (the
   compaction trip fires after the level prologue; allocation trips fire
   after [process_level] returned); their base/inductive work still runs
   here, so reducer values match a fault-free run exactly. *)
let scalar_subtrees ctx frames ~depth ~count_roots =
  match frames with
  | [] -> ()
  | _ :: _ ->
      with_span ctx frame_fallback @@ fun () ->
      Telemetry.emit ctx.tel
        (Telemetry.Fallback { depth; size = List.length frames });
      let go = scalar_executor ctx in
      List.iter (fun frame -> go ~count:count_roots frame depth) frames

(* Is [exn] a fault this engine may absorb by falling back to scalar
   execution?  Budget violations and abort-hinted faults never are. *)
let recoverable ctx exn =
  ctx.recover
  &&
  match exn with
  | Vc_error.Error
      { Vc_error.kind = Vc_error.Fault { hint = Vc_error.Fallback_scalar; _ }; _ }
    ->
      true
  | _ -> false

(* Process the tasks of one block at one tree level: vectorized isBase
   check, stream compaction into base/recursive groups, vectorized base
   execution.  Returns the recursive rows.  Common to both execution
   strategies (the foreach bodies of Figs. 3 and 4(b)). *)
(* Fixed scalar cost of entering one transformed method on one block:
   call, block allocation/reset, loop setup - independent of block size,
   so it is what amortizes away as blocks grow (paper §5 "stack management
   overhead reduces with increasing block size"). *)
let level_overhead = 24

(* Per spawn-site bookkeeping: next-block pointer setup and the size
   check. *)
let site_overhead = 8

let process_level ctx blk ~depth ~phase =
  let n = Block.size blk in
  let vm = ctx.m.Measure.vm in
  let insns = ctx.spec.Spec.insns in
  (* Telemetry prologue: snapshot the counters so the level's events can
     carry deltas.  All of it is skipped when no sink is attached. *)
  let tel_on = Telemetry.enabled ctx.tel in
  let t0 = if tel_on then Telemetry.now ctx.tel else 0.0 in
  let vm0 = if tel_on then Some (Vc_simd.Vm.snapshot vm) else None in
  let hier0 =
    if tel_on then Some (Vc_mem.Hierarchy.level_stats ctx.m.Measure.hier) else None
  in
  count_tasks ctx n;
  Vc_simd.Vm.scalar_ops vm level_overhead;
  Metrics.tasks_at_level ctx.m.Measure.metrics ~depth ~n;
  Metrics.occupancy_sample ctx.m.Measure.metrics ~n ~width:ctx.width;
  Metrics.live_threads ctx.m.Measure.metrics ctx.live;
  charge_block_read ctx blk;
  Vc_simd.Vm.batch vm ~width:ctx.width ~n ~insns_per_task:insns.Spec.check_insns ();
  Metrics.kernel_ops ctx.m.Measure.metrics (n * insns.Spec.check_insns);
  (* data-dependent work the compiler cannot vectorize stays scalar *)
  Vc_simd.Vm.scalar_ops vm (n * insns.Spec.scalar_insns);
  (* The compaction trip fires after the level prologue ([count_tasks],
     level metrics) but before any base work, so on a fault the whole
     block is exactly "task-counted but not yet executed": quarantine it
     and run every frame's subtree scalar, with [count_roots:false]. *)
  let quarantine err =
    note_fault ctx err;
    scalar_subtrees ctx
      (List.init n (fun row -> frame_of ctx blk row))
      ~depth ~count_roots:false;
    ([||], [||])
  in
  (* the compact span closes (via Fun.protect) before any quarantine
     runs, so fallback work attributes under the phase frame, not under
     "compact" *)
  let partition () =
    with_span ctx frame_compact @@ fun () ->
    Fault.trip ctx.faults Fault.Compact ~phase:Vc_error.Execute
      ~hint:Vc_error.Fallback_scalar
      ~detail:(Printf.sprintf "partition of %d frames at depth %d" n depth);
    Vc_simd.Compact.partition ~vm ~engine:ctx.compact ~width:ctx.width ~n
      ~pred:(fun row -> ctx.spec.Spec.is_base blk row)
  in
  let base_rows, rec_rows =
    match partition () with
    | groups -> groups
    | exception Vc_simd.Compact.Unsupported { engine; isa; reason } ->
        (* an unsupported engine/ISA pairing is a compaction fault too:
           degrade to scalar under supervision, typed error otherwise *)
        let err =
          {
            Vc_error.kind =
              Vc_error.Fault
                { site = Vc_error.Compaction; hint = Vc_error.Fallback_scalar };
            phase = Vc_error.Execute;
            detail =
              Printf.sprintf "engine %s unsupported on %s: %s" engine isa reason;
          }
        in
        if ctx.recover then quarantine err else raise (Vc_error.Error err)
    | exception (Vc_error.Error err as exn) when recoverable ctx exn ->
        quarantine err
  in
  let nb = Array.length base_rows in
  Metrics.base_at_level ctx.m.Measure.metrics ~depth ~n:nb;
  (* base group: unmasked vector execution after compaction *)
  Vc_simd.Vm.batch vm ~classify:true ~width:ctx.width ~n:nb
    ~insns_per_task:insns.Spec.base_insns ();
  Metrics.kernel_ops ctx.m.Measure.metrics (nb * insns.Spec.base_insns);
  Array.iter (fun row -> ctx.spec.Spec.exec_base ctx.reducers blk row) base_rows;
  (* recursive group: shared inductive work *)
  let nr = Array.length rec_rows in
  Vc_simd.Vm.batch vm ~classify:true ~width:ctx.width ~n:nr
    ~insns_per_task:insns.Spec.inductive_insns ();
  Metrics.kernel_ops ctx.m.Measure.metrics (nr * insns.Spec.inductive_insns);
  if tel_on then begin
    let t1 = Telemetry.now ctx.tel in
    let dur = t1 -. t0 in
    Telemetry.emit ~ts:t0 ~dur ctx.tel
      (Telemetry.Level { phase; depth; size = n; base = nb });
    (match vm0 with
    | Some before ->
        let d = Vc_simd.Stats.diff (Vc_simd.Vm.snapshot vm) before in
        if d.Vc_simd.Stats.compaction_calls > 0 then
          Telemetry.emit ~ts:t0 ~dur ctx.tel
            (Telemetry.Compaction
               {
                 engine = Vc_simd.Compact.name ctx.compact;
                 width = ctx.width;
                 n;
                 passes = d.Vc_simd.Stats.compaction_passes;
               })
    | None -> ());
    match hier0 with
    | Some since ->
        List.iter
          (fun (label, accesses, misses) ->
            if accesses > 0 then
              Telemetry.emit ~ts:t1 ctx.tel
                (Telemetry.Cache { level = label; depth; accesses; misses }))
          (Vc_mem.Hierarchy.delta ~since
             (Vc_mem.Hierarchy.level_stats ctx.m.Measure.hier))
    | None -> ()
  end;
  rec_rows

(* Spawn site [site]'s children of [rec_rows] into [dst]; returns how many
   spawned.  Site-major order groups similar children (§4.2). *)
let spawn_site ctx blk rec_rows ~site ~dst =
  let vm = ctx.m.Measure.vm in
  let insns = ctx.spec.Spec.insns in
  let nr = Array.length rec_rows in
  Vc_simd.Vm.scalar_ops vm site_overhead;
  Vc_simd.Vm.batch vm ~width:ctx.width ~n:nr ~insns_per_task:insns.Spec.spawn_insns ();
  Metrics.kernel_ops ctx.m.Measure.metrics (nr * insns.Spec.spawn_insns);
  let before = Block.size dst in
  Array.iter
    (fun row -> ignore (ctx.spec.Spec.spawn blk row ~site ~dst : bool))
    rec_rows;
  let pushed = Block.size dst - before in
  charge_block_append ctx dst ~from:before ~count:pushed;
  pushed


let check_live ctx =
  if ctx.live > ctx.max_live then raise (Oom { live = ctx.live; limit = ctx.max_live })

(* Live-thread accounting rule: whoever fills a block adds its size to
   [ctx.live]; the function that receives the block as input subtracts it
   exactly once, as soon as its threads are done (after their children are
   spawned).  BFS space then peaks at the widest level; blocked DFS space
   is the O(T*D) sum of the blocks along the active path plus their
   sibling site blocks (§4.2). *)

(* One breadth-first level (the loop body of Fig. 3): process [blk],
   spawn its recursive rows site-major into the pooled next-level block.
   Returns [None] when the subtree finished here — no recursive rows, or
   an allocation fault quarantined them onto the scalar path.  The caller
   decides what the returned level continues as (breadth-first, blocked,
   or a frontier handed to another worker).  [reexp_from] carries the
   depth of the re-expansion trigger so the first expanded level can
   report its growth factor (Fig. 15). *)
let bfs_step ctx blk ~depth ~reexp_from =
  (* The whole level — compaction, base execution, spawning — runs
     under an "expand" span; whatever happens to the next level happens
     after it closes, so the span covers exactly one level's work. *)
  with_span ctx frame_expand @@ fun () ->
  let rec_rows = process_level ctx blk ~depth ~phase:Trace.Bfs in
  if Array.length rec_rows = 0 then begin
    ctx.live <- ctx.live - Block.size blk;
    None
  end
  else begin
    let e = ctx.spec.Spec.num_spawns in
    match
      let next =
        pool_block ctx ~depth:(depth + 1) ~slot:e
          ~room:(Array.length rec_rows * e)
      in
      (* Site-major enqueueing: all site-i children before any site-(i+1)
         children, preserving spawn-id grouping (§5). *)
      for site = 0 to e - 1 do
        with_span ctx ctx.site_frames.(site) (fun () ->
            ignore (spawn_site ctx blk rec_rows ~site ~dst:next : int))
      done;
      next
    with
    | exception (Vc_error.Error err as exn) when recoverable ctx exn ->
        (* the next-level block never materialized (the allocation trip
           fires before the pool mutates anything): the recursive frames
           are accounted but their subtrees are not — run them scalar *)
        note_fault ctx err;
        scalar_subtrees ctx
          (Array.to_list (Array.map (fun row -> frame_of ctx blk row) rec_rows))
          ~depth ~count_roots:false;
        ctx.live <- ctx.live - Block.size blk;
        None
    | next ->
        ctx.live <- ctx.live + Block.size next;
        Metrics.live_threads ctx.m.Measure.metrics ctx.live;
        check_live ctx;
        (match reexp_from with
        | Some trigger_depth ->
            let factor =
              float_of_int (Block.size next)
              /. float_of_int (max 1 (Block.size blk))
            in
            Metrics.reexpansion_growth ctx.m.Measure.metrics ~depth:trigger_depth
              ~factor
        | None -> ());
        ctx.live <- ctx.live - Block.size blk;
        Some next
  end

(* Breadth-first execution (Fig. 3 / Fig. 6 bfs_foo).  [blk] is consumed.
   When the next level reaches [max_block], switch to blocked
   depth-first. *)
let rec bfs ctx blk ~depth ~reexp_from =
  budget_check ctx;
  if Block.size blk = 0 then ()
  else
    match bfs_step ctx blk ~depth ~reexp_from with
    | None -> ()
    | Some next ->
        if Block.size next >= ctx.max_block then begin
          Telemetry.emit ctx.tel
            (Telemetry.Switch { depth = depth + 1; size = Block.size next });
          blocked ctx next ~depth:(depth + 1)
        end
        else bfs ctx next ~depth:(depth + 1) ~reexp_from:None

(* Blocked depth-first execution (Fig. 4(b) / Fig. 6 blocked_foo).  One
   child block per spawn site; each is executed to completion before the
   next, re-expanding when it has shrunk below the threshold. *)
and blocked ctx blk ~depth =
  budget_check ctx;
  if Block.size blk = 0 then ()
  else if Block.size blk <= ctx.cutoff then sequential_subtree ctx blk ~depth
  else
    (* Like bfs: the level's own work runs under a "blocked" span that
       closes before any child block is descended into. *)
    let children =
      with_span ctx frame_blocked @@ fun () ->
      let rec_rows = process_level ctx blk ~depth ~phase:Trace.Blocked in
      if Array.length rec_rows = 0 then begin
        ctx.live <- ctx.live - Block.size blk;
        [||]
      end
      else begin
        let e = ctx.spec.Spec.num_spawns in
        let spawned = ref [] in
        match
          for site = 0 to e - 1 do
            with_span ctx ctx.site_frames.(site) (fun () ->
                let dst =
                  pool_block ctx ~depth:(depth + 1) ~slot:site
                    ~room:(Array.length rec_rows)
                in
                ignore (spawn_site ctx blk rec_rows ~site ~dst : int);
                ctx.live <- ctx.live + Block.size dst;
                spawned := dst :: !spawned)
          done
        with
        | exception (Vc_error.Error err as exn) when recoverable ctx exn ->
            (* roll back the sites spawned before the fault (their frames
               were never executed) and quarantine the whole recursive
               group: each rec frame's subtree re-runs scalar exactly once *)
            note_fault ctx err;
            List.iter
              (fun dst ->
                ctx.live <- ctx.live - Block.size dst;
                Block.clear dst)
              !spawned;
            scalar_subtrees ctx
              (Array.to_list (Array.map (fun row -> frame_of ctx blk row) rec_rows))
              ~depth ~count_roots:false;
            ctx.live <- ctx.live - Block.size blk;
            [||]
        | () ->
            let children = Array.of_list (List.rev !spawned) in
            Metrics.live_threads ctx.m.Measure.metrics ctx.live;
            check_live ctx;
            ctx.live <- ctx.live - Block.size blk;
            children
      end
    in
    Array.iter
      (fun child ->
          if Block.size child > 0 then
            if Block.size child <= ctx.cutoff then
              (* conventional task cut-off: sequentialize small subtrees
                 instead of re-expanding them *)
              sequential_subtree ctx child ~depth:(depth + 1)
            else if ctx.reexpand && Block.size child < ctx.reexp_threshold then begin
              (* strictly below the threshold: Fig. 6 writes [size >
                 threshold] for the blocked branch, but with both
                 thresholds T_max/e and power-of-two block sizes a block
                 can sit exactly on the boundary and bounce between the
                 strategies forever doing no useful re-expansion (the
                 paper's knapsack observation requires equality to stay
                 blocked) *)
              Metrics.reexpansion ctx.m.Measure.metrics ~depth:(depth + 1)
                ~before:(Block.size child);
              Telemetry.emit ctx.tel
                (Telemetry.Reexpand
                   {
                     depth = depth + 1;
                     size = Block.size child;
                     shrink =
                       float_of_int (Block.size child)
                       /. float_of_int (max 1 ctx.reexp_threshold);
                   });
              bfs ctx child ~depth:(depth + 1) ~reexp_from:(Some (depth + 1))
            end
            else blocked ctx child ~depth:(depth + 1))
      children

(* Execute [roots] as sibling frames at tree depth [depth], to completion,
   under the context's configured strategy: pool a root block, then
   dispatch to breadth-first or blocked execution.  This is {!run}'s body
   (minus the root attribution span) and the per-chunk entry point of the
   hybrid domain scheduler, which hands each worker a frontier slice at
   the frontier depth. *)
let execute_frames ctx ~roots ~depth =
  match
    pool_block ctx ~depth ~slot:ctx.spec.Spec.num_spawns
      ~room:(List.length roots)
  with
  | exception (Vc_error.Error err as exn) when recoverable ctx exn ->
      (* root block allocation faulted before anything was accounted:
         the entire subtree degrades to the scalar path *)
      note_fault ctx err;
      scalar_subtrees ctx roots ~depth ~count_roots:true
  | root ->
      List.iter (fun frame -> Block.push root frame) roots;
      charge_block_append ctx root ~from:0 ~count:(Block.size root);
      ctx.live <- ctx.live + Block.size root;
      if Block.size root >= ctx.max_block then begin
        Telemetry.emit ctx.tel
          (Telemetry.Switch { depth; size = Block.size root });
        blocked ctx root ~depth
      end
      else bfs ctx root ~depth ~reexp_from:None

(* Breadth-first frontier expansion for the domain scheduler: expand
   [roots] level by level (measured, exactly like bfs) until one level
   holds at least [target] frames, and hand that level back as frames
   plus its depth.  Base cases met on the way are executed here, so the
   expansion context's reducers hold their contributions.  Returns
   [([], depth)] when the tree completed (or degraded to the scalar
   path) before reaching [target]. *)
let expand_frontier ctx ~roots ~target =
  let target = max 1 target in
  match
    pool_block ctx ~depth:0 ~slot:ctx.spec.Spec.num_spawns
      ~room:(List.length roots)
  with
  | exception (Vc_error.Error err as exn) when recoverable ctx exn ->
      note_fault ctx err;
      scalar_subtrees ctx roots ~depth:0 ~count_roots:true;
      ([], 0)
  | root ->
      List.iter (fun frame -> Block.push root frame) roots;
      charge_block_append ctx root ~from:0 ~count:(Block.size root);
      ctx.live <- ctx.live + Block.size root;
      let rec go blk ~depth =
        budget_check ctx;
        if Block.size blk = 0 then ([], depth)
        else if Block.size blk >= target then begin
          let frames =
            List.init (Block.size blk) (fun row -> frame_of ctx blk row)
          in
          (* the frontier leaves this context: its frames become other
             workers' roots, which account them from here on *)
          ctx.live <- ctx.live - Block.size blk;
          (frames, depth)
        end
        else
          match bfs_step ctx blk ~depth ~reexp_from:None with
          | None -> ([], depth)
          | Some next -> go next ~depth:(depth + 1)
      in
      go root ~depth:0

let make_ctx ?compact ?(max_tasks = 200_000_000) ?(cutoff = 0) ?telemetry
    ?(faults = Fault.none) ?(recover = true) ?deadline ?wall_deadline
    ?max_live_frames ~(spec : Spec.t) ~(machine : Vc_mem.Machine.t)
    ~(strategy : Policy.strategy) () =
  let m = Measure.create machine in
  let tel = match telemetry with Some t -> t | None -> Telemetry.create () in
  (* Event timestamps are deterministic modeled time, not wall clock. *)
  Telemetry.set_clock tel (fun () ->
      Vc_simd.Vm.issue_cycles m.Measure.vm
      +. Vc_mem.Hierarchy.penalty_cycles m.Measure.hier);
  let width =
    Vc_simd.Isa.lanes machine.Vc_mem.Machine.isa (Schema.lane_kind spec.Spec.schema)
  in
  let compact =
    match compact with
    | Some c -> c
    | None -> Vc_simd.Compact.default_for machine.Vc_mem.Machine.isa ~width
  in
  let max_block =
    match strategy with
    | Policy.Bfs_only -> max_int
    | Policy.Hybrid { max_block; _ } -> max_block
  in
  let reexpand =
    match strategy with
    | Policy.Bfs_only -> false
    | Policy.Hybrid { reexpand; _ } -> reexpand
  in
  let wall_start = Unix.gettimeofday () in
  {
    m;
    spec;
    reducers = Spec.make_reducers spec;
    width;
    elem = Schema.elem_bytes spec.Spec.schema ~isa:machine.Vc_mem.Machine.isa;
    nfields = Schema.num_fields spec.Spec.schema;
    compact;
    max_block;
    reexp_threshold = max_block;
    reexpand;
    max_live = machine.Vc_mem.Machine.max_live_threads;
    max_tasks;
    cutoff;
    tel;
    site_frames =
      Array.init spec.Spec.num_spawns (fun i -> "spawn:site" ^ string_of_int i);
    faults;
    recover;
    deadline;
    wall_deadline;
    frame_budget = max_live_frames;
    wall_start;
    live = 0;
    executed = 0;
    pool = Hashtbl.create 64;
  }

let report_of ctx ~strategy ~wall_seconds =
  Telemetry.flush ctx.tel;
  Measure.report ctx.m ~benchmark:ctx.spec.Spec.name ~strategy
    ~reducers:(Vc_lang.Reducer.values ctx.reducers) ~wall_seconds

let run ?compact ?max_tasks ?cutoff ?(warm = false) ?trace ?telemetry
    ?faults ?recover ?deadline ?wall_deadline ?max_live_frames
    ~(spec : Spec.t) ~(machine : Vc_mem.Machine.t)
    ~(strategy : Policy.strategy) () =
  let tel = match telemetry with Some t -> t | None -> Telemetry.create () in
  (match trace with
  | Some tr -> Telemetry.attach tel (Telemetry.trace_sink tr)
  | None -> ());
  let ctx =
    make_ctx ?compact ?max_tasks ?cutoff ~telemetry:tel ?faults ?recover
      ?deadline ?wall_deadline ?max_live_frames ~spec ~machine ~strategy ()
  in
  let strategy_name = Policy.name strategy ^ if warm then "+warm" else "" in
  Log.debug (fun m ->
      m "run %s on %s: %s, width %d, compaction %s" spec.Spec.name
        machine.Vc_mem.Machine.name (Policy.describe strategy) ctx.width
        (Vc_simd.Compact.name ctx.compact));
  (* Root attribution span: opened per pass, closed when the pass
     completes (its close timestamp is the very clock reading
     [Measure.report] turns into [Report.cycles], so profiler totals
     reconcile bit-for-bit).  The warm pass's unclosed root span is
     discarded with everything else by [Telemetry.clear]. *)
  let root_frame = spec.Spec.name in
  let execute () =
    Telemetry.emit ctx.tel (Telemetry.Span_open { frame = root_frame });
    execute_frames ctx ~roots:spec.Spec.roots ~depth:0
  in
  match
    if warm then begin
      (* warm-up pass: same blocks (the pool reuses addresses), costs and
         reductions discarded *)
      execute ();
      Vc_simd.Stats.reset (Vc_simd.Vm.stats ctx.m.Measure.vm);
      Vc_mem.Hierarchy.reset_counters ctx.m.Measure.hier;
      Vc_lang.Reducer.reset_set ctx.reducers;
      Metrics.reset ctx.m.Measure.metrics;
      Telemetry.clear ctx.tel;
      ctx.live <- 0;
      ctx.executed <- 0
    end;
    execute ()
  with
  | () ->
      let wall = Unix.gettimeofday () -. ctx.wall_start in
      Telemetry.emit ctx.tel (Telemetry.Span_close { frame = root_frame });
      Telemetry.flush ctx.tel;
      Measure.report ctx.m ~benchmark:spec.Spec.name ~strategy:strategy_name
        ~reducers:(Vc_lang.Reducer.values ctx.reducers) ~wall_seconds:wall
  | exception Oom { live; limit } ->
      Log.info (fun m ->
          m "%s/%s/%s ran out of memory (%d live threads > %d limit)"
            spec.Spec.name machine.Vc_mem.Machine.name strategy_name live limit);
      Telemetry.emit ctx.tel (Telemetry.Span_close { frame = root_frame });
      Telemetry.flush ctx.tel;
      Report.oom_placeholder ~benchmark:spec.Spec.name
        ~machine:machine.Vc_mem.Machine.name ~strategy:strategy_name
