(** Cycle-attribution profiler over telemetry spans.

    Attaches to a {!Telemetry} hub as a {!Telemetry.callback_sink} and
    turns span-open/close events into an attribution tree: modeled-cycle
    clock deltas between span boundaries are charged to the innermost
    open frame path (benchmark → execution phase → spawn site), and
    compaction / conversion / fault events increment counters on the
    frame they occurred under.

    Because every clock reading is a sum of half-integer ISA costs and
    miss penalties, the charged segments are exact doubles and telescope:
    for a completed engine run {!total_cycles} equals [Report.cycles]
    {e exactly} (bit-for-bit), which the test suite asserts.  Time
    observed while no span is open is charged to an ["(untracked)"]
    frame.

    The profiler resets itself when the hub is cleared, so the engine's
    warm pass does not contaminate measured attributions. *)

type t

val create : unit -> t

val sink : t -> Telemetry.sink
(** A callback sink feeding this profiler; hub [clear] resets it. *)

val attach : t -> Telemetry.t -> unit
(** [attach t tel] = [Telemetry.attach tel (sink t)]. *)

val reset : t -> unit

val observe : t -> Telemetry.stamped -> unit
(** Feed one event by hand (normally done via {!sink}). *)

(** {1 Views} *)

type frame = {
  stack : string list;  (** frame path, outermost first *)
  cycles : float;  (** modeled cycles charged directly to this path *)
  opens : int;  (** times this exact path was entered *)
  compaction_calls : int;
  compaction_passes : int;
  converts : int;
  faults : int;
}

val frames : t -> frame list
(** All attribution frames, hottest first (ties broken by path). *)

val total_cycles : t -> float
(** Sum of all charged cycles; exactly the clock span between the first
    and last span boundary observed. *)

val events_seen : t -> int
val unbalanced : t -> int
(** Span opens/closes that did not pair up (0 for engine runs). *)

val folded : t -> string
(** Folded-stack lines ["bench;phase;frame cycles\n"], sorted by path —
    the input format of flamegraph.pl / speedscope / inferno.  Cycle
    counts are printed losslessly so summing the column reconciles with
    {!total_cycles}. *)

val pp_hotspots : ?top:int -> Format.formatter -> t -> unit
(** Top-N hotspot table (default 10) with a reconciling total line. *)

val json_string : t -> string
(** Compact JSON: [{"total_cycles":..,"events":..,"frames":[...]}]. *)
