(* Execution backends over the blocked IR (ROADMAP item 1).

   A backend turns a program source — the blocked IR of a DSL program, or
   a native [Spec.t] — into whole-tree results using the Fig. 6 schedule
   (bfs levels, switch to per-site blocked execution at [max_block],
   re-expansion of shrunken blocks), with no cost model: these run at raw
   OCaml speed and report wall-clock throughput.

   The scheduler is written once, generic over a [stepper] — the object
   that knows how to execute one whole level and how to re-execute one
   frame's subtree on a scalar path.  Two steppers exist:

   - the SoA compiled stepper ({!Codegen.Soa}): per-spawn-site specialized
     kernels over unboxed structure-of-arrays frames — the "compiled"
     backend for IR sources;
   - the native stepper: [Spec.t] callbacks over ThreadBlocks — both
     backends use it for native sources (a native spec is already
     compiled OCaml; there is nothing further to specialize).

   The "blocked" backend interprets IR sources via {!Blocked_interp}
   (per-thread closure dispatch over list levels), so compiled-vs-blocked
   is a pure dispatch/layout comparison with bit-equal results: the
   scheduler mirrors the interpreter's switch/re-expansion conditions
   exactly, and the differential suite holds all six result fields equal.

   Structured after Bombyx's backend split (PAPERS.md): the IR stays
   fixed, a future C-stub/FPGA-style cost backend is a third [t] value,
   not a rewrite. *)

type result = {
  reducers : (string * int) list;
  tasks : int;
  base_tasks : int;
  max_depth : int;
  switches : int;
  reexpansions : int;
  wall_seconds : float;
}

type source = Ir of Blocked_ast.t | Native of Spec.t

type opts = {
  strategy : Policy.strategy;
  max_tasks : int;
  telemetry : Telemetry.t option;
  faults : Fault.plan;
  recover : bool;
  wall_deadline : float option;
  max_live_frames : int option;
  domains : int option;
  chunks : int;
}

let default_opts =
  {
    strategy = Policy.Hybrid { max_block = 256; reexpand = true };
    max_tasks = 20_000_000;
    telemetry = None;
    faults = Fault.none;
    recover = true;
    wall_deadline = None;
    max_live_frames = None;
    domains = None;
    chunks = 32;
  }

type t = {
  name : string;
  description : string;
  exec : opts -> source -> int array list -> result;
}

(* ------------------------------------------------------------------ *)
(* The level-stepper interface the generic scheduler drives. *)

type 'lvl stepper = {
  size : 'lvl -> int;
  new_level : int -> 'lvl;
  clear : 'lvl -> unit;
  of_frames : int array list -> 'lvl;
  frames : 'lvl -> int array list;
  step : src:'lvl -> blocked:bool -> next:'lvl -> sites:'lvl array -> int;
  scalar :
    on_task:(depth:int -> base:bool -> unit) -> depth:int -> int array -> unit;
  num_spawns : int;
}

let soa_stepper (inst : Codegen.Soa.inst) : Codegen.Soa.buf stepper =
  {
    size = Codegen.Soa.size;
    new_level = inst.Codegen.Soa.new_buf;
    clear = Codegen.Soa.clear;
    of_frames = Codegen.Soa.of_frames ~nfields:inst.Codegen.Soa.nparams;
    frames = Codegen.Soa.frames;
    step = inst.Codegen.Soa.step;
    scalar = inst.Codegen.Soa.scalar;
    num_spawns = inst.Codegen.Soa.num_spawns;
  }

(* Native levels are ThreadBlocks so the spec callbacks run unchanged.
   The blocks live outside the cost model: addresses come from a private
   allocator and the ISA only sizes the modeled layout. *)
type nlevel = { mutable blk : Block.t }

let native_stepper (spec : Spec.t) ~(reducers : Vc_lang.Reducer.set) :
    nlevel stepper =
  let addr = Addr.create () in
  let isa = Vc_simd.Isa.sse42 in
  let schema = spec.Spec.schema in
  let nfields = Schema.num_fields schema in
  let e = spec.Spec.num_spawns in
  let create cap =
    { blk = Block.create ~label:"backend" addr ~schema ~isa ~capacity:(max 1 cap) }
  in
  let frame_of blk row = Array.init nfields (fun f -> Block.get blk ~field:f ~row) in
  let step ~src ~blocked ~next ~sites =
    let blk = src.blk in
    let n = Block.size blk in
    let nbase = ref 0 in
    if blocked then begin
      Array.iter (fun l -> l.blk <- Block.ensure_room l.blk addr ~extra:n) sites;
      for r = 0 to n - 1 do
        if spec.Spec.is_base blk r then begin
          incr nbase;
          spec.Spec.exec_base reducers blk r
        end
        else
          for site = 0 to e - 1 do
            ignore (spec.Spec.spawn blk r ~site ~dst:sites.(site).blk : bool)
          done
      done
    end
    else begin
      next.blk <- Block.ensure_room next.blk addr ~extra:(n * e);
      for r = 0 to n - 1 do
        if spec.Spec.is_base blk r then begin
          incr nbase;
          spec.Spec.exec_base reducers blk r
        end
        else
          for site = 0 to e - 1 do
            ignore (spec.Spec.spawn blk r ~site ~dst:next.blk : bool)
          done
      done
    end;
    !nbase
  in
  (* Scalar subtree execution over one-frame scratch blocks (the fault
     quarantine fallback), stack-driven; children are copied out before
     the scratch is reused. *)
  let parent = create 1 in
  let childbuf = create (max 1 e) in
  let scalar ~on_task ~depth frame =
    let stack = ref [ (frame, depth) ] in
    let running = ref true in
    while !running do
      match !stack with
      | [] -> running := false
      | (fr, d) :: rest ->
          stack := rest;
          Block.clear parent.blk;
          Block.push parent.blk fr;
          if spec.Spec.is_base parent.blk 0 then begin
            on_task ~depth:d ~base:true;
            spec.Spec.exec_base reducers parent.blk 0
          end
          else begin
            on_task ~depth:d ~base:false;
            Block.clear childbuf.blk;
            for site = 0 to e - 1 do
              ignore (spec.Spec.spawn parent.blk 0 ~site ~dst:childbuf.blk : bool)
            done;
            for r = Block.size childbuf.blk - 1 downto 0 do
              stack := (frame_of childbuf.blk r, d + 1) :: !stack
            done
          end
    done
  in
  {
    size = (fun l -> Block.size l.blk);
    new_level = create;
    clear = (fun l -> Block.clear l.blk);
    of_frames =
      (fun fs ->
        let l = create (List.length fs) in
        l.blk <- Block.ensure_room l.blk addr ~extra:(List.length fs);
        List.iter (Block.push l.blk) fs;
        l);
    frames =
      (fun l -> List.init (Block.size l.blk) (fun r -> frame_of l.blk r));
    step;
    scalar;
    num_spawns = max 1 e;
  }

(* ------------------------------------------------------------------ *)
(* The generic scheduler: Blocked_interp's exact switch / re-expansion /
   budget semantics, over whole-level steps. *)

type cstate = {
  mutable tasks : int;
  mutable base_tasks : int;
  mutable max_depth : int;
  mutable switches : int;
  mutable reexpansions : int;
  mutable live : int;
  (* fault/fallback notes, collected so domain-chunk runs (whose hubs are
     private) can re-emit them on the caller's hub after the join *)
  mutable fault_notes : (string * string) list;
  mutable fallback_notes : (int * int) list;
}

let new_cstate () =
  {
    tasks = 0;
    base_tasks = 0;
    max_depth = 0;
    switches = 0;
    reexpansions = 0;
    live = 0;
    fault_notes = [];
    fallback_notes = [];
  }

let run_tree (type l) (st : l stepper) ~tel ~faults ~recover ~strategy
    ~max_tasks ~wall_start ~wall_deadline ~max_live_frames ~label
    (s : cstate) roots depth0 =
  let max_block, reexpand =
    match (strategy : Policy.strategy) with
    | Policy.Bfs_only -> (max_int, false)
    | Policy.Hybrid { max_block; reexpand } -> (max_block, reexpand)
  in
  let e = st.num_spawns in
  let budget_check () =
    (match max_live_frames with
    | Some limit when s.live > limit ->
        let limit_f = float_of_int limit and actual = float_of_int s.live in
        Telemetry.emit tel
          (Telemetry.Deadline { resource = "live-frames"; limit = limit_f; actual });
        Vc_error.budget ~phase:Vc_error.Execute Vc_error.Live_frames ~limit:limit_f
          ~actual ()
    | _ -> ());
    match wall_deadline with
    | Some limit ->
        let actual = Unix.gettimeofday () -. wall_start in
        if actual > limit then begin
          Telemetry.emit tel
            (Telemetry.Deadline { resource = "deadline-wall"; limit; actual });
          Vc_error.budget ~phase:Vc_error.Execute Vc_error.Deadline_wall ~limit
            ~actual ()
        end
    | None -> ()
  in
  let check_tasks n =
    if s.tasks + n > max_tasks then
      Vc_error.budget ~phase:Vc_error.Execute Vc_error.Task_budget
        ~detail:"backend task limit"
        ~limit:(float_of_int max_tasks)
        ~actual:(float_of_int (s.tasks + n))
        ()
  in
  let with_span frame f =
    if Telemetry.enabled tel then begin
      Telemetry.emit tel (Telemetry.Span_open { frame });
      Fun.protect
        ~finally:(fun () -> Telemetry.emit tel (Telemetry.Span_close { frame }))
        f
    end
    else f ()
  in
  (* Per-(depth, slot) level-buffer pool, as in the engine: buffers are
     reused once the subtree that filled them has been fully consumed.
     Slot [e] is the bfs "next" buffer, slots 0..e-1 the per-site blocked
     buffers. *)
  let pool : (int * int, l) Hashtbl.t = Hashtbl.create 64 in
  let pool_level ~depth ~slot ~cap =
    match Hashtbl.find_opt pool (depth, slot) with
    | Some l ->
        st.clear l;
        l
    | None ->
        let l = st.new_level cap in
        Hashtbl.add pool (depth, slot) l;
        l
  in
  let dummy = st.new_level 1 in
  let no_sites = [||] in
  (* Faults trip per level, before any of its rows execute, so a
     recoverable fault quarantines a still-intact level: every frame is
     re-executed on the scalar path with exact reducer values and task
     counts (switch/re-expansion counters legitimately differ, as under
     the engine's quarantine). *)
  let trip_guard ~depth ~size =
    match
      Fault.trip faults Fault.Alloc ~phase:Vc_error.Execute
        ~hint:Vc_error.Fallback_scalar
        ~detail:
          (Printf.sprintf "%s: level buffer at depth %d (%d frames)" label depth
             size)
    with
    | () -> None
    | exception Vc_error.Error err
      when recover
           && (match err.Vc_error.kind with
              | Vc_error.Fault { hint = Vc_error.Fallback_scalar; _ } -> true
              | _ -> false) ->
        Some err
  in
  let quarantine src n depth (err : Vc_error.t) =
    let site =
      match Vc_error.site_of err with
      | Some site -> Vc_error.site_name site
      | None -> "scheduler"
    in
    Telemetry.emit tel (Telemetry.Fault { site; detail = err.Vc_error.detail });
    Telemetry.emit tel (Telemetry.Fallback { depth; size = n });
    s.fault_notes <- (site, err.Vc_error.detail) :: s.fault_notes;
    s.fallback_notes <- (depth, n) :: s.fallback_notes;
    s.live <- s.live - n;
    with_span "fallback" @@ fun () ->
    List.iter
      (st.scalar ~depth ~on_task:(fun ~depth:d ~base ->
           s.tasks <- s.tasks + 1;
           if s.tasks > max_tasks then
             Vc_error.budget ~phase:Vc_error.Execute Vc_error.Task_budget
               ~detail:"backend task limit (scalar fallback)"
               ~limit:(float_of_int max_tasks)
               ~actual:(float_of_int s.tasks)
               ();
           if d > s.max_depth then s.max_depth <- d;
           if base then s.base_tasks <- s.base_tasks + 1))
      (st.frames src)
  in
  let rec bfs src n depth =
    budget_check ();
    if depth > s.max_depth then s.max_depth <- depth;
    match trip_guard ~depth ~size:n with
    | Some err -> quarantine src n depth err
    | None ->
        check_tasks n;
        s.tasks <- s.tasks + n;
        let next = pool_level ~depth:(depth + 1) ~slot:e ~cap:n in
        let nbase =
          with_span "expand" @@ fun () ->
          st.step ~src ~blocked:false ~next ~sites:no_sites
        in
        s.base_tasks <- s.base_tasks + nbase;
        Telemetry.emit tel
          (Telemetry.Level { phase = Trace.Bfs; depth; size = n; base = nbase });
        let ln = st.size next in
        s.live <- s.live + ln - n;
        if ln > 0 then
          if ln < max_block then bfs next ln (depth + 1)
          else begin
            s.switches <- s.switches + 1;
            Telemetry.emit tel (Telemetry.Switch { depth = depth + 1; size = ln });
            blocked next ln (depth + 1)
          end
  and blocked src n depth =
    budget_check ();
    if depth > s.max_depth then s.max_depth <- depth;
    match trip_guard ~depth ~size:n with
    | Some err -> quarantine src n depth err
    | None ->
        check_tasks n;
        s.tasks <- s.tasks + n;
        let sites =
          Array.init e (fun i -> pool_level ~depth:(depth + 1) ~slot:i ~cap:n)
        in
        let nbase =
          with_span "blocked" @@ fun () ->
          st.step ~src ~blocked:true ~next:dummy ~sites
        in
        s.base_tasks <- s.base_tasks + nbase;
        Telemetry.emit tel
          (Telemetry.Level { phase = Trace.Blocked; depth; size = n; base = nbase });
        let total = Array.fold_left (fun acc l -> acc + st.size l) 0 sites in
        s.live <- s.live + total - n;
        Array.iter
          (fun blk ->
            let bn = st.size blk in
            if bn > 0 then
              if bn >= max_block || not reexpand then blocked blk bn (depth + 1)
              else begin
                s.reexpansions <- s.reexpansions + 1;
                Telemetry.emit tel
                  (Telemetry.Reexpand
                     {
                       depth = depth + 1;
                       size = bn;
                       shrink = float_of_int bn /. float_of_int (max 1 max_block);
                     });
                bfs blk bn (depth + 1)
              end)
          sites
  in
  let root = st.of_frames roots in
  let n = st.size root in
  s.live <- s.live + n;
  if n > 0 then bfs root n depth0

(* ------------------------------------------------------------------ *)
(* Frontier expansion for the domains mode: serial bfs steps until the
   frontier reaches [target] frames (or the tree dies out), mirroring
   Domain_sched's fixed-chunk determinism — the frontier depends only on
   [target], never on the domain count. *)

let expand_frontier (type l) (st : l stepper) ~tel ~strategy:_ ~max_tasks
    (s : cstate) roots ~target =
  let e = st.num_spawns in
  let src = ref (st.of_frames roots) in
  let depth = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let n = st.size !src in
    if n = 0 || n >= target then continue_ := false
    else begin
      if s.tasks + n > max_tasks then
        Vc_error.budget ~phase:Vc_error.Expand Vc_error.Task_budget
          ~detail:"backend task limit (frontier expansion)"
          ~limit:(float_of_int max_tasks)
          ~actual:(float_of_int (s.tasks + n))
          ();
      s.tasks <- s.tasks + n;
      if !depth > s.max_depth then s.max_depth <- !depth;
      let next = st.new_level (n * e) in
      let nbase = st.step ~src:!src ~blocked:false ~next ~sites:[||] in
      s.base_tasks <- s.base_tasks + nbase;
      Telemetry.emit tel
        (Telemetry.Level { phase = Trace.Bfs; depth = !depth; size = n; base = nbase });
      src := next;
      incr depth
    end
  done;
  if st.size !src > 0 && !depth > s.max_depth then s.max_depth <- !depth;
  (st.frames !src, !depth)

(* ------------------------------------------------------------------ *)
(* Execution drivers *)

let reducer_decls = function
  | Ir t ->
      List.map
        (fun r -> (r.Vc_lang.Ast.red_name, r.Vc_lang.Ast.red_op))
        t.Blocked_ast.source.Vc_lang.Ast.reducers
  | Native spec -> spec.Spec.reducers

let label_of = function
  | Ir t -> t.Blocked_ast.source.Vc_lang.Ast.mth.Vc_lang.Ast.name
  | Native spec -> spec.Spec.name

(* Build the stepper for a source against a concrete reducer set.
   [compiled] selects the SoA kernels for IR; native specs always use the
   native stepper (their callbacks are already compiled OCaml). *)
type any_stepper = Any : 'l stepper -> any_stepper

let stepper_of ~compiled source ~reducers =
  match source with
  | Ir t ->
      if compiled then Any (soa_stepper (Codegen.Soa.instantiate t ~reducers))
      else
        invalid_arg "Backend.stepper_of: interp IR runs go through Blocked_interp"
  | Native spec -> Any (native_stepper spec ~reducers)

let finish ~reducers (s : cstate) ~wall_start =
  {
    reducers = Vc_lang.Reducer.values reducers;
    tasks = s.tasks;
    base_tasks = s.base_tasks;
    max_depth = s.max_depth;
    switches = s.switches;
    reexpansions = s.reexpansions;
    wall_seconds = Unix.gettimeofday () -. wall_start;
  }

(* Single-context run (domains = None). *)
let exec_single ~compiled opts source roots =
  let tel =
    match opts.telemetry with Some t -> t | None -> Telemetry.create ()
  in
  let wall_start = Unix.gettimeofday () in
  let label = label_of source in
  let reducers = Vc_lang.Reducer.make_set (reducer_decls source) in
  let (Any st) = stepper_of ~compiled source ~reducers in
  let s = new_cstate () in
  Telemetry.emit tel (Telemetry.Span_open { frame = label });
  Fun.protect
    ~finally:(fun () -> Telemetry.emit tel (Telemetry.Span_close { frame = label }))
    (fun () ->
      run_tree st ~tel ~faults:opts.faults ~recover:opts.recover
        ~strategy:opts.strategy ~max_tasks:opts.max_tasks ~wall_start
        ~wall_deadline:opts.wall_deadline ~max_live_frames:opts.max_live_frames
        ~label s roots 0);
  finish ~reducers s ~wall_start

(* Chunked run across real domains (domains = Some n): serial frontier
   expansion to a fixed [opts.chunks]-chunk deal (independent of the
   domain count), each chunk on its own stepper instance, reducer set and
   fault slice, merged in chunk-index order — results are bit-equal
   across domain counts. *)
type chunk_out = {
  co_state : cstate;
  co_reducers : (string * int) list;
  co_error : Vc_error.t option;
}

let exec_domains ~compiled opts source roots ~domains =
  let tel =
    match opts.telemetry with Some t -> t | None -> Telemetry.create ()
  in
  let wall_start = Unix.gettimeofday () in
  let label = label_of source in
  let decls = reducer_decls source in
  let reducers = Vc_lang.Reducer.make_set decls in
  let (Any st0) = stepper_of ~compiled source ~reducers in
  let s0 = new_cstate () in
  s0.live <- List.length roots;
  Telemetry.emit tel (Telemetry.Span_open { frame = label });
  let frontier, fdepth =
    Fun.protect
      ~finally:(fun () ->
        Telemetry.emit tel (Telemetry.Span_close { frame = label }))
      (fun () ->
        expand_frontier st0 ~tel ~strategy:opts.strategy
          ~max_tasks:opts.max_tasks s0 roots ~target:opts.chunks)
  in
  let nchunks = opts.chunks in
  let chunks = Array.make nchunks [] in
  List.iteri
    (fun i fr -> chunks.(i mod nchunks) <- fr :: chunks.(i mod nchunks))
    frontier;
  let chunks = Array.map List.rev chunks in
  let nd = max 1 domains in
  let outs : chunk_out option array = Array.make nchunks None in
  let run_chunk ci =
    let frames = chunks.(ci) in
    if frames = [] then None
    else begin
      let cred = Vc_lang.Reducer.make_set decls in
      let (Any st) = stepper_of ~compiled source ~reducers:cred in
      let cs = new_cstate () in
      (* private hub: chunk workers must not race on the caller's hub;
         fault/fallback notes are re-emitted after the join *)
      let ctel = Telemetry.create () in
      let cfaults = Fault.split opts.faults ~salt:ci in
      let error =
        try
          run_tree st ~tel:ctel ~faults:cfaults ~recover:opts.recover
            ~strategy:opts.strategy ~max_tasks:opts.max_tasks ~wall_start
            ~wall_deadline:opts.wall_deadline
            ~max_live_frames:opts.max_live_frames ~label cs frames fdepth;
          None
        with
        | Vc_error.Error e -> Some e
        | exn -> Some (Vc_error.of_exn ~phase:Vc_error.Execute exn)
      in
      Some
        { co_state = cs; co_reducers = Vc_lang.Reducer.values cred; co_error = error }
    end
  in
  let worker d () =
    let ci = ref d in
    while !ci < nchunks do
      outs.(!ci) <- run_chunk !ci;
      ci := !ci + nd
    done
  in
  if nd = 1 then worker 0 ()
  else begin
    let handles =
      Array.init (nd - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    worker 0 ();
    Array.iter Domain.join handles
  end;
  (* Deterministic merge in chunk-index order; the first chunk error (by
     index) wins, as in Domain_sched. *)
  let first_error = ref None in
  Array.iteri
    (fun _ out ->
      match out with
      | None -> ()
      | Some o -> (
          (match o.co_error with
          | Some e when !first_error = None -> first_error := Some e
          | _ -> ());
          s0.tasks <- s0.tasks + o.co_state.tasks;
          s0.base_tasks <- s0.base_tasks + o.co_state.base_tasks;
          if o.co_state.max_depth > s0.max_depth then
            s0.max_depth <- o.co_state.max_depth;
          s0.switches <- s0.switches + o.co_state.switches;
          s0.reexpansions <- s0.reexpansions + o.co_state.reexpansions;
          List.iter
            (fun (site, detail) ->
              Telemetry.emit tel (Telemetry.Fault { site; detail }))
            (List.rev o.co_state.fault_notes);
          List.iter
            (fun (depth, size) ->
              Telemetry.emit tel (Telemetry.Fallback { depth; size }))
            (List.rev o.co_state.fallback_notes);
          List.iter
            (fun (name, v) -> Vc_lang.Reducer.reduce reducers name v)
            o.co_reducers))
    outs;
  (match !first_error with Some e -> raise (Vc_error.Error e) | None -> ());
  finish ~reducers s0 ~wall_start

let exec_backend ~compiled opts source roots =
  match (source, compiled, opts.domains) with
  | Ir t, false, None ->
      (* the reference interpreter *)
      let r =
        Blocked_interp.run ~strategy:opts.strategy ~max_tasks:opts.max_tasks
          ?telemetry:opts.telemetry ?wall_deadline:opts.wall_deadline
          ?max_live_frames:opts.max_live_frames ~roots t []
      in
      {
        reducers = r.Blocked_interp.reducers;
        tasks = r.Blocked_interp.tasks;
        base_tasks = r.Blocked_interp.base_tasks;
        max_depth = r.Blocked_interp.max_depth;
        switches = r.Blocked_interp.switches;
        reexpansions = r.Blocked_interp.reexpansions;
        wall_seconds = 0.0;
      }
  | Ir _, false, Some _ ->
      invalid_arg "Backend: the blocked interpreter has no domains mode"
  | _, _, None -> exec_single ~compiled opts source roots
  | _, _, Some domains -> exec_domains ~compiled opts source roots ~domains

let interp =
  {
    name = "blocked";
    description =
      "interpreted: per-thread closure dispatch over list levels \
       (Blocked_interp for IR, ThreadBlock callbacks for native specs)";
    exec = exec_backend ~compiled:false;
  }

let compiled =
  {
    name = "compiled";
    description =
      "compiled: per-spawn-site specialized step kernels over unboxed SoA \
       frames (native specs run their own compiled callbacks)";
    exec = exec_backend ~compiled:true;
  }

let all = [ interp; compiled ]
let find name = List.find_opt (fun b -> b.name = name) all

let run ?(opts = default_opts) backend source ~roots = backend.exec opts source roots

let roots_of = function
  | Ir _ -> invalid_arg "Backend.roots_of: IR sources carry no roots"
  | Native spec -> spec.Spec.roots

(* Wall-clock timing of the interp-IR path rides here rather than in
   Blocked_interp (whose result type is pinned by its own test surface). *)
let timed_run ?(opts = default_opts) backend source ~roots =
  let t0 = Unix.gettimeofday () in
  let r = run ~opts backend source ~roots in
  if r.wall_seconds = 0.0 then { r with wall_seconds = Unix.gettimeofday () -. t0 }
  else r
