(** Serve-daemon operational counters and the [/stats] line protocol.

    One instance per daemon, shared by every connection thread and pool
    worker.  Two latency stores with different jobs: a windowed
    {!Vc_core.Metrics.Reservoir} (the [/stats] p50/p99 — {e current}
    latency over the most recent requests) and lifetime
    {!Vc_core.Metrics.Histogram}s for wall time and each request phase
    (exact counts and tail quantiles over the daemon's whole life — the
    [/metrics] exposition and the [BENCH_serve.json] artifact).  Rendered
    two ways: a one-line [key=value] text form (greppable from [nc] and
    CI logs) and a JSON object (the [op:"stats"] response body). *)

type t

val create : ?window:int -> unit -> t
(** [window] (default 1024) bounds the latency reservoir: the windowed
    quantiles reflect the most recent [window] completed requests.  The
    histograms are unbounded (fixed bucket layout). *)

(** {1 Recording} *)

val conn_opened : t -> unit
val conn_closed : t -> unit
val accepted : t -> unit
val rejected_overload : t -> unit
val rejected_protocol : t -> unit
(** Malformed frames, oversized frames, read timeouts. *)

val rejected_draining : t -> unit
val job_started : t -> unit

val job_finished :
  t ->
  bench:string ->
  engine:string ->
  status:string ->
  ok:bool ->
  wall_ms:float ->
  queue_wait_ms:float ->
  exec_ms:float ->
  serialize_ms:float ->
  unit
(** One completed request: [ok:false] counts a typed error response
    (budget, fault, internal); the wall sample and the three phase
    samples are recorded either way, the second-wheel throughput window
    ticks, and the [(bench, engine, status)] breakdown row increments. *)

val bump : t -> bench:string -> engine:string -> status:string -> unit
(** Increment a breakdown row without a completion (admission-control
    rejections that never reach a worker). *)

(** {1 Reading} *)

val in_flight : t -> int
val completed : t -> int

val rate : t -> float
(** Completed requests per second over the last ~10 full seconds
    (capped at the daemon's uptime; the current partial second is
    excluded). *)

val uptime_s : t -> float

val breakdown : t -> ((string * string * string) * int) list
(** [(bench, engine, status), count] rows, sorted. *)

val wall_hist : t -> Vc_core.Metrics.Histogram.t
val queue_hist : t -> Vc_core.Metrics.Histogram.t
val exec_hist : t -> Vc_core.Metrics.Histogram.t
val serialize_hist : t -> Vc_core.Metrics.Histogram.t

type field = I of int | F of float

val snapshot : t -> queue_depth:int -> (string * field) list
(** The raw field list behind {!to_line}/{!to_json}, for renderers with
    their own framing (the [/metrics] Prometheus exposition). *)

val to_line : t -> queue_depth:int -> string
(** ["stats uptime_s=... queue_depth=... in_flight=... accepted=...
    rejected_overload=... rejected_protocol=... rejected_draining=...
    completed_ok=... completed_err=... rps_10s=... connections=...
    p50_wall_ms=... p99_wall_ms=... p999_wall_ms=... max_wall_ms=..."] *)

val to_json : t -> queue_depth:int -> Vc_exp.Jsonx.t
(** The same snapshot as a JSON object (same field names, minus the
    leading [stats] token). *)
