(** Serve-daemon operational counters and the [/stats] line protocol.

    One instance per daemon, shared by every connection thread and pool
    worker (atomic counters; wall-latency samples go through a
    mutex-guarded {!Vc_core.Metrics.Reservoir}).  Rendered two ways: a
    one-line [key=value] text form (greppable from [nc] and CI logs) and
    a JSON object (the [op:"stats"] response body). *)

type t

val create : ?window:int -> unit -> t
(** [window] (default 1024) bounds the latency reservoir: quantiles
    reflect the most recent [window] completed requests. *)

(** {1 Recording} *)

val conn_opened : t -> unit
val conn_closed : t -> unit
val accepted : t -> unit
val rejected_overload : t -> unit
val rejected_protocol : t -> unit
(** Malformed frames, oversized frames, read timeouts. *)

val rejected_draining : t -> unit
val job_started : t -> unit

val job_finished : t -> ok:bool -> wall_ms:float -> unit
(** [ok:false] counts a typed error response (budget, fault, internal);
    [wall_ms] is recorded either way. *)

(** {1 Reading} *)

val in_flight : t -> int
val completed : t -> int

val to_line : t -> queue_depth:int -> string
(** ["stats uptime_s=... queue_depth=... in_flight=... accepted=...
    rejected_overload=... rejected_protocol=... rejected_draining=...
    completed_ok=... completed_err=... connections=... p50_wall_ms=...
    p99_wall_ms=... max_wall_ms=..."] *)

val to_json : t -> queue_depth:int -> Vc_exp.Jsonx.t
(** The same snapshot as a JSON object (same field names, minus the
    leading [stats] token). *)
