let log_src = Logs.Src.create "vc.serve" ~doc:"vcilk serve daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)
module E = Vc_core.Vc_error
module J = Vc_exp.Jsonx
module Supervisor = Vc_core.Supervisor
module Telemetry = Vc_core.Telemetry
module Fault = Vc_core.Fault
module Registry = Vc_bench.Registry
module Sweep = Vc_exp.Sweep
module Pool = Vc_exp.Pool

type config = {
  socket_path : string option;
  tcp_port : int option;
  workers : int;
  max_queue : int;
  max_frame : int;
  read_timeout : float;
  max_delay_ms : int;
  slow_ms : float option;
  quick : bool;
  cache_dir : string option;
  workload_dirs : string list;
  ceiling : Supervisor.budgets;
  faults : Fault.plan;
  telemetry : out_channel option;
  stats_window : int;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    workers = 2;
    max_queue = 64;
    max_frame = 65536;
    read_timeout = 30.0;
    max_delay_ms = 5000;
    slow_ms = None;
    quick = false;
    cache_dir = None;
    workload_dirs = [ "examples/dsl"; "test/corpus" ];
    ceiling = Supervisor.no_budgets;
    faults = Fault.none;
    telemetry = None;
    stats_window = 1024;
  }

(* One per accepted socket.  [c_wlock] serializes response writes (pool
   workers and the connection thread interleave); [c_outstanding] counts
   accepted-but-unanswered requests so the connection only closes after
   every response has been written. *)
type conn = {
  c_fd : Unix.file_descr;
  c_wlock : Mutex.t;
  c_lock : Mutex.t;
  c_done : Condition.t;
  mutable c_outstanding : int;
  mutable c_alive : bool;
}

type t = {
  cfg : config;
  ctx : Sweep.ctx;
  entries : (string, Registry.entry) Hashtbl.t;
  pool : Pool.worker_pool;
  st : Stats.t;
  queue : int Atomic.t;  (* admitted, not yet started *)
  trace_ctr : int Atomic.t;
  drain_flag : bool Atomic.t;
  stopped : bool Atomic.t;
  listeners : (Unix.file_descr * string) list;
  mutable accept_threads : Thread.t list;
  conns_lock : Mutex.t;
  conns_done : Condition.t;
  mutable live_conns : int;
  tel_lock : Mutex.t;
  bound_tcp : int option;
}

(* Accept/read loops poll the drain flag at this period, so drain latency
   and idle-timeout granularity are both ~one slice. *)
let poll_slice = 0.1

let draining t = Atomic.get t.drain_flag
let stats t = t.st
let queue_depth t = Atomic.get t.queue
let stats_line t = Stats.to_line t.st ~queue_depth:(queue_depth t)
let tcp_port t = t.bound_tcp

let endpoints t =
  String.concat ", " (List.map snd t.listeners)

let next_trace t =
  let n = Atomic.fetch_and_add t.trace_ctr 1 in
  (n, Printf.sprintf "t-%06d" n)

(* ------------------------------------------------------------- sending *)

let send conn line =
  Mutex.protect conn.c_wlock (fun () ->
      if conn.c_alive then
        try Protocol.write_line conn.c_fd line
        with
        | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        | Sys_error _
        ->
          (* peer is gone; keep draining its outstanding jobs silently *)
          conn.c_alive <- false)

let job_done conn =
  Mutex.protect conn.c_lock (fun () ->
      conn.c_outstanding <- conn.c_outstanding - 1;
      if conn.c_outstanding = 0 then Condition.broadcast conn.c_done)

let wait_outstanding conn =
  Mutex.lock conn.c_lock;
  while conn.c_outstanding > 0 do
    Condition.wait conn.c_done conn.c_lock
  done;
  Mutex.unlock conn.c_lock

(* ----------------------------------------------------------- execution *)

let overload_error ~max_queue ~depth =
  {
    E.kind =
      E.Budget_exceeded
        {
          resource = E.Queue_depth;
          limit = float_of_int max_queue;
          actual = float_of_int depth;
        };
    phase = E.Execute;
    detail = "job queue full; retry with backoff";
  }

let report_fields (r : Vc_core.Report.t) =
  [
    ("reducers", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) r.reducers));
    ("tasks", J.Int r.tasks);
    ("base_tasks", J.Int r.base_tasks);
    ("max_depth", J.Int r.max_depth);
    ("cycles", J.Float r.cycles);
  ]

let backend_fields (r : Vc_core.Backend.result) =
  [
    ("reducers", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) r.reducers));
    ("tasks", J.Int r.tasks);
    ("base_tasks", J.Int r.base_tasks);
    ("max_depth", J.Int r.max_depth);
    ("backend_wall_s", J.Float r.wall_seconds);
  ]

type exec_result =
  | Fields of (string * J.t) list
  | Failed of E.t
  | Crashed of string

let strategy_of (req : Protocol.request) =
  match req.strategy with
  | "bfs" -> Vc_core.Policy.Bfs_only
  | s -> Vc_core.Policy.Hybrid { max_block = req.block; reexpand = s = "reexp" }

(* Execute one admitted request in a pool worker.  The memoized sweep
   path (warm memo + disk cache) serves plain engine requests; anything
   carrying per-request budgets or task caps runs directly under the
   supervisor with the clamped budgets. *)
let execute t (req : Protocol.request) entry ~salt ~telemetry =
  let req_budgets =
    {
      Supervisor.deadline = req.deadline;
      wall_deadline = req.wall_deadline;
      max_live_frames = req.max_live_frames;
    }
  in
  let plain =
    req_budgets = Supervisor.no_budgets && req.max_tasks = None
  in
  let budgets = Supervisor.clamp_budgets ~ceiling:t.cfg.ceiling req_budgets in
  let faults = Fault.split t.cfg.faults ~salt in
  try
    match req.engine with
    | "engine" -> (
        let machine =
          try Vc_mem.Machine.find req.machine
          with Not_found ->
            E.fail ~phase:E.Execute E.Protocol E.Abort "unknown machine %S"
              req.machine
        in
        if plain then
          let report =
            match req.strategy with
            | "bfs" -> Sweep.bfs_only t.ctx entry machine
            | "noreexp" ->
                Sweep.hybrid t.ctx entry machine ~reexpand:false
                  ~block:req.block
            | _ ->
                Sweep.hybrid t.ctx entry machine ~reexpand:true
                  ~block:req.block
          in
          Fields (report_fields report)
        else
          let spec = Sweep.spec_of t.ctx entry in
          match
            Supervisor.run ?max_tasks:req.max_tasks ~telemetry ~faults
              ~budgets ~spec ~machine ~strategy:(strategy_of req) ()
          with
          | Ok o ->
              Fields
                (report_fields o.report
                @ [
                    ("fallbacks", J.Int o.fallbacks);
                    ("faults_seen", J.Int o.faults_seen);
                  ])
          | Error e -> Failed e)
    | engine -> (
        if plain then
          Fields
            (backend_fields (Sweep.backend_run t.ctx entry ~engine ~block:req.block))
        else
          let backend =
            match Vc_core.Backend.find engine with
            | Some b -> b
            | None ->
                E.fail ~phase:E.Execute E.Protocol E.Abort "unknown engine %S"
                  engine
          in
          let source, roots = Sweep.backend_source t.ctx entry in
          match
            Supervisor.run_backend ~strategy:(strategy_of req)
              ?max_tasks:req.max_tasks ~telemetry ~faults ~budgets backend
              source ~roots
          with
          | Ok o ->
              Fields
                (backend_fields o.result
                @ [
                    ("fallbacks", J.Int o.b_fallbacks);
                    ("faults_seen", J.Int o.b_faults_seen);
                  ])
          | Error e -> Failed e)
  with
  | E.Error e -> Failed e
  | exn -> Crashed (Printexc.to_string exn)

let flush_request_telemetry t ~trace sink =
  match t.cfg.telemetry with
  | None -> ()
  | Some oc ->
      let events = Telemetry.ring_events sink in
      Mutex.protect t.tel_lock (fun () ->
          List.iter
            (fun st ->
              output_string oc (Telemetry.jsonl_of_event ~trace st);
              output_char oc '\n')
            events)

(* The body of one admitted request, run on a pool worker domain.  Every
   path writes exactly one response and decrements the queue/outstanding
   counters exactly once — containment means the client always hears
   back, even when the job crashes.

   Phase accounting: [admitted] is stamped where admission control let
   the request in, so [queue_wait_ms] covers the whole pool-queue wait;
   [exec_ms] covers the simulated think-time delay plus execution; and
   [serialize_ms] is measured by rendering the reply once.  The reported
   [wall_ms] is {e defined} as their sum (an ok reply is then re-rendered
   with the phase fields spliced in), so the three phases telescope to
   the wall time exactly — the same discipline as the profiler's
   cycle-exact attribution frames. *)
let run_job t conn (req : Protocol.request) ~salt ~trace ~admitted =
  Atomic.decr t.queue;
  Stats.job_started t.st;
  let telemetry = Telemetry.create () in
  let sink =
    if t.cfg.telemetry = None then Telemetry.null
    else Telemetry.ring ~capacity:4096
  in
  Telemetry.attach telemetry sink;
  let t_start = Unix.gettimeofday () in
  let queue_wait_ms = Float.max 0.0 ((t_start -. admitted) *. 1000.0) in
  let delay = min req.delay_ms t.cfg.max_delay_ms in
  if delay > 0 then Unix.sleepf (float_of_int delay /. 1000.0);
  let outcome =
    match Hashtbl.find_opt t.entries req.bench with
    | None -> `Unknown
    | Some entry -> `Ran (execute t req entry ~salt ~telemetry)
  in
  let exec_ms = (Unix.gettimeofday () -. t_start) *. 1000.0 in
  let t_ser = Unix.gettimeofday () in
  let provisional, ok, status =
    match outcome with
    | `Unknown ->
        ( Protocol.error_line ~id:req.id ~trace Protocol.Unknown_bench
            ~detail:
              (Printf.sprintf "unknown benchmark or workload %S" req.bench),
          false,
          Protocol.status_name Protocol.Unknown_bench )
    | `Ran (Fields fields) ->
        ( Protocol.ok_line ~id:req.id ~trace
            (fields @ [ ("engine", J.String req.engine) ]),
          true,
          Protocol.status_name Protocol.Ok_ )
    | `Ran (Failed e) ->
        ( Protocol.error_line_of ~id:req.id ~trace e,
          false,
          Protocol.status_name (Protocol.status_of_error e) )
    | `Ran (Crashed msg) ->
        Log.err (fun m -> m "request %s (%s) crashed: %s" trace req.bench msg);
        ( Protocol.error_line ~id:req.id ~trace Protocol.Internal ~detail:msg,
          false,
          Protocol.status_name Protocol.Internal )
  in
  let serialize_ms = (Unix.gettimeofday () -. t_ser) *. 1000.0 in
  let wall_ms = queue_wait_ms +. exec_ms +. serialize_ms in
  let line =
    match outcome with
    | `Ran (Fields fields) ->
        Protocol.ok_line ~id:req.id ~trace
          (fields
          @ [
              ("engine", J.String req.engine);
              ("wall_ms", J.Float wall_ms);
              ("queue_wait_ms", J.Float queue_wait_ms);
              ("exec_ms", J.Float exec_ms);
              ("serialize_ms", J.Float serialize_ms);
            ])
    | _ -> provisional
  in
  Stats.job_finished t.st ~bench:req.bench ~engine:req.engine ~status ~ok
    ~wall_ms ~queue_wait_ms ~exec_ms ~serialize_ms;
  (* phase spans on the request's trace: ts is milliseconds since
     admission, so `vcilk trace --chrome` renders each request as three
     abutting B/E slices *)
  let span frame ts0 ts1 =
    Telemetry.emit telemetry ~ts:ts0 (Telemetry.Span_open { frame });
    Telemetry.emit telemetry ~ts:ts1 ~dur:(ts1 -. ts0)
      (Telemetry.Span_close { frame })
  in
  span "queue_wait" 0.0 queue_wait_ms;
  span "exec" queue_wait_ms (queue_wait_ms +. exec_ms);
  span "serialize" (queue_wait_ms +. exec_ms) wall_ms;
  (* even a plain request leaves a trace-tagged completion mark, so the
     operator can grep the stream by trace id regardless of path *)
  Telemetry.emit telemetry ~ts:wall_ms ~dur:wall_ms
    (Telemetry.Mark
       (Printf.sprintf "serve %s %s" req.bench (if ok then "ok" else "err")));
  (match t.cfg.slow_ms with
  | Some threshold when wall_ms >= threshold ->
      Log.warn (fun m ->
          m
            "slow request %s: bench=%s engine=%s status=%s wall_ms=%.3f \
             queue_wait_ms=%.3f exec_ms=%.3f serialize_ms=%.3f"
            trace req.bench req.engine status wall_ms queue_wait_ms exec_ms
            serialize_ms)
  | _ -> ());
  flush_request_telemetry t ~trace sink;
  send conn line;
  job_done conn

(* ------------------------------------------------------ request intake *)

let handle_run t conn (req : Protocol.request) =
  if draining t then begin
    Stats.rejected_draining t.st;
    send conn
      (Protocol.error_line ~id:req.id Protocol.Shutting_down
         ~detail:"daemon is draining; no new work accepted")
  end
  else
    let depth = Atomic.get t.queue in
    if depth >= t.cfg.max_queue then begin
      Stats.rejected_overload t.st;
      Stats.bump t.st ~bench:req.bench ~engine:req.engine
        ~status:(Protocol.status_name Protocol.Overloaded);
      send conn
        (Protocol.error_line_of ~id:req.id
           (overload_error ~max_queue:t.cfg.max_queue ~depth:(depth + 1)))
    end
    else begin
      Atomic.incr t.queue;
      Mutex.protect conn.c_lock (fun () ->
          conn.c_outstanding <- conn.c_outstanding + 1);
      let salt, trace = next_trace t in
      let admitted = Unix.gettimeofday () in
      match
        Pool.submit t.pool (fun () -> run_job t conn req ~salt ~trace ~admitted)
      with
      | `Queued -> Stats.accepted t.st
      | `Draining ->
          Atomic.decr t.queue;
          job_done conn;
          Stats.rejected_draining t.st;
          Stats.bump t.st ~bench:req.bench ~engine:req.engine
            ~status:(Protocol.status_name Protocol.Shutting_down);
          send conn
            (Protocol.error_line ~id:req.id Protocol.Shutting_down
               ~detail:"daemon is draining; no new work accepted")
    end

let handle_frame t conn line =
  let trimmed = String.trim line in
  if trimmed = "" then ()
  else if trimmed = "/stats" then send conn (stats_line t)
  else if trimmed = "/metrics" then
    (* multi-line body; clients read until the "# EOF" line *)
    send conn (Metrics_expo.render t.st ~queue_depth:(queue_depth t))
  else if trimmed = "/ping" then send conn "pong"
  else
    match Protocol.parse_request line with
    | Error e ->
        Stats.rejected_protocol t.st;
        send conn (Protocol.error_line_of ~id:"" e)
    | Ok req -> (
        match req.op with
        | Protocol.Ping ->
            send conn
              (Protocol.ok_line ~id:req.id ~trace:"-"
                 [ ("pong", J.Bool true) ])
        | Protocol.Stats ->
            send conn
              (Protocol.ok_line ~id:req.id ~trace:"-"
                 [ ("stats", Stats.to_json t.st ~queue_depth:(queue_depth t)) ])
        | Protocol.Run -> handle_run t conn req)

(* ---------------------------------------------------- connection loop *)

let close_conn t conn =
  Mutex.protect conn.c_wlock (fun () ->
      conn.c_alive <- false;
      (try Unix.close conn.c_fd with Unix.Unix_error _ -> ()));
  Stats.conn_closed t.st;
  Mutex.protect t.conns_lock (fun () ->
      t.live_conns <- t.live_conns - 1;
      if t.live_conns = 0 then Condition.broadcast t.conns_done)

let conn_loop t conn () =
  let reader = Protocol.reader conn.c_fd in
  let rec loop idle =
    if draining t then begin
      (* drain: answer nothing new, let in-flight responses finish *)
      wait_outstanding conn;
      send conn
        (Protocol.error_line ~id:"" Protocol.Shutting_down
           ~detail:"daemon is draining; connection closing")
    end
    else
      match
        Protocol.read_frame ~timeout:poll_slice ~max_frame:t.cfg.max_frame
          reader
      with
      | Protocol.Frame line ->
          handle_frame t conn line;
          loop 0.0
      | Protocol.Timeout_frame ->
          let idle = idle +. poll_slice in
          if idle >= t.cfg.read_timeout && conn.c_outstanding = 0 then begin
            Stats.rejected_protocol t.st;
            send conn
              (Protocol.error_line ~id:"" Protocol.Timeout_
                 ~detail:
                   (Printf.sprintf "no frame within %.0fs; closing"
                      t.cfg.read_timeout))
          end
          else loop idle
      | Protocol.Eof ->
          if Protocol.buffered reader > 0 then begin
            (* peer dropped mid-frame: a protocol violation, not a crash *)
            Stats.rejected_protocol t.st;
            Log.info (fun m ->
                m "connection dropped mid-frame (%d buffered bytes)"
                  (Protocol.buffered reader))
          end;
          wait_outstanding conn
      | Protocol.Oversized ->
          Stats.rejected_protocol t.st;
          send conn
            (Protocol.error_line ~id:"" Protocol.Bad_request
               ~detail:
                 (Printf.sprintf "frame exceeds max_frame=%d bytes; closing"
                    t.cfg.max_frame));
          wait_outstanding conn
  in
  (try loop 0.0
   with exn ->
     Log.err (fun m -> m "connection loop died: %s" (Printexc.to_string exn)));
  close_conn t conn

let spawn_conn t fd =
  let conn =
    {
      c_fd = fd;
      c_wlock = Mutex.create ();
      c_lock = Mutex.create ();
      c_done = Condition.create ();
      c_outstanding = 0;
      c_alive = true;
    }
  in
  Stats.conn_opened t.st;
  Mutex.protect t.conns_lock (fun () -> t.live_conns <- t.live_conns + 1);
  ignore (Thread.create (conn_loop t conn) ())

(* ------------------------------------------------------- accept loops *)

let accept_loop t lfd () =
  let rec loop () =
    if draining t then ()
    else
      match Unix.select [ lfd ] [] [] poll_slice with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept ~cloexec:true lfd with
          | fd, _ ->
              if draining t then (
                try Unix.close fd with Unix.Unix_error _ -> ())
              else spawn_conn t fd;
              loop ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              loop ()
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  in
  (try loop ()
   with exn ->
     Log.err (fun m -> m "accept loop died: %s" (Printexc.to_string exn)))

(* -------------------------------------------------------------- start *)

let setup_error fmt =
  Printf.ksprintf
    (fun detail ->
      Error
        {
          E.kind = E.Fault { site = E.Protocol; hint = E.Abort };
          phase = E.Setup;
          detail;
        })
    fmt

let bind_unix path =
  (* a stale socket file from a crashed daemon must not keep us down *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let bind_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, bound)

let load_entries cfg =
  let entries = Hashtbl.create 64 in
  List.iter
    (fun (e : Registry.entry) -> Hashtbl.replace entries e.name e)
    Registry.all;
  List.iter
    (fun dir ->
      if Sys.file_exists dir && Sys.is_directory dir then
        match Registry.load_dir dir with
        | Ok loaded ->
            List.iter
              (fun (l : Registry.loaded) ->
                if not (Hashtbl.mem entries l.entry.name) then
                  Hashtbl.replace entries l.entry.name l.entry)
              loaded
        | Error e ->
            Log.warn (fun m ->
                m "skipping workload dir %s: %s" dir (E.to_string e)))
    cfg.workload_dirs;
  entries

let start cfg =
  if cfg.socket_path = None && cfg.tcp_port = None then
    setup_error "no listener configured: set socket_path and/or tcp_port"
  else begin
    (* a client that disconnects mid-response must not kill the daemon *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    match
      let unix_l =
        match cfg.socket_path with
        | None -> []
        | Some path -> [ (bind_unix path, Printf.sprintf "unix:%s" path) ]
      in
      let tcp_l, bound_tcp =
        match cfg.tcp_port with
        | None -> ([], None)
        | Some port ->
            let fd, bound = bind_tcp port in
            ([ (fd, Printf.sprintf "tcp:127.0.0.1:%d" bound) ], Some bound)
      in
      (unix_l @ tcp_l, bound_tcp)
    with
    | exception Unix.Unix_error (err, fn, arg) ->
        setup_error "cannot bind listener: %s(%s): %s" fn arg
          (Unix.error_message err)
    | listeners, bound_tcp ->
        let ctx =
          Sweep.create ~quick:cfg.quick ~cache_dir:cfg.cache_dir
            ~budgets:cfg.ceiling ~faults:cfg.faults ()
        in
        let t =
          {
            cfg;
            ctx;
            entries = load_entries cfg;
            pool = Pool.start_pool ~workers:cfg.workers ();
            st = Stats.create ~window:cfg.stats_window ();
            queue = Atomic.make 0;
            trace_ctr = Atomic.make 0;
            drain_flag = Atomic.make false;
            stopped = Atomic.make false;
            listeners;
            accept_threads = [];
            conns_lock = Mutex.create ();
            conns_done = Condition.create ();
            live_conns = 0;
            tel_lock = Mutex.create ();
            bound_tcp;
          }
        in
        t.accept_threads <-
          List.map
            (fun (lfd, _) -> Thread.create (accept_loop t lfd) ())
            t.listeners;
        Log.info (fun m ->
            m "serving %d benchmarks on %s (%d workers, max queue %d%s)"
              (Hashtbl.length t.entries) (endpoints t) cfg.workers
              cfg.max_queue
              (if Fault.armed cfg.faults then ", faults armed" else ""));
        Ok t
  end

(* --------------------------------------------------------------- stop *)

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.drain_flag true;
    (* accept loops poll the flag and exit within a slice *)
    List.iter Thread.join t.accept_threads;
    t.accept_threads <- [];
    List.iter
      (fun (lfd, _) -> try Unix.close lfd with Unix.Unix_error _ -> ())
      t.listeners;
    (match t.cfg.socket_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ());
    (* finish every queued and in-flight job; responses are written from
       the pool workers as they complete *)
    Pool.drain_pool t.pool;
    (* connection threads see the flag, wait their outstanding, close *)
    Mutex.lock t.conns_lock;
    while t.live_conns > 0 do
      Condition.wait t.conns_done t.conns_lock
    done;
    Mutex.unlock t.conns_lock;
    Sweep.persist t.ctx;
    (match t.cfg.telemetry with
    | Some oc -> Mutex.protect t.tel_lock (fun () -> flush oc)
    | None -> ());
    Log.info (fun m -> m "drained: %s" (stats_line t))
  end
