module J = Vc_exp.Jsonx
module Reservoir = Vc_core.Metrics.Reservoir

type t = {
  started : float;
  connections : int Atomic.t;  (* currently open *)
  conns_total : int Atomic.t;
  accepted : int Atomic.t;
  rejected_overload : int Atomic.t;
  rejected_protocol : int Atomic.t;
  rejected_draining : int Atomic.t;
  completed_ok : int Atomic.t;
  completed_err : int Atomic.t;
  in_flight : int Atomic.t;
  wall_ms : Reservoir.t;
}

let create ?(window = 1024) () =
  {
    started = Unix.gettimeofday ();
    connections = Atomic.make 0;
    conns_total = Atomic.make 0;
    accepted = Atomic.make 0;
    rejected_overload = Atomic.make 0;
    rejected_protocol = Atomic.make 0;
    rejected_draining = Atomic.make 0;
    completed_ok = Atomic.make 0;
    completed_err = Atomic.make 0;
    in_flight = Atomic.make 0;
    wall_ms = Reservoir.create ~capacity:window;
  }

let conn_opened t =
  Atomic.incr t.connections;
  Atomic.incr t.conns_total

let conn_closed t = Atomic.decr t.connections
let accepted t = Atomic.incr t.accepted
let rejected_overload t = Atomic.incr t.rejected_overload
let rejected_protocol t = Atomic.incr t.rejected_protocol
let rejected_draining t = Atomic.incr t.rejected_draining
let job_started t = Atomic.incr t.in_flight

let job_finished t ~ok ~wall_ms =
  Atomic.decr t.in_flight;
  Reservoir.add t.wall_ms wall_ms;
  if ok then Atomic.incr t.completed_ok else Atomic.incr t.completed_err

let in_flight t = Atomic.get t.in_flight
let completed t = Atomic.get t.completed_ok + Atomic.get t.completed_err

type field = I of int | F of float

let snapshot t ~queue_depth =
  [
    ("uptime_s", F (Unix.gettimeofday () -. t.started));
    ("queue_depth", I queue_depth);
    ("in_flight", I (Atomic.get t.in_flight));
    ("accepted", I (Atomic.get t.accepted));
    ("rejected_overload", I (Atomic.get t.rejected_overload));
    ("rejected_protocol", I (Atomic.get t.rejected_protocol));
    ("rejected_draining", I (Atomic.get t.rejected_draining));
    ("completed_ok", I (Atomic.get t.completed_ok));
    ("completed_err", I (Atomic.get t.completed_err));
    ("connections", I (Atomic.get t.connections));
    ("connections_total", I (Atomic.get t.conns_total));
    ("p50_wall_ms", F (Reservoir.quantile t.wall_ms 0.5));
    ("p99_wall_ms", F (Reservoir.quantile t.wall_ms 0.99));
    ("max_wall_ms", F (Reservoir.max_value t.wall_ms));
  ]

let to_line t ~queue_depth =
  let field (k, v) =
    match v with
    | I i -> Printf.sprintf "%s=%d" k i
    | F f -> Printf.sprintf "%s=%.3f" k f
  in
  "stats " ^ String.concat " " (List.map field (snapshot t ~queue_depth))

let to_json t ~queue_depth =
  J.Obj
    (List.map
       (fun (k, v) -> (k, match v with I i -> J.Int i | F f -> J.Float f))
       (snapshot t ~queue_depth))
