module J = Vc_exp.Jsonx
module Reservoir = Vc_core.Metrics.Reservoir
module Histogram = Vc_core.Metrics.Histogram

(* Seconds of completed-request counts behind the windowed throughput
   figure; two spare slots beyond the reported window absorb the current
   (partial) second and wheel wrap-around. *)
let rate_window = 10
let rate_slots = rate_window + 2

type t = {
  started : float;
  connections : int Atomic.t;  (* currently open *)
  conns_total : int Atomic.t;
  accepted : int Atomic.t;
  rejected_overload : int Atomic.t;
  rejected_protocol : int Atomic.t;
  rejected_draining : int Atomic.t;
  completed_ok : int Atomic.t;
  completed_err : int Atomic.t;
  in_flight : int Atomic.t;
  wall_ms : Reservoir.t;  (* windowed view: most recent [window] requests *)
  wall_hist : Histogram.t;  (* lifetime store: exact counts, tail quantiles *)
  queue_hist : Histogram.t;
  exec_hist : Histogram.t;
  serialize_hist : Histogram.t;
  (* Second wheel: slot [sec mod rate_slots] counts completions stamped
     in unix second [sec]; a stale tag means the slot wrapped and is
     reset before use.  One mutex — touched once per completion. *)
  rate_lock : Mutex.t;
  rate_sec : int array;
  rate_count : int array;
  breakdown_lock : Mutex.t;
  breakdown : (string * string * string, int ref) Hashtbl.t;
}

let create ?(window = 1024) () =
  {
    started = Unix.gettimeofday ();
    connections = Atomic.make 0;
    conns_total = Atomic.make 0;
    accepted = Atomic.make 0;
    rejected_overload = Atomic.make 0;
    rejected_protocol = Atomic.make 0;
    rejected_draining = Atomic.make 0;
    completed_ok = Atomic.make 0;
    completed_err = Atomic.make 0;
    in_flight = Atomic.make 0;
    wall_ms = Reservoir.create ~capacity:window;
    wall_hist = Histogram.create ();
    queue_hist = Histogram.create ();
    exec_hist = Histogram.create ();
    serialize_hist = Histogram.create ();
    rate_lock = Mutex.create ();
    rate_sec = Array.make rate_slots (-1);
    rate_count = Array.make rate_slots 0;
    breakdown_lock = Mutex.create ();
    breakdown = Hashtbl.create 16;
  }

let conn_opened t =
  Atomic.incr t.connections;
  Atomic.incr t.conns_total

let conn_closed t = Atomic.decr t.connections
let accepted t = Atomic.incr t.accepted
let rejected_overload t = Atomic.incr t.rejected_overload
let rejected_protocol t = Atomic.incr t.rejected_protocol
let rejected_draining t = Atomic.incr t.rejected_draining
let job_started t = Atomic.incr t.in_flight

let bump t ~bench ~engine ~status =
  Mutex.protect t.breakdown_lock (fun () ->
      match Hashtbl.find_opt t.breakdown (bench, engine, status) with
      | Some r -> incr r
      | None -> Hashtbl.add t.breakdown (bench, engine, status) (ref 1))

let breakdown t =
  let rows =
    Mutex.protect t.breakdown_lock (fun () ->
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.breakdown [])
  in
  List.sort compare rows

let tick_rate t =
  let sec = int_of_float (Unix.gettimeofday ()) in
  let slot = sec mod rate_slots in
  Mutex.protect t.rate_lock (fun () ->
      if t.rate_sec.(slot) <> sec then begin
        t.rate_sec.(slot) <- sec;
        t.rate_count.(slot) <- 0
      end;
      t.rate_count.(slot) <- t.rate_count.(slot) + 1)

(* Completions per second over the last [rate_window] full seconds (the
   current, partial second is excluded so a mid-second read does not
   understate the rate).  Early in the daemon's life the divisor is the
   full seconds actually elapsed, so short runs still report a rate. *)
let rate t =
  let now = Unix.gettimeofday () in
  let sec = int_of_float now in
  let span =
    let elapsed = int_of_float (now -. t.started) in
    max 1 (min rate_window elapsed)
  in
  let total = ref 0 in
  Mutex.protect t.rate_lock (fun () ->
      for back = 1 to span do
        let s = sec - back in
        let slot = s mod rate_slots in
        if t.rate_sec.(slot) = s then total := !total + t.rate_count.(slot)
      done);
  float_of_int !total /. float_of_int span

let job_finished t ~bench ~engine ~status ~ok ~wall_ms ~queue_wait_ms ~exec_ms
    ~serialize_ms =
  Atomic.decr t.in_flight;
  Reservoir.add t.wall_ms wall_ms;
  Histogram.add t.wall_hist wall_ms;
  Histogram.add t.queue_hist queue_wait_ms;
  Histogram.add t.exec_hist exec_ms;
  Histogram.add t.serialize_hist serialize_ms;
  tick_rate t;
  bump t ~bench ~engine ~status;
  if ok then Atomic.incr t.completed_ok else Atomic.incr t.completed_err

let in_flight t = Atomic.get t.in_flight
let completed t = Atomic.get t.completed_ok + Atomic.get t.completed_err
let wall_hist t = t.wall_hist
let queue_hist t = t.queue_hist
let exec_hist t = t.exec_hist
let serialize_hist t = t.serialize_hist
let uptime_s t = Unix.gettimeofday () -. t.started

type field = I of int | F of float

let snapshot t ~queue_depth =
  [
    ("uptime_s", F (uptime_s t));
    ("queue_depth", I queue_depth);
    ("in_flight", I (Atomic.get t.in_flight));
    ("accepted", I (Atomic.get t.accepted));
    ("rejected_overload", I (Atomic.get t.rejected_overload));
    ("rejected_protocol", I (Atomic.get t.rejected_protocol));
    ("rejected_draining", I (Atomic.get t.rejected_draining));
    ("completed_ok", I (Atomic.get t.completed_ok));
    ("completed_err", I (Atomic.get t.completed_err));
    ("rps_10s", F (rate t));
    ("connections", I (Atomic.get t.connections));
    ("connections_total", I (Atomic.get t.conns_total));
    ("p50_wall_ms", F (Reservoir.quantile t.wall_ms 0.5));
    ("p99_wall_ms", F (Reservoir.quantile t.wall_ms 0.99));
    ("p999_wall_ms", F (Histogram.quantile t.wall_hist 0.999));
    ("max_wall_ms", F (Reservoir.max_value t.wall_ms));
  ]

let to_line t ~queue_depth =
  let field (k, v) =
    match v with
    | I i -> Printf.sprintf "%s=%d" k i
    | F f -> Printf.sprintf "%s=%.3f" k f
  in
  "stats " ^ String.concat " " (List.map field (snapshot t ~queue_depth))

let to_json t ~queue_depth =
  J.Obj
    (List.map
       (fun (k, v) -> (k, match v with I i -> J.Int i | F f -> J.Float f))
       (snapshot t ~queue_depth))
