(** The [vcilk serve] daemon: a fault-contained job server over Unix and
    loopback-TCP sockets.

    Requests (newline-delimited JSON, see {!Protocol}) are admitted
    against a bounded queue and executed on a persistent
    {!Vc_exp.Pool.worker_pool} of domains over one shared
    {!Vc_exp.Sweep.ctx}, so shuffle/prefix tables, the sweep memo and the
    disk run cache stay warm across requests.

    Robustness contract:
    - {e admission control}: when the queue holds [max_queue] jobs, new
      work is rejected with an [overloaded] response (typed
      [Queue_depth] budget error) instead of growing without bound;
    - {e containment}: a request that raises produces an [internal]
      response; worker domains and the accept loop never die on job or
      client behavior;
    - {e typed protocol errors}: malformed frames, oversized frames and
      idle read timeouts get [bad_request]/[timeout] responses (and close
      only the offending connection);
    - {e per-request budgets}: request deadlines are clamped against the
      operator ceiling ({!Vc_core.Supervisor.clamp_budgets}) and enforced
      by the supervisor;
    - {e graceful drain}: {!stop} stops accepting, finishes every queued
      and in-flight job, flushes the run cache and telemetry, then
      returns — the SIGTERM path exits 0. *)

type config = {
  socket_path : string option;  (** Unix-domain listen socket *)
  tcp_port : int option;  (** loopback TCP listen port; [0] = ephemeral *)
  workers : int;  (** pool domains *)
  max_queue : int;  (** admission-control bound on queued jobs *)
  max_frame : int;  (** request frame size limit, bytes *)
  read_timeout : float;  (** idle seconds before a connection is closed *)
  max_delay_ms : int;  (** clamp on the request [delay_ms] testing aid *)
  slow_ms : float option;
      (** log any request whose wall time reaches this threshold, with
          its full queue_wait/exec/serialize phase breakdown *)
  quick : bool;  (** serve quick-scale workloads *)
  cache_dir : string option;  (** persistent run cache root *)
  workload_dirs : string list;  (** [.rtp] directories loaded at start *)
  ceiling : Vc_core.Supervisor.budgets;
      (** operator budget ceiling; requests can tighten, never relax *)
  faults : Vc_core.Fault.plan;
      (** armed plan = chaos mode: injected faults recover to bit-equal
          results; the run cache is not persisted *)
  telemetry : out_channel option;
      (** shared JSONL stream; every line is tagged with the request's
          trace id.  Flushed on drain; the caller owns closing it. *)
  stats_window : int;  (** latency-reservoir window for [/stats] *)
}

val default_config : config
(** No listeners (callers must set [socket_path] and/or [tcp_port]),
    2 workers, [max_queue] 64, [max_frame] 65536, 30 s read timeout,
    [max_delay_ms] 5000, no slow-request threshold, full scale, no
    cache, default workload dirs
    ([examples/dsl], [test/corpus]), no ceiling, no faults, stats window
    1024. *)

type t

val start : config -> (t, Vc_core.Vc_error.t) result
(** Bind the listeners, load workloads, spawn the pool and accept
    threads.  Typed errors cover: no listener configured, bind/listen
    failures.  Workload-directory load failures are logged and skipped —
    a bad [.rtp] corpus must not keep the daemon down. *)

val stop : t -> unit
(** Graceful drain (idempotent): stop accepting connections and
    requests, finish queued and in-flight jobs, wait for connections to
    close, join the pool, persist the run cache, flush telemetry. *)

val draining : t -> bool
val stats : t -> Stats.t
val queue_depth : t -> int
val stats_line : t -> string

val tcp_port : t -> int option
(** The bound TCP port (resolves [tcp_port = 0] to the ephemeral port
    the OS picked). *)

val endpoints : t -> string
(** Human-readable listen endpoints, for the startup log line. *)
