(** The [vcilk serve] wire protocol: newline-delimited JSON frames.

    One request per line, one response per line, matched by the
    client-chosen [id] (responses to pipelined requests may arrive out of
    order).  Two bare-text escape hatches ride the same connection for
    debugging with [nc]: a line of ["/stats"] returns the one-line stats
    rendering, ["/ping"] a one-line pong.

    Framing violations are {e typed}: malformed JSON, an oversized frame,
    and a read timeout all surface as {!Vc_core.Vc_error.t} values with
    site [Protocol], which the server maps onto the response [status]
    field — the daemon never dies on client input. *)

type op = Run | Stats | Ping

type request = {
  id : string;  (** client-chosen correlation id (echoed back) *)
  op : op;
  bench : string;  (** benchmark or loaded [.rtp] workload name *)
  engine : string;  (** ["engine"] (cost model) | ["blocked"] | ["compiled"] *)
  strategy : string;  (** ["bfs"] | ["noreexp"] | ["reexp"] *)
  block : int;  (** hybrid block size / re-expansion threshold *)
  machine : string;  (** ["e5"] | ["phi"] (cost-model engine only) *)
  deadline : float option;  (** modeled-cycle budget for this request *)
  wall_deadline : float option;  (** wall-clock budget, seconds *)
  max_live_frames : int option;
  max_tasks : int option;
  delay_ms : int;
      (** synthetic pre-execution think time — loadgen/backpressure
          testing aid, clamped by the server *)
}

val run_request : bench:string -> request
(** A [Run] request with every field at its default. *)

val request_line : request -> string
(** Render a request as one wire frame (no trailing newline). *)

val parse_request : string -> (request, Vc_core.Vc_error.t) result
(** Parse one frame.  All failures (malformed JSON, wrong field types,
    unknown op/engine/strategy, missing [bench]) are [Protocol]-site
    faults carrying a human-readable detail. *)

(** {1 Response statuses} *)

type status =
  | Ok_
  | Overloaded  (** admission control: bounded queue full *)
  | Budget_limit  (** a per-request budget or deadline was exceeded *)
  | Fault_  (** unrecovered runtime fault *)
  | Bad_request  (** protocol violation: parse error, oversized frame *)
  | Unknown_bench
  | Shutting_down  (** daemon is draining; request was not queued *)
  | Timeout_  (** per-connection read timeout *)
  | Internal

val status_name : status -> string
val status_of_string : string -> status option

val status_of_error : Vc_core.Vc_error.t -> status
(** [Queue_depth] budgets map to [Overloaded], other budgets to
    [Budget_limit], [Protocol]-site faults to [Bad_request], everything
    else to [Fault_]. *)

(** {1 Response rendering} *)

val ok_line :
  id:string -> trace:string -> (string * Vc_exp.Jsonx.t) list -> string
(** One [status:"ok"] response line with the given body fields. *)

val error_line :
  id:string -> ?trace:string -> status -> detail:string -> string
(** One error response line; budget statuses should carry their
    resource/limit/actual in [detail]. *)

val error_line_of :
  id:string -> ?trace:string -> Vc_core.Vc_error.t -> string
(** {!error_line} with status and detail derived from the typed error. *)

(** {1 Response parsing (client side)} *)

type reply = {
  r_id : string;
  r_status : status;
  r_trace : string;
  r_detail : string;
  r_reducers : (string * int) list;
  r_tasks : int;
  r_base_tasks : int;
  r_cycles : float;  (** modeled cycles (cost-model engine), else 0 *)
  r_wall_ms : float;  (** server-side execution wall time *)
  r_raw : Vc_exp.Jsonx.t;
}

val parse_reply : string -> (reply, string) result

(** {1 Framing} *)

type reader

val reader : Unix.file_descr -> reader

val buffered : reader -> int
(** Bytes of an incomplete frame currently buffered (a nonzero value at
    [Eof] means the peer dropped mid-frame). *)

type frame =
  | Frame of string
  | Eof
  | Timeout_frame  (** nothing arrived within this call's [timeout] *)
  | Oversized  (** frame exceeded [max_frame] — close the connection *)

val read_frame : ?timeout:float -> max_frame:int -> reader -> frame
(** Read the next newline-terminated frame ([timeout] default 1s).
    [Timeout_frame] is per-call — callers implement idle timeouts by
    summing; [Oversized] poisons the stream (the reader cannot resync),
    so the connection must be closed. *)

val write_line : Unix.file_descr -> string -> unit
(** Write [line + "\n"] fully.  Raises [Unix.Unix_error] on a dead peer
    ([EPIPE] — arm [Sys.sigpipe] to [Signal_ignore]). *)
