module E = Vc_core.Vc_error
module J = Vc_exp.Jsonx

type op = Run | Stats | Ping

type request = {
  id : string;
  op : op;
  bench : string;
  engine : string;
  strategy : string;
  block : int;
  machine : string;
  deadline : float option;
  wall_deadline : float option;
  max_live_frames : int option;
  max_tasks : int option;
  delay_ms : int;
}

let run_request ~bench =
  {
    id = "";
    op = Run;
    bench;
    engine = "engine";
    strategy = "reexp";
    block = 4096;
    machine = "e5";
    deadline = None;
    wall_deadline = None;
    max_live_frames = None;
    max_tasks = None;
    delay_ms = 0;
  }

let proto_error fmt =
  Printf.ksprintf
    (fun detail ->
      Error
        {
          E.kind = E.Fault { site = E.Protocol; hint = E.Abort };
          phase = E.Execute;
          detail;
        })
    fmt

let engines = [ "engine"; "blocked"; "compiled" ]
let strategies = [ "bfs"; "noreexp"; "reexp" ]

let parse_request line =
  let trimmed = String.trim line in
  if trimmed = "/stats" then Ok { (run_request ~bench:"") with op = Stats }
  else if trimmed = "/ping" then Ok { (run_request ~bench:"") with op = Ping }
  else
    match J.parse line with
    | Error msg -> proto_error "malformed JSON frame: %s" msg
    | Ok (J.Obj _ as j) -> (
        let str_field name default =
          match J.member name j with
          | J.Null -> default
          | J.String s -> s
          | _ -> J.decode_error "field %S must be a string" name
        in
        let int_field name default =
          match J.member name j with
          | J.Null -> default
          | J.Int i -> i
          | _ -> J.decode_error "field %S must be an integer" name
        in
        let float_opt name =
          match J.member name j with
          | J.Null -> None
          | J.Int i -> Some (float_of_int i)
          | J.Float f -> Some f
          | _ -> J.decode_error "field %S must be a number" name
        in
        let int_opt name =
          match J.member name j with
          | J.Null -> None
          | J.Int i -> Some i
          | _ -> J.decode_error "field %S must be an integer" name
        in
        try
          let op =
            match str_field "op" "run" with
            | "run" -> Run
            | "stats" -> Stats
            | "ping" -> Ping
            | other -> J.decode_error "unknown op %S" other
          in
          let req =
            {
              id = str_field "id" "";
              op;
              bench = str_field "bench" "";
              engine = str_field "engine" "engine";
              strategy = str_field "strategy" "reexp";
              block = int_field "block" 4096;
              machine = str_field "machine" "e5";
              deadline = float_opt "deadline";
              wall_deadline = float_opt "wall_deadline";
              max_live_frames = int_opt "max_live_frames";
              max_tasks = int_opt "max_tasks";
              delay_ms = int_field "delay_ms" 0;
            }
          in
          if op = Run && req.bench = "" then
            proto_error "run request is missing the \"bench\" field"
          else if op = Run && not (List.mem req.engine engines) then
            proto_error "unknown engine %S (expected engine|blocked|compiled)"
              req.engine
          else if op = Run && not (List.mem req.strategy strategies) then
            proto_error "unknown strategy %S (expected bfs|noreexp|reexp)"
              req.strategy
          else if req.block < 1 then proto_error "block must be >= 1"
          else if req.delay_ms < 0 then proto_error "delay_ms must be >= 0"
          else Ok req
        with J.Decode msg -> proto_error "invalid request: %s" msg)
    | Ok _ -> proto_error "request frame must be a JSON object"

let op_name = function Run -> "run" | Stats -> "stats" | Ping -> "ping"

let request_line (r : request) =
  let opt name f v = match v with None -> [] | Some x -> [ (name, f x) ] in
  J.to_string
    (J.Obj
       ([
          ("id", J.String r.id);
          ("op", J.String (op_name r.op));
          ("bench", J.String r.bench);
          ("engine", J.String r.engine);
          ("strategy", J.String r.strategy);
          ("block", J.Int r.block);
          ("machine", J.String r.machine);
        ]
       @ opt "deadline" (fun f -> J.Float f) r.deadline
       @ opt "wall_deadline" (fun f -> J.Float f) r.wall_deadline
       @ opt "max_live_frames" (fun i -> J.Int i) r.max_live_frames
       @ opt "max_tasks" (fun i -> J.Int i) r.max_tasks
       @ if r.delay_ms > 0 then [ ("delay_ms", J.Int r.delay_ms) ] else []))

(* -------------------------------------------------------------- statuses *)

type status =
  | Ok_
  | Overloaded
  | Budget_limit
  | Fault_
  | Bad_request
  | Unknown_bench
  | Shutting_down
  | Timeout_
  | Internal

let status_name = function
  | Ok_ -> "ok"
  | Overloaded -> "overloaded"
  | Budget_limit -> "budget_exceeded"
  | Fault_ -> "fault"
  | Bad_request -> "bad_request"
  | Unknown_bench -> "unknown_bench"
  | Shutting_down -> "shutting_down"
  | Timeout_ -> "timeout"
  | Internal -> "internal"

let status_of_string = function
  | "ok" -> Some Ok_
  | "overloaded" -> Some Overloaded
  | "budget_exceeded" -> Some Budget_limit
  | "fault" -> Some Fault_
  | "bad_request" -> Some Bad_request
  | "unknown_bench" -> Some Unknown_bench
  | "shutting_down" -> Some Shutting_down
  | "timeout" -> Some Timeout_
  | "internal" -> Some Internal
  | _ -> None

let status_of_error (e : E.t) =
  match e.kind with
  | E.Budget_exceeded { resource = E.Queue_depth; _ } -> Overloaded
  | E.Budget_exceeded _ -> Budget_limit
  | E.Fault { site = E.Protocol; _ } -> Bad_request
  | E.Fault _ -> Fault_

(* ------------------------------------------------------------- rendering *)

let ok_line ~id ~trace fields =
  J.to_string
    (J.Obj
       (("id", J.String id)
       :: ("trace", J.String trace)
       :: ("status", J.String "ok")
       :: fields))

let error_line ~id ?trace status ~detail =
  let trace_field =
    match trace with None -> [] | Some t -> [ ("trace", J.String t) ]
  in
  J.to_string
    (J.Obj
       ((("id", J.String id) :: trace_field)
       @ [
           ("status", J.String (status_name status));
           ("detail", J.String detail);
         ]))

let error_line_of ~id ?trace (e : E.t) =
  error_line ~id ?trace (status_of_error e) ~detail:(E.to_string e)

(* ------------------------------------------------------- client parsing *)

type reply = {
  r_id : string;
  r_status : status;
  r_trace : string;
  r_detail : string;
  r_reducers : (string * int) list;
  r_tasks : int;
  r_base_tasks : int;
  r_cycles : float;
  r_wall_ms : float;
  r_raw : J.t;
}

let parse_reply line =
  match J.parse line with
  | Error msg -> Error (Printf.sprintf "malformed reply: %s" msg)
  | Ok j -> (
      try
        let str name d =
          match J.member name j with J.Null -> d | v -> J.to_str v
        in
        let num name d =
          match J.member name j with J.Null -> d | v -> J.to_float v
        in
        let int name d =
          match J.member name j with J.Null -> d | v -> J.to_int v
        in
        let status_str = str "status" "" in
        match status_of_string status_str with
        | None -> Error (Printf.sprintf "unknown status %S" status_str)
        | Some r_status ->
            let r_reducers =
              match J.member "reducers" j with
              | J.Null -> []
              | v -> List.map (fun (k, v) -> (k, J.to_int v)) (J.obj_fields v)
            in
            Ok
              {
                r_id = str "id" "";
                r_status;
                r_trace = str "trace" "";
                r_detail = str "detail" "";
                r_reducers;
                r_tasks = int "tasks" 0;
                r_base_tasks = int "base_tasks" 0;
                r_cycles = num "cycles" 0.0;
                r_wall_ms = num "wall_ms" 0.0;
                r_raw = j;
              }
      with J.Decode msg -> Error (Printf.sprintf "invalid reply: %s" msg))

(* --------------------------------------------------------------- framing *)

type reader = { fd : Unix.file_descr; buf : Buffer.t; chunk : bytes }

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 4096 }
let buffered r = Buffer.length r.buf

type frame = Frame of string | Eof | Timeout_frame | Oversized

let take_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      Some line

let read_frame ?(timeout = 1.0) ~max_frame r =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match take_line r with
    | Some line ->
        if String.length line > max_frame then Oversized else Frame line
    | None ->
        if Buffer.length r.buf > max_frame then Oversized
        else
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then Timeout_frame
          else begin
            match Unix.select [ r.fd ] [] [] remaining with
            | [], _, _ -> Timeout_frame
            | _ -> (
                match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
                | 0 -> Eof
                | n ->
                    Buffer.add_subbytes r.buf r.chunk 0 n;
                    go ()
                | exception
                    Unix.Unix_error
                      ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                    Eof)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error (Unix.EBADF, _, _) -> Eof
          end
  in
  go ()

let write_line fd line =
  let payload = line ^ "\n" in
  let len = String.length payload in
  let rec loop off =
    if off < len then begin
      match Unix.write_substring fd payload off (len - off) with
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
    end
  in
  loop 0
