(* Prometheus text exposition for the serve daemon.

   The wire protocol is newline-delimited, not HTTP, so the rendering is
   framed for it: a client sends the bare line [/metrics] and reads lines
   until the OpenMetrics-style [# EOF] terminator.  Everything else is
   stock exposition format — counters, gauges, and histograms whose
   [le]-labelled bucket series are cumulative — so the body pastes
   straight into any Prometheus-family scraper or parser. *)

module H = Vc_core.Metrics.Histogram

let buf_add = Buffer.add_string

(* Prometheus sample values: plain decimal, [+Inf] for the unbounded
   bucket.  9 significant digits keeps [le] labels short but unambiguous
   (adjacent bucket bounds differ by ~12%). *)
let num f =
  if f = infinity then "+Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> buf_add b "\\\\"
      | '"' -> buf_add b "\\\""
      | '\n' -> buf_add b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let header b ~name ~help ~kind =
  buf_add b (Printf.sprintf "# HELP %s %s\n" name help);
  buf_add b (Printf.sprintf "# TYPE %s %s\n" name kind)

let sample b ~name ?(labels = []) v =
  let lbl =
    match labels with
    | [] -> ""
    | kvs ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
               kvs)
        ^ "}"
  in
  buf_add b (Printf.sprintf "%s%s %s\n" name lbl v)

(* One histogram family: cumulative [le] buckets, then [_sum]/[_count].
   [labels] (e.g. [("phase", "exec")]) apply to every series so the four
   phase histograms share one family. *)
let histogram_series b ~name ?(labels = []) h =
  let cum = H.cumulative h in
  Array.iter
    (fun (le, c) ->
      sample b ~name:(name ^ "_bucket")
        ~labels:(labels @ [ ("le", num le) ])
        (string_of_int c))
    cum;
  sample b ~name:(name ^ "_sum") ~labels (num (H.sum h));
  sample b ~name:(name ^ "_count") ~labels (string_of_int (H.count h))

let render st ~queue_depth =
  let b = Buffer.create 8192 in
  let snap = Stats.snapshot st ~queue_depth in
  let get k =
    match List.assoc_opt k snap with
    | Some (Stats.I i) -> string_of_int i
    | Some (Stats.F f) -> num f
    | None -> "0"
  in
  let gauge name help key =
    header b ~name ~help ~kind:"gauge";
    sample b ~name (get key)
  in
  gauge "vcilk_uptime_seconds" "Seconds since the daemon started"
    "uptime_s";
  gauge "vcilk_queue_depth" "Requests admitted but not yet started"
    "queue_depth";
  gauge "vcilk_in_flight" "Requests currently executing on a worker"
    "in_flight";
  gauge "vcilk_connections" "Currently open client connections"
    "connections";
  gauge "vcilk_throughput_rps"
    "Completed requests per second over the last ~10s window" "rps_10s";
  header b ~name:"vcilk_connections_opened_total"
    ~help:"Client connections ever accepted" ~kind:"counter";
  sample b ~name:"vcilk_connections_opened_total" (get "connections_total");
  header b ~name:"vcilk_accepted_total"
    ~help:"Requests admitted to the job queue" ~kind:"counter";
  sample b ~name:"vcilk_accepted_total" (get "accepted");
  header b ~name:"vcilk_rejected_total"
    ~help:"Requests rejected before execution, by reason" ~kind:"counter";
  List.iter
    (fun (reason, key) ->
      sample b ~name:"vcilk_rejected_total"
        ~labels:[ ("reason", reason) ]
        (get key))
    [
      ("overload", "rejected_overload");
      ("protocol", "rejected_protocol");
      ("draining", "rejected_draining");
    ];
  header b ~name:"vcilk_completed_total"
    ~help:"Completed requests by final disposition" ~kind:"counter";
  sample b ~name:"vcilk_completed_total"
    ~labels:[ ("status", "ok") ]
    (get "completed_ok");
  sample b ~name:"vcilk_completed_total"
    ~labels:[ ("status", "err") ]
    (get "completed_err");
  header b ~name:"vcilk_requests_total"
    ~help:"Request breakdown by benchmark, engine and reply status"
    ~kind:"counter";
  List.iter
    (fun ((bench, engine, status), n) ->
      sample b ~name:"vcilk_requests_total"
        ~labels:[ ("bench", bench); ("engine", engine); ("status", status) ]
        (string_of_int n))
    (Stats.breakdown st);
  header b ~name:"vcilk_request_wall_ms"
    ~help:"End-to-end request wall time (admit to reply), milliseconds"
    ~kind:"histogram";
  histogram_series b ~name:"vcilk_request_wall_ms" (Stats.wall_hist st);
  header b ~name:"vcilk_request_phase_ms"
    ~help:"Per-phase request time (queue_wait, exec, serialize), milliseconds"
    ~kind:"histogram";
  List.iter
    (fun (phase, h) ->
      histogram_series b ~name:"vcilk_request_phase_ms"
        ~labels:[ ("phase", phase) ]
        h)
    [
      ("queue_wait", Stats.queue_hist st);
      ("exec", Stats.exec_hist st);
      ("serialize", Stats.serialize_hist st);
    ];
  buf_add b "# EOF";
  Buffer.contents b
