(** Open-loop load generator for the serve daemon.

    Replays a weighted benchmark mix at a fixed request rate over a set
    of persistent connections, then checks every [ok] response for {e bit
    equality} against an in-process batch reference (the same reducer
    values, task and base-task counts a [vcilk run] of that benchmark
    produces) — the serving path must never change results, only their
    delivery.

    The schedule is open-loop: request [k] is sent at [k/rps] seconds
    regardless of how fast responses come back, so pushing [rps] past
    the daemon's capacity builds real queue depth and exercises
    admission control ([overloaded] responses are expected outcomes
    under deliberate overload, not failures — see {!passed}). *)

type mix = (string * int) list
(** benchmark name → weight *)

val parse_mix : string -> (mix, string) result
(** Parse ["fib:4,uts:1"] (weight defaults to 1: ["fib,uts"] works). *)

type summary = {
  sent : int;
  ok : int;
  overloaded : int;  (** admission-control rejections *)
  budget_exceeded : int;  (** per-request deadline violations *)
  rejected : int;  (** other error statuses (protocol, draining, ...) *)
  lost : int;  (** requests with no reply within the grace period *)
  divergences : (string * string) list;
      (** (request id, detail) for every [ok] reply that was not
          bit-equal to the batch reference *)
  p50_ms : float;  (** client-observed round-trip latency *)
  p99_ms : float;
  p999_ms : float;  (** from the client-side histogram (exact counts) *)
  mean_ms : float;
  max_ms : float;
  latency : Vc_core.Metrics.Histogram.t;
      (** every round-trip sample, mergeable and JSON-renderable — the
          store behind [--latency-json] *)
  stats_line : string option;  (** the daemon's final [/stats] line *)
}

val passed : summary -> bool
(** No divergences and nothing lost.  Overload and budget rejections do
    not fail a run — they are the backpressure behaviors under test. *)

val pp_summary : Format.formatter -> summary -> unit
(** One greppable line: [loadgen sent=... ok=... divergences=...]. *)

type profile = {
  pr_rps : float;
  pr_duration : float;
  pr_mix : string;  (** the mix argument as given, e.g. ["fib:4,uts:1"] *)
  pr_engine : string;
  pr_connections : int;
  pr_quick : bool;
}
(** The knobs that shape a latency distribution; recorded in the
    artifact so baseline comparisons can refuse mismatched profiles. *)

val latency_json : profile:profile -> summary -> Vc_exp.Jsonx.t
(** The [BENCH_serve.json] artifact body (version 1): the profile,
    outcome counts, p50/p99/p99.9/mean/max, and the full histogram. *)

val fetch_stats : connect:(unit -> Unix.file_descr) -> string option
(** Probe [/stats] on a fresh connection: the one-line [key=value] body
    ([None] when the daemon is unreachable). *)

val fetch_metrics : connect:(unit -> Unix.file_descr) -> string option
(** Probe [/metrics] on a fresh connection: the Prometheus text body up
    to and including its ["# EOF"] terminator ([None] when the daemon is
    unreachable). *)

val run :
  connect:(unit -> Unix.file_descr) ->
  rps:float ->
  duration:float ->
  mix:mix ->
  ?engine:string ->
  ?strategy:string ->
  ?block:int ->
  ?deadline_frac:float ->
  ?delay_ms:int ->
  ?connections:int ->
  ?seed:int ->
  ?grace:float ->
  ?workload_dirs:string list ->
  ?on_snapshot:((unit -> summary) -> unit) ->
  quick:bool ->
  unit ->
  (summary, Vc_core.Vc_error.t) result
(** Drive [rps × duration] requests (at least 1) drawn from [mix] by a
    seeded weighted choice, round-robin over [connections] (default 4)
    sockets from [connect].  [deadline_frac f] attaches a modeled-cycle
    deadline of [f × reference-cycles] to every engine request;
    [delay_ms] attaches synthetic server-side think time (the
    backpressure lever).  After the send window closes, replies are
    awaited for [grace] seconds (default 30) before the remainder counts
    as [lost]; a final [/stats] probe is captured on a fresh connection.
    [on_snapshot register] is called once before any request is sent
    with a thread-safe thunk producing a partial {!summary} of whatever
    has completed so far — the SIGINT/SIGTERM flush hook behind
    [--latency-json].  Typed errors cover mix resolution and
    reference-computation failures; connection failures during the run
    count as [lost], not errors. *)
