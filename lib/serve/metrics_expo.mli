(** Prometheus text exposition of the daemon's {!Stats}.

    Serves the bare [/metrics] request: counters
    ([vcilk_accepted_total], [vcilk_rejected_total{reason}],
    [vcilk_completed_total{status}], per-[(bench, engine, status)]
    [vcilk_requests_total]), gauges (queue depth, in-flight, open
    connections, windowed rps), and latency histograms with cumulative
    [le] buckets ([vcilk_request_wall_ms] plus
    [vcilk_request_phase_ms{phase}] for queue_wait / exec / serialize).
    Because the serve protocol is line-framed rather than HTTP, the body
    ends with the OpenMetrics-style [# EOF] line — clients read until it
    appears; the text above it is standard exposition format. *)

val render : Stats.t -> queue_depth:int -> string
(** The full exposition body, terminated by ["# EOF"] (no trailing
    newline — the protocol's line writer appends it). *)
