module E = Vc_core.Vc_error
module J = Vc_exp.Jsonx
module Reservoir = Vc_core.Metrics.Reservoir
module Histogram = Vc_core.Metrics.Histogram
module Registry = Vc_bench.Registry
module Sweep = Vc_exp.Sweep

let log_src = Logs.Src.create "vc.loadgen" ~doc:"serve load generator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mix = (string * int) list

let parse_mix s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty mix"
  else
    try
      Ok
        (List.map
           (fun p ->
             match String.index_opt p ':' with
             | None -> (p, 1)
             | Some i -> (
                 let name = String.sub p 0 i in
                 let w = String.sub p (i + 1) (String.length p - i - 1) in
                 match int_of_string_opt w with
                 | Some w when w > 0 -> (name, w)
                 | _ -> failwith (Printf.sprintf "bad weight in %S" p)))
           parts)
    with Failure m -> Error m

type summary = {
  sent : int;
  ok : int;
  overloaded : int;
  budget_exceeded : int;
  rejected : int;
  lost : int;
  divergences : (string * string) list;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  mean_ms : float;
  max_ms : float;
  latency : Histogram.t;
  stats_line : string option;
}

let passed s = s.divergences = [] && s.lost = 0

let pp_summary ppf s =
  Format.fprintf ppf
    "loadgen sent=%d ok=%d overloaded=%d budget_exceeded=%d rejected=%d \
     lost=%d divergences=%d p50_ms=%.3f p99_ms=%.3f p999_ms=%.3f \
     max_ms=%.3f"
    s.sent s.ok s.overloaded s.budget_exceeded s.rejected s.lost
    (List.length s.divergences)
    s.p50_ms s.p99_ms s.p999_ms s.max_ms

(* Per-benchmark batch reference: what [vcilk run] produces.  Responses
   must be bit-equal on reducers and task counts; modeled cycles feed the
   [--deadline-frac] budgets. *)
type reference = {
  ref_reducers : (string * int) list;  (* sorted *)
  ref_tasks : int;
  ref_base : int;
  ref_cycles : float;
}

let sorted_reducers rs =
  List.sort (fun (a, _) (b, _) -> compare a b) rs

let reference_of ctx entry ~engine ~strategy ~block =
  if engine = "engine" then begin
    let machine = Vc_mem.Machine.find "e5" in
    let r =
      match strategy with
      | "bfs" -> Sweep.bfs_only ctx entry machine
      | "noreexp" -> Sweep.hybrid ctx entry machine ~reexpand:false ~block
      | _ -> Sweep.hybrid ctx entry machine ~reexpand:true ~block
    in
    {
      ref_reducers = sorted_reducers r.Vc_core.Report.reducers;
      ref_tasks = r.tasks;
      ref_base = r.base_tasks;
      ref_cycles = r.cycles;
    }
  end
  else
    let r = Sweep.backend_run ctx entry ~engine ~block in
    {
      ref_reducers = sorted_reducers r.Vc_core.Backend.reducers;
      ref_tasks = r.tasks;
      ref_base = r.base_tasks;
      ref_cycles = 0.0;
    }

(* Deterministic per-request uniform value (xorshift64* of (seed, k)):
   the mix choice for request k does not depend on thread scheduling. *)
let uniform ~seed ~k =
  let state =
    ref
      (Int64.logor
         (Int64.of_int
            (((seed * 0x9e3779b9) lxor ((k + 1) * 0x85ebca6b)) land max_int))
         1L)
  in
  let step () =
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    x
  in
  ignore (step ());
  Int64.to_float (Int64.shift_right_logical (step ()) 11) /. 9007199254740992.0

type agg = {
  lock : Mutex.t;
  mutable a_sent : int;
  mutable a_ok : int;
  mutable a_overloaded : int;
  mutable a_budget : int;
  mutable a_rejected : int;
  mutable a_lost : int;
  mutable a_divergences : (string * string) list;
  latencies : Reservoir.t;
  hist : Histogram.t;  (* exact lifetime counts behind --latency-json *)
}

let with_agg agg f = Mutex.protect agg.lock (fun () -> f agg)

let check_reply agg (rep : Protocol.reply) (expected : reference) dt_ms =
  Reservoir.add agg.latencies dt_ms;
  Histogram.add agg.hist dt_ms;
  match rep.r_status with
  | Protocol.Ok_ ->
      let got = sorted_reducers rep.r_reducers in
      if
        got = expected.ref_reducers
        && rep.r_tasks = expected.ref_tasks
        && rep.r_base_tasks = expected.ref_base
      then with_agg agg (fun a -> a.a_ok <- a.a_ok + 1)
      else
        let detail =
          Printf.sprintf
            "reducers/tasks mismatch: got %s tasks=%d base=%d, want %s \
             tasks=%d base=%d"
            (J.to_string
               (J.Obj (List.map (fun (k, v) -> (k, J.Int v)) got)))
            rep.r_tasks rep.r_base_tasks
            (J.to_string
               (J.Obj
                  (List.map (fun (k, v) -> (k, J.Int v)) expected.ref_reducers)))
            expected.ref_tasks expected.ref_base
        in
        with_agg agg (fun a ->
            a.a_ok <- a.a_ok + 1;
            a.a_divergences <- (rep.r_id, detail) :: a.a_divergences)
  | Protocol.Overloaded ->
      with_agg agg (fun a -> a.a_overloaded <- a.a_overloaded + 1)
  | Protocol.Budget_limit ->
      with_agg agg (fun a -> a.a_budget <- a.a_budget + 1)
  | _ -> with_agg agg (fun a -> a.a_rejected <- a.a_rejected + 1)

let reply_max_frame = 1 lsl 20

(* One connection's worth of the open-loop schedule: requests k = i, i+C,
   i+2C, ... each sent at t0 + k/rps, replies consumed between sends. *)
let conn_thread ~connect ~agg ~choose ~t0 ~rps ~n ~stride ~first ~t_grace () =
  let pending : (string, float * reference) Hashtbl.t = Hashtbl.create 64 in
  let next = ref first in
  let abandon () =
    (* connection is unusable: every outstanding and unsent request on
       this socket counts lost — a crash-detection signal, not noise *)
    let unsent = if !next >= n then 0 else ((n - 1 - !next) / stride) + 1 in
    with_agg agg (fun a -> a.a_lost <- a.a_lost + Hashtbl.length pending + unsent);
    next := n;
    Hashtbl.reset pending
  in
  match connect () with
  | exception exn ->
      Log.warn (fun m -> m "connect failed: %s" (Printexc.to_string exn));
      abandon ()
  | fd ->
      let reader = Protocol.reader fd in
      let handle_line line now =
        match Protocol.parse_reply line with
        | Error msg ->
            with_agg agg (fun a ->
                a.a_divergences <- ("<frame>", msg) :: a.a_divergences)
        | Ok rep -> (
            match Hashtbl.find_opt pending rep.r_id with
            | None -> ()  (* unsolicited notice (drain/timeout, id "") *)
            | Some (t_send, expected) ->
                Hashtbl.remove pending rep.r_id;
                check_reply agg rep expected ((now -. t_send) *. 1000.0))
      in
      let rec step () =
        let now = Unix.gettimeofday () in
        if !next >= n && Hashtbl.length pending = 0 then ()
        else if now > t_grace then abandon ()
        else if !next < n && now >= t0 +. (float_of_int !next /. rps) then begin
          let k = !next in
          next := k + stride;
          let req, rref = choose k in
          (match Protocol.write_line fd (Protocol.request_line req) with
          | () ->
              Hashtbl.replace pending req.Protocol.id (now, rref);
              with_agg agg (fun a -> a.a_sent <- a.a_sent + 1)
          | exception (Unix.Unix_error _ | Sys_error _) -> abandon ());
          step ()
        end
        else begin
          let until_send =
            if !next < n then
              Float.max 0.001 (t0 +. (float_of_int !next /. rps) -. now)
            else 0.05
          in
          let timeout = Float.min until_send 0.05 in
          match
            Protocol.read_frame ~timeout ~max_frame:reply_max_frame reader
          with
          | Protocol.Frame line ->
              handle_line line (Unix.gettimeofday ());
              step ()
          | Protocol.Timeout_frame -> step ()
          | Protocol.Eof | Protocol.Oversized -> abandon ()
        end
      in
      step ();
      (try Unix.close fd with Unix.Unix_error _ -> ())

let fetch_stats ~connect =
  match connect () with
  | exception _ -> None
  | fd ->
      let line =
        match Protocol.write_line fd "/stats" with
        | () -> (
            match
              Protocol.read_frame ~timeout:5.0 ~max_frame:reply_max_frame
                (Protocol.reader fd)
            with
            | Protocol.Frame l -> Some l
            | _ -> None)
        | exception (Unix.Unix_error _ | Sys_error _) -> None
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      line

(* [/metrics] replies are multi-line Prometheus text terminated by the
   "# EOF" sentinel; read frames until it (or a timeout) arrives. *)
let fetch_metrics ~connect =
  match connect () with
  | exception _ -> None
  | fd ->
      let body =
        match Protocol.write_line fd "/metrics" with
        | () ->
            let reader = Protocol.reader fd in
            let buf = Buffer.create 4096 in
            let rec loop () =
              match
                Protocol.read_frame ~timeout:5.0 ~max_frame:reply_max_frame
                  reader
              with
              | Protocol.Frame l when String.trim l = "# EOF" ->
                  Buffer.add_string buf l;
                  Some (Buffer.contents buf)
              | Protocol.Frame l ->
                  Buffer.add_string buf l;
                  Buffer.add_char buf '\n';
                  loop ()
              | Protocol.Timeout_frame | Protocol.Eof | Protocol.Oversized ->
                  if Buffer.length buf = 0 then None
                  else Some (Buffer.contents buf)
            in
            loop ()
        | exception (Unix.Unix_error _ | Sys_error _) -> None
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      body

(* One summary shape for both the end-of-run path and the signal-flush
   partial path, so an interrupted run's artifact has the same schema. *)
let summarize agg ~stats_line =
  let count = Histogram.count agg.hist in
  {
    sent = agg.a_sent;
    ok = agg.a_ok;
    overloaded = agg.a_overloaded;
    budget_exceeded = agg.a_budget;
    rejected = agg.a_rejected;
    lost = agg.a_lost;
    divergences = List.rev agg.a_divergences;
    p50_ms = Reservoir.quantile agg.latencies 0.5;
    p99_ms = Reservoir.quantile agg.latencies 0.99;
    p999_ms = Histogram.quantile agg.hist 0.999;
    mean_ms =
      (if count = 0 then 0.0
       else Histogram.sum agg.hist /. float_of_int count);
    max_ms = Reservoir.max_value agg.latencies;
    latency = agg.hist;
    stats_line;
  }

type profile = {
  pr_rps : float;
  pr_duration : float;
  pr_mix : string;
  pr_engine : string;
  pr_connections : int;
  pr_quick : bool;
}

(* The BENCH_serve.json artifact: the loadgen profile (so a baseline
   comparison can refuse apples-to-oranges), headline percentiles from
   the client-side histogram, and the histogram itself. *)
let latency_json ~(profile : profile) (s : summary) =
  let hist =
    match J.parse (Histogram.to_json_string s.latency) with
    | Ok j -> j
    | Error msg -> J.decode_error "loadgen histogram JSON: %s" msg
  in
  J.Obj
    [
      ("version", J.Int 1);
      ( "profile",
        J.Obj
          [
            ("rps", J.Float profile.pr_rps);
            ("duration_s", J.Float profile.pr_duration);
            ("mix", J.String profile.pr_mix);
            ("engine", J.String profile.pr_engine);
            ("connections", J.Int profile.pr_connections);
            ("quick", J.Bool profile.pr_quick);
          ] );
      ("sent", J.Int s.sent);
      ("ok", J.Int s.ok);
      ("overloaded", J.Int s.overloaded);
      ("budget_exceeded", J.Int s.budget_exceeded);
      ("rejected", J.Int s.rejected);
      ("lost", J.Int s.lost);
      ("divergences", J.Int (List.length s.divergences));
      ("p50_ms", J.Float s.p50_ms);
      ("p99_ms", J.Float s.p99_ms);
      ("p999_ms", J.Float s.p999_ms);
      ("mean_ms", J.Float s.mean_ms);
      ("max_ms", J.Float s.max_ms);
      ("histogram", hist);
    ]

let run ~connect ~rps ~duration ~mix ?(engine = "engine")
    ?(strategy = "reexp") ?(block = 4096) ?deadline_frac ?(delay_ms = 0)
    ?(connections = 4) ?(seed = 1) ?(grace = 30.0)
    ?(workload_dirs = [ "examples/dsl"; "test/corpus" ]) ?on_snapshot ~quick
    () =
  if rps <= 0.0 then invalid_arg "Loadgen.run: rps must be positive";
  if duration <= 0.0 then invalid_arg "Loadgen.run: duration must be positive";
  let ctx = Sweep.create ~quick ~cache_dir:None () in
  match
    List.map
      (fun (name, w) ->
        match Registry.resolve ~dirs:workload_dirs name with
        | Error e -> raise (E.Error e)
        | Ok entry ->
            (name, w, reference_of ctx entry ~engine ~strategy ~block))
      mix
  with
  | exception E.Error e -> Error e
  | refs ->
      let total_weight =
        List.fold_left (fun acc (_, w, _) -> acc + w) 0 refs
      in
      let pick k =
        let u = uniform ~seed ~k in
        let target = u *. float_of_int total_weight in
        let rec go acc = function
          | [] -> List.nth refs (List.length refs - 1)
          | ((_, w, _) as r) :: rest ->
              let acc = acc +. float_of_int w in
              if target < acc then r else go acc rest
        in
        go 0.0 refs
      in
      let n = Stdlib.max 1 (int_of_float (rps *. duration)) in
      let stride = Stdlib.max 1 (Stdlib.min connections n) in
      let agg =
        {
          lock = Mutex.create ();
          a_sent = 0;
          a_ok = 0;
          a_overloaded = 0;
          a_budget = 0;
          a_rejected = 0;
          a_lost = 0;
          a_divergences = [];
          latencies = Reservoir.create ~capacity:8192;
          hist = Histogram.create ();
        }
      in
      (* hand the caller a live partial-summary thunk before any thread
         starts, so a signal handler can flush whatever has completed *)
      (match on_snapshot with
      | Some register -> register (fun () -> summarize agg ~stats_line:None)
      | None -> ());
      let t0 = Unix.gettimeofday () in
      let t_grace = t0 +. (float_of_int n /. rps) +. grace in
      let choose i k =
        let name, _, rref = pick k in
        let deadline =
          match deadline_frac with
          | Some f when engine = "engine" -> Some (f *. rref.ref_cycles)
          | _ -> None
        in
        ( {
            (Protocol.run_request ~bench:name) with
            id = Printf.sprintf "c%d-%d" i k;
            engine;
            strategy;
            block;
            deadline;
            delay_ms;
          },
          rref )
      in
      let threads =
        List.init stride (fun i ->
            Thread.create
              (conn_thread ~connect ~agg ~choose:(choose i) ~t0 ~rps ~n
                 ~stride ~first:i ~t_grace)
              ())
      in
      List.iter Thread.join threads;
      let stats_line = fetch_stats ~connect in
      Ok (summarize agg ~stats_line)
