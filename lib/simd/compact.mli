(** Stream compaction engines (paper §5, Fig. 8, Fig. 16).

    Stream compaction stably partitions the threads of a block into those
    taking the base-case branch and those taking the recursive branch, so
    each group can then be executed with unmasked vector instructions.  Four
    engines implement the same partition with different cost profiles:

    - {!Sequential}: the scalar loop — the baseline the paper's Fig. 16
      compares against ("no sc").
    - {!Full_table}: one [2^w]-entry shuffle-table lookup plus one shuffle
      per register (needs [Isa.has_shuffle]).
    - {!Factorized}: the paper's contribution — [w]-wide compaction from
      [s]-wide sub-tables ([s | w]) combined through the advance table;
      [w/s] lookups+shuffles per register instead of one, for a [2^(w-s)]×
      smaller table.  The paper uses 8-wide tables for 16-wide compaction.
    - {!Prefix_scatter}: the Xeon Phi path — prefix-sum table plus masked
      scatter (needs [Isa.has_masked_scatter]), also factorizable.

    All engines produce identical output (tested by property tests); they
    differ only in the instructions charged to the {!Vm}. *)

type engine =
  | Sequential
  | Full_table
  | Factorized of { sub_width : int }
  | Prefix_scatter of { sub_width : int }

exception Unsupported of { engine : string; isa : string; reason : string }
(** Raised by {!partition} when the requested engine cannot run on the
    VM's ISA (or its parameters are inconsistent).  Typed so supervised
    executors can catch it and fall back to the scalar partition instead
    of dying on an untyped [Invalid_argument]. *)

val name : engine -> string

val default_for : Isa.t -> width:int -> engine
(** The engine the paper uses on each platform: factorized 8-wide shuffle
    tables on SSE4.2 (full table when [width <= 8]), prefix-sum + masked
    scatter on AVX512/IMCI. *)

val legal : Isa.t -> engine -> bool
(** Whether the ISA has the instructions the engine needs. *)

val table_memory_bytes : engine -> width:int -> int
(** Modeled table footprint — the space/time trade-off of §5. *)

val partition :
  vm:Vm.t ->
  engine:engine ->
  width:int ->
  n:int ->
  pred:(int -> bool) ->
  int array * int array
(** [partition ~vm ~engine ~width ~n ~pred] splits the stream [0..n-1] into
    [(sel, rest)] — indices where [pred] holds and where it does not, both
    in stream order (stable).  Charges the engine's instructions to [vm];
    the predicate evaluation itself is charged by the caller (it is the
    vectorized [isBase] loop).  Also tallies [Stats.compaction_calls] (one
    per non-empty partition) and [Stats.compaction_passes] (one per
    sub-group pass of the table-driven engines; zero for {!Sequential}) so
    the telemetry layer can report per-partition pass counts.  Raises
    {!Unsupported} for an engine the VM's ISA cannot execute or a
    [sub_width] that does not divide [width]. *)
