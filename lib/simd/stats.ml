type t = {
  mutable scalar_ops : int;
  mutable vector_ops : int;
  mutable lane_slots : int;
  mutable active_lanes : int;
  mutable vector_loads : int;
  mutable vector_stores : int;
  mutable scalar_loads : int;
  mutable scalar_stores : int;
  mutable gathers : int;
  mutable scatters : int;
  mutable shuffles : int;
  mutable table_lookups : int;
  mutable full_tasks : int;
  mutable epilog_tasks : int;
  mutable compaction_calls : int;
  mutable compaction_passes : int;
}

let create () =
  {
    scalar_ops = 0;
    vector_ops = 0;
    lane_slots = 0;
    active_lanes = 0;
    vector_loads = 0;
    vector_stores = 0;
    scalar_loads = 0;
    scalar_stores = 0;
    gathers = 0;
    scatters = 0;
    shuffles = 0;
    table_lookups = 0;
    full_tasks = 0;
    epilog_tasks = 0;
    compaction_calls = 0;
    compaction_passes = 0;
  }

let reset t =
  t.scalar_ops <- 0;
  t.vector_ops <- 0;
  t.lane_slots <- 0;
  t.active_lanes <- 0;
  t.vector_loads <- 0;
  t.vector_stores <- 0;
  t.scalar_loads <- 0;
  t.scalar_stores <- 0;
  t.gathers <- 0;
  t.scatters <- 0;
  t.shuffles <- 0;
  t.table_lookups <- 0;
  t.full_tasks <- 0;
  t.epilog_tasks <- 0;
  t.compaction_calls <- 0;
  t.compaction_passes <- 0

let copy t = { t with scalar_ops = t.scalar_ops }

let add acc x =
  acc.scalar_ops <- acc.scalar_ops + x.scalar_ops;
  acc.vector_ops <- acc.vector_ops + x.vector_ops;
  acc.lane_slots <- acc.lane_slots + x.lane_slots;
  acc.active_lanes <- acc.active_lanes + x.active_lanes;
  acc.vector_loads <- acc.vector_loads + x.vector_loads;
  acc.vector_stores <- acc.vector_stores + x.vector_stores;
  acc.scalar_loads <- acc.scalar_loads + x.scalar_loads;
  acc.scalar_stores <- acc.scalar_stores + x.scalar_stores;
  acc.gathers <- acc.gathers + x.gathers;
  acc.scatters <- acc.scatters + x.scatters;
  acc.shuffles <- acc.shuffles + x.shuffles;
  acc.table_lookups <- acc.table_lookups + x.table_lookups;
  acc.full_tasks <- acc.full_tasks + x.full_tasks;
  acc.epilog_tasks <- acc.epilog_tasks + x.epilog_tasks;
  acc.compaction_calls <- acc.compaction_calls + x.compaction_calls;
  acc.compaction_passes <- acc.compaction_passes + x.compaction_passes

let diff after before =
  {
    scalar_ops = after.scalar_ops - before.scalar_ops;
    vector_ops = after.vector_ops - before.vector_ops;
    lane_slots = after.lane_slots - before.lane_slots;
    active_lanes = after.active_lanes - before.active_lanes;
    vector_loads = after.vector_loads - before.vector_loads;
    vector_stores = after.vector_stores - before.vector_stores;
    scalar_loads = after.scalar_loads - before.scalar_loads;
    scalar_stores = after.scalar_stores - before.scalar_stores;
    gathers = after.gathers - before.gathers;
    scatters = after.scatters - before.scatters;
    shuffles = after.shuffles - before.shuffles;
    table_lookups = after.table_lookups - before.table_lookups;
    full_tasks = after.full_tasks - before.full_tasks;
    epilog_tasks = after.epilog_tasks - before.epilog_tasks;
    compaction_calls = after.compaction_calls - before.compaction_calls;
    compaction_passes = after.compaction_passes - before.compaction_passes;
  }

let lane_occupancy t =
  if t.lane_slots = 0 then 1.0
  else float_of_int t.active_lanes /. float_of_int t.lane_slots

let simd_utilization t =
  let total = t.full_tasks + t.epilog_tasks in
  if total = 0 then 1.0 else float_of_int t.full_tasks /. float_of_int total

let total_ops t = t.scalar_ops + t.vector_ops

let pp fmt t =
  Format.fprintf fmt
    "@[<v>scalar ops   %d@,vector ops   %d@,lane occ.    %.3f@,simd util.   \
     %.3f@,vloads/vstores %d/%d@,gathers/scatters %d/%d@,shuffles %d, table \
     lookups %d@]"
    t.scalar_ops t.vector_ops (lane_occupancy t) (simd_utilization t)
    t.vector_loads t.vector_stores t.gathers t.scatters t.shuffles
    t.table_lookups
