(** The accounting vector machine.

    OCaml cannot issue real SIMD instructions, so executors route every
    modeled instruction through this machine: it tallies {!Stats}, converts
    them to issue cycles with the {!Isa} cost table, and reports every
    memory access to an optional hook (wired to the cache simulator by the
    engine).  The semantic computation itself runs as ordinary OCaml; the
    VM is the measurement plane (see DESIGN.md §2). *)

type access = { addr : int; bytes : int; write : bool }

type t

val create : ?on_access:(access -> unit) -> Isa.t -> t

val isa : t -> Isa.t
val stats : t -> Stats.t

val snapshot : t -> Stats.t
(** An independent copy of the current counters — diff two snapshots with
    {!Stats.diff} to attribute instructions to a region (the telemetry
    layer does this per block level). *)

val set_on_access : t -> (access -> unit) option -> unit

(** {1 Compute instructions} *)

val scalar_ops : t -> int -> unit
(** Issue [n] scalar ALU instructions. *)

val vector_op : t -> width:int -> active:int -> unit
(** Issue one vector instruction of [width] lanes, [active] of them doing
    useful work. *)

val batch : t -> ?classify:bool -> width:int -> n:int -> insns_per_task:int -> unit -> unit
(** Model a dense vectorized loop over [n] independent tasks, each needing
    [insns_per_task] instructions: [ceil(n/width) * insns_per_task] vector
    instructions.  With [classify:true] (default false) the tasks are also
    tallied for the Fig. 10 utilization metric: those in full-width groups
    count toward [Stats.full_tasks], the remainder toward
    [Stats.epilog_tasks].  Executors classify each task exactly once per
    tree level (at the batch where its case body runs). *)

(** {1 Memory instructions}

    Loads and stores are also issued as instructions (they increment the
    scalar/vector op counters) and are reported to the access hook with
    their modeled address and size. *)

val scalar_load : t -> addr:int -> bytes:int -> unit
val scalar_store : t -> addr:int -> bytes:int -> unit

val vector_load : t -> addr:int -> lanes:int -> lane_bytes:int -> unit
(** Packed (contiguous) vector load of [lanes * lane_bytes] bytes. *)

val vector_store : t -> addr:int -> lanes:int -> lane_bytes:int -> unit

val gather : t -> addrs:int array -> lane_bytes:int -> unit
(** Strided/indexed vector load; each lane's address is reported
    separately and the extra [Isa.gather_cost] is charged. *)

val scatter : t -> addrs:int array -> lane_bytes:int -> unit

(** {1 Compaction primitives} *)

val shuffle : t -> width:int -> unit
(** One in-register shuffle.  Raises [Invalid_argument] if the ISA has no
    shuffle instruction — callers must pick a legal engine. *)

val masked_scatter : t -> width:int -> active:int -> lane_bytes:int -> addr:int -> unit
(** Masked scatter of [active] of [width] lanes to a contiguous run starting
    at [addr] (the compaction output position).  Requires
    [Isa.has_masked_scatter]. *)

val table_lookup : t -> addr:int -> bytes:int -> unit
(** One shuffle/advance/prefix table read: a scalar load from table memory. *)

(** {1 Cost} *)

val issue_cycles : t -> float
(** Cycles attributable to instruction issue under the ISA cost table
    (memory-hierarchy penalties are added by [Vc_mem.Cost]). *)
