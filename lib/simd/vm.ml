type access = { addr : int; bytes : int; write : bool }

type t = {
  isa : Isa.t;
  stats : Stats.t;
  mutable on_access : (access -> unit) option;
}

let create ?on_access isa = { isa; stats = Stats.create (); on_access }

let isa t = t.isa
let stats t = t.stats
let snapshot t = Stats.copy t.stats
let set_on_access t hook = t.on_access <- hook

let report t addr bytes write =
  match t.on_access with
  | None -> ()
  | Some f -> f { addr; bytes; write }

let scalar_ops t n = t.stats.scalar_ops <- t.stats.scalar_ops + n

let vector_op t ~width ~active =
  t.stats.vector_ops <- t.stats.vector_ops + 1;
  t.stats.lane_slots <- t.stats.lane_slots + width;
  t.stats.active_lanes <- t.stats.active_lanes + active

let batch t ?(classify = false) ~width ~n ~insns_per_task () =
  if n > 0 then begin
    if insns_per_task > 0 then begin
      let groups = (n + width - 1) / width in
      t.stats.vector_ops <- t.stats.vector_ops + (groups * insns_per_task);
      t.stats.lane_slots <- t.stats.lane_slots + (groups * width * insns_per_task);
      t.stats.active_lanes <- t.stats.active_lanes + (n * insns_per_task)
    end;
    if classify then begin
      t.stats.full_tasks <- t.stats.full_tasks + (n / width * width);
      t.stats.epilog_tasks <- t.stats.epilog_tasks + (n mod width)
    end
  end

let scalar_load t ~addr ~bytes =
  t.stats.scalar_ops <- t.stats.scalar_ops + 1;
  t.stats.scalar_loads <- t.stats.scalar_loads + 1;
  report t addr bytes false

let scalar_store t ~addr ~bytes =
  t.stats.scalar_ops <- t.stats.scalar_ops + 1;
  t.stats.scalar_stores <- t.stats.scalar_stores + 1;
  report t addr bytes true

let vector_load t ~addr ~lanes ~lane_bytes =
  vector_op t ~width:lanes ~active:lanes;
  t.stats.vector_loads <- t.stats.vector_loads + 1;
  report t addr (lanes * lane_bytes) false

let vector_store t ~addr ~lanes ~lane_bytes =
  vector_op t ~width:lanes ~active:lanes;
  t.stats.vector_stores <- t.stats.vector_stores + 1;
  report t addr (lanes * lane_bytes) true

let gather t ~addrs ~lane_bytes =
  let lanes = Array.length addrs in
  vector_op t ~width:lanes ~active:lanes;
  t.stats.gathers <- t.stats.gathers + 1;
  Array.iter (fun addr -> report t addr lane_bytes false) addrs

let scatter t ~addrs ~lane_bytes =
  let lanes = Array.length addrs in
  vector_op t ~width:lanes ~active:lanes;
  t.stats.scatters <- t.stats.scatters + 1;
  Array.iter (fun addr -> report t addr lane_bytes true) addrs

let shuffle t ~width =
  if not t.isa.Isa.has_shuffle then
    invalid_arg
      (Printf.sprintf "Vm.shuffle: ISA %s has no shuffle instruction" t.isa.Isa.name);
  vector_op t ~width ~active:width;
  t.stats.shuffles <- t.stats.shuffles + 1

let masked_scatter t ~width ~active ~lane_bytes ~addr =
  if not t.isa.Isa.has_masked_scatter then
    invalid_arg
      (Printf.sprintf "Vm.masked_scatter: ISA %s has no masked scatter" t.isa.Isa.name);
  vector_op t ~width ~active;
  t.stats.scatters <- t.stats.scatters + 1;
  report t addr (active * lane_bytes) true

let table_lookup t ~addr ~bytes =
  t.stats.table_lookups <- t.stats.table_lookups + 1;
  scalar_load t ~addr ~bytes

let issue_cycles t =
  let s = t.stats in
  let f = float_of_int in
  (f s.scalar_ops *. t.isa.Isa.scalar_issue)
  +. (f s.vector_ops *. t.isa.Isa.vector_issue)
  +. (f s.gathers *. t.isa.Isa.gather_cost)
  +. (f s.scatters *. t.isa.Isa.scatter_cost)
