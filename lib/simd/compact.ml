type engine =
  | Sequential
  | Full_table
  | Factorized of { sub_width : int }
  | Prefix_scatter of { sub_width : int }

exception Unsupported of { engine : string; isa : string; reason : string }

let name = function
  | Sequential -> "sequential"
  | Full_table -> "full-table"
  | Factorized { sub_width } -> Printf.sprintf "factorized-%d" sub_width
  | Prefix_scatter { sub_width } -> Printf.sprintf "prefix-scatter-%d" sub_width

let default_for (isa : Isa.t) ~width =
  if isa.Isa.has_shuffle then
    if width <= 8 then Full_table else Factorized { sub_width = 8 }
  else Prefix_scatter { sub_width = min width 8 }

let legal (isa : Isa.t) = function
  | Sequential -> true
  | Full_table | Factorized _ -> isa.Isa.has_shuffle
  | Prefix_scatter _ -> isa.Isa.has_masked_scatter

(* Tables live in a fixed, small region of the modeled address space; they
   are hot and tiny, so they cache well — exactly the paper's argument for
   tabulating the shuffle controls. *)
let table_region_base = 0x1000_0000

(* The memo tables are shared across every engine instance and, with the
   domain-parallel sweep executor, across domains.  All access goes through
   [tables_lock]: lookups are rare (once per [partition] call, not per
   chunk) and the tables themselves are immutable after construction, so a
   single mutex both prevents racing [Hashtbl.add]s and publishes the
   freshly built table to other domains. *)
let tables_lock = Mutex.create ()
let shuffle_tables : (int, Shuffle_table.t) Hashtbl.t = Hashtbl.create 8
let prefix_tables : (int, Prefix_table.t) Hashtbl.t = Hashtbl.create 8

let shuffle_table width =
  Mutex.protect tables_lock @@ fun () ->
  match Hashtbl.find_opt shuffle_tables width with
  | Some t -> t
  | None ->
      let t = Shuffle_table.make ~width in
      Hashtbl.add shuffle_tables width t;
      t

let prefix_table width =
  Mutex.protect tables_lock @@ fun () ->
  match Hashtbl.find_opt prefix_tables width with
  | Some t -> t
  | None ->
      let t = Prefix_table.make ~width in
      Hashtbl.add prefix_tables width t;
      t

let table_memory_bytes engine ~width =
  match engine with
  | Sequential -> 0
  | Full_table -> Shuffle_table.memory_bytes (shuffle_table width)
  | Factorized { sub_width } -> Shuffle_table.memory_bytes (shuffle_table sub_width)
  | Prefix_scatter { sub_width } -> Prefix_table.memory_bytes (prefix_table sub_width)

let check_sub_width engine ~isa ~width ~sub_width =
  if sub_width < 1 || sub_width > width || width mod sub_width <> 0 then
    raise
      (Unsupported
         {
           engine = name engine;
           isa;
           reason =
             Printf.sprintf "Compact: sub_width %d must divide width %d" sub_width
               width;
         })

(* Stable partition with a plain scalar loop: one compare + one store per
   element. *)
let sequential ~vm ~n ~pred =
  let sel = ref [] and rest = ref [] in
  for i = n - 1 downto 0 do
    Vm.scalar_ops vm 2;
    if pred i then sel := i :: !sel else rest := i :: !rest
  done;
  (Array.of_list !sel, Array.of_list !rest)

(* Shared chunked driver for the table-based engines.  The stream is
   processed [width] lanes at a time; [compact_side] appends one side
   (selected or unselected lanes) of one chunk.  Lane predicates are kept
   as a boolean array so registers wider than the native int (e.g. the
   64-wide char lanes of AVX512BW) work; each engine extracts the
   sub-group masks it needs, which are at most 16 bits. *)
let chunked ~width ~n ~pred ~compact_side =
  let sel = Array.make n 0 and rest = Array.make n 0 in
  let nsel = ref 0 and nrest = ref 0 in
  let lanes = Array.make width 0 in
  let keeps = Array.make width false in
  let base = ref 0 in
  while !base < n do
    let chunk = min width (n - !base) in
    for i = 0 to chunk - 1 do
      lanes.(i) <- !base + i;
      keeps.(i) <- pred (!base + i)
    done;
    (* Lanes beyond [chunk] (final partial register) are inactive on both
       sides. *)
    for i = chunk to width - 1 do
      keeps.(i) <- false
    done;
    nsel := compact_side ~lanes ~keeps ~chunk ~want:true ~dst:sel ~pos:!nsel;
    nrest := compact_side ~lanes ~keeps ~chunk ~want:false ~dst:rest ~pos:!nrest;
    base := !base + width
  done;
  (Array.sub sel 0 !nsel, Array.sub rest 0 !nrest)

(* Mask bits of sub-group [g] (width [sub_width]) for the lanes whose
   predicate equals [want], restricted to the live [chunk]. *)
let sub_group_mask ~keeps ~chunk ~sub_width ~want g =
  let m = ref 0 in
  for i = 0 to sub_width - 1 do
    let lane = (g * sub_width) + i in
    if lane < chunk && keeps.(lane) = want then m := !m lor (1 lsl i)
  done;
  !m

(* Factorized shuffle compaction: split the register into [width/sub]
   sub-groups; per sub-group one shuffle-table lookup, one advance-table
   lookup and one shuffle, appending at the running position (Fig. 8).
   Only the table reads are traced to memory; the data movement of the
   reordered threads is charged by the block manager that consumes the
   permutation. *)
let shuffle_side ~vm ~width ~sub_width =
  let table = shuffle_table sub_width in
  let groups = width / sub_width in
  fun ~lanes ~keeps ~chunk ~want ~dst ~pos ->
    let p = ref pos in
    for g = 0 to groups - 1 do
      let m = sub_group_mask ~keeps ~chunk ~sub_width ~want g in
      (Vm.stats vm).Stats.compaction_passes <- (Vm.stats vm).Stats.compaction_passes + 1;
      Vm.table_lookup vm
        ~addr:(table_region_base + (m * (sub_width + 1)))
        ~bytes:(sub_width + 1);
      (* advance-table read is adjacent to the shuffle control *)
      Vm.table_lookup vm ~addr:(table_region_base + (m * (sub_width + 1)) + sub_width) ~bytes:1;
      Vm.shuffle vm ~width;
      let control = Shuffle_table.shuffle_control table m in
      let cnt = Shuffle_table.advance table m in
      for i = 0 to cnt - 1 do
        dst.(!p + i) <- lanes.((g * sub_width) + control.(i))
      done;
      p := !p + cnt
    done;
    !p

(* Prefix-sum + masked-scatter compaction (Phi path). *)
let prefix_side ~vm ~width ~sub_width =
  let table = prefix_table sub_width in
  let groups = width / sub_width in
  fun ~lanes ~keeps ~chunk ~want ~dst ~pos ->
    let p = ref pos in
    for g = 0 to groups - 1 do
      let m = sub_group_mask ~keeps ~chunk ~sub_width ~want g in
      (Vm.stats vm).Stats.compaction_passes <- (Vm.stats vm).Stats.compaction_passes + 1;
      Vm.table_lookup vm
        ~addr:(table_region_base + 0x10000 + (m * (sub_width + 1)))
        ~bytes:(sub_width + 1);
      let off = Prefix_table.offsets table m in
      let cnt = Prefix_table.advance table m in
      if cnt > 0 then begin
        (* the masked scatter instruction itself; its stores land in the
           compacted output block, charged by the block manager *)
        Vm.vector_op vm ~width ~active:cnt;
        (Vm.stats vm).Stats.scatters <- (Vm.stats vm).Stats.scatters + 1
      end;
      for lane = 0 to sub_width - 1 do
        if m land (1 lsl lane) <> 0 then
          dst.(!p + off.(lane)) <- lanes.((g * sub_width) + lane)
      done;
      p := !p + cnt
    done;
    !p

let partition ~vm ~engine ~width ~n ~pred =
  let isa_name = (Vm.isa vm).Isa.name in
  let unsupported reason =
    raise (Unsupported { engine = name engine; isa = isa_name; reason })
  in
  if width < 1 then unsupported "Compact.partition: width must be positive";
  if not (legal (Vm.isa vm) engine) then
    unsupported
      (Printf.sprintf "Compact.partition: engine %s is illegal on ISA %s"
         (name engine) isa_name);
  if n = 0 then ([||], [||])
  else begin
    (Vm.stats vm).Stats.compaction_calls <- (Vm.stats vm).Stats.compaction_calls + 1;
    match engine with
    | Sequential -> sequential ~vm ~n ~pred
    | Full_table ->
        if width > 16 then
          unsupported "Compact.partition: full table limited to width 16";
        chunked ~width ~n ~pred
          ~compact_side:(shuffle_side ~vm ~width ~sub_width:width)
    | Factorized { sub_width } ->
        check_sub_width engine ~isa:isa_name ~width ~sub_width;
        chunked ~width ~n ~pred ~compact_side:(shuffle_side ~vm ~width ~sub_width)
    | Prefix_scatter { sub_width } ->
        check_sub_width engine ~isa:isa_name ~width ~sub_width;
        chunked ~width ~n ~pred ~compact_side:(prefix_side ~vm ~width ~sub_width)
  end
