(** Instruction and lane-occupancy counters for the simulated vector machine.

    These are the software equivalent of the hardware counters the paper
    reads with VTune: they power the SIMD-utilization figures (Fig. 10), the
    opportunity analysis (Table 3), and the cycle model behind every speedup
    number. *)

type t = {
  mutable scalar_ops : int;  (** scalar instructions issued *)
  mutable vector_ops : int;  (** vector instructions issued *)
  mutable lane_slots : int;  (** total lane slots of all vector ops *)
  mutable active_lanes : int;  (** lane slots that did useful work *)
  mutable vector_loads : int;
  mutable vector_stores : int;
  mutable scalar_loads : int;
  mutable scalar_stores : int;
  mutable gathers : int;
  mutable scatters : int;
  mutable shuffles : int;
  mutable table_lookups : int;  (** shuffle/advance/prefix table reads *)
  mutable full_tasks : int;  (** tasks executed in full-width SIMD groups *)
  mutable epilog_tasks : int;  (** tasks executed in partial (epilog) groups *)
  mutable compaction_calls : int;  (** stream-compaction partitions performed *)
  mutable compaction_passes : int;
      (** per-sub-group compaction passes (table lookup + shuffle or
          prefix-sum + scatter) across all partitions; the telemetry layer
          reports the per-partition delta *)
}

val create : unit -> t
val reset : t -> unit

val copy : t -> t

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val diff : t -> t -> t
(** [diff after before] is the counters accumulated between two snapshots. *)

val lane_occupancy : t -> float
(** [active_lanes / lane_slots] — fraction of issued lane slots that were
    useful.  1.0 when every vector op ran full. *)

val simd_utilization : t -> float
(** The paper's Fig. 10 metric: fraction of tasks executed as part of
    full-width SIMD groups, [full_tasks / (full_tasks + epilog_tasks)]. *)

val total_ops : t -> int
(** Scalar plus vector instructions. *)

val pp : Format.formatter -> t -> unit
