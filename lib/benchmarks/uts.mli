(** uts: the Unbalanced Tree Search benchmark, binomial variant (paper
    §6.1, benchmark 6; Olivier et al., LCPC'06).

    Every node counts itself into a sum reducer.  The root has [b0]
    children; every other node has [m] children with probability [q] and
    none otherwise, decided by a deterministic hash of the node's state —
    a geometric branching process run just below criticality ([q·m] close
    to 1), producing the deep, narrow, wildly unbalanced tree of Fig. 9(f).

    Substitution note (DESIGN.md §2): the original UTS derives child
    states with SHA-1; this implementation uses a 32-bit murmur-style
    finalizer ({!Rng.mix32}), preserving determinism, the int-sized node
    state (the paper's 4-wide E5 lanes), and the tree statistics. *)

type params = { b0 : int; m : int; q : float; seed : int }

val default : params

val paper : params
(** The paper's tree has 136K nodes and 1572 levels; this parameter set
    targets that scale (still feasible, just slow under the simulator). *)

val reference : params -> int
(** Sequential {e leaf} count with the same hash — the expected reducer
    value.  (The language of Fig. 2 reduces only in base cases, so the
    reducer counts leaves; the {e total} node count the paper reports is
    the engine's task count, checked against {!reference_nodes}.) *)

val reference_nodes : params -> int
(** Total node count of the same tree. *)

val spec : params -> Vc_core.Spec.t

val dsl_source : params -> string
(** DSL form using the [mix32] builtin (the same finalizer the native
    spec hashes with), with the threshold for [q] and the [m] spawn sites
    baked into the generated source. *)

val dsl : params -> Vc_lang.Ast.program * int array list
(** The parsed program plus the [b0] host-computed root frames (the root
    itself is the driver's job, as in [spec]) — run it with multi-root
    execution; the expected task count is [reference_nodes - 1]. *)
