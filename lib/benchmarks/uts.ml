type params = { b0 : int; m : int; q : float; seed : int }

let default = { b0 = 500; m = 4; q = 0.2475; seed = 57 }
let paper = { b0 = 500; m = 4; q = 0.2499; seed = 19 }

(* A node is identified by its 31-bit hash state.  [has_children state]
   draws from the hash; child [i]'s state is a fresh hash of (state, i+1). *)

let threshold_of q = int_of_float (q *. 2147483648.0)

let has_children ~q state = Rng.mix32 state 0 < threshold_of q

let child_state state i = Rng.mix32 state (i + 1)

let walk { b0; m; q; seed } =
  let nodes = ref 0 in
  let leaves = ref 0 in
  let rec visit state =
    incr nodes;
    if has_children ~q state then
      for i = 0 to m - 1 do
        visit (child_state state i)
      done
    else incr leaves
  in
  (* the root always has b0 children *)
  incr nodes;
  for i = 0 to b0 - 1 do
    visit (child_state (seed land 0x7FFFFFFF) i)
  done;
  (!nodes, !leaves)

let reference p = snd (walk p)

let reference_nodes p = fst (walk p)

(* The root is the driver's job (as in the reference UTS codes): its [b0]
   children seed the initial thread block and the kernel's spawn bound is
   [m].  The engine therefore executes [reference_nodes - 1] tasks. *)
let spec { b0; m; q; seed } =
  let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I32 [ "state" ] in
  {
    Vc_core.Spec.name = "uts";
    description =
      Printf.sprintf "UTS binomial tree (b0=%d, m=%d, q=%.4f, seed=%d)" b0 m q seed;
    schema;
    num_spawns = m;
    roots = List.init b0 (fun i -> [| child_state (seed land 0x7FFFFFFF) i |]);
    reducers = [ ("leaves", Vc_lang.Reducer.Sum) ];
    is_base =
      (fun blk row -> not (has_children ~q (Vc_core.Block.get blk ~field:0 ~row)));
    exec_base = (fun reducers _blk _row -> Vc_lang.Reducer.reduce reducers "leaves" 1);
    spawn =
      (fun blk row ~site ~dst ->
        let state = Vc_core.Block.get blk ~field:0 ~row in
        Vc_core.Block.push dst [| child_state state site |];
        true);
    insns = { check_insns = 6; base_insns = 2; inductive_insns = 2; spawn_insns = 8; scalar_insns = 8 };
  }

(* DSL version: the same tree via the [mix32] builtin (the shared
   splitmix finalizer {!Vc_lang.Builtins.mix32}, which [Rng.mix32]
   aliases), so the program hashes identically to the native spec.  The
   threshold and branching factor are baked into the generated source;
   the [b0] host-computed roots arrive as root frames. *)
let dsl_source { m; q; _ } =
  let t = threshold_of q in
  let spawns =
    List.init m (fun i ->
        Printf.sprintf "    spawn uts(mix32(state, %d));\n" (i + 1))
  in
  Printf.sprintf
    "reducer sum leaves;\n\n\
     def uts(state) =\n\
    \  if mix32(state, 0) >= %d then {\n\
    \    reduce(leaves, 1);\n\
    \  } else {\n\
     %s\
    \  }\n"
    t
    (String.concat "" spawns)

let dsl ({ b0; seed; _ } as p) =
  ( Vc_lang.Parser.parse_string (dsl_source p),
    List.init b0 (fun i -> [| child_state (seed land 0x7FFFFFFF) i |]) )
