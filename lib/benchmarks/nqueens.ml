type params = { n : int }

let default = { n = 12 }
let paper = { n = 13 }

let known_solutions =
  [| 1; 1; 0; 0; 2; 10; 4; 40; 92; 352; 724; 2680; 14200; 73712 |]

let reference { n } =
  let count = ref 0 in
  let full = (1 lsl n) - 1 in
  let rec go cols d1 d2 =
    if cols = full then incr count
    else
      let free = lnot (cols lor d1 lor d2) land full in
      let rec place free =
        if free <> 0 then begin
          let bit = free land -free in
          go (cols lor bit) ((d1 lor bit) lsl 1) ((d2 lor bit) lsr 1);
          place (free lxor bit)
        end
      in
      place free
  in
  go 0 0 0;
  !count

(* Frame: row count in field 0, then one field per board row holding the
   column of its queen (unused rows hold -1) — the char-array layout that
   gives the paper its 16-wide vectors and its cache-heavy lookups. *)
let spec { n } =
  let fields = "row" :: List.init n (fun i -> Printf.sprintf "q%d" i) in
  let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I8 fields in
  let root = Array.make (n + 1) (-1) in
  root.(0) <- 0;
  let attacks blk brow row col =
    (* does any queen in rows 0..row-1 attack (row, col)? *)
    let rec go r =
      if r >= row then false
      else
        let qc = Vc_core.Block.get blk ~field:(r + 1) ~row:brow in
        if qc = col || abs (qc - col) = row - r then true else go (r + 1)
    in
    go 0
  in
  {
    Vc_core.Spec.name = "nqueens";
    description = Printf.sprintf "%d-queens solution count" n;
    schema;
    num_spawns = n;
    roots = [ root ];
    reducers = [ ("solutions", Vc_lang.Reducer.Sum) ];
    is_base = (fun blk row -> Vc_core.Block.get blk ~field:0 ~row = n);
    exec_base =
      (fun reducers _blk _row -> Vc_lang.Reducer.reduce reducers "solutions" 1);
    spawn =
      (fun blk brow ~site ~dst ->
        let row = Vc_core.Block.get blk ~field:0 ~row:brow in
        if attacks blk brow row site then false
        else begin
          let child = Vc_core.Block.reserve dst in
          Vc_core.Block.set dst ~field:0 ~row:child (row + 1);
          for r = 0 to n - 1 do
            Vc_core.Block.set dst ~field:(r + 1) ~row:child
              (Vc_core.Block.get blk ~field:(r + 1) ~row:brow)
          done;
          Vc_core.Block.set dst ~field:(row + 1) ~row:child site;
          true
        end);
    insns =
      {
        check_insns = 2;
        base_insns = 2;
        inductive_insns = 2;
        spawn_insns = 2 + (3 * (n / 2)); scalar_insns = 3 };
  }

(* DSL version: the classic bitmask formulation — [cols] has a bit per
   occupied column, [d1]/[d2] carry the diagonal attack masks shifted one
   row per level.  One conditional spawn site per column, in column
   order, so the task tree (and the per-site block partition the blocked
   scheduler sees) is identical to [spec]'s: both spawn exactly the
   non-attacked columns of each placement, in the same order. *)
let dsl_source { n } =
  let full = (1 lsl n) - 1 in
  let spawns =
    List.init n (fun k ->
        let bit = 1 lsl k in
        Printf.sprintf
          "    if (free & %d) != 0 then {\n\
          \      spawn queens(cols | %d, ((d1 | %d) << 1), ((d2 | %d) >> 1));\n\
          \    }\n"
          bit bit bit bit)
  in
  Printf.sprintf
    "reducer sum solutions;\n\n\
     def queens(cols, d1, d2) =\n\
    \  if cols == %d then {\n\
    \    reduce(solutions, 1);\n\
    \  } else {\n\
    \    free := ((cols | d1 | d2) ^ %d) & %d;\n\
     %s\
    \  }\n"
    full full full
    (String.concat "" spawns)

let dsl p = (Vc_lang.Parser.parse_string (dsl_source p), [ 0; 0; 0 ])
