(* murmur3-style 32-bit finalizer over (state, site).  The implementation
   lives in Vc_lang.Builtins (as the "mix32" builtin) so DSL programs —
   notably the uts benchmark's blocked/compiled forms — hash exactly like
   the native spec. *)
let mix32 = Vc_lang.Builtins.mix32

let to_unit h = float_of_int (h land 0x7FFFFFFF) /. 2147483648.0

type t = { mutable state : int }

let create ~seed = { state = seed land max_int }

let next t =
  (* splitmix-style generator over OCaml's 63-bit ints (constants truncated
     to fit; quality is ample for workload generation) *)
  t.state <- (t.state + 0x1E3779B97F4A7C15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let bool t p = to_unit (next t land 0x7FFFFFFF) < p
