type entry = {
  name : string;
  description : string;
  spec : unit -> Vc_core.Spec.t;
  expected : unit -> (string * int) list;
  dsl : (quick:bool -> Vc_lang.Ast.program * int array list) option;
  sweep_blocks : int list;
}

let pows lo hi = List.init (hi - lo + 1) (fun i -> 1 lsl (lo + i))

let all =
  [
    {
      name = "knapsack";
      description = "0/1 knapsack, exhaustive, perfectly balanced tree";
      spec = (fun () -> Knapsack.spec Knapsack.default);
      expected = (fun () -> [ ("best", Knapsack.reference Knapsack.default) ]);
      dsl = None;
      sweep_blocks = pows 2 20;
    };
    {
      name = "fib";
      description = "doubly-recursive Fibonacci";
      spec = (fun () -> Fib.spec Fib.default);
      expected = (fun () -> [ ("result", Fib.reference Fib.default) ]);
      dsl =
        Some
          (fun ~quick ->
            let prog, args =
              Fib.dsl (if quick then { Fib.n = 20 } else Fib.default)
            in
            (prog, [ Array.of_list args ]));
      sweep_blocks = pows 2 18;
    };
    {
      name = "parentheses";
      description = "well-formed parenthesis strings (Catalan count)";
      spec = (fun () -> Parentheses.spec Parentheses.default);
      expected =
        (fun () -> [ ("result", Parentheses.reference Parentheses.default) ]);
      dsl =
        Some
          (fun ~quick ->
            let prog, args =
              Parentheses.dsl
                (if quick then { Parentheses.pairs = 9 } else Parentheses.default)
            in
            (prog, [ Array.of_list args ]));
      sweep_blocks = pows 2 19;
    };
    {
      name = "nqueens";
      description = "n-queens solution count";
      spec = (fun () -> Nqueens.spec Nqueens.default);
      expected = (fun () -> [ ("solutions", Nqueens.reference Nqueens.default) ]);
      dsl =
        Some
          (fun ~quick ->
            let prog, args =
              Nqueens.dsl (if quick then { Nqueens.n = 9 } else Nqueens.default)
            in
            (prog, [ Array.of_list args ]));
      sweep_blocks = pows 2 14;
    };
    {
      name = "graphcol";
      description = "proper 3-colorings of a random graph";
      spec = (fun () -> Graphcol.spec Graphcol.default);
      expected =
        (fun () -> [ ("colorings", Graphcol.reference Graphcol.default) ]);
      dsl = None;
      sweep_blocks = pows 2 16;
    };
    {
      name = "uts";
      description = "unbalanced tree search (binomial)";
      spec = (fun () -> Uts.spec Uts.default);
      expected = (fun () -> [ ("leaves", Uts.reference Uts.default) ]);
      dsl =
        Some
          (fun ~quick ->
            Uts.dsl
              (if quick then { Uts.b0 = 64; m = 4; q = 0.24; seed = 5 }
               else Uts.default));
      sweep_blocks = pows 1 12;
    };
    {
      name = "binomial";
      description = "binomial coefficient by Pascal recursion";
      spec = (fun () -> Binomial.spec Binomial.default);
      expected = (fun () -> [ ("result", Binomial.reference Binomial.default) ]);
      dsl =
        Some
          (fun ~quick ->
            let prog, args =
              Binomial.dsl
                (if quick then { Binomial.n = 16; k = 7 } else Binomial.default)
            in
            (prog, [ Array.of_list args ]));
      sweep_blocks = pows 2 18;
    };
    {
      name = "minmax";
      description = "tic-tac-toe game-tree outcome tally";
      spec = (fun () -> Minmax.spec Minmax.default);
      expected =
        (fun () ->
          let o = Minmax.reference Minmax.default in
          [
            ("x_wins", o.Minmax.x_wins);
            ("o_wins", o.Minmax.o_wins);
            ("draws", o.Minmax.draws);
          ]);
      dsl = None;
      sweep_blocks = pows 2 16;
    };
  ]

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> raise Not_found

let names = List.map (fun e -> e.name) all

(* ---- Runtime-loaded workloads: .rtp source + spec block -> entry ---- *)

type loaded = {
  entry : entry;
  quick_expected : (string * int) list;
  path : string;
}

let of_program ~name ~description ~program ~roots ~quick_roots ~expected
    ~sweep_blocks =
  let spec () =
    let args =
      match roots with
      | r :: _ -> Array.to_list r
      | [] -> invalid_arg "Registry.of_program: no roots"
    in
    let s = Vc_core.Compile.spec_of_program ~name program ~args in
    { s with Vc_core.Spec.roots }
  in
  {
    name;
    description;
    spec;
    expected = (fun () -> expected);
    dsl = Some (fun ~quick -> (program, if quick then quick_roots else roots));
    sweep_blocks;
  }

(* Load failures are data errors, not crashes: every rejection is a typed
   Vc_error in the Load phase so the CLI maps it to exit code 1 and sweeps
   survive a bad workload directory. *)
let load_error fmt =
  Printf.ksprintf
    (fun detail ->
      Error
        {
          Vc_core.Vc_error.kind =
            Vc_core.Vc_error.Fault
              { site = Vc_core.Vc_error.Decode; hint = Vc_core.Vc_error.Abort };
          phase = Vc_core.Vc_error.Load;
          detail;
        })
    fmt

let ( let* ) = Result.bind

let read_file path =
  if not (Sys.file_exists path) then
    load_error "workload %s: no such file" path
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | source -> Ok source
    | exception Sys_error msg -> load_error "workload %s: %s" path msg

let parse_source path source =
  match Vc_lang.Parser.parse_string source with
  | program -> Ok program
  | exception Vc_lang.Lexer.Error (msg, line, col) ->
      load_error "workload %s:%d:%d: lexical error: %s" path line col msg
  | exception Vc_lang.Parser.Error (msg, line, col) ->
      load_error "workload %s:%d:%d: parse error: %s" path line col msg

let check_expectations path program what pairs =
  let declared =
    List.map (fun r -> r.Vc_lang.Ast.red_name) program.Vc_lang.Ast.reducers
  in
  let rec go seen = function
    | [] -> Ok ()
    | (name, _) :: rest ->
        if not (List.mem name declared) then
          load_error
            "workload %s: %s names reducer %S, but the program declares %s" path
            what name
            (String.concat ", " declared)
        else if List.mem name seen then
          load_error "workload %s: duplicate %s for reducer %S" path what name
        else go (name :: seen) rest
  in
  go [] pairs

let check_roots path what ~arity roots =
  let rec go i = function
    | [] -> Ok ()
    | (root : int list) :: rest ->
        if List.length root <> arity then
          load_error
            "workload %s: %s root %d has %d values, but the method takes %d \
             parameters"
            path what (i + 1) (List.length root) arity
        else go (i + 1) rest
  in
  go 0 roots

let load_file path =
  let* source = read_file path in
  let* sb =
    match Vc_lang.Spec_block.parse source with
    | Ok sb -> Ok sb
    | Error errs ->
        load_error "workload %s: malformed spec block: %s" path
          (String.concat "; " errs)
  in
  let* program = parse_source path source in
  let* _info =
    match Vc_lang.Validate.check program with
    | Ok info -> Ok info
    | Error errs ->
        load_error "workload %s: invalid program: %s" path
          (String.concat "; " errs)
  in
  let name =
    match sb.Vc_lang.Spec_block.name with
    | Some n -> n
    | None -> Filename.remove_extension (Filename.basename path)
  in
  let* () =
    if name = "" || String.contains name '/' then
      load_error "workload %s: invalid workload name %S" path name
    else if List.mem name names then
      load_error "workload %s: name %S collides with a built-in benchmark" path
        name
    else Ok ()
  in
  let arity = List.length program.Vc_lang.Ast.mth.Vc_lang.Ast.params in
  let* () =
    if sb.Vc_lang.Spec_block.inputs = [] then
      load_error
        "workload %s: spec block declares no roots (add \"//! input N ...\")"
        path
    else Ok ()
  in
  let* () = check_roots path "input" ~arity sb.Vc_lang.Spec_block.inputs in
  let* () = check_roots path "quick" ~arity sb.Vc_lang.Spec_block.quick_inputs in
  let* () =
    if sb.Vc_lang.Spec_block.expect = [] then
      load_error
        "workload %s: spec block pins no reducer values (add \"//! expect \
         NAME V\")"
        path
    else Ok ()
  in
  let* () =
    check_expectations path program "expect" sb.Vc_lang.Spec_block.expect
  in
  let* () =
    check_expectations path program "quick-expect"
      sb.Vc_lang.Spec_block.quick_expect
  in
  let* () =
    if
      sb.Vc_lang.Spec_block.quick_inputs <> []
      && sb.Vc_lang.Spec_block.quick_expect = []
    then
      load_error
        "workload %s: quick roots need pinned values (add \"//! quick-expect \
         NAME V\")"
        path
    else Ok ()
  in
  let* sweep_blocks =
    match sb.Vc_lang.Spec_block.blocks with
    | None -> Ok (pows 2 12)
    | Some (lo, hi) ->
        if hi > 24 then
          load_error "workload %s: blocks %d..%d exceeds the 2^24 sweep cap"
            path lo hi
        else Ok (pows lo hi)
  in
  let roots = List.map Array.of_list sb.Vc_lang.Spec_block.inputs in
  let quick_roots, quick_expected =
    match sb.Vc_lang.Spec_block.quick_inputs with
    | [] -> (roots, sb.Vc_lang.Spec_block.expect)
    | qs -> (List.map Array.of_list qs, sb.Vc_lang.Spec_block.quick_expect)
  in
  let description =
    match sb.Vc_lang.Spec_block.description with
    | Some d -> d
    | None -> Printf.sprintf "DSL workload (%s)" path
  in
  let entry =
    of_program ~name ~description ~program ~roots ~quick_roots
      ~expected:sb.Vc_lang.Spec_block.expect ~sweep_blocks
  in
  Ok { entry; quick_expected; path }

let load_dir dir =
  let* files =
    match Sys.readdir dir with
    | files -> Ok files
    | exception Sys_error msg -> load_error "workload dir %s: %s" dir msg
  in
  let rtp =
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".rtp")
    |> List.sort String.compare
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest ->
        let* l = load_file (Filename.concat dir f) in
        if List.exists (fun l' -> l'.entry.name = l.entry.name) acc then
          load_error "workload dir %s: duplicate workload name %S (%s and %s)"
            dir l.entry.name
            (List.find (fun l' -> l'.entry.name = l.entry.name) acc).path
            l.path
        else go (l :: acc) rest
  in
  go [] rtp

let resolve ~dirs name =
  match find name with
  | e -> Ok e
  | exception Not_found ->
      if Filename.check_suffix name ".rtp" then
        let* l = load_file name in
        Ok l.entry
      else
        let candidate =
          List.find_map
            (fun dir ->
              let path = Filename.concat dir (name ^ ".rtp") in
              if Sys.file_exists path then Some path else None)
            dirs
        in
        (match candidate with
        | Some path ->
            let* l = load_file path in
            Ok l.entry
        | None -> (
            (* a spec block may rename the workload away from its
               filename: scan the directories and match by loaded name
               (files that do not load are skipped, not fatal) *)
            let by_name =
              List.find_map
                (fun dir ->
                  match Sys.readdir dir with
                  | exception Sys_error _ -> None
                  | files ->
                      Array.to_list files
                      |> List.filter (fun f -> Filename.check_suffix f ".rtp")
                      |> List.sort String.compare
                      |> List.find_map (fun f ->
                             match load_file (Filename.concat dir f) with
                             | Ok l when l.entry.name = name -> Some l.entry
                             | Ok _ | Error _ -> None))
                dirs
            in
            match by_name with
            | Some entry -> Ok entry
            | None ->
                load_error "unknown benchmark %S (built-ins: %s%s)" name
                  (String.concat "|" names)
                  (if dirs = [] then ""
                   else
                     Printf.sprintf "; searched %s" (String.concat ", " dirs))))
