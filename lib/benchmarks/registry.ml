type entry = {
  name : string;
  description : string;
  spec : unit -> Vc_core.Spec.t;
  expected : unit -> (string * int) list;
  dsl : (quick:bool -> Vc_lang.Ast.program * int array list) option;
  sweep_blocks : int list;
}

let pows lo hi = List.init (hi - lo + 1) (fun i -> 1 lsl (lo + i))

let all =
  [
    {
      name = "knapsack";
      description = "0/1 knapsack, exhaustive, perfectly balanced tree";
      spec = (fun () -> Knapsack.spec Knapsack.default);
      expected = (fun () -> [ ("best", Knapsack.reference Knapsack.default) ]);
      dsl = None;
      sweep_blocks = pows 2 20;
    };
    {
      name = "fib";
      description = "doubly-recursive Fibonacci";
      spec = (fun () -> Fib.spec Fib.default);
      expected = (fun () -> [ ("result", Fib.reference Fib.default) ]);
      dsl =
        Some
          (fun ~quick ->
            let prog, args =
              Fib.dsl (if quick then { Fib.n = 20 } else Fib.default)
            in
            (prog, [ Array.of_list args ]));
      sweep_blocks = pows 2 18;
    };
    {
      name = "parentheses";
      description = "well-formed parenthesis strings (Catalan count)";
      spec = (fun () -> Parentheses.spec Parentheses.default);
      expected =
        (fun () -> [ ("result", Parentheses.reference Parentheses.default) ]);
      dsl =
        Some
          (fun ~quick ->
            let prog, args =
              Parentheses.dsl
                (if quick then { Parentheses.pairs = 9 } else Parentheses.default)
            in
            (prog, [ Array.of_list args ]));
      sweep_blocks = pows 2 19;
    };
    {
      name = "nqueens";
      description = "n-queens solution count";
      spec = (fun () -> Nqueens.spec Nqueens.default);
      expected = (fun () -> [ ("solutions", Nqueens.reference Nqueens.default) ]);
      dsl =
        Some
          (fun ~quick ->
            let prog, args =
              Nqueens.dsl (if quick then { Nqueens.n = 9 } else Nqueens.default)
            in
            (prog, [ Array.of_list args ]));
      sweep_blocks = pows 2 14;
    };
    {
      name = "graphcol";
      description = "proper 3-colorings of a random graph";
      spec = (fun () -> Graphcol.spec Graphcol.default);
      expected =
        (fun () -> [ ("colorings", Graphcol.reference Graphcol.default) ]);
      dsl = None;
      sweep_blocks = pows 2 16;
    };
    {
      name = "uts";
      description = "unbalanced tree search (binomial)";
      spec = (fun () -> Uts.spec Uts.default);
      expected = (fun () -> [ ("leaves", Uts.reference Uts.default) ]);
      dsl =
        Some
          (fun ~quick ->
            Uts.dsl
              (if quick then { Uts.b0 = 64; m = 4; q = 0.24; seed = 5 }
               else Uts.default));
      sweep_blocks = pows 1 12;
    };
    {
      name = "binomial";
      description = "binomial coefficient by Pascal recursion";
      spec = (fun () -> Binomial.spec Binomial.default);
      expected = (fun () -> [ ("result", Binomial.reference Binomial.default) ]);
      dsl =
        Some
          (fun ~quick ->
            let prog, args =
              Binomial.dsl
                (if quick then { Binomial.n = 16; k = 7 } else Binomial.default)
            in
            (prog, [ Array.of_list args ]));
      sweep_blocks = pows 2 18;
    };
    {
      name = "minmax";
      description = "tic-tac-toe game-tree outcome tally";
      spec = (fun () -> Minmax.spec Minmax.default);
      expected =
        (fun () ->
          let o = Minmax.reference Minmax.default in
          [
            ("x_wins", o.Minmax.x_wins);
            ("o_wins", o.Minmax.o_wins);
            ("draws", o.Minmax.draws);
          ]);
      dsl = None;
      sweep_blocks = pows 2 16;
    };
  ]

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> raise Not_found

let names = List.map (fun e -> e.name) all
