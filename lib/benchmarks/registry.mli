(** The benchmark registry: one entry per paper benchmark, with its scaled
    default spec, expected reducer values, and (where the whole program
    fits the language) its DSL form. *)

type entry = {
  name : string;
  description : string;
  spec : unit -> Vc_core.Spec.t;  (** scaled default parameters *)
  expected : unit -> (string * int) list;
      (** reducer name → expected value, from the native reference *)
  dsl : (quick:bool -> Vc_lang.Ast.program * int array list) option;
      (** programs whose whole source fits Fig. 2 (fib, binomial,
          parentheses, nqueens, uts), as the parsed program plus its root
          frames (uts seeds many).  [quick:true] uses the reduced
          parameters of [Sweep.quick_spec] so DSL and native quick runs
          describe the same tree. *)
  sweep_blocks : int list;
      (** block sizes (powers of two) swept in the figures *)
}

val all : entry list
(** In the paper's Table 1 order. *)

val find : string -> entry
(** Raises [Not_found]. *)

val names : string list

(** {1 Runtime-loaded workloads}

    Benchmarks as data: a [.rtp] source file (the Fig. 2 DSL) carrying a
    {!Vc_lang.Spec_block} — inputs, expected reducer values, scaling
    knobs — loads into a full {!entry} at runtime, so a new workload (or
    a fuzzer-shrunk regression program) joins run/bench/verify/chaos with
    no recompile.  All load failures are typed {!Vc_core.Vc_error.t}
    values (phase [Load]), never [failwith]. *)

type loaded = {
  entry : entry;
  quick_expected : (string * int) list;
      (** expected reducer values at the [--quick] scale *)
  path : string;  (** the source file the entry was loaded from *)
}

val of_program :
  name:string ->
  description:string ->
  program:Vc_lang.Ast.program ->
  roots:int array list ->
  quick_roots:int array list ->
  expected:(string * int) list ->
  sweep_blocks:int list ->
  entry
(** Package a validated DSL program as a registry entry.  The spec is
    compiled once per call to [entry.spec] via {!Vc_core.Compile} with
    the full-scale roots; [entry.dsl] returns the program plus the
    scale-appropriate roots. *)

val load_file : string -> (loaded, Vc_core.Vc_error.t) result
(** Load one [.rtp] file.  Typed errors cover: unreadable/missing file,
    lexer/parser/validator rejections, malformed spec blocks, no [input]
    directive, root arity mismatches, [expect] naming an undeclared
    reducer, and a name colliding with a built-in benchmark. *)

val load_dir : string -> (loaded list, Vc_core.Vc_error.t) result
(** Load every [*.rtp] in a directory (sorted by filename).  Fails on the
    first file-level error and on duplicate workload names within the
    directory. *)

val resolve :
  dirs:string list -> string -> (entry, Vc_core.Vc_error.t) result
(** Resolve a benchmark name for the CLI: built-ins first, then a literal
    [.rtp] path, then [NAME.rtp] under each workload directory. *)
