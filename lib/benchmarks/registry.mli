(** The benchmark registry: one entry per paper benchmark, with its scaled
    default spec, expected reducer values, and (where the whole program
    fits the language) its DSL form. *)

type entry = {
  name : string;
  description : string;
  spec : unit -> Vc_core.Spec.t;  (** scaled default parameters *)
  expected : unit -> (string * int) list;
      (** reducer name → expected value, from the native reference *)
  dsl : (quick:bool -> Vc_lang.Ast.program * int array list) option;
      (** programs whose whole source fits Fig. 2 (fib, binomial,
          parentheses, nqueens, uts), as the parsed program plus its root
          frames (uts seeds many).  [quick:true] uses the reduced
          parameters of [Sweep.quick_spec] so DSL and native quick runs
          describe the same tree. *)
  sweep_blocks : int list;
      (** block sizes (powers of two) swept in the figures *)
}

val all : entry list
(** In the paper's Table 1 order. *)

val find : string -> entry
(** Raises [Not_found]. *)

val names : string list
