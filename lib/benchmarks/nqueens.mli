(** nqueens: counts the solutions of the n-queens problem (paper §6.1,
    benchmark 4, from BOTS).

    A task holds a partial board (one char-sized field per row, as in the
    paper's 16-wide char layout); spawn site [c] places a queen in column
    [c] of the next row when no previously placed queen attacks it.  Tasks
    whose placements are exhausted die without children, so blocks shrink
    at every level (many "leaves at almost all levels", Fig. 9(d)) — the
    benchmark where re-expansion pays most. *)

type params = { n : int }

val default : params
(** Scaled: 12 queens (14200 solutions, ≈ 856k tasks). *)

val paper : params
(** 13 queens. *)

val reference : params -> int
(** Bitmask backtracking count. *)

val known_solutions : int array
(** [known_solutions.(n)] for n = 0..13 — classic values for tests. *)

val spec : params -> Vc_core.Spec.t

val dsl_source : params -> string
(** The bitmask formulation generated for [n]: one conditional spawn site
    per column, producing exactly [spec]'s task tree (same children, same
    per-site order). *)

val dsl : params -> Vc_lang.Ast.program * int list
(** The parsed program and its root arguments [cols = d1 = d2 = 0]. *)
