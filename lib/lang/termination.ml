open Ast

type certificate = { param : string; decreases_by : int; lower_bound : int }

type verdict = Terminates of certificate | Unknown of string

(* Minimal guaranteed decrease of parameter [p] at one spawn argument:
   [Some c] when the argument is syntactically [p - c] with [c >= 1]. *)
let decrease_of ~param arg =
  match Optim.fold_expr arg with
  | Binop (Sub, Var q, Int c) when q = param && c >= 1 -> Some c
  | _ -> None

(* A lower bound [k] such that some disjunct of the base condition is
   [param < k] (any orientation), so the inductive case implies
   [param >= k]. *)
let rec lower_bound_of ~param cond =
  match cond with
  (* Split disjunctions before constant folding: folding collapses
     [c || true] to [true], hiding a ranking disjunct next to an
     always-true one.  base ⊇ each disjunct, so ¬base ⊆ ¬disjunct:
     either side yields a sound bound. *)
  | Binop (Or, a, b) -> (
      match lower_bound_of ~param a with
      | Some k -> Some k
      | None -> lower_bound_of ~param b)
  | _ -> (
      match Optim.fold_expr cond with
      | Binop (Lt, Var q, Int k) when q = param -> Some k
      | Binop (Le, Var q, Int k) when q = param -> Some (k + 1)
      | Binop (Gt, Int k, Var q) when q = param -> Some k
      | Binop (Ge, Int k, Var q) when q = param -> Some (k + 1)
      | Binop (Or, a, b) -> (
          (* folding can surface a disjunction (e.g. under a double
             negation); recurse the same way *)
          match lower_bound_of ~param a with
          | Some k -> Some k
          | None -> lower_bound_of ~param b)
      | _ -> None)

let check program =
  match Validate.check program with
  | Error errors -> Unknown ("invalid program: " ^ String.concat "; " errors)
  | Ok _ -> (
      let m = program.mth in
      let sites = Ast.spawn_sites m.inductive in
      if sites = [] then
        Unknown "no spawn sites (trivially terminating, but nothing to rank)"
      else
        let candidate index param =
          match lower_bound_of ~param m.is_base with
          | None -> None
          | Some lower_bound ->
              let decreases =
                List.map
                  (fun site ->
                    match List.nth_opt site.spawn_args index with
                    | Some arg -> decrease_of ~param arg
                    | None -> None)
                  sites
              in
              if List.for_all Option.is_some decreases then
                let min_dec =
                  List.fold_left
                    (fun acc d -> min acc (Option.get d))
                    max_int decreases
                in
                Some { param; decreases_by = min_dec; lower_bound }
              else None
        in
        let rec scan index = function
          | [] ->
              Unknown
                "no parameter both strictly decreases at every spawn site and \
                 is bounded below by the base condition"
          | param :: rest -> (
              match candidate index param with
              | Some certificate -> Terminates certificate
              | None -> scan (index + 1) rest)
        in
        scan 0 m.params)

let pp_verdict fmt = function
  | Terminates { param; decreases_by; lower_bound } ->
      Format.fprintf fmt
        "terminates: %s decreases by >= %d per spawn and the inductive case \
         implies %s >= %d"
        param decreases_by param lower_bound
  | Unknown reason -> Format.fprintf fmt "unknown: %s" reason
