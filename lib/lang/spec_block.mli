(** Spec blocks: declarative workload metadata embedded in [.rtp] sources.

    A spec block is a run of [//!] comment directives (the lexer already
    skips [//] comments, so annotated files stay plain DSL programs):

    {v
    //! name shift-saturation
    //! desc shift counts at and past the 63-bit saturation point
    //! input 6 3
    //! quick 4 1
    //! expect acc 1234
    //! quick-expect acc 56
    //! blocks 2..12
    v}

    [input] (repeatable) gives the root frames — one line per root, one
    integer per method parameter; multi-root workloads (uts-style seeded
    frontiers) repeat it.  [quick] (repeatable) gives the reduced-scale
    roots used under [--quick]; it defaults to the full-scale roots.
    [expect] / [quick-expect] pin reducer values at each scale, and
    [blocks lo..hi] names the power-of-two block-size sweep range.

    Parsing is pure text scanning: it never touches the DSL parser, and a
    file with no [//!] lines yields {!empty}. *)

type t = {
  name : string option;
  description : string option;
  inputs : int list list;  (** full-scale roots, declaration order *)
  quick_inputs : int list list;  (** reduced-scale roots; [] = same *)
  expect : (string * int) list;  (** reducer name -> full-scale value *)
  quick_expect : (string * int) list;
  blocks : (int * int) option;  (** power-of-two sweep exponents lo..hi *)
}

val empty : t

val parse : string -> (t, string list) result
(** [parse source] scans the whole file text for [//!] directive lines.
    All malformed directives are reported, not just the first. *)

val has_directives : string -> bool
(** Does the source contain any [//!] line at all? *)

val to_lines : t -> string list
(** Render back as [//!] directive lines (used by the fuzzer when it
    commits a shrunk reproducer). [parse (String.concat "\n" (to_lines t))]
    reproduces [t]. *)
