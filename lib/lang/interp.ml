open Ast

exception Runtime_error of string
exception Task_limit_exceeded of int

type outcome = { reducers : (string * int) list; profile : Profile.t }

type value = VInt of int | VBool of bool

let as_int = function
  | VInt n -> n
  | VBool _ -> raise (Runtime_error "expected int, got bool")

let as_bool = function
  | VBool b -> b
  | VInt _ -> raise (Runtime_error "expected bool, got int")

type env = { vars : (string, int) Hashtbl.t; profile : Profile.t }

let lookup env name =
  match Hashtbl.find_opt env.vars name with
  | Some v -> v
  | None -> raise (Runtime_error (Printf.sprintf "unbound variable %s" name))

let eval_unop op v =
  match (op, v) with
  | Neg, VInt n -> VInt (-n)
  | Not, VBool b -> VBool (not b)
  | Neg, VBool _ -> raise (Runtime_error "unary - on bool")
  | Not, VInt _ -> raise (Runtime_error "! on int")

let eval_binop op a b =
  match op with
  | Add -> VInt (as_int a + as_int b)
  | Sub -> VInt (as_int a - as_int b)
  | Mul -> VInt (as_int a * as_int b)
  | Div ->
      let d = as_int b in
      if d = 0 then raise (Runtime_error "division by zero");
      VInt (as_int a / d)
  | Mod ->
      let d = as_int b in
      if d = 0 then raise (Runtime_error "modulo by zero");
      VInt (as_int a mod d)
  | Lt -> VBool (as_int a < as_int b)
  | Le -> VBool (as_int a <= as_int b)
  | Gt -> VBool (as_int a > as_int b)
  | Ge -> VBool (as_int a >= as_int b)
  | Eq -> VBool (as_int a = as_int b)
  | Ne -> VBool (as_int a <> as_int b)
  | And -> VBool (as_bool a && as_bool b)
  | Or -> VBool (as_bool a || as_bool b)
  | Band -> VInt (as_int a land as_int b)
  | Bor -> VInt (as_int a lor as_int b)
  | Bxor -> VInt (as_int a lxor as_int b)
  | Shl -> VInt (Builtins.shl (as_int a) (as_int b))
  | Shr -> VInt (Builtins.shr (as_int a) (as_int b))

let rec eval env e =
  Profile.kernel_ops env.profile 1;
  match e with
  | Int n -> VInt n
  | Bool b -> VBool b
  | Var name -> VInt (lookup env name)
  | Unop (op, e) -> eval_unop op (eval env e)
  | Binop ((And | Or) as op, a, b) ->
      (* Short-circuit, like the C the benchmarks are written in. *)
      let va = as_bool (eval env a) in
      if (op = And && not va) || (op = Or && va) then VBool va
      else VBool (as_bool (eval env b))
  | Binop (op, a, b) ->
      let va = eval env a in
      let vb = eval env b in
      eval_binop op va vb
  | Call (name, args) -> (
      match Builtins.find name with
      | None -> raise (Runtime_error (Printf.sprintf "unknown builtin %s" name))
      | Some fn ->
          let vs = Array.of_list (List.map (fun a -> as_int (eval env a)) args) in
          if Array.length vs <> fn.Builtins.arity then
            raise (Runtime_error (Printf.sprintf "bad arity for %s" name));
          VInt (fn.Builtins.apply vs))

exception Returned

let run ?(max_tasks = 50_000_000) program args =
  let m = program.mth in
  if List.length args <> List.length m.params then
    raise
      (Runtime_error
         (Printf.sprintf "%s expects %d arguments, got %d" m.name
            (List.length m.params) (List.length args)));
  let profile = Profile.create () in
  let reducer_set =
    Reducer.make_set (List.map (fun r -> (r.red_name, r.red_op)) program.reducers)
  in
  let rec exec_task depth args =
    if Profile.tasks profile >= max_tasks then
      raise (Task_limit_exceeded max_tasks);
    Profile.enter_task profile ~depth;
    (* Frame setup: the per-task cost a work-stealing runtime or our block
       manager pays; counted as overhead (Table 3's non-vectorizable
       side). *)
    Profile.overhead_ops profile (2 + List.length args);
    let env = { vars = Hashtbl.create 8; profile } in
    List.iter2 (Hashtbl.replace env.vars) m.params args;
    if as_bool (eval env m.is_base) then begin
      Profile.record_base profile ~depth;
      exec_stmt env depth m.base
    end
    else exec_stmt env depth m.inductive
  and exec_stmt env depth stmt =
    try exec env depth stmt with Returned -> ()
  and exec env depth stmt =
    Profile.kernel_ops env.profile 1;
    match stmt with
    | Skip -> ()
    | Return -> raise Returned
    | Seq (a, b) ->
        exec env depth a;
        exec env depth b
    | Assign (name, e) -> Hashtbl.replace env.vars name (as_int (eval env e))
    | If (cond, a, b) -> if as_bool (eval env cond) then exec env depth a else exec env depth b
    | While (cond, body) ->
        while as_bool (eval env cond) do
          exec env depth body
        done
    | Reduce (name, e) -> Reducer.reduce reducer_set name (as_int (eval env e))
    | Spawn { spawn_args; _ } ->
        let args = List.map (fun a -> as_int (eval env a)) spawn_args in
        (* Depth-first: execute the spawned task immediately (work-first
           scheduling, §2). *)
        exec_task (depth + 1) args
  in
  exec_task 0 args;
  { reducers = Reducer.values reducer_set; profile }

let run_validated ?max_tasks program args =
  ignore (Validate.check_exn program : Validate.info);
  run ?max_tasks program args
