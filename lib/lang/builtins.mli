(** Stateless, non-recursive functions callable from expressions.

    Fig. 2 allows expressions to call "arbitrary, stateless, non-recursive
    functions" ([f_p]).  This registry provides a fixed library of such
    functions over integers. *)

type fn = { arity : int; apply : int array -> int }

val mix32 : int -> int -> int
(** [mix32 state site]: well-mixed 32-bit hash of a node state and a
    child index; result in [0, 2^31).  Registered as the ["mix32"]
    builtin (and aliased by [Vc_bench.Rng.mix32]) so hash-driven
    benchmarks like uts are expressible in the DSL. *)

val shl : int -> int -> int

val shr : int -> int -> int
(** Shared semantics of the DSL [<<] / [>>] operators: the count is taken
    modulo 64, counts above 62 saturate ([shl] to 0, [shr] to the sign).
    The tree interpreter, both compilers and the constant folder all
    evaluate shifts through these, so folding cannot change meaning. *)

val find : string -> fn option

val names : string list
(** All registered builtin names. *)
