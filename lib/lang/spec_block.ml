type t = {
  name : string option;
  description : string option;
  inputs : int list list;
  quick_inputs : int list list;
  expect : (string * int) list;
  quick_expect : (string * int) list;
  blocks : (int * int) option;
}

let empty =
  {
    name = None;
    description = None;
    inputs = [];
    quick_inputs = [];
    expect = [];
    quick_expect = [];
    blocks = None;
  }

(* A directive line is optional whitespace, "//!", then the directive.
   Returns the payload without the marker, or None for ordinary lines. *)
let directive_of_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
  if !i + 3 <= n && line.[!i] = '/' && line.[!i + 1] = '/' && line.[!i + 2] = '!'
  then Some (String.trim (String.sub line (!i + 3) (n - !i - 3)))
  else None

let lines_of source = String.split_on_char '\n' source

let has_directives source =
  List.exists (fun l -> directive_of_line l <> None) (lines_of source)

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let int_of w = int_of_string_opt w

let all_ints ws =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | w :: rest -> (
        match int_of w with Some v -> go (v :: acc) rest | None -> None)
  in
  go [] ws

let parse_blocks_range s =
  match String.index_opt s '.' with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '.'
         && i > 0
         && i + 2 < String.length s -> (
      let lo = String.sub s 0 i in
      let hi = String.sub s (i + 2) (String.length s - i - 2) in
      match (int_of lo, int_of hi) with
      | Some lo, Some hi when lo >= 0 && hi >= lo -> Some (lo, hi)
      | _ -> None)
  | _ -> None

let parse source =
  let errors = ref [] in
  let err lineno fmt =
    Printf.ksprintf
      (fun msg -> errors := Printf.sprintf "line %d: %s" lineno msg :: !errors)
      fmt
  in
  let t = ref empty in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      match directive_of_line line with
      | None -> ()
      | Some "" -> err lineno "empty //! directive"
      | Some payload -> (
          match words payload with
          | [] -> err lineno "empty //! directive"
          | cmd :: rest -> (
              match (cmd, rest) with
              | "name", [ n ] ->
                  if !t.name <> None then err lineno "duplicate name directive"
                  else t := { !t with name = Some n }
              | "name", _ -> err lineno "name takes exactly one identifier"
              | "desc", (_ :: _ as ws) ->
                  t := { !t with description = Some (String.concat " " ws) }
              | "desc", [] -> err lineno "desc takes free text"
              | "input", (_ :: _ as ws) -> (
                  match all_ints ws with
                  | Some vals -> t := { !t with inputs = !t.inputs @ [ vals ] }
                  | None -> err lineno "input takes integers (one root frame)")
              | "input", [] -> err lineno "input takes integers (one root frame)"
              | "quick", (_ :: _ as ws) -> (
                  match all_ints ws with
                  | Some vals ->
                      t := { !t with quick_inputs = !t.quick_inputs @ [ vals ] }
                  | None -> err lineno "quick takes integers (one root frame)")
              | "quick", [] -> err lineno "quick takes integers (one root frame)"
              | "expect", [ name; v ] -> (
                  match int_of v with
                  | Some v -> t := { !t with expect = !t.expect @ [ (name, v) ] }
                  | None -> err lineno "expect takes a reducer name and an integer")
              | "expect", _ ->
                  err lineno "expect takes a reducer name and an integer"
              | "quick-expect", [ name; v ] -> (
                  match int_of v with
                  | Some v ->
                      t := { !t with quick_expect = !t.quick_expect @ [ (name, v) ] }
                  | None ->
                      err lineno "quick-expect takes a reducer name and an integer")
              | "quick-expect", _ ->
                  err lineno "quick-expect takes a reducer name and an integer"
              | "blocks", [ r ] -> (
                  match parse_blocks_range r with
                  | Some range -> t := { !t with blocks = Some range }
                  | None -> err lineno "blocks takes a range LO..HI (0 <= LO <= HI)")
              | "blocks", _ -> err lineno "blocks takes a range LO..HI"
              | cmd, _ ->
                  err lineno
                    "unknown directive %S (name|desc|input|quick|expect|quick-expect|blocks)"
                    cmd)))
    (lines_of source);
  if !errors = [] then Ok !t else Error (List.rev !errors)

let to_lines t =
  let ints vals = String.concat " " (List.map string_of_int vals) in
  List.concat
    [
      (match t.name with Some n -> [ Printf.sprintf "//! name %s" n ] | None -> []);
      (match t.description with
      | Some d -> [ Printf.sprintf "//! desc %s" d ]
      | None -> []);
      List.map (fun root -> Printf.sprintf "//! input %s" (ints root)) t.inputs;
      List.map (fun root -> Printf.sprintf "//! quick %s" (ints root)) t.quick_inputs;
      List.map (fun (n, v) -> Printf.sprintf "//! expect %s %d" n v) t.expect;
      List.map
        (fun (n, v) -> Printf.sprintf "//! quick-expect %s %d" n v)
        t.quick_expect;
      (match t.blocks with
      | Some (lo, hi) -> [ Printf.sprintf "//! blocks %d..%d" lo hi ]
      | None -> []);
    ]
