type fn = { arity : int; apply : int array -> int }

let mask32 = 0xFFFFFFFF

(* murmur3-style 32-bit finalizer over (state, site); result in [0, 2^31).
   This is the hash UTS derives child states from (Rng.mix32 aliases it),
   exposed as a builtin so the uts benchmark is expressible in the DSL. *)
let mix32 state site =
  let h = ref ((state lxor (site * 0x9E3779B9)) land mask32) in
  h := (!h lxor (!h lsr 16)) land mask32;
  h := !h * 0x85EBCA6B land mask32;
  h := (!h lxor (!h lsr 13)) land mask32;
  h := !h * 0xC2B2AE35 land mask32;
  h := (!h lxor (!h lsr 16)) land mask32;
  !h land 0x7FFFFFFF

(* DSL shift semantics, shared by the tree interpreter, the closure and
   SoA compilers, and the constant folder (they must agree or folding
   changes program meaning): the count is taken modulo 64, and counts
   beyond the 62 OCaml guarantees saturate — [shl] overflows to 0, [shr]
   to the sign.  (A previous version masked the count with 62 instead of
   63, silently zeroing the low bit: every odd shift count — including
   the ubiquitous [<< 1] — became a no-op.) *)
let shl a b =
  let s = b land 63 in
  if s > 62 then 0 else a lsl s

let shr a b =
  let s = b land 63 in
  if s > 62 then a asr 62 else a asr s

let table =
  [
    ("abs", { arity = 1; apply = (fun a -> abs a.(0)) });
    ("min2", { arity = 2; apply = (fun a -> min a.(0) a.(1)) });
    ("max2", { arity = 2; apply = (fun a -> max a.(0) a.(1)) });
    ("popcount",
     {
       arity = 1;
       apply =
         (fun a ->
           let rec go acc b = if b = 0 then acc else go (acc + (b land 1)) (b lsr 1) in
           go 0 a.(0));
     });
    ("bit", { arity = 2; apply = (fun a -> (a.(0) lsr a.(1)) land 1) });
    ("sq", { arity = 1; apply = (fun a -> a.(0) * a.(0)) });
    ("mix32", { arity = 2; apply = (fun a -> mix32 a.(0) a.(1)) });
  ]

let find name = List.assoc_opt name table

let names = List.map fst table
