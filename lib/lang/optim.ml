open Ast

(* An expression can trap only through division/modulo (builtins are
   total).  Everything else is pure, so it can be deleted or absorbed by
   algebraic identities. *)
let rec can_trap = function
  | Int _ | Bool _ | Var _ -> false
  | Unop (_, e) -> can_trap e
  | Binop ((Div | Mod), _, _) -> true
  | Binop (_, a, b) -> can_trap a || can_trap b
  | Call (_, args) -> List.exists can_trap args

let rec fold_expr e =
  match e with
  | Int _ | Bool _ | Var _ -> e
  | Unop (op, inner) -> fold_unop op (fold_expr inner)
  | Binop (op, a, b) -> fold_binop op (fold_expr a) (fold_expr b)
  | Call (name, args) -> fold_call name (List.map fold_expr args)

and fold_unop op inner =
  match (op, inner) with
  | Neg, Int n -> Int (-n)
  | Neg, Unop (Neg, e) -> e
  | Not, Bool b -> Bool (not b)
  | Not, Unop (Not, e) -> e
  | (Neg | Not), _ -> Unop (op, inner)

and fold_binop op a b =
  match (op, a, b) with
  (* constant arithmetic (division/modulo only when safe) *)
  | Add, Int x, Int y -> Int (x + y)
  | Sub, Int x, Int y -> Int (x - y)
  | Mul, Int x, Int y -> Int (x * y)
  | Div, Int x, Int y when y <> 0 -> Int (x / y)
  | Mod, Int x, Int y when y <> 0 -> Int (x mod y)
  | Band, Int x, Int y -> Int (x land y)
  | Bor, Int x, Int y -> Int (x lor y)
  | Bxor, Int x, Int y -> Int (x lxor y)
  | Shl, Int x, Int y -> Int (Builtins.shl x y)
  | Shr, Int x, Int y -> Int (Builtins.shr x y)
  (* constant comparisons *)
  | Lt, Int x, Int y -> Bool (x < y)
  | Le, Int x, Int y -> Bool (x <= y)
  | Gt, Int x, Int y -> Bool (x > y)
  | Ge, Int x, Int y -> Bool (x >= y)
  | Eq, Int x, Int y -> Bool (x = y)
  | Ne, Int x, Int y -> Bool (x <> y)
  (* short-circuit identities; the right operand is only droppable or
     promotable when it cannot trap *)
  | And, Bool false, _ -> Bool false
  | And, Bool true, e -> e
  | And, e, Bool true -> e
  | And, e, Bool false when not (can_trap e) -> Bool false
  | Or, Bool true, _ -> Bool true
  | Or, Bool false, e -> e
  | Or, e, Bool false -> e
  | Or, e, Bool true when not (can_trap e) -> Bool true
  (* algebraic identities on trap-free operands *)
  | Add, e, Int 0 | Add, Int 0, e -> e
  | Sub, e, Int 0 -> e
  | Mul, e, Int 1 | Mul, Int 1, e -> e
  | Mul, e, Int 0 when not (can_trap e) -> Int 0
  | Mul, Int 0, e when not (can_trap e) -> Int 0
  | Div, e, Int 1 -> e
  | Band, e, Int 0 when not (can_trap e) -> Int 0
  | Band, Int 0, e when not (can_trap e) -> Int 0
  | Bor, e, Int 0 | Bor, Int 0, e -> e
  | Bxor, e, Int 0 | Bxor, Int 0, e -> e
  | Shl, e, Int 0 -> e
  | Shr, e, Int 0 -> e
  | _ -> Binop (op, a, b)

and fold_call name args =
  match (Builtins.find name, args) with
  | Some fn, _ when List.for_all (function Int _ -> true | _ -> false) args ->
      let vs = Array.of_list (List.map (function Int n -> n | _ -> 0) args) in
      if Array.length vs = fn.Builtins.arity then Int (fn.Builtins.apply vs)
      else Call (name, args)
  | _ -> Call (name, args)

let rec fold_stmt s =
  match s with
  | Skip | Return -> s
  | Seq (a, b) -> (
      match (fold_stmt a, fold_stmt b) with
      | Skip, b -> b
      | a, Skip -> a
      | Return, _ -> Return
      | a, b -> Seq (a, b))
  | Assign (x, e) -> Assign (x, fold_expr e)
  | If (c, a, b) -> (
      match fold_expr c with
      | Bool true -> fold_stmt a
      | Bool false -> fold_stmt b
      | c -> (
          match (fold_stmt a, fold_stmt b) with
          | Skip, Skip when not (can_trap c) -> Skip
          | a, b -> If (c, a, b)))
  | While (c, body) -> (
      match fold_expr c with
      | Bool false -> Skip
      | c -> While (c, fold_stmt body))
  | Reduce (r, e) -> Reduce (r, fold_expr e)
  | Spawn { spawn_id; spawn_args } ->
      Spawn { spawn_id; spawn_args = List.map fold_expr spawn_args }

module StringSet = Set.Make (String)

let rec expr_vars acc = function
  | Int _ | Bool _ -> acc
  | Var x -> StringSet.add x acc
  | Unop (_, e) -> expr_vars acc e
  | Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Call (_, args) -> List.fold_left expr_vars acc args

(* Backward liveness; returns (rewritten statement, live-before). *)
let rec dce params live s =
  match s with
  | Skip -> (Skip, live)
  | Return -> (Return, live)
  | Seq (a, b) ->
      let b', live = dce params live b in
      let a', live = dce params live a in
      let s' =
        match (a', b') with Skip, b -> b | a, Skip -> a | a, b -> Seq (a, b)
      in
      (s', live)
  | Assign (x, e) ->
      if (not (StringSet.mem x live)) && not (can_trap e) then (Skip, live)
      else (s, expr_vars (StringSet.remove x live) e)
  | If (c, a, b) ->
      let a', live_a = dce params live a in
      let b', live_b = dce params live b in
      (If (c, a', b'), expr_vars (StringSet.union live_a live_b) c)
  | While (c, body) ->
      (* fixed point of live-before over loop iterations *)
      let rec iterate live_in =
        let _, live_body = dce params live_in body in
        let next = expr_vars (StringSet.union live_in live_body) c in
        if StringSet.equal next live_in then next else iterate next
      in
      let live_in = iterate (expr_vars live c) in
      let body', _ = dce params live_in body in
      (While (c, body'), live_in)
  | Reduce (_, e) -> (s, expr_vars live e)
  | Spawn { spawn_args; _ } -> (s, List.fold_left expr_vars live spawn_args)

let dead_locals (m : mth) =
  let params = StringSet.of_list m.params in
  let run body = fst (dce params StringSet.empty body) in
  { m with base = run m.base; inductive = run m.inductive }

(* Branch folding can delete spawn sites (a constant guard around a
   spawn).  Ids are syntactic positions — the validator requires them
   consecutive — so the surviving sites are renumbered in order. *)
let renumber_spawns s =
  let next = ref 0 in
  let rec go = function
    | (Skip | Return | Assign _ | Reduce _) as s -> s
    | Seq (a, b) ->
        let a = go a in
        let b = go b in
        Seq (a, b)
    | If (c, a, b) ->
        let a = go a in
        let b = go b in
        If (c, a, b)
    | While (c, body) -> While (c, go body)
    | Spawn sp ->
        let id = !next in
        incr next;
        Spawn { sp with spawn_id = id }
  in
  go s

let program (p : program) =
  let step (p : program) =
    let m = p.mth in
    let m =
      {
        m with
        is_base = fold_expr m.is_base;
        base = fold_stmt m.base;
        inductive = fold_stmt m.inductive;
      }
    in
    { p with mth = dead_locals m }
  in
  let rec fixpoint budget p =
    let p' = step p in
    if budget = 0 || p' = p then p' else fixpoint (budget - 1) p'
  in
  let p = fixpoint 10 p in
  let m = p.mth in
  { p with mth = { m with inductive = renumber_spawns m.inductive } }
