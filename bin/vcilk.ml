(* vcilk: command-line driver for the vectorcilk reproduction.

   Subcommands:
     list                        - benchmarks and machines
     run BENCH                   - run one benchmark under one strategy
     transform FILE.rtp          - validate a DSL program, report its
                                   termination certificate, and print its
                                   Fig. 7 transformation
     optimize FILE.rtp           - the scalar optimizer's output
     distribute FILE.rtp         - the loop-distributed, if-converted form
     interp FILE.rtp ARGS...     - run a DSL program sequentially
     table  {1|2|3}              - regenerate one paper table
     figure {9..17}              - regenerate one paper figure (17 is the
                                   lanes x domains hybrid-scheduler study)
     trace BENCH                 - per-level scheduler timeline
     profile BENCH               - cycle-attribution hotspots, folded
                                   stacks (flamegraph input), JSON
     plot BENCH                  - ASCII block-size sweep curves
     export DIR                  - all artifacts as CSV
     bench                       - per-benchmark summary metrics; appends
                                   to the baseline history and gates on
                                   it (--check-baseline, exit 3)
     version                     - package version, git provenance, and
                                   per-machine SIMD widths
     verify                      - the paper's claims as checks
     chaos                       - fault-injection campaign: every
                                   benchmark must recover to exact
                                   results via scalar fallback
     serve                       - fault-contained job daemon: JSON
                                   requests over Unix/TCP sockets with
                                   admission control, backpressure,
                                   per-request budgets, graceful drain
     loadgen                     - replay a weighted mix against serve
                                   and assert bit-equality vs batch
     all                         - every table, figure, and ablation

   Exit codes (defined once in Vc_error, listed in --help): 0 ok,
   1 detected failure, 2 budget exceeded, 3 perf regression; 124 usage,
   125 crash, 130/143 interrupted (after flushing partial artifacts).

   Sweep-driven subcommands (table, figure, plot, export, verify, all)
   take --jobs N (parallel worker domains, default: the recommended
   domain count) and --no-cache (skip the persistent .vc-cache run
   cache).  VCILK_LOG=debug|info enables engine logging on stderr.

   Supervised execution: run and verify take --deadline CYCLES,
   --wall-deadline SECONDS and --max-live-frames N (run also
   --max-tasks N); an exceeded budget terminates with a typed error and
   exit code 2 (0 ok, 1 failure).

   Execution engines: run, bench, verify, and chaos take
   --engine engine|blocked|compiled.  "engine" (the default) is the
   cost-model simulator; "blocked" and "compiled" are the wall-clock
   backends over the blocked IR (Backend) — bit-equal reducers and task
   counts, measured throughput instead of modeled cycles.  bench
   --compiled-json FILE writes an interpreted-vs-compiled throughput
   comparison.

   Intra-run parallelism: run and chaos take --domains N.  N = 1 (the
   default) is the single-context engine; N > 1 splits the run across
   real OCaml domains via the hybrid multicore x SIMD scheduler
   (Domain_sched) — reducer values and task counts stay bit-equal to
   --domains 1, modeled cycles come from the deterministic work-stealing
   schedule model.
   VC_FAULT_SEED / VC_FAULT_SITES / VC_FAULT_RATE arm deterministic
   fault injection in any subcommand (fault-armed runs never write the
   persistent cache); chaos arms it explicitly via --seed/--faults. *)

open Cmdliner

let machine_conv =
  let parse s =
    match Vc_mem.Machine.find s with
    | m -> Ok m
    | exception Not_found -> Error (`Msg (Printf.sprintf "unknown machine %S (e5|phi)" s))
  in
  let print fmt (m : Vc_mem.Machine.t) = Format.pp_print_string fmt m.Vc_mem.Machine.name in
  Arg.conv (parse, print)

(* Benchmarks are names, resolved late (after flag parsing) so the
   --workloads directories participate: built-in registry first, then a
   literal .rtp path, then NAME.rtp under the workload directories. *)
let bench_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH")

let workloads_flag =
  Arg.(value & opt_all string []
       & info [ "workloads" ] ~docv:"DIR"
           ~doc:
             "Extra directory of $(b,.rtp) workload files (repeatable). \
              $(b,examples/dsl) and $(b,test/corpus) are always searched \
              when resolving a benchmark name.")

let default_workload_dirs = [ "examples/dsl"; "test/corpus" ]

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use scaled-down workloads.")

let jobs_flag =
  Arg.(value
       & opt int (Vc_exp.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:
             "Worker domains for the experiment sweep (default: the \
              recommended domain count). 1 disables parallelism.")

let no_cache_flag =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Do not read or write the persistent $(b,.vc-cache) run cache.")

let deadline_flag =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"CYCLES"
           ~doc:
             "Modeled-cycle budget for engine runs. Exceeding it terminates \
              with a typed error and exit code 2. Ignored by the seq and \
              strawman strategies, which have no blocked scheduler.")

let wall_deadline_flag =
  Arg.(value & opt (some float) None
       & info [ "wall-deadline" ] ~docv:"SECONDS"
           ~doc:
             "Wall-clock budget, checked cooperatively at level boundaries. \
              Exceeding it terminates with exit code 2.")

let max_live_frames_flag =
  Arg.(value & opt (some int) None
       & info [ "max-live-frames" ] ~docv:"N"
           ~doc:
             "Live-frame budget (a user-level cap below the machine's space \
              limit). Exceeding it terminates with exit code 2.")

let domains_flag =
  Arg.(value & opt int 1
       & info [ "d"; "domains" ] ~docv:"N"
           ~doc:
             "Execute across N real OCaml domains via the hybrid multicore x \
              SIMD scheduler. 1 (the default) is the plain single-context \
              engine. Reducer values and task counts are bit-equal across \
              domain counts; modeled cycles use the deterministic \
              work-stealing schedule model.")

let max_tasks_flag =
  Arg.(value & opt (some int) None
       & info [ "max-tasks" ] ~docv:"N"
           ~doc:
             "Task budget per engine context (default 200M). Exceeding it \
              terminates with a typed error and exit code 2.")

(* --engine selects the execution-engine family.  "engine" is the
   cost-model simulator (modeled cycles); "blocked" and "compiled" are the
   wall-clock backends over the blocked IR — same Fig. 6 schedule, no cost
   model, real time. *)
let engine_flag =
  Arg.(value
       & opt
           (enum
              [ ("engine", `Engine); ("blocked", `Blocked); ("compiled", `Compiled) ])
           `Engine
       & info [ "e"; "engine" ] ~docv:"ENGINE"
           ~doc:
             "Execution engine: $(b,engine) (the cost-model simulator, \
              modeled cycles; the default), $(b,blocked) (wall-clock \
              closure-interpreter backend), or $(b,compiled) (wall-clock \
              compiled SoA backend). The wall-clock engines report measured \
              throughput and ignore the modeled-cycle $(b,--deadline).")

let engine_name = function
  | `Engine -> "engine"
  | `Blocked -> "blocked"
  | `Compiled -> "compiled"

let backend_of = function
  | `Blocked -> Vc_core.Backend.interp
  | `Compiled -> Vc_core.Backend.compiled
  | `Engine -> invalid_arg "backend_of: the cost model is not a backend"

(* The blocked interpreter has no domains mode over IR sources; catch the
   combination up front instead of surfacing Backend's Invalid_argument. *)
let reject_blocked_ir_domains engine domains source =
  match (engine, source) with
  | `Blocked, Vc_core.Backend.Ir _ when domains > 1 ->
      Format.eprintf
        "vcilk: --engine blocked has no --domains mode on DSL benchmarks; \
         use --engine compiled@.";
      exit 1
  | _ -> ()

let wall_rate tasks wall = float_of_int tasks /. Float.max wall 1e-9

(* Uniform exit-code convention: 0 ok, 1 failure, 2 budget exceeded,
   3 perf regression (bench --check-baseline). *)
let die (e : Vc_core.Vc_error.t) : 'a =
  Format.eprintf "vcilk: %s@." (Vc_core.Vc_error.to_string e);
  exit (Vc_core.Vc_error.exit_code e)

let or_die f = try f () with Vc_core.Vc_error.Error e -> die e

let resolve_bench ~workloads name =
  match
    Vc_bench.Registry.resolve ~dirs:(workloads @ default_workload_dirs) name
  with
  | Ok e -> e
  | Error e -> die e

(* Every workload in the given directories, loaded; a directory that does
   not exist contributes nothing, a directory with a bad file is fatal. *)
let loaded_workloads dirs =
  List.concat_map
    (fun dir ->
      if Sys.file_exists dir && Sys.is_directory dir then
        match Vc_bench.Registry.load_dir dir with
        | Ok ls -> ls
        | Error e -> die e
      else [])
    dirs

let ctx_of ?(budgets = Vc_core.Supervisor.no_budgets) quick jobs no_cache =
  (* VC_FAULT_SEED arms fault injection in every sweep point; the sweep
     then refuses to write recovered (degraded-cost) runs to disk. *)
  Vc_exp.Sweep.create ~quick ~jobs
    ~cache_dir:(if no_cache then None else Some ".vc-cache")
    ~budgets
    ~faults:(Vc_core.Fault.of_env ())
    ()

(* Long-running subcommands (bench, chaos, fuzz, loadgen) install
   SIGINT/SIGTERM handlers that flush partial artifacts — the persistent
   run cache and any open telemetry sinks — before exiting with the shell
   convention (130 = SIGINT, 143 = SIGTERM), so an interrupted campaign
   keeps what it already computed.  Distinct from the detected-failure
   exit taxonomy (0/1/2/3) and from serve, which installs its own
   handlers to drain gracefully and exit 0. *)
let install_signal_flush flush =
  let handle code =
    Sys.Signal_handle
      (fun _ ->
        (try flush () with _ -> ());
        Format.pp_print_flush Format.std_formatter ();
        Format.pp_print_flush Format.err_formatter ();
        Stdlib.exit code)
  in
  (try Sys.set_signal Sys.sigint (handle 130) with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (handle 143) with Invalid_argument _ -> ())

(* Flush the run cache and report what the sweep actually did; artifact
   text goes to stdout, so the stats line stays on stderr. *)
let finish ctx =
  Vc_exp.Sweep.persist ctx;
  Format.eprintf "[sweep] %d simulated, %d disk-cache hits, jobs %d@."
    (Vc_exp.Sweep.simulations ctx)
    (Vc_exp.Sweep.cache_hits ctx) (Vc_exp.Sweep.jobs ctx)

let list_cmd =
  let run workloads =
    Format.printf "@[<v>Benchmarks:@,";
    List.iter
      (fun (e : Vc_bench.Registry.entry) ->
        Format.printf "  %-12s %s@," e.Vc_bench.Registry.name
          e.Vc_bench.Registry.description)
      Vc_bench.Registry.all;
    (match loaded_workloads (workloads @ default_workload_dirs) with
    | [] -> ()
    | loaded ->
        Format.printf "@,Workloads (.rtp):@,";
        List.iter
          (fun (l : Vc_bench.Registry.loaded) ->
            Format.printf "  %-12s %s (%s)@,"
              l.Vc_bench.Registry.entry.Vc_bench.Registry.name
              l.Vc_bench.Registry.entry.Vc_bench.Registry.description
              l.Vc_bench.Registry.path)
          loaded);
    Format.printf "@,Machines:@,";
    List.iter (fun m -> Format.printf "  %a@," Vc_mem.Machine.pp m) Vc_mem.Machine.all;
    Format.printf "@]@."
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List benchmarks, runtime-loaded workloads, and machines.")
    Term.(const run $ workloads_flag)

let run_cmd =
  let machine =
    Arg.(value
         & opt machine_conv Vc_mem.Machine.xeon_e5
         & info [ "m"; "machine" ] ~doc:"Target machine (e5|phi).")
  in
  let strategy =
    (* a typed enum, so an unknown strategy is a usage error from the
       argument parser instead of a raw Failure escaping main *)
    Arg.(value
         & opt
             (enum
                [ ("seq", `Seq); ("strawman", `Strawman); ("bfs", `Bfs);
                  ("noreexp", `Noreexp); ("reexp", `Reexp) ])
             `Reexp
         & info [ "s"; "strategy" ] ~doc:"seq|strawman|bfs|noreexp|reexp.")
  in
  let block =
    Arg.(value & opt int 4096
         & info [ "b"; "block" ] ~doc:"Hybrid max block size / re-expansion threshold.")
  in
  let run quick jobs no_cache deadline wall_deadline max_live_frames domains
      max_tasks engine workloads bench machine strategy block =
    or_die @@ fun () ->
    let entry = resolve_bench ~workloads bench in
    if domains < 1 then begin
      Format.eprintf "vcilk: --domains must be positive@.";
      exit 1
    end;
    if domains > 1 && (strategy = `Seq || strategy = `Strawman) then begin
      Format.eprintf "vcilk: --domains applies to the engine strategies (bfs|noreexp|reexp)@.";
      exit 1
    end;
    if engine <> `Engine && (strategy = `Seq || strategy = `Strawman) then begin
      Format.eprintf
        "vcilk: --engine %s runs the blocked scheduler (bfs|noreexp|reexp)@."
        (engine_name engine);
      exit 1
    end;
    let ctx = ctx_of quick jobs no_cache in
    let budgets = { Vc_core.Supervisor.deadline; wall_deadline; max_live_frames } in
    if engine <> `Engine then begin
      (* Wall-clock backend path: no machine model, no modeled cycles. *)
      if deadline <> None then
        Format.eprintf
          "vcilk: note: --deadline is modeled cycles; --engine %s ignores it \
           (use --wall-deadline)@."
          (engine_name engine);
      let policy =
        match strategy with
        | `Bfs -> Vc_core.Policy.Bfs_only
        | `Noreexp -> Vc_core.Policy.Hybrid { max_block = block; reexpand = false }
        | _ -> Vc_core.Policy.Hybrid { max_block = block; reexpand = true }
      in
      let source, roots = Vc_exp.Sweep.backend_source ctx entry in
      reject_blocked_ir_domains engine domains source;
      match
        Vc_core.Supervisor.run_backend ~strategy:policy ?max_tasks
          ~faults:(Vc_core.Fault.of_env ()) ~budgets
          ?domains:(if domains = 1 then None else Some domains)
          (backend_of engine) source ~roots
      with
      | Error e -> die e
      | Ok o ->
          let r = o.Vc_core.Supervisor.result in
          if o.Vc_core.Supervisor.b_faults_seen > 0 then
            Format.eprintf "[supervisor] %d faults contained, %d scalar fallbacks@."
              o.Vc_core.Supervisor.b_faults_seen o.Vc_core.Supervisor.b_fallbacks;
          List.iter
            (fun (n, v) -> Format.printf "%s = %d@." n v)
            r.Vc_core.Backend.reducers;
          Format.printf
            "%d tasks (%d base), max depth %d, %d switches, %d re-expansions@."
            r.Vc_core.Backend.tasks r.Vc_core.Backend.base_tasks
            r.Vc_core.Backend.max_depth r.Vc_core.Backend.switches
            r.Vc_core.Backend.reexpansions;
          Format.printf "engine %s: wall %.6f s, %.3f M tasks/s@."
            (engine_name engine) r.Vc_core.Backend.wall_seconds
            (wall_rate r.Vc_core.Backend.tasks r.Vc_core.Backend.wall_seconds
            /. 1e6);
          exit 0
    end;
    let spec = Vc_exp.Sweep.spec_of ctx entry in
    let supervised strategy =
      if domains = 1 then
        match
          Vc_core.Supervisor.run ?max_tasks ~faults:(Vc_core.Fault.of_env ())
            ~budgets ~spec ~machine ~strategy ()
        with
        | Ok o ->
            if o.Vc_core.Supervisor.faults_seen > 0 then
              Format.eprintf "[supervisor] %d faults contained, %d scalar fallbacks@."
                o.Vc_core.Supervisor.faults_seen o.Vc_core.Supervisor.fallbacks;
            o.Vc_core.Supervisor.report
        | Error e -> die e
      else
        match
          Vc_core.Supervisor.run_domains ?max_tasks
            ~faults:(Vc_core.Fault.of_env ()) ~budgets ~spec ~machine ~strategy
            ~domains ()
        with
        | Ok d ->
            Format.eprintf
              "[domains] %d domains, %d chunks (frontier %d at depth %d)@."
              d.Vc_core.Domain_sched.domains d.Vc_core.Domain_sched.chunks
              d.Vc_core.Domain_sched.frontier d.Vc_core.Domain_sched.frontier_depth;
            Format.eprintf
              "[domains] expansion %.3e + makespan %.3e of %.3e work cycles; \
               %d modeled steals (%d failed), %d observed@."
              d.Vc_core.Domain_sched.expansion_cycles
              d.Vc_core.Domain_sched.makespan_cycles
              d.Vc_core.Domain_sched.work_cycles
              d.Vc_core.Domain_sched.modeled_steals
              d.Vc_core.Domain_sched.modeled_failed_steals
              d.Vc_core.Domain_sched.observed_steals;
            if d.Vc_core.Domain_sched.faults_seen > 0 then
              Format.eprintf "[supervisor] %d faults contained, %d scalar fallbacks@."
                d.Vc_core.Domain_sched.faults_seen d.Vc_core.Domain_sched.fallbacks;
            d.Vc_core.Domain_sched.report
        | Error e -> die e
    in
    let report =
      match strategy with
      | `Seq -> Vc_core.Seq_exec.run ~spec ~machine ()
      | `Strawman -> Vc_core.Strawman.run ?max_tasks ~spec ~machine ()
      | `Bfs -> supervised Vc_core.Policy.Bfs_only
      | `Noreexp ->
          supervised (Vc_core.Policy.Hybrid { max_block = block; reexpand = false })
      | `Reexp ->
          supervised (Vc_core.Policy.Hybrid { max_block = block; reexpand = true })
    in
    Format.printf "%a@." Vc_core.Report.pp_summary report;
    if strategy <> `Seq && not report.Vc_core.Report.oom then
      Format.printf "modeled speedup over sequential: %.2f@."
        (Vc_exp.Sweep.speedup ctx entry machine report);
    finish ctx
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one benchmark under one execution strategy.")
    Term.(const run $ quick_flag $ jobs_flag $ no_cache_flag $ deadline_flag
          $ wall_deadline_flag $ max_live_frames_flag $ domains_flag
          $ max_tasks_flag $ engine_flag $ workloads_flag $ bench_arg $ machine
          $ strategy $ block)

let transform_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let program = Vc_lang.Parser.parse_file file in
    match Vc_lang.Validate.check program with
    | Error errors ->
        Format.eprintf "@[<v>validation failed:@,%a@]@."
          (Format.pp_print_list Format.pp_print_string)
          errors;
        exit 1
    | Ok info ->
        Format.printf "// source (%d spawn sites; %a)@.%a@.@."
          info.Vc_lang.Validate.num_spawns Vc_lang.Termination.pp_verdict
          (Vc_lang.Termination.check program) Vc_lang.Pp.pp_program program;
        Format.printf "// Fig. 7 transformation@.%a@." Vc_core.Blocked_ast.pp
          (Vc_core.Transform.transform program)
  in
  Cmd.v
    (Cmd.info "transform" ~doc:"Print a DSL program's Fig. 7 transformation.")
    Term.(const run $ file)

let optimize_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let program = Vc_lang.Parser.parse_file file in
    ignore (Vc_lang.Validate.check_exn program : Vc_lang.Validate.info);
    let optimized = Vc_lang.Optim.program program in
    Format.printf "// after constant folding, branch folding, and dead-local elimination@.%a@."
      Vc_lang.Pp.pp_program optimized
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the scalar optimizer on a DSL program and print the result.")
    Term.(const run $ file)

let distribute_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let program = Vc_lang.Parser.parse_file file in
    let t = Vc_core.Transform.transform program in
    Format.printf "%a@.@.%a@."
      Vc_core.Distribute.pp
      (Vc_core.Distribute.distribute t.Vc_core.Blocked_ast.bfs_method)
      Vc_core.Distribute.pp
      (Vc_core.Distribute.distribute t.Vc_core.Blocked_ast.blocked_method)
  in
  Cmd.v
    (Cmd.info "distribute"
       ~doc:"Print a DSL program's loop-distributed, if-converted dense-step form.")
    Term.(const run $ file)

let interp_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let args = Arg.(value & pos_right 0 int [] & info [] ~docv:"ARGS") in
  let run file args =
    let program = Vc_lang.Parser.parse_file file in
    let out = Vc_lang.Interp.run_validated program args in
    List.iter (fun (name, v) -> Format.printf "%s = %d@." name v) out.Vc_lang.Interp.reducers;
    Format.printf "(%a)@." Vc_lang.Profile.pp out.Vc_lang.Interp.profile
  in
  Cmd.v
    (Cmd.info "interp" ~doc:"Run a DSL program sequentially and print its reducers.")
    Term.(const run $ file $ args)

let table_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let run quick jobs no_cache n =
    let ctx = ctx_of quick jobs no_cache in
    let fmt = Format.std_formatter in
    (match n with
    | 1 -> Vc_exp.Sweep.prewarm ~scope:`Seq_only ctx
    | 2 | 3 -> Vc_exp.Sweep.prewarm ctx
    | _ -> ());
    (match n with
    | 1 -> Vc_exp.Tables.table1 ctx fmt
    | 2 -> Vc_exp.Tables.table2 ctx fmt
    | 3 -> Vc_exp.Tables.table3 ctx fmt
    | _ ->
        Format.eprintf "no such table: %d (1..3)@." n;
        exit 1);
    finish ctx
  in
  Cmd.v (Cmd.info "table" ~doc:"Regenerate one paper table (1-3).")
    Term.(const run $ quick_flag $ jobs_flag $ no_cache_flag $ n)

let figure_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let run quick jobs no_cache n =
    let ctx = ctx_of quick jobs no_cache in
    let fmt = Format.std_formatter in
    (match n with
    | 9 | 17 -> Vc_exp.Sweep.prewarm ~scope:`Seq_only ctx
    | 10 | 11 | 12 | 13 | 14 | 15 | 16 -> Vc_exp.Sweep.prewarm ctx
    | _ -> ());
    (match n with
    | 9 -> Vc_exp.Figures.figure9 ctx fmt
    | 10 -> Vc_exp.Figures.figure10 ctx fmt
    | 11 -> Vc_exp.Figures.figure11 ctx fmt
    | 12 -> Vc_exp.Figures.figure12 ctx fmt
    | 13 -> Vc_exp.Figures.figure13 ctx fmt
    | 14 -> Vc_exp.Figures.figure14 ctx fmt
    | 15 -> Vc_exp.Figures.figure15 ctx fmt
    | 16 -> Vc_exp.Figures.figure16 ctx fmt
    | 17 -> Vc_exp.Figures.figure17 ctx fmt
    | _ ->
        Format.eprintf "no such figure: %d (9..17)@." n;
        exit 1);
    finish ctx
  in
  Cmd.v (Cmd.info "figure" ~doc:"Regenerate one paper figure (9-17).")
    Term.(const run $ quick_flag $ jobs_flag $ no_cache_flag $ n)

let trace_cmd =
  let machine =
    Arg.(value
         & opt machine_conv Vc_mem.Machine.xeon_e5
         & info [ "m"; "machine" ] ~doc:"Target machine (e5|phi).")
  in
  let block =
    Arg.(value & opt int 256
         & info [ "b"; "block" ] ~doc:"Hybrid max block size / re-expansion threshold.")
  in
  let limit =
    Arg.(value & opt int 40 & info [ "n"; "limit" ] ~doc:"Events to print.")
  in
  let chrome =
    Arg.(value & opt (some string) None
         & info [ "chrome" ] ~docv:"FILE"
             ~doc:
               "Chrome trace-event JSON output file (loadable in \
                chrome://tracing or Perfetto). Default: $(i,BENCH).trace.json; \
                pass $(b,--chrome -) to suppress the export.")
  in
  let jsonl =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Also stream every telemetry event as one JSON object per line into FILE.")
  in
  let run quick workloads bench machine block limit chrome jsonl =
    (* traced runs are never cached: the trace is a side effect of the
       simulation, so this command always simulates fresh *)
    let entry = resolve_bench ~workloads bench in
    let ctx = Vc_exp.Sweep.create ~quick ~cache_dir:None () in
    let spec = Vc_exp.Sweep.spec_of ctx entry in
    let trace = Vc_core.Trace.create () in
    let tel = Vc_core.Telemetry.create () in
    let ring_sink = Vc_core.Telemetry.ring ~capacity:65536 in
    Vc_core.Telemetry.attach tel ring_sink;
    let chrome_path =
      match chrome with
      | Some "-" -> None
      | Some path -> Some path
      | None -> Some (entry.Vc_bench.Registry.name ^ ".trace.json")
    in
    let open_sink make = function
      | None -> None
      | Some path ->
          let oc = open_out path in
          Vc_core.Telemetry.attach tel (make oc);
          Some (path, oc)
    in
    let chrome_out = open_sink Vc_core.Telemetry.chrome_sink chrome_path in
    let jsonl_out = open_sink Vc_core.Telemetry.jsonl_sink jsonl in
    let r =
      Vc_core.Engine.run ~trace ~telemetry:tel ~spec ~machine
        ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand = true })
        ()
    in
    (* Engine.run flushed the hub; close the files and report them. *)
    List.iter
      (fun out ->
        match out with
        | Some (path, oc) ->
            close_out oc;
            Format.eprintf "[trace] wrote %s@." path
        | None -> ())
      [ chrome_out; jsonl_out ];
    Format.printf "%a@.%a@." Vc_core.Report.pp_summary r
      (Vc_core.Trace.pp ~limit) trace;
    (* Lane-occupancy timeline: every processed level as a point at its
       modeled start time, one series per scheduler phase. *)
    let width =
      Vc_simd.Isa.lanes machine.Vc_mem.Machine.isa
        (Vc_core.Schema.lane_kind spec.Vc_core.Spec.schema)
    in
    let level_points =
      Vc_core.Telemetry.levels (Vc_core.Telemetry.ring_events ring_sink)
    in
    let series phase marker =
      {
        Vc_exp.Ascii_plot.label = Vc_core.Trace.phase_name phase;
        marker;
        points =
          List.filter_map
            (fun (st : Vc_core.Telemetry.stamped) ->
              match st.Vc_core.Telemetry.ev with
              | Vc_core.Telemetry.Level { phase = p; size; _ } when p = phase ->
                  Some
                    ( st.Vc_core.Telemetry.ts /. 1e3,
                      Vc_core.Telemetry.occupancy ~width ~size )
              | _ -> None)
            level_points;
      }
    in
    Format.printf "@.lane occupancy over modeled time (width %d)@.@." width;
    Vc_exp.Ascii_plot.plot ~x_label:"kilocycles" ~y_label:"occupancy"
      [ series Vc_core.Trace.Bfs '.'; series Vc_core.Trace.Blocked 'o';
        series Vc_core.Trace.Cutoff 'x' ]
      Format.std_formatter;
    (* Summary telemetry now carried by the report itself. *)
    let hist = r.Vc_core.Report.occupancy_hist in
    let total = Array.fold_left ( + ) 0 hist in
    if total > 0 then begin
      Format.printf "@.occupancy histogram (%d levels)@." total;
      Array.iteri
        (fun i n ->
          Format.printf "  %3d-%3d%% %-40s %d@." (i * 10)
            (((i + 1) * 10) - if i = 9 then 0 else 1)
            (String.make (40 * n / total) '#')
            n)
        hist
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace one run: per-level scheduler timeline, ASCII lane-occupancy \
          plot, and Chrome trace-event JSON export.")
    Term.(const run $ quick_flag $ workloads_flag $ bench_arg $ machine $ block
          $ limit $ chrome $ jsonl)

let profile_cmd =
  let machine =
    Arg.(value
         & opt machine_conv Vc_mem.Machine.xeon_e5
         & info [ "m"; "machine" ] ~doc:"Target machine (e5|phi).")
  in
  let block =
    Arg.(value & opt int 256
         & info [ "b"; "block" ] ~doc:"Hybrid max block size / re-expansion threshold.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Hotspot rows to print.")
  in
  let folded =
    Arg.(value
         & opt ~vopt:(Some "-") (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:
               "Write folded stacks (flamegraph.pl / speedscope / inferno \
                input) to FILE; $(b,--folded) alone or $(b,--folded -) \
                prints them to stdout.")
  in
  let json =
    Arg.(value
         & opt ~vopt:(Some "-") (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:
               "Write the attribution frames as one JSON object to FILE \
                ($(b,-) = stdout).")
  in
  let run quick workloads bench machine block top folded json =
    (* Profiled runs always simulate fresh: attribution is a side effect
       of the simulation, exactly like trace. *)
    let entry = resolve_bench ~workloads bench in
    let ctx = Vc_exp.Sweep.create ~quick ~cache_dir:None () in
    let spec = Vc_exp.Sweep.spec_of ctx entry in
    let tel = Vc_core.Telemetry.create () in
    let profile = Vc_core.Profile.create () in
    Vc_core.Profile.attach profile tel;
    let r =
      Vc_core.Engine.run ~telemetry:tel ~spec ~machine
        ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand = true })
        ()
    in
    let emit what = function
      | None -> ()
      | Some "-" -> print_string what
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc what);
          Format.eprintf "[profile] wrote %s@." path
    in
    let quiet = folded = Some "-" || json = Some "-" in
    if not quiet then begin
      Format.printf "%a@.@." Vc_core.Report.pp_summary r;
      Format.printf "%a" (Vc_core.Profile.pp_hotspots ~top) profile
    end;
    emit (Vc_core.Profile.folded profile) folded;
    emit (Vc_core.Profile.json_string profile ^ "\n") json
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Attribute one run's modeled cycles to benchmark / phase / \
          spawn-site frames: hotspot table, folded stacks, JSON. The \
          attribution reconciles exactly with the report's cycle total.")
    Term.(const run $ quick_flag $ workloads_flag $ bench_arg $ machine $ block
          $ top $ folded $ json)

let bench_cmd =
  let block =
    Arg.(value & opt int Vc_exp.Baseline.default_block
         & info [ "b"; "block" ]
             ~doc:"Hybrid block size used for every collected point.")
  in
  let history =
    Arg.(value & opt string "BENCH_history.json"
         & info [ "history" ] ~docv:"FILE"
             ~doc:
               "Baseline history file appended to after collection; pass \
                $(b,--history -) to skip the append.")
  in
  let check_baseline =
    Arg.(value & opt (some string) None
         & info [ "check-baseline" ] ~docv:"FILE"
             ~doc:
               "Compare the fresh metrics against the last entry of FILE and \
                exit 3 if any metric regressed past its threshold. Skips the \
                history append.")
  in
  let write_baseline =
    Arg.(value & opt (some string) None
         & info [ "write-baseline" ] ~docv:"FILE"
             ~doc:
               "Write the fresh metrics as a single-entry baseline file \
                (replacing FILE). Skips the history append.")
  in
  let tolerance =
    Arg.(value & opt float 1.0
         & info [ "tolerance" ] ~docv:"T"
             ~doc:"Scale every regression threshold by T (default 1.0).")
  in
  let compiled_json =
    Arg.(value & opt (some string) None
         & info [ "compiled-json" ] ~docv:"FILE"
             ~doc:
               "Also run every benchmark on both wall-clock engines \
                (blocked and compiled) and write the throughput comparison \
                as JSON to FILE ($(b,-) = stdout). Wall numbers are \
                host-local and informational.")
  in
  let serve_latency =
    Arg.(value & opt (some string) None
         & info [ "serve-latency" ] ~docv:"FILE"
             ~doc:
               "Merge the serving-latency columns (p50/p99 under the \
                recorded loadgen profile) from a $(b,vcilk loadgen \
                --latency-json) artifact into the collected entry, so \
                $(b,--check-baseline)/$(b,--write-baseline) gate them \
                (baseline schema v4).")
  in
  (* One wall-clock backend point per benchmark at the bench block size. *)
  let backend_table ctx ~entries ~engine ~block =
    Format.printf "%-12s %12s %12s %7s %6s %6s %10s %10s@." "BENCH" "TASKS"
      "BASE" "DEPTH" "SW" "RE" "WALL_S" "MTASK/S";
    List.iter
      (fun (e : Vc_bench.Registry.entry) ->
        let r = Vc_exp.Sweep.backend_run ctx e ~engine ~block in
        Format.printf "%-12s %12d %12d %7d %6d %6d %10.6f %10.2f@."
          e.Vc_bench.Registry.name r.Vc_core.Backend.tasks
          r.Vc_core.Backend.base_tasks r.Vc_core.Backend.max_depth
          r.Vc_core.Backend.switches r.Vc_core.Backend.reexpansions
          r.Vc_core.Backend.wall_seconds
          (wall_rate r.Vc_core.Backend.tasks r.Vc_core.Backend.wall_seconds
          /. 1e6))
      entries
  in
  let write_comparison ctx ~entries ~block path =
    (* Best-of-3 per engine: the comparison is a measurement artifact, so
       it must not inherit the sweep memo's single (possibly cold) run —
       one GC-unlucky shot would record a bogus ratio. *)
    let measure e ~engine =
      let source, roots = Vc_exp.Sweep.backend_source ctx e in
      let backend =
        match Vc_core.Backend.find engine with
        | Some b -> b
        | None -> assert false
      in
      let opts =
        {
          Vc_core.Backend.default_opts with
          strategy = Vc_core.Policy.Hybrid { max_block = block; reexpand = true };
        }
      in
      let best = ref None in
      for _ = 1 to 3 do
        let r = Vc_core.Backend.timed_run ~opts backend source ~roots in
        match !best with
        | Some (b : Vc_core.Backend.result)
          when b.Vc_core.Backend.wall_seconds <= r.Vc_core.Backend.wall_seconds
          -> ()
        | _ -> best := Some r
      done;
      Option.get !best
    in
    let benches =
      List.map
        (fun (e : Vc_bench.Registry.entry) ->
          let i = measure e ~engine:"blocked" in
          let c = measure e ~engine:"compiled" in
          let i_rate = wall_rate i.Vc_core.Backend.tasks i.Vc_core.Backend.wall_seconds in
          let c_rate = wall_rate c.Vc_core.Backend.tasks c.Vc_core.Backend.wall_seconds in
          Vc_exp.Jsonx.Obj
            [
              ("bench", String e.Vc_bench.Registry.name);
              ("tasks", Int i.Vc_core.Backend.tasks);
              ("blocked_wall_seconds", Float i.Vc_core.Backend.wall_seconds);
              ("blocked_tasks_per_sec", Float i_rate);
              ("compiled_wall_seconds", Float c.Vc_core.Backend.wall_seconds);
              ("compiled_tasks_per_sec", Float c_rate);
              ("compiled_speedup", Float (c_rate /. Float.max i_rate 1e-9));
            ])
        entries
    in
    let j =
      Vc_exp.Jsonx.Obj
        [
          ("block", Int block);
          ("quick", Bool (Vc_exp.Sweep.quick ctx));
          ("benchmarks", List benches);
        ]
    in
    let text = Vc_exp.Jsonx.to_pretty_string j ^ "\n" in
    match path with
    | "-" -> print_string text
    | path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc text);
        Format.eprintf "[bench] wrote %s@." path
  in
  let run quick jobs no_cache workloads block history check_baseline
      write_baseline tolerance engine compiled_json serve_latency =
    or_die @@ fun () ->
    (* --workloads entries join the wall-clock backend table and the
       comparison JSON; the modeled baseline history keeps its built-in
       schema. *)
    let entries =
      Vc_bench.Registry.all
      @ List.map
          (fun (l : Vc_bench.Registry.loaded) -> l.Vc_bench.Registry.entry)
          (loaded_workloads (workloads @ default_workload_dirs))
    in
    if engine <> `Engine then begin
      (* Wall-clock engines carry no modeled metrics: the baseline gate,
         history, and --write-baseline apply to the cost model only. *)
      if check_baseline <> None || write_baseline <> None then begin
        Format.eprintf
          "vcilk: --check-baseline/--write-baseline gate modeled metrics; \
           they do not apply to --engine %s@."
          (engine_name engine);
        exit 1
      end;
      let ctx = ctx_of quick jobs no_cache in
      install_signal_flush (fun () -> Vc_exp.Sweep.persist ctx);
      backend_table ctx ~entries ~engine:(engine_name engine) ~block;
      Option.iter (write_comparison ctx ~entries ~block) compiled_json;
      exit 0
    end;
    let ctx = ctx_of quick jobs no_cache in
    install_signal_flush (fun () -> Vc_exp.Sweep.persist ctx);
    let current = Vc_exp.Baseline.collect ~block ctx in
    let current =
      match serve_latency with
      | None -> current
      | Some path -> (
          let body =
            try
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            with Sys_error msg ->
              Format.eprintf "vcilk: %s@." msg;
              exit 1
          in
          match Vc_exp.Jsonx.parse body with
          | Error msg ->
              Format.eprintf "vcilk: %s: unparseable artifact (%s)@." path msg;
              exit 1
          | Ok j -> (
              match Vc_exp.Baseline.serve_of_artifact j with
              | serve -> Vc_exp.Baseline.with_serve current ~serve
              | exception Vc_exp.Jsonx.Decode msg ->
                  Format.eprintf "vcilk: %s: %s@." path msg;
                  exit 1))
    in
    (match current.Vc_exp.Baseline.serve with
    | Some s ->
        Format.printf "serve latency (%s): p50=%.3fms p99=%.3fms@."
          s.Vc_exp.Baseline.profile s.Vc_exp.Baseline.serve_p50_ms
          s.Vc_exp.Baseline.serve_p99_ms
    | None -> ());
    Format.printf "%-24s %14s %8s %8s %6s %6s %10s %10s@." "BENCH/MACHINE"
      "CYCLES" "SPEEDUP" "DSPEED" "OCC" "CPASS" "SPACE" "MTASK/S";
    List.iter
      (fun (key, (m : Vc_exp.Baseline.metrics)) ->
        Format.printf "%-24s %14.0f %8.2f %8.2f %6.2f %6d %10d %10.2f@." key
          m.Vc_exp.Baseline.cycles m.Vc_exp.Baseline.speedup
          m.Vc_exp.Baseline.domains_speedup
          m.Vc_exp.Baseline.lane_occupancy m.Vc_exp.Baseline.compaction_passes
          m.Vc_exp.Baseline.space_peak
          (m.Vc_exp.Baseline.wall_tasks_per_sec /. 1e6))
      current.Vc_exp.Baseline.benchmarks;
    Option.iter (write_comparison ctx ~entries ~block) compiled_json;
    finish ctx;
    let faults_armed = Vc_core.Fault.armed (Vc_core.Fault.of_env ()) in
    match check_baseline with
    | Some path -> (
        match Vc_exp.Baseline.load ~path with
        | Error msg ->
            Format.eprintf "vcilk: %s@." msg;
            exit 1
        | Ok [] ->
            Format.eprintf "vcilk: %s: empty baseline history@." path;
            exit 1
        | Ok entries -> (
            let baseline = Option.get (Vc_exp.Baseline.last entries) in
            match Vc_exp.Baseline.check ~tolerance ~baseline ~current () with
            | Error msg ->
                Format.eprintf "vcilk: %s: %s@." path msg;
                exit 1
            | Ok verdicts ->
                Format.printf "@.regression gate vs %s (entry %S)@.%a" path
                  baseline.Vc_exp.Baseline.label Vc_exp.Baseline.pp_verdicts
                  verdicts;
                exit
                  (if Vc_exp.Baseline.regressions verdicts = [] then
                     Vc_core.Vc_error.exit_ok
                   else Vc_core.Vc_error.exit_regression)))
    | None -> (
        match write_baseline with
        | Some path ->
            (* Fault-armed metrics carry degraded (recovered-run) costs:
               never let them become the reference. *)
            if faults_armed then begin
              Format.eprintf "vcilk: refusing to write a baseline from a fault-armed run@.";
              exit 1
            end;
            Vc_exp.Baseline.write ~path [ current ];
            Format.eprintf "[bench] wrote baseline %s@." path
        | None ->
            if history <> "-" then
              if faults_armed then
                Format.eprintf "[bench] fault-armed run: not appending to %s@." history
              else begin
                Vc_exp.Baseline.append ~path:history current;
                Format.eprintf "[bench] appended to %s@." history
              end)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Collect per-benchmark summary metrics (modeled cycles, speedup, \
          occupancy, compaction, space), append them to the baseline \
          history, and optionally gate against a recorded baseline \
          (exit 3 on regression).")
    Term.(const run $ quick_flag $ jobs_flag $ no_cache_flag $ workloads_flag
          $ block $ history $ check_baseline $ write_baseline $ tolerance
          $ engine_flag $ compiled_json $ serve_latency)

let version_cmd =
  let run () =
    Format.printf "vcilk %s@." (Vc_core.Version.describe ());
    (match Vc_core.Version.git_describe () with
    | Some g -> Format.printf "git:  %s@." g
    | None -> Format.printf "git:  (not a checkout)@.");
    Format.printf "@.simulated platforms:@.";
    List.iter
      (fun (m : Vc_mem.Machine.t) ->
        let isa = m.Vc_mem.Machine.isa in
        Format.printf "  %-4s %-9s %4d-bit vectors, lanes:" m.Vc_mem.Machine.name
          isa.Vc_simd.Isa.name isa.Vc_simd.Isa.vector_bits;
        List.iter
          (fun kind ->
            Format.printf " %s=%d"
              (Vc_simd.Lane.to_string kind)
              (Vc_simd.Isa.lanes isa kind))
          Vc_simd.Lane.all;
        Format.printf "@.")
      Vc_mem.Machine.all
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the package version, git provenance, and each simulated \
          machine's ISA and SIMD widths.")
    Term.(const run $ const ())

let plot_cmd =
  let machine =
    Arg.(value
         & opt machine_conv Vc_mem.Machine.xeon_e5
         & info [ "m"; "machine" ] ~doc:"Target machine (e5|phi).")
  in
  let what =
    (* typed enum: an unknown metric is a usage error, not a Failure *)
    Arg.(value
         & opt
             (enum
                [ ("speedup", `Speedup); ("utilization", `Utilization);
                  ("miss", `Miss) ])
             `Speedup
         & info [ "w"; "what" ] ~doc:"speedup|utilization|miss.")
  in
  let run quick jobs no_cache workloads bench machine what =
    let entry = resolve_bench ~workloads bench in
    let ctx = ctx_of quick jobs no_cache in
    let log2 b = log (float_of_int b) /. log 2.0 in
    let value (r : Vc_core.Report.t) =
      match what with
      | `Speedup -> Some (Vc_exp.Sweep.speedup ctx entry machine r)
      | `Utilization -> Some r.Vc_core.Report.utilization
      | `Miss -> List.assoc_opt "L1d" r.Vc_core.Report.miss_rates
    in
    let series reexpand marker =
      {
        Vc_exp.Ascii_plot.label =
          (if reexpand then "with re-expansion" else "no re-expansion");
        marker;
        points =
          List.filter_map
            (fun block ->
              let r = Vc_exp.Sweep.hybrid ctx entry machine ~reexpand ~block in
              if r.Vc_core.Report.oom then None
              else Option.map (fun v -> (log2 block, v)) (value r))
            (Vc_exp.Sweep.blocks_of ctx entry);
      }
    in
    let what_name =
      match what with
      | `Speedup -> "speedup"
      | `Utilization -> "utilization"
      | `Miss -> "miss"
    in
    Format.printf "%s of %s on %s vs log2(block size)@.@." what_name
      entry.Vc_bench.Registry.name machine.Vc_mem.Machine.name;
    Vc_exp.Ascii_plot.plot ~x_label:"log2(block)" [ series false '.'; series true 'o' ]
      Format.std_formatter;
    finish ctx
  in
  Cmd.v
    (Cmd.info "plot" ~doc:"ASCII plot of a block-size sweep (Figs. 10-14).")
    Term.(const run $ quick_flag $ jobs_flag $ no_cache_flag $ workloads_flag
          $ bench_arg $ machine $ what)

let export_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let run quick jobs no_cache dir =
    let ctx = ctx_of quick jobs no_cache in
    Vc_exp.Sweep.prewarm ctx;
    let files = Vc_exp.Csv.export_all ctx ~dir in
    Format.printf "wrote %d CSV files to %s:@." (List.length files) dir;
    List.iter (fun f -> Format.printf "  %s@." f) files;
    finish ctx
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export every table and figure as CSV files into DIR.")
    Term.(const run $ quick_flag $ jobs_flag $ no_cache_flag $ dir)

let verify_cmd =
  let run quick jobs no_cache workloads deadline wall_deadline max_live_frames
      engine =
    or_die @@ fun () ->
    let budgets = { Vc_core.Supervisor.deadline; wall_deadline; max_live_frames } in
    let ctx = ctx_of ~budgets quick jobs no_cache in
    Vc_exp.Sweep.prewarm ctx;
    let verdicts = Vc_exp.Claims.all ctx in
    (* --engine blocked|compiled appends the wall-clock backend's
       equivalence claims to the standard set. *)
    let verdicts =
      match engine with
      | `Engine -> verdicts
      | e -> verdicts @ Vc_exp.Claims.backend ctx ~engine:(engine_name e)
    in
    (* --workloads appends one differential-replay verdict per loaded
       .rtp workload: oracle, engine, and both wall-clock backends agree
       with the spec block's pinned values. *)
    let verdicts =
      verdicts
      @ List.map
          (fun (l : Vc_bench.Registry.loaded) ->
            let name = l.Vc_bench.Registry.entry.Vc_bench.Registry.name in
            let claim =
              Printf.sprintf
                "workload %s replays identically across all backends" name
            in
            match Vc_fuzz.Corpus.replay ~quick:(Vc_exp.Sweep.quick ctx) l with
            | Ok checks ->
                { Vc_exp.Claims.claim; holds = true;
                  evidence = Printf.sprintf "%d comparisons" checks }
            | Error msg -> { Vc_exp.Claims.claim; holds = false; evidence = msg })
          (loaded_workloads (workloads @ default_workload_dirs))
    in
    Vc_exp.Claims.pp Format.std_formatter verdicts;
    finish ctx;
    exit
      (if Vc_exp.Claims.failures verdicts = 0 then Vc_core.Vc_error.exit_ok
       else Vc_core.Vc_error.exit_failure)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check the paper's qualitative claims against fresh measurements.")
    Term.(const run $ quick_flag $ jobs_flag $ no_cache_flag $ workloads_flag
          $ deadline_flag $ wall_deadline_flag $ max_live_frames_flag
          $ engine_flag)

let chaos_cmd =
  let sites_conv =
    let parse s =
      match Vc_core.Fault.parse_sites s with
      | Ok sites -> Ok sites
      | Error msg -> Error (`Msg msg)
    in
    let print fmt sites =
      Format.pp_print_string fmt
        (String.concat "," (List.map Vc_core.Fault.site_name sites))
    in
    Arg.conv (parse, print)
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Fault-plan seed.") in
  let sites =
    Arg.(value
         & opt sites_conv Vc_core.Fault.all_sites
         & info [ "faults" ] ~docv:"SITES"
             ~doc:
               "Comma-separated injection sites: compact, convert, alloc, cache \
                ($(b,all) or empty = every site).")
  in
  let rate =
    Arg.(value & opt float 0.25
         & info [ "rate" ] ~docv:"R" ~doc:"Fraction of instrumented calls that fault.")
  in
  let block =
    Arg.(value & opt int 256
         & info [ "b"; "block" ]
             ~doc:"Hybrid max block size (small blocks exercise more fault sites).")
  in
  let machine =
    Arg.(value
         & opt machine_conv Vc_mem.Machine.xeon_e5
         & info [ "m"; "machine" ] ~doc:"Target machine (e5|phi).")
  in
  let run quick jobs workloads seed sites rate block machine domains engine =
    or_die @@ fun () ->
    (* --workloads entries join both chaos campaigns like built-ins *)
    let all_entries =
      Vc_bench.Registry.all
      @ List.map
          (fun (l : Vc_bench.Registry.loaded) -> l.Vc_bench.Registry.entry)
          (loaded_workloads (workloads @ default_workload_dirs))
    in
    (* Chaos runs are recovered-but-degraded, so they never touch the
       persistent cache; every reference and faulted run is fresh. *)
    let ctx = Vc_exp.Sweep.create ~quick ~jobs ~cache_dir:None () in
    (* nothing persists from a chaos ctx; the handler still flushes the
       partial campaign output before exiting 130/143 *)
    install_signal_flush (fun () -> Vc_exp.Sweep.persist ctx);
    let strategy = Vc_core.Policy.Hybrid { max_block = block; reexpand = true } in
    Format.printf
      "chaos: engine %s, seed %d, rate %.2f, sites %s, block %d, %d domain%s, \
       %s workloads@."
      (engine_name engine) seed rate
      (String.concat "," (List.map Vc_core.Fault.site_name sites))
      block domains
      (if domains = 1 then "" else "s")
      (if Vc_exp.Sweep.quick ctx then "quick" else "full");
    if engine <> `Engine then begin
      (* Backend campaign: a fault-armed wall-clock run (levels quarantined
         at the alloc site, re-run on the scalar path) must reproduce the
         fault-free backend's reducers and task counts exactly. *)
      let backend = backend_of engine in
      let dom_opt = if domains = 1 then None else Some domains in
      let entries = Array.of_list all_entries in
      let results = Array.make (Array.length entries) None in
      let check_bench (entry : Vc_bench.Registry.entry) =
        let name = entry.Vc_bench.Registry.name in
        let source, roots = Vc_exp.Sweep.backend_source ctx entry in
        reject_blocked_ir_domains engine domains source;
        let opts =
          { Vc_core.Backend.default_opts with
            strategy; domains = dom_opt }
        in
        let reference = Vc_core.Backend.run ~opts backend source ~roots in
        let plan = Vc_core.Fault.make ~rate ~seed ~sites () in
        match
          Vc_core.Supervisor.run_backend ~strategy ~faults:plan ?domains:dom_opt
            backend source ~roots
        with
        | Error e -> (name, false, Vc_core.Vc_error.to_string e, 0, 0)
        | Ok o ->
            let r = o.Vc_core.Supervisor.result in
            let ok =
              r.Vc_core.Backend.reducers = reference.Vc_core.Backend.reducers
              && r.Vc_core.Backend.tasks = reference.Vc_core.Backend.tasks
              && r.Vc_core.Backend.base_tasks
                 = reference.Vc_core.Backend.base_tasks
            in
            let detail =
              Printf.sprintf "%d faults, %d fallbacks"
                o.Vc_core.Supervisor.b_faults_seen
                o.Vc_core.Supervisor.b_fallbacks
            in
            (name, ok, detail, o.Vc_core.Supervisor.b_faults_seen,
             o.Vc_core.Supervisor.b_fallbacks)
      in
      Vc_exp.Pool.run ~jobs:(Vc_exp.Sweep.jobs ctx)
        (Array.to_list
           (Array.mapi (fun i e () -> results.(i) <- Some (check_bench e)) entries));
      let failures = ref 0 in
      let total_faults = ref 0 in
      Array.iter
        (function
          | None -> ()
          | Some (name, ok, detail, faults, _) ->
              total_faults := !total_faults + faults;
              if not ok then incr failures;
              Format.printf "  %-10s %-4s %s@." name
                (if ok then "ok" else "FAIL")
                detail)
        results;
      Format.printf "chaos: %d checks, %d failed, %d faults injected@."
        (Array.length entries) !failures !total_faults;
      exit
      (if !failures = 0 then Vc_core.Vc_error.exit_ok
       else Vc_core.Vc_error.exit_failure)
    end;
    (* Engine campaign: for every benchmark, a supervised run under the
       fault plan must reproduce the fault-free reducers and task counts
       exactly — scalar fallback is a correctness-preserving degradation.
       With --domains > 1 the same property must hold across the hybrid
       domain scheduler (fault plans are split per chunk). *)
    let entries = Array.of_list all_entries in
    let results = Array.make (Array.length entries) None in
    let check_bench (entry : Vc_bench.Registry.entry) =
      let name = entry.Vc_bench.Registry.name in
      let spec = Vc_exp.Sweep.spec_of ctx entry in
      let reference = Vc_core.Engine.run ~spec ~machine ~strategy () in
      let plan = Vc_core.Fault.make ~rate ~seed ~sites () in
      let faulted =
        if domains = 1 then
          match Vc_core.Supervisor.run ~faults:plan ~spec ~machine ~strategy () with
          | Error e -> Error e
          | Ok o ->
              Ok
                ( o.Vc_core.Supervisor.report,
                  o.Vc_core.Supervisor.faults_seen,
                  o.Vc_core.Supervisor.fallbacks )
        else
          match
            Vc_core.Supervisor.run_domains ~faults:plan ~spec ~machine ~strategy
              ~domains ()
          with
          | Error e -> Error e
          | Ok d ->
              Ok
                ( d.Vc_core.Domain_sched.report,
                  d.Vc_core.Domain_sched.faults_seen,
                  d.Vc_core.Domain_sched.fallbacks )
      in
      match faulted with
      | Error e -> (name, false, Vc_core.Vc_error.to_string e, 0, 0)
      | Ok (r, faults_seen, fallbacks) ->
          let ok =
            r.Vc_core.Report.oom = reference.Vc_core.Report.oom
            && r.Vc_core.Report.reducers = reference.Vc_core.Report.reducers
            && r.Vc_core.Report.tasks = reference.Vc_core.Report.tasks
            && r.Vc_core.Report.base_tasks = reference.Vc_core.Report.base_tasks
          in
          let detail = Printf.sprintf "%d faults, %d fallbacks" faults_seen fallbacks in
          (name, ok, detail, faults_seen, fallbacks)
    in
    Vc_exp.Pool.run ~jobs:(Vc_exp.Sweep.jobs ctx)
      (Array.to_list
         (Array.mapi (fun i e () -> results.(i) <- Some (check_bench e)) entries));
    let failures = ref 0 in
    let total_faults = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some (name, ok, detail, faults, _) ->
            total_faults := !total_faults + faults;
            if not ok then incr failures;
            Format.printf "  %-10s %-4s %s@." name (if ok then "ok" else "FAIL") detail)
      results;
    (* The engine never converts layouts, so the convert site gets a
       dedicated AoS->SoA->AoS round trip that must be the identity. *)
    if List.mem Vc_core.Fault.Convert sites then begin
      let plan = Vc_core.Fault.make ~rate ~seed ~sites:[ Vc_core.Fault.Convert ] () in
      let isa = machine.Vc_mem.Machine.isa in
      let vm = Vc_simd.Vm.create isa in
      let addr = Vc_core.Addr.create () in
      let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I32 [ "x"; "y"; "z" ] in
      let ok = ref true in
      for round = 1 to 8 do
        let frames =
          Array.init 257 (fun i -> [| i; i * round; (i * i) land 0xffff |])
        in
        let blk =
          Vc_core.Soa.aos_to_soa ~faults:plan ~vm ~addr ~schema ~isa
            ~aos_base:(0x100000 * round) ~frames ()
        in
        let back = Vc_core.Soa.soa_to_aos ~faults:plan ~vm ~aos_base:(0x100000 * round) blk in
        if back <> frames then ok := false
      done;
      let fired = Vc_core.Fault.total_fired plan in
      total_faults := !total_faults + fired;
      let ok = !ok in
      if not ok then incr failures;
      Format.printf "  %-10s %-4s %d faults, scalar-copy fallback@." "soa" (if ok then "ok" else "FAIL") fired
    end;
    (* Cache site: repeated add/persist rounds under injected I/O faults
       in a scratch directory.  Injected persist faults retry (up to 3
       attempts); a round that exhausts the retries surfaces the typed
       error, and — crash safety — must leave the previous round's file
       intact: the final fault-free reload must hold every key through the
       last successful persist. *)
    if List.mem Vc_core.Fault.Cache sites then begin
      let plan = Vc_core.Fault.make ~rate ~seed ~sites:[ Vc_core.Fault.Cache ] () in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "vcilk-chaos-%d" (Unix.getpid ()))
      in
      let t = Vc_exp.Run_cache.load ~faults:plan ~dir () in
      let spec = Vc_exp.Sweep.spec_of ctx entries.(0) in
      let report = Vc_core.Seq_exec.run ~spec ~machine () in
      let rounds = 6 in
      let last_ok = ref 0 in
      let gave_up = ref 0 in
      for r = 1 to rounds do
        Vc_exp.Run_cache.add t (Printf.sprintf "chaos-%d" r) report;
        match Vc_exp.Run_cache.persist ~faults:plan t with
        | () -> last_ok := r
        | exception Vc_core.Vc_error.Error e when not (Vc_core.Vc_error.is_budget e) ->
            incr gave_up
      done;
      let fired = Vc_core.Fault.total_fired plan in
      total_faults := !total_faults + fired;
      let t2 = Vc_exp.Run_cache.load ~dir () in
      let ok = ref true in
      for r = 1 to !last_ok do
        match Vc_exp.Run_cache.find t2 (Printf.sprintf "chaos-%d" r) with
        | Some r' when Vc_core.Report.equal report r' -> ()
        | _ -> ok := false
      done;
      if not !ok then incr failures;
      Format.printf
        "  %-10s %-4s %d faults, %d/%d persists landed (%d gave up), crash-safe file@."
        "cache"
        (if !ok then "ok" else "FAIL")
        fired !last_ok rounds !gave_up;
      (try Sys.remove (Filename.concat dir "runs.json") with Sys_error _ -> ());
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())
    end;
    Format.printf "chaos: %d checks, %d failed, %d faults injected@."
      (Array.length entries
      + (if List.mem Vc_core.Fault.Convert sites then 1 else 0)
      + if List.mem Vc_core.Fault.Cache sites then 1 else 0)
      !failures !total_faults;
    exit
      (if !failures = 0 then Vc_core.Vc_error.exit_ok
       else Vc_core.Vc_error.exit_failure)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Deterministic fault-injection campaign: every benchmark runs under \
          an armed fault plan and must recover to exact fault-free results \
          via scalar fallback.")
    Term.(const run $ quick_flag $ jobs_flag $ workloads_flag $ seed $ sites
          $ rate $ block $ machine $ domains_flag $ engine_flag)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generator stream seed.")
  in
  let count =
    Arg.(value & opt int 200
         & info [ "count" ] ~docv:"K" ~doc:"Cases to generate and check.")
  in
  let minutes =
    Arg.(value & opt (some float) None
         & info [ "minutes" ] ~docv:"M"
             ~doc:"Stop generating after M minutes even if --count is not reached.")
  in
  let out =
    Arg.(value & opt string "test/corpus"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory the shrunk reproducer .rtp is written into.")
  in
  let plant =
    let plant_conv =
      let parse s =
        match Vc_fuzz.Diff.plant_of_string s with
        | Some p -> Ok p
        | None -> Error (`Msg (Printf.sprintf "unknown plant %S (shl-trunc|spawn-skew)" s))
      in
      let print fmt p = Format.pp_print_string fmt (Vc_fuzz.Diff.plant_name p) in
      Arg.conv (parse, print)
    in
    Arg.(value & opt (some plant_conv) None
         & info [ "plant" ] ~docv:"BUG"
             ~doc:
               "Arm a deliberate codegen bug in the compiled backend \
                ($(b,shl-trunc)|$(b,spawn-skew)): the mutation smoke test. \
                The run must then diverge, shrink, and exit 1.")
  in
  let replay =
    Arg.(value & flag
         & info [ "replay" ]
             ~doc:
               "Instead of generating, replay every committed .rtp workload \
                (test/corpus, examples/dsl, and any --workloads directory) \
                through oracle, engine, and both wall-clock backends.")
  in
  let run quick workloads seed count minutes out plant replay =
    or_die @@ fun () ->
    install_signal_flush (fun () -> ());
    if replay then begin
      let loaded = loaded_workloads (workloads @ default_workload_dirs) in
      let failures = ref 0 in
      List.iter
        (fun (l : Vc_bench.Registry.loaded) ->
          let name = l.Vc_bench.Registry.entry.Vc_bench.Registry.name in
          match Vc_fuzz.Corpus.replay ~quick l with
          | Ok checks -> Format.printf "  %-24s ok (%d comparisons)@." name checks
          | Error msg ->
              incr failures;
              Format.printf "  %-24s FAIL %s@." name msg)
        loaded;
      Format.printf "replay: %d workloads, %d failed@." (List.length loaded)
        !failures;
      exit
      (if !failures = 0 then Vc_core.Vc_error.exit_ok
       else Vc_core.Vc_error.exit_failure)
    end;
    let deadline =
      Option.map (fun m -> Unix.gettimeofday () +. (m *. 60.0)) minutes
    in
    let expired () =
      match deadline with
      | Some t -> Unix.gettimeofday () > t
      | None -> false
    in
    let checks = ref 0 in
    let skipped = ref 0 in
    let rec loop i =
      if i >= count || expired () then None
      else
        let p, args = Vc_fuzz.Gen.case ~seed ~index:i () in
        match Vc_fuzz.Diff.check ?plant p args with
        | Vc_fuzz.Diff.Agree { checks = c } ->
            checks := !checks + c;
            loop (i + 1)
        | Vc_fuzz.Diff.Skip _ ->
            incr skipped;
            loop (i + 1)
        | Vc_fuzz.Diff.Diverge { stage; detail } -> Some (i, p, args, stage, detail)
    in
    match loop 0 with
    | None ->
        Format.printf
          "fuzz: seed %d, %d cases (%d skipped), %d comparisons, no divergence@."
          seed count !skipped !checks;
        exit 0
    | Some (index, p, args, stage, detail) ->
        Format.eprintf "fuzz: seed %d case %d diverged at %s: %s@." seed index
          stage detail;
        let keep = Vc_fuzz.Diff.failing ?plant in
        let p', args' = Vc_fuzz.Shrink.minimize ~keep p args in
        Format.eprintf "fuzz: shrunk %d -> %d AST nodes@." (Vc_fuzz.Gen.size p)
          (Vc_fuzz.Gen.size p');
        let name = Printf.sprintf "fuzz-s%d-%d" seed index in
        let provenance =
          [
            Printf.sprintf "fuzz reproducer: seed %d, case %d" seed index;
            Printf.sprintf "diverged at %s: %s" stage detail;
          ]
          @
          match plant with
          | None -> []
          | Some pl ->
              [ Printf.sprintf "planted bug: %s (mutation smoke test)"
                  (Vc_fuzz.Diff.plant_name pl) ]
        in
        (match Vc_fuzz.Corpus.write ~dir:out ~name ~provenance p' args' with
        | Ok path -> Format.eprintf "fuzz: wrote reproducer %s@." path
        | Error e ->
            Format.eprintf "fuzz: could not write reproducer: %s@."
              (Vc_core.Vc_error.to_string e));
        exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate seeded well-typed terminating DSL \
          programs, run each through interpreter, cost-model engine, blocked \
          and compiled backends, the domain scheduler, and fault-armed \
          recovery, and on any divergence shrink to a minimal committed \
          reproducer (exit 1).")
    Term.(const run $ quick_flag $ workloads_flag $ seed $ count $ minutes
          $ out $ plant $ replay)

let serve_cmd =
  let socket =
    Arg.(value & opt string ".vcilk.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:
               "Unix-domain listen socket (a stale socket file is replaced). \
                Pass $(b,--socket -) to disable and listen on TCP only.")
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:
               "Also listen on loopback TCP. $(b,0) picks an ephemeral port; \
                the bound port is printed on startup.")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
             ~doc:"Persistent worker domains executing admitted jobs.")
  in
  let max_queue =
    Arg.(value & opt int 64
         & info [ "max-queue" ] ~docv:"N"
             ~doc:
               "Admission-control bound: requests beyond N queued jobs are \
                rejected with an $(b,overloaded) response instead of queued.")
  in
  let max_frame =
    Arg.(value & opt int 65536
         & info [ "max-frame" ] ~docv:"BYTES"
             ~doc:
               "Request frame size limit; an oversized frame gets a \
                $(b,bad_request) response and closes that connection.")
  in
  let read_timeout =
    Arg.(value & opt float 30.0
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Idle connections are closed after this long without a frame.")
  in
  let jsonl =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:
               "Stream per-request telemetry into FILE, one JSON object per \
                line, each tagged with the request's trace id.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:
               "Log any request whose wall time reaches MS milliseconds, \
                with its full queue_wait/exec/serialize phase breakdown.")
  in
  let run quick no_cache workloads socket tcp workers max_queue max_frame
      read_timeout deadline wall_deadline max_live_frames jsonl slow_ms =
    or_die @@ fun () ->
    let socket_path = if socket = "-" then None else Some socket in
    let telemetry = Option.map open_out jsonl in
    let cfg =
      {
        Vc_serve.Server.default_config with
        socket_path;
        tcp_port = tcp;
        workers;
        max_queue;
        max_frame;
        read_timeout;
        slow_ms;
        quick;
        cache_dir = (if no_cache then None else Some ".vc-cache");
        workload_dirs = workloads @ default_workload_dirs;
        ceiling = { Vc_core.Supervisor.deadline; wall_deadline; max_live_frames };
        faults = Vc_core.Fault.of_env ();
        telemetry;
      }
    in
    (* the daemon's warnings (slow requests, crashed jobs) must reach
       stderr even when VCILK_LOG is unset; batch commands stay silent *)
    if Sys.getenv_opt "VCILK_LOG" = None then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Warning)
    end;
    match Vc_serve.Server.start cfg with
    | Error e -> die e
    | Ok srv ->
        Format.printf "[serve] listening on %s@."
          (Vc_serve.Server.endpoints srv);
        Format.pp_print_flush Format.std_formatter ();
        (* SIGTERM/SIGINT request a graceful drain: stop accepting, finish
           in-flight jobs, flush the run cache and telemetry, exit 0. *)
        let stop_requested = Atomic.make false in
        let request _ = Atomic.set stop_requested true in
        Sys.set_signal Sys.sigint (Sys.Signal_handle request);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle request);
        while not (Atomic.get stop_requested) do
          try Unix.sleepf 0.2
          with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        Format.eprintf "[serve] draining@.";
        Vc_serve.Server.stop srv;
        Option.iter close_out telemetry;
        Format.eprintf "[serve] %s@." (Vc_serve.Server.stats_line srv);
        exit Vc_core.Vc_error.exit_ok
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the fault-contained job daemon: newline-delimited JSON \
          requests over a Unix (and optionally loopback-TCP) socket, \
          executed on persistent worker domains with a warm run cache. \
          Bounded-queue admission control, per-request budget ceilings, \
          typed protocol errors, per-request trace ids, and a graceful \
          SIGTERM drain (exit 0). VC_FAULT_SEED arms chaos mode: injected \
          faults recover to bit-equal results.")
    Term.(const run $ quick_flag $ no_cache_flag $ workloads_flag $ socket
          $ tcp $ workers $ max_queue $ max_frame $ read_timeout
          $ deadline_flag $ wall_deadline_flag $ max_live_frames_flag $ jsonl
          $ slow_ms)

let loadgen_cmd =
  let socket =
    Arg.(value & opt string ".vcilk.sock"
         & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix socket to dial.")
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Dial loopback TCP instead of the Unix socket.")
  in
  let rps =
    Arg.(value & opt float 10.0
         & info [ "rps" ] ~docv:"N"
             ~doc:
               "Open-loop request rate: request k is sent at k/N seconds \
                regardless of responses, so rates past capacity build real \
                queue depth.")
  in
  let duration =
    Arg.(value & opt float 5.0
         & info [ "duration" ] ~docv:"S" ~doc:"Send window, seconds.")
  in
  let mix =
    Arg.(value & opt string "fib:4,uts:1"
         & info [ "mix" ] ~docv:"MIX"
             ~doc:
               "Weighted benchmark mix, e.g. $(b,fib:4,uts:1) (weights \
                default to 1).")
  in
  let deadline_frac =
    Arg.(value & opt (some float) None
         & info [ "deadline-frac" ] ~docv:"F"
             ~doc:
               "Attach a modeled-cycle deadline of F x the benchmark's \
                reference cycles to every engine request; F < 1 makes \
                $(b,budget_exceeded) responses expected outcomes.")
  in
  let connections =
    Arg.(value & opt int 4
         & info [ "connections" ] ~docv:"N" ~doc:"Concurrent client sockets.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"Mix-selection stream seed.")
  in
  let delay_ms =
    Arg.(value & opt int 0
         & info [ "delay-ms" ] ~docv:"MS"
             ~doc:
               "Ask the daemon to sleep MS per request before executing \
                (server-side think time: the backpressure lever).")
  in
  let block =
    Arg.(value & opt int 4096
         & info [ "b"; "block" ] ~doc:"Hybrid block size for every request.")
  in
  let grace =
    Arg.(value & opt float 30.0
         & info [ "grace" ] ~docv:"S"
             ~doc:
               "After the send window closes, wait this long for outstanding \
                replies before counting them lost.")
  in
  let latency_json =
    Arg.(value & opt (some string) None
         & info [ "latency-json" ] ~docv:"FILE"
             ~doc:
               "Write the latency artifact (BENCH_serve.json shape: loadgen \
                profile, p50/p99/p99.9/mean/max, full histogram) to FILE. \
                On SIGINT/SIGTERM the partial artifact is flushed before \
                exiting 130/143.")
  in
  let run quick workloads socket tcp rps duration mix_str engine deadline_frac
      connections seed delay_ms block grace latency_json =
    or_die @@ fun () ->
    let profile =
      {
        Vc_serve.Loadgen.pr_rps = rps;
        pr_duration = duration;
        pr_mix = mix_str;
        pr_engine = engine_name engine;
        pr_connections = connections;
        pr_quick = quick;
      }
    in
    let write_artifact s =
      match latency_json with
      | None -> ()
      | Some path ->
          Vc_exp.Run_cache.save_atomic ~path
            (Vc_exp.Jsonx.to_pretty_string
               (Vc_serve.Loadgen.latency_json ~profile s));
          Format.eprintf "[loadgen] wrote %s@." path
    in
    (* parity with bench/chaos/fuzz: an interrupted run flushes the
       partial artifact before exiting 130/143 *)
    let snapshot = ref None in
    install_signal_flush (fun () ->
        match !snapshot with Some take -> write_artifact (take ()) | None -> ());
    let mix =
      match Vc_serve.Loadgen.parse_mix mix_str with
      | Ok m -> m
      | Error msg ->
          Format.eprintf "vcilk: bad --mix: %s@." msg;
          exit Vc_core.Vc_error.exit_failure
    in
    let connect () =
      match tcp with
      | Some port ->
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          fd
      | None ->
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX socket);
          fd
    in
    match
      Vc_serve.Loadgen.run ~connect ~rps ~duration ~mix
        ~engine:(engine_name engine) ~block ?deadline_frac ~delay_ms
        ~connections ~seed ~grace
        ~workload_dirs:(workloads @ default_workload_dirs)
        ~on_snapshot:(fun take -> snapshot := Some take)
        ~quick ()
    with
    | Error e -> die e
    | Ok s ->
        write_artifact s;
        Format.printf "%a@." Vc_serve.Loadgen.pp_summary s;
        (match s.Vc_serve.Loadgen.stats_line with
        | Some line -> Format.printf "%s@." line
        | None -> Format.printf "stats unavailable@.");
        List.iteri
          (fun i (id, detail) ->
            if i < 10 then Format.eprintf "  divergence %s: %s@." id detail)
          s.Vc_serve.Loadgen.divergences;
        exit
          (if Vc_serve.Loadgen.passed s then Vc_core.Vc_error.exit_ok
           else Vc_core.Vc_error.exit_failure)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay a weighted benchmark mix against a running vcilk serve \
          daemon at a fixed request rate, then assert every ok response is \
          bit-equal to the batch reference (exit 1 on divergence or lost \
          replies; overload and budget rejections are expected outcomes \
          under deliberate pressure).")
    Term.(const run $ quick_flag $ workloads_flag $ socket $ tcp $ rps
          $ duration $ mix $ engine_flag $ deadline_frac $ connections $ seed
          $ delay_ms $ block $ grace $ latency_json)

(* ------------------------------------------------------------------ top *)

(* A terminal dashboard over the daemon's own observability endpoints:
   the key=value [/stats] line (windowed view) and the Prometheus
   [/metrics] body (lifetime histograms and the breakdown counters).
   Everything displayed is recomputed from the wire text — [top] has no
   privileged view, so whatever it shows, a real scraper sees too. *)
let top_cmd =
  let socket =
    Arg.(value & opt string ".vcilk.sock"
         & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix socket to dial.")
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Dial loopback TCP instead of the Unix socket.")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"S" ~doc:"Seconds between polls.")
  in
  let count =
    Arg.(value & opt int 0
         & info [ "count" ] ~docv:"N"
             ~doc:"Stop after N refreshes (0 = until interrupted).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:
               "Print a single snapshot without clearing the screen and \
                exit (scriptable form of $(b,--count 1)).")
  in
  (* "stats k=v k=v ..." -> assoc *)
  let parse_kv line =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
            Some
              ( String.sub tok 0 i,
                String.sub tok (i + 1) (String.length tok - i - 1) )
        | None -> None)
      (String.split_on_char ' ' (String.trim line))
  in
  (* One exposition sample line -> (metric, labels, value). *)
  let parse_sample line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then None
    else
      match String.rindex_opt line ' ' with
      | None -> None
      | Some sp -> (
          let head = String.sub line 0 sp in
          match float_of_string_opt
                  (String.sub line (sp + 1) (String.length line - sp - 1))
          with
          | None -> None
          | Some v -> (
              match String.index_opt head '{' with
              | None -> Some (head, [], v)
              | Some i when head.[String.length head - 1] = '}' ->
                  let name = String.sub head 0 i in
                  let inner =
                    String.sub head (i + 1) (String.length head - i - 2)
                  in
                  let labels =
                    List.filter_map
                      (fun kv ->
                        match String.index_opt kv '=' with
                        | None -> None
                        | Some j ->
                            let k = String.sub kv 0 j in
                            let v =
                              String.sub kv (j + 1) (String.length kv - j - 1)
                            in
                            let v =
                              (* strip the quotes *)
                              if
                                String.length v >= 2
                                && v.[0] = '"'
                                && v.[String.length v - 1] = '"'
                              then String.sub v 1 (String.length v - 2)
                              else v
                            in
                            Some (k, v))
                      (String.split_on_char ',' inner)
                  in
                  Some (name, labels, v)
              | Some _ -> None))
  in
  (* Cumulative-bucket nearest-rank quantile over the scraped
     [vcilk_request_wall_ms_bucket] series — the same read a Prometheus
     `histogram_quantile` does, minus interpolation. *)
  let hist_quantile samples q =
    let buckets =
      List.filter_map
        (fun (name, labels, v) ->
          if name = "vcilk_request_wall_ms_bucket" then
            match List.assoc_opt "le" labels with
            | Some "+Inf" -> Some (infinity, int_of_float v)
            | Some le -> (
                match float_of_string_opt le with
                | Some le -> Some (le, int_of_float v)
                | None -> None)
            | None -> None
          else None)
        samples
      |> List.sort compare
    in
    match List.rev buckets with
    | [] -> None
    | (_, total) :: _ when total = 0 -> None
    | (_, total) :: _ ->
        let rank =
          Stdlib.max 1 (int_of_float (ceil (q *. float_of_int total)))
        in
        List.find_opt (fun (_, c) -> c >= rank) buckets
        |> Option.map (fun (le, _) -> le)
  in
  let engine_rows samples =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (name, labels, v) ->
        if name = "vcilk_requests_total" then
          match List.assoc_opt "engine" labels with
          | Some engine ->
              let status =
                Option.value ~default:"?" (List.assoc_opt "status" labels)
              in
              let ok, err =
                Option.value ~default:(0, 0) (Hashtbl.find_opt tbl engine)
              in
              let n = int_of_float v in
              Hashtbl.replace tbl engine
                (if status = "ok" then (ok + n, err) else (ok, err + n))
          | None -> ())
      samples;
    Hashtbl.fold (fun e c acc -> (e, c) :: acc) tbl [] |> List.sort compare
  in
  let render ~endpoint stats_line metrics_body =
    let kv = parse_kv (Option.value ~default:"" stats_line) in
    let get k = Option.value ~default:"-" (List.assoc_opt k kv) in
    let samples =
      match metrics_body with
      | None -> []
      | Some body ->
          List.filter_map parse_sample (String.split_on_char '\n' body)
    in
    let q p =
      match hist_quantile samples p with
      | Some ms when ms = infinity -> "inf"
      | Some ms -> Printf.sprintf "%.2f" ms
      | None -> "-"
    in
    Format.printf "vcilk top — %s — uptime %ss@." endpoint (get "uptime_s");
    Format.printf
      "rps(10s) %-8s in-flight %-5s queue %-5s conns %-5s rejected \
       o/p/d %s/%s/%s@."
      (get "rps_10s") (get "in_flight") (get "queue_depth")
      (get "connections") (get "rejected_overload") (get "rejected_protocol")
      (get "rejected_draining");
    Format.printf
      "latency ms (lifetime): p50 %s  p99 %s  p99.9 %s   windowed: p50 %s  \
       p99 %s@."
      (q 0.5) (q 0.99) (q 0.999) (get "p50_wall_ms") (get "p99_wall_ms");
    (match engine_rows samples with
    | [] -> ()
    | rows ->
        Format.printf "%-12s %10s %10s@." "ENGINE" "OK" "ERR";
        List.iter
          (fun (e, (ok, err)) -> Format.printf "%-12s %10d %10d@." e ok err)
          rows);
    Format.print_flush ()
  in
  let run socket tcp interval count once =
    or_die @@ fun () ->
    let endpoint =
      match tcp with
      | Some port -> Printf.sprintf "tcp:127.0.0.1:%d" port
      | None -> Printf.sprintf "unix:%s" socket
    in
    let connect () =
      match tcp with
      | Some port ->
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          fd
      | None ->
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX socket);
          fd
    in
    let count = if once then 1 else count in
    let rec loop i =
      let stats_line = Vc_serve.Loadgen.fetch_stats ~connect in
      let metrics_body = Vc_serve.Loadgen.fetch_metrics ~connect in
      if stats_line = None && metrics_body = None then begin
        Format.eprintf "vcilk: %s: daemon unreachable@." endpoint;
        exit Vc_core.Vc_error.exit_failure
      end;
      if not once then Format.printf "\027[2J\027[H";
      render ~endpoint stats_line metrics_body;
      if count = 0 || i < count then begin
        (try Unix.sleepf interval
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop (i + 1)
      end
    in
    loop 1;
    exit Vc_core.Vc_error.exit_ok
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard for a running vcilk serve daemon: polls \
          /stats and /metrics and shows windowed rps, lifetime latency \
          quantiles (p50/p99/p99.9 from the histogram), queue depth, \
          in-flight jobs, and per-engine request rows. $(b,--once) prints \
          a single snapshot for scripts.")
    Term.(const run $ socket $ tcp $ interval $ count $ once)

let all_cmd =
  let run quick jobs no_cache =
    let ctx = ctx_of quick jobs no_cache in
    Vc_exp.Sweep.prewarm ctx;
    let fmt = Format.std_formatter in
    Vc_exp.Tables.table1 ctx fmt;
    Vc_exp.Tables.table2 ctx fmt;
    Vc_exp.Tables.table3 ctx fmt;
    List.iter
      (fun f -> f ctx fmt)
      Vc_exp.Figures.
        [ figure9; figure10; figure11; figure12; figure13; figure14; figure15;
          figure16; figure17 ];
    Vc_exp.Ablations.strawman ctx fmt;
    Vc_exp.Ablations.compaction_cost ctx fmt;
    Vc_exp.Ablations.dsl_vs_native ctx fmt;
    Vc_exp.Ablations.aos_soa_overhead ctx fmt;
    Vc_exp.Ablations.multicore ctx fmt;
    Vc_exp.Ablations.width_scaling ctx fmt;
    Vc_exp.Ablations.task_cutoff ctx fmt;
    Vc_exp.Ablations.warm_cache ctx fmt;
    finish ctx
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table, figure, and ablation.")
    Term.(const run $ quick_flag $ jobs_flag $ no_cache_flag)

let setup_logs () =
  (* VCILK_LOG=debug|info|warning enables engine logging on stderr *)
  match Sys.getenv_opt "VCILK_LOG" with
  | None -> ()
  | Some level ->
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level
        (match String.lowercase_ascii level with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | _ -> Some Logs.Warning)

let () =
  setup_logs ();
  let doc =
    "Vectorized execution of recursive task-parallel programs (PLDI 2015 \
     reproduction)."
  in
  (* The exit-code taxonomy, defined once in Vc_error and documented
     here: a nonzero exit from chaos/fuzz/loadgen always means "the tool
     detected something", never "the tool fell over" (crashes are 125,
     usage errors 124, both from cmdliner). *)
  let exits =
    [
      Cmd.Exit.info Vc_core.Vc_error.exit_ok
        ~doc:
          "on success (chaos/fuzz/loadgen: every check passed or \
           recovered; serve: graceful drain completed).";
      Cmd.Exit.info Vc_core.Vc_error.exit_failure
        ~doc:
          "on a detected failure: a verification or chaos check failed, \
           fuzz diverged (reproducer written), loadgen saw a divergence \
           or lost replies, an unrecovered fault, or a load error.";
      Cmd.Exit.info Vc_core.Vc_error.exit_budget
        ~doc:
          "when a --deadline, --wall-deadline, --max-live-frames or \
           --max-tasks budget was exceeded.";
      Cmd.Exit.info Vc_core.Vc_error.exit_regression
        ~doc:"when the bench --check-baseline performance gate tripped.";
      Cmd.Exit.info 124 ~doc:"on command-line parsing errors.";
      Cmd.Exit.info 125
        ~doc:"on an unexpected internal crash (never a detected failure).";
      Cmd.Exit.info 130
        ~doc:
          "on SIGINT in long-running subcommands, after flushing partial \
           artifacts (serve instead drains gracefully and exits 0).";
      Cmd.Exit.info 143
        ~doc:
          "on SIGTERM in long-running subcommands, after flushing partial \
           artifacts (serve instead drains gracefully and exits 0).";
    ]
  in
  let info =
    Cmd.info "vcilk" ~version:(Vc_core.Version.describe ()) ~doc ~exits
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            transform_cmd;
            optimize_cmd;
            distribute_cmd;
            interp_cmd;
            table_cmd;
            figure_cmd;
            trace_cmd;
            profile_cmd;
            plot_cmd;
            export_cmd;
            bench_cmd;
            version_cmd;
            verify_cmd;
            chaos_cmd;
            fuzz_cmd;
            serve_cmd;
            loadgen_cmd;
            top_cmd;
            all_cmd;
          ]))
