(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section (printed as data), runs the extra ablations, and then
   times one representative kernel per artifact with Bechamel.

   Set VC_BENCH_QUICK=1 (or pass --quick) for a fast smoke run on
   scaled-down inputs.  --jobs N sets the sweep's worker-domain count
   (default: the recommended domain count); --no-cache skips the
   persistent .vc-cache run cache.  A machine-readable summary —
   regeneration wall-clock, jobs used, per-artifact kernel times — is
   written to BENCH_sweep.json. *)

open Bechamel
open Toolkit
module Jsonx = Vc_exp.Jsonx

let say fmt = Format.printf fmt

let section title = say "@.=== %s ===@.@." title

let regenerate ctx =
  let fmt = Format.std_formatter in
  section "Tables";
  Vc_exp.Tables.table1 ctx fmt;
  Vc_exp.Tables.table2 ctx fmt;
  Vc_exp.Tables.table3 ctx fmt;
  section "Figures";
  Vc_exp.Figures.figure9 ctx fmt;
  Vc_exp.Figures.figure10 ctx fmt;
  Vc_exp.Figures.figure11 ctx fmt;
  Vc_exp.Figures.figure12 ctx fmt;
  Vc_exp.Figures.figure13 ctx fmt;
  Vc_exp.Figures.figure14 ctx fmt;
  Vc_exp.Figures.figure15 ctx fmt;
  Vc_exp.Figures.figure16 ctx fmt;
  Vc_exp.Figures.figure17 ctx fmt;
  section "Ablations";
  Vc_exp.Ablations.strawman ctx fmt;
  Vc_exp.Ablations.compaction_cost ctx fmt;
  Vc_exp.Ablations.dsl_vs_native ctx fmt;
  Vc_exp.Ablations.aos_soa_overhead ctx fmt;
  Vc_exp.Ablations.multicore ctx fmt;
  Vc_exp.Ablations.width_scaling ctx fmt;
  Vc_exp.Ablations.task_cutoff ctx fmt;
  Vc_exp.Ablations.warm_cache ctx fmt;
  section "Claims verification";
  (* reuses this run's cached sweeps, so this is nearly free *)
  Vc_exp.Claims.pp fmt (Vc_exp.Claims.all ctx)

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock of one representative computation per table /
   figure.  The regeneration above computes full (cached) sweeps; these
   time the underlying kernels that produce each artifact's data points,
   on quick-scale inputs so iteration counts stay sane. *)

let e5 = Vc_mem.Machine.xeon_e5
let phi = Vc_mem.Machine.xeon_phi

let quick_spec =
  let ctx = Vc_exp.Sweep.create ~quick:true () in
  fun name -> Vc_exp.Sweep.spec_of ctx (Vc_bench.Registry.find name)

let run_engine spec machine block =
  Staged.stage @@ fun () ->
  ignore
    (Vc_core.Engine.run ~spec ~machine
       ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand = true })
       ()
      : Vc_core.Report.t)

let run_seq spec machine =
  Staged.stage @@ fun () ->
  ignore (Vc_core.Seq_exec.run ~spec ~machine () : Vc_core.Report.t)

let bechamel_tests () =
  let fib = quick_spec "fib" in
  let nqueens = quick_spec "nqueens" in
  let knapsack = quick_spec "knapsack" in
  let parentheses = quick_spec "parentheses" in
  let graphcol = quick_spec "graphcol" in
  [
    Test.make ~name:"table1:seq-baseline(fib,e5)" (run_seq fib e5);
    Test.make ~name:"table2:reexp(fib,e5,2^8)" (run_engine fib e5 256);
    Test.make ~name:"table3:opportunity(nqueens,e5)" (run_engine nqueens e5 256);
    Test.make ~name:"figure9:levels(parentheses)" (run_seq parentheses e5);
    Test.make ~name:"figure10:utilization(fib,2^4)" (run_engine fib e5 16);
    Test.make ~name:"figure11:e5-cache(knapsack,2^12)" (run_engine knapsack e5 4096);
    Test.make ~name:"figure12:e5-speedup(graphcol,2^8)" (run_engine graphcol e5 256);
    Test.make ~name:"figure13:phi-cpi(knapsack,2^12)" (run_engine knapsack phi 4096);
    Test.make ~name:"figure14:phi-speedup(fib,2^8)" (run_engine fib phi 256);
    Test.make ~name:"figure15:reexpansion(nqueens,2^6)" (run_engine nqueens e5 64);
    Test.make ~name:"figure16:compaction(fib,seq-engine)"
      (Staged.stage @@ fun () ->
       ignore
         (Vc_core.Engine.run ~compact:Vc_simd.Compact.Sequential ~spec:fib
            ~machine:e5
            ~strategy:(Vc_core.Policy.Hybrid { max_block = 256; reexpand = true })
            ()
           : Vc_core.Report.t));
  ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let tests = Test.make_grouped ~name:"regen" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  say "@.=== Bechamel: wall-clock per regeneration kernel ===@.@.";
  match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None ->
      say "(no results)@.";
      []
  | Some per_test ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test []
        |> List.sort compare
      in
      List.filter_map
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) ->
              say "%-45s %12.0f ns/run@." name est;
              Some (name, est)
          | _ ->
              say "%-45s (no estimate)@." name;
              None)
        rows

(* Summary telemetry of one representative run (deterministic: the model
   quantities of fib/e5 with re-expansion), so the perf-trajectory
   artifact also tracks scheduler-behavior drift across commits. *)
let telemetry_json ctx =
  let r =
    Vc_exp.Sweep.hybrid ctx
      (Vc_bench.Registry.find "fib")
      Vc_mem.Machine.xeon_e5 ~reexpand:true ~block:256
  in
  Jsonx.Obj
    [
      ("benchmark", String r.Vc_core.Report.benchmark);
      ("strategy", String r.Vc_core.Report.strategy);
      ("reexp_count", Int r.Vc_core.Report.reexp_count);
      ("compaction_calls", Int r.Vc_core.Report.compaction_calls);
      ("compaction_passes", Int r.Vc_core.Report.compaction_passes);
      ( "occupancy_hist",
        List
          (Array.to_list r.Vc_core.Report.occupancy_hist
          |> List.map (fun n -> Jsonx.Int n)) );
    ]

(* The perf-trajectory artifact: enough to compare sweeps across commits
   (total regeneration seconds, jobs used, per-artifact kernel times). *)
let write_sweep_json ~jobs ~quick ~regen_seconds ~simulated ~cache_hits ~kernels
    ~telemetry =
  let doc =
    Jsonx.Obj
      [
        ("version", Int 1);
        ("jobs", Int jobs);
        ("quick", Bool quick);
        ("total_regen_seconds", Float regen_seconds);
        ("simulated", Int simulated);
        ("disk_cache_hits", Int cache_hits);
        ( "kernels",
          List
            (List.map
               (fun (name, ns) ->
                 Jsonx.Obj [ ("name", String name); ("ns_per_run", Float ns) ])
               kernels) );
        ("telemetry", telemetry);
      ]
  in
  let oc = open_out_bin "BENCH_sweep.json" in
  output_string oc (Jsonx.to_string doc);
  output_char oc '\n';
  close_out oc;
  say "(wrote BENCH_sweep.json)@."

let () =
  let jobs = ref (Vc_exp.Pool.default_jobs ()) in
  let no_cache = ref false in
  let quick = ref false in
  let deadline = ref 0.0 in
  let wall_deadline = ref 0.0 in
  let max_live_frames = ref 0 in
  Arg.parse
    [
      ("--jobs", Arg.Set_int jobs, "N  worker domains for the sweep");
      ("--no-cache", Arg.Set no_cache, " skip the persistent .vc-cache run cache");
      ("--quick", Arg.Set quick, " scaled-down workloads (same as VC_BENCH_QUICK=1)");
      ( "--deadline",
        Arg.Set_float deadline,
        "CYCLES  modeled-cycle budget per engine run (exceeded: exit 2)" );
      ( "--wall-deadline",
        Arg.Set_float wall_deadline,
        "SECONDS  wall-clock budget per run (exceeded: exit 2)" );
      ( "--max-live-frames",
        Arg.Set_int max_live_frames,
        "N  live-frame budget per run (exceeded: exit 2)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--jobs N] [--no-cache] [--quick] [--deadline C] [--wall-deadline S] \
     [--max-live-frames N]";
  let opt_pos r = if !r > 0.0 then Some !r else None in
  let budgets =
    {
      Vc_core.Supervisor.deadline = opt_pos deadline;
      wall_deadline = opt_pos wall_deadline;
      max_live_frames = (if !max_live_frames > 0 then Some !max_live_frames else None);
    }
  in
  let ctx =
    Vc_exp.Sweep.create
      ?quick:(if !quick then Some true else None)
      ~jobs:!jobs
      ~cache_dir:(if !no_cache then None else Some ".vc-cache")
      ~budgets
      ~faults:(Vc_core.Fault.of_env ())
      ()
  in
  say "vectorcilk benchmark harness (quick mode: %b, jobs: %d)@."
    (Vc_exp.Sweep.quick ctx) (Vc_exp.Sweep.jobs ctx);
  try
    let t0 = Unix.gettimeofday () in
    Vc_exp.Sweep.prewarm ctx;
    regenerate ctx;
    Vc_exp.Sweep.persist ctx;
    let regen_seconds = Unix.gettimeofday () -. t0 in
    say "@.(regeneration took %.1fs; %d simulated, %d disk-cache hits)@."
      regen_seconds
      (Vc_exp.Sweep.simulations ctx)
      (Vc_exp.Sweep.cache_hits ctx);
    let kernels = run_bechamel () in
    write_sweep_json ~jobs:(Vc_exp.Sweep.jobs ctx) ~quick:(Vc_exp.Sweep.quick ctx)
      ~regen_seconds
      ~simulated:(Vc_exp.Sweep.simulations ctx)
      ~cache_hits:(Vc_exp.Sweep.cache_hits ctx)
      ~kernels ~telemetry:(telemetry_json ctx);
    (* Baseline history: one summary entry per harness run, the input of
       [vcilk bench --check-baseline].  Fault-armed runs carry degraded
       (recovered) costs and must never enter the history. *)
    if Vc_core.Fault.armed (Vc_core.Fault.of_env ()) then
      say "(fault-armed run: not appending to BENCH_history.json)@."
    else begin
      Vc_exp.Baseline.append ~path:"BENCH_history.json"
        (Vc_exp.Baseline.collect ctx);
      say "(appended to BENCH_history.json)@."
    end
  with Vc_core.Vc_error.Error e ->
    Format.eprintf "bench: %s@." (Vc_core.Vc_error.to_string e);
    exit (Vc_core.Vc_error.exit_code e)
