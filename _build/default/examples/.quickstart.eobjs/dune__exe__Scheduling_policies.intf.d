examples/scheduling_policies.mli:
