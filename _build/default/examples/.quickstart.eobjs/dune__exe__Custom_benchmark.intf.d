examples/custom_benchmark.mli:
