examples/scheduling_policies.ml: Format List Printf Vc_bench Vc_core Vc_mem
