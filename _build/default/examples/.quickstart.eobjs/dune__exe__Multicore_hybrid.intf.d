examples/multicore_hybrid.mli:
