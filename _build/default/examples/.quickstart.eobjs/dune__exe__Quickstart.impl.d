examples/quickstart.ml: Format List Vc_core Vc_lang Vc_mem Vc_simd
