examples/dsl_pipeline.ml: Array Filename Format List String Sys Vc_core Vc_lang Vc_mem
