examples/dsl_pipeline.mli:
