examples/multicore_hybrid.ml: Format List Vc_bench Vc_core Vc_mem
