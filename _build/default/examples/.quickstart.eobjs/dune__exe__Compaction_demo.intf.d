examples/compaction_demo.mli:
