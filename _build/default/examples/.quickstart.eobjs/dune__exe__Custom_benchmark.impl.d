examples/custom_benchmark.ml: Format List Printf String Vc_core Vc_lang Vc_mem Vc_simd
