examples/quickstart.mli:
