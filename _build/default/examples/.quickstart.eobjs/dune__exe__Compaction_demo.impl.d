examples/compaction_demo.ml: Array Format List String Vc_bench Vc_simd
