(* Batch-processing DSL programs from files.

   Reads every .rtp program under examples/dsl/, validates it, prints its
   transformation, and cross-checks three executions of each: the
   sequential interpreter, the transformed-code interpreter, and the
   compiled spec on the measured engine.

   Run with: dune exec examples/dsl_pipeline.exe *)

let args_for = function
  | "fib" -> [ 18 ]
  | "paren" -> [ 8; 0; 0 ]
  | "binomial" -> [ 14; 6 ]
  | "sumrange" -> [ 0; 2000 ]
  | name -> failwith ("no default arguments for " ^ name)

let dsl_dir =
  (* works from the repo root and from _build *)
  let candidates = [ "examples/dsl"; "../../../examples/dsl"; "dsl" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> failwith "cannot locate examples/dsl"

let () =
  let files =
    Sys.readdir dsl_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".rtp")
    |> List.sort compare
  in
  List.iter
    (fun file ->
      let path = Filename.concat dsl_dir file in
      Format.printf "=== %s ===@." file;
      let program = Vc_lang.Parser.parse_file path in
      let info = Vc_lang.Validate.check_exn program in
      let name = program.Vc_lang.Ast.mth.Vc_lang.Ast.name in
      let args = args_for name in
      Format.printf "%s: %d params, %d spawn sites, locals: [%s]@." name
        (List.length program.Vc_lang.Ast.mth.Vc_lang.Ast.params)
        info.Vc_lang.Validate.num_spawns
        (String.concat "; " info.Vc_lang.Validate.locals);

      (* 1. sequential reference *)
      let reference = Vc_lang.Interp.run program args in
      (* 2. transformed code, interpreted *)
      let transformed = Vc_core.Transform.transform program in
      let blocked = Vc_core.Blocked_interp.run transformed args in
      (* 3. compiled spec on the measured engine *)
      let spec = Vc_core.Compile.spec_of_program program ~args in
      let engine =
        Vc_core.Engine.run ~spec ~machine:Vc_mem.Machine.xeon_e5
          ~strategy:(Vc_core.Policy.Hybrid { max_block = 128; reexpand = true })
          ()
      in
      List.iter
        (fun (reducer, expected) ->
          let from_blocked = List.assoc reducer blocked.Vc_core.Blocked_interp.reducers in
          let from_engine = Vc_core.Report.reducer engine reducer in
          Format.printf "  %-8s sequential=%d transformed=%d engine=%d  %s@."
            reducer expected from_blocked from_engine
            (if expected = from_blocked && expected = from_engine then "OK"
             else "MISMATCH!");
          if expected <> from_blocked || expected <> from_engine then exit 1)
        reference.Vc_lang.Interp.reducers;
      Format.printf "  (%d tasks; engine utilization %.1f%%)@.@."
        blocked.Vc_core.Blocked_interp.tasks
        (100.0 *. engine.Vc_core.Report.utilization))
    files
