(* The multicore x SIMD hybrid (the paper's §8 future work).

   The single-core engine vectorizes one core's work; this example layers
   simulated multicore scheduling on top: a serial breadth-first expansion
   grows the frontier, the frontier splits into jobs, and jobs run on P
   workers under two schedulers — idealized LPT list scheduling and a
   discrete-event work-stealing simulation with per-steal costs.

   Run with: dune exec examples/multicore_hybrid.exe *)

let () =
  let machine = Vc_mem.Machine.xeon_e5 in
  let spec = Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 11 } in
  let seq = Vc_core.Seq_exec.run ~spec ~machine () in
  Format.printf "11-queens, %a: sequential = %.3e cycles, %d solutions@.@."
    Vc_mem.Machine.pp machine seq.Vc_core.Report.cycles
    (Vc_core.Report.reducer seq "solutions");
  Format.printf "%8s %6s %10s %12s %12s %8s %10s %12s@." "workers" "jobs"
    "frontier" "lpt" "stealing" "steals" "serial%" "solutions";
  List.iter
    (fun workers ->
      let lpt = Vc_core.Multicore.run ~spec ~machine ~workers () in
      let ws =
        Vc_core.Multicore.run
          ~schedule:(Vc_core.Multicore.Work_stealing { steal_cost = 200.0; seed = 3 })
          ~spec ~machine ~workers ()
      in
      Format.printf "%8d %6d %10d %12.2f %12.2f %8d %9.1f%% %12d@." workers
        lpt.Vc_core.Multicore.jobs lpt.Vc_core.Multicore.frontier
        (Vc_core.Multicore.speedup ~baseline:seq lpt)
        (Vc_core.Multicore.speedup ~baseline:seq ws)
        ws.Vc_core.Multicore.steals
        (100.0 *. lpt.Vc_core.Multicore.expansion_cycles /. lpt.Vc_core.Multicore.cycles)
        (List.assoc "solutions" lpt.Vc_core.Multicore.reducers))
    [ 1; 2; 4; 8; 16; 32 ];
  Format.printf
    "@.The SIMD speedup composes with core count until the serial expansion@.\
     phase (Amdahl) and job imbalance take over.@."
