(* Quickstart: the whole pipeline on the paper's running example.

   1. Write a recursive task-parallel program in the Fig. 2 language.
   2. Validate it and run it sequentially (the reference semantics).
   3. Apply the Fig. 7 transformation and print the blocked code, plus
      its loop-distributed dense-step form.
   4. Compile it to an executable spec and run it on the simulated vector
      machine under the re-expansion schedule.

   Run with: dune exec examples/quickstart.exe *)

let source =
  "reducer sum result;\n\
   def fib(n) =\n\
  \  if n < 2 then { reduce(result, n); }\n\
  \  else { spawn fib(n - 1); spawn fib(n - 2); }\n"

let () =
  (* 1. parse + validate *)
  let program = Vc_lang.Parser.parse_string source in
  let info = Vc_lang.Validate.check_exn program in
  Format.printf "parsed %s: %d spawn sites@.@." program.Vc_lang.Ast.mth.Vc_lang.Ast.name
    info.Vc_lang.Validate.num_spawns;

  (* 2. sequential reference run *)
  let out = Vc_lang.Interp.run program [ 25 ] in
  Format.printf "sequential: result = %d over %d tasks@.@."
    (List.assoc "result" out.Vc_lang.Interp.reducers)
    (Vc_lang.Profile.tasks out.Vc_lang.Interp.profile);

  (* 3. the code transformation (compare the paper's Figs. 3 and 4(b)) *)
  let transformed = Vc_core.Transform.transform program in
  Format.printf "%a@.@." Vc_core.Blocked_ast.pp transformed;

  (* ... and execute the transformed code directly, to see it agrees *)
  let blocked = Vc_core.Blocked_interp.run transformed [ 25 ] in
  Format.printf "transformed code: result = %d, %d bfs->blocked switches, %d \
                 re-expansions@.@."
    (List.assoc "result" blocked.Vc_core.Blocked_interp.reducers)
    blocked.Vc_core.Blocked_interp.switches
    blocked.Vc_core.Blocked_interp.reexpansions;

  (* 3b. ...and the compiler's view after loop distribution and
     if-conversion: a series of dense, directly vectorizable steps *)
  Format.printf "%a@.@." Vc_core.Distribute.pp
    (Vc_core.Distribute.distribute transformed.Vc_core.Blocked_ast.bfs_method);

  (* 4. measured execution on the simulated vector hardware *)
  let spec = Vc_core.Compile.spec_of_program ~lane_kind:Vc_simd.Lane.I8 program ~args:[ 25 ] in
  let machine = Vc_mem.Machine.xeon_e5 in
  let seq = Vc_core.Seq_exec.run ~spec ~machine () in
  let vec =
    Vc_core.Engine.run ~spec ~machine
      ~strategy:(Vc_core.Policy.Hybrid { max_block = 512; reexpand = true })
      ()
  in
  Format.printf "%a@.@." Vc_core.Report.pp_summary vec;
  Format.printf "modeled speedup on %s: %.2fx (utilization %.1f%%)@."
    machine.Vc_mem.Machine.name
    (Vc_core.Report.speedup ~baseline:seq vec)
    (100.0 *. vec.Vc_core.Report.utilization)
