(* Exploring the scheduling space on an irregular workload.

   n-queens is the paper's showcase for re-expansion (§4.3): placements
   die out at every level, so blocked depth-first execution starves the
   SIMD lanes unless shrunken blocks are re-expanded breadth-first.  This
   example sweeps the block-size knob and prints the utilization/locality/
   speedup trade-off of Figs. 10-12.

   Run with: dune exec examples/scheduling_policies.exe *)

let () =
  let machine = Vc_mem.Machine.xeon_e5 in
  let spec = Vc_bench.Nqueens.spec { Vc_bench.Nqueens.n = 10 } in
  let seq = Vc_core.Seq_exec.run ~spec ~machine () in
  Format.printf
    "10-queens on %a: %d tasks, %d solutions, sequential = %.3e cycles@.@."
    Vc_mem.Machine.pp machine seq.Vc_core.Report.tasks
    (Vc_core.Report.reducer seq "solutions")
    seq.Vc_core.Report.cycles;
  Format.printf "%8s | %9s %9s %9s | %9s %9s %9s@." "block" "util-" "L1d-"
    "speed-" "util+" "L1d+" "speed+";
  Format.printf "%8s | %29s | %29s@." "" "(no re-expansion)" "(with re-expansion)";
  List.iter
    (fun exp ->
      let block = 1 lsl exp in
      let run reexpand =
        Vc_core.Engine.run ~spec ~machine
          ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand })
          ()
      in
      let off = run false and on = run true in
      let l1 (r : Vc_core.Report.t) =
        match List.assoc_opt "L1d" r.Vc_core.Report.miss_rates with
        | Some rate -> rate
        | None -> 0.0
      in
      Format.printf "%8s | %8.1f%% %9.4f %9.2f | %8.1f%% %9.4f %9.2f@."
        (Printf.sprintf "2^%d" exp)
        (100.0 *. off.Vc_core.Report.utilization)
        (l1 off)
        (Vc_core.Report.speedup ~baseline:seq off)
        (100.0 *. on.Vc_core.Report.utilization)
        (l1 on)
        (Vc_core.Report.speedup ~baseline:seq on))
    [ 2; 4; 6; 8; 10; 12; 14 ];
  Format.printf
    "@.Note the paper's headline effect: with re-expansion, near-full@.\
     utilization arrives at much smaller blocks, before locality degrades.@."
