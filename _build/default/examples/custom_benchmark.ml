(* Defining your own benchmark as a native Spec.

   The scenario: counting the subsets of {1..n} whose sum equals a target
   — a divide-and-conquer search like the paper's knapsack, but written
   from scratch against the public Spec API and run under every execution
   strategy on both simulated machines.

   Run with: dune exec examples/custom_benchmark.exe *)

let n = 20
let target = 60

(* Reference: straightforward recursion. *)
let expected =
  let rec go i acc = function
    | rest when i > n -> if rest = 0 then acc + 1 else acc
    | rest -> go (i + 1) (go (i + 1) acc (rest - i)) rest
  in
  go 1 0 target

(* The spec: a task is (next element, remaining target).  Site 0 includes
   the element (when it still fits), site 1 excludes it. *)
let spec : Vc_core.Spec.t =
  let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I16 [ "i"; "rest" ] in
  {
    Vc_core.Spec.name = "subset-sum";
    description = Printf.sprintf "subsets of 1..%d summing to %d" n target;
    schema;
    num_spawns = 2;
    roots = [ [| 1; target |] ];
    reducers = [ ("count", Vc_lang.Reducer.Sum) ];
    is_base =
      (fun blk row ->
        let rest = Vc_core.Block.get blk ~field:1 ~row in
        rest = 0 || Vc_core.Block.get blk ~field:0 ~row > n);
    exec_base =
      (fun reducers blk row ->
        if Vc_core.Block.get blk ~field:1 ~row = 0 then
          Vc_lang.Reducer.reduce reducers "count" 1);
    spawn =
      (fun blk row ~site ~dst ->
        let i = Vc_core.Block.get blk ~field:0 ~row in
        let rest = Vc_core.Block.get blk ~field:1 ~row in
        match site with
        | 0 ->
            if rest >= i then begin
              Vc_core.Block.push dst [| i + 1; rest - i |];
              true
            end
            else false
        | _ ->
            Vc_core.Block.push dst [| i + 1; rest |];
            true);
    insns =
      {
        check_insns = 3;
        base_insns = 2;
        inductive_insns = 1;
        spawn_insns = 3;
        scalar_insns = 1;
      };
  }

let () =
  (match Vc_core.Spec.validate spec with
  | Ok () -> ()
  | Error es -> failwith (String.concat "; " es));
  Format.printf "expected count (native recursion): %d@.@." expected;
  List.iter
    (fun machine ->
      let seq = Vc_core.Seq_exec.run ~spec ~machine () in
      Format.printf "--- %a ---@." Vc_mem.Machine.pp machine;
      Format.printf "%-10s %10s %10s %8s %10s@." "strategy" "count" "cycles" "util"
        "speedup";
      let show label (r : Vc_core.Report.t) =
        Format.printf "%-10s %10d %10.3e %7.1f%% %10.2f@." label
          (Vc_core.Report.reducer r "count")
          r.Vc_core.Report.cycles
          (100.0 *. r.Vc_core.Report.utilization)
          (Vc_core.Report.speedup ~baseline:seq r)
      in
      show "seq" seq;
      show "strawman" (Vc_core.Strawman.run ~spec ~machine ());
      show "bfs" (Vc_core.Engine.run ~spec ~machine ~strategy:Vc_core.Policy.Bfs_only ());
      show "noreexp"
        (Vc_core.Engine.run ~spec ~machine
           ~strategy:(Vc_core.Policy.Hybrid { max_block = 1024; reexpand = false })
           ());
      show "reexp"
        (Vc_core.Engine.run ~spec ~machine
           ~strategy:(Vc_core.Policy.Hybrid { max_block = 1024; reexpand = true })
           ());
      Format.printf "@.")
    Vc_mem.Machine.all
