(* A walkthrough of the paper's stream-compaction algorithm (§5, Fig. 8).

   Reproduces the figure's example — compacting a four-element vector with
   two-way SIMD shuffle tables — then compares the instruction cost and
   table footprint of all engines on a realistic block partition.

   Run with: dune exec examples/compaction_demo.exe *)

let () =
  (* Fig. 8: input [8; 0; 0; 9]; 0 marks a base (leaf) task.  We compact
     the non-leaf tasks to the front using 2-wide tables. *)
  let input = [| 8; 0; 0; 9 |] in
  let is_inductive v = v <> 0 in
  Format.printf "input: [%s]@.@."
    (String.concat "; " (Array.to_list (Array.map string_of_int input)));

  let table = Vc_simd.Shuffle_table.make ~width:2 in
  Format.printf "two-way shuffle table (%d entries, %d bytes):@."
    (Vc_simd.Shuffle_table.entry_count table)
    (Vc_simd.Shuffle_table.memory_bytes table);
  for mask = 0 to 3 do
    let control = Vc_simd.Shuffle_table.shuffle_control table mask in
    Format.printf "  mask %d%d -> [%s], advance %d@." (mask land 1)
      ((mask lsr 1) land 1)
      (String.concat "; "
         (Array.to_list
            (Array.map (fun i -> if i < 0 then "F" else string_of_int i) control)))
      (Vc_simd.Shuffle_table.advance table mask)
  done;

  (* the multi-pass compaction: one sub-table lookup per 2-wide half, the
     advance table telling the second pass where to land *)
  let output = Array.make 4 0 in
  let pos = ref 0 in
  Array.iteri
    (fun half _ ->
      if half mod 2 = 0 then begin
        let mask =
          (if is_inductive input.(half) then 1 else 0)
          lor if is_inductive input.(half + 1) then 2 else 0
        in
        let before = !pos in
        pos :=
          Vc_simd.Shuffle_table.apply table mask
            ~src:(Array.sub input half 2)
            ~dst:output ~pos:!pos;
        Format.printf "@.half %d: mask -> advance %d (output position %d -> %d)"
          (half / 2) (!pos - before) before !pos
      end)
    input;
  Format.printf "@.@.compacted: [%s]  (inductive tasks first, as in Fig. 8)@.@."
    (String.concat "; " (Array.to_list (Array.map string_of_int output)));

  (* Engine comparison on a bigger stream *)
  let n = 1 lsl 12 in
  let pred i = Vc_bench.Rng.mix32 i 1 land 3 <> 0 in
  Format.printf "engines on a %d-element partition (width 16):@." n;
  Format.printf "  %-18s %9s %9s %9s %12s@." "engine" "scalar" "vector" "lookups"
    "table bytes";
  List.iter
    (fun (engine, isa) ->
      let vm = Vc_simd.Vm.create isa in
      let sel, rest = Vc_simd.Compact.partition ~vm ~engine ~width:16 ~n ~pred in
      assert (Array.length sel + Array.length rest = n);
      let s = Vc_simd.Vm.stats vm in
      Format.printf "  %-18s %9d %9d %9d %12d@."
        (Vc_simd.Compact.name engine)
        s.Vc_simd.Stats.scalar_ops s.Vc_simd.Stats.vector_ops
        s.Vc_simd.Stats.table_lookups
        (Vc_simd.Compact.table_memory_bytes engine ~width:16))
    [
      (Vc_simd.Compact.Sequential, Vc_simd.Isa.sse42);
      (Vc_simd.Compact.Full_table, Vc_simd.Isa.sse42);
      (Vc_simd.Compact.Factorized { sub_width = 8 }, Vc_simd.Isa.sse42);
      (Vc_simd.Compact.Prefix_scatter { sub_width = 8 }, Vc_simd.Isa.avx512);
    ];
  Format.printf
    "@.The paper's trade-off: the factorized engine shrinks the table by@.\
     2^8 while costing only a few extra lookups per register.@."
