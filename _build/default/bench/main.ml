(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section (printed as data), runs the extra ablations, and then
   times one representative kernel per artifact with Bechamel.

   Set VC_BENCH_QUICK=1 for a fast smoke run on scaled-down inputs. *)

open Bechamel
open Toolkit

let say fmt = Format.printf fmt

let section title = say "@.=== %s ===@.@." title

let regenerate ctx =
  let fmt = Format.std_formatter in
  section "Tables";
  Vc_exp.Tables.table1 ctx fmt;
  Vc_exp.Tables.table2 ctx fmt;
  Vc_exp.Tables.table3 ctx fmt;
  section "Figures";
  Vc_exp.Figures.figure9 ctx fmt;
  Vc_exp.Figures.figure10 ctx fmt;
  Vc_exp.Figures.figure11 ctx fmt;
  Vc_exp.Figures.figure12 ctx fmt;
  Vc_exp.Figures.figure13 ctx fmt;
  Vc_exp.Figures.figure14 ctx fmt;
  Vc_exp.Figures.figure15 ctx fmt;
  Vc_exp.Figures.figure16 ctx fmt;
  section "Ablations";
  Vc_exp.Ablations.strawman ctx fmt;
  Vc_exp.Ablations.compaction_cost ctx fmt;
  Vc_exp.Ablations.dsl_vs_native ctx fmt;
  Vc_exp.Ablations.aos_soa_overhead ctx fmt;
  Vc_exp.Ablations.multicore ctx fmt;
  Vc_exp.Ablations.width_scaling ctx fmt;
  Vc_exp.Ablations.task_cutoff ctx fmt;
  Vc_exp.Ablations.warm_cache ctx fmt;
  section "Claims verification";
  (* reuses this run's cached sweeps, so this is nearly free *)
  Vc_exp.Claims.pp fmt (Vc_exp.Claims.all ctx)

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock of one representative computation per table /
   figure.  The regeneration above computes full (cached) sweeps; these
   time the underlying kernels that produce each artifact's data points,
   on quick-scale inputs so iteration counts stay sane. *)

let e5 = Vc_mem.Machine.xeon_e5
let phi = Vc_mem.Machine.xeon_phi

let quick_spec =
  let ctx = Vc_exp.Sweep.create ~quick:true () in
  fun name -> Vc_exp.Sweep.spec_of ctx (Vc_bench.Registry.find name)

let run_engine spec machine block =
  Staged.stage @@ fun () ->
  ignore
    (Vc_core.Engine.run ~spec ~machine
       ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand = true })
       ()
      : Vc_core.Report.t)

let run_seq spec machine =
  Staged.stage @@ fun () ->
  ignore (Vc_core.Seq_exec.run ~spec ~machine () : Vc_core.Report.t)

let bechamel_tests () =
  let fib = quick_spec "fib" in
  let nqueens = quick_spec "nqueens" in
  let knapsack = quick_spec "knapsack" in
  let parentheses = quick_spec "parentheses" in
  let graphcol = quick_spec "graphcol" in
  [
    Test.make ~name:"table1:seq-baseline(fib,e5)" (run_seq fib e5);
    Test.make ~name:"table2:reexp(fib,e5,2^8)" (run_engine fib e5 256);
    Test.make ~name:"table3:opportunity(nqueens,e5)" (run_engine nqueens e5 256);
    Test.make ~name:"figure9:levels(parentheses)" (run_seq parentheses e5);
    Test.make ~name:"figure10:utilization(fib,2^4)" (run_engine fib e5 16);
    Test.make ~name:"figure11:e5-cache(knapsack,2^12)" (run_engine knapsack e5 4096);
    Test.make ~name:"figure12:e5-speedup(graphcol,2^8)" (run_engine graphcol e5 256);
    Test.make ~name:"figure13:phi-cpi(knapsack,2^12)" (run_engine knapsack phi 4096);
    Test.make ~name:"figure14:phi-speedup(fib,2^8)" (run_engine fib phi 256);
    Test.make ~name:"figure15:reexpansion(nqueens,2^6)" (run_engine nqueens e5 64);
    Test.make ~name:"figure16:compaction(fib,seq-engine)"
      (Staged.stage @@ fun () ->
       ignore
         (Vc_core.Engine.run ~compact:Vc_simd.Compact.Sequential ~spec:fib
            ~machine:e5
            ~strategy:(Vc_core.Policy.Hybrid { max_block = 256; reexpand = true })
            ()
           : Vc_core.Report.t));
  ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let tests = Test.make_grouped ~name:"regen" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  say "@.=== Bechamel: wall-clock per regeneration kernel ===@.@.";
  match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> say "(no results)@."
  | Some per_test ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test []
        |> List.sort compare
      in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> say "%-45s %12.0f ns/run@." name est
          | _ -> say "%-45s (no estimate)@." name)
        rows

let () =
  let ctx = Vc_exp.Sweep.create () in
  say "vectorcilk benchmark harness (quick mode: %b)@." (Vc_exp.Sweep.quick ctx);
  let t0 = Unix.gettimeofday () in
  regenerate ctx;
  say "@.(regeneration took %.1fs)@." (Unix.gettimeofday () -. t0);
  run_bechamel ()
