test/gen_programs.ml: Ast List Pp Printf QCheck Reducer String Vc_lang
