test/test_bench.ml: Alcotest Array Binomial Fib Graphcol Knapsack List Minmax Nqueens Parentheses Printf QCheck QCheck_alcotest Registry Rng String Uts Vc_bench Vc_core Vc_lang Vc_mem
