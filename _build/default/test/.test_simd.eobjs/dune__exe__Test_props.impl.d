test/test_props.ml: Alcotest Array Compile Engine Gen_programs List Multicore Policy Printf QCheck QCheck_alcotest Report String Trace Vc_core Vc_lang Vc_mem Vc_simd
