test/test_simd.ml: Alcotest Array Compact Gen Isa Lane List Mask Prefix_table QCheck QCheck_alcotest Shuffle_table Stats Vc_simd Vm
