test/test_passes.ml: Alcotest Array Ast Format Gen_programs Interp List Optim Parser QCheck QCheck_alcotest Reducer String Termination Validate Vc_core Vc_lang
