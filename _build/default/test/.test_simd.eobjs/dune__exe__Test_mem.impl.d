test/test_mem.ml: Alcotest Cache Cost Hierarchy Machine Vc_mem Vc_simd
