test/test_lang.ml: Alcotest Array Ast Builtins Gen_programs Interp Lexer List Parser Pp Printf Profile QCheck QCheck_alcotest Reducer String Token Validate Vc_lang
