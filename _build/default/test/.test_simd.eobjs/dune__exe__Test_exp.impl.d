test/test_exp.ml: Alcotest Filename Format List String Sys Unix Vc_bench Vc_core Vc_exp Vc_mem
