(* QCheck generators for random, valid, terminating DSL programs.

   Shape: a two-parameter method [m(a, b)] whose base condition is
   [a < cutoff] and whose spawns always pass [a - 1] first, so every
   program terminates with tree depth <= root argument.  Base cases
   reduce arbitrary integer expressions; bodies sprinkle assignments,
   conditionals and loops that respect the validator's definite-assignment
   and typing rules. *)

open Vc_lang

let params = [ "a"; "b" ]

(* Integer expressions over the given in-scope variables. *)
let rec gen_int_expr vars depth st =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Int n) (int_range 0 9);
        map (fun v -> Ast.Var v) (oneofl vars);
      ]
  in
  if depth <= 0 then leaf st
  else
    (frequency
       [
         (3, leaf);
         ( 2,
           map2
             (fun op (l, r) -> Ast.Binop (op, l, r))
             (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
             (pair (gen_int_expr vars (depth - 1)) (gen_int_expr vars (depth - 1))) );
         (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (gen_int_expr vars (depth - 1)));
         ( 1,
           map2
             (fun a b -> Ast.Call ("min2", [ a; b ]))
             (gen_int_expr vars (depth - 1))
             (gen_int_expr vars (depth - 1)) );
       ])
      st

let gen_bool_expr vars depth st =
  let open QCheck.Gen in
  (map2
     (fun op (l, r) -> Ast.Binop (op, l, r))
     (oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ])
     (pair (gen_int_expr vars depth) (gen_int_expr vars depth)))
    st

(* Base-case statements: reduces, assignments, conditionals.  [vars] only
   grows through locals assigned in straight-line positions. *)
let rec gen_base_stmt vars depth st =
  let open QCheck.Gen in
  if depth <= 0 then
    (map (fun e -> Ast.Reduce ("acc", e)) (gen_int_expr vars 1)) st
  else
    (frequency
       [
         (3, map (fun e -> Ast.Reduce ("acc", e)) (gen_int_expr vars 2));
         ( 2,
           (* assign a local then use it afterwards *)
           map2
             (fun e body -> Ast.Seq (Ast.Assign ("t", e), body))
             (gen_int_expr vars 2)
             (gen_base_stmt ("t" :: vars) (depth - 1)) );
         ( 2,
           map3
             (fun c a b -> Ast.If (c, a, b))
             (gen_bool_expr vars 1)
             (gen_base_stmt vars (depth - 1))
             (gen_base_stmt vars (depth - 1)) );
         (1, pure Ast.Skip);
         ( 1,
           map2
             (fun a b -> Ast.Seq (a, b))
             (gen_base_stmt vars (depth - 1))
             (gen_base_stmt vars (depth - 1)) );
       ])
      st

(* The inductive case: spawn sites in fixed syntactic order with
   decreasing first argument.  Optionally a conditional guards the last
   spawn (both branches see the same site because ids are syntactic). *)
let gen_inductive vars n_spawns st =
  let open QCheck.Gen in
  let spawn id st =
    let b = gen_int_expr vars 2 st in
    Ast.Spawn { Ast.spawn_id = id; spawn_args = [ Ast.Binop (Ast.Sub, Ast.Var "a", Ast.Int 1); b ] }
  in
  let sites = List.init n_spawns (fun i -> spawn i st) in
  let guarded =
    match List.rev sites with
    | last :: rest when bool st ->
        List.rev (Ast.If (gen_bool_expr vars 1 st, last, Ast.Skip) :: rest)
    | _ -> sites
  in
  Ast.seq guarded

(* The parser produces right-nested [Seq] chains with no [Skip] operands,
   so normalize generated statements to the same canonical form to make the
   print/parse round trip exact. *)
let rec normalize (s : Ast.stmt) : Ast.stmt =
  let rec flatten s acc =
    match s with
    | Ast.Seq (a, b) -> flatten a (flatten b acc)
    | Ast.Skip -> acc
    | s -> normalize_leaf s :: acc
  and normalize_leaf = function
    | Ast.If (c, a, b) -> Ast.If (c, normalize a, normalize b)
    | Ast.While (c, body) -> Ast.While (c, normalize body)
    | (Ast.Skip | Ast.Return | Ast.Assign _ | Ast.Reduce _ | Ast.Spawn _ | Ast.Seq _) as s -> s
  in
  Ast.seq (flatten s [])

let gen_program st =
  let open QCheck.Gen in
  let cutoff = int_range 1 2 st in
  let n_spawns = int_range 1 3 st in
  let base = normalize (gen_base_stmt params (int_range 0 3 st) st) in
  let inductive = normalize (gen_inductive params n_spawns st) in
  {
    Ast.reducers = [ { Ast.red_name = "acc"; red_op = Reducer.Sum } ];
    mth =
      {
        Ast.name = "m";
        params;
        is_base = Ast.Binop (Ast.Lt, Ast.Var "a", Ast.Int cutoff);
        base;
        inductive;
      };
  }

let gen_args st =
  let open QCheck.Gen in
  [ int_range 0 6 st; int_range (-3) 5 st ]

let arbitrary_program_and_args =
  QCheck.make
    ~print:(fun (p, args) ->
      Printf.sprintf "%s\nargs: %s" (Pp.program_to_string p)
        (String.concat ", " (List.map string_of_int args)))
    QCheck.Gen.(pair gen_program gen_args)
